// Ablations over AdaFL's design choices (DESIGN.md §4): utility threshold
// tau, selection cap K, similarity metric, warm-up length, compression
// bounds and shaping, DGC momentum correction, error-feedback accumulation,
// and the server trust-region clip.
//
// Each block varies one knob from the default configuration on the non-IID
// MNIST task and reports final accuracy + upload bytes.
#include "bench_common.h"

using namespace adafl;
using namespace adafl::bench;

namespace {

struct Outcome {
  double acc;
  std::int64_t bytes;
  std::int64_t updates;
};

Outcome run(const Task& task, int rounds,
            const std::function<void(core::AdaFlSyncConfig&)>& tweak) {
  core::AdaFlSyncConfig cfg;
  cfg.rounds = rounds;
  cfg.client = task.client;
  cfg.eval_every = rounds;
  cfg.seed = 42;
  tweak(cfg);
  core::AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts,
                           &task.test);
  auto log = t.run();
  return {log.final_accuracy(), log.ledger.total_upload_bytes(),
          log.ledger.delivered_updates()};
}

}  // namespace

int main() {
  std::cout << "== AdaFL ablations (MNIST CNN, non-IID) ==\n";
  Task task = mnist_task(10, Dist::kNonIid, 1, 1200, 300);
  const int rounds = scaled(50);
  std::vector<std::vector<std::string>> csv;
  metrics::Table table({"knob", "setting", "final acc", "upload", "updates"});

  auto emit = [&](const std::string& knob, const std::string& setting,
                  const Outcome& o) {
    table.add_row({knob, setting, metrics::fmt_pct(o.acc),
                   metrics::fmt_bytes(o.bytes), std::to_string(o.updates)});
    csv.push_back({knob, setting, metrics::fmt_f(o.acc, 4),
                   std::to_string(o.bytes), std::to_string(o.updates)});
  };

  emit("baseline", "defaults",
       run(task, rounds, [](core::AdaFlSyncConfig&) {}));

  for (double tau : {0.0, 0.3, 0.6}) {
    emit("tau", metrics::fmt_f(tau, 2),
         run(task, rounds,
             [&](core::AdaFlSyncConfig& c) { c.params.tau = tau; }));
  }

  for (int k : {2, 3, 8}) {
    emit("K", std::to_string(k), run(task, rounds, [&](auto& c) {
           c.params.max_selected = k;
         }));
  }

  for (auto metric : {core::SimilarityMetric::kL2Kernel,
                      core::SimilarityMetric::kEuclideanKernel}) {
    emit("similarity", core::to_string(metric),
         run(task, rounds,
             [&](auto& c) { c.params.utility.metric = metric; }));
  }

  for (int warm : {0, 10}) {
    emit("warmup", std::to_string(warm), run(task, rounds, [&](auto& c) {
           c.params.compression.warmup_rounds = warm;
         }));
  }

  for (double rmax : {16.0, 64.0, 500.0}) {
    emit("ratio_max", metrics::fmt_f(rmax, 0) + "x",
         run(task, rounds,
             [&](auto& c) { c.params.compression.ratio_max = rmax; }));
  }

  emit("shaping", "1 (log-linear)", run(task, rounds, [](auto& c) {
         c.params.compression.shaping = 1.0;
       }));

  emit("dgc", "momentum-corrected (0.9)", run(task, rounds, [](auto& c) {
         c.params.dgc.momentum = 0.9f;
         c.params.dgc.momentum_correction = true;
         c.params.dgc.clip_norm = 5.0;
       }));

  emit("error feedback", "off (discard unselected)",
       run(task, rounds,
           [](auto& c) { c.params.accumulate_unselected = false; }));

  emit("trust clip", "off", run(task, rounds, [](auto& c) {
         c.params.server_trust_clip = false;
       }));

  table.print(std::cout);
  save_csv("ablation", {"knob", "setting", "final_acc", "upload_bytes",
                        "updates"},
           csv);
  return 0;
}
