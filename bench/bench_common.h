// Shared experiment plumbing for the bench_* binaries.
//
// Each bench binary regenerates one table or figure from the paper
// (DESIGN.md §3 maps experiment -> binary). Scales are calibrated for a
// single CPU core; set ADAFL_BENCH_SCALE to grow/shrink rounds and
// durations (e.g. 2.0 for longer, higher-fidelity runs; 0.3 for a smoke
// pass). Results are also written as CSV under bench_results/.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/adafl_async.h"
#include "core/adafl_sync.h"
#include "data/synthetic.h"
#include "fl/async_trainer.h"
#include "fl/sync_trainer.h"
#include "metrics/plot.h"
#include "metrics/table.h"

namespace adafl::bench {

/// Global scale knob from ADAFL_BENCH_SCALE (default 1.0).
inline double scale() {
  static const double s = [] {
    const char* env = std::getenv("ADAFL_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return s;
}

/// Rounds/durations scaled by ADAFL_BENCH_SCALE, with a floor of `min_v`.
inline int scaled(int base, int min_v = 4) {
  return std::max(min_v, static_cast<int>(base * scale()));
}
inline double scaled(double base, double min_v = 1.0) {
  return std::max(min_v, base * scale());
}

/// One self-contained FL task: datasets, partition, and model factory.
struct Task {
  data::Dataset train;
  data::Dataset test;
  data::Partition parts;
  nn::ModelFactory factory;
  fl::ClientTrainConfig client;
  std::string name;
};

enum class Dist { kIid, kNonIid };

inline const char* to_string(Dist d) {
  return d == Dist::kIid ? "IID" : "non-IID";
}

/// MNIST-like task: 1x16x16, 10 classes, the paper's two-conv CNN.
inline Task mnist_task(int clients, Dist dist, std::uint64_t seed,
                       std::int64_t train_n = 1500,
                       std::int64_t test_n = 400) {
  Task t{data::make_synthetic(data::mnist_like(train_n, seed)),
         data::make_synthetic(data::mnist_like(test_n, seed + 9000)),
         {},
         nullptr,
         {},
         "MNIST"};
  tensor::Rng rng(seed + 17);
  t.parts = dist == Dist::kIid
                ? data::partition_iid(t.train.size(), clients, rng)
                : data::partition_shards(t.train.labels(), clients, 3, rng);
  t.factory = nn::paper_cnn_factory(t.train.spec(), seed + 3);
  t.client.batch_size = 20;
  t.client.local_steps = 5;
  t.client.lr = 0.05f;
  return t;
}

/// CIFAR10-like task with the residual CNN (Fig. 1's ResNet row).
inline Task cifar10_task(int clients, Dist dist, std::uint64_t seed,
                         std::int64_t train_n = 1000,
                         std::int64_t test_n = 300) {
  Task t{data::make_synthetic(data::cifar10_like(train_n, seed)),
         data::make_synthetic(data::cifar10_like(test_n, seed + 9000)),
         {},
         nullptr,
         {},
         "CIFAR-10"};
  tensor::Rng rng(seed + 17);
  t.parts = dist == Dist::kIid
                ? data::partition_iid(t.train.size(), clients, rng)
                : data::partition_shards(t.train.labels(), clients, 3, rng);
  t.factory = nn::resnet_lite_factory(t.train.spec(), seed + 3);
  t.client.batch_size = 12;
  t.client.local_steps = 4;
  t.client.lr = 0.09f;
  return t;
}

/// CIFAR100-like task with the VGG-style CNN (Tables I/II second rows).
inline Task cifar100_task(int clients, Dist dist, std::uint64_t seed,
                          std::int64_t train_n = 1000,
                          std::int64_t test_n = 300) {
  Task t{data::make_synthetic(data::cifar100_like(train_n, seed)),
         data::make_synthetic(data::cifar100_like(test_n, seed + 9000)),
         {},
         nullptr,
         {},
         "CIFAR-100"};
  tensor::Rng rng(seed + 17);
  t.parts = dist == Dist::kIid
                ? data::partition_iid(t.train.size(), clients, rng)
                : data::partition_shards(t.train.labels(), clients, 4, rng);
  t.factory = nn::vgg_lite_factory(t.train.spec(), seed + 3);
  t.client.batch_size = 12;
  t.client.local_steps = 4;
  t.client.lr = 0.05f;
  return t;
}

/// Writes a CSV into bench_results/, creating the directory on demand.
inline void save_csv(const std::string& name,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<std::string>>& rows) {
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/" + name + ".csv";
  metrics::write_csv(path, header, rows);
  std::cout << "[csv] " << path << "\n";
}

/// Renders a panel of curves as an ASCII chart (the bench "figure").
inline void print_chart(const std::vector<metrics::NamedSeries>& curves) {
  if (curves.empty()) return;
  metrics::AsciiChart chart(64, 14);
  for (const auto& c : curves) chart.add(c.label, c.series);
  chart.print(std::cout);
}

/// Prints a labelled accuracy series as "x y" pairs (one figure curve).
inline void print_series(const std::string& label, const metrics::Series& s,
                         const char* x_name) {
  std::cout << "curve: " << label << "\n  " << x_name << ":";
  for (double x : s.x) std::cout << ' ' << metrics::fmt_f(x, 1);
  std::cout << "\n  acc:";
  for (double y : s.y) std::cout << ' ' << metrics::fmt_f(y, 3);
  std::cout << "\n";
}

}  // namespace adafl::bench
