// Figure 1 (i)-(l): asynchronous FL — staleness (3x-slower stragglers)
// versus dropout, accuracy vs simulated time, for {MNIST, CIFAR} x
// {IID, non-IID}.
//
// Expected shape (paper §III insight 2): staleness degrades accuracy and
// convergence speed more than dropout does.
#include "bench_common.h"

using namespace adafl;
using namespace adafl::bench;

namespace {

fl::TrainLog run_async(const Task& task, fl::AsyncFaults faults,
                       double duration) {
  fl::AsyncConfig cfg;
  cfg.algo = fl::AsyncAlgorithm::kFedAsync;
  cfg.duration = duration;
  cfg.eval_interval = duration / 10.0;
  cfg.client = task.client;
  cfg.faults = faults;
  cfg.seed = 42;
  fl::AsyncTrainer trainer(cfg, task.factory, &task.train, task.parts,
                           &task.test);
  return trainer.run();
}

}  // namespace

int main() {
  std::cout << "== Figure 1 (i)-(l): async FL — staleness vs dropout ==\n";
  std::vector<std::vector<std::string>> csv;

  struct Panel {
    const char* dataset;
    Dist dist;
  };
  const Panel panels[] = {{"MNIST", Dist::kIid},
                          {"MNIST", Dist::kNonIid},
                          {"CIFAR", Dist::kIid},
                          {"CIFAR", Dist::kNonIid}};

  struct Condition {
    const char* name;
    fl::AsyncFaults faults;
  };
  const Condition conditions[] = {
      {"baseline", {}},
      {"dropout-20%", {.unreliable_fraction = 0.2, .straggler_slowdown = 1.0,
                       .dropout_prob = 0.5}},
      {"staleness-20%", {.unreliable_fraction = 0.2,
                         .straggler_slowdown = 3.0, .dropout_prob = 0.0}},
  };

  for (const auto& p : panels) {
    const bool mnist = std::string(p.dataset) == "MNIST";
    Task task = mnist ? mnist_task(10, p.dist, 1, 1000, 300)
                      : cifar10_task(10, p.dist, 1, 700, 240);
    // Small local work per cycle so several dozen cycles fit the horizon.
    task.client.local_steps = 3;
    task.client.batch_size = 12;
    // Compute model: 36 samples/cycle * 2e-4 s/sample ~ 7ms per cycle.
    const double duration = scaled(mnist ? 0.9 : 0.5, 0.1);
    std::cout << "\n-- panel: " << p.dataset << " " << to_string(p.dist)
              << " --\n";
    metrics::Table table(
        {"condition", "final acc", "acc @ T/2", "applied updates"});
    for (const auto& c : conditions) {
      auto log = run_async(task, c.faults, duration);
      const auto series = log.accuracy_vs_time();
      table.add_row({c.name, metrics::fmt_pct(log.final_accuracy()),
                     metrics::fmt_pct(series.y_at(duration / 2)),
                     std::to_string(log.applied_updates)});
      csv.push_back({p.dataset, to_string(p.dist), c.name,
                     metrics::fmt_f(log.final_accuracy(), 4),
                     metrics::fmt_f(series.y_at(duration / 2), 4),
                     std::to_string(log.applied_updates)});
      print_series(std::string(p.dataset) + "/" + to_string(p.dist) + "/" +
                       c.name,
                   series, "t(s)");
    }
    table.print(std::cout);
  }

  save_csv("fig1_async",
           {"dataset", "dist", "condition", "final_acc", "mid_acc",
            "applied_updates"},
           csv);
  return 0;
}
