// Figure 1 (a)-(h): synchronous FL accuracy under dropout and data-loss
// faults, for {MNIST-CNN, CIFAR-ResNet} x {IID, non-IID} and unreliable
// fractions {0, 10, 20, 30}%.
//
// Expected shape (paper §III): 10-20% unreliable clients barely move the
// final accuracy; data loss (stale straggler updates) hurts more than clean
// dropout; deeper model + harder data amplify the 30% case.
#include "bench_common.h"

using namespace adafl;
using namespace adafl::bench;

namespace {

fl::TrainLog run_panel(const Task& task, fl::FaultKind fault, double fraction,
                       int rounds) {
  fl::SyncConfig cfg;
  cfg.algo = fl::Algorithm::kFedAvg;
  cfg.rounds = rounds;
  cfg.participation = 1.0;
  cfg.client = task.client;
  cfg.faults.kind = fault;
  cfg.faults.unreliable_fraction = fraction;
  cfg.eval_every = std::max(1, rounds / 8);
  cfg.seed = 42;
  fl::SyncTrainer trainer(cfg, task.factory, &task.train, task.parts,
                          &task.test);
  return trainer.run();
}

}  // namespace

int main() {
  std::cout << "== Figure 1 (a)-(h): sync FL under dropout / data loss ==\n";
  const double fractions[] = {0.0, 0.1, 0.2, 0.3};
  std::vector<std::vector<std::string>> csv;

  struct Panel {
    const char* dataset;
    Dist dist;
    fl::FaultKind fault;
    const char* fault_name;
  };
  const Panel panels[] = {
      {"MNIST", Dist::kIid, fl::FaultKind::kDropout, "dropout"},
      {"MNIST", Dist::kIid, fl::FaultKind::kDataLoss, "dataloss"},
      {"MNIST", Dist::kNonIid, fl::FaultKind::kDropout, "dropout"},
      {"MNIST", Dist::kNonIid, fl::FaultKind::kDataLoss, "dataloss"},
      {"CIFAR", Dist::kIid, fl::FaultKind::kDropout, "dropout"},
      {"CIFAR", Dist::kIid, fl::FaultKind::kDataLoss, "dataloss"},
      {"CIFAR", Dist::kNonIid, fl::FaultKind::kDropout, "dropout"},
      {"CIFAR", Dist::kNonIid, fl::FaultKind::kDataLoss, "dataloss"},
  };

  for (const auto& p : panels) {
    const bool mnist = std::string(p.dataset) == "MNIST";
    const int rounds = mnist ? scaled(30) : scaled(24);
    Task task = mnist ? mnist_task(10, p.dist, 1, 1200, 300)
                      : cifar10_task(10, p.dist, 1, 600, 240);
    std::cout << "\n-- panel: " << p.dataset << " " << to_string(p.dist)
              << " " << p.fault_name << " --\n";
    metrics::Table table({"unreliable", "final acc", "best acc", "updates"});
    for (double f : fractions) {
      auto log = run_panel(task, p.fault, f, rounds);
      table.add_row({metrics::fmt_pct(f, 0),
                     metrics::fmt_pct(log.final_accuracy()),
                     metrics::fmt_pct(log.best_accuracy()),
                     std::to_string(log.ledger.delivered_updates())});
      csv.push_back({p.dataset, to_string(p.dist), p.fault_name,
                     metrics::fmt_f(f, 2),
                     metrics::fmt_f(log.final_accuracy(), 4),
                     metrics::fmt_f(log.best_accuracy(), 4)});
      print_series(std::string(p.dataset) + "/" + to_string(p.dist) + "/" +
                       p.fault_name + "/" + metrics::fmt_pct(f, 0),
                   log.accuracy_vs_round(), "round");
    }
    table.print(std::cout);
  }

  save_csv("fig1_sync",
           {"dataset", "dist", "fault", "fraction", "final_acc", "best_acc"},
           csv);
  return 0;
}
