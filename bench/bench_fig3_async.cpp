// Figure 3 (c)-(d): asynchronous FL — AdaFL vs FedAsync/FedBuff, testing
// accuracy vs simulated wall-clock time, MNIST CNN, IID and non-IID, with
// heterogeneous link speeds.
//
// Expected shape (paper §V): AdaFL converges fastest in wall-clock terms —
// its compressed updates spend less time on constrained uplinks — and ends
// at comparable-or-better accuracy (the paper's headline async example:
// at T = 1000 s AdaFL ~80% vs FedAsync ~10%, FedBuff ~50%, non-IID).
#include "bench_common.h"

using namespace adafl;
using namespace adafl::bench;

namespace {

std::vector<net::LinkConfig> hetero_links() {
  // Half the fleet on good links, half congested: compressed uploads matter.
  return net::make_fleet(10, 0.5, net::LinkQuality::kGood,
                         net::LinkQuality::kCongested);
}

fl::TrainLog run_baseline(const Task& task, fl::AsyncAlgorithm algo,
                          double duration) {
  fl::AsyncConfig cfg;
  cfg.algo = algo;
  cfg.duration = duration;
  cfg.eval_interval = duration / 10.0;
  cfg.client = task.client;
  cfg.links = hetero_links();
  cfg.seed = 42;
  fl::AsyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  return t.run();
}

struct AdaResult {
  fl::TrainLog log;
  core::AdaFlStats stats;
};

AdaResult run_adafl(const Task& task, double duration) {
  core::AdaFlAsyncConfig cfg;
  cfg.duration = duration;
  cfg.eval_interval = duration / 10.0;
  cfg.client = task.client;
  cfg.links = hetero_links();
  cfg.seed = 42;
  cfg.params.compression.ratio_max = 105.0;  // paper's async bound
  core::AdaFlAsyncTrainer t(cfg, task.factory, &task.train, task.parts,
                            &task.test);
  auto log = t.run();
  return {std::move(log), t.stats()};
}

}  // namespace

int main() {
  std::cout << "== Figure 3 (c)-(d): async AdaFL vs baselines (MNIST CNN) ==\n";
  std::vector<std::vector<std::string>> csv;

  for (Dist dist : {Dist::kIid, Dist::kNonIid}) {
    Task task = mnist_task(10, dist, 1, 1000, 300);
    task.client.local_steps = 3;
    task.client.batch_size = 12;
    // Congested uplinks make dense 230KB updates cost ~1s of simulated
    // time, so the horizon must cover enough cycles for the slow half.
    const double duration = scaled(40.0, 5.0);
    std::cout << "\n-- panel: " << to_string(dist) << " --\n";
    metrics::Table table({"method", "final acc", "acc @ T/2", "updates",
                          "upload"});
    std::vector<metrics::NamedSeries> curves;

    auto report = [&](const char* name, const fl::TrainLog& log) {
      const auto series = log.accuracy_vs_time();
      table.add_row({name, metrics::fmt_pct(log.final_accuracy()),
                     metrics::fmt_pct(series.y_at(duration / 2)),
                     std::to_string(log.applied_updates),
                     metrics::fmt_bytes(log.ledger.total_upload_bytes())});
      csv.push_back({to_string(dist), name,
                     metrics::fmt_f(log.final_accuracy(), 4),
                     metrics::fmt_f(series.y_at(duration / 2), 4),
                     std::to_string(log.applied_updates),
                     std::to_string(log.ledger.total_upload_bytes())});
      curves.push_back({name, series});
      print_series(std::string(to_string(dist)) + "/" + name, series, "t(s)");
    };

    report("FedAsync",
           run_baseline(task, fl::AsyncAlgorithm::kFedAsync, duration));
    report("FedBuff",
           run_baseline(task, fl::AsyncAlgorithm::kFedBuff, duration));
    auto ada = run_adafl(task, duration);
    report("AdaFL", ada.log);
    table.print(std::cout);
    std::cout << "\naccuracy vs simulated time (" << to_string(dist) << "):\n";
    print_chart(curves);
    std::cout << "AdaFL ratios used: " << metrics::fmt_f(ada.stats.min_ratio_used, 1)
              << "x - " << metrics::fmt_f(ada.stats.max_ratio_used, 1)
              << "x, skipped uploads: " << ada.stats.skipped_clients << "\n";
  }

  save_csv("fig3_async",
           {"dist", "method", "final_acc", "mid_acc", "updates",
            "upload_bytes"},
           csv);
  return 0;
}
