// Figure 3 (a)-(b): synchronous FL — AdaFL vs FedAvg/FedAdam/FedProx/
// SCAFFOLD, testing accuracy vs communication round, MNIST CNN, IID and
// non-IID.
//
// Expected shape (paper §V): AdaFL's curve reaches comparable-or-better
// final accuracy; baselines run a fixed r_p = 0.5 participation while AdaFL
// selects adaptively (k <= 5) and compresses.
#include "bench_common.h"

using namespace adafl;
using namespace adafl::bench;

namespace {

fl::TrainLog run_baseline(const Task& task, fl::Algorithm algo, int rounds) {
  fl::SyncConfig cfg;
  cfg.algo = algo;
  cfg.rounds = rounds;
  cfg.participation = 0.5;
  cfg.client = task.client;
  cfg.server_lr = 0.01f;
  if (algo == fl::Algorithm::kFedProx) cfg.client.prox_mu = 0.01f;
  cfg.eval_every = std::max(1, rounds / 10);
  cfg.seed = 42;
  fl::SyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  return t.run();
}

fl::TrainLog run_adafl(const Task& task, int rounds) {
  core::AdaFlSyncConfig cfg;
  cfg.rounds = rounds;
  cfg.client = task.client;
  cfg.eval_every = std::max(1, rounds / 10);
  cfg.seed = 42;
  cfg.params.max_selected = 5;
  cfg.params.compression.warmup_rounds = 10;
  core::AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts,
                           &task.test);
  return t.run();
}

}  // namespace

int main() {
  std::cout << "== Figure 3 (a)-(b): sync AdaFL vs baselines (MNIST CNN) ==\n";
  const int rounds = scaled(80);
  std::vector<std::vector<std::string>> csv;

  for (Dist dist : {Dist::kIid, Dist::kNonIid}) {
    Task task = mnist_task(10, dist, 1);
    std::cout << "\n-- panel: " << to_string(dist) << " --\n";
    metrics::Table table({"method", "final acc", "best acc", "upload"});
    std::vector<metrics::NamedSeries> curves;

    auto report = [&](const char* name, const fl::TrainLog& log) {
      table.add_row({name, metrics::fmt_pct(log.final_accuracy()),
                     metrics::fmt_pct(log.best_accuracy()),
                     metrics::fmt_bytes(log.ledger.total_upload_bytes())});
      csv.push_back({to_string(dist), name,
                     metrics::fmt_f(log.final_accuracy(), 4),
                     metrics::fmt_f(log.best_accuracy(), 4),
                     std::to_string(log.ledger.total_upload_bytes())});
      curves.push_back({name, log.accuracy_vs_round()});
      print_series(std::string(to_string(dist)) + "/" + name,
                   log.accuracy_vs_round(), "round");
    };

    report("FedAvg", run_baseline(task, fl::Algorithm::kFedAvg, rounds));
    report("FedAdam", run_baseline(task, fl::Algorithm::kFedAdam, rounds));
    report("FedProx", run_baseline(task, fl::Algorithm::kFedProx, rounds));
    report("SCAFFOLD", run_baseline(task, fl::Algorithm::kScaffold, rounds));
    report("AdaFL", run_adafl(task, rounds));
    table.print(std::cout);
    std::cout << "\naccuracy vs round (" << to_string(dist) << "):\n";
    print_chart(curves);
  }

  save_csv("fig3_sync",
           {"dist", "method", "final_acc", "best_acc", "upload_bytes"}, csv);
  return 0;
}
