// Kernel/threading micro-benchmarks for the deterministic execution layer.
//
// Times the blocked matmul kernels, Conv2d forward/backward, DGC compression,
// and one full synchronous FL round at 1/2/4/8 worker threads — once per
// available kernel backend (scalar always, avx2 when the CPU supports it) —
// and writes the results to bench_results/BENCH_kernels.json along with the
// detected CPU features. Because the execution layer is bitwise deterministic
// within a backend, every timing below computes the exact same numbers at
// every thread count — only the wall clock changes.
//
// Usage:
//   bench_kernels                  # full sweep
//   ADAFL_BENCH_SCALE=0.3 bench_kernels   # quicker smoke pass
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "compress/dgc.h"
#include "core/parallel.h"
#include "fl/client.h"
#include "nn/conv2d.h"
#include "tensor/dispatch.h"
#include "tensor/ops.h"

namespace {

using namespace adafl;

/// Wall-clock of the best of `reps` runs (min filters scheduler noise).
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Row {
  std::string bench;
  std::string backend;  ///< kernel backend this row was measured under
  std::int64_t size = 0;
  int threads = 0;
  double seconds = 0.0;
  double gflops = 0.0;  ///< 0 when a FLOP count is not meaningful
};

void write_json(const std::vector<Row>& rows) {
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/BENCH_kernels.json";
  std::ofstream os(path);
  os << std::setprecision(6);
  os << "{\n  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency()
     << ",\n  \"cpu_features\": \"" << tensor::cpu_feature_string()
     << "\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "    {\"bench\": \"" << r.bench << "\", \"backend\": \""
       << r.backend << "\", \"size\": " << r.size
       << ", \"threads\": " << r.threads << ", \"seconds\": " << r.seconds;
    if (r.gflops > 0.0) os << ", \"gflops\": " << r.gflops;
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "[json] " << path << "\n";
}

void report(const Row& r) {
  std::cout << "  " << std::left << std::setw(16) << r.bench << " backend="
            << std::setw(7) << r.backend << " size=" << std::setw(7) << r.size
            << " threads=" << r.threads << "  " << std::fixed
            << std::setprecision(4) << r.seconds << " s";
  if (r.gflops > 0.0)
    std::cout << "  (" << std::setprecision(2) << r.gflops << " GFLOP/s)";
  std::cout << "\n";
}

}  // namespace

int main() {
  // Floors of 2/3 reps keep min-of-reps meaningful even in an
  // ADAFL_BENCH_SCALE smoke pass — a single sample cannot filter a
  // transient frequency throttle, and the bench gate compares these
  // numbers across machines.
  const int reps_big = std::max(2, static_cast<int>(2 * bench::scale()));
  const int reps_small = std::max(3, static_cast<int>(5 * bench::scale()));
  std::vector<Row> rows;
  const std::vector<int> thread_counts{1, 2, 4, 8};

  // Fixed inputs shared across thread counts so every config multiplies the
  // same matrices.
  tensor::Rng rng(42);
  std::vector<std::int64_t> sizes{256, 512, 1024};
  std::vector<std::pair<tensor::Tensor, tensor::Tensor>> mats;
  for (auto n : sizes)
    mats.emplace_back(tensor::Tensor::randn({n, n}, rng),
                      tensor::Tensor::randn({n, n}, rng));

  const std::int64_t conv_batch = 16;
  tensor::Tensor conv_in =
      tensor::Tensor::randn({conv_batch, 8, 16, 16}, rng);

  const std::int64_t dgc_dim = 1 << 18;
  std::vector<float> dgc_grad(static_cast<std::size_t>(dgc_dim));
  for (auto& v : dgc_grad) v = static_cast<float>(rng.normal());

  // Per-backend sweep: scalar always, avx2 when the CPU/build supports it.
  // Inputs are shared across backends and thread counts, so every row times
  // the same computation.
  std::vector<tensor::KernelBackend> backends{tensor::KernelBackend::kScalar};
  if (tensor::cpu_supports_avx2())
    backends.push_back(tensor::KernelBackend::kAvx2);
  else
    std::cout << "(avx2 backend unavailable: cpu features "
              << tensor::cpu_feature_string() << ")\n";

  for (tensor::KernelBackend backend : backends) {
  tensor::set_kernel_backend(backend);
  const std::string bk = tensor::kernel_backend_name(backend);
  for (int threads : thread_counts) {
    core::set_num_threads(threads);
    std::cout << "--- backend=" << bk << " threads=" << threads << " ---\n";

    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const auto n = sizes[si];
      const int reps = n >= 1024 ? reps_big : reps_small;
      const double flops = 2.0 * static_cast<double>(n) * n * n;
      tensor::Tensor out;
      Row r{"matmul", bk, n, threads,
            best_seconds(reps,
                         [&] {
                           out = tensor::matmul(mats[si].first,
                                                mats[si].second);
                         }),
            0.0};
      r.gflops = flops / r.seconds * 1e-9;
      report(r);
      rows.push_back(r);

      Row rnt{"matmul_nt", bk, n, threads,
              best_seconds(reps,
                           [&] {
                             out = tensor::matmul_nt(mats[si].first,
                                                     mats[si].second);
                           }),
              0.0};
      rnt.gflops = flops / rnt.seconds * 1e-9;
      report(rnt);
      rows.push_back(rnt);
    }

    {
      tensor::Rng layer_rng(7);
      nn::Conv2d conv(8, 16, 3, layer_rng, 1, 1);
      tensor::Tensor y = conv.forward(conv_in, true);
      Row fwd{"conv2d_fwd", bk, conv_batch, threads,
              best_seconds(reps_small,
                           [&] { y = conv.forward(conv_in, true); }),
              0.0};
      report(fwd);
      rows.push_back(fwd);
      Row bwd{"conv2d_bwd", bk, conv_batch, threads,
              best_seconds(reps_small, [&] { (void)conv.backward(y); }), 0.0};
      report(bwd);
      rows.push_back(bwd);
    }

    {
      compress::DgcCompressor dgc(dgc_dim, {});
      Row r{"dgc_compress", bk, dgc_dim, threads,
            best_seconds(reps_small, [&] { (void)dgc.compress(dgc_grad); }),
            0.0};
      report(r);
      rows.push_back(r);
    }

    {
      // End-to-end per-client round on the zero-allocation hot path:
      // train_from_into + DGC compress_into over 8 CNN clients, reusing all
      // buffers across reps exactly as the simulator/deployed loops do. The
      // first (untimed) pass warms every arena/buffer, so the timed reps
      // measure the steady state the allocation regression test pins.
      auto task = bench::mnist_task(8, bench::Dist::kIid, 1, 480, 120);
      auto clients = fl::make_clients(task.factory, &task.train, task.parts,
                                      task.client, {}, 1);
      nn::Model probe(task.factory());
      const std::vector<float> global = probe.get_flat();
      const auto dim = static_cast<std::int64_t>(global.size());
      std::vector<compress::DgcCompressor> dgcs;
      dgcs.reserve(clients.size());
      for (std::size_t i = 0; i < clients.size(); ++i)
        dgcs.emplace_back(dim, compress::DgcConfig{});
      std::vector<fl::FlClient::LocalResult> results(clients.size());
      std::vector<compress::EncodedGradient> msgs(clients.size());
      auto one_round = [&] {
        for (std::size_t i = 0; i < clients.size(); ++i) {
          clients[i].train_from_into(global, results[i]);
          dgcs[i].compress_into(results[i].delta, 0.0, msgs[i]);
        }
      };
      one_round();  // warm all arenas/buffers
      Row r{"client_round", bk, static_cast<std::int64_t>(clients.size()),
            threads, best_seconds(reps_small, one_round), 0.0};
      report(r);
      rows.push_back(r);
    }

    {
      // One synchronous FedAvg round over 8 CNN clients — the end-to-end
      // number the per-client parallelism targets.
      auto task = bench::mnist_task(8, bench::Dist::kIid, 1, 480, 120);
      fl::SyncConfig cfg;
      cfg.rounds = 1;
      cfg.participation = 1.0;
      cfg.client = task.client;
      cfg.seed = 1;
      Row r{"sync_round", bk, 8, threads,
            best_seconds(1,
                         [&] {
                           fl::SyncTrainer t(cfg, task.factory, &task.train,
                                             task.parts, &task.test);
                           (void)t.run();
                         }),
            0.0};
      report(r);
      rows.push_back(r);
    }
  }
  }
  core::set_num_threads(0);
  tensor::set_kernel_backend(tensor::KernelBackend::kScalar);

  write_json(rows);
  return 0;
}
