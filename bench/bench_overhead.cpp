// Q3 / overhead study: cost of the utility-score computation and of DGC
// compression relative to local training, on the paper's CNN gradient size.
//
// The paper measured CPU cycles with perf on a Raspberry Pi cluster and
// found the utility score adds ~0.05% over baseline training; compression
// costs more but is offset by the training skipped for low-utility clients.
// Here both terms are measured with google-benchmark on the same host, so
// the *ratios* are comparable (DESIGN.md §2).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "compress/dgc.h"
#include "core/utility.h"
#include "data/synthetic.h"
#include "nn/models.h"

namespace {

using namespace adafl;

constexpr std::int64_t kGradDim = 56080;  // paper CNN at 16x16 inputs

std::vector<float> random_vec(std::int64_t n, std::uint64_t seed) {
  tensor::Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

void BM_LocalTrainingStep(benchmark::State& state) {
  const nn::ImageSpec spec{1, 16, 16, 10};
  nn::Model model = nn::make_paper_cnn(spec, 1);
  auto data = data::make_synthetic(data::mnist_like(64, 1));
  std::vector<std::int32_t> idx(20);
  for (int i = 0; i < 20; ++i) idx[static_cast<std::size_t>(i)] = i;
  nn::Batch batch = data.gather(idx);
  nn::Sgd opt(0.05f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.train_batch(batch, opt));
  }
  state.SetLabel("one 20-example SGD step (the unit clients repeat)");
}
BENCHMARK(BM_LocalTrainingStep);

void BM_UtilityScore(benchmark::State& state) {
  auto g = random_vec(kGradDim, 2);
  auto ghat = random_vec(kGradDim, 3);
  core::UtilityConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::utility_score(cfg, g, ghat, 1.0e6, 2.0e6));
  }
  state.SetLabel("Eq. 6 on a full CNN gradient");
}
BENCHMARK(BM_UtilityScore);

void BM_UtilityScoreMetric(benchmark::State& state) {
  auto g = random_vec(kGradDim, 2);
  auto ghat = random_vec(kGradDim, 3);
  const auto metric = static_cast<core::SimilarityMetric>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::similarity01(metric, g, ghat));
  }
  state.SetLabel(core::to_string(metric));
}
BENCHMARK(BM_UtilityScoreMetric)->DenseRange(0, 2);

void BM_DgcCompress(benchmark::State& state) {
  const double ratio = static_cast<double>(state.range(0));
  compress::DgcConfig cfg;
  cfg.ratio = ratio;
  cfg.momentum = 0.0f;
  cfg.momentum_correction = false;
  cfg.clip_norm = 0.0;
  compress::DgcCompressor comp(kGradDim, cfg);
  auto g = random_vec(kGradDim, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comp.compress(g));
  }
  state.SetLabel("DGC top-k at ratio " + std::to_string(state.range(0)) +
                 "x");
}
BENCHMARK(BM_DgcCompress)->Arg(4)->Arg(64)->Arg(210);

void BM_DgcAccumulateOnly(benchmark::State& state) {
  compress::DgcConfig cfg;
  cfg.momentum = 0.9f;
  cfg.momentum_correction = true;
  cfg.clip_norm = 5.0;
  compress::DgcCompressor comp(kGradDim, cfg);
  auto g = random_vec(kGradDim, 5);
  for (auto _ : state) {
    comp.accumulate(g);
    benchmark::ClobberMemory();
  }
  state.SetLabel("skip-round bookkeeping for unselected clients");
}
BENCHMARK(BM_DgcAccumulateOnly);

}  // namespace

// Reports, in addition to the google-benchmark table, the paper-style
// overhead ratio: utility-score time vs one local training round.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Paper-style summary: measure both terms directly.
  using clock = std::chrono::steady_clock;
  const nn::ImageSpec spec{1, 16, 16, 10};
  nn::Model model = nn::make_paper_cnn(spec, 1);
  auto data = data::make_synthetic(data::mnist_like(128, 1));
  std::vector<std::int32_t> idx(20);
  for (int i = 0; i < 20; ++i) idx[static_cast<std::size_t>(i)] = i;
  nn::Batch batch = data.gather(idx);
  nn::Sgd opt(0.05f);

  auto t0 = clock::now();
  constexpr int kSteps = 50;  // one simulated round = 5 steps; measure 10x
  for (int i = 0; i < kSteps; ++i) model.train_batch(batch, opt);
  const double train_s = std::chrono::duration<double>(clock::now() - t0)
                             .count() / 10.0;  // per 5-step round

  auto g = random_vec(kGradDim, 2);
  auto ghat = random_vec(kGradDim, 3);
  core::UtilityConfig ucfg;
  t0 = clock::now();
  constexpr int kReps = 2000;
  double sink = 0.0;
  for (int i = 0; i < kReps; ++i)
    sink += core::utility_score(ucfg, g, ghat, 1e6, 2e6);
  const double score_s =
      std::chrono::duration<double>(clock::now() - t0).count() / kReps;

  compress::DgcCompressor comp(kGradDim, {64.0, 0.0f, 0.0, false, false});
  t0 = clock::now();
  constexpr int kCReps = 200;
  for (int i = 0; i < kCReps; ++i) benchmark::DoNotOptimize(comp.compress(g));
  const double compress_s =
      std::chrono::duration<double>(clock::now() - t0).count() / kCReps;

  std::printf("\n== paper-style overhead summary (per training round) ==\n");
  std::printf("local training round      : %10.3f ms\n", train_s * 1e3);
  std::printf("utility score (Eq. 6)     : %10.3f ms  (+%.3f%%)\n",
              score_s * 1e3, 100.0 * score_s / train_s);
  std::printf("DGC compression (64x)     : %10.3f ms  (+%.3f%%)\n",
              compress_s * 1e3, 100.0 * compress_s / train_s);
  std::printf("(paper: utility score ~ +0.05%% of training cycles; "
              "compression larger but offset by skipped training)\n");
  (void)sink;
  return 0;
}
