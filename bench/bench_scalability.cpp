// Scalability study (paper §V "experiments with 20 to 100 clients"):
// AdaFL vs FedAvg as the fleet grows, at fixed total data volume.
//
// Expected shape: AdaFL's accuracy stays comparable to FedAvg while its
// upload volume grows much slower with fleet size (selection caps the
// number of transmitting clients; compression shrinks each message).
#include "bench_common.h"

using namespace adafl;
using namespace adafl::bench;

int main() {
  std::cout << "== Scalability: 10 - 100 clients (MNIST CNN, non-IID) ==\n";
  std::vector<std::vector<std::string>> csv;
  metrics::Table table({"clients", "method", "final acc", "updates",
                        "upload", "upload/client"});

  const int client_counts[] = {10, 20, 50, 100};
  for (int n : client_counts) {
    // Fixed total data: bigger fleets mean smaller local shards, like a
    // real deployment.
    Task task = mnist_task(n, Dist::kNonIid, 1, /*train_n=*/2000,
                           /*test_n=*/300);
    task.client.local_steps = 3;
    const int rounds = scaled(30);

    fl::SyncConfig avg_cfg;
    avg_cfg.algo = fl::Algorithm::kFedAvg;
    avg_cfg.rounds = rounds;
    avg_cfg.participation = 0.5;
    avg_cfg.client = task.client;
    avg_cfg.eval_every = rounds;
    avg_cfg.seed = 42;
    fl::SyncTrainer fedavg(avg_cfg, task.factory, &task.train, task.parts,
                           &task.test);
    auto avg_log = fedavg.run();

    core::AdaFlSyncConfig ada_cfg;
    ada_cfg.rounds = rounds;
    ada_cfg.client = task.client;
    ada_cfg.eval_every = rounds;
    ada_cfg.seed = 42;
    // K scales like the baselines' r_p = 0.5 ceiling.
    ada_cfg.params.max_selected = n / 2;
    core::AdaFlSyncTrainer adafl(ada_cfg, task.factory, &task.train,
                                 task.parts, &task.test);
    auto ada_log = adafl.run();

    auto emit = [&](const char* name, const fl::TrainLog& log) {
      table.add_row({std::to_string(n), name,
                     metrics::fmt_pct(log.final_accuracy()),
                     std::to_string(log.ledger.delivered_updates()),
                     metrics::fmt_bytes(log.ledger.total_upload_bytes()),
                     metrics::fmt_bytes(log.ledger.total_upload_bytes() / n)});
      csv.push_back({std::to_string(n), name,
                     metrics::fmt_f(log.final_accuracy(), 4),
                     std::to_string(log.ledger.delivered_updates()),
                     std::to_string(log.ledger.total_upload_bytes())});
    };
    emit("FedAvg", avg_log);
    emit("AdaFL", ada_log);
  }

  table.print(std::cout);
  save_csv("scalability",
           {"clients", "method", "final_acc", "updates", "upload_bytes"},
           csv);
  return 0;
}
