// Table I: synchronous FL evaluation — FedAvg / FedAdam / FedProx /
// SCAFFOLD at fixed r_p = 0.5 versus AdaFL (adaptive participation +
// adaptive compression), on the MNIST-like CNN task and the CIFAR-100-like
// VGG task, IID and non-IID.
//
// Columns mirror the paper: update frequency, cost reduction vs the ideal
// all-clients-every-round schedule, delivered gradient sizes, compression
// ratio span, and top-1 accuracy (IID / non-IID).
#include "bench_common.h"

using namespace adafl;
using namespace adafl::bench;

namespace {

struct MethodResult {
  double acc_iid = 0.0, acc_noniid = 0.0;
  std::int64_t updates = 0;        // per-distribution mean
  std::int64_t upload_bytes = 0;   // per-distribution mean
  std::int64_t min_bytes = 0, max_bytes = 0;
  std::int64_t dense_bytes = 0;
  double ratio_min = 1.0, ratio_max = 1.0;
  std::string participation = "0.5";
};

fl::TrainLog run_baseline(const Task& task, fl::Algorithm algo, int rounds) {
  fl::SyncConfig cfg;
  cfg.algo = algo;
  cfg.rounds = rounds;
  cfg.participation = 0.5;
  cfg.client = task.client;
  cfg.server_lr = 0.01f;
  if (algo == fl::Algorithm::kFedProx) cfg.client.prox_mu = 0.01f;
  cfg.eval_every = rounds;  // final accuracy only (faster)
  cfg.seed = 42;
  fl::SyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  return t.run();
}

MethodResult eval_baseline(fl::Algorithm algo, const Task& iid,
                           const Task& noniid, int rounds) {
  MethodResult r;
  auto a = run_baseline(iid, algo, rounds);
  auto b = run_baseline(noniid, algo, rounds);
  r.acc_iid = a.final_accuracy();
  r.acc_noniid = b.final_accuracy();
  r.updates = (a.ledger.delivered_updates() + b.ledger.delivered_updates()) / 2;
  r.upload_bytes =
      (a.ledger.total_upload_bytes() + b.ledger.total_upload_bytes()) / 2;
  r.min_bytes = a.ledger.min_update_bytes();
  r.max_bytes = a.ledger.max_update_bytes();
  r.dense_bytes = a.dense_update_bytes;
  return r;
}

MethodResult eval_adafl(const Task& iid, const Task& noniid, int rounds) {
  MethodResult r;
  r.participation = "Adaptive";
  auto run = [&](const Task& task, double* acc) {
    core::AdaFlSyncConfig cfg;
    cfg.rounds = rounds;
    cfg.client = task.client;
    cfg.eval_every = rounds;
    cfg.seed = 42;
    cfg.params.max_selected = 5;
    cfg.params.compression.warmup_rounds = 10;
    core::AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts,
                             &task.test);
    auto log = t.run();
    *acc = log.final_accuracy();
    r.updates += log.ledger.delivered_updates() / 2;
    r.upload_bytes += log.ledger.total_upload_bytes() / 2;
    r.min_bytes = log.ledger.min_update_bytes();
    r.max_bytes = log.ledger.max_update_bytes();
    r.dense_bytes = log.dense_update_bytes;
    r.ratio_min = t.stats().min_ratio_used;
    r.ratio_max = t.stats().max_ratio_used;
    return log;
  };
  run(iid, &r.acc_iid);
  run(noniid, &r.acc_noniid);
  return r;
}

void print_dataset_block(const char* dataset, const Task& iid,
                         const Task& noniid, int rounds,
                         std::vector<std::vector<std::string>>& csv) {
  const int clients = 10;
  const std::int64_t ideal_updates =
      static_cast<std::int64_t>(clients) * rounds;

  std::cout << "\n-- " << dataset << " (" << rounds << " rounds, ideal "
            << ideal_updates << " updates) --\n";
  metrics::Table table({"method", "clients", "particip", "upd freq",
                        "cost reduc", "grad size", "compress",
                        "acc IID/non-IID"});

  auto emit = [&](const char* name, const MethodResult& r) {
    const double reduc =
        1.0 - static_cast<double>(r.upload_bytes) /
                  (static_cast<double>(ideal_updates) *
                   static_cast<double>(r.dense_bytes));
    std::string size_col =
        r.min_bytes == r.max_bytes
            ? metrics::fmt_bytes(r.min_bytes)
            : metrics::fmt_bytes(r.min_bytes) + " - " +
                  metrics::fmt_bytes(r.max_bytes);
    std::string ratio_col =
        r.ratio_max <= 1.0
            ? "1x"
            : metrics::fmt_f(r.ratio_max, 0) + "x - " +
                  metrics::fmt_f(r.ratio_min, 0) + "x";
    table.add_row({name, std::to_string(clients), r.participation,
                   std::to_string(r.updates), metrics::fmt_pct(-reduc, 2),
                   size_col, ratio_col,
                   metrics::fmt_pct(r.acc_iid) + " / " +
                       metrics::fmt_pct(r.acc_noniid)});
    csv.push_back({dataset, name, r.participation, std::to_string(r.updates),
                   metrics::fmt_f(reduc, 4), std::to_string(r.min_bytes),
                   std::to_string(r.max_bytes),
                   metrics::fmt_f(r.acc_iid, 4),
                   metrics::fmt_f(r.acc_noniid, 4)});
  };

  emit("FedAvg", eval_baseline(fl::Algorithm::kFedAvg, iid, noniid, rounds));
  emit("FedAdam", eval_baseline(fl::Algorithm::kFedAdam, iid, noniid, rounds));
  emit("FedProx", eval_baseline(fl::Algorithm::kFedProx, iid, noniid, rounds));
  emit("SCAFFOLD",
       eval_baseline(fl::Algorithm::kScaffold, iid, noniid, rounds));
  emit("AdaFL", eval_adafl(iid, noniid, rounds));
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "== Table I: synchronous FL evaluation ==\n";
  std::vector<std::vector<std::string>> csv;

  {
    Task iid = mnist_task(10, Dist::kIid, 1);
    Task noniid = mnist_task(10, Dist::kNonIid, 1);
    print_dataset_block("MNIST", iid, noniid, scaled(80), csv);
  }
  {
    Task iid = cifar100_task(10, Dist::kIid, 1);
    Task noniid = cifar100_task(10, Dist::kNonIid, 1);
    print_dataset_block("CIFAR-100", iid, noniid, scaled(40), csv);
  }

  save_csv("table1",
           {"dataset", "method", "participation", "updates", "cost_reduction",
            "min_bytes", "max_bytes", "acc_iid", "acc_noniid"},
           csv);
  return 0;
}
