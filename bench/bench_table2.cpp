// Table II: asynchronous FL evaluation — FedAsync and FedBuff at fixed
// r_p = 0.5-equivalent update budgets versus fully-asynchronous AdaFL, on
// the MNIST-like CNN task and the CIFAR-100-like VGG task, IID and non-IID.
#include "bench_common.h"

using namespace adafl;
using namespace adafl::bench;

namespace {

struct MethodResult {
  double acc_iid = 0.0, acc_noniid = 0.0;
  std::int64_t updates = 0;
  std::int64_t upload_bytes = 0;
  std::int64_t min_bytes = 0, max_bytes = 0;
  std::int64_t dense_bytes = 0;
  double ratio_min = 1.0, ratio_max = 1.0;
  std::string participation = "0.5";
};

fl::TrainLog run_baseline(const Task& task, fl::AsyncAlgorithm algo,
                          int max_updates, double horizon) {
  fl::AsyncConfig cfg;
  cfg.algo = algo;
  cfg.duration = horizon;
  cfg.max_updates = max_updates;
  cfg.eval_interval = horizon;  // final accuracy only
  cfg.client = task.client;
  cfg.seed = 42;
  fl::AsyncTrainer t(cfg, task.factory, &task.train, task.parts, &task.test);
  return t.run();
}

MethodResult eval_baseline(fl::AsyncAlgorithm algo, const Task& iid,
                           const Task& noniid, int max_updates,
                           double horizon) {
  MethodResult r;
  auto a = run_baseline(iid, algo, max_updates, horizon);
  auto b = run_baseline(noniid, algo, max_updates, horizon);
  r.acc_iid = a.final_accuracy();
  r.acc_noniid = b.final_accuracy();
  r.updates = (a.applied_updates + b.applied_updates) / 2;
  r.upload_bytes =
      (a.ledger.total_upload_bytes() + b.ledger.total_upload_bytes()) / 2;
  r.min_bytes = a.ledger.min_update_bytes();
  r.max_bytes = a.ledger.max_update_bytes();
  r.dense_bytes = a.dense_update_bytes;
  return r;
}

MethodResult eval_adafl(const Task& iid, const Task& noniid, int max_updates,
                        double horizon) {
  MethodResult r;
  r.participation = "Adaptive";
  auto run = [&](const Task& task, double* acc) {
    core::AdaFlAsyncConfig cfg;
    cfg.duration = horizon;
    cfg.max_updates = max_updates;
    cfg.eval_interval = horizon;
    cfg.client = task.client;
    cfg.seed = 42;
    cfg.params.compression.ratio_max = 105.0;  // paper's async bound
    core::AdaFlAsyncTrainer t(cfg, task.factory, &task.train, task.parts,
                              &task.test);
    auto log = t.run();
    *acc = log.final_accuracy();
    r.updates += log.applied_updates / 2;
    r.upload_bytes += log.ledger.total_upload_bytes() / 2;
    r.min_bytes = log.ledger.min_update_bytes();
    r.max_bytes = log.ledger.max_update_bytes();
    r.dense_bytes = log.dense_update_bytes;
    r.ratio_min = t.stats().min_ratio_used;
    r.ratio_max = t.stats().max_ratio_used;
  };
  run(iid, &r.acc_iid);
  run(noniid, &r.acc_noniid);
  return r;
}

void print_dataset_block(const char* dataset, const Task& iid,
                         const Task& noniid, int max_updates, double horizon,
                         std::vector<std::vector<std::string>>& csv) {
  // The paper's "ideal" budget: every client updating at every opportunity
  // (2x the baselines' r_p = 0.5 budget).
  const std::int64_t ideal_updates = 2 * max_updates;

  std::cout << "\n-- " << dataset << " (update budget " << max_updates
            << ", ideal " << ideal_updates << ") --\n";
  metrics::Table table({"method", "clients", "particip", "upd freq",
                        "cost reduc", "grad size", "compress",
                        "acc IID/non-IID"});

  auto emit = [&](const char* name, const MethodResult& r) {
    const double reduc =
        1.0 - static_cast<double>(r.upload_bytes) /
                  (static_cast<double>(ideal_updates) *
                   static_cast<double>(r.dense_bytes));
    std::string size_col =
        r.min_bytes == r.max_bytes
            ? metrics::fmt_bytes(r.min_bytes)
            : metrics::fmt_bytes(r.min_bytes) + " - " +
                  metrics::fmt_bytes(r.max_bytes);
    std::string ratio_col =
        r.ratio_max <= 1.0
            ? "1x"
            : metrics::fmt_f(r.ratio_max, 0) + "x - " +
                  metrics::fmt_f(r.ratio_min, 0) + "x";
    table.add_row({name, "10", r.participation, std::to_string(r.updates),
                   metrics::fmt_pct(-reduc, 2), size_col, ratio_col,
                   metrics::fmt_pct(r.acc_iid) + " / " +
                       metrics::fmt_pct(r.acc_noniid)});
    csv.push_back({dataset, name, r.participation, std::to_string(r.updates),
                   metrics::fmt_f(reduc, 4), std::to_string(r.min_bytes),
                   std::to_string(r.max_bytes),
                   metrics::fmt_f(r.acc_iid, 4),
                   metrics::fmt_f(r.acc_noniid, 4)});
  };

  emit("FedAsync", eval_baseline(fl::AsyncAlgorithm::kFedAsync, iid, noniid,
                                 max_updates, horizon));
  emit("FedBuff", eval_baseline(fl::AsyncAlgorithm::kFedBuff, iid, noniid,
                                max_updates, horizon));
  emit("AdaFL", eval_adafl(iid, noniid, max_updates, horizon));
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "== Table II: asynchronous FL evaluation ==\n";
  std::vector<std::vector<std::string>> csv;

  {
    Task iid = mnist_task(10, Dist::kIid, 1);
    Task noniid = mnist_task(10, Dist::kNonIid, 1);
    iid.client.local_steps = noniid.client.local_steps = 4;
    print_dataset_block("MNIST", iid, noniid, scaled(400), 1e9, csv);
  }
  {
    Task iid = cifar100_task(10, Dist::kIid, 1);
    Task noniid = cifar100_task(10, Dist::kNonIid, 1);
    print_dataset_block("CIFAR-100", iid, noniid, scaled(150), 1e9, csv);
  }

  save_csv("table2",
           {"dataset", "method", "participation", "updates", "cost_reduction",
            "min_bytes", "max_bytes", "acc_iid", "acc_noniid"},
           csv);
  return 0;
}
