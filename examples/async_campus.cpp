// Scenario: fully-asynchronous FL across a "campus" of devices with
// different compute speeds and heterogeneous links. Compares FedAsync,
// FedBuff, FedAT (tiered) and AdaFL-async on the same discrete-event
// simulation.
//
// Run: ./build/examples/async_campus
#include <iostream>

#include "core/adafl_async.h"
#include "data/synthetic.h"
#include "fl/async_trainer.h"
#include "fl/fedat.h"
#include "metrics/table.h"

using namespace adafl;

namespace {

constexpr int kClients = 8;
constexpr double kDuration = 25.0;  // simulated seconds

std::vector<net::LinkConfig> campus_links() {
  std::vector<net::LinkConfig> links;
  for (int i = 0; i < kClients; ++i)
    links.push_back(net::preset(i % 2 == 0 ? net::LinkQuality::kGood
                                           : net::LinkQuality::kCellular));
  return links;
}

std::vector<fl::DeviceProfile> campus_devices() {
  std::vector<fl::DeviceProfile> devices;
  for (int i = 0; i < kClients; ++i)
    devices.push_back(i < 2 ? fl::workstation()
                            : fl::straggler(fl::workstation(), 1.0 + i * 0.3));
  return devices;
}

}  // namespace

int main() {
  const auto train = data::make_synthetic(data::mnist_like(1200, 41));
  const auto test = data::make_synthetic(data::mnist_like(300, 9041));
  tensor::Rng prng(11);
  const auto parts =
      data::partition_dirichlet(train.labels(), kClients, 0.5, prng);
  const auto factory = nn::paper_cnn_factory(train.spec(), 5);

  fl::ClientTrainConfig client;
  client.batch_size = 12;
  client.local_steps = 3;
  client.lr = 0.08f;

  metrics::Table table({"method", "final acc", "applied updates", "upload",
                        "acc @ T/2"});

  auto report = [&](const char* name, const fl::TrainLog& log) {
    table.add_row({name, metrics::fmt_pct(log.final_accuracy()),
                   std::to_string(log.applied_updates),
                   metrics::fmt_bytes(log.ledger.total_upload_bytes()),
                   metrics::fmt_pct(log.accuracy_vs_time().y_at(kDuration / 2))});
  };

  for (auto algo : {fl::AsyncAlgorithm::kFedAsync,
                    fl::AsyncAlgorithm::kFedBuff}) {
    fl::AsyncConfig cfg;
    cfg.algo = algo;
    cfg.duration = kDuration;
    cfg.eval_interval = kDuration / 10;
    cfg.client = client;
    cfg.links = campus_links();
    cfg.buffer_size = 4;
    cfg.seed = 13;
    fl::AsyncTrainer t(cfg, factory, &train, parts, &test, campus_devices());
    report(fl::to_string(algo), t.run());
  }

  {
    fl::FedAtConfig cfg;
    cfg.num_tiers = 3;
    cfg.duration = kDuration;
    cfg.eval_interval = kDuration / 10;
    cfg.client = client;
    cfg.links = campus_links();
    cfg.seed = 13;
    fl::FedAtTrainer t(cfg, factory, &train, parts, &test, campus_devices());
    report("FedAT", t.run());
  }

  core::AdaFlAsyncConfig ada;
  ada.duration = kDuration;
  ada.eval_interval = kDuration / 10;
  ada.client = client;
  ada.links = campus_links();
  ada.seed = 13;
  ada.params.compression.ratio_max = 105.0;
  core::AdaFlAsyncTrainer t(ada, factory, &train, parts, &test,
                            campus_devices());
  report("AdaFL", t.run());

  table.print(std::cout);
  std::cout << "\nAdaFL compressed its uploads at "
            << metrics::fmt_f(t.stats().min_ratio_used, 1) << "x - "
            << metrics::fmt_f(t.stats().max_ratio_used, 1)
            << "x and skipped " << t.stats().skipped_clients
            << " low-utility cycles.\n";
  return 0;
}
