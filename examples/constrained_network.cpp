// Scenario: a fleet of embedded devices behind heterogeneous, constrained
// links (half good broadband, half congested cellular-class uplinks).
//
// Demonstrates the network-simulation API (link presets, bandwidth traces)
// together with AdaFL's utility-driven behaviour: congested clients score
// lower (the bandwidth term of Eq. 6) and are compressed harder or skipped,
// so the round time is no longer dominated by the slowest uplink.
//
// Run: ./build/examples/constrained_network
#include <iostream>

#include "core/adafl_sync.h"
#include "data/synthetic.h"
#include "fl/sync_trainer.h"
#include "metrics/table.h"

using namespace adafl;

namespace {

std::vector<net::LinkConfig> mixed_fleet() {
  // Clients 0-4: congested cellular links; clients 5-9: good broadband.
  return net::make_fleet(10, 0.5, net::LinkQuality::kGood,
                         net::LinkQuality::kCongested);
}

}  // namespace

int main() {
  const auto train = data::make_synthetic(data::mnist_like(1500, 21));
  const auto test = data::make_synthetic(data::mnist_like(400, 9021));
  tensor::Rng prng(3);
  const auto parts = data::partition_dirichlet(train.labels(), 10,
                                               /*alpha=*/0.5, prng);
  const auto factory = nn::paper_cnn_factory(train.spec(), 5);

  fl::ClientTrainConfig client;
  client.batch_size = 20;
  client.local_steps = 5;
  client.lr = 0.08f;

  const int rounds = 40;

  // FedAvg on the same constrained network: every update is a dense model,
  // so the congested half dictates the pace.
  fl::SyncConfig avg_cfg;
  avg_cfg.algo = fl::Algorithm::kFedAvg;
  avg_cfg.rounds = rounds;
  avg_cfg.participation = 0.5;
  avg_cfg.client = client;
  avg_cfg.links = mixed_fleet();
  avg_cfg.eval_every = 10;
  avg_cfg.seed = 7;
  fl::SyncTrainer fedavg(avg_cfg, factory, &train, parts, &test);
  const auto avg_log = fedavg.run();

  // AdaFL on the identical network.
  core::AdaFlSyncConfig ada_cfg;
  ada_cfg.rounds = rounds;
  ada_cfg.client = client;
  ada_cfg.links = mixed_fleet();
  ada_cfg.eval_every = 10;
  ada_cfg.seed = 7;
  core::AdaFlSyncTrainer adafl(ada_cfg, factory, &train, parts, &test);
  const auto ada_log = adafl.run();

  metrics::Table table({"method", "final acc", "sim. train time", "upload",
                        "updates"});
  auto row = [&](const char* name, const fl::TrainLog& log) {
    table.add_row({name, metrics::fmt_pct(log.final_accuracy()),
                   metrics::fmt_f(log.total_time, 1) + "s",
                   metrics::fmt_bytes(log.ledger.total_upload_bytes()),
                   std::to_string(log.ledger.delivered_updates())});
  };
  row("FedAvg", avg_log);
  row("AdaFL", ada_log);
  table.print(std::cout);

  std::cout << "\nPer-client uplink spend (AdaFL) — congested clients "
               "(0-4) get compressed harder:\n";
  for (int id = 0; id < 10; ++id)
    std::cout << "  client " << id << (id < 5 ? " (congested): " : " (good):      ")
              << metrics::fmt_bytes(ada_log.ledger.upload_bytes_of(id))
              << " in " << ada_log.ledger.updates_of(id) << " updates\n";
  return 0;
}
