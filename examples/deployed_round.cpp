// Deployed round-trip: run the AdaFL server and two clients over real TCP
// sockets on 127.0.0.1 — all in one process — then run the in-process
// simulator with the same seed and show that the two paths land on bitwise
// identical global weights (same CRC-32). This is the single-binary version
// of what flserver/flclient do across processes (see docs/deployment.md).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/deployed_round
#include <atomic>
#include <cstdio>
#include <iostream>
#include <optional>
#include <thread>
#include <vector>

#include "cli/task.h"
#include "core/adafl_sync.h"
#include "metrics/table.h"
#include "net/transport/crc32.h"
#include "net/transport/session.h"

using namespace adafl;

namespace {

std::uint32_t weights_crc(const std::vector<float>& w) {
  return net::transport::crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(w.data()), w.size() * 4));
}

}  // namespace

int main() {
  // --- The shared experiment definition. Everything a client needs is in
  //     here; the server ships it over the wire in WELCOME.
  cli::TaskSpec spec;
  spec.model = "mlp";
  spec.clients = 2;
  spec.train_samples = 300;
  spec.test_samples = 100;
  spec.seed = 21;

  fl::ClientTrainConfig client;
  client.batch_size = 16;
  client.local_steps = 3;
  client.lr = 0.05f;

  core::AdaFlParams params;
  params.max_selected = 2;
  params.tau = 0.3;
  const int rounds = 3;

  // --- 1. The deployed path: a TCP server plus two TCP clients, exactly
  //        like flserver + 2x flclient, but in one process.
  const auto task = cli::build_task(spec);
  net::transport::ServerSessionConfig scfg;
  scfg.params = params;
  scfg.rounds = rounds;
  scfg.eval_every = 1;
  scfg.expected_clients = spec.clients;
  scfg.client_config = cli::task_to_kv(spec, client);
  net::transport::ServerSession server(scfg, task.factory, &task.test);

  net::transport::TcpListener listener(0);  // ephemeral port
  const std::uint16_t port = listener.port();
  std::cout << "server listening on 127.0.0.1:" << port << "\n";

  std::atomic<bool> done{false};
  std::thread acceptor([&] {
    while (!done.load()) {
      auto t = listener.accept(std::chrono::milliseconds(100));
      if (t) server.add_transport(std::move(t));
    }
  });

  std::vector<std::optional<cli::TaskBundle>> bundles(
      static_cast<std::size_t>(spec.clients));
  std::vector<std::thread> clients;
  for (int id = 0; id < spec.clients; ++id) {
    clients.emplace_back([&, id] {
      net::transport::ClientSessionConfig ccfg;
      ccfg.client_id = id;
      ccfg.recv_poll = std::chrono::milliseconds(20);
      net::transport::ClientSession session(
          ccfg,
          [port] {
            return net::transport::TcpTransport::connect(
                "127.0.0.1", port, std::chrono::milliseconds(1000));
          },
          // The bootstrap rebuilds the task from the server-sent config and
          // derives the simulator-identical per-client seed.
          [&bundles, id](const std::map<std::string, std::string>& kv,
                         int cid, const core::AdaFlParams&) {
            cli::TaskSpec cspec;
            fl::ClientTrainConfig cc;
            cli::task_from_kv(kv, &cspec, &cc);
            auto& bundle = bundles[static_cast<std::size_t>(id)];
            bundle.emplace(cli::build_task(cspec));
            return fl::make_client(bundle->factory, &bundle->train,
                                   bundle->parts, cc, {},
                                   cspec.seed ^ core::kAdaFlClientSeedSalt,
                                   cid);
          });
      const auto st = session.run();
      std::printf("client %d: trained %d rounds, sent %d updates, %s\n", id,
                  st.rounds_trained, st.updates_sent,
                  st.completed ? "completed" : "gave up");
    });
  }

  const fl::TrainLog deployed_log = server.run();
  done.store(true);
  listener.close();
  acceptor.join();
  for (auto& t : clients) t.join();

  // --- 2. The simulated path: same seed, same config, no sockets.
  const auto sim_task = cli::build_task(spec);
  core::AdaFlSyncConfig sim_cfg;
  sim_cfg.params = params;
  sim_cfg.rounds = rounds;
  sim_cfg.client = client;
  sim_cfg.eval_every = 1;
  sim_cfg.seed = spec.seed;
  core::AdaFlSyncTrainer sim(sim_cfg, sim_task.factory, &sim_task.train,
                             sim_task.parts, &sim_task.test);
  const fl::TrainLog sim_log = sim.run();

  // --- 3. Compare.
  const std::uint32_t crc_deployed = weights_crc(server.global());
  const std::uint32_t crc_sim = weights_crc(sim.global());
  metrics::Table table({"path", "final accuracy", "weights crc32"});
  char crc_buf[16];
  std::snprintf(crc_buf, sizeof(crc_buf), "%08x", crc_deployed);
  table.add_row({"deployed (TCP)",
                 metrics::fmt_pct(deployed_log.final_accuracy()), crc_buf});
  std::snprintf(crc_buf, sizeof(crc_buf), "%08x", crc_sim);
  table.add_row({"simulated",
                 metrics::fmt_pct(sim_log.final_accuracy()), crc_buf});
  table.print(std::cout);

  if (server.global() != sim.global()) {
    std::cout << "MISMATCH: deployed and simulated weights differ\n";
    return 1;
  }
  std::cout << "deployed == simulated, bit for bit\n";
  return 0;
}
