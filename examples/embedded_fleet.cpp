// Scenario: the paper's overhead setup — a Raspberry-Pi-class cluster
// training the MNIST CNN, with one workstation-class straggler-free node
// for contrast. Demonstrates DeviceProfile-based heterogeneous compute,
// the empirical-study fault injectors, and per-run statistics over repeats.
//
// Run: ./build/examples/embedded_fleet
#include <iostream>

#include "data/synthetic.h"
#include "fl/sync_trainer.h"
#include "metrics/stats.h"
#include "metrics/table.h"

using namespace adafl;

int main() {
  const auto train = data::make_synthetic(data::mnist_like(1500, 31));
  const auto test = data::make_synthetic(data::mnist_like(300, 9031));
  const auto factory = nn::paper_cnn_factory(train.spec(), 5);

  fl::ClientTrainConfig client;
  client.batch_size = 20;
  client.local_steps = 5;
  client.lr = 0.05f;

  // Nine Raspberry-Pi-class nodes plus one workstation: the Pi cluster
  // dominates the simulated round time.
  std::vector<fl::DeviceProfile> devices(9, fl::raspberry_pi());
  devices.push_back(fl::workstation());

  std::cout << "Device fleet:\n";
  for (std::size_t i = 0; i < devices.size(); ++i)
    std::cout << "  node " << i << ": " << devices[i].name << " ("
              << metrics::fmt_f(devices[i].base_sec_per_sample * 1e3, 2)
              << " ms/sample)\n";

  // Repeat over seeds and report mean +- stddev, as the paper repeats each
  // experiment 10 times. Three repeats keep this example fast.
  metrics::RunningStat acc_clean, acc_faulty;
  metrics::RunningStat time_clean;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    tensor::Rng prng(seed);
    const auto parts = data::partition_shards(train.labels(), 10, 2, prng);

    fl::SyncConfig cfg;
    cfg.algo = fl::Algorithm::kFedAvg;
    cfg.rounds = 60;
    cfg.participation = 1.0;
    cfg.client = client;
    cfg.eval_every = 60;
    cfg.seed = seed;
    fl::SyncTrainer clean(cfg, factory, &train, parts, &test, devices);
    const auto clean_log = clean.run();
    acc_clean.add(clean_log.final_accuracy());
    time_clean.add(clean_log.total_time);

    cfg.faults.kind = fl::FaultKind::kDropout;
    cfg.faults.unreliable_fraction = 0.2;
    fl::SyncTrainer faulty(cfg, factory, &train, parts, &test, devices);
    acc_faulty.add(faulty.run().final_accuracy());
  }

  metrics::Table table({"condition", "final acc (mean)", "stddev"});
  table.add_row({"clean", metrics::fmt_pct(acc_clean.mean()),
                 metrics::fmt_pct(acc_clean.stddev())});
  table.add_row({"20% dropout", metrics::fmt_pct(acc_faulty.mean()),
                 metrics::fmt_pct(acc_faulty.stddev())});
  table.print(std::cout);

  std::cout << "\nSimulated training time on the Pi fleet: "
            << metrics::fmt_f(time_clean.mean(), 1)
            << "s for 60 rounds — the paper's insight: a moderate dropout "
               "level costs almost no accuracy.\n";
  return 0;
}
