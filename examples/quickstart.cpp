// Quickstart: train a federated model with FedAvg, then with AdaFL, on a
// synthetic MNIST-like task, and compare accuracy and communication cost.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <chrono>
#include <iostream>

#include "core/adafl_sync.h"
#include "data/synthetic.h"
#include "fl/sync_trainer.h"
#include "metrics/table.h"

using namespace adafl;

int main() {
  // --- 1. Data: a synthetic 10-class image task, split non-IID over 10
  //        clients (2 label shards each).
  const auto train = data::make_synthetic(data::mnist_like(1500, /*seed=*/1));
  const auto test = data::make_synthetic([] {
    auto c = data::mnist_like(400, /*seed=*/999);
    return c;
  }());
  tensor::Rng part_rng(7);
  const data::Partition parts =
      data::partition_shards(train.labels(), /*num_clients=*/10,
                             /*shards_per_client=*/3, part_rng);

  // --- 2. Model: the paper's two-conv CNN.
  const nn::ImageSpec spec = train.spec();
  const nn::ModelFactory factory = nn::paper_cnn_factory(spec, /*seed=*/3);

  fl::ClientTrainConfig client;
  client.batch_size = 20;
  client.local_steps = 5;
  client.lr = 0.05f;

  const auto t0 = std::chrono::steady_clock::now();

  // --- 3. Baseline: FedAvg at 50% participation.
  fl::SyncConfig avg_cfg;
  avg_cfg.algo = fl::Algorithm::kFedAvg;
  avg_cfg.rounds = 80;
  avg_cfg.participation = 0.5;
  avg_cfg.client = client;
  avg_cfg.eval_every = 10;
  avg_cfg.seed = 11;
  fl::SyncTrainer fedavg(avg_cfg, factory, &train, parts, &test);
  const fl::TrainLog avg_log = fedavg.run();

  // --- 4. AdaFL: utility-guided selection + adaptive DGC compression.
  core::AdaFlSyncConfig ada_cfg;
  ada_cfg.rounds = 80;
  ada_cfg.client = client;
  ada_cfg.eval_every = 10;
  ada_cfg.seed = 11;
  ada_cfg.params.max_selected = 5;
  ada_cfg.params.tau = 0.5;
  ada_cfg.params.compression.warmup_rounds = 8;
  core::AdaFlSyncTrainer adafl(ada_cfg, factory, &train, parts, &test);
  const fl::TrainLog ada_log = adafl.run();

  const auto t1 = std::chrono::steady_clock::now();

  // --- 5. Report.
  metrics::Table table({"method", "final acc", "updates", "upload",
                        "cost vs ideal"});
  const std::int64_t ideal_updates = 10 * 80;  // all clients, every round
  auto row = [&](const char* name, const fl::TrainLog& log) {
    table.add_row({name, metrics::fmt_pct(log.final_accuracy()),
                   std::to_string(log.ledger.delivered_updates()),
                   metrics::fmt_bytes(log.ledger.total_upload_bytes()),
                   metrics::fmt_pct(-log.ledger.upload_cost_reduction(
                       ideal_updates, log.dense_update_bytes))});
  };
  row("FedAvg", avg_log);
  row("AdaFL", ada_log);
  table.print(std::cout);

  std::cout << "\nAdaFL compression ratios used: "
            << metrics::fmt_f(adafl.stats().min_ratio_used, 1) << "x - "
            << metrics::fmt_f(adafl.stats().max_ratio_used, 1) << "x\n";
  std::cout << "wall time: "
            << std::chrono::duration<double>(t1 - t0).count() << "s\n";
  return 0;
}
