// Scenario: the paper's motivating deployment — wearable devices doing
// human-activity recognition over 3-axis accelerometer windows, training
// federated on cellular-class links with AdaFL vs FedAvg.
//
// Demonstrates the 1-D conv stack (Conv1d/MaxPool1d), the synthetic HAR
// dataset, Dirichlet non-IID partitioning (each person's activity mix
// differs), and AdaFL's cost advantage on an embedded fleet.
//
// Run: ./build/examples/wearable_har
#include <iostream>

#include "core/adafl_sync.h"
#include "data/har.h"
#include "fl/sync_trainer.h"
#include "metrics/plot.h"
#include "metrics/table.h"

using namespace adafl;

int main() {
  // --- 1. Data: 6 activities, 64-step windows, 12 wearables with skewed
  //        personal activity mixes.
  data::HarConfig cfg;
  cfg.num_samples = 1200;
  cfg.length = 64;
  cfg.activities = 6;
  cfg.noise_stddev = 0.5;  // noisy wearable sensors
  cfg.seed = 1;
  const auto train = data::make_har(cfg);
  auto test_cfg = cfg;
  test_cfg.num_samples = 300;
  test_cfg.seed = 9001;
  const auto test = data::make_har(test_cfg);

  constexpr int kDevices = 12;
  tensor::Rng prng(3);
  const auto parts =
      data::partition_dirichlet(train.labels(), kDevices, 0.5, prng);
  const auto factory = data::har_cnn_factory(cfg.length, cfg.activities, 5);

  fl::ClientTrainConfig client;
  client.batch_size = 16;
  client.local_steps = 4;
  client.lr = 0.05f;

  const auto links = net::make_fleet(kDevices, 1.0, net::LinkQuality::kGood,
                                     net::LinkQuality::kCellular);
  const std::vector<fl::DeviceProfile> devices(
      kDevices, fl::raspberry_pi());  // wearable-class compute
  const int rounds = 35;

  // --- 2. FedAvg baseline on the cellular fleet.
  fl::SyncConfig avg_cfg;
  avg_cfg.algo = fl::Algorithm::kFedAvg;
  avg_cfg.rounds = rounds;
  avg_cfg.participation = 0.5;
  avg_cfg.client = client;
  avg_cfg.links = links;
  avg_cfg.eval_every = 5;
  avg_cfg.seed = 7;
  fl::SyncTrainer fedavg(avg_cfg, factory, &train, parts, &test, devices);
  const auto avg_log = fedavg.run();

  // --- 3. AdaFL on the same fleet.
  core::AdaFlSyncConfig ada_cfg;
  ada_cfg.rounds = rounds;
  ada_cfg.client = client;
  ada_cfg.links = links;
  ada_cfg.eval_every = 5;
  ada_cfg.seed = 7;
  ada_cfg.params.max_selected = 6;
  // Calibrate the bandwidth reference to this deployment: on an all-
  // cellular fleet the default (broadband) bw_ref would push every
  // utility score below tau and starve selection.
  ada_cfg.params.utility.bw_ref = net::preset(net::LinkQuality::kCellular).up_bw;
  ada_cfg.params.compression.warmup_rounds = 8;
  ada_cfg.params.compression.ratio_max = 32.0;  // gentler ceiling for the tiny model
  core::AdaFlSyncTrainer adafl(ada_cfg, factory, &train, parts, &test,
                               devices);
  const auto ada_log = adafl.run();

  // --- 4. Report.
  metrics::Table table(
      {"method", "final acc", "sim. time", "upload", "updates"});
  auto row = [&](const char* name, const fl::TrainLog& log) {
    table.add_row({name, metrics::fmt_pct(log.final_accuracy()),
                   metrics::fmt_f(log.total_time, 1) + "s",
                   metrics::fmt_bytes(log.ledger.total_upload_bytes()),
                   std::to_string(log.ledger.delivered_updates())});
  };
  row("FedAvg", avg_log);
  row("AdaFL", ada_log);
  table.print(std::cout);

  std::cout << "\naccuracy vs round:\n";
  metrics::AsciiChart chart(60, 12);
  chart.add("FedAvg", avg_log.accuracy_vs_round());
  chart.add("AdaFL", ada_log.accuracy_vs_round());
  chart.print(std::cout);
  return 0;
}
