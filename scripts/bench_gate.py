#!/usr/bin/env python3
"""Perf-regression gate over bench_results/BENCH_kernels.json.

Compares a fresh bench run against the committed baseline and fails when
any (bench, size, threads) config regresses by more than the tolerance.

CI machines are not the machine the baseline was recorded on, so raw
seconds are not comparable run-to-run. The gate first computes a
machine-speed calibration factor — the median of per-config ratios
(new_seconds / baseline_seconds) — and then flags configs whose ratio
exceeds median * (1 + tolerance). A uniformly slower machine shifts every
ratio equally and passes; a genuine regression shows up as an outlier
against the run's own median.

Seconds are scale-independent: ADAFL_BENCH_SCALE changes only rep counts
(min-of-reps is reported), so a smoke pass gates against the same numbers
as a full pass, just with more timing noise.

Configs whose baseline time is below the noise floor (default 20 ms) are
report-only: min-of-reps over sub-millisecond kernels jitters far more
than the tolerance, especially in ADAFL_BENCH_SCALE smoke passes, and the
substantial configs (large matmuls, client_round, sync_round) are the
ones a real regression cannot hide from.

Usage:
  scripts/bench_gate.py <baseline.json> <new.json> \
      [--tolerance=0.25] [--min-seconds=0.02]

Exit codes: 0 ok, 1 regression found, 2 bad input.
Environment: BENCH_GATE_TOLERANCE overrides the default tolerance (0.25).
"""

import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for r in doc.get("results", []):
        key = (r["bench"], r["size"], r["threads"])
        rows[key] = float(r["seconds"])
    if not rows:
        print(f"bench_gate: {path} has no results", file=sys.stderr)
        sys.exit(2)
    return rows


def median(xs):
    s = sorted(xs)
    n = len(s)
    return s[n // 2] if n % 2 else 0.5 * (s[n // 2 - 1] + s[n // 2])


def main(argv):
    tolerance = float(os.environ.get("BENCH_GATE_TOLERANCE", "0.25"))
    min_seconds = 0.02
    paths = []
    for a in argv[1:]:
        if a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])
        elif a.startswith("--min-seconds="):
            min_seconds = float(a.split("=", 1)[1])
        else:
            paths.append(a)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    base, new = load(paths[0]), load(paths[1])
    shared = sorted(set(base) & set(new))
    if not shared:
        print("bench_gate: baseline and new run share no configs",
              file=sys.stderr)
        return 2
    missing = sorted(set(base) - set(new))
    for key in missing:
        print(f"bench_gate: WARNING config {key} missing from new run")

    ratios = {k: new[k] / base[k] for k in shared if base[k] > 0}
    cal = median(list(ratios.values()))
    limit = cal * (1.0 + tolerance)
    print(f"bench_gate: {len(shared)} configs, machine calibration "
          f"x{cal:.3f}, per-config limit x{limit:.3f} "
          f"(tolerance {tolerance:.0%})")

    failed = []
    for key in shared:
        r = ratios.get(key)
        if r is None:
            continue
        bench, size, threads = key
        gated = base[key] >= min_seconds
        if r <= limit:
            status = "ok"
        elif gated:
            status = "FAIL"
            failed.append(key)
        else:
            status = "slow"  # below the noise floor: report, don't gate
        print(f"  [{status:4s}] {bench:<16s} size={size:<7d} "
              f"threads={threads}  base={base[key]:.4f}s "
              f"new={new[key]:.4f}s  x{r:.3f}")

    if failed:
        print(f"bench_gate: {len(failed)} config(s) regressed beyond "
              f"{tolerance:.0%} after calibration:", file=sys.stderr)
        for key in failed:
            print(f"  {key}", file=sys.stderr)
        return 1
    print("bench_gate: no perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
