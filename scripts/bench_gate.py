#!/usr/bin/env python3
"""Perf-regression gate over bench_results/BENCH_kernels.json.

Compares a fresh bench run against the committed baseline and fails when
any (bench, size, threads, backend) config regresses by more than the
tolerance.

CI machines are not the machine the baseline was recorded on, so raw
seconds are not comparable run-to-run. The gate first computes a
machine-speed calibration factor — the median of per-config ratios
(new_seconds / baseline_seconds) — and then flags configs whose ratio
exceeds median * (1 + tolerance). A uniformly slower machine shifts every
ratio equally and passes; a genuine regression shows up as an outlier
against the run's own median.

Rows are keyed by kernel backend as well: a scalar-vs-scalar comparison
never absorbs an avx2 regression into the calibration median (and vice
versa). Every row must carry an explicit "backend" field — the committed
baseline was re-recorded with backends long ago, so a row without one is
a malformed input (exit 2), not a legacy scalar measurement.

The gate also understands bench_results/BENCH_server_scaling.json
(scripts/server_scaling_soak.sh with EMIT_JSON): those rows carry
"clients" and "shards" instead of "size" and "threads", mapped into the
same key slots, with seconds = mean round latency of the event-loop
server at that fleet size.

Beyond the regression check, the gate asserts the SIMD backend is
actually fast: if the new run contains avx2 rows, avx2 matmul_nt at
size 512 / 1 thread must be at least 3x faster than scalar in the same
run. This is a same-machine, same-run comparison, so no calibration is
involved; it catches a dispatch table silently wired to the scalar
kernels. Skipped with a warning when the bench machine has no avx2.

Seconds are scale-independent: ADAFL_BENCH_SCALE changes only rep counts
(min-of-reps is reported), so a smoke pass gates against the same numbers
as a full pass, just with more timing noise.

Configs whose baseline time is below the noise floor (default 20 ms) are
report-only: min-of-reps over sub-millisecond kernels jitters far more
than the tolerance, especially in ADAFL_BENCH_SCALE smoke passes, and the
substantial configs (large matmuls, client_round, sync_round) are the
ones a real regression cannot hide from.

Usage:
  scripts/bench_gate.py <baseline.json> <new.json> \
      [--tolerance=0.25] [--min-seconds=0.02] [--min-simd-speedup=3.0]

Exit codes: 0 ok, 1 regression found, 2 bad input.
Environment: BENCH_GATE_TOLERANCE overrides the default tolerance (0.25).
"""

import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for r in doc.get("results", []):
        # The backend key is mandatory: silently defaulting it would let a
        # bench run that lost its backend stamp gate against the wrong rows.
        if "backend" not in r:
            print(f"bench_gate: {path}: row {r.get('bench', '?')!r} has no "
                  "'backend' field (malformed bench output)", file=sys.stderr)
            sys.exit(2)
        # BENCH_server_scaling.json rows are keyed by fleet shape instead of
        # problem size: clients maps to the size slot and event-loop shards
        # to the threads slot, so the same calibration/tolerance machinery
        # gates server round latency per (clients, shards) point.
        if "size" not in r and "clients" in r:
            key = (r["bench"], r["clients"], r["shards"], r["backend"])
        else:
            key = (r["bench"], r["size"], r["threads"], r["backend"])
        rows[key] = float(r["seconds"])
    if not rows:
        print(f"bench_gate: {path} has no results", file=sys.stderr)
        sys.exit(2)
    return rows


def median(xs):
    s = sorted(xs)
    n = len(s)
    return s[n // 2] if n % 2 else 0.5 * (s[n // 2 - 1] + s[n // 2])


def check_simd_speedup(new, min_speedup):
    """Same-run scalar-vs-avx2 check; returns False on failure."""
    if not any(k[3] == "avx2" for k in new):
        print("bench_gate: WARNING no avx2 rows in new run; "
              "skipping SIMD speedup check")
        return True
    probe = ("matmul_nt", 512, 1)
    scalar = new.get(probe + ("scalar",))
    avx2 = new.get(probe + ("avx2",))
    if not scalar or not avx2:
        print(f"bench_gate: WARNING {probe} missing from new run for one "
              "backend; skipping SIMD speedup check")
        return True
    speedup = scalar / avx2
    ok = speedup >= min_speedup
    print(f"bench_gate: SIMD speedup check: avx2 matmul_nt size=512 "
          f"threads=1 is x{speedup:.2f} vs scalar "
          f"(required x{min_speedup:.1f}) -> {'ok' if ok else 'FAIL'}")
    if not ok:
        print("bench_gate: avx2 backend is not delivering its speedup — "
              "check the dispatch table and per-file -mavx2 flags",
              file=sys.stderr)
    return ok


def main(argv):
    tolerance = float(os.environ.get("BENCH_GATE_TOLERANCE", "0.25"))
    min_seconds = 0.02
    min_simd_speedup = 3.0
    paths = []
    for a in argv[1:]:
        if a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])
        elif a.startswith("--min-seconds="):
            min_seconds = float(a.split("=", 1)[1])
        elif a.startswith("--min-simd-speedup="):
            min_simd_speedup = float(a.split("=", 1)[1])
        else:
            paths.append(a)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    base, new = load(paths[0]), load(paths[1])
    shared = sorted(set(base) & set(new))
    if not shared:
        print("bench_gate: baseline and new run share no configs",
              file=sys.stderr)
        return 2
    missing = sorted(set(base) - set(new))
    for key in missing:
        print(f"bench_gate: WARNING config {key} missing from new run")

    ratios = {k: new[k] / base[k] for k in shared if base[k] > 0}
    cal = median(list(ratios.values()))
    limit = cal * (1.0 + tolerance)
    print(f"bench_gate: {len(shared)} configs, machine calibration "
          f"x{cal:.3f}, per-config limit x{limit:.3f} "
          f"(tolerance {tolerance:.0%})")

    failed = []
    for key in shared:
        r = ratios.get(key)
        if r is None:
            continue
        bench, size, threads, backend = key
        gated = base[key] >= min_seconds
        if r <= limit:
            status = "ok"
        elif gated:
            status = "FAIL"
            failed.append(key)
        else:
            status = "slow"  # below the noise floor: report, don't gate
        print(f"  [{status:4s}] {bench:<16s} backend={backend:<7s} "
              f"size={size:<7d} threads={threads}  base={base[key]:.4f}s "
              f"new={new[key]:.4f}s  x{r:.3f}")

    ok = check_simd_speedup(new, min_simd_speedup)

    if failed:
        print(f"bench_gate: {len(failed)} config(s) regressed beyond "
              f"{tolerance:.0%} after calibration:", file=sys.stderr)
        for key in failed:
            print(f"  {key}", file=sys.stderr)
        return 1
    if not ok:
        return 1
    print("bench_gate: no perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
