#!/usr/bin/env bash
# Chaos soak: prove kill -9 crash recovery end to end with real processes.
#
# 1. Reference: flsim --algo=adafl-sync records the expected weights-crc32.
# 2. A real flserver runs with --checkpoint-dir --checkpoint-every=1 and 4
#    flclient processes; once the first checkpoint lands, the server is
#    killed with SIGKILL (no graceful shutdown, no final write).
# 3. A replacement flserver starts with --resume on the same checkpoint dir;
#    the surviving clients redial it and finish the run.
# 4. The recovered deployment must report the reference weights-crc32 —
#    bitwise recovery, not approximate — and a "resumed-from:" line.
# 5. All three runs record JSONL traces; the two server segments, stitched
#    across the kill -9 boundary by trace_diff.py's resume rule, must be
#    semantically identical to the uninterrupted simulator trace (transport
#    and checkpoint/resume events explicitly ignored).
#
# Usage: scripts/chaos_soak.sh [build_dir] [--transport=tcp|udp]
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
BUILD_DIR="build"
TRANSPORT="tcp"
for arg in "$@"; do
  case "$arg" in
    --transport=*) TRANSPORT="${arg#--transport=}" ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
if [[ "$TRANSPORT" != "tcp" && "$TRANSPORT" != "udp" ]]; then
  echo "error: --transport must be tcp or udp" >&2
  exit 2
fi
CLI_DIR="$BUILD_DIR/src/cli"
CLIENTS=4
ROUNDS=6
# Heavy enough per round (samples x steps) that the SIGKILL below reliably
# lands mid-run rather than after the final round.
TASK_FLAGS=(--model=mlp --clients=$CLIENTS --rounds=$ROUNDS --steps=8
            --train-samples=2000 --test-samples=200 --seed=7)

for bin in flsim flserver flclient; do
  if [[ ! -x "$CLI_DIR/$bin" ]]; then
    echo "error: $CLI_DIR/$bin not found (build first)" >&2
    exit 2
  fi
done

workdir="$(mktemp -d)"
server_pid=""
client_pids=()
cleanup() {
  [[ -n "$server_pid" ]] && kill "$server_pid" 2>/dev/null || true
  for pid in "${client_pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

extract() { sed -n "s/^$2: //p" "$1" | head -n1; }

echo "== reference run (flsim --algo=adafl-sync) =="
"$CLI_DIR/flsim" --algo=adafl-sync "${TASK_FLAGS[@]}" --chart=0 \
  --trace="$workdir/sim.jsonl" > "$workdir/sim.log"
ref_crc="$(extract "$workdir/sim.log" weights-crc32)"
ref_acc="$(extract "$workdir/sim.log" final-accuracy)"
echo "reference: accuracy=$ref_acc weights-crc32=$ref_crc"

ckpt_dir="$workdir/ckpt"
mkdir -p "$ckpt_dir"

echo
echo "== phase 1: deployed run ($TRANSPORT), then kill -9 the server =="
"$CLI_DIR/flserver" --port=0 --transport="$TRANSPORT" "${TASK_FLAGS[@]}" \
  --checkpoint-dir="$ckpt_dir" --checkpoint-every=1 \
  --trace="$workdir/server1.jsonl" \
  > "$workdir/server1.log" 2>&1 &
server_pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(extract "$workdir/server1.log" listening-on)"
  [[ -n "$port" ]] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "error: flserver exited early" >&2
    cat "$workdir/server1.log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -n "$port" ]] || { echo "error: no listening-on line" >&2; exit 1; }
echo "server listening on port $port"

# Clients get a generous dial budget so they survive the server's death and
# keep redialing until the replacement comes up.
for id in $(seq 0 $((CLIENTS - 1))); do
  "$CLI_DIR/flclient" --host=127.0.0.1 --port="$port" --id="$id" \
    --transport="$TRANSPORT" \
    --backoff-initial-ms=50 --backoff-max-ms=500 --max-attempts=200 \
    > "$workdir/client$id.log" 2>&1 &
  client_pids+=($!)
done

# Wait for the first durable checkpoint, then SIGKILL mid-run: no signal
# handler, no final write — recovery must come from the cadence checkpoint.
for _ in $(seq 1 600); do
  [[ -f "$ckpt_dir/server.ckpt" ]] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "error: flserver died before its first checkpoint" >&2
    cat "$workdir/server1.log" >&2
    exit 1
  fi
  sleep 0.05
done
[[ -f "$ckpt_dir/server.ckpt" ]] || {
  echo "error: no checkpoint appeared" >&2; exit 1; }
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "killed flserver (SIGKILL) after its first checkpoint"

echo
echo "== phase 2: resume on the same port and finish =="
"$CLI_DIR/flserver" --port="$port" --transport="$TRANSPORT" "${TASK_FLAGS[@]}" \
  --checkpoint-dir="$ckpt_dir" --checkpoint-every=1 --resume=1 \
  --trace="$workdir/server2.jsonl" \
  > "$workdir/server2.log" 2>&1 &
server_pid=$!

for i in "${!client_pids[@]}"; do
  if ! wait "${client_pids[$i]}"; then
    echo "error: flclient $i failed" >&2
    cat "$workdir/client$i.log" >&2
    cat "$workdir/server2.log" >&2
    exit 1
  fi
done
client_pids=()
wait "$server_pid"
server_pid=""
cat "$workdir/server2.log"

resumed_from="$(extract "$workdir/server2.log" resumed-from)"
dep_crc="$(extract "$workdir/server2.log" weights-crc32)"
dep_acc="$(extract "$workdir/server2.log" final-accuracy)"

echo
echo "resumed-from: ${resumed_from:-<missing>}"
echo "recovered: accuracy=$dep_acc weights-crc32=$dep_crc"

if [[ -z "$resumed_from" || "$resumed_from" -lt 2 ]]; then
  echo "FAIL: server did not resume from the checkpoint" >&2
  exit 1
fi
if [[ -z "$ref_crc" || -z "$dep_crc" ]]; then
  echo "FAIL: missing weights-crc32 line" >&2
  exit 1
fi
if [[ "$dep_crc" != "$ref_crc" || "$dep_acc" != "$ref_acc" ]]; then
  echo "FAIL: recovered run diverged from the uninterrupted reference" >&2
  exit 1
fi
echo "PASS: kill -9 recovery is bitwise identical to the uninterrupted run"

echo
echo "== trace equivalence across the kill -9 boundary =="
# The stitched server segments (server1 may end in a SIGKILL-truncated line;
# server2's manifest rewinds to its resume round) must replay the exact
# semantic event stream of the uninterrupted simulator. Checkpoint/resume
# events only exist on the recovering path, so they join the transport
# events on the explicit ignore list.
if ! python3 "$SCRIPT_DIR/trace_diff.py" \
    "$workdir/server1.jsonl,$workdir/server2.jsonl" "$workdir/sim.jsonl" \
    --ignore=frame_tx,frame_rx,retransmit,reconnect,datagram_lost,fec_repair,checkpoint,resume; then
  echo "FAIL: stitched deployed trace diverged from the simulator trace" >&2
  exit 1
fi
echo "PASS: stitched kill/resume trace is semantically identical to flsim"
