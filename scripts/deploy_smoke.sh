#!/usr/bin/env bash
# Deployment smoke test: run the same AdaFL experiment through the simulator
# (flsim) and through a real TCP deployment (flserver + 4 flclient
# processes on 127.0.0.1), then assert the two report identical final
# accuracy AND bitwise-identical global weights (same weights-crc32 line).
#
# Usage: scripts/deploy_smoke.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
CLI_DIR="$BUILD_DIR/src/cli"
CLIENTS=4
TASK_FLAGS=(--model=mlp --clients=$CLIENTS --rounds=3
            --train-samples=600 --test-samples=200 --seed=7)

for bin in flsim flserver flclient; do
  if [[ ! -x "$CLI_DIR/$bin" ]]; then
    echo "error: $CLI_DIR/$bin not found (build first)" >&2
    exit 2
  fi
done

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== simulator (flsim --algo=adafl-sync) =="
"$CLI_DIR/flsim" --algo=adafl-sync "${TASK_FLAGS[@]}" --chart=0 \
  | tee "$workdir/sim.log"

echo
echo "== deployed (flserver + $CLIENTS flclient) =="
"$CLI_DIR/flserver" --port=0 "${TASK_FLAGS[@]}" > "$workdir/server.log" 2>&1 &
server_pid=$!

# Wait for the server to print its ephemeral port.
port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^listening-on: //p' "$workdir/server.log" | head -n1)"
  [[ -n "$port" ]] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "error: flserver exited early" >&2
    cat "$workdir/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$port" ]]; then
  echo "error: flserver never reported its port" >&2
  exit 1
fi
echo "server listening on port $port"

client_pids=()
for id in $(seq 0 $((CLIENTS - 1))); do
  "$CLI_DIR/flclient" --host=127.0.0.1 --port="$port" --id="$id" \
    > "$workdir/client$id.log" 2>&1 &
  client_pids+=($!)
done

for i in "${!client_pids[@]}"; do
  if ! wait "${client_pids[$i]}"; then
    echo "error: flclient $i failed" >&2
    cat "$workdir/client$i.log" >&2
    exit 1
  fi
done
wait "$server_pid"
server_pid=""
cat "$workdir/server.log"

extract() { sed -n "s/^$2: //p" "$1" | head -n1; }
sim_acc="$(extract "$workdir/sim.log" final-accuracy)"
sim_crc="$(extract "$workdir/sim.log" weights-crc32)"
dep_acc="$(extract "$workdir/server.log" final-accuracy)"
dep_crc="$(extract "$workdir/server.log" weights-crc32)"

echo
echo "simulator: accuracy=$sim_acc weights-crc32=$sim_crc"
echo "deployed:  accuracy=$dep_acc weights-crc32=$dep_crc"

if [[ -z "$sim_crc" || -z "$dep_crc" ]]; then
  echo "FAIL: missing weights-crc32 line" >&2
  exit 1
fi
if [[ "$sim_acc" != "$dep_acc" || "$sim_crc" != "$dep_crc" ]]; then
  echo "FAIL: deployed run diverged from the simulator" >&2
  exit 1
fi
echo "PASS: deployed run is bitwise identical to the simulator"
