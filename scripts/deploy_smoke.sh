#!/usr/bin/env bash
# Deployment smoke test: run the same AdaFL experiment through the simulator
# (flsim) and through real deployments on 127.0.0.1 — once over TCP and once
# over the FEC-coded UDP datagram transport — then assert every deployed run
# reports identical final accuracy AND bitwise-identical global weights
# (same weights-crc32 line) as the simulator.
#
# Usage: scripts/deploy_smoke.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
CLI_DIR="$BUILD_DIR/src/cli"
CLIENTS=4
TRANSPORTS=(tcp udp)
TASK_FLAGS=(--model=mlp --clients=$CLIENTS --rounds=3
            --train-samples=600 --test-samples=200 --seed=7)

for bin in flsim flserver flclient; do
  if [[ ! -x "$CLI_DIR/$bin" ]]; then
    echo "error: $CLI_DIR/$bin not found (build first)" >&2
    exit 2
  fi
done

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

# Runs flserver + $CLIENTS flclient over $1 (tcp|udp); logs land in
# $workdir/$1/.
run_deployed() {
  local transport="$1"
  local dir="$workdir/$transport"
  mkdir -p "$dir"
  "$CLI_DIR/flserver" --port=0 --transport="$transport" "${TASK_FLAGS[@]}" \
    > "$dir/server.log" 2>&1 &
  server_pid=$!

  # Wait for the server to print its ephemeral port.
  local port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^listening-on: //p' "$dir/server.log" | head -n1)"
    [[ -n "$port" ]] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
      echo "error: flserver ($transport) exited early" >&2
      cat "$dir/server.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "error: flserver ($transport) never reported its port" >&2
    exit 1
  fi
  echo "server listening on port $port ($transport)"

  local client_pids=()
  local id
  for id in $(seq 0 $((CLIENTS - 1))); do
    "$CLI_DIR/flclient" --host=127.0.0.1 --port="$port" --id="$id" \
      --transport="$transport" > "$dir/client$id.log" 2>&1 &
    client_pids+=($!)
  done

  local i
  for i in "${!client_pids[@]}"; do
    if ! wait "${client_pids[$i]}"; then
      echo "error: flclient $i ($transport) failed" >&2
      cat "$dir/client$i.log" >&2
      exit 1
    fi
  done
  wait "$server_pid"
  server_pid=""
  cat "$dir/server.log"
}

extract() { sed -n "s/^$2: //p" "$1" | head -n1; }

echo "== simulator (flsim --algo=adafl-sync) =="
"$CLI_DIR/flsim" --algo=adafl-sync "${TASK_FLAGS[@]}" --chart=0 \
  | tee "$workdir/sim.log"
sim_acc="$(extract "$workdir/sim.log" final-accuracy)"
sim_crc="$(extract "$workdir/sim.log" weights-crc32)"
if [[ -z "$sim_crc" ]]; then
  echo "FAIL: simulator printed no weights-crc32 line" >&2
  exit 1
fi

fail=0
for transport in "${TRANSPORTS[@]}"; do
  echo
  echo "== deployed over $transport (flserver + $CLIENTS flclient) =="
  run_deployed "$transport"
  dep_acc="$(extract "$workdir/$transport/server.log" final-accuracy)"
  dep_crc="$(extract "$workdir/$transport/server.log" weights-crc32)"
  echo
  echo "simulator:      accuracy=$sim_acc weights-crc32=$sim_crc"
  echo "deployed($transport): accuracy=$dep_acc weights-crc32=$dep_crc"
  if [[ -z "$dep_crc" ]]; then
    echo "FAIL($transport): missing weights-crc32 line" >&2
    fail=1
  elif [[ "$sim_acc" != "$dep_acc" || "$sim_crc" != "$dep_crc" ]]; then
    echo "FAIL($transport): deployed run diverged from the simulator" >&2
    fail=1
  else
    echo "PASS($transport): deployed run is bitwise identical to the simulator"
  fi
done

[[ "$fail" -eq 0 ]] || exit 1
echo
echo "PASS: all transports bitwise identical to the simulator"
