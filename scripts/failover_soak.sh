#!/usr/bin/env bash
# Failover soak: prove hot-standby replication + automatic mid-run failover
# end to end with real processes.
#
# 1. Reference: flsim --algo=adafl-sync records the expected weights-crc32.
# 2. A primary flserver runs with --checkpoint-dir --checkpoint-every=1; a
#    standby flserver attaches to it with --standby=host:port and tails its
#    checkpoint stream into a second durable directory.
# 3. Clients dial with a prioritized endpoint list
#    --server=primary,standby so they can rotate on their own — nothing
#    external tells them the primary died.
# 4. Once the first replicated checkpoint lands on the standby's disk the
#    primary is killed with SIGKILL. No handover message is ever sent: the
#    standby's heartbeat lease expires, it promotes itself from the newest
#    complete replicated checkpoint, and only then binds its client port.
# 5. The promoted run must report the reference weights-crc32 — bitwise
#    failover, not approximate — plus "promoted-at:"/"resumed-from:" lines,
#    and every client must finish (exit 0 requires completed=1).
# 6. The two server traces, stitched across the SIGKILL boundary by
#    trace_diff.py's resume rule, must be semantically identical to the
#    uninterrupted simulator trace.
#
# Usage: scripts/failover_soak.sh [build_dir]
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
BUILD_DIR="${1:-build}"
CLI_DIR="$BUILD_DIR/src/cli"
CLIENTS=4
ROUNDS=6
LEASE_MS=1000
# Heavy enough per round (samples x steps) that the SIGKILL below reliably
# lands mid-run rather than after the final round.
TASK_FLAGS=(--model=mlp --clients=$CLIENTS --rounds=$ROUNDS --steps=8
            --train-samples=2000 --test-samples=200 --seed=7)

for bin in flsim flserver flclient; do
  if [[ ! -x "$CLI_DIR/$bin" ]]; then
    echo "error: $CLI_DIR/$bin not found (build first)" >&2
    exit 2
  fi
done

workdir="$(mktemp -d)"
primary_pid=""
standby_pid=""
client_pids=()
cleanup() {
  [[ -n "$primary_pid" ]] && kill "$primary_pid" 2>/dev/null || true
  [[ -n "$standby_pid" ]] && kill "$standby_pid" 2>/dev/null || true
  for pid in "${client_pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

extract() { sed -n "s/^$2: //p" "$1" | head -n1; }

echo "== reference run (flsim --algo=adafl-sync) =="
"$CLI_DIR/flsim" --algo=adafl-sync "${TASK_FLAGS[@]}" --chart=0 \
  --trace="$workdir/sim.jsonl" > "$workdir/sim.log"
ref_crc="$(extract "$workdir/sim.log" weights-crc32)"
ref_acc="$(extract "$workdir/sim.log" final-accuracy)"
echo "reference: accuracy=$ref_acc weights-crc32=$ref_crc"

ckpt_a="$workdir/ckpt-primary"
ckpt_b="$workdir/ckpt-standby"
mkdir -p "$ckpt_a" "$ckpt_b"

echo
echo "== phase 1: primary + hot standby + clients =="
"$CLI_DIR/flserver" --port=0 "${TASK_FLAGS[@]}" \
  --checkpoint-dir="$ckpt_a" --checkpoint-every=1 \
  --trace="$workdir/primary.jsonl" \
  > "$workdir/primary.log" 2>&1 &
primary_pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(extract "$workdir/primary.log" listening-on)"
  [[ -n "$port" ]] && break
  if ! kill -0 "$primary_pid" 2>/dev/null; then
    echo "error: primary flserver exited early" >&2
    cat "$workdir/primary.log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -n "$port" ]] || { echo "error: no listening-on line" >&2; exit 1; }
echo "primary listening on port $port"

# The standby binds its client port only at promotion, so its port must be
# chosen up front for the clients' endpoint list. Derive it from the PID to
# keep concurrent soaks on one box from colliding.
standby_port=$((20000 + $$ % 20000))
"$CLI_DIR/flserver" --standby="127.0.0.1:$port" --port="$standby_port" \
  "${TASK_FLAGS[@]}" \
  --checkpoint-dir="$ckpt_b" --checkpoint-every=1 --lease-ms=$LEASE_MS \
  --trace="$workdir/standby.jsonl" \
  > "$workdir/standby.log" 2>&1 &
standby_pid=$!

# --max-attempts=0: never give up, rotate through the endpoint list forever.
for id in $(seq 0 $((CLIENTS - 1))); do
  "$CLI_DIR/flclient" --server="127.0.0.1:$port,127.0.0.1:$standby_port" \
    --id="$id" \
    --backoff-initial-ms=50 --backoff-max-ms=500 --max-attempts=0 \
    > "$workdir/client$id.log" 2>&1 &
  client_pids+=($!)
done

# Wait until at least one complete checkpoint has been replicated onto the
# standby's own disk, then SIGKILL the primary: no goodbye frame, no final
# write — promotion must come entirely from the replicated state + lease.
for _ in $(seq 1 600); do
  [[ -f "$ckpt_b/server.ckpt" ]] && break
  if ! kill -0 "$primary_pid" 2>/dev/null; then
    echo "error: primary died before replicating a checkpoint" >&2
    cat "$workdir/primary.log" >&2
    exit 1
  fi
  if ! kill -0 "$standby_pid" 2>/dev/null; then
    echo "error: standby exited early" >&2
    cat "$workdir/standby.log" >&2
    exit 1
  fi
  sleep 0.05
done
[[ -f "$ckpt_b/server.ckpt" ]] || {
  echo "error: no checkpoint was replicated to the standby" >&2; exit 1; }
kill -9 "$primary_pid" 2>/dev/null || true
wait "$primary_pid" 2>/dev/null || true
primary_pid=""
echo "killed primary (SIGKILL) after the first replicated checkpoint"

echo
echo "== phase 2: standby promotes itself and finishes the run =="
for i in "${!client_pids[@]}"; do
  if ! wait "${client_pids[$i]}"; then
    echo "error: flclient $i failed" >&2
    cat "$workdir/client$i.log" >&2
    cat "$workdir/standby.log" >&2
    exit 1
  fi
done
client_pids=()
wait "$standby_pid"
standby_pid=""
cat "$workdir/standby.log"

promoted_at="$(extract "$workdir/standby.log" promoted-at | cut -d' ' -f1)"
resumed_from="$(extract "$workdir/standby.log" resumed-from)"
dep_crc="$(extract "$workdir/standby.log" weights-crc32)"
dep_acc="$(extract "$workdir/standby.log" final-accuracy)"

echo
echo "promoted-at: ${promoted_at:-<missing>}"
echo "resumed-from: ${resumed_from:-<missing>}"
echo "recovered: accuracy=$dep_acc weights-crc32=$dep_crc"

if [[ -z "$promoted_at" || "$promoted_at" -lt 2 ]]; then
  echo "FAIL: standby never promoted from a replicated checkpoint" >&2
  exit 1
fi
if [[ -z "$resumed_from" || "$resumed_from" -lt 2 ]]; then
  echo "FAIL: promoted server did not resume from the replica" >&2
  exit 1
fi
rotations=0
for id in $(seq 0 $((CLIENTS - 1))); do
  r="$(sed -n 's/.*endpoint-rotations=\([0-9]*\).*/\1/p' \
       "$workdir/client$id.log" | head -n1)"
  rotations=$((rotations + ${r:-0}))
done
if [[ "$rotations" -lt 1 ]]; then
  echo "FAIL: no client ever rotated to the standby endpoint" >&2
  exit 1
fi
if [[ -z "$ref_crc" || -z "$dep_crc" ]]; then
  echo "FAIL: missing weights-crc32 line" >&2
  exit 1
fi
if [[ "$dep_crc" != "$ref_crc" || "$dep_acc" != "$ref_acc" ]]; then
  echo "FAIL: failed-over run diverged from the uninterrupted reference" >&2
  exit 1
fi
echo "PASS: failover is bitwise identical to the uninterrupted run"

echo
echo "== trace equivalence across the failover boundary =="
# The primary's trace ends in a SIGKILL-truncated line; the standby's
# manifest rewinds the stitched stream to its promotion round. Replication
# and promotion events only exist on the failing-over path, so they join
# the transport and checkpoint/resume events on the explicit ignore list.
if ! python3 "$SCRIPT_DIR/trace_diff.py" \
    "$workdir/primary.jsonl,$workdir/standby.jsonl" "$workdir/sim.jsonl" \
    --ignore=frame_tx,frame_rx,retransmit,reconnect,checkpoint,resume,replicate,promote; then
  echo "FAIL: stitched failover trace diverged from the simulator trace" >&2
  exit 1
fi
echo "PASS: stitched failover trace is semantically identical to flsim"
