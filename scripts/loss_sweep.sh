#!/usr/bin/env bash
# Packet-loss sweep and soak for the FEC-coded UDP transport.
#
# Modes:
#   soak   — one deployed UDP run at 10% iid datagram loss (k=8 data /
#            r=8 parity shards per generation). Asserts the run completes
#            with ZERO reconnects, ZERO retransmitted bytes and ZERO
#            unrecoverable generations (every loss repaired by FEC), that
#            repairs actually happened, and that the run's trace is
#            semantically identical to a clean flsim run of the same
#            experiment (scripts/trace_diff.py).
#   sweep  — loss in {0,5,10,15,20}% x transport in {tcp,udp}. TCP runs
#            inject persistent frame loss client-side and lean on the
#            session retransmit-nudge; UDP runs inject iid datagram loss
#            and lean on Reed-Solomon parity. Wall-clock round completion
#            time, goodput and CommLedger byte accounting are written to
#            bench_results/BENCH_udp_fec.json.
#
# Usage: scripts/loss_sweep.sh [build_dir] [soak|sweep]
set -euo pipefail

BUILD_DIR="${1:-build}"
MODE="${2:-sweep}"
CLI_DIR="$BUILD_DIR/src/cli"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_DIR="$(dirname "$SCRIPT_DIR")"

CLIENTS=4
ROUNDS=5
TASK_FLAGS=(--model=mlp --clients=$CLIENTS --rounds=$ROUNDS
            --train-samples=600 --test-samples=200 --seed=7)
# k=8 data + r=8 parity shards per generation: tolerates up to 50% loss
# within any one generation, so 20% iid loss keeps the per-generation
# failure probability (>8 of 16 shards lost) well under 1%.
FEC_FLAGS=(--fec-generation=8 --fec-parity=8 --fec-mtu=1200)

for bin in flsim flserver flclient; do
  if [[ ! -x "$CLI_DIR/$bin" ]]; then
    echo "error: $CLI_DIR/$bin not found (build first)" >&2
    exit 2
  fi
done

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

extract() { sed -n "s/^$2: //p" "$1" | head -n1; }

# run_deployed <dir> <transport> <loss> [extra server flags...]
# Starts flserver + $CLIENTS flclients; client-side loss injection is
# --dgram-loss (udp) or --frame-loss (tcp). Records wall-clock seconds
# from first client launch to server exit in $dir/elapsed.
run_deployed() {
  local dir="$1" transport="$2" loss="$3"
  shift 3
  mkdir -p "$dir"
  "$CLI_DIR/flserver" --port=0 --transport="$transport" "${TASK_FLAGS[@]}" \
    "${FEC_FLAGS[@]}" --metrics="$dir/server_metrics.json" "$@" \
    > "$dir/server.log" 2>&1 &
  server_pid=$!

  local port=""
  for _ in $(seq 1 100); do
    port="$(extract "$dir/server.log" listening-on)"
    [[ -n "$port" ]] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
      echo "error: flserver ($transport) exited early" >&2
      cat "$dir/server.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  [[ -n "$port" ]] || { echo "error: no listening-on line" >&2; exit 1; }

  local loss_flags=()
  if [[ "$transport" == "udp" ]]; then
    loss_flags=(--dgram-loss="$loss" --dgram-loss-seed=4242)
  else
    loss_flags=(--frame-loss="$loss" --frame-loss-seed=4242)
  fi

  local t0 t1
  t0="$(date +%s.%N)"
  local client_pids=()
  local id
  for id in $(seq 0 $((CLIENTS - 1))); do
    "$CLI_DIR/flclient" --host=127.0.0.1 --port="$port" --id="$id" \
      --transport="$transport" "${FEC_FLAGS[@]}" "${loss_flags[@]}" \
      > "$dir/client$id.log" 2>&1 &
    client_pids+=($!)
  done
  local i
  for i in "${!client_pids[@]}"; do
    if ! wait "${client_pids[$i]}"; then
      echo "error: flclient $i ($transport, loss=$loss) failed" >&2
      cat "$dir/client$i.log" >&2
      exit 1
    fi
  done
  wait "$server_pid"
  server_pid=""
  t1="$(date +%s.%N)"
  python3 -c "print(f'{$t1 - $t0:.3f}')" > "$dir/elapsed"
}

if [[ "$MODE" == "soak" ]]; then
  echo "== udp-loss-soak: 10% iid datagram loss, k=8/r=8 =="
  echo "-- clean simulator reference (flsim --algo=adafl-sync) --"
  "$CLI_DIR/flsim" --algo=adafl-sync "${TASK_FLAGS[@]}" --chart=0 \
    --trace="$workdir/sim_trace.jsonl" | tee "$workdir/sim.log"
  sim_crc="$(extract "$workdir/sim.log" weights-crc32)"

  echo "-- deployed UDP run under 10% loss --"
  run_deployed "$workdir/soak" udp 0.10 --trace="$workdir/soak/trace.jsonl"
  cat "$workdir/soak/server.log"
  dep_crc="$(extract "$workdir/soak/server.log" weights-crc32)"

  if [[ -z "$sim_crc" || "$sim_crc" != "$dep_crc" ]]; then
    echo "FAIL: weights-crc32 mismatch (sim=$sim_crc deployed=$dep_crc)" >&2
    exit 1
  fi
  echo "weights-crc32 match: $dep_crc"

  python3 "$SCRIPT_DIR/trace_diff.py" \
    "$workdir/sim_trace.jsonl" "$workdir/soak/trace.jsonl"

  python3 - "$workdir/soak/server_metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
checks = [
    ("comm.reconnects", m.get("comm.reconnects", -1) == 0),
    ("comm.retransmitted_bytes", m.get("comm.retransmitted_bytes", -1) == 0),
    ("comm.unrecoverable_generations",
     m.get("comm.unrecoverable_generations", -1) == 0),
    ("comm.datagrams_repaired > 0", m.get("comm.datagrams_repaired", 0) > 0),
    ("comm.datagrams_lost > 0", m.get("comm.datagrams_lost", 0) > 0),
    ("comm.parity_overhead_bytes > 0",
     m.get("comm.parity_overhead_bytes", 0) > 0),
]
ok = True
for name, passed in checks:
    print(f"  {'ok  ' if passed else 'FAIL'} {name}")
    ok = ok and passed
if not ok:
    sys.exit("soak metric assertions failed")
print("soak metrics: every loss repaired by FEC, zero round-trips spent")
EOF
  echo "PASS: udp-loss-soak"
  exit 0
fi

if [[ "$MODE" != "sweep" ]]; then
  echo "error: mode must be soak or sweep (got $MODE)" >&2
  exit 2
fi

echo "== loss sweep: {0,5,10,15,20}% x {tcp,udp}, $ROUNDS rounds =="
rows="$workdir/rows.jsonl"
: > "$rows"
base_crc=""
for loss in 0 0.05 0.10 0.15 0.20; do
  for transport in tcp udp; do
    dir="$workdir/sweep_${transport}_${loss}"
    extra=()
    # TCP recovery is the session retransmit-nudge; tighten it from the
    # 2 s default so lost-frame stalls are measured, not sleep quanta.
    [[ "$transport" == "tcp" ]] && extra=(--nudge-ms=300)
    echo "-- $transport loss=$loss --"
    run_deployed "$dir" "$transport" "$loss" "${extra[@]}"
    crc="$(extract "$dir/server.log" weights-crc32)"
    acc="$(extract "$dir/server.log" final-accuracy)"
    elapsed="$(cat "$dir/elapsed")"
    [[ -z "$base_crc" ]] && base_crc="$crc"
    if [[ -z "$crc" || "$crc" != "$base_crc" ]]; then
      echo "FAIL: $transport loss=$loss diverged (crc=$crc vs $base_crc)" >&2
      exit 1
    fi
    python3 - "$dir/server_metrics.json" "$transport" "$loss" "$elapsed" \
        "$acc" "$ROUNDS" >> "$rows" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
transport, loss, elapsed = sys.argv[2], float(sys.argv[3]), float(sys.argv[4])
acc, rounds = float(sys.argv[5]), int(sys.argv[6])
payload = m.get("comm.upload_bytes", 0) + m.get("comm.download_bytes", 0)
row = {
    "bench": "udp_fec_loss_sweep",
    "transport": transport,
    "loss": loss,
    "seconds": round(elapsed, 3),
    "round_seconds": round(elapsed / rounds, 3),
    "goodput_mbps": round(payload * 8 / elapsed / 1e6, 2),
    "final_accuracy": acc,
    "upload_bytes": m.get("comm.upload_bytes", 0),
    "download_bytes": m.get("comm.download_bytes", 0),
    "retransmitted_bytes": m.get("comm.retransmitted_bytes", 0),
    "reconnects": m.get("comm.reconnects", 0),
    "parity_overhead_bytes": m.get("comm.parity_overhead_bytes", 0),
    "datagrams_sent": m.get("comm.datagrams_sent", 0),
    "datagrams_lost": m.get("comm.datagrams_lost", 0),
    "datagrams_repaired": m.get("comm.datagrams_repaired", 0),
    "unrecoverable_generations": m.get("comm.unrecoverable_generations", 0),
}
print(json.dumps(row))
EOF
    tail -n1 "$rows"
  done
done

mkdir -p "$REPO_DIR/bench_results"
python3 - "$rows" "$REPO_DIR/bench_results/BENCH_udp_fec.json" <<'EOF'
import json, os, sys
rows = [json.loads(line) for line in open(sys.argv[1])]
doc = {
    "hardware_concurrency": os.cpu_count(),
    "note": ("round completion time and goodput vs iid loss rate, "
             "TCP+retransmit-nudge vs UDP+RS(16,8) FEC; weights bitwise "
             "identical across every cell"),
    "results": rows,
}
with open(sys.argv[2], "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print(f"wrote {sys.argv[2]} ({len(rows)} rows)")
EOF
echo "PASS: loss sweep complete, weights identical across all cells"
