#!/usr/bin/env bash
# Server scaling soak: one flserver (epoll event loop) vs an flswarm fleet
# of N in-process TCP clients on 127.0.0.1, checked against flsim.
#
# For every client count the deployed run must
#   * complete every round (the swarm exits 0 with all clients SHUTDOWN),
#   * report the same final accuracy AND bitwise-identical global weights
#     (weights-crc32) as the simulator with the same seed and task,
#   * be trace-equivalent to the simulator (scripts/trace_diff.py), and
#   * record round latency + frame-dispatch p99 in the metrics registry.
#
# Usage: scripts/server_scaling_soak.sh [build_dir] [clients ...]
#   default: build 1000     (the CI soak: one 1,000-client round trip)
#
# Environment:
#   EMIT_JSON=path   also write a bench_results/BENCH_server_scaling.json
#                    style document with one row per client count
#                    (seconds = mean round latency; gated by bench_gate.py)
#   SHARDS=n         event-loop shards for flserver (default 4)
#   DRIVERS=n        flswarm driver threads (default 4)
set -euo pipefail

BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 ))
COUNTS=("${@:-1000}")
SHARDS="${SHARDS:-4}"
DRIVERS="${DRIVERS:-4}"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
CLI_DIR="$BUILD_DIR/src/cli"

for bin in flsim flserver flswarm; do
  if [[ ! -x "$CLI_DIR/$bin" ]]; then
    echo "error: $CLI_DIR/$bin not found (build first)" >&2
    exit 2
  fi
done

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

extract() { sed -n "s/^$2: //p" "$1" | head -n1; }

# The task scales its dataset with the fleet so every client owns at least
# four examples (the noniid split shards the data 3x finer than the client
# count); training is deliberately tiny (the soak measures the server's
# transport + aggregation, not SGD).
task_flags() {
  local n="$1"
  local train=$(( n * 4 > 800 ? n * 4 : 800 ))
  echo "--dataset=mnist --model=mlp --dist=noniid --clients=$n --rounds=2 \
--train-samples=$train --test-samples=200 --batch=8 --steps=1 --seed=7"
}

rows_json="$workdir/rows.jsonl"
: > "$rows_json"
fail=0

for n in "${COUNTS[@]}"; do
  dir="$workdir/n$n"
  mkdir -p "$dir"
  # shellcheck disable=SC2207
  flags=($(task_flags "$n"))

  echo "== clients=$n: simulator reference =="
  "$CLI_DIR/flsim" --algo=adafl-sync "${flags[@]}" --chart=0 \
      --trace="$dir/sim_trace.jsonl" > "$dir/sim.log"
  sim_acc="$(extract "$dir/sim.log" final-accuracy)"
  sim_crc="$(extract "$dir/sim.log" weights-crc32)"
  echo "   sim: accuracy=$sim_acc weights-crc32=$sim_crc"

  echo "== clients=$n: flserver (shards=$SHARDS) + flswarm =="
  # --nudge-ms=0: the retransmit nudge exists for lossy UDP; TCP never
  # loses frames and rejoin catch-up covers reconnects, so at fleet scale
  # nudges are pure duplicate traffic (every duplicate SELECT makes the
  # client re-send its cached update — a 10k-client resend storm).
  # --deadline-ms=600000: a 10k-client round on few cores legitimately
  # takes minutes; the default 60s per-phase deadline must not truncate
  # the update phase (partial aggregation would diverge from the sim).
  "$CLI_DIR/flserver" --port=0 --transport=tcp --shards="$SHARDS" \
      --nudge-ms=0 --deadline-ms=600000 \
      "${flags[@]}" --trace="$dir/srv_trace.jsonl" \
      --metrics="$dir/metrics.json" > "$dir/server.log" 2>&1 &
  server_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(extract "$dir/server.log" listening-on)"
    [[ -n "$port" ]] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
      echo "FAIL(n=$n): flserver exited early" >&2
      cat "$dir/server.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  [[ -n "$port" ]] || { echo "FAIL(n=$n): no port" >&2; exit 1; }

  swarm_t0=$SECONDS
  if ! "$CLI_DIR/flswarm" --server="127.0.0.1:$port" --clients="$n" \
      --drivers="$DRIVERS" --timeout-s=900 > "$dir/swarm.log" 2>&1; then
    echo "FAIL(n=$n): flswarm did not complete" >&2
    tail -n 20 "$dir/swarm.log" >&2
    tail -n 20 "$dir/server.log" >&2
    exit 1
  fi
  wait "$server_pid"
  server_pid=""
  swarm_wall=$(( SECONDS - swarm_t0 ))
  grep "^swarm-done:" "$dir/swarm.log"
  grep "^event-loop:" "$dir/server.log" || true

  dep_acc="$(extract "$dir/server.log" final-accuracy)"
  dep_crc="$(extract "$dir/server.log" weights-crc32)"
  echo "   deployed: accuracy=$dep_acc weights-crc32=$dep_crc wall=${swarm_wall}s"
  if [[ -z "$dep_crc" || "$dep_crc" != "$sim_crc" || "$dep_acc" != "$sim_acc" ]]; then
    echo "FAIL(n=$n): deployed run diverged from the simulator" >&2
    fail=1
    continue
  fi
  if ! python3 "$SCRIPT_DIR/trace_diff.py" "$dir/sim_trace.jsonl" \
      "$dir/srv_trace.jsonl"; then
    echo "FAIL(n=$n): traces differ" >&2
    fail=1
    continue
  fi

  # Pull round latency + dispatch p99 out of the metrics registry dump and
  # append one bench row (clients -> size, shards -> threads for the gate).
  python3 - "$dir/metrics.json" "$n" "$SHARDS" >> "$rows_json" <<'PYEOF'
import json, math, sys

doc = json.load(open(sys.argv[1]))
n, shards = int(sys.argv[2]), int(sys.argv[3])
hists = doc.get("histograms", doc)

def get_hist(name):
    h = hists.get(name)
    if h is None:
        sys.exit(f"metrics file has no histogram {name!r}")
    return h

def percentile(h, p):
    """Mirror of metrics::Histogram::percentile (log2 buckets)."""
    count = h["count"]
    if count == 0:
        return 0.0
    if p <= 0:
        return h["min"]
    if p >= 1:
        return h["max"]
    rank = p * count
    seen = 0
    buckets = h["buckets"]
    for b, c in enumerate(buckets):
        if c == 0:
            continue
        if seen + c >= rank:
            lo = 0.0 if b == 0 else math.ldexp(1.0, b - 1)
            hi = math.ldexp(1.0, b)
            est = lo + (hi - lo) * (rank - seen) / c
            return min(max(est, h["min"]), h["max"])
        seen += c
    return h["max"]

rl = get_hist("server.round_latency_ms")
fd = get_hist("server.frame_dispatch_ms")
row = {
    "bench": "server_round",
    "clients": n,
    "shards": shards,
    "backend": "tcp-loop",
    "seconds": rl["sum"] / rl["count"] / 1000.0,
    "round_latency_ms_max": rl["max"],
    "frame_dispatch_p99_ms": percentile(fd, 0.99),
    "frames_dispatched": fd["count"],
}
print(json.dumps(row))
PYEOF
  row="$(tail -n1 "$rows_json")"
  echo "   metrics: $row"
  echo "PASS(n=$n): bitwise identical to the simulator, traces equivalent"
  echo
done

[[ "$fail" -eq 0 ]] || exit 1

if [[ -n "${EMIT_JSON:-}" ]]; then
  python3 - "$rows_json" "$EMIT_JSON" <<'PYEOF'
import json, sys
rows = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
doc = {"bench": "server_scaling", "results": rows}
with open(sys.argv[2], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[2]} ({len(rows)} rows)")
PYEOF
fi

echo "PASS: server scaling soak (${COUNTS[*]} clients)"
