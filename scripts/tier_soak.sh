#!/usr/bin/env bash
# Hierarchical-tier soak: prove flrelay mid-tier aggregation end to end with
# real processes, including kill -9 of an active relay with a hot standby.
#
# 1. Reference: flsim --algo=adafl-sync --agg-group=4 records the expected
#    weights-crc32 and the semantic trace.
# 2. An flserver runs with --agg-group=4; three flrelay processes attach:
#    relay A covering clients [0, 4), a dormant --standby twin of A, and
#    relay B covering [4, 8). Eight flclient processes dial the relays —
#    never the server; clients 0-3 carry the standby in their --server
#    endpoint list.
# 3. After two committed rounds, relay A is killed with SIGKILL. No
#    handover message is sent: its clients' redial budgets drain against the
#    dead port, they rotate to the standby, and the standby claims the range
#    from the server, which re-serves the round state mid-round.
# 4. The run must finish with the reference weights-crc32 — bitwise tier
#    transparency through the failover — every client completed, the
#    standby promoted (completed=1, aggs-sent>0), and at least one client
#    rotated endpoints.
# 5. The server's trace must be semantically identical to the simulator's
#    (scripts/trace_diff.py): the tree topology and the relay crash are
#    invisible in the semantic stream.
#
# Usage: scripts/tier_soak.sh [build_dir]
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
BUILD_DIR="${1:-build}"
CLI_DIR="$BUILD_DIR/src/cli"
CLIENTS=8
ROUNDS=6
AGG_GROUP=4
# Heavy enough per round (samples x steps) that the SIGKILL below reliably
# lands mid-run rather than after the final round.
TASK_FLAGS=(--model=mlp --clients=$CLIENTS --rounds=$ROUNDS --steps=8
            --train-samples=2000 --test-samples=200 --seed=7 --k=3)

for bin in flsim flserver flclient flrelay; do
  if [[ ! -x "$CLI_DIR/$bin" ]]; then
    echo "error: $CLI_DIR/$bin not found (build first)" >&2
    exit 2
  fi
done

workdir="$(mktemp -d)"
server_pid=""
relay_pids=()
client_pids=()
cleanup() {
  [[ -n "$server_pid" ]] && kill "$server_pid" 2>/dev/null || true
  for pid in "${relay_pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  for pid in "${client_pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

extract() { sed -n "s/^$2: //p" "$1" | head -n1; }
# flrelay announces "flrelay: range [b, e) on port P ..." once listening.
relay_port() { sed -n 's/.* on port \([0-9]*\).*/\1/p' "$1" | head -n1; }

echo "== reference run (flsim --algo=adafl-sync --agg-group=$AGG_GROUP) =="
"$CLI_DIR/flsim" --algo=adafl-sync "${TASK_FLAGS[@]}" \
  --agg-group=$AGG_GROUP --chart=0 \
  --trace="$workdir/sim.jsonl" > "$workdir/sim.log"
ref_crc="$(extract "$workdir/sim.log" weights-crc32)"
ref_acc="$(extract "$workdir/sim.log" final-accuracy)"
echo "reference: accuracy=$ref_acc weights-crc32=$ref_crc"

echo
echo "== phase 1: server + relay tier + clients =="
"$CLI_DIR/flserver" --port=0 "${TASK_FLAGS[@]}" --agg-group=$AGG_GROUP \
  --nudge-ms=500 \
  --trace="$workdir/server.jsonl" \
  > "$workdir/server.log" 2>&1 &
server_pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(extract "$workdir/server.log" listening-on)"
  [[ -n "$port" ]] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "error: flserver exited early" >&2
    cat "$workdir/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -n "$port" ]] || { echo "error: no listening-on line" >&2; exit 1; }
echo "server listening on port $port"

# Relay A (the victim), its standby twin, and relay B. Ephemeral ports,
# parsed from each relay's announcement line.
start_relay() {  # name base count standby
  local name="$1" base="$2" count="$3" standby="$4"
  "$CLI_DIR/flrelay" --port=0 --parent="127.0.0.1:$port" \
    --base="$base" --count="$count" --standby="$standby" \
    --backoff-initial-ms=100 --backoff-max-ms=500 --max-attempts=0 \
    --nudge-ms=500 \
    > "$workdir/$name.log" 2>&1 &
  relay_pids+=($!)
}
start_relay relay_a 0 $AGG_GROUP 0
start_relay relay_s 0 $AGG_GROUP 1
start_relay relay_b $AGG_GROUP $AGG_GROUP 0

port_a="" port_s="" port_b=""
for _ in $(seq 1 100); do
  port_a="$(relay_port "$workdir/relay_a.log")"
  port_s="$(relay_port "$workdir/relay_s.log")"
  port_b="$(relay_port "$workdir/relay_b.log")"
  [[ -n "$port_a" && -n "$port_s" && -n "$port_b" ]] && break
  sleep 0.1
done
[[ -n "$port_a" && -n "$port_s" && -n "$port_b" ]] || {
  echo "error: a relay never announced its port" >&2
  cat "$workdir"/relay_*.log >&2
  exit 1
}
echo "relay A on $port_a (standby on $port_s), relay B on $port_b"

# Clients 0-3 know relay A first and its standby second; a bounded
# per-endpoint budget makes them rotate once A's port goes dead. Clients
# 4-7 only ever talk to relay B.
for id in $(seq 0 $((CLIENTS - 1))); do
  if [[ "$id" -lt $AGG_GROUP ]]; then
    servers="127.0.0.1:$port_a,127.0.0.1:$port_s"
  else
    servers="127.0.0.1:$port_b"
  fi
  "$CLI_DIR/flclient" --server="$servers" --id="$id" \
    --backoff-initial-ms=50 --backoff-max-ms=500 --max-attempts=0 \
    > "$workdir/client$id.log" 2>&1 &
  client_pids+=($!)
done

# Let two rounds commit, then SIGKILL the active relay: no goodbye to its
# children, no CHILD_GONE to the server — promotion must come entirely from
# the clients' endpoint rotation + the standby claiming the range.
for _ in $(seq 1 600); do
  committed="$(grep -c '"ev":"round_end"' "$workdir/server.jsonl" 2>/dev/null || true)"
  [[ "${committed:-0}" -ge 2 ]] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "error: flserver died before two rounds committed" >&2
    cat "$workdir/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
committed="$(grep -c '"ev":"round_end"' "$workdir/server.jsonl" 2>/dev/null || true)"
[[ "${committed:-0}" -ge 2 ]] || {
  echo "error: never saw two committed rounds" >&2; exit 1; }
kill -9 "${relay_pids[0]}" 2>/dev/null || true
wait "${relay_pids[0]}" 2>/dev/null || true
echo "killed relay A (SIGKILL) after $committed committed rounds"

echo
echo "== phase 2: standby promotes and the run finishes =="
for i in "${!client_pids[@]}"; do
  if ! wait "${client_pids[$i]}"; then
    echo "error: flclient $i failed" >&2
    cat "$workdir/client$i.log" >&2
    cat "$workdir/relay_s.log" >&2
    exit 1
  fi
done
client_pids=()
for i in 1 2; do  # standby + relay B exit 0 on the forwarded SHUTDOWN
  if ! wait "${relay_pids[$i]}"; then
    echo "error: relay $i did not complete" >&2
    cat "$workdir"/relay_*.log >&2
    exit 1
  fi
done
relay_pids=()
wait "$server_pid"
server_pid=""
cat "$workdir/server.log"

dep_crc="$(extract "$workdir/server.log" weights-crc32)"
dep_acc="$(extract "$workdir/server.log" final-accuracy)"
echo
echo "recovered: accuracy=$dep_acc weights-crc32=$dep_crc"

standby_done="$(sed -n 's/^relay-done: .*completed=\([0-9]*\).*/\1/p' \
                "$workdir/relay_s.log" | head -n1)"
standby_aggs="$(sed -n 's/^relay-done: .*aggs-sent=\([0-9]*\).*/\1/p' \
                "$workdir/relay_s.log" | head -n1)"
if [[ "${standby_done:-0}" != 1 || "${standby_aggs:-0}" -lt 1 ]]; then
  echo "FAIL: the standby relay never promoted and aggregated" >&2
  cat "$workdir/relay_s.log" >&2
  exit 1
fi
rotations=0
for id in $(seq 0 $((AGG_GROUP - 1))); do
  r="$(sed -n 's/.*endpoint-rotations=\([0-9]*\).*/\1/p' \
       "$workdir/client$id.log" | head -n1)"
  rotations=$((rotations + ${r:-0}))
done
if [[ "$rotations" -lt 1 ]]; then
  echo "FAIL: no client ever rotated to the standby relay" >&2
  exit 1
fi
if [[ -z "$ref_crc" || -z "$dep_crc" ]]; then
  echo "FAIL: missing weights-crc32 line" >&2
  exit 1
fi
if [[ "$dep_crc" != "$ref_crc" || "$dep_acc" != "$ref_acc" ]]; then
  echo "FAIL: tiered run diverged from the flat reference" >&2
  exit 1
fi
echo "PASS: tiered run with a relay SIGKILL is bitwise identical to flsim"

echo
echo "== trace equivalence through the tier =="
# The relay tier and the mid-run failover only exist in transport events;
# the semantic stream (selection, deliveries, round commits) must be
# identical to the flat simulator's.
if ! python3 "$SCRIPT_DIR/trace_diff.py" \
    "$workdir/server.jsonl" "$workdir/sim.jsonl" \
    --ignore=frame_tx,frame_rx,retransmit,reconnect,checkpoint,resume,replicate,promote; then
  echo "FAIL: tiered server trace diverged from the simulator trace" >&2
  exit 1
fi
echo "PASS: tiered trace is semantically identical to flsim"
