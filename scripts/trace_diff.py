#!/usr/bin/env python3
"""Compare two AdaFL JSONL run traces for semantic equivalence.

Usage:
  trace_diff.py A.jsonl B.jsonl
  trace_diff.py seg1.jsonl,seg2.jsonl B.jsonl --ignore=checkpoint,resume

Each trace argument is a comma-separated list of JSONL segments: a run that
was killed and resumed produces one file per process, and the segments are
stitched by the resume rule — a manifest line with start_round=r discards all
previously accumulated events with round >= r (those rounds were replayed by
the resumed process), then the segment's events are appended. A truncated
final line (SIGKILL mid-write) is tolerated and dropped.

Comparison semantics:
  * The wall-clock field "t" is stripped from every event unless --keep-time
    is given: "t" is simulated time in flsim and wall time in flserver, so it
    can never match across producers.
  * Event types named by --ignore (default: the eight deployed-only event
    types frame_tx,frame_rx,retransmit,reconnect,datagram_lost,fec_repair,
    replicate,promote, which flsim never emits) are dropped from both
    traces before comparison.
  * Manifests are compared modulo producer, git, and start_round; everything
    else (algo, seed, rounds, clients, config) must match exactly.

Exit status: 0 if equivalent, 1 if different (a readable diff is printed),
2 on usage or parse errors.
"""

import argparse
import json
import sys

DEFAULT_IGNORE = (
    "frame_tx,frame_rx,retransmit,reconnect,datagram_lost,fec_repair,"
    "replicate,promote"
)
MANIFEST_IGNORED_KEYS = ("producer", "git", "start_round")


def parse_lines(path, tolerate_partial_tail):
    """Yield (lineno, obj) for each JSON line of one file."""
    with open(path, "rb") as f:
        data = f.read()
    lines = data.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    out = []
    for i, raw in enumerate(lines):
        try:
            obj = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            if tolerate_partial_tail and i == len(lines) - 1:
                break  # killed mid-write; the tail line never became durable
            raise SystemExit(f"error: {path}:{i + 1}: unparseable JSON line")
        if not isinstance(obj, dict) or "ev" not in obj:
            raise SystemExit(f"error: {path}:{i + 1}: not a trace event")
        out.append(obj)
    return out


def load_trace(spec, tolerate_partial_tail):
    """Load one trace (comma-separated stitched segments).

    Returns (manifest, events). The first manifest wins for comparison; a
    later manifest (resumed segment) rewinds accumulated events to its
    start_round before appending.
    """
    manifest = None
    events = []
    for path in spec.split(","):
        for obj in parse_lines(path, tolerate_partial_tail):
            if obj.get("ev") == "manifest":
                if manifest is None:
                    manifest = obj
                else:
                    start = obj.get("start_round", 1)
                    events = [e for e in events if e.get("round", 0) < start]
                continue
            events.append(obj)
    if manifest is None:
        raise SystemExit(f"error: {spec}: no manifest line found")
    return manifest, events


def normalize(events, ignore, keep_time):
    out = []
    for e in events:
        if e["ev"] in ignore:
            continue
        if not keep_time:
            e = {k: v for k, v in e.items() if k != "t"}
        out.append(e)
    return out


def fmt(e):
    return json.dumps(e, sort_keys=True, separators=(",", ":"))


def diff_manifests(ma, mb):
    """Return a list of difference strings (empty if equivalent)."""
    diffs = []
    keys = sorted(set(ma) | set(mb))
    for k in keys:
        if k in MANIFEST_IGNORED_KEYS:
            continue
        va, vb = ma.get(k), mb.get(k)
        if va != vb:
            diffs.append(f"manifest.{k}: {va!r} != {vb!r}")
    return diffs


def diff_events(ea, eb, context=2):
    """Return difference strings around the first divergence (empty if equal)."""
    n = min(len(ea), len(eb))
    first = None
    for i in range(n):
        if ea[i] != eb[i]:
            first = i
            break
    if first is None:
        if len(ea) == len(eb):
            return []
        first = n
    diffs = [f"event streams diverge at index {first} "
             f"(A has {len(ea)} events, B has {len(eb)})"]
    lo = max(0, first - context)
    hi = first + context + 1
    for i in range(lo, hi):
        a = fmt(ea[i]) if i < len(ea) else "<end>"
        b = fmt(eb[i]) if i < len(eb) else "<end>"
        marker = "  " if a == b else "! "
        diffs.append(f"{marker}[{i}] A: {a}")
        diffs.append(f"{marker}[{i}] B: {b}")
    return diffs


def main():
    ap = argparse.ArgumentParser(
        description="semantic diff of two AdaFL JSONL run traces")
    ap.add_argument("trace_a", help="first trace (comma-separated segments)")
    ap.add_argument("trace_b", help="second trace (comma-separated segments)")
    ap.add_argument("--ignore", default=DEFAULT_IGNORE,
                    help="comma-separated event types to drop before "
                         f"comparing (default: {DEFAULT_IGNORE})")
    ap.add_argument("--keep-time", action="store_true",
                    help="compare the 't' field too (only meaningful when "
                         "both traces share a clock, e.g. two flsim runs)")
    ap.add_argument("--skip-manifest", action="store_true",
                    help="do not compare manifests (event streams only)")
    args = ap.parse_args()

    ignore = {s for s in args.ignore.split(",") if s}
    ma, ea = load_trace(args.trace_a, tolerate_partial_tail=True)
    mb, eb = load_trace(args.trace_b, tolerate_partial_tail=True)
    ea = normalize(ea, ignore, args.keep_time)
    eb = normalize(eb, ignore, args.keep_time)

    diffs = [] if args.skip_manifest else diff_manifests(ma, mb)
    diffs += diff_events(ea, eb)
    if diffs:
        print(f"traces differ ({args.trace_a} vs {args.trace_b}):")
        for d in diffs:
            print(f"  {d}")
        return 1
    print(f"traces equivalent: {len(ea)} events compared "
          f"({len(ignore)} event types ignored)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
