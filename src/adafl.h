// Umbrella header: everything a downstream user needs with one include.
//
//   #include "adafl.h"
//
// Sub-library headers remain individually includable for faster builds.
#pragma once

#include "compress/codec.h"     // IWYU pragma: export
#include "compress/dgc.h"       // IWYU pragma: export
#include "compress/wire.h"      // IWYU pragma: export
#include "core/adafl_async.h"   // IWYU pragma: export
#include "core/adafl_sync.h"    // IWYU pragma: export
#include "core/compression_ctrl.h"  // IWYU pragma: export
#include "core/selection.h"     // IWYU pragma: export
#include "core/utility.h"       // IWYU pragma: export
#include "data/dataset.h"       // IWYU pragma: export
#include "data/partition.h"     // IWYU pragma: export
#include "data/synthetic.h"     // IWYU pragma: export
#include "fl/async_trainer.h"   // IWYU pragma: export
#include "fl/client.h"          // IWYU pragma: export
#include "fl/fedat.h"           // IWYU pragma: export
#include "fl/sync_trainer.h"    // IWYU pragma: export
#include "metrics/ledger.h"     // IWYU pragma: export
#include "metrics/plot.h"       // IWYU pragma: export
#include "metrics/stats.h"      // IWYU pragma: export
#include "metrics/table.h"      // IWYU pragma: export
#include "net/event_queue.h"    // IWYU pragma: export
#include "net/link.h"           // IWYU pragma: export
#include "net/trace_io.h"       // IWYU pragma: export
#include "nn/batchnorm.h"       // IWYU pragma: export
#include "nn/checkpoint.h"      // IWYU pragma: export
#include "nn/models.h"          // IWYU pragma: export
#include "tensor/ops.h"         // IWYU pragma: export
#include "tensor/tensor.h"      // IWYU pragma: export
