#include "cli/args.h"

#include <algorithm>
#include <sstream>

#include "tensor/check.h"

namespace adafl::cli {

ArgParser::ArgParser(std::string program) : program_(std::move(program)) {}

ArgParser& ArgParser::option(const std::string& key,
                             const std::string& default_value,
                             const std::string& help) {
  ADAFL_CHECK_MSG(!key.empty() && key.substr(0, 2) != "--",
                  "ArgParser: declare keys without the -- prefix");
  ADAFL_CHECK_MSG(options_.find(key) == options_.end(),
                  "ArgParser: duplicate option " << key);
  order_.push_back(key);
  options_[key] = Option{default_value, help};
  return *this;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      help_requested_ = true;
      continue;
    }
    if (token.substr(0, 2) != "--") {
      error_ = "unexpected positional argument `" + token + "`";
      return false;
    }
    const auto eq = token.find('=');
    const std::string key =
        token.substr(2, eq == std::string::npos ? std::string::npos : eq - 2);
    auto it = options_.find(key);
    if (it == options_.end()) {
      error_ = "unknown option --" + key;
      return false;
    }
    it->second.value = eq == std::string::npos ? "1" : token.substr(eq + 1);
  }
  return true;
}

std::string ArgParser::get(const std::string& key) const {
  auto it = options_.find(key);
  ADAFL_CHECK_MSG(it != options_.end(), "ArgParser: undeclared key " << key);
  return it->second.value;
}

int ArgParser::get_int(const std::string& key) const {
  const std::string v = get(key);
  std::size_t pos = 0;
  int out = 0;
  try {
    out = std::stoi(v, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;  // non-numeric / out of range: same error below
  }
  ADAFL_CHECK_MSG(pos == v.size(), "ArgParser: --" << key << "=" << v
                                                   << " is not an integer");
  return out;
}

int ArgParser::get_int_at_least(const std::string& key, int min_value) const {
  const int out = get_int(key);
  ADAFL_CHECK_MSG(out >= min_value, "ArgParser: --" << key << "=" << out
                                                    << " must be >= "
                                                    << min_value);
  return out;
}

double ArgParser::get_double(const std::string& key) const {
  const std::string v = get(key);
  std::size_t pos = 0;
  double out = 0.0;
  try {
    out = std::stod(v, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  ADAFL_CHECK_MSG(pos == v.size(), "ArgParser: --" << key << "=" << v
                                                   << " is not a number");
  return out;
}

bool ArgParser::get_bool(const std::string& key) const {
  std::string v = get(key);
  std::transform(v.begin(), v.end(), v.begin(), ::tolower);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [--key=value ...]\n\noptions:\n";
  for (const auto& key : order_) {
    const auto& opt = options_.at(key);
    os << "  --" << key;
    if (!opt.value.empty()) os << " (default: " << opt.value << ")";
    os << "\n      " << opt.help << "\n";
  }
  return os.str();
}

}  // namespace adafl::cli
