// Minimal --key=value argument parser for the command-line tools.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace adafl::cli {

/// Parses `--key=value` / `--flag` style arguments. Keys must be declared
/// before parse() so typos are hard errors; every declared key carries a
/// help line for usage().
class ArgParser {
 public:
  explicit ArgParser(std::string program);

  /// Declares an option with a default (shown in usage()).
  ArgParser& option(const std::string& key, const std::string& default_value,
                    const std::string& help);

  /// Parses argv; returns false (and fills error()) on unknown keys or
  /// malformed tokens. `--help` sets help_requested().
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& key) const;
  int get_int(const std::string& key) const;
  /// get_int plus a lower bound: values below `min_value` are hard errors
  /// (e.g. --threads rejects negatives; 0 means "auto").
  int get_int_at_least(const std::string& key, int min_value) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;  ///< "1|true|yes" = true

  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }
  std::string usage() const;

 private:
  struct Option {
    std::string value;
    std::string help;
  };
  std::string program_;
  std::vector<std::string> order_;
  std::map<std::string, Option> options_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace adafl::cli
