// flclient — one deployed AdaFL federation client.
//
// Dials an flserver, receives the full task configuration in WELCOME (no
// task options on the client command line — the server is the single source
// of truth), rebuilds its data shard and model bitwise-identically to the
// simulator, and participates in rounds until the server says SHUTDOWN.
// Connection drops are survived with bounded exponential-backoff redialing;
// DGC error-feedback state persists across reconnects.
//
//   flclient --host=127.0.0.1 --port=4242 --id=0
#include <atomic>
#include <iostream>
#include <memory>
#include <optional>

#include "cli/args.h"
#include "cli/task.h"
#include "core/parallel.h"
#include "metrics/profile.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "net/transport/faulty.h"
#include "net/transport/session.h"
#include "net/transport/udp.h"
#include "tensor/dispatch.h"

using namespace adafl;

int main(int argc, char** argv) {
  cli::ArgParser args("flclient");
  args.option("host", "127.0.0.1", "server host")
      .option("port", "4242", "server port")
      .option("server", "",
              "prioritized endpoint list host:port[,host:port...] "
              "(overrides --host/--port): when the current endpoint's "
              "redial budget is exhausted the client rotates to the next "
              "one — list the primary first, then its hot standbys")
      .option("id", "0", "this client's id (0-based, unique per fleet)")
      .option("connect-timeout-ms", "3000", "TCP connect timeout")
      .option("backoff-initial-ms", "200", "first reconnect delay")
      .option("backoff-max-ms", "5000", "reconnect delay cap")
      .option("max-attempts", "10",
              "consecutive failed dials before giving up (0 = forever)")
      .option("heartbeat-ms", "1000", "PING after this long without traffic")
      .option("liveness-ms", "8000", "redial after this long of silence")
      .option("crash-at-round", "0",
              "fault injection: crash once on receiving this round's model "
              "(0 = off)")
      .option("transport", "tcp",
              "tcp|udp — must match the server's --transport")
      .option("fec-parity", "4",
              "UDP: parity datagrams per FEC generation (r)")
      .option("fec-generation", "16",
              "UDP: data datagrams per FEC generation (k)")
      .option("fec-mtu", "1200", "UDP: payload bytes per datagram shard")
      .option("dgram-loss", "0",
              "fault injection (UDP): drop each sent datagram with this "
              "probability (0..1)")
      .option("dgram-burst", "0",
              "fault injection (UDP): mean burst length for Gilbert-Elliott "
              "loss at rate --dgram-loss (0 = i.i.d. loss)")
      .option("dgram-reorder", "0",
              "fault injection (UDP): pairwise-swap reorder probability")
      .option("dgram-loss-seed", "1", "datagram fault stream seed")
      .option("frame-loss", "0",
              "fault injection (TCP): persistent i.i.d. loss of round-data "
              "frames (triggers the server's retransmit nudge)")
      .option("frame-loss-seed", "1", "frame fault stream seed")
      .option("threads", "0", "worker threads (0 = auto)")
      .option("kernel-backend", "",
              "auto|scalar|avx2 — SIMD kernel backend (empty = "
              "ADAFL_KERNEL_BACKEND env or the scalar reference)")
      .option("trace", "",
              "append structured JSONL run events to this file ('' = off)")
      .option("metrics", "",
              "write the metrics registry as JSON to this file ('' = off)")
      .option("profile", "0",
              "print per-phase wall time + tensor heap allocation counts "
              "after the run");
  if (!args.parse(argc, argv)) {
    std::cerr << "flclient: " << args.error() << "\n\n" << args.usage();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  try {
    core::set_num_threads(args.get_int_at_least("threads", 0));
    if (const std::string kb = args.get("kernel-backend"); !kb.empty())
      tensor::set_kernel_backend(tensor::resolve_kernel_backend(kb));
    metrics::PhaseProfiler::instance().set_enabled(args.get_bool("profile"));
    const auto connect_timeout =
        std::chrono::milliseconds(args.get_int("connect-timeout-ms"));

    // Endpoint list: --server=host:port,host:port (primary first, standbys
    // after), or the legacy --host/--port pair as a single-entry list.
    struct Endpoint {
      std::string host;
      std::uint16_t port;
    };
    std::vector<Endpoint> endpoints;
    std::string server_list = args.get("server");
    if (server_list.empty())
      server_list = args.get("host") + ":" + args.get("port");
    for (std::size_t pos = 0; pos < server_list.size();) {
      const auto comma = server_list.find(',', pos);
      const std::string item = server_list.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      pos = comma == std::string::npos ? server_list.size() : comma + 1;
      const auto colon = item.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == item.size()) {
        std::cerr << "flclient: bad endpoint '" << item
                  << "' (expected host:port)\n";
        return 2;
      }
      endpoints.push_back(
          {item.substr(0, colon),
           static_cast<std::uint16_t>(std::stoi(item.substr(colon + 1)))});
    }

    net::transport::ClientSessionConfig cfg;
    cfg.client_id = args.get_int("id");
    cfg.heartbeat_interval =
        std::chrono::milliseconds(args.get_int("heartbeat-ms"));
    cfg.liveness_timeout =
        std::chrono::milliseconds(args.get_int("liveness-ms"));
    cfg.backoff.initial =
        std::chrono::milliseconds(args.get_int("backoff-initial-ms"));
    cfg.backoff.max =
        std::chrono::milliseconds(args.get_int("backoff-max-ms"));
    cfg.backoff.max_attempts = args.get_int("max-attempts");

    // Structured observability. The client does not know the task until the
    // server's WELCOME, so the manifest only records connection-level facts;
    // semantic (round-level) events live in the server's trace.
    const std::string trace_path = args.get("trace");
    const std::string metrics_path = args.get("metrics");
    metrics::Tracer tracer;
    metrics::Registry registry;
    if (!trace_path.empty()) {
      metrics::RunManifest manifest;
      manifest.producer = "flclient";
      manifest.algo = "adafl-sync";
      manifest.config["server"] = server_list;
      manifest.config["client_id"] = std::to_string(cfg.client_id);
      manifest.config["kernel_backend"] = tensor::kernel_backend_name();
      tracer.open(trace_path, manifest);
      if (!metrics_path.empty()) tracer.attach_registry(&registry);
      cfg.tracer = &tracer;
    }

    const std::string transport = args.get("transport");
    if (transport != "tcp" && transport != "udp") {
      std::cerr << "flclient: --transport must be tcp or udp\n";
      return 2;
    }
    const bool use_udp = transport == "udp";

    // UDP+FEC transport config. The header carries (k, r) per generation,
    // so the client's shape governs only what *it* sends; it need not match
    // the server's, though symmetric settings are the sane default.
    net::transport::FecStats fec_stats;
    net::transport::UdpFecConfig fec_cfg;
    fec_cfg.data_shards = args.get_int_at_least("fec-generation", 1);
    fec_cfg.parity_shards = args.get_int_at_least("fec-parity", 0);
    fec_cfg.max_shard_bytes = args.get_int_at_least("fec-mtu", 1);
    fec_cfg.stats = &fec_stats;
    const auto fec_t0 = std::chrono::steady_clock::now();
    if (use_udp && cfg.tracer != nullptr) {
      metrics::Tracer* tr = &tracer;
      auto since_t0 = [fec_t0] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - fec_t0)
            .count();
      };
      fec_cfg.hooks.on_datagram_lost = [tr, since_t0](std::int64_t bytes) {
        tr->record(metrics::ev_datagram_lost(0, -1, bytes, since_t0()));
      };
      fec_cfg.hooks.on_fec_repair = [tr, since_t0](int /*shards*/,
                                                   std::int64_t bytes) {
        tr->record(metrics::ev_fec_repair(0, -1, bytes, since_t0()));
      };
    }

    // Datagram-level fault injection (UDP): applied between the socket and
    // the FEC layer so drops exercise the Reed-Solomon repair path.
    const double dgram_loss = args.get_double("dgram-loss");
    const double dgram_burst = args.get_double("dgram-burst");
    const double dgram_reorder = args.get_double("dgram-reorder");
    const auto dgram_seed =
        static_cast<std::uint64_t>(args.get_int("dgram-loss-seed"));
    const bool dgram_faults = dgram_loss > 0.0 || dgram_reorder > 0.0;

    // Frame-level fault injection (TCP): persistent i.i.d. loss of
    // round-data frames, repaired by the server's retransmit nudge. This is
    // the TCP-side counterpart of --dgram-loss for scripts/loss_sweep.sh.
    const double frame_loss = args.get_double("frame-loss");
    const auto frame_seed =
        static_cast<std::uint64_t>(args.get_int("frame-loss-seed"));

    // Fault injection: the first connection whose round reaches
    // --crash-at-round is severed on receiving that round's MODEL; the
    // shared flag keeps redialed connections clean so the crash fires once
    // per process, matching the old in-session crash shim.
    const int crash_round = args.get_int("crash-at-round");
    auto crash_fired = std::make_shared<std::atomic<bool>>(false);

    // Each redial gets its own deterministic datagram fault stream so a
    // reconnect does not replay the first connection's loss pattern.
    auto dial_count = std::make_shared<std::atomic<std::uint64_t>>(0);

    // The task bundle is built on first WELCOME and must outlive the
    // session (the FlClient borrows the training dataset).
    std::optional<cli::TaskBundle> bundle;

    net::transport::ClientSession session(
        cfg,
        [&, crash_fired, dial_count](
            std::size_t ep) -> std::unique_ptr<net::transport::Transport> {
          const Endpoint& target = endpoints[ep];
          std::unique_ptr<net::transport::Transport> t;
          if (use_udp) {
            std::unique_ptr<net::transport::DatagramLink> link =
                net::transport::UdpSocketLink::connect(target.host,
                                                       target.port);
            if (!link) return nullptr;
            if (dgram_faults) {
              net::transport::DatagramFaultPlan dplan =
                  dgram_burst > 0.0
                      ? net::transport::DatagramFaultPlan::burst(
                            dgram_loss, dgram_burst, dgram_seed)
                      : net::transport::DatagramFaultPlan::iid(dgram_loss,
                                                               dgram_seed);
              dplan.reorder_prob = dgram_reorder;
              dplan.seed +=
                  0x9E3779B97F4A7C15ull * dial_count->fetch_add(1);
              link = std::make_unique<net::transport::FaultyDatagramLink>(
                  std::move(link), dplan);
            }
            t = std::make_unique<net::transport::UdpTransport>(
                std::move(link), fec_cfg);
          } else {
            t = net::transport::TcpTransport::connect(target.host, target.port,
                                                      connect_timeout);
          }
          const bool want_crash = crash_round > 0 && !crash_fired->load();
          if (!t || (!want_crash && frame_loss <= 0.0)) return t;
          net::transport::FaultPlan plan;
          if (want_crash)
            plan.sever_on_recv(net::transport::MsgType::kModel, crash_round);
          if (frame_loss > 0.0) plan.iid_frame_loss(frame_loss, frame_seed);
          auto faulty = std::make_unique<net::transport::FaultyTransport>(
              std::move(t), std::move(plan));
          faulty->set_on_fault(
              [crash_fired](const net::transport::FaultRule& r,
                            const net::transport::Frame&) {
                if (r.kind == net::transport::FaultKind::kSever)
                  crash_fired->store(true);
              });
          return faulty;
        },
        endpoints.size(),
        [&](const std::map<std::string, std::string>& kv, int id,
            const core::AdaFlParams& /*params*/) {
          cli::TaskSpec spec;
          fl::ClientTrainConfig client;
          cli::task_from_kv(kv, &spec, &client);
          std::cout << "bootstrapped: dataset=" << spec.dataset
                    << " model=" << spec.model << " clients=" << spec.clients
                    << " seed=" << spec.seed << std::endl;
          bundle.emplace(cli::build_task(spec));
          return fl::make_client(bundle->factory, &bundle->train,
                                 bundle->parts, client, {},
                                 spec.seed ^ core::kAdaFlClientSeedSalt, id);
        });

    const auto st = session.run();
    if (tracer.enabled()) {
      const std::int64_t n = tracer.events_recorded();
      tracer.close();
      std::cout << "wrote " << trace_path << " (" << n << " events)"
                << std::endl;
    }
    if (!metrics_path.empty()) {
      registry.export_profiler(metrics::PhaseProfiler::instance());
      registry
          .gauge(std::string("kernel.backend.") +
                 tensor::kernel_backend_name())
          .set(1.0);
      registry.gauge("kernel.cpu.avx2")
          .set(tensor::cpu_supports_avx2() ? 1.0 : 0.0);
      registry.write_json(metrics_path);
      std::cout << "wrote " << metrics_path << std::endl;
    }
    std::cout << "client-done: id=" << cfg.client_id
              << " completed=" << (st.completed ? 1 : 0)
              << " rounds-trained=" << st.rounds_trained
              << " updates-sent=" << st.updates_sent
              << " skips=" << st.skips << " reconnects=" << st.reconnects
              << " endpoint-rotations=" << st.endpoint_rotations << std::endl;
    if (use_udp)
      std::cout << "udp-fec: datagrams-sent="
                << fec_stats.datagrams_sent.load()
                << " datagrams-lost=" << fec_stats.datagrams_lost.load()
                << " datagrams-repaired="
                << fec_stats.datagrams_repaired.load()
                << " unrecoverable-generations="
                << fec_stats.unrecoverable_generations.load()
                << " parity-bytes=" << fec_stats.parity_bytes.load()
                << std::endl;
    metrics::print_profile(std::cout);
    return st.completed ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "flclient: " << e.what() << "\n";
    return 1;
  }
}
