// flclient — one deployed AdaFL federation client.
//
// Dials an flserver, receives the full task configuration in WELCOME (no
// task options on the client command line — the server is the single source
// of truth), rebuilds its data shard and model bitwise-identically to the
// simulator, and participates in rounds until the server says SHUTDOWN.
// Connection drops are survived with bounded exponential-backoff redialing;
// DGC error-feedback state persists across reconnects.
//
//   flclient --host=127.0.0.1 --port=4242 --id=0
#include <atomic>
#include <iostream>
#include <memory>
#include <optional>

#include "cli/args.h"
#include "cli/task.h"
#include "core/parallel.h"
#include "metrics/profile.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "net/transport/faulty.h"
#include "net/transport/session.h"
#include "tensor/dispatch.h"

using namespace adafl;

int main(int argc, char** argv) {
  cli::ArgParser args("flclient");
  args.option("host", "127.0.0.1", "server host")
      .option("port", "4242", "server port")
      .option("id", "0", "this client's id (0-based, unique per fleet)")
      .option("connect-timeout-ms", "3000", "TCP connect timeout")
      .option("backoff-initial-ms", "200", "first reconnect delay")
      .option("backoff-max-ms", "5000", "reconnect delay cap")
      .option("max-attempts", "10",
              "consecutive failed dials before giving up (0 = forever)")
      .option("heartbeat-ms", "1000", "PING after this long without traffic")
      .option("liveness-ms", "8000", "redial after this long of silence")
      .option("crash-at-round", "0",
              "fault injection: crash once on receiving this round's model "
              "(0 = off)")
      .option("threads", "0", "worker threads (0 = auto)")
      .option("kernel-backend", "",
              "auto|scalar|avx2 — SIMD kernel backend (empty = "
              "ADAFL_KERNEL_BACKEND env or the scalar reference)")
      .option("trace", "",
              "append structured JSONL run events to this file ('' = off)")
      .option("metrics", "",
              "write the metrics registry as JSON to this file ('' = off)")
      .option("profile", "0",
              "print per-phase wall time + tensor heap allocation counts "
              "after the run");
  if (!args.parse(argc, argv)) {
    std::cerr << "flclient: " << args.error() << "\n\n" << args.usage();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  try {
    core::set_num_threads(args.get_int_at_least("threads", 0));
    if (const std::string kb = args.get("kernel-backend"); !kb.empty())
      tensor::set_kernel_backend(tensor::resolve_kernel_backend(kb));
    metrics::PhaseProfiler::instance().set_enabled(args.get_bool("profile"));
    const std::string host = args.get("host");
    const auto port = static_cast<std::uint16_t>(args.get_int("port"));
    const auto connect_timeout =
        std::chrono::milliseconds(args.get_int("connect-timeout-ms"));

    net::transport::ClientSessionConfig cfg;
    cfg.client_id = args.get_int("id");
    cfg.heartbeat_interval =
        std::chrono::milliseconds(args.get_int("heartbeat-ms"));
    cfg.liveness_timeout =
        std::chrono::milliseconds(args.get_int("liveness-ms"));
    cfg.backoff.initial =
        std::chrono::milliseconds(args.get_int("backoff-initial-ms"));
    cfg.backoff.max =
        std::chrono::milliseconds(args.get_int("backoff-max-ms"));
    cfg.backoff.max_attempts = args.get_int("max-attempts");

    // Structured observability. The client does not know the task until the
    // server's WELCOME, so the manifest only records connection-level facts;
    // semantic (round-level) events live in the server's trace.
    const std::string trace_path = args.get("trace");
    const std::string metrics_path = args.get("metrics");
    metrics::Tracer tracer;
    metrics::Registry registry;
    if (!trace_path.empty()) {
      metrics::RunManifest manifest;
      manifest.producer = "flclient";
      manifest.algo = "adafl-sync";
      manifest.config["host"] = host;
      manifest.config["port"] = std::to_string(port);
      manifest.config["client_id"] = std::to_string(cfg.client_id);
      manifest.config["kernel_backend"] = tensor::kernel_backend_name();
      tracer.open(trace_path, manifest);
      if (!metrics_path.empty()) tracer.attach_registry(&registry);
      cfg.tracer = &tracer;
    }

    // Fault injection: the first connection whose round reaches
    // --crash-at-round is severed on receiving that round's MODEL; the
    // shared flag keeps redialed connections clean so the crash fires once
    // per process, matching the old in-session crash shim.
    const int crash_round = args.get_int("crash-at-round");
    auto crash_fired = std::make_shared<std::atomic<bool>>(false);

    // The task bundle is built on first WELCOME and must outlive the
    // session (the FlClient borrows the training dataset).
    std::optional<cli::TaskBundle> bundle;

    net::transport::ClientSession session(
        cfg,
        [&, crash_fired]() -> std::unique_ptr<net::transport::Transport> {
          auto t = net::transport::TcpTransport::connect(host, port,
                                                         connect_timeout);
          if (!t || crash_round <= 0 || crash_fired->load()) return t;
          net::transport::FaultPlan plan;
          plan.sever_on_recv(net::transport::MsgType::kModel, crash_round);
          auto faulty = std::make_unique<net::transport::FaultyTransport>(
              std::move(t), std::move(plan));
          faulty->set_on_fault(
              [crash_fired](const net::transport::FaultRule&,
                            const net::transport::Frame&) {
                crash_fired->store(true);
              });
          return faulty;
        },
        [&](const std::map<std::string, std::string>& kv, int id,
            const core::AdaFlParams& /*params*/) {
          cli::TaskSpec spec;
          fl::ClientTrainConfig client;
          cli::task_from_kv(kv, &spec, &client);
          std::cout << "bootstrapped: dataset=" << spec.dataset
                    << " model=" << spec.model << " clients=" << spec.clients
                    << " seed=" << spec.seed << std::endl;
          bundle.emplace(cli::build_task(spec));
          return fl::make_client(bundle->factory, &bundle->train,
                                 bundle->parts, client, {},
                                 spec.seed ^ core::kAdaFlClientSeedSalt, id);
        });

    const auto st = session.run();
    if (tracer.enabled()) {
      const std::int64_t n = tracer.events_recorded();
      tracer.close();
      std::cout << "wrote " << trace_path << " (" << n << " events)"
                << std::endl;
    }
    if (!metrics_path.empty()) {
      registry.export_profiler(metrics::PhaseProfiler::instance());
      registry
          .gauge(std::string("kernel.backend.") +
                 tensor::kernel_backend_name())
          .set(1.0);
      registry.gauge("kernel.cpu.avx2")
          .set(tensor::cpu_supports_avx2() ? 1.0 : 0.0);
      registry.write_json(metrics_path);
      std::cout << "wrote " << metrics_path << std::endl;
    }
    std::cout << "client-done: id=" << cfg.client_id
              << " completed=" << (st.completed ? 1 : 0)
              << " rounds-trained=" << st.rounds_trained
              << " updates-sent=" << st.updates_sent
              << " skips=" << st.skips << " reconnects=" << st.reconnects
              << std::endl;
    metrics::print_profile(std::cout);
    return st.completed ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "flclient: " << e.what() << "\n";
    return 1;
  }
}
