// flrelay — mid-tier aggregation relay for hierarchical FL deployments.
//
// Sits between an flserver (or another flrelay) and a contiguous range of
// leaf clients: accepts flclient connections on --port, serves them the
// cached WELCOME/MODEL, forwards their HELLO/SCORE traffic up, and ships
// each aggregation group's updates to the parent as one lossless UPDATE-AGG
// partial. Bitwise transparent: a tiered run equals a flat run with the
// same --agg-group (tests/test_tier.cpp, scripts/tier_soak.sh).
//
//   flrelay --port=5242 --parent=127.0.0.1:4242 --base=0 --count=4
//
// With --standby the relay stays dormant until an orphaned client dials it
// (the signal that the primary relay died), then claims the range from the
// parent and takes over mid-round.
#include <csignal>
#include <iostream>
#include <memory>
#include <thread>

#include "cli/args.h"
#include "metrics/trace.h"
#include "net/relay/relay.h"
#include "net/transport/tcp.h"

using namespace adafl;

namespace {
net::relay::RelaySession* g_session = nullptr;
void handle_signal(int) {
  if (g_session != nullptr) g_session->request_stop();
}
}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("flrelay");
  args.option("port", "5242", "listen port for leaf clients / sub-relays")
      .option("parent", "127.0.0.1:4242",
              "prioritized parent endpoint list host:port[,host:port...]: "
              "when the current endpoint's redial budget is exhausted the "
              "relay rotates to the next one")
      .option("base", "0", "first leaf client id this relay covers")
      .option("count", "0",
              "number of leaf ids covered ([base, base+count)); must be a "
              "multiple of the run's --agg-group")
      .option("standby", "0",
              "stay dormant until a child connects, then claim the range "
              "from the parent (hot-standby relay promotion)")
      .option("connect-timeout-ms", "3000", "parent TCP connect timeout")
      .option("backoff-initial-ms", "200", "first parent redial delay")
      .option("backoff-max-ms", "5000", "parent redial delay cap")
      .option("max-attempts", "10",
              "consecutive failed parent dials before giving up "
              "(0 = forever)")
      .option("heartbeat-ms", "1000",
              "PING the parent after this long without traffic")
      .option("liveness-ms", "8000",
              "redial the parent after this long of silence")
      .option("nudge-ms", "2000",
              "re-send stalled MODEL/SELECT state to children after this "
              "long without progress (doubles per firing; 0 = off)")
      .option("trace", "",
              "append structured JSONL transport events to this file "
              "('' = off)");
  if (!args.parse(argc, argv)) {
    std::cerr << "flrelay: " << args.error() << "\n\n" << args.usage();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  try {
    const auto connect_timeout =
        std::chrono::milliseconds(args.get_int("connect-timeout-ms"));

    struct Endpoint {
      std::string host;
      std::uint16_t port;
    };
    std::vector<Endpoint> endpoints;
    const std::string parent_list = args.get("parent");
    for (std::size_t pos = 0; pos < parent_list.size();) {
      const auto comma = parent_list.find(',', pos);
      const std::string item = parent_list.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      pos = comma == std::string::npos ? parent_list.size() : comma + 1;
      const auto colon = item.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == item.size()) {
        std::cerr << "flrelay: bad endpoint '" << item
                  << "' (expected host:port)\n";
        return 2;
      }
      endpoints.push_back(
          {item.substr(0, colon),
           static_cast<std::uint16_t>(std::stoi(item.substr(colon + 1)))});
    }
    if (endpoints.empty()) {
      std::cerr << "flrelay: --parent must list at least one endpoint\n";
      return 2;
    }

    net::relay::RelayConfig cfg;
    cfg.base = args.get_int("base");
    cfg.count = args.get_int_at_least("count", 1);
    cfg.standby = args.get_bool("standby");
    cfg.heartbeat_interval =
        std::chrono::milliseconds(args.get_int("heartbeat-ms"));
    cfg.liveness_timeout =
        std::chrono::milliseconds(args.get_int("liveness-ms"));
    cfg.retransmit_nudge = std::chrono::milliseconds(args.get_int("nudge-ms"));
    cfg.backoff.initial =
        std::chrono::milliseconds(args.get_int("backoff-initial-ms"));
    cfg.backoff.max =
        std::chrono::milliseconds(args.get_int("backoff-max-ms"));
    cfg.backoff.max_attempts = args.get_int("max-attempts");

    const std::string trace_path = args.get("trace");
    metrics::Tracer tracer;
    if (!trace_path.empty()) {
      metrics::RunManifest manifest;
      manifest.producer = "flrelay";
      manifest.algo = "adafl-sync";
      manifest.config["parent"] = parent_list;
      manifest.config["base"] = std::to_string(cfg.base);
      manifest.config["count"] = std::to_string(cfg.count);
      tracer.open(trace_path, manifest);
      cfg.tracer = &tracer;
    }

    net::relay::RelaySession session(
        cfg,
        [&endpoints, connect_timeout](std::size_t ep)
            -> std::unique_ptr<net::transport::Transport> {
          const Endpoint& target = endpoints[ep];
          return net::transport::TcpTransport::connect(
              target.host, target.port, connect_timeout);
        },
        endpoints.size());

    g_session = &session;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    net::transport::TcpListener listener(
        static_cast<std::uint16_t>(args.get_int("port")));
    std::cout << "flrelay: range [" << cfg.base << ", "
              << cfg.base + cfg.count << ") on port " << listener.port()
              << (cfg.standby ? " (standby)" : "") << std::endl;
    std::thread acceptor([&] {
      while (!listener.closed()) {
        auto t = listener.accept(std::chrono::milliseconds(200));
        if (t) session.add_child_transport(std::move(t));
      }
    });

    const auto st = session.run();
    listener.close();
    acceptor.join();
    g_session = nullptr;

    if (tracer.enabled()) {
      const std::uint64_t nev = tracer.events_recorded();
      tracer.close();
      std::cout << "wrote " << trace_path << " (" << nev << " events)"
                << std::endl;
    }
    std::cout << "relay-done: base=" << cfg.base << " count=" << cfg.count
              << " completed=" << (st.completed ? 1 : 0)
              << " rounds-seen=" << st.rounds_seen
              << " aggs-sent=" << st.aggs_sent
              << " aggs-forwarded=" << st.aggs_forwarded
              << " parent-reconnects=" << st.parent_reconnects
              << " endpoint-rotations=" << st.endpoint_rotations << std::endl;
    return st.completed ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "flrelay: " << e.what() << "\n";
    return 1;
  }
}
