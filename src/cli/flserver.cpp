// flserver — the deployed AdaFL federation server.
//
// Listens for flclient connections and drives real AdaFL rounds over TCP
// using the same round state machine as the simulator; with the same seed
// and task options, the final global weights are bitwise identical to
//   flsim --algo=adafl-sync
// (the CI deployment smoke job asserts this via the weights-crc32 line).
//
//   flserver --port=4242 --clients=4 --rounds=3 --seed=1
//
// Pass --port=0 to bind an ephemeral port; the bound port is printed as
// "listening-on: <port>" so scripts can wire clients up.
//
// Crash recovery: with --checkpoint-dir the server persists its round state
// (atomic write, CRC-protected) every --checkpoint-every rounds and on
// SIGINT/SIGTERM; --resume continues a killed run from the checkpoint, and
// with --checkpoint-every=1 the recovered run's final weights are bitwise
// identical to an uninterrupted one (scripts/chaos_soak.sh proves this with
// kill -9).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <thread>

#include "cli/args.h"
#include "cli/task.h"
#include "core/parallel.h"
#include "metrics/profile.h"
#include "metrics/registry.h"
#include "metrics/table.h"
#include "metrics/trace.h"
#include "net/transport/crc32.h"
#include "net/transport/session.h"
#include "tensor/dispatch.h"

using namespace adafl;

namespace {

// SIGINT/SIGTERM ask the session for a graceful stop (final checkpoint +
// abrupt peer close). request_stop performs only atomic stores, so calling
// it from the handler is async-signal-safe.
std::atomic<net::transport::ServerSession*> g_session{nullptr};

void handle_stop_signal(int) {
  if (auto* s = g_session.load()) s->request_stop(/*write_checkpoint=*/true);
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("flserver");
  args.option("port", "4242", "TCP port to listen on (0 = ephemeral)")
      .option("clients", "4", "fleet size (client ids 0..N-1)")
      .option("quorum", "0",
              "scores needed to proceed past the round deadline (0 = all)")
      .option("rounds", "3", "communication rounds")
      .option("deadline-ms", "60000", "per-phase round deadline")
      .option("k", "5", "AdaFL max selected clients")
      .option("tau", "0.5", "AdaFL utility threshold")
      .option("dataset", "mnist", "mnist|cifar10|cifar100 (synthetic)")
      .option("model", "cnn", "cnn|resnet|vgg|mlp")
      .option("dist", "noniid", "iid|noniid|dirichlet")
      .option("alpha", "0.5", "dirichlet concentration (with --dist=dirichlet)")
      .option("lr", "0.05", "client learning rate")
      .option("batch", "20", "client batch size")
      .option("steps", "5", "local SGD steps per round")
      .option("train-samples", "1500", "synthetic training examples")
      .option("test-samples", "400", "synthetic test examples")
      .option("seed", "1", "experiment seed")
      .option("threads", "0", "worker threads (0 = auto)")
      .option("kernel-backend", "",
              "auto|scalar|avx2 — SIMD kernel backend (empty = "
              "ADAFL_KERNEL_BACKEND env or the scalar reference)")
      .option("checkpoint-dir", "",
              "directory for the durable server checkpoint (enables crash "
              "recovery; written every --checkpoint-every rounds and on "
              "SIGINT/SIGTERM)")
      .option("checkpoint-every", "1", "checkpoint cadence in rounds")
      .option("resume", "0",
              "resume from --checkpoint-dir's checkpoint instead of "
              "starting at round 1")
      .option("profile", "0",
              "print per-phase wall time + tensor heap allocation counts "
              "after the run")
      .option("trace", "",
              "write a structured JSONL event trace to this path (manifest "
              "+ semantic round events + deployed-only transport events)")
      .option("metrics", "",
              "write the end-of-run metrics registry (counters, gauges, "
              "histograms) as JSON to this path");
  if (!args.parse(argc, argv)) {
    std::cerr << "flserver: " << args.error() << "\n\n" << args.usage();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  try {
    core::set_num_threads(args.get_int_at_least("threads", 0));
    if (const std::string kb = args.get("kernel-backend"); !kb.empty())
      tensor::set_kernel_backend(tensor::resolve_kernel_backend(kb));
    metrics::PhaseProfiler::instance().set_enabled(args.get_bool("profile"));
    const cli::TaskSpec spec = cli::spec_from_args(args);
    const auto task = cli::build_task(spec);

    fl::ClientTrainConfig client;
    client.batch_size = args.get_int("batch");
    client.local_steps = args.get_int("steps");
    client.lr = static_cast<float>(args.get_double("lr"));

    net::transport::ServerSessionConfig cfg;
    cfg.params.max_selected = args.get_int("k");
    cfg.params.tau = args.get_double("tau");
    cfg.rounds = args.get_int("rounds");
    cfg.eval_every = std::max(1, cfg.rounds / 12);
    cfg.expected_clients = spec.clients;
    cfg.quorum = args.get_int("quorum");
    cfg.round_deadline =
        std::chrono::milliseconds(args.get_int("deadline-ms"));
    cfg.client_config = cli::task_to_kv(spec, client);
    cfg.checkpoint_dir = args.get("checkpoint-dir");
    cfg.checkpoint_every = args.get_int_at_least("checkpoint-every", 1);
    cfg.resume = args.get_bool("resume");

    // --- Structured observability: tracer + metrics registry.
    metrics::Tracer tracer;
    metrics::Registry registry;
    const std::string trace_path = args.get("trace");
    const std::string metrics_path = args.get("metrics");
    if (!trace_path.empty()) {
      metrics::RunManifest manifest;
      manifest.producer = "flserver";
      manifest.algo = "adafl-sync";
      manifest.seed = spec.seed;
      manifest.rounds = cfg.rounds;
      manifest.clients = spec.clients;
      manifest.config = cfg.client_config;
      // Recorded per binary (not in client_config, which is the WELCOME
      // payload): each peer names the backend its own numerics ran on.
      manifest.config["kernel_backend"] = tensor::kernel_backend_name();
      tracer.open(trace_path, std::move(manifest));
      if (!metrics_path.empty()) tracer.attach_registry(&registry);
      cfg.tracer = &tracer;
    }

    net::transport::TcpListener listener(
        static_cast<std::uint16_t>(args.get_int("port")));
    std::cout << "listening-on: " << listener.port() << std::endl;
    std::cout << "run-config: deployed adafl-sync dataset=" << spec.dataset
              << " model=" << spec.model << " dist=" << spec.dist
              << " clients=" << spec.clients << " rounds=" << cfg.rounds
              << " seed=" << spec.seed << " threads=" << core::num_threads()
              << " kernel-backend=" << tensor::kernel_backend_name()
              << std::endl;

    net::transport::ServerSession session(cfg, task.factory, &task.test);
    std::atomic<bool> done{false};
    std::thread acceptor([&] {
      while (!done.load()) {
        auto t = listener.accept(std::chrono::milliseconds(200));
        if (t) session.add_transport(std::move(t));
      }
    });
    // Stops and joins the acceptor on every exit path: if run() throws, the
    // joinable thread would otherwise be destroyed during unwinding and
    // std::terminate would mask the real error.
    struct AcceptorGuard {
      std::atomic<bool>& done;
      net::transport::TcpListener& listener;
      std::thread& thread;
      ~AcceptorGuard() {
        done.store(true);
        listener.close();
        if (thread.joinable()) thread.join();
      }
    } guard{done, listener, acceptor};

    g_session.store(&session);
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);

    fl::TrainLog log = session.run();

    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_session.store(nullptr);
    done.store(true);
    listener.close();
    acceptor.join();

    if (tracer.enabled()) {
      tracer.close();
      std::cout << "wrote " << trace_path << " (" << tracer.events_recorded()
                << " events)" << std::endl;
    }
    if (!metrics_path.empty()) {
      registry.export_ledger(log.ledger);
      registry.export_profiler(metrics::PhaseProfiler::instance());
      registry
          .gauge(std::string("kernel.backend.") +
                 tensor::kernel_backend_name())
          .set(1.0);
      registry.gauge("kernel.cpu.avx2")
          .set(tensor::cpu_supports_avx2() ? 1.0 : 0.0);
      registry.write_json(metrics_path);
      std::cout << "wrote " << metrics_path << std::endl;
    }

    if (session.resumed_from() > 0)
      std::cout << "resumed-from: " << session.resumed_from() << std::endl;
    if (log.interrupted)
      std::cout << "interrupted: 1 (checkpoint "
                << (cfg.checkpoint_dir.empty() ? "not configured" : "written")
                << "; rerun with --resume=1 to continue)" << std::endl;

    metrics::Table table({"metric", "value"});
    table.add_row({"final accuracy", metrics::fmt_pct(log.final_accuracy())});
    table.add_row({"best accuracy", metrics::fmt_pct(log.best_accuracy())});
    table.add_row({"wall-clock time",
                   metrics::fmt_f(log.total_time, 1) + "s"});
    table.print(std::cout);
    metrics::ledger_table(log.ledger).print(std::cout);

    const auto& w = session.global();
    const std::uint32_t crc =
        net::transport::crc32(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(w.data()), w.size() * 4));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", log.final_accuracy());
    std::cout << "final-accuracy: " << buf << "\n";
    std::snprintf(buf, sizeof(buf), "%08x", crc);
    std::cout << "weights-crc32: " << buf << std::endl;
    metrics::print_profile(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "flserver: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
