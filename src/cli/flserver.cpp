// flserver — the deployed AdaFL federation server.
//
// Listens for flclient connections and drives real AdaFL rounds over TCP
// using the same round state machine as the simulator; with the same seed
// and task options, the final global weights are bitwise identical to
//   flsim --algo=adafl-sync
// (the CI deployment smoke job asserts this via the weights-crc32 line).
//
//   flserver --port=4242 --clients=4 --rounds=3 --seed=1
//
// Pass --port=0 to bind an ephemeral port; the bound port is printed as
// "listening-on: <port>" so scripts can wire clients up.
//
// Crash recovery: with --checkpoint-dir the server persists its round state
// (atomic write, CRC-protected) every --checkpoint-every rounds and on
// SIGINT/SIGTERM; --resume continues a killed run from the checkpoint, and
// with --checkpoint-every=1 the recovered run's final weights are bitwise
// identical to an uninterrupted one (scripts/chaos_soak.sh proves this with
// kill -9).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <thread>

#include "cli/args.h"
#include "cli/task.h"
#include "core/parallel.h"
#include "metrics/profile.h"
#include "metrics/registry.h"
#include "metrics/table.h"
#include "metrics/trace.h"
#include "net/replication/replication.h"
#include "net/transport/crc32.h"
#include "net/transport/session.h"
#include "net/transport/udp.h"
#include "tensor/dispatch.h"

using namespace adafl;

namespace {

// SIGINT/SIGTERM ask the session for a graceful stop (final checkpoint +
// abrupt peer close). request_stop performs only atomic stores, so calling
// it from the handler is async-signal-safe.
std::atomic<net::transport::ServerSession*> g_session{nullptr};

void handle_stop_signal(int) {
  if (auto* s = g_session.load()) s->request_stop(/*write_checkpoint=*/true);
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("flserver");
  args.option("port", "4242", "TCP port to listen on (0 = ephemeral)")
      .option("clients", "4", "fleet size (client ids 0..N-1)")
      .option("quorum", "0",
              "scores needed to proceed past the round deadline (0 = all)")
      .option("rounds", "3", "communication rounds")
      .option("deadline-ms", "60000", "per-phase round deadline")
      .option("round-deadline-ms", "0",
              "whole-round cap (score + update combined): on expiry the "
              "round aggregates what arrived, emits update_lost for the "
              "rest, and continues (0 = off)")
      .option("standby", "",
              "run as hot standby of PRIMARY host:port — tail its "
              "checkpoints over the framed transport and promote on lease "
              "expiry (requires --checkpoint-dir; see docs/deployment.md)")
      .option("lease-ms", "5000",
              "standby heartbeat lease: promote after this long without "
              "hearing from the primary")
      .option("k", "5", "AdaFL max selected clients")
      .option("tau", "0.5", "AdaFL utility threshold")
      .option("agg-group", "0",
              "AdaFL aggregation-group size G: deltas are summed within "
              "contiguous id blocks of G, then blocks merged in order. "
              "Required (non-zero, dividing relay ranges) when flrelay "
              "mid-tiers ship UPDATE-AGG partials (0 = legacy order)")
      .option("dataset", "mnist", "mnist|cifar10|cifar100 (synthetic)")
      .option("model", "cnn", "cnn|resnet|vgg|mlp")
      .option("dist", "noniid", "iid|noniid|dirichlet")
      .option("alpha", "0.5", "dirichlet concentration (with --dist=dirichlet)")
      .option("lr", "0.05", "client learning rate")
      .option("batch", "20", "client batch size")
      .option("steps", "5", "local SGD steps per round")
      .option("train-samples", "1500", "synthetic training examples")
      .option("test-samples", "400", "synthetic test examples")
      .option("seed", "1", "experiment seed")
      .option("threads", "0", "worker threads (0 = auto)")
      .option("shards", "0",
              "event-loop frame-queue shards / parallel decode lanes "
              "(0 = worker thread count)")
      .option("queue-depth", "1024",
              "frames buffered per shard before the loop pauses reads on "
              "that shard's connections (backpressure instead of memory "
              "growth)")
      .option("max-clients", "0",
              "max concurrent connections; at the cap accepting pauses "
              "(clients queue in the kernel backlog) until a connection "
              "closes (0 = unlimited)")
      .option("kernel-backend", "",
              "auto|scalar|avx2 — SIMD kernel backend (empty = "
              "ADAFL_KERNEL_BACKEND env or the scalar reference)")
      .option("transport", "tcp",
              "tcp|udp — byte-stream frames over TCP, or FEC-coded "
              "datagrams over UDP (Reed-Solomon parity repairs packet loss "
              "with zero round trips)")
      .option("fec-parity", "4",
              "UDP: parity datagrams per FEC generation (r; repairs up to "
              "r lost datagrams per generation)")
      .option("fec-generation", "16",
              "UDP: data datagrams per FEC generation (k)")
      .option("fec-mtu", "1200", "UDP: payload bytes per datagram shard")
      .option("nudge-ms", "2000",
              "retransmit-nudge interval: how long the server waits on a "
              "stalled phase before re-sending round frames")
      .option("checkpoint-dir", "",
              "directory for the durable server checkpoint (enables crash "
              "recovery; written every --checkpoint-every rounds and on "
              "SIGINT/SIGTERM)")
      .option("checkpoint-every", "1", "checkpoint cadence in rounds")
      .option("resume", "0",
              "resume from --checkpoint-dir's checkpoint instead of "
              "starting at round 1")
      .option("profile", "0",
              "print per-phase wall time + tensor heap allocation counts "
              "after the run")
      .option("trace", "",
              "write a structured JSONL event trace to this path (manifest "
              "+ semantic round events + deployed-only transport events)")
      .option("metrics", "",
              "write the end-of-run metrics registry (counters, gauges, "
              "histograms) as JSON to this path");
  if (!args.parse(argc, argv)) {
    std::cerr << "flserver: " << args.error() << "\n\n" << args.usage();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  try {
    core::set_num_threads(args.get_int_at_least("threads", 0));
    if (const std::string kb = args.get("kernel-backend"); !kb.empty())
      tensor::set_kernel_backend(tensor::resolve_kernel_backend(kb));
    metrics::PhaseProfiler::instance().set_enabled(args.get_bool("profile"));
    const cli::TaskSpec spec = cli::spec_from_args(args);
    const auto task = cli::build_task(spec);

    fl::ClientTrainConfig client;
    client.batch_size = args.get_int("batch");
    client.local_steps = args.get_int("steps");
    client.lr = static_cast<float>(args.get_double("lr"));

    net::transport::ServerSessionConfig cfg;
    cfg.params.max_selected = args.get_int("k");
    cfg.params.tau = args.get_double("tau");
    cfg.params.agg_group = args.get_int_at_least("agg-group", 0);
    cfg.rounds = args.get_int("rounds");
    cfg.eval_every = std::max(1, cfg.rounds / 12);
    cfg.expected_clients = spec.clients;
    cfg.quorum = args.get_int("quorum");
    cfg.round_deadline =
        std::chrono::milliseconds(args.get_int("deadline-ms"));
    cfg.round_total_deadline =
        std::chrono::milliseconds(args.get_int("round-deadline-ms"));
    cfg.client_config = cli::task_to_kv(spec, client);
    cfg.checkpoint_dir = args.get("checkpoint-dir");
    cfg.checkpoint_every = args.get_int_at_least("checkpoint-every", 1);
    cfg.resume = args.get_bool("resume");
    cfg.retransmit_nudge =
        std::chrono::milliseconds(args.get_int("nudge-ms"));

    const std::string transport = args.get("transport");
    if (transport != "tcp" && transport != "udp") {
      std::cerr << "flserver: --transport must be tcp or udp\n";
      return 2;
    }
    const bool use_udp = transport == "udp";

    // --- Hot standby: tail the primary's checkpoint stream and serve only
    // after promotion. The client listener stays unbound until then, so a
    // client probing this endpoint fails fast and rotates back to the
    // primary (docs/deployment.md, "Hot standby & failover").
    bool promoted = false;
    std::uint32_t promote_round = 0;
    if (const std::string standby_of = args.get("standby");
        !standby_of.empty()) {
      if (cfg.checkpoint_dir.empty()) {
        std::cerr << "flserver: --standby requires --checkpoint-dir (the "
                     "replicated checkpoint must land somewhere durable)\n";
        return 2;
      }
      const auto colon = standby_of.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == standby_of.size()) {
        std::cerr << "flserver: --standby expects host:port\n";
        return 2;
      }
      const std::string primary_host = standby_of.substr(0, colon);
      const auto primary_port = static_cast<std::uint16_t>(
          std::stoi(standby_of.substr(colon + 1)));

      // Fingerprint of the run configuration THIS process would serve.
      // Built exactly like ServerSession's WELCOME payload, so a checkpoint
      // replicated from a differently-configured primary is rejected at
      // replication time instead of corrupting the run at promotion.
      net::transport::WelcomeInfo w;
      w.rounds = static_cast<std::uint32_t>(cfg.rounds);
      auto probe = task.factory();
      w.param_count = probe.get_flat().size();
      w.params = cfg.params;
      w.config = cfg.client_config;

      net::replication::StandbyConfig scfg;
      scfg.checkpoint_dir = cfg.checkpoint_dir;
      scfg.lease = std::chrono::milliseconds(
          args.get_int_at_least("lease-ms", 1));
      scfg.expected_config_crc =
          net::transport::crc32(net::transport::encode_welcome(w));
      net::replication::StandbyReplica replica(
          scfg,
          [&args, use_udp, primary_host,
           primary_port]() -> std::unique_ptr<net::transport::Transport> {
            if (use_udp) {
              auto link = net::transport::UdpSocketLink::connect(primary_host,
                                                                 primary_port);
              if (!link) return nullptr;
              net::transport::UdpFecConfig fec;
              fec.data_shards = args.get_int_at_least("fec-generation", 1);
              fec.parity_shards = args.get_int_at_least("fec-parity", 0);
              fec.max_shard_bytes = args.get_int_at_least("fec-mtu", 1);
              return std::make_unique<net::transport::UdpTransport>(
                  std::move(link), fec);
            }
            return net::transport::TcpTransport::connect(
                primary_host, primary_port, std::chrono::milliseconds(1000));
          });
      std::cout << "standby-of: " << standby_of
                << " lease-ms=" << scfg.lease.count() << std::endl;
      const auto outcome = replica.run();
      if (outcome != net::replication::StandbyOutcome::kPromote) {
        std::cout << "standby-stand-down: primary finished the run ("
                  << replica.checkpoints_received()
                  << " checkpoints replicated)" << std::endl;
        return 0;
      }
      promote_round = replica.last_next_round();
      if (promote_round > static_cast<std::uint32_t>(cfg.rounds)) {
        std::cout << "standby: replicated run already complete; nothing to "
                     "serve"
                  << std::endl;
        return 0;
      }
      // Resume from the newest complete replicated checkpoint. With nothing
      // replicated (the primary died before its first checkpoint) a fresh
      // same-seed start is the dead primary's deterministic twin.
      cfg.resume = promote_round > 0;
      promoted = true;
      std::cout << "promoted-at: " << promote_round << " checkpoints-in="
                << replica.checkpoints_received()
                << " rejected-payloads=" << replica.rejected_payloads()
                << std::endl;
    }

    // --- Structured observability: tracer + metrics registry.
    metrics::Tracer tracer;
    metrics::Registry registry;
    const std::string trace_path = args.get("trace");
    const std::string metrics_path = args.get("metrics");
    if (!trace_path.empty()) {
      metrics::RunManifest manifest;
      manifest.producer = "flserver";
      manifest.algo = "adafl-sync";
      manifest.seed = spec.seed;
      manifest.rounds = cfg.rounds;
      manifest.clients = spec.clients;
      manifest.config = cfg.client_config;
      // Recorded per binary (not in client_config, which is the WELCOME
      // payload): each peer names the backend its own numerics ran on.
      manifest.config["kernel_backend"] = tensor::kernel_backend_name();
      tracer.open(trace_path, std::move(manifest));
      if (!metrics_path.empty()) tracer.attach_registry(&registry);
      cfg.tracer = &tracer;
      if (promoted)
        tracer.record(metrics::ev_promote(static_cast<int>(promote_round),
                                          /*t=*/0.0));
    }
    if (!metrics_path.empty()) {
      // Round latency + frame-dispatch histograms land here; the p99 of
      // server.frame_dispatch_ms is the scaling health metric.
      cfg.registry = &registry;
    }

    // Every server accepts STANDBY_HELLO peers and streams them each
    // checkpoint it writes (no-op until a standby actually attaches).
    net::replication::CheckpointPublisher publisher(cfg.tracer);
    cfg.publisher = &publisher;

    // --- Listener: TCP byte-stream frames or FEC-coded UDP datagrams.
    net::transport::FecStats fec_stats;
    net::transport::UdpFecConfig fec_cfg;
    fec_cfg.data_shards = args.get_int_at_least("fec-generation", 1);
    fec_cfg.parity_shards = args.get_int_at_least("fec-parity", 0);
    fec_cfg.max_shard_bytes = args.get_int_at_least("fec-mtu", 1);
    fec_cfg.stats = &fec_stats;
    const auto fec_t0 = std::chrono::steady_clock::now();
    if (use_udp && cfg.tracer != nullptr) {
      // FEC events fire inside the datagram reassembler, which has no
      // session context, so they carry round 0 / client -1; trace_diff
      // ignores them with the other deployed-only transport events.
      metrics::Tracer* tr = &tracer;
      auto since_t0 = [fec_t0] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - fec_t0)
            .count();
      };
      fec_cfg.hooks.on_datagram_lost = [tr, since_t0](std::int64_t bytes) {
        tr->record(metrics::ev_datagram_lost(0, -1, bytes, since_t0()));
      };
      fec_cfg.hooks.on_fec_repair = [tr, since_t0](int /*shards*/,
                                                   std::int64_t bytes) {
        tr->record(metrics::ev_fec_repair(0, -1, bytes, since_t0()));
      };
    }

    const auto listen_port = static_cast<std::uint16_t>(args.get_int("port"));
    std::unique_ptr<net::transport::TcpListener> tcp_listener;
    std::unique_ptr<net::transport::UdpListener> udp_listener;
    if (use_udp)
      udp_listener =
          std::make_unique<net::transport::UdpListener>(listen_port, fec_cfg);
    else
      tcp_listener = std::make_unique<net::transport::TcpListener>(listen_port);
    const std::uint16_t bound_port =
        use_udp ? udp_listener->port() : tcp_listener->port();
    std::cout << "listening-on: " << bound_port << std::endl;
    std::cout << "run-config: deployed adafl-sync dataset=" << spec.dataset
              << " model=" << spec.model << " dist=" << spec.dist
              << " clients=" << spec.clients << " rounds=" << cfg.rounds
              << " seed=" << spec.seed << " threads=" << core::num_threads()
              << " kernel-backend=" << tensor::kernel_backend_name()
              << " transport=" << transport << std::endl;

    net::transport::ServerSession session(cfg, task.factory, &task.test);

    // --- Event-loop transport: ONE loop thread owns every socket. Accept
    // is part of the loop (EMFILE/ENFILE pauses accepting with exponential
    // backoff instead of killing the server; at --max-clients the kernel
    // backlog absorbs the queue), reads are budgeted per connection, and
    // completed frames land in bounded per-shard queues the session drains
    // — backpressure, not memory growth, when a shard falls behind. The
    // old dedicated acceptor thread is gone on both transports. The loop is
    // destroyed before the session it feeds (declaration order below).
    net::transport::EventLoopConfig lcfg;
    const int shards_opt = args.get_int_at_least("shards", 0);
    lcfg.shards = shards_opt > 0 ? shards_opt : std::max(1, core::num_threads());
    lcfg.queue_depth =
        static_cast<std::size_t>(args.get_int_at_least("queue-depth", 1));
    lcfg.max_clients = args.get_int_at_least("max-clients", 0);
    net::transport::EventLoop loop(lcfg);
    if (use_udp) {
      // The mux fd is watched, not adopted: when it turns readable the loop
      // thread drains it (datagrams route to per-peer queues with no global
      // lock) and hands fresh peers to the session as classic Transports.
      net::transport::UdpListener* ul = udp_listener.get();
      net::transport::ServerSession* sp = &session;
      loop.watch_fd(ul->fd(), [ul, sp] {
        while (auto t = ul->accept(std::chrono::milliseconds(0)))
          sp->add_transport(std::move(t));
      });
    } else {
      loop.adopt_listener(tcp_listener->fd());
    }
    session.attach_event_loop(&loop);  // run() starts and stops the loop

    g_session.store(&session);
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);

    fl::TrainLog log = session.run();

    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_session.store(nullptr);
    if (tcp_listener) tcp_listener->close();
    if (udp_listener) udp_listener->close();

    std::cout << "event-loop: shards=" << loop.shards()
              << " peak-queue-depth=" << loop.peak_queue_depth()
              << " accept-pauses=" << loop.accept_pauses()
              << " read-pauses=" << loop.read_pauses() << std::endl;

    if (use_udp) {
      // Fold the transport's datagram counters into the run ledger so the
      // parity overhead shows up in the end-of-run table and metrics JSON.
      log.ledger.record_parity_overhead(fec_stats.parity_bytes.load());
      log.ledger.record_datagrams(fec_stats.datagrams_sent.load(),
                                  fec_stats.datagrams_lost.load(),
                                  fec_stats.datagrams_repaired.load());
      log.ledger.record_unrecoverable_generations(
          fec_stats.unrecoverable_generations.load());
    }

    if (tracer.enabled()) {
      tracer.close();
      std::cout << "wrote " << trace_path << " (" << tracer.events_recorded()
                << " events)" << std::endl;
    }
    if (!metrics_path.empty()) {
      registry.export_ledger(log.ledger);
      registry.export_profiler(metrics::PhaseProfiler::instance());
      registry
          .gauge(std::string("kernel.backend.") +
                 tensor::kernel_backend_name())
          .set(1.0);
      registry.gauge("kernel.cpu.avx2")
          .set(tensor::cpu_supports_avx2() ? 1.0 : 0.0);
      registry.write_json(metrics_path);
      std::cout << "wrote " << metrics_path << std::endl;
    }

    if (session.resumed_from() > 0)
      std::cout << "resumed-from: " << session.resumed_from() << std::endl;
    if (publisher.checkpoints_replicated() > 0)
      std::cout << "replication: checkpoints-replicated="
                << publisher.checkpoints_replicated()
                << " standbys=" << publisher.standby_count() << std::endl;
    if (log.interrupted)
      std::cout << "interrupted: 1 (checkpoint "
                << (cfg.checkpoint_dir.empty() ? "not configured" : "written")
                << "; rerun with --resume=1 to continue)" << std::endl;

    metrics::Table table({"metric", "value"});
    table.add_row({"final accuracy", metrics::fmt_pct(log.final_accuracy())});
    table.add_row({"best accuracy", metrics::fmt_pct(log.best_accuracy())});
    table.add_row({"wall-clock time",
                   metrics::fmt_f(log.total_time, 1) + "s"});
    table.print(std::cout);
    metrics::ledger_table(log.ledger).print(std::cout);

    const auto& w = session.global();
    const std::uint32_t crc =
        net::transport::crc32(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(w.data()), w.size() * 4));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", log.final_accuracy());
    std::cout << "final-accuracy: " << buf << "\n";
    std::snprintf(buf, sizeof(buf), "%08x", crc);
    std::cout << "weights-crc32: " << buf << std::endl;
    if (use_udp)
      std::cout << "udp-fec: datagrams-sent="
                << fec_stats.datagrams_sent.load()
                << " datagrams-lost=" << fec_stats.datagrams_lost.load()
                << " datagrams-repaired="
                << fec_stats.datagrams_repaired.load()
                << " unrecoverable-generations="
                << fec_stats.unrecoverable_generations.load()
                << " parity-bytes=" << fec_stats.parity_bytes.load()
                << std::endl;
    metrics::print_profile(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "flserver: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
