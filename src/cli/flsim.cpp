// flsim — the configurable federated-learning simulator CLI.
//
// One binary to run any protocol in the library on any synthetic task and
// network profile, printing the accuracy curve as an ASCII chart plus the
// communication summary. Examples:
//
//   flsim --algo=fedavg --dataset=mnist --dist=noniid --rounds=60
//   flsim --algo=adafl-sync --tau=0.5 --k=5 --network=mixed
//   flsim --algo=fedbuff --duration=30 --clients=20 --csv=run.csv
#include <iostream>

#include "cli/args.h"
#include "core/adafl_async.h"
#include "core/adafl_sync.h"
#include "core/parallel.h"
#include "data/synthetic.h"
#include "fl/async_trainer.h"
#include "fl/fedat.h"
#include "fl/sync_trainer.h"
#include "metrics/plot.h"
#include "metrics/table.h"

namespace {

using namespace adafl;

struct TaskBundle {
  data::Dataset train;
  data::Dataset test;
  data::Partition parts;
  nn::ModelFactory factory;
};

TaskBundle build_task(const cli::ArgParser& args) {
  const std::string dataset = args.get("dataset");
  const int clients = args.get_int("clients");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed"));
  const std::int64_t train_n = args.get_int("train-samples");
  const std::int64_t test_n = args.get_int("test-samples");

  data::SyntheticConfig cfg;
  if (dataset == "mnist")
    cfg = data::mnist_like(train_n, seed);
  else if (dataset == "cifar10")
    cfg = data::cifar10_like(train_n, seed);
  else if (dataset == "cifar100")
    cfg = data::cifar100_like(train_n, seed);
  else
    throw std::runtime_error("unknown --dataset=" + dataset);

  TaskBundle t{data::make_synthetic(cfg), {}, {}, nullptr};
  auto test_cfg = cfg;
  test_cfg.num_samples = test_n;
  test_cfg.seed = seed + 9000;
  t.test = data::make_synthetic(test_cfg);

  tensor::Rng rng(seed + 17);
  const std::string dist = args.get("dist");
  if (dist == "iid")
    t.parts = data::partition_iid(t.train.size(), clients, rng);
  else if (dist == "noniid")
    t.parts = data::partition_shards(t.train.labels(), clients, 3, rng);
  else if (dist == "dirichlet")
    t.parts = data::partition_dirichlet(t.train.labels(), clients,
                                        args.get_double("alpha"), rng);
  else
    throw std::runtime_error("unknown --dist=" + dist);

  const std::string model = args.get("model");
  if (model == "cnn")
    t.factory = nn::paper_cnn_factory(t.train.spec(), seed + 3);
  else if (model == "resnet")
    t.factory = nn::resnet_lite_factory(t.train.spec(), seed + 3);
  else if (model == "vgg")
    t.factory = nn::vgg_lite_factory(t.train.spec(), seed + 3);
  else if (model == "mlp")
    t.factory = nn::mlp_factory(t.train.spec(), 64, seed + 3);
  else
    throw std::runtime_error("unknown --model=" + model);
  return t;
}

std::vector<net::LinkConfig> build_links(const cli::ArgParser& args,
                                         int clients) {
  const std::string network = args.get("network");
  if (network == "none") return {};
  if (network == "good")
    return net::make_fleet(clients, 0.0, net::LinkQuality::kGood,
                           net::LinkQuality::kGood);
  if (network == "mixed")
    return net::make_fleet(clients, 0.5, net::LinkQuality::kGood,
                           net::LinkQuality::kCongested);
  if (network == "congested")
    return net::make_fleet(clients, 1.0, net::LinkQuality::kGood,
                           net::LinkQuality::kCongested);
  if (network == "lossy")
    return net::make_fleet(clients, 0.3, net::LinkQuality::kGood,
                           net::LinkQuality::kLossy);
  throw std::runtime_error("unknown --network=" + network);
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("flsim");
  args.option("algo", "fedavg",
              "fedavg|fedadam|fedprox|scaffold|fedasync|fedbuff|fedat|"
              "adafl-sync|adafl-async")
      .option("dataset", "mnist", "mnist|cifar10|cifar100 (synthetic)")
      .option("model", "cnn", "cnn|resnet|vgg|mlp")
      .option("dist", "noniid", "iid|noniid|dirichlet")
      .option("alpha", "0.5", "dirichlet concentration (with --dist=dirichlet)")
      .option("clients", "10", "number of clients")
      .option("rounds", "40", "communication rounds (sync algorithms)")
      .option("duration", "30", "simulated seconds (async algorithms)")
      .option("participation", "0.5", "r_p for the sync baselines")
      .option("lr", "0.05", "client learning rate")
      .option("batch", "20", "client batch size")
      .option("steps", "5", "local SGD steps per round")
      .option("k", "5", "AdaFL max selected clients")
      .option("tau", "0.5", "AdaFL utility threshold")
      .option("tiers", "3", "FedAT tier count")
      .option("network", "none", "none|good|mixed|congested|lossy")
      .option("train-samples", "1500", "synthetic training examples")
      .option("test-samples", "400", "synthetic test examples")
      .option("seed", "1", "experiment seed")
      .option("threads", "0",
              "worker threads for client training and kernels "
              "(0 = auto: ADAFL_THREADS or hardware concurrency); results "
              "are bitwise identical at any thread count")
      .option("csv", "", "write the accuracy curve to this CSV path")
      .option("chart", "1", "render the ASCII accuracy chart");
  if (!args.parse(argc, argv)) {
    std::cerr << "flsim: " << args.error() << "\n\n" << args.usage();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  try {
    core::set_num_threads(args.get_int_at_least("threads", 0));
    const auto task = build_task(args);
    const int clients = args.get_int("clients");
    const auto links = build_links(args, clients);
    fl::ClientTrainConfig client;
    client.batch_size = args.get_int("batch");
    client.local_steps = args.get_int("steps");
    client.lr = static_cast<float>(args.get_double("lr"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const std::string algo = args.get("algo");

    // One-line run config (threads resolved, not the raw flag) so logs and
    // benchmark CSV provenance record exactly what executed.
    std::cout << "run-config: algo=" << algo << " dataset="
              << args.get("dataset") << " model=" << args.get("model")
              << " dist=" << args.get("dist") << " clients=" << clients
              << " seed=" << seed << " threads=" << core::num_threads()
              << "\n";

    fl::TrainLog log;
    bool by_time = false;
    if (algo == "fedavg" || algo == "fedadam" || algo == "fedprox" ||
        algo == "scaffold") {
      fl::SyncConfig cfg;
      cfg.algo = algo == "fedavg"    ? fl::Algorithm::kFedAvg
                 : algo == "fedadam" ? fl::Algorithm::kFedAdam
                 : algo == "fedprox" ? fl::Algorithm::kFedProx
                                     : fl::Algorithm::kScaffold;
      cfg.rounds = args.get_int("rounds");
      cfg.participation = args.get_double("participation");
      cfg.client = client;
      if (cfg.algo == fl::Algorithm::kFedProx) cfg.client.prox_mu = 0.01f;
      cfg.links = links;
      cfg.eval_every = std::max(1, cfg.rounds / 12);
      cfg.seed = seed;
      fl::SyncTrainer t(cfg, task.factory, &task.train, task.parts,
                        &task.test);
      log = t.run();
    } else if (algo == "fedasync" || algo == "fedbuff") {
      by_time = true;
      fl::AsyncConfig cfg;
      cfg.algo = algo == "fedasync" ? fl::AsyncAlgorithm::kFedAsync
                                    : fl::AsyncAlgorithm::kFedBuff;
      cfg.duration = args.get_double("duration");
      cfg.eval_interval = cfg.duration / 12.0;
      cfg.client = client;
      cfg.links = links;
      cfg.seed = seed;
      fl::AsyncTrainer t(cfg, task.factory, &task.train, task.parts,
                         &task.test);
      log = t.run();
    } else if (algo == "fedat") {
      by_time = true;
      fl::FedAtConfig cfg;
      cfg.num_tiers = args.get_int("tiers");
      cfg.duration = args.get_double("duration");
      cfg.eval_interval = cfg.duration / 12.0;
      cfg.client = client;
      cfg.links = links;
      cfg.seed = seed;
      fl::FedAtTrainer t(cfg, task.factory, &task.train, task.parts,
                         &task.test);
      log = t.run();
    } else if (algo == "adafl-sync") {
      core::AdaFlSyncConfig cfg;
      cfg.rounds = args.get_int("rounds");
      cfg.client = client;
      cfg.links = links;
      cfg.eval_every = std::max(1, cfg.rounds / 12);
      cfg.seed = seed;
      cfg.params.max_selected = args.get_int("k");
      cfg.params.tau = args.get_double("tau");
      core::AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts,
                               &task.test);
      log = t.run();
    } else if (algo == "adafl-async") {
      by_time = true;
      core::AdaFlAsyncConfig cfg;
      cfg.duration = args.get_double("duration");
      cfg.eval_interval = cfg.duration / 12.0;
      cfg.client = client;
      cfg.links = links;
      cfg.seed = seed;
      cfg.params.max_selected = args.get_int("k");
      cfg.params.tau = args.get_double("tau");
      core::AdaFlAsyncTrainer t(cfg, task.factory, &task.train, task.parts,
                                &task.test);
      log = t.run();
    } else {
      std::cerr << "flsim: unknown --algo=" << algo << "\n\n" << args.usage();
      return 2;
    }

    // --- Report.
    const auto series =
        by_time ? log.accuracy_vs_time() : log.accuracy_vs_round();
    metrics::Table table({"metric", "value"});
    table.add_row({"final accuracy", metrics::fmt_pct(log.final_accuracy())});
    table.add_row({"best accuracy", metrics::fmt_pct(log.best_accuracy())});
    table.add_row(
        {"delivered updates",
         std::to_string(log.ledger.delivered_updates())});
    table.add_row({"upload", metrics::fmt_bytes(
                                 log.ledger.total_upload_bytes())});
    table.add_row({"download", metrics::fmt_bytes(
                                   log.ledger.total_download_bytes())});
    table.add_row({"simulated time",
                   metrics::fmt_f(log.total_time, 1) + "s"});
    table.print(std::cout);
    if (args.get_bool("chart")) {
      std::cout << "\naccuracy vs " << (by_time ? "time" : "round") << ":\n";
      metrics::AsciiChart chart(64, 14);
      chart.add(algo, series);
      chart.print(std::cout);
    }
    if (const std::string csv = args.get("csv"); !csv.empty()) {
      std::vector<std::vector<std::string>> rows;
      for (std::size_t i = 0; i < series.size(); ++i)
        rows.push_back({metrics::fmt_f(series.x[i], 3),
                        metrics::fmt_f(series.y[i], 4)});
      metrics::write_csv(csv, {by_time ? "time_s" : "round", "accuracy"},
                         rows);
      std::cout << "wrote " << csv << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "flsim: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
