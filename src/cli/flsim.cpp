// flsim — the configurable federated-learning simulator CLI.
//
// One binary to run any protocol in the library on any synthetic task and
// network profile, printing the accuracy curve as an ASCII chart plus the
// communication summary. Examples:
//
//   flsim --algo=fedavg --dataset=mnist --dist=noniid --rounds=60
//   flsim --algo=adafl-sync --tau=0.5 --k=5 --network=mixed
//   flsim --algo=fedbuff --duration=30 --clients=20 --csv=run.csv
#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <optional>
#include <span>

#include "cli/args.h"
#include "cli/task.h"
#include "core/adafl_async.h"
#include "core/adafl_sync.h"
#include "core/parallel.h"
#include "core/server_checkpoint.h"
#include "data/synthetic.h"
#include "fl/async_trainer.h"
#include "fl/fedat.h"
#include "fl/sync_trainer.h"
#include "metrics/plot.h"
#include "metrics/profile.h"
#include "metrics/registry.h"
#include "metrics/table.h"
#include "metrics/trace.h"
#include "net/transport/crc32.h"
#include "tensor/dispatch.h"

namespace {

using namespace adafl;

// SIGINT/SIGTERM flip the stop flag; the round-synchronous trainers poll it
// at round boundaries, write a final checkpoint (when configured), and
// return with TrainLog::interrupted set.
std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true); }

std::vector<net::LinkConfig> build_links(const cli::ArgParser& args,
                                         int clients) {
  const std::string network = args.get("network");
  if (network == "none") return {};
  if (network == "good")
    return net::make_fleet(clients, 0.0, net::LinkQuality::kGood,
                           net::LinkQuality::kGood);
  if (network == "mixed")
    return net::make_fleet(clients, 0.5, net::LinkQuality::kGood,
                           net::LinkQuality::kCongested);
  if (network == "congested")
    return net::make_fleet(clients, 1.0, net::LinkQuality::kGood,
                           net::LinkQuality::kCongested);
  if (network == "lossy")
    return net::make_fleet(clients, 0.3, net::LinkQuality::kGood,
                           net::LinkQuality::kLossy);
  throw std::runtime_error("unknown --network=" + network);
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("flsim");
  args.option("algo", "fedavg",
              "fedavg|fedadam|fedprox|scaffold|fedasync|fedbuff|fedat|"
              "adafl-sync|adafl-async")
      .option("dataset", "mnist", "mnist|cifar10|cifar100 (synthetic)")
      .option("model", "cnn", "cnn|resnet|vgg|mlp")
      .option("dist", "noniid", "iid|noniid|dirichlet")
      .option("alpha", "0.5", "dirichlet concentration (with --dist=dirichlet)")
      .option("clients", "10", "number of clients")
      .option("rounds", "40", "communication rounds (sync algorithms)")
      .option("duration", "30", "simulated seconds (async algorithms)")
      .option("participation", "0.5", "r_p for the sync baselines")
      .option("lr", "0.05", "client learning rate")
      .option("batch", "20", "client batch size")
      .option("steps", "5", "local SGD steps per round")
      .option("k", "5", "AdaFL max selected clients")
      .option("tau", "0.5", "AdaFL utility threshold")
      .option("agg-group", "0",
              "AdaFL aggregation-group size G: deltas are summed within "
              "contiguous id blocks of G, then blocks are merged in order — "
              "the association a G-sized relay tier uses, so a flat run "
              "with the same G is bitwise comparable (0 = legacy order)")
      .option("tiers", "3", "FedAT tier count")
      .option("network", "none", "none|good|mixed|congested|lossy")
      .option("train-samples", "1500", "synthetic training examples")
      .option("test-samples", "400", "synthetic test examples")
      .option("seed", "1", "experiment seed")
      .option("threads", "0",
              "worker threads for client training and kernels "
              "(0 = auto: ADAFL_THREADS or hardware concurrency); results "
              "are bitwise identical at any thread count")
      .option("kernel-backend", "",
              "auto|scalar|avx2 — SIMD kernel backend (empty = "
              "ADAFL_KERNEL_BACKEND env or the scalar reference); results "
              "are bitwise reproducible within a backend")
      .option("csv", "", "write the accuracy curve to this CSV path")
      .option("chart", "1", "render the ASCII accuracy chart")
      .option("checkpoint-dir", "",
              "directory for a durable server checkpoint (crash recovery; "
              "round-synchronous algorithms only)")
      .option("checkpoint-every", "1", "checkpoint cadence in rounds")
      .option("resume", "0",
              "resume from --checkpoint-dir's checkpoint; the resumed run's "
              "final weights are bitwise identical to an uninterrupted one")
      .option("profile", "0",
              "print per-phase wall time + tensor heap allocation counts "
              "after the run")
      .option("trace", "",
              "write a structured JSONL event trace to this path "
              "(manifest + per-round selection/delivery events; same-seed "
              "runs produce byte-identical traces)")
      .option("metrics", "",
              "write the end-of-run metrics registry (counters, gauges, "
              "histograms) as JSON to this path");
  if (!args.parse(argc, argv)) {
    std::cerr << "flsim: " << args.error() << "\n\n" << args.usage();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  try {
    core::set_num_threads(args.get_int_at_least("threads", 0));
    if (const std::string kb = args.get("kernel-backend"); !kb.empty())
      tensor::set_kernel_backend(tensor::resolve_kernel_backend(kb));
    metrics::PhaseProfiler::instance().set_enabled(args.get_bool("profile"));
    const cli::TaskSpec spec = cli::spec_from_args(args);
    const auto task = cli::build_task(spec);
    const int clients = args.get_int("clients");
    const auto links = build_links(args, clients);
    fl::ClientTrainConfig client;
    client.batch_size = args.get_int("batch");
    client.local_steps = args.get_int("steps");
    client.lr = static_cast<float>(args.get_double("lr"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const std::string algo = args.get("algo");

    const std::string ckpt_dir = args.get("checkpoint-dir");
    const std::string ckpt_path =
        ckpt_dir.empty() ? "" : core::checkpoint_path(ckpt_dir);
    const int ckpt_every = args.get_int_at_least("checkpoint-every", 1);
    const bool resume = args.get_bool("resume");
    const bool round_sync = algo == "fedavg" || algo == "fedadam" ||
                            algo == "fedprox" || algo == "scaffold" ||
                            algo == "adafl-sync";
    if ((!ckpt_dir.empty() || resume) && !round_sync)
      throw std::runtime_error(
          "--checkpoint-dir/--resume support round-synchronous algorithms "
          "only (fedavg|fedadam|fedprox|scaffold|adafl-sync)");
    if (!ckpt_dir.empty()) {
      std::signal(SIGINT, handle_stop_signal);
      std::signal(SIGTERM, handle_stop_signal);
    }

    // --- Structured observability: tracer + metrics registry.
    metrics::Tracer tracer;
    metrics::Registry registry;
    const std::string trace_path = args.get("trace");
    const std::string metrics_path = args.get("metrics");
    if (!trace_path.empty()) {
      metrics::RunManifest manifest;
      manifest.producer = "flsim";
      manifest.algo = algo;
      manifest.seed = seed;
      manifest.rounds = round_sync ? args.get_int("rounds") : 0;
      manifest.clients = clients;
      manifest.config = cli::task_to_kv(spec, client);
      // The backend names which numerics produced this trace: same-backend
      // reruns are byte-identical, cross-backend comparisons are
      // semantic-only (see docs/protocols.md).
      manifest.config["kernel_backend"] = tensor::kernel_backend_name();
      tracer.open(trace_path, std::move(manifest));
      if (!metrics_path.empty()) tracer.attach_registry(&registry);
    }

    // One-line run config (threads resolved, not the raw flag) so logs and
    // benchmark CSV provenance record exactly what executed.
    std::cout << "run-config: algo=" << algo << " dataset="
              << args.get("dataset") << " model=" << args.get("model")
              << " dist=" << args.get("dist") << " clients=" << clients
              << " seed=" << seed << " threads=" << core::num_threads()
              << " kernel-backend=" << tensor::kernel_backend_name()
              << "\n";

    fl::TrainLog log;
    bool by_time = false;
    // CRC-32 of the final global weight bytes; the CI deployment smoke job
    // compares this against flserver to prove bitwise equivalence.
    std::optional<std::uint32_t> weights_crc;
    if (algo == "fedavg" || algo == "fedadam" || algo == "fedprox" ||
        algo == "scaffold") {
      fl::SyncConfig cfg;
      cfg.algo = algo == "fedavg"    ? fl::Algorithm::kFedAvg
                 : algo == "fedadam" ? fl::Algorithm::kFedAdam
                 : algo == "fedprox" ? fl::Algorithm::kFedProx
                                     : fl::Algorithm::kScaffold;
      cfg.rounds = args.get_int("rounds");
      cfg.participation = args.get_double("participation");
      cfg.client = client;
      if (cfg.algo == fl::Algorithm::kFedProx) cfg.client.prox_mu = 0.01f;
      cfg.links = links;
      cfg.eval_every = std::max(1, cfg.rounds / 12);
      cfg.seed = seed;
      cfg.checkpoint_path = ckpt_path;
      cfg.checkpoint_every = ckpt_every;
      cfg.resume = resume;
      cfg.stop = &g_stop;
      fl::SyncTrainer t(cfg, task.factory, &task.train, task.parts,
                        &task.test);
      log = t.run();
    } else if (algo == "fedasync" || algo == "fedbuff") {
      by_time = true;
      fl::AsyncConfig cfg;
      cfg.algo = algo == "fedasync" ? fl::AsyncAlgorithm::kFedAsync
                                    : fl::AsyncAlgorithm::kFedBuff;
      cfg.duration = args.get_double("duration");
      cfg.eval_interval = cfg.duration / 12.0;
      cfg.client = client;
      cfg.links = links;
      cfg.seed = seed;
      cfg.tracer = &tracer;
      fl::AsyncTrainer t(cfg, task.factory, &task.train, task.parts,
                         &task.test);
      log = t.run();
    } else if (algo == "fedat") {
      by_time = true;
      fl::FedAtConfig cfg;
      cfg.num_tiers = args.get_int("tiers");
      cfg.duration = args.get_double("duration");
      cfg.eval_interval = cfg.duration / 12.0;
      cfg.client = client;
      cfg.links = links;
      cfg.seed = seed;
      cfg.tracer = &tracer;
      fl::FedAtTrainer t(cfg, task.factory, &task.train, task.parts,
                         &task.test);
      log = t.run();
    } else if (algo == "adafl-sync") {
      core::AdaFlSyncConfig cfg;
      cfg.rounds = args.get_int("rounds");
      cfg.client = client;
      cfg.links = links;
      cfg.eval_every = std::max(1, cfg.rounds / 12);
      cfg.seed = seed;
      cfg.params.max_selected = args.get_int("k");
      cfg.params.tau = args.get_double("tau");
      cfg.params.agg_group = args.get_int_at_least("agg-group", 0);
      cfg.checkpoint_path = ckpt_path;
      cfg.checkpoint_every = ckpt_every;
      cfg.resume = resume;
      cfg.stop = &g_stop;
      cfg.tracer = &tracer;
      core::AdaFlSyncTrainer t(cfg, task.factory, &task.train, task.parts,
                               &task.test);
      log = t.run();
      const auto& w = t.global();
      weights_crc = net::transport::crc32(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(w.data()), w.size() * 4));
    } else if (algo == "adafl-async") {
      by_time = true;
      core::AdaFlAsyncConfig cfg;
      cfg.duration = args.get_double("duration");
      cfg.eval_interval = cfg.duration / 12.0;
      cfg.client = client;
      cfg.links = links;
      cfg.seed = seed;
      cfg.params.max_selected = args.get_int("k");
      cfg.params.tau = args.get_double("tau");
      cfg.tracer = &tracer;
      core::AdaFlAsyncTrainer t(cfg, task.factory, &task.train, task.parts,
                                &task.test);
      log = t.run();
    } else {
      std::cerr << "flsim: unknown --algo=" << algo << "\n\n" << args.usage();
      return 2;
    }

    if (tracer.enabled()) {
      tracer.close();
      std::cout << "wrote " << trace_path << " (" << tracer.events_recorded()
                << " events)\n";
    }
    if (!metrics_path.empty()) {
      registry.export_ledger(log.ledger);
      registry.export_profiler(metrics::PhaseProfiler::instance());
      registry
          .gauge(std::string("kernel.backend.") +
                 tensor::kernel_backend_name())
          .set(1.0);
      registry.gauge("kernel.cpu.avx2")
          .set(tensor::cpu_supports_avx2() ? 1.0 : 0.0);
      registry.write_json(metrics_path);
      std::cout << "wrote " << metrics_path << "\n";
    }

    // --- Report.
    if (log.interrupted)
      std::cout << "interrupted: 1 (checkpoint written; rerun with "
                   "--resume=1 to continue)\n";
    const auto series =
        by_time ? log.accuracy_vs_time() : log.accuracy_vs_round();
    metrics::Table table({"metric", "value"});
    table.add_row({"final accuracy", metrics::fmt_pct(log.final_accuracy())});
    table.add_row({"best accuracy", metrics::fmt_pct(log.best_accuracy())});
    table.add_row(
        {"delivered updates",
         std::to_string(log.ledger.delivered_updates())});
    table.add_row({"upload", metrics::fmt_bytes(
                                 log.ledger.total_upload_bytes())});
    table.add_row({"download", metrics::fmt_bytes(
                                   log.ledger.total_download_bytes())});
    table.add_row({"simulated time",
                   metrics::fmt_f(log.total_time, 1) + "s"});
    table.print(std::cout);
    // Machine-readable result lines (consumed by scripts/deploy_smoke.sh).
    {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6f", log.final_accuracy());
      std::cout << "final-accuracy: " << buf << "\n";
    }
    if (weights_crc) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08x", *weights_crc);
      std::cout << "weights-crc32: " << buf << "\n";
    }
    if (args.get_bool("chart")) {
      std::cout << "\naccuracy vs " << (by_time ? "time" : "round") << ":\n";
      metrics::AsciiChart chart(64, 14);
      chart.add(algo, series);
      chart.print(std::cout);
    }
    if (const std::string csv = args.get("csv"); !csv.empty()) {
      std::vector<std::vector<std::string>> rows;
      for (std::size_t i = 0; i < series.size(); ++i)
        rows.push_back({metrics::fmt_f(series.x[i], 3),
                        metrics::fmt_f(series.y[i], 4)});
      metrics::write_csv(csv, {by_time ? "time_s" : "round", "accuracy"},
                         rows);
      std::cout << "wrote " << csv << "\n";
    }
    metrics::print_profile(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "flsim: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
