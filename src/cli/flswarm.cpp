// flswarm — an in-process fleet of deployed AdaFL clients (load generator).
//
// Dials one flserver with N real TCP connections from a single process and
// drives all N clients through the round protocol — the scaling half of
// scripts/server_scaling_soak.sh and bench_results/BENCH_server_scaling.json.
// Spawning 10,000 flclient processes would exhaust the box long before the
// server breaks a sweat; flswarm multiplexes 10,000 protocol state machines
// over a handful of driver threads instead, while the server still sees
// 10,000 distinct sockets, handshakes, and per-client round interleavings.
//
// Fidelity: every client is built with fl::make_client(seed ^
// kAdaFlClientSeedSalt, id) from ONE shared TaskBundle (the dataset and
// partition are built once, not N times) and mirrors ClientSession's
// handlers exactly — train once per round, compress once per selection,
// re-send cached bytes on duplicate SELECT — so the server's final weights
// are bitwise identical to flsim and to a fleet of real flclient processes.
//
//   flswarm --server=127.0.0.1:4242 --clients=1000 --drivers=4
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "cli/args.h"
#include "cli/task.h"
#include "compress/dgc.h"
#include "core/parallel.h"
#include "core/utility.h"
#include "fl/client.h"
#include "net/transport/session.h"
#include "net/transport/tcp.h"
#include "tensor/dispatch.h"
#include "tensor/tensor.h"

using namespace adafl;
namespace nt = adafl::net::transport;

namespace {

using Clock = std::chrono::steady_clock;

/// One client's protocol state machine; owned by exactly one driver thread.
/// Mirrors ClientSession::run()'s handlers, minus the blocking recv —
/// drivers sweep their clients with non-blocking polls.
struct SwarmClient {
  int id = 0;
  std::unique_ptr<nt::Transport> conn;
  std::optional<fl::FlClient> client;
  std::optional<compress::DgcCompressor> comp;
  core::AdaFlParams params;

  // Round-local training state; survives reconnects by design (same
  // contract as ClientSession): a redial never retrains a round or resets
  // DGC error feedback.
  fl::FlClient::LocalResult res;
  int trained_round = 0;
  int uploaded_round = 0;
  int skipped_round = 0;
  nt::UpdatePayload update;
  std::vector<std::uint8_t> wire_scratch;
  std::vector<std::uint8_t> cached_update;

  bool done = false;
  int rounds_trained = 0;
  int updates_sent = 0;
  int skips = 0;
  int reconnects = 0;
  int dial_failures = 0;
  Clock::time_point next_dial_at{};  ///< linear redial backoff
};

nt::Frame make_frame(nt::MsgType type, std::uint32_t round,
                     std::uint32_t client_id,
                     std::vector<std::uint8_t> payload = {}) {
  nt::Frame f;
  f.type = type;
  f.round = round;
  f.client_id = client_id;
  f.payload = std::move(payload);
  return f;
}

/// Shared, once-built task state. The first WELCOME to arrive builds the
/// bundle under the mutex; every other client (on any driver) reuses it.
struct SharedTask {
  std::mutex mu;
  std::optional<cli::TaskBundle> bundle;
  fl::ClientTrainConfig client_cfg;
  std::uint64_t seed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("flswarm");
  args.option("host", "127.0.0.1", "server host")
      .option("port", "4242", "server port")
      .option("server", "", "host:port (overrides --host/--port)")
      .option("clients", "100", "fleet size (drives client ids 0..N-1)")
      .option("drivers", "4",
              "driver threads; each sweeps its share of the fleet's "
              "non-blocking state machines")
      .option("connect-timeout-ms", "3000", "TCP connect timeout")
      .option("redial-ms", "200", "delay before redialing a failed/dead "
              "connection")
      .option("timeout-s", "600",
              "give up after this long without every client reaching "
              "SHUTDOWN (0 = wait forever)")
      .option("threads", "1",
              "tensor worker threads (default 1: training is swept from "
              "multiple driver threads; per-run results are thread-count "
              "invariant either way)")
      .option("kernel-backend", "",
              "auto|scalar|avx2 — SIMD kernel backend (empty = "
              "ADAFL_KERNEL_BACKEND env or the scalar reference)");
  if (!args.parse(argc, argv)) {
    std::cerr << "flswarm: " << args.error() << "\n\n" << args.usage();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  try {
    core::set_num_threads(args.get_int_at_least("threads", 1));
    if (const std::string kb = args.get("kernel-backend"); !kb.empty())
      tensor::set_kernel_backend(tensor::resolve_kernel_backend(kb));

    std::string host = args.get("host");
    std::uint16_t port = static_cast<std::uint16_t>(args.get_int("port"));
    if (const std::string server = args.get("server"); !server.empty()) {
      const auto colon = server.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == server.size()) {
        std::cerr << "flswarm: --server expects host:port\n";
        return 2;
      }
      host = server.substr(0, colon);
      port = static_cast<std::uint16_t>(std::stoi(server.substr(colon + 1)));
    }

    const int n = args.get_int_at_least("clients", 1);
    const int drivers = std::min(args.get_int_at_least("drivers", 1), n);
    const auto connect_timeout =
        std::chrono::milliseconds(args.get_int("connect-timeout-ms"));
    const auto redial = std::chrono::milliseconds(
        args.get_int_at_least("redial-ms", 0));
    const int timeout_s = args.get_int_at_least("timeout-s", 0);

    SharedTask shared;
    std::vector<SwarmClient> fleet(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      fleet[static_cast<std::size_t>(i)].id = i;

    std::atomic<int> done_count{0};
    std::atomic<bool> give_up{false};

    // Ensures the WELCOME-driven bootstrap happened, then builds this
    // client's simulator-twin (same partition slice, same forked seed).
    auto bootstrap = [&](SwarmClient& c, const nt::WelcomeInfo& w) {
      {
        std::lock_guard<std::mutex> lk(shared.mu);
        if (!shared.bundle) {
          cli::TaskSpec spec;
          cli::task_from_kv(w.config, &spec, &shared.client_cfg);
          shared.seed = static_cast<std::uint64_t>(spec.seed);
          std::cout << "bootstrapped: dataset=" << spec.dataset
                    << " model=" << spec.model << " clients=" << spec.clients
                    << " seed=" << spec.seed << std::endl;
          shared.bundle.emplace(cli::build_task(spec));
        }
      }
      c.params = w.params;
      c.client.emplace(fl::make_client(
          shared.bundle->factory, &shared.bundle->train, shared.bundle->parts,
          shared.client_cfg, {}, shared.seed ^ core::kAdaFlClientSeedSalt,
          c.id));
      ADAFL_CHECK_MSG(
          static_cast<std::uint64_t>(c.client->param_count()) ==
              w.param_count,
          "flswarm: bootstrap model has " << c.client->param_count()
                                          << " params, server expects "
                                          << w.param_count);
      if (!c.comp)
        c.comp.emplace(static_cast<std::int64_t>(w.param_count),
                       c.params.dgc);
    };

    // One handler pass for one frame; mirrors ClientSession::run().
    auto handle = [&](SwarmClient& c, const nt::Frame& f) {
      const auto cid = static_cast<std::uint32_t>(c.id);
      switch (f.type) {
        case nt::MsgType::kWelcome:
          bootstrap(c, nt::parse_welcome(f.payload));
          break;
        case nt::MsgType::kModel: {
          if (!c.client) break;  // WELCOME must precede MODEL
          const nt::ModelPayload m = nt::parse_model(f.payload);
          ADAFL_CHECK_MSG(
              m.global.size() ==
                  static_cast<std::size_t>(c.client->param_count()),
              "flswarm: MODEL dimension mismatch");
          const int round = static_cast<int>(f.round);
          if (c.trained_round != round) {  // a re-sent MODEL never retrains
            c.client->train_from_into(m.global, c.res);
            c.trained_round = round;
            ++c.rounds_trained;
          }
          const double score = core::utility_score(
              c.params.utility, c.res.delta, m.g_hat, c.params.utility.bw_ref,
              c.params.utility.bw_ref);
          c.conn->send(make_frame(nt::MsgType::kScore, f.round, cid,
                                  nt::encode_f64(score)));
          break;
        }
        case nt::MsgType::kSelect: {
          const int round = static_cast<int>(f.round);
          if (round != c.trained_round || !c.comp) break;  // stale selection
          if (c.uploaded_round != round) {
            const double ratio = nt::parse_f64(f.payload);
            c.comp->compress_into(c.res.delta, ratio, c.update.msg);
            c.update.num_examples = c.res.num_examples;
            c.update.mean_loss = c.res.mean_loss;
            c.update.raw_delta_norm = tensor::l2_norm(c.res.delta);
            nt::encode_update_into(c.update, c.cached_update, c.wire_scratch);
            c.uploaded_round = round;
          }
          // Duplicate SELECT re-sends the cached bytes — compressing twice
          // would corrupt the DGC residual.
          c.conn->send(
              make_frame(nt::MsgType::kUpdate, f.round, cid, c.cached_update));
          ++c.updates_sent;
          break;
        }
        case nt::MsgType::kSkip: {
          const int round = static_cast<int>(f.round);
          if (round != c.trained_round || !c.comp || c.skipped_round == round)
            break;
          c.skipped_round = round;
          if (c.params.accumulate_unselected) c.comp->accumulate(c.res.delta);
          ++c.skips;
          break;
        }
        case nt::MsgType::kPing:
          c.conn->send(make_frame(nt::MsgType::kPong, f.round, cid));
          break;
        case nt::MsgType::kShutdown:
          c.done = true;
          c.conn->close();
          c.conn.reset();
          done_count.fetch_add(1);
          break;
        default:
          break;  // PONG and anything unexpected: ignore
      }
    };

    // One sweep over one client: (re)dial if needed, then drain its socket.
    // Returns true on any progress (frame handled or connection made).
    auto sweep = [&](SwarmClient& c) -> bool {
      if (c.done) return false;
      if (!c.conn || c.conn->closed()) {
        const bool had_conn = static_cast<bool>(c.conn);
        c.conn.reset();
        if (Clock::now() < c.next_dial_at) return false;
        c.conn = nt::TcpTransport::connect(host, port, connect_timeout);
        if (!c.conn) {
          ++c.dial_failures;
          c.next_dial_at = Clock::now() + redial;
          return false;
        }
        if (had_conn) ++c.reconnects;
        c.conn->send(make_frame(nt::MsgType::kHello, 0,
                                static_cast<std::uint32_t>(c.id),
                                nt::encode_hello(nt::kProtocolVersion)));
        return true;
      }
      bool progress = false;
      while (c.conn && !c.done) {
        std::optional<nt::Frame> f;
        try {
          f = c.conn->recv(std::chrono::milliseconds(0));
        } catch (const CheckError&) {
          c.conn->close();  // malformed stream: redial next sweep
          break;
        }
        if (!f) break;
        progress = true;
        try {
          handle(c, *f);
        } catch (const CheckError&) {
          if (c.conn) c.conn->close();  // malformed payload: redial
          break;
        }
      }
      return progress;
    };

    const auto t0 = Clock::now();
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(drivers));
    for (int d = 0; d < drivers; ++d) {
      pool.emplace_back([&, d] {
        // Contiguous block ownership: no two drivers ever touch one client.
        const int lo = d * n / drivers;
        const int hi = (d + 1) * n / drivers;
        while (!give_up.load()) {
          bool progress = false;
          int live = 0;
          for (int i = lo; i < hi; ++i) {
            SwarmClient& c = fleet[static_cast<std::size_t>(i)];
            if (sweep(c)) progress = true;
            if (!c.done) ++live;
          }
          if (live == 0) return;
          if (!progress)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }
    while (done_count.load() < n && !give_up.load()) {
      if (timeout_s > 0 &&
          Clock::now() - t0 > std::chrono::seconds(timeout_s)) {
        give_up.store(true);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    for (auto& t : pool) t.join();

    int rounds_trained = 0, updates_sent = 0, skips = 0, reconnects = 0;
    int dial_failures = 0;
    for (const SwarmClient& c : fleet) {
      rounds_trained += c.rounds_trained;
      updates_sent += c.updates_sent;
      skips += c.skips;
      reconnects += c.reconnects;
      dial_failures += c.dial_failures;
    }
    const int completed = done_count.load();
    std::cout << "swarm-done: clients=" << n << " completed=" << completed
              << " drivers=" << drivers
              << " rounds-trained=" << rounds_trained
              << " updates-sent=" << updates_sent << " skips=" << skips
              << " reconnects=" << reconnects
              << " dial-failures=" << dial_failures << " wall-s="
              << std::chrono::duration<double>(Clock::now() - t0).count()
              << std::endl;
    return completed == n ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "flswarm: " << e.what() << "\n";
    return 1;
  }
}
