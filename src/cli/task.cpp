#include "cli/task.h"

#include <cstdio>
#include <stdexcept>

#include "tensor/check.h"

namespace adafl::cli {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);  // exact round-trip
  return buf;
}

std::string fmt_float(float v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
  return buf;
}

const std::string& kv_get(const std::map<std::string, std::string>& kv,
                          const std::string& key) {
  auto it = kv.find(key);
  ADAFL_CHECK_MSG(it != kv.end(), "task config: missing key '" << key << "'");
  return it->second;
}

}  // namespace

TaskSpec spec_from_args(const ArgParser& args) {
  TaskSpec s;
  s.dataset = args.get("dataset");
  s.model = args.get("model");
  s.dist = args.get("dist");
  s.alpha = args.get_double("alpha");
  s.clients = args.get_int("clients");
  s.train_samples = args.get_int("train-samples");
  s.test_samples = args.get_int("test-samples");
  s.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  return s;
}

TaskBundle build_task(const TaskSpec& spec) {
  data::SyntheticConfig cfg;
  if (spec.dataset == "mnist")
    cfg = data::mnist_like(spec.train_samples, spec.seed);
  else if (spec.dataset == "cifar10")
    cfg = data::cifar10_like(spec.train_samples, spec.seed);
  else if (spec.dataset == "cifar100")
    cfg = data::cifar100_like(spec.train_samples, spec.seed);
  else
    throw std::runtime_error("unknown --dataset=" + spec.dataset);

  TaskBundle t{data::make_synthetic(cfg), {}, {}, nullptr};
  auto test_cfg = cfg;
  test_cfg.num_samples = spec.test_samples;
  test_cfg.seed = spec.seed + 9000;
  t.test = data::make_synthetic(test_cfg);

  tensor::Rng rng(spec.seed + 17);
  if (spec.dist == "iid")
    t.parts = data::partition_iid(t.train.size(), spec.clients, rng);
  else if (spec.dist == "noniid")
    t.parts = data::partition_shards(t.train.labels(), spec.clients, 3, rng);
  else if (spec.dist == "dirichlet")
    t.parts = data::partition_dirichlet(t.train.labels(), spec.clients,
                                        spec.alpha, rng);
  else
    throw std::runtime_error("unknown --dist=" + spec.dist);

  if (spec.model == "cnn")
    t.factory = nn::paper_cnn_factory(t.train.spec(), spec.seed + 3);
  else if (spec.model == "resnet")
    t.factory = nn::resnet_lite_factory(t.train.spec(), spec.seed + 3);
  else if (spec.model == "vgg")
    t.factory = nn::vgg_lite_factory(t.train.spec(), spec.seed + 3);
  else if (spec.model == "mlp")
    t.factory = nn::mlp_factory(t.train.spec(), 64, spec.seed + 3);
  else
    throw std::runtime_error("unknown --model=" + spec.model);
  return t;
}

std::map<std::string, std::string> task_to_kv(const TaskSpec& spec,
                                              const fl::ClientTrainConfig& c) {
  std::map<std::string, std::string> kv;
  kv["dataset"] = spec.dataset;
  kv["model"] = spec.model;
  kv["dist"] = spec.dist;
  kv["alpha"] = fmt_double(spec.alpha);
  kv["clients"] = std::to_string(spec.clients);
  kv["train_samples"] = std::to_string(spec.train_samples);
  kv["test_samples"] = std::to_string(spec.test_samples);
  kv["seed"] = std::to_string(spec.seed);
  kv["batch_size"] = std::to_string(c.batch_size);
  kv["local_steps"] = std::to_string(c.local_steps);
  kv["lr"] = fmt_float(c.lr);
  kv["momentum"] = fmt_float(c.momentum);
  kv["prox_mu"] = fmt_float(c.prox_mu);
  return kv;
}

void task_from_kv(const std::map<std::string, std::string>& kv,
                  TaskSpec* spec, fl::ClientTrainConfig* client) {
  ADAFL_CHECK_MSG(spec != nullptr && client != nullptr,
                  "task_from_kv: null output");
  spec->dataset = kv_get(kv, "dataset");
  spec->model = kv_get(kv, "model");
  spec->dist = kv_get(kv, "dist");
  spec->alpha = std::stod(kv_get(kv, "alpha"));
  spec->clients = std::stoi(kv_get(kv, "clients"));
  spec->train_samples = std::stoll(kv_get(kv, "train_samples"));
  spec->test_samples = std::stoll(kv_get(kv, "test_samples"));
  spec->seed = std::stoull(kv_get(kv, "seed"));
  client->batch_size = std::stoll(kv_get(kv, "batch_size"));
  client->local_steps = std::stoi(kv_get(kv, "local_steps"));
  client->lr = std::stof(kv_get(kv, "lr"));
  client->momentum = std::stof(kv_get(kv, "momentum"));
  client->prox_mu = std::stof(kv_get(kv, "prox_mu"));
}

}  // namespace adafl::cli
