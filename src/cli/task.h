// Shared experiment-task construction for the CLI binaries.
//
// flsim, flserver and flclient must build the *same* dataset, partition and
// model from the same seed, or the deployed path cannot be the simulator's
// bitwise twin. This header centralizes that construction, and provides a
// key/value encoding of the task so the server can ship its configuration
// to deployed clients in the WELCOME message (a client only needs
// --host/--port/--id on its command line).
#pragma once

#include <map>
#include <string>

#include "cli/args.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "nn/models.h"

namespace adafl::cli {

/// Everything that determines the learning task (data + model + split).
struct TaskSpec {
  std::string dataset = "mnist";  ///< mnist|cifar10|cifar100 (synthetic)
  std::string model = "cnn";      ///< cnn|resnet|vgg|mlp
  std::string dist = "noniid";    ///< iid|noniid|dirichlet
  double alpha = 0.5;             ///< dirichlet concentration
  int clients = 10;
  std::int64_t train_samples = 1500;
  std::int64_t test_samples = 400;
  std::uint64_t seed = 1;         ///< the run seed
};

struct TaskBundle {
  data::Dataset train;
  data::Dataset test;
  data::Partition parts;
  nn::ModelFactory factory;
};

/// Reads the task options (dataset/model/dist/alpha/clients/train-samples/
/// test-samples/seed) from parsed args.
TaskSpec spec_from_args(const ArgParser& args);

/// Builds the task deterministically from the spec. Seeding is part of the
/// contract: test set uses seed+9000, the partition Rng seed+17, the model
/// factory seed+3 — identical on every binary.
TaskBundle build_task(const TaskSpec& spec);

/// Encodes the task spec + client training hyperparameters as the key/value
/// config shipped in WELCOME. Floating-point values round-trip exactly.
std::map<std::string, std::string> task_to_kv(const TaskSpec& spec,
                                              const fl::ClientTrainConfig& c);

/// Inverse of task_to_kv. Throws on missing or malformed keys.
void task_from_kv(const std::map<std::string, std::string>& kv,
                  TaskSpec* spec, fl::ClientTrainConfig* client);

}  // namespace adafl::cli
