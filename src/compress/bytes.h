// Little-endian byte encoding helpers shared by the compression wire format
// (compress/wire.h) and the deployed transport framing (net/transport/).
//
// Writers append to a std::vector<std::uint8_t>; Reader is a bounds-checked
// cursor that throws CheckError on any attempt to read past the end, so
// malformed network input can never over-read a buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/check.h"

namespace adafl::bytes {

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

inline void put_f32(std::vector<std::uint8_t>& out, float f) {
  std::uint32_t v = 0;
  std::memcpy(&v, &f, 4);
  put_u32(out, v);
}

inline void put_f64(std::vector<std::uint8_t>& out, double d) {
  std::uint64_t v = 0;
  std::memcpy(&v, &d, 8);
  put_u64(out, v);
}

/// u32 length prefix + raw bytes.
inline void put_str(std::vector<std::uint8_t>& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked little-endian reader over a borrowed buffer.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> b) : b_(b) {}

  std::uint8_t u8() {
    ADAFL_CHECK_MSG(off_ + 1 <= b_.size(), "bytes: truncated u8");
    return b_[off_++];
  }

  std::uint16_t u16() {
    ADAFL_CHECK_MSG(off_ + 2 <= b_.size(), "bytes: truncated u16");
    const std::uint16_t v = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(b_[off_]) |
        (static_cast<std::uint16_t>(b_[off_ + 1]) << 8));
    off_ += 2;
    return v;
  }

  std::uint32_t u32() {
    ADAFL_CHECK_MSG(off_ + 4 <= b_.size(), "bytes: truncated u32");
    const std::uint32_t v = static_cast<std::uint32_t>(b_[off_]) |
                            (static_cast<std::uint32_t>(b_[off_ + 1]) << 8) |
                            (static_cast<std::uint32_t>(b_[off_ + 2]) << 16) |
                            (static_cast<std::uint32_t>(b_[off_ + 3]) << 24);
    off_ += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }

  float f32() {
    const std::uint32_t v = u32();
    float f = 0.0f;
    std::memcpy(&f, &v, 4);
    return f;
  }

  double f64() {
    const std::uint64_t v = u64();
    double d = 0.0;
    std::memcpy(&d, &v, 8);
    return d;
  }

  /// Borrows the next `n` bytes without copying.
  std::span<const std::uint8_t> raw(std::size_t n) {
    ADAFL_CHECK_MSG(off_ + n <= b_.size(),
                    "bytes: truncated raw read of " << n);
    auto s = b_.subspan(off_, n);
    off_ += n;
    return s;
  }

  /// Reads a put_str()-encoded string.
  std::string str() {
    const std::uint32_t n = u32();
    ADAFL_CHECK_MSG(off_ + n <= b_.size(), "bytes: truncated string");
    std::string s(reinterpret_cast<const char*>(b_.data()) +
                      static_cast<std::ptrdiff_t>(off_),
                  n);
    off_ += n;
    return s;
  }

  std::size_t offset() const { return off_; }
  std::size_t remaining() const { return b_.size() - off_; }

 private:
  std::span<const std::uint8_t> b_;
  std::size_t off_ = 0;
};

}  // namespace adafl::bytes
