#include "compress/codec.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "tensor/check.h"
#include "tensor/dispatch.h"
#include "tensor/tensor.h"

namespace adafl::compress {

namespace {

constexpr std::int64_t kHeaderBytes = 8;  // kind + dense_size on the wire

std::int64_t bits_to_bytes(std::int64_t bits) { return (bits + 7) / 8; }

}  // namespace

std::vector<float> EncodedGradient::decode() const {
  std::vector<float> out;
  decode_into(out);
  return out;
}

void EncodedGradient::decode_into(std::vector<float>& out) const {
  out.assign(static_cast<std::size_t>(dense_size), 0.0f);
  switch (kind) {
    case CodecKind::kIdentity:
      ADAFL_CHECK(static_cast<std::int64_t>(values.size()) == dense_size);
      std::copy(values.begin(), values.end(), out.begin());
      break;
    case CodecKind::kTopK:
      ADAFL_CHECK(indices.size() == values.size());
      for (std::size_t i = 0; i < indices.size(); ++i) {
        ADAFL_CHECK(indices[i] < out.size());
        out[indices[i]] = values[i];
      }
      break;
    case CodecKind::kQsgd:
    case CodecKind::kTernary:
      ADAFL_CHECK(static_cast<std::int64_t>(levels.size()) == dense_size);
      tensor::active_kernels().qsgd_unpack(
          levels.data(), scale,
          kind == CodecKind::kQsgd
              ? static_cast<float>(std::max(quant_levels, 1))
              : 1.0f,
          out.data(), dense_size);
      break;
  }
}

double EncodedGradient::compression_ratio() const {
  ADAFL_CHECK_MSG(wire_bytes > 0, "compression_ratio: empty message");
  return static_cast<double>(dense_size) * 4.0 /
         static_cast<double>(wire_bytes);
}

EncodedGradient IdentityCodec::encode(std::span<const float> grad,
                                      Rng& /*rng*/) {
  EncodedGradient e;
  e.kind = CodecKind::kIdentity;
  e.dense_size = static_cast<std::int64_t>(grad.size());
  e.values.assign(grad.begin(), grad.end());
  e.wire_bytes = kHeaderBytes + e.dense_size * 4;
  return e;
}

TopKCodec::TopKCodec(double ratio) : ratio_(ratio) {
  ADAFL_CHECK_MSG(ratio >= 1.0, "TopKCodec: ratio must be >= 1");
}

EncodedGradient TopKCodec::encode(std::span<const float> grad, Rng& /*rng*/) {
  const std::int64_t n = static_cast<std::int64_t>(grad.size());
  const std::int64_t k =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                    static_cast<double>(n) / ratio_));
  return encode_top_k(grad, k);
}

std::string TopKCodec::name() const {
  return "topk(1/" + std::to_string(static_cast<int>(ratio_)) + ")";
}

QsgdCodec::QsgdCodec(int levels) : levels_(levels) {
  ADAFL_CHECK_MSG(levels >= 1 && levels <= 127, "QsgdCodec: levels in [1,127]");
}

EncodedGradient QsgdCodec::encode(std::span<const float> grad, Rng& rng) {
  EncodedGradient e;
  e.kind = CodecKind::kQsgd;
  e.dense_size = static_cast<std::int64_t>(grad.size());
  e.quant_levels = levels_;
  const double norm = tensor::l2_norm(grad);
  e.scale = static_cast<float>(norm);
  e.levels.resize(grad.size());
  if (norm > 0.0) {
    // The magnitude ratios |g_i|/norm * s vectorize (kernel table); the
    // stochastic-rounding draw stays a sequential loop because each element
    // consumes the next rng value in order — that sequence is the
    // reproducibility contract of the codec.
    ratios_.resize(grad.size());
    tensor::active_kernels().qsgd_ratios(
        grad.data(), norm, static_cast<double>(levels_), ratios_.data(),
        static_cast<std::int64_t>(grad.size()));
    for (std::size_t i = 0; i < grad.size(); ++i) {
      const double r = ratios_[i];  // in [0, s]
      const double lo = std::floor(r);
      const double hi_prob = r - lo;
      double q = lo + (rng.bernoulli(hi_prob) ? 1.0 : 0.0);
      if (grad[i] < 0) q = -q;
      e.levels[i] = static_cast<std::int8_t>(q);
    }
  }
  // ceil(log2(2s+1)) bits per element + 4-byte scale.
  const std::int64_t bits_per =
      static_cast<std::int64_t>(std::ceil(std::log2(2.0 * levels_ + 1.0)));
  e.wire_bytes = kHeaderBytes + 4 + bits_to_bytes(e.dense_size * bits_per);
  return e;
}

std::string QsgdCodec::name() const {
  return "qsgd(s=" + std::to_string(levels_) + ")";
}

EncodedGradient TernaryCodec::encode(std::span<const float> grad, Rng& rng) {
  EncodedGradient e;
  e.kind = CodecKind::kTernary;
  e.dense_size = static_cast<std::int64_t>(grad.size());
  float mx = 0.0f;
  for (float v : grad) mx = std::max(mx, std::abs(v));
  e.scale = mx;
  e.levels.resize(grad.size());
  if (mx > 0.0f) {
    for (std::size_t i = 0; i < grad.size(); ++i) {
      const double p = std::abs(grad[i]) / mx;
      std::int8_t b = rng.bernoulli(p) ? 1 : 0;
      if (grad[i] < 0) b = static_cast<std::int8_t>(-b);
      e.levels[i] = b;
    }
  }
  e.wire_bytes = kHeaderBytes + 4 + bits_to_bytes(e.dense_size * 2);
  return e;
}

std::vector<std::uint32_t> top_k_by_magnitude(std::span<const float> values,
                                              std::int64_t k) {
  std::vector<std::uint32_t> out, scratch;
  top_k_by_magnitude_into(values, k, out, scratch);
  return out;
}

void top_k_by_magnitude_into(std::span<const float> values, std::int64_t k,
                             std::vector<std::uint32_t>& out,
                             std::vector<std::uint32_t>& scratch) {
  const std::int64_t n = static_cast<std::int64_t>(values.size());
  ADAFL_CHECK_MSG(k >= 1 && k <= n, "top_k_by_magnitude: k=" << k << " n=" << n);
  const auto& kt = tensor::active_kernels();
  // Selection runs on |value| bit patterns: clearing the sign bit of an IEEE
  // float yields an unsigned integer that orders exactly like the magnitude,
  // so the threshold split below is pure integer work (and SIMD-friendly).
  scratch.resize(static_cast<std::size_t>(n));
  kt.abs_bits(values.data(), scratch.data(), n);
  // The k-th largest magnitude is the selection threshold. nth_element may
  // reorder scratch freely — the scans below re-derive bits from `values`.
  std::nth_element(scratch.begin(), scratch.begin() + (k - 1), scratch.end(),
                   std::greater<std::uint32_t>());
  const std::uint32_t threshold = scratch[static_cast<std::size_t>(k - 1)];
  // Everything strictly above the threshold is selected; ties AT the
  // threshold fill the remaining slots in ascending index order. That
  // reproduces the historical rule exactly — magnitude descending, ties
  // toward the lower index — so the selected *set* (and the wire bytes) is
  // identical across backends and standard libraries.
  out.resize(static_cast<std::size_t>(k));
  const std::int64_t above = kt.scan_abs_gt(values.data(), n, threshold,
                                            out.data());
  const std::int64_t ties = kt.scan_abs_eq(values.data(), n, threshold,
                                           out.data() + above, k - above);
  ADAFL_CHECK_MSG(above + ties == k, "top_k_by_magnitude: selected "
                                         << above + ties << " of " << k);
  // Both scans emit ascending indices; sorting the concatenation restores
  // the canonical ascending on-wire order (in place, no allocation).
  std::sort(out.begin(), out.end());
}

EncodedGradient encode_top_k(std::span<const float> values, std::int64_t k) {
  EncodedGradient e;
  std::vector<std::uint32_t> scratch;
  encode_top_k_into(values, k, e, scratch);
  return e;
}

void encode_top_k_into(std::span<const float> values, std::int64_t k,
                       EncodedGradient& out,
                       std::vector<std::uint32_t>& scratch) {
  out.kind = CodecKind::kTopK;
  out.dense_size = static_cast<std::int64_t>(values.size());
  out.levels.clear();
  out.scale = 1.0f;
  out.quant_levels = 0;
  top_k_by_magnitude_into(values, k, out.indices, scratch);
  out.values.clear();
  out.values.reserve(out.indices.size());
  for (auto i : out.indices) out.values.push_back(values[i]);
  // 4-byte index + 4-byte value per entry.
  out.wire_bytes =
      kHeaderBytes + static_cast<std::int64_t>(out.indices.size()) * 8;
}

}  // namespace adafl::compress
