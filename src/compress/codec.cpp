#include "compress/codec.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/check.h"
#include "tensor/tensor.h"

namespace adafl::compress {

namespace {

constexpr std::int64_t kHeaderBytes = 8;  // kind + dense_size on the wire

std::int64_t bits_to_bytes(std::int64_t bits) { return (bits + 7) / 8; }

}  // namespace

std::vector<float> EncodedGradient::decode() const {
  std::vector<float> out;
  decode_into(out);
  return out;
}

void EncodedGradient::decode_into(std::vector<float>& out) const {
  out.assign(static_cast<std::size_t>(dense_size), 0.0f);
  switch (kind) {
    case CodecKind::kIdentity:
      ADAFL_CHECK(static_cast<std::int64_t>(values.size()) == dense_size);
      std::copy(values.begin(), values.end(), out.begin());
      break;
    case CodecKind::kTopK:
      ADAFL_CHECK(indices.size() == values.size());
      for (std::size_t i = 0; i < indices.size(); ++i) {
        ADAFL_CHECK(indices[i] < out.size());
        out[indices[i]] = values[i];
      }
      break;
    case CodecKind::kQsgd:
    case CodecKind::kTernary:
      ADAFL_CHECK(static_cast<std::int64_t>(levels.size()) == dense_size);
      for (std::size_t i = 0; i < levels.size(); ++i)
        out[i] = scale * static_cast<float>(levels[i]) /
                 (kind == CodecKind::kQsgd
                      ? static_cast<float>(std::max(quant_levels, 1))
                      : 1.0f);
      break;
  }
}

double EncodedGradient::compression_ratio() const {
  ADAFL_CHECK_MSG(wire_bytes > 0, "compression_ratio: empty message");
  return static_cast<double>(dense_size) * 4.0 /
         static_cast<double>(wire_bytes);
}

EncodedGradient IdentityCodec::encode(std::span<const float> grad,
                                      Rng& /*rng*/) {
  EncodedGradient e;
  e.kind = CodecKind::kIdentity;
  e.dense_size = static_cast<std::int64_t>(grad.size());
  e.values.assign(grad.begin(), grad.end());
  e.wire_bytes = kHeaderBytes + e.dense_size * 4;
  return e;
}

TopKCodec::TopKCodec(double ratio) : ratio_(ratio) {
  ADAFL_CHECK_MSG(ratio >= 1.0, "TopKCodec: ratio must be >= 1");
}

EncodedGradient TopKCodec::encode(std::span<const float> grad, Rng& /*rng*/) {
  const std::int64_t n = static_cast<std::int64_t>(grad.size());
  const std::int64_t k =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                    static_cast<double>(n) / ratio_));
  return encode_top_k(grad, k);
}

std::string TopKCodec::name() const {
  return "topk(1/" + std::to_string(static_cast<int>(ratio_)) + ")";
}

QsgdCodec::QsgdCodec(int levels) : levels_(levels) {
  ADAFL_CHECK_MSG(levels >= 1 && levels <= 127, "QsgdCodec: levels in [1,127]");
}

EncodedGradient QsgdCodec::encode(std::span<const float> grad, Rng& rng) {
  EncodedGradient e;
  e.kind = CodecKind::kQsgd;
  e.dense_size = static_cast<std::int64_t>(grad.size());
  e.quant_levels = levels_;
  const double norm = tensor::l2_norm(grad);
  e.scale = static_cast<float>(norm);
  e.levels.resize(grad.size());
  if (norm > 0.0) {
    for (std::size_t i = 0; i < grad.size(); ++i) {
      const double r = std::abs(grad[i]) / norm * levels_;  // in [0, s]
      const double lo = std::floor(r);
      const double hi_prob = r - lo;
      double q = lo + (rng.bernoulli(hi_prob) ? 1.0 : 0.0);
      if (grad[i] < 0) q = -q;
      e.levels[i] = static_cast<std::int8_t>(q);
    }
  }
  // ceil(log2(2s+1)) bits per element + 4-byte scale.
  const std::int64_t bits_per =
      static_cast<std::int64_t>(std::ceil(std::log2(2.0 * levels_ + 1.0)));
  e.wire_bytes = kHeaderBytes + 4 + bits_to_bytes(e.dense_size * bits_per);
  return e;
}

std::string QsgdCodec::name() const {
  return "qsgd(s=" + std::to_string(levels_) + ")";
}

EncodedGradient TernaryCodec::encode(std::span<const float> grad, Rng& rng) {
  EncodedGradient e;
  e.kind = CodecKind::kTernary;
  e.dense_size = static_cast<std::int64_t>(grad.size());
  float mx = 0.0f;
  for (float v : grad) mx = std::max(mx, std::abs(v));
  e.scale = mx;
  e.levels.resize(grad.size());
  if (mx > 0.0f) {
    for (std::size_t i = 0; i < grad.size(); ++i) {
      const double p = std::abs(grad[i]) / mx;
      std::int8_t b = rng.bernoulli(p) ? 1 : 0;
      if (grad[i] < 0) b = static_cast<std::int8_t>(-b);
      e.levels[i] = b;
    }
  }
  e.wire_bytes = kHeaderBytes + 4 + bits_to_bytes(e.dense_size * 2);
  return e;
}

std::vector<std::uint32_t> top_k_by_magnitude(std::span<const float> values,
                                              std::int64_t k) {
  std::vector<std::uint32_t> out, scratch;
  top_k_by_magnitude_into(values, k, out, scratch);
  return out;
}

void top_k_by_magnitude_into(std::span<const float> values, std::int64_t k,
                             std::vector<std::uint32_t>& out,
                             std::vector<std::uint32_t>& scratch) {
  const std::int64_t n = static_cast<std::int64_t>(values.size());
  ADAFL_CHECK_MSG(k >= 1 && k <= n, "top_k_by_magnitude: k=" << k << " n=" << n);
  scratch.resize(static_cast<std::size_t>(n));
  std::iota(scratch.begin(), scratch.end(), 0u);
  // Magnitude ties break toward the lower index, so the *set* of selected
  // coordinates is the same on every standard library (nth_element alone
  // leaves both the order and the tie winners implementation-defined, which
  // would leak into the wire bytes and downstream digests).
  std::nth_element(scratch.begin(), scratch.begin() + (k - 1), scratch.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     const float ma = std::abs(values[a]);
                     const float mb = std::abs(values[b]);
                     if (ma != mb) return ma > mb;
                     return a < b;
                   });
  out.assign(scratch.begin(), scratch.begin() + k);
  // Ascending index order: a canonical on-wire layout (and better locality
  // for the decoder's scatter).
  std::sort(out.begin(), out.end());
}

EncodedGradient encode_top_k(std::span<const float> values, std::int64_t k) {
  EncodedGradient e;
  std::vector<std::uint32_t> scratch;
  encode_top_k_into(values, k, e, scratch);
  return e;
}

void encode_top_k_into(std::span<const float> values, std::int64_t k,
                       EncodedGradient& out,
                       std::vector<std::uint32_t>& scratch) {
  out.kind = CodecKind::kTopK;
  out.dense_size = static_cast<std::int64_t>(values.size());
  out.levels.clear();
  out.scale = 1.0f;
  out.quant_levels = 0;
  top_k_by_magnitude_into(values, k, out.indices, scratch);
  out.values.clear();
  out.values.reserve(out.indices.size());
  for (auto i : out.indices) out.values.push_back(values[i]);
  // 4-byte index + 4-byte value per entry.
  out.wire_bytes =
      kHeaderBytes + static_cast<std::int64_t>(out.indices.size()) * 8;
}

}  // namespace adafl::compress
