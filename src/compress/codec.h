// Gradient compression codecs with exact wire-size accounting.
//
// FL transports in this repo exchange EncodedGradient messages; wire_bytes
// is what the network simulator charges and what the communication ledger
// records, so compression ratios translate directly into simulated
// bandwidth/time savings.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/rng.h"

namespace adafl::compress {

using tensor::Rng;

/// How a gradient message is represented on the wire.
enum class CodecKind { kIdentity, kTopK, kQsgd, kTernary };

/// A compressed gradient message. Only the fields relevant to `kind` are
/// populated; decode() reconstructs the dense vector.
struct EncodedGradient {
  CodecKind kind = CodecKind::kIdentity;
  std::int64_t dense_size = 0;  ///< length of the original vector
  std::int64_t wire_bytes = 0;  ///< simulated transmission size

  std::vector<std::uint32_t> indices;  ///< kTopK coordinate list
  std::vector<float> values;           ///< kIdentity dense / kTopK values
  std::vector<std::int8_t> levels;     ///< kQsgd / kTernary codes
  float scale = 1.0f;                  ///< quantizer scale
  int quant_levels = 0;                ///< QSGD level count s

  /// Reconstructs the dense gradient (zeros where nothing was sent).
  std::vector<float> decode() const;

  /// decode into a caller-owned vector (resized to dense_size, reusing its
  /// capacity).
  void decode_into(std::vector<float>& out) const;

  /// Achieved compression ratio = dense float32 bytes / wire bytes.
  double compression_ratio() const;
};

/// Stateless codec interface. Stateful schemes (DGC) live in dgc.h.
class Codec {
 public:
  virtual ~Codec() = default;

  /// Encodes `grad`; `rng` drives stochastic rounding where applicable.
  virtual EncodedGradient encode(std::span<const float> grad, Rng& rng) = 0;

  virtual std::string name() const = 0;
};

/// No compression: dense float32 payload.
class IdentityCodec final : public Codec {
 public:
  EncodedGradient encode(std::span<const float> grad, Rng& rng) override;
  std::string name() const override { return "identity"; }
};

/// Magnitude top-k sparsification at a fixed ratio (keep n/ratio entries).
class TopKCodec final : public Codec {
 public:
  explicit TopKCodec(double ratio);
  EncodedGradient encode(std::span<const float> grad, Rng& rng) override;
  std::string name() const override;

 private:
  double ratio_;
};

/// QSGD (Alistarh et al.): stochastic uniform quantization to `s` levels
/// with an L2 scale.
class QsgdCodec final : public Codec {
 public:
  explicit QsgdCodec(int levels);
  EncodedGradient encode(std::span<const float> grad, Rng& rng) override;
  std::string name() const override;

 private:
  int levels_;
  std::vector<double> ratios_;  ///< per-call magnitude-ratio scratch
};

/// TernGrad (Wen et al.): stochastic ternarization {-1, 0, +1} scaled by
/// max|g|.
class TernaryCodec final : public Codec {
 public:
  EncodedGradient encode(std::span<const float> grad, Rng& rng) override;
  std::string name() const override { return "ternary"; }
};

// ---- Shared helpers ----

/// Returns the indices of the k largest |values| (k >= 1), sorted ascending.
/// Ties in magnitude break toward the lower index, so the selection (and the
/// resulting wire bytes) is identical across standard-library
/// implementations.
std::vector<std::uint32_t> top_k_by_magnitude(std::span<const float> values,
                                              std::int64_t k);

/// top_k_by_magnitude writing the selection into `out` and using `scratch`
/// as the full-length candidate buffer. Both vectors keep their capacity, so
/// repeated calls with the same n allocate nothing. Selection and order are
/// identical to top_k_by_magnitude.
void top_k_by_magnitude_into(std::span<const float> values, std::int64_t k,
                             std::vector<std::uint32_t>& out,
                             std::vector<std::uint32_t>& scratch);

/// Builds a top-k sparse message from `values` at the given keep count.
EncodedGradient encode_top_k(std::span<const float> values, std::int64_t k);

/// encode_top_k into a caller-owned message, reusing its index/value storage
/// (and `scratch` for the candidate buffer). Produces a message bitwise
/// identical to encode_top_k.
void encode_top_k_into(std::span<const float> values, std::int64_t k,
                       EncodedGradient& out,
                       std::vector<std::uint32_t>& scratch);

}  // namespace adafl::compress
