#include "compress/dgc.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"
#include "tensor/tensor.h"

namespace adafl::compress {

DgcCompressor::DgcCompressor(std::int64_t dim, DgcConfig cfg)
    : dim_(dim),
      cfg_(cfg),
      u_(static_cast<std::size_t>(dim), 0.0f),
      v_(static_cast<std::size_t>(dim), 0.0f) {
  ADAFL_CHECK_MSG(dim > 0, "DgcCompressor: dim must be positive");
  ADAFL_CHECK_MSG(cfg.ratio >= 1.0, "DgcCompressor: ratio must be >= 1");
  ADAFL_CHECK_MSG(cfg.momentum >= 0.0f && cfg.momentum < 1.0f,
                  "DgcCompressor: momentum in [0,1)");
  ADAFL_CHECK_MSG(cfg.clip_norm >= 0.0, "DgcCompressor: clip_norm >= 0");
}

EncodedGradient DgcCompressor::compress(std::span<const float> grad,
                                        double ratio_override) {
  EncodedGradient e;
  compress_into(grad, ratio_override, e);
  return e;
}

void DgcCompressor::compress_into(std::span<const float> grad,
                                  double ratio_override,
                                  EncodedGradient& out) {
  ADAFL_CHECK_MSG(static_cast<std::int64_t>(grad.size()) == dim_,
                  "DgcCompressor::compress: gradient length "
                      << grad.size() << " vs dim " << dim_);
  const double ratio = ratio_override > 0.0 ? ratio_override : cfg_.ratio;
  ADAFL_CHECK_MSG(ratio >= 1.0, "DgcCompressor: ratio override must be >= 1");

  // Local gradient clipping + momentum correction + accumulation.
  accumulate(grad);

  const std::int64_t k = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(dim_) / ratio));
  encode_top_k_into(v_, k, out, topk_scratch_);

  // Momentum factor masking: clear transmitted coordinates in both u and v.
  for (auto idx : out.indices) {
    v_[idx] = 0.0f;
    if (cfg_.momentum_correction) u_[idx] = 0.0f;
  }
}

void DgcCompressor::accumulate(std::span<const float> grad) {
  ADAFL_CHECK_MSG(static_cast<std::int64_t>(grad.size()) == dim_,
                  "DgcCompressor::accumulate: gradient length "
                      << grad.size() << " vs dim " << dim_);
  float clip_scale = 1.0f;
  if (cfg_.clip_norm > 0.0) {
    const double norm = tensor::l2_norm(grad);
    if (norm > cfg_.clip_norm)
      clip_scale = static_cast<float>(cfg_.clip_norm / norm);
  }
  if (cfg_.momentum_correction) {
    for (std::size_t i = 0; i < u_.size(); ++i) {
      u_[i] = cfg_.momentum * u_[i] + grad[i] * clip_scale;
      v_[i] += u_[i];
    }
  } else {
    for (std::size_t i = 0; i < v_.size(); ++i)
      v_[i] += grad[i] * clip_scale;
  }
}

void DgcCompressor::reset() {
  std::fill(u_.begin(), u_.end(), 0.0f);
  std::fill(v_.begin(), v_.end(), 0.0f);
}

double DgcCompressor::residual_norm() const { return tensor::l2_norm(v_); }

}  // namespace adafl::compress
