// Deep Gradient Compression (Lin et al., ICLR 2018) — the compression
// backbone AdaFL builds on (paper §IV "Adaptive Gradient Compression").
//
// Per client, DGC keeps two local state vectors:
//   u (momentum)      : u <- m*u + clip(g)
//   v (accumulation)  : v <- v + u
// Each round the top-k entries of |v| are transmitted; at the transmitted
// coordinates both u and v are cleared (momentum factor masking), so unsent
// gradient mass keeps accumulating locally and is eventually sent.
#pragma once

#include "compress/codec.h"
#include "tensor/check.h"

namespace adafl::compress {

/// DGC parameters. `ratio` is the *compression ratio*: k = dim / ratio
/// coordinates are sent per round (ratio 1 = dense).
struct DgcConfig {
  double ratio = 100.0;
  float momentum = 0.9f;          ///< momentum-correction factor
  double clip_norm = 5.0;         ///< local gradient clipping (0 disables)
  bool momentum_correction = true;
  bool warm_up_dense = false;     ///< send dense during warm-up rounds
};

/// Stateful per-client DGC compressor. The compression ratio may be
/// overridden per call — this is the knob AdaFL's controller turns.
class DgcCompressor {
 public:
  DgcCompressor(std::int64_t dim, DgcConfig cfg);

  /// Accumulates `grad` into local state and returns the sparse message for
  /// this round. `ratio_override` > 0 replaces cfg.ratio for this call.
  EncodedGradient compress(std::span<const float> grad,
                           double ratio_override = 0.0);

  /// compress into a caller-owned message (bitwise identical to compress),
  /// reusing its storage plus an internal top-k scratch buffer so
  /// steady-state rounds allocate nothing.
  void compress_into(std::span<const float> grad, double ratio_override,
                     EncodedGradient& out);

  /// Accumulates `grad` into local state (clipping + momentum correction)
  /// WITHOUT emitting a message. AdaFL uses this for clients skipped by node
  /// selection: nothing is transmitted this round, but the gradient mass is
  /// retained and rides along with a future transmission.
  void accumulate(std::span<const float> grad);

  /// Clears accumulated state (e.g. after a global model reset).
  void reset();

  /// Serializable residual state (momentum u + accumulation v) for
  /// crash-recovery checkpoints: restoring it resumes error feedback
  /// bitwise.
  struct State {
    std::vector<float> u, v;
  };
  State state() const { return {u_, v_}; }
  void set_state(State s) {
    ADAFL_CHECK_MSG(static_cast<std::int64_t>(s.u.size()) == dim_ &&
                        static_cast<std::int64_t>(s.v.size()) == dim_,
                    "DgcCompressor: state dimension mismatch (got "
                        << s.u.size() << "/" << s.v.size() << ", want "
                        << dim_ << ")");
    u_ = std::move(s.u);
    v_ = std::move(s.v);
  }

  std::int64_t dim() const { return dim_; }
  const DgcConfig& config() const { return cfg_; }

  /// Accumulated-but-unsent gradient mass (L2 of v); exposed for tests and
  /// diagnostics.
  double residual_norm() const;

 private:
  std::int64_t dim_;
  DgcConfig cfg_;
  std::vector<float> u_;  ///< momentum state
  std::vector<float> v_;  ///< accumulated velocity
  std::vector<std::uint32_t> topk_scratch_;  ///< reused top-k candidate buffer
};

}  // namespace adafl::compress
