#include "compress/wire.h"

#include <cmath>

#include "compress/bytes.h"
#include "tensor/check.h"

namespace adafl::compress {

namespace {

int level_bits(int quant_levels) {
  return static_cast<int>(std::ceil(std::log2(2.0 * quant_levels + 1.0)));
}

/// Signed level -> zig-zag code (0, -1, 1, -2, 2, ... -> 0, 1, 2, 3, 4).
std::uint32_t zigzag(std::int8_t v) {
  const std::int32_t x = v;
  return static_cast<std::uint32_t>((x << 1) ^ (x >> 31));
}

std::int8_t unzigzag(std::uint32_t u) {
  return static_cast<std::int8_t>(static_cast<std::int32_t>(u >> 1) ^
                                  -static_cast<std::int32_t>(u & 1));
}

/// Exact packed-payload size for `count` codes of `bits` bits each.
std::int64_t packed_bytes(std::int64_t count, int bits) {
  return (count * bits + 7) / 8;
}

}  // namespace

void BitWriter::put(std::uint32_t value, int bits) {
  ADAFL_CHECK_MSG(bits >= 1 && bits <= 32, "BitWriter: bits in [1,32]");
  ADAFL_CHECK_MSG(bits == 32 || value < (1u << bits),
                  "BitWriter: value does not fit in " << bits << " bits");
  for (int i = 0; i < bits; ++i) {
    if (bit_pos_ == 0) bytes_.push_back(0);
    if (value & (1u << i))
      bytes_.back() |= static_cast<std::uint8_t>(1u << bit_pos_);
    bit_pos_ = (bit_pos_ + 1) % 8;
  }
}

std::uint32_t BitReader::get(int bits) {
  ADAFL_CHECK_MSG(bits >= 1 && bits <= 32, "BitReader: bits in [1,32]");
  std::uint32_t v = 0;
  for (int i = 0; i < bits; ++i) {
    const std::size_t byte = pos_ / 8;
    ADAFL_CHECK_MSG(byte < bytes_.size(), "BitReader: out of data");
    if (bytes_[byte] & (1u << (pos_ % 8))) v |= (1u << i);
    ++pos_;
  }
  return v;
}

std::int64_t wire_size(const EncodedGradient& e) {
  std::int64_t n = 8;  // kind + aux + reserved + dense_size
  switch (e.kind) {
    case CodecKind::kIdentity:
      n += e.dense_size * 4;
      break;
    case CodecKind::kTopK:
      n += static_cast<std::int64_t>(e.indices.size()) * 8;
      break;
    case CodecKind::kQsgd:
      n += 4 + packed_bytes(e.dense_size,
                            level_bits(std::max(e.quant_levels, 1)));
      break;
    case CodecKind::kTernary:
      n += 4 + packed_bytes(e.dense_size, 2);
      break;
  }
  return n;
}

std::vector<std::uint8_t> serialize(const EncodedGradient& e) {
  std::vector<std::uint8_t> out;
  serialize_into(e, out);
  return out;
}

void serialize_into(const EncodedGradient& e, std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(static_cast<std::size_t>(wire_size(e)));
  out.push_back(static_cast<std::uint8_t>(e.kind));
  // The aux header byte carries the QSGD level count so the payload needs no
  // separate field and serialize() is exactly wire_bytes for every kind.
  if (e.kind == CodecKind::kQsgd) {
    ADAFL_CHECK(e.quant_levels >= 1 && e.quant_levels <= 127);
    out.push_back(static_cast<std::uint8_t>(e.quant_levels));
  } else {
    out.push_back(0);
  }
  out.push_back(0);
  out.push_back(0);
  bytes::put_u32(out, static_cast<std::uint32_t>(e.dense_size));
  switch (e.kind) {
    case CodecKind::kIdentity:
      ADAFL_CHECK(static_cast<std::int64_t>(e.values.size()) == e.dense_size);
      for (float v : e.values) bytes::put_f32(out, v);
      break;
    case CodecKind::kTopK:
      ADAFL_CHECK(e.indices.size() == e.values.size());
      for (std::size_t i = 0; i < e.indices.size(); ++i) {
        bytes::put_u32(out, e.indices[i]);
        bytes::put_f32(out, e.values[i]);
      }
      break;
    case CodecKind::kQsgd: {
      ADAFL_CHECK(static_cast<std::int64_t>(e.levels.size()) == e.dense_size);
      bytes::put_f32(out, e.scale);
      BitWriter bw;
      const int bits = level_bits(e.quant_levels);
      for (auto l : e.levels) bw.put(zigzag(l), bits);
      auto packed = bw.take();
      out.insert(out.end(), packed.begin(), packed.end());
      break;
    }
    case CodecKind::kTernary: {
      ADAFL_CHECK(static_cast<std::int64_t>(e.levels.size()) == e.dense_size);
      bytes::put_f32(out, e.scale);
      BitWriter bw;
      for (auto l : e.levels) {
        ADAFL_CHECK_MSG(l >= -1 && l <= 1, "wire: non-ternary level");
        bw.put(zigzag(l), 2);
      }
      auto packed = bw.take();
      out.insert(out.end(), packed.begin(), packed.end());
      break;
    }
  }
  ADAFL_CHECK(static_cast<std::int64_t>(out.size()) == wire_size(e));
}

EncodedGradient deserialize(std::span<const std::uint8_t> bytes_in) {
  EncodedGradient e;
  deserialize_into(bytes_in, e);
  return e;
}

void deserialize_into(std::span<const std::uint8_t> bytes_in,
                      EncodedGradient& e) {
  ADAFL_CHECK_MSG(bytes_in.size() >= 8, "wire: buffer shorter than header");
  // Reset every field: a reused message must not leak state from the
  // previous frame (the vectors keep their capacity).
  e.indices.clear();
  e.values.clear();
  e.levels.clear();
  e.scale = 1.0f;
  e.quant_levels = 0;
  const std::uint8_t kind_raw = bytes_in[0];
  ADAFL_CHECK_MSG(kind_raw <= static_cast<std::uint8_t>(CodecKind::kTernary),
                  "wire: unknown codec kind " << int(kind_raw));
  e.kind = static_cast<CodecKind>(kind_raw);
  const std::uint8_t aux = bytes_in[1];
  ADAFL_CHECK_MSG(e.kind == CodecKind::kQsgd || aux == 0,
                  "wire: nonzero aux byte for non-qsgd kind");
  ADAFL_CHECK_MSG(bytes_in[2] == 0 && bytes_in[3] == 0,
                  "wire: nonzero reserved header bytes");
  bytes::Reader r(bytes_in.subspan(4));
  e.dense_size = r.u32();
  switch (e.kind) {
    case CodecKind::kIdentity: {
      ADAFL_CHECK_MSG(
          r.remaining() == static_cast<std::size_t>(e.dense_size) * 4,
          "wire: identity payload size mismatch");
      e.values.resize(static_cast<std::size_t>(e.dense_size));
      for (auto& v : e.values) v = r.f32();
      break;
    }
    case CodecKind::kTopK: {
      ADAFL_CHECK_MSG(r.remaining() % 8 == 0,
                      "wire: top-k payload not a multiple of 8");
      const std::size_t count = r.remaining() / 8;
      ADAFL_CHECK_MSG(count <= static_cast<std::size_t>(e.dense_size),
                      "wire: top-k count exceeds dense size");
      e.indices.resize(count);
      e.values.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        e.indices[i] = r.u32();
        ADAFL_CHECK_MSG(
            e.indices[i] < static_cast<std::uint32_t>(e.dense_size),
            "wire: top-k index out of range");
        e.values[i] = r.f32();
      }
      break;
    }
    case CodecKind::kQsgd: {
      e.quant_levels = aux;
      ADAFL_CHECK_MSG(e.quant_levels >= 1, "wire: bad qsgd level count");
      e.scale = r.f32();
      const int bits = level_bits(e.quant_levels);
      // Validate the packed size BEFORE allocating dense_size entries, so a
      // forged huge dense_size cannot trigger a giant allocation or
      // over-read.
      ADAFL_CHECK_MSG(
          static_cast<std::int64_t>(r.remaining()) ==
              packed_bytes(e.dense_size, bits),
          "wire: qsgd payload size mismatch");
      BitReader br(r.raw(r.remaining()));
      e.levels.resize(static_cast<std::size_t>(e.dense_size));
      for (auto& l : e.levels) {
        l = unzigzag(br.get(bits));
        ADAFL_CHECK_MSG(std::abs(l) <= e.quant_levels,
                        "wire: qsgd level out of range");
      }
      break;
    }
    case CodecKind::kTernary: {
      e.scale = r.f32();
      ADAFL_CHECK_MSG(static_cast<std::int64_t>(r.remaining()) ==
                          packed_bytes(e.dense_size, 2),
                      "wire: ternary payload size mismatch");
      BitReader br(r.raw(r.remaining()));
      e.levels.resize(static_cast<std::size_t>(e.dense_size));
      for (auto& l : e.levels) {
        l = unzigzag(br.get(2));
        ADAFL_CHECK_MSG(l >= -1 && l <= 1, "wire: bad ternary code");
      }
      break;
    }
  }
  e.wire_bytes = static_cast<std::int64_t>(bytes_in.size());
}

}  // namespace adafl::compress
