#include "compress/wire.h"

#include <cmath>
#include <cstring>

#include "tensor/check.h"

namespace adafl::compress {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_f32(std::vector<std::uint8_t>& out, float f) {
  std::uint32_t v = 0;
  std::memcpy(&v, &f, 4);
  put_u32(out, v);
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t& off) {
  ADAFL_CHECK_MSG(off + 4 <= b.size(), "wire: truncated u32");
  std::uint32_t v = static_cast<std::uint32_t>(b[off]) |
                    (static_cast<std::uint32_t>(b[off + 1]) << 8) |
                    (static_cast<std::uint32_t>(b[off + 2]) << 16) |
                    (static_cast<std::uint32_t>(b[off + 3]) << 24);
  off += 4;
  return v;
}

float get_f32(std::span<const std::uint8_t> b, std::size_t& off) {
  const std::uint32_t v = get_u32(b, off);
  float f = 0.0f;
  std::memcpy(&f, &v, 4);
  return f;
}

int level_bits(int quant_levels) {
  return static_cast<int>(std::ceil(std::log2(2.0 * quant_levels + 1.0)));
}

/// Signed level -> zig-zag code (0, -1, 1, -2, 2, ... -> 0, 1, 2, 3, 4).
std::uint32_t zigzag(std::int8_t v) {
  const std::int32_t x = v;
  return static_cast<std::uint32_t>((x << 1) ^ (x >> 31));
}

std::int8_t unzigzag(std::uint32_t u) {
  return static_cast<std::int8_t>(static_cast<std::int32_t>(u >> 1) ^
                                  -static_cast<std::int32_t>(u & 1));
}

}  // namespace

void BitWriter::put(std::uint32_t value, int bits) {
  ADAFL_CHECK_MSG(bits >= 1 && bits <= 32, "BitWriter: bits in [1,32]");
  ADAFL_CHECK_MSG(bits == 32 || value < (1u << bits),
                  "BitWriter: value does not fit in " << bits << " bits");
  for (int i = 0; i < bits; ++i) {
    if (bit_pos_ == 0) bytes_.push_back(0);
    if (value & (1u << i))
      bytes_.back() |= static_cast<std::uint8_t>(1u << bit_pos_);
    bit_pos_ = (bit_pos_ + 1) % 8;
  }
}

std::uint32_t BitReader::get(int bits) {
  ADAFL_CHECK_MSG(bits >= 1 && bits <= 32, "BitReader: bits in [1,32]");
  std::uint32_t v = 0;
  for (int i = 0; i < bits; ++i) {
    const std::size_t byte = pos_ / 8;
    ADAFL_CHECK_MSG(byte < bytes_.size(), "BitReader: out of data");
    if (bytes_[byte] & (1u << (pos_ % 8))) v |= (1u << i);
    ++pos_;
  }
  return v;
}

std::int64_t wire_size(const EncodedGradient& e) {
  std::int64_t n = 8;  // kind + reserved + dense_size
  switch (e.kind) {
    case CodecKind::kIdentity:
      n += e.dense_size * 4;
      break;
    case CodecKind::kTopK:
      n += static_cast<std::int64_t>(e.indices.size()) * 8;
      break;
    case CodecKind::kQsgd:
      n += 4 + 1 +
           (e.dense_size * level_bits(std::max(e.quant_levels, 1)) + 7) / 8;
      break;
    case CodecKind::kTernary:
      n += 4 + (e.dense_size * 2 + 7) / 8;
      break;
  }
  return n;
}

std::vector<std::uint8_t> serialize(const EncodedGradient& e) {
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(wire_size(e)));
  out.push_back(static_cast<std::uint8_t>(e.kind));
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  put_u32(out, static_cast<std::uint32_t>(e.dense_size));
  switch (e.kind) {
    case CodecKind::kIdentity:
      ADAFL_CHECK(static_cast<std::int64_t>(e.values.size()) == e.dense_size);
      for (float v : e.values) put_f32(out, v);
      break;
    case CodecKind::kTopK:
      ADAFL_CHECK(e.indices.size() == e.values.size());
      for (std::size_t i = 0; i < e.indices.size(); ++i) {
        put_u32(out, e.indices[i]);
        put_f32(out, e.values[i]);
      }
      break;
    case CodecKind::kQsgd: {
      ADAFL_CHECK(static_cast<std::int64_t>(e.levels.size()) == e.dense_size);
      ADAFL_CHECK(e.quant_levels >= 1 && e.quant_levels <= 127);
      put_f32(out, e.scale);
      out.push_back(static_cast<std::uint8_t>(e.quant_levels));
      BitWriter bw;
      const int bits = level_bits(e.quant_levels);
      for (auto l : e.levels) bw.put(zigzag(l), bits);
      auto packed = bw.take();
      out.insert(out.end(), packed.begin(), packed.end());
      break;
    }
    case CodecKind::kTernary: {
      ADAFL_CHECK(static_cast<std::int64_t>(e.levels.size()) == e.dense_size);
      put_f32(out, e.scale);
      BitWriter bw;
      for (auto l : e.levels) {
        ADAFL_CHECK_MSG(l >= -1 && l <= 1, "wire: non-ternary level");
        bw.put(zigzag(l), 2);
      }
      auto packed = bw.take();
      out.insert(out.end(), packed.begin(), packed.end());
      break;
    }
  }
  ADAFL_CHECK(static_cast<std::int64_t>(out.size()) == wire_size(e));
  return out;
}

EncodedGradient deserialize(std::span<const std::uint8_t> bytes) {
  ADAFL_CHECK_MSG(bytes.size() >= 8, "wire: buffer shorter than header");
  EncodedGradient e;
  const std::uint8_t kind_raw = bytes[0];
  ADAFL_CHECK_MSG(kind_raw <= static_cast<std::uint8_t>(CodecKind::kTernary),
                  "wire: unknown codec kind " << int(kind_raw));
  e.kind = static_cast<CodecKind>(kind_raw);
  std::size_t off = 4;
  e.dense_size = get_u32(bytes, off);
  switch (e.kind) {
    case CodecKind::kIdentity: {
      ADAFL_CHECK_MSG(
          bytes.size() == off + static_cast<std::size_t>(e.dense_size) * 4,
          "wire: identity payload size mismatch");
      e.values.resize(static_cast<std::size_t>(e.dense_size));
      for (auto& v : e.values) v = get_f32(bytes, off);
      break;
    }
    case CodecKind::kTopK: {
      ADAFL_CHECK_MSG((bytes.size() - off) % 8 == 0,
                      "wire: top-k payload not a multiple of 8");
      const std::size_t count = (bytes.size() - off) / 8;
      e.indices.resize(count);
      e.values.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        e.indices[i] = get_u32(bytes, off);
        ADAFL_CHECK_MSG(e.indices[i] <
                            static_cast<std::uint32_t>(e.dense_size),
                        "wire: top-k index out of range");
        e.values[i] = get_f32(bytes, off);
      }
      break;
    }
    case CodecKind::kQsgd: {
      e.scale = get_f32(bytes, off);
      ADAFL_CHECK_MSG(off < bytes.size(), "wire: truncated qsgd header");
      e.quant_levels = bytes[off++];
      ADAFL_CHECK_MSG(e.quant_levels >= 1, "wire: bad qsgd level count");
      BitReader br(bytes.subspan(off));
      const int bits = level_bits(e.quant_levels);
      e.levels.resize(static_cast<std::size_t>(e.dense_size));
      for (auto& l : e.levels) {
        l = unzigzag(br.get(bits));
        ADAFL_CHECK_MSG(std::abs(l) <= e.quant_levels,
                        "wire: qsgd level out of range");
      }
      break;
    }
    case CodecKind::kTernary: {
      e.scale = get_f32(bytes, off);
      BitReader br(bytes.subspan(off));
      e.levels.resize(static_cast<std::size_t>(e.dense_size));
      for (auto& l : e.levels) {
        l = unzigzag(br.get(2));
        ADAFL_CHECK_MSG(l >= -1 && l <= 1, "wire: bad ternary code");
      }
      break;
    }
  }
  e.wire_bytes = static_cast<std::int64_t>(bytes.size());
  return e;
}

}  // namespace adafl::compress
