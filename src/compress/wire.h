// Byte-exact wire format for EncodedGradient messages.
//
// The simulators charge EncodedGradient::wire_bytes; this module makes that
// number real: serialize() produces an actual byte buffer of exactly that
// size (header + payload, with bit-packed QSGD/ternary levels) for every
// codec kind, and deserialize() round-trips it. The deployed transport
// (net/transport/) puts these bytes on the socket inside a framed envelope.
//
// Layout (little-endian):
//   u8  kind            u8 aux (QSGD level count s; 0 for other kinds)
//   u8  reserved[2]     (must be 0)
//   u32 dense_size
//   then per kind:
//     kIdentity: dense_size * f32
//     kTopK:     u32 count is implied by remaining length / 8;
//                count * (u32 index, f32 value)
//     kQsgd:     f32 scale, packed signed levels at ceil(log2(2s+1)) bits
//                each (sign-magnitude zig-zag)
//     kTernary:  f32 scale, packed 2-bit codes
#pragma once

#include "compress/codec.h"

namespace adafl::compress {

/// Serializes `e` into a self-describing byte buffer of exactly
/// e.wire_bytes bytes (== wire_size(e)) for every codec kind.
std::vector<std::uint8_t> serialize(const EncodedGradient& e);

/// serialize into a caller-owned buffer (cleared first, capacity reused).
/// Top-k and identity payloads write straight into `out`; the bit-packed
/// kinds still stage through a BitWriter.
void serialize_into(const EncodedGradient& e, std::vector<std::uint8_t>& out);

/// Exact size serialize() will produce for `e`.
std::int64_t wire_size(const EncodedGradient& e);

/// Parses a buffer produced by serialize(). Throws CheckError on malformed
/// input (bad kind, nonzero reserved bytes, truncated or oversized payload,
/// out-of-range codes) and never reads past `bytes`.
EncodedGradient deserialize(std::span<const std::uint8_t> bytes);

/// deserialize into a caller-owned message: every field is reset and the
/// index/value/level vectors are resized in place, so decoding a stream of
/// same-shaped frames into one Entry reuses its storage frame over frame.
void deserialize_into(std::span<const std::uint8_t> bytes, EncodedGradient& e);

/// Bit-level writer used by the packed payloads (exposed for tests).
class BitWriter {
 public:
  void put(std::uint32_t value, int bits);
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  int bit_pos_ = 0;  ///< bits already used in the last byte
};

/// Bit-level reader matching BitWriter.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}
  std::uint32_t get(int bits);
  /// Bytes consumed so far (rounded up to whole bytes).
  std::size_t consumed() const { return (pos_ + 7) / 8; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;  ///< bit cursor
};

}  // namespace adafl::compress
