#include "core/adafl_async.h"

#include <algorithm>
#include <cmath>

#include "metrics/trace.h"

namespace adafl::core {

namespace {
constexpr std::int64_t kMsgHeaderBytes = 8;
}

AdaFlAsyncTrainer::AdaFlAsyncTrainer(AdaFlAsyncConfig cfg,
                                     nn::ModelFactory factory,
                                     const data::Dataset* train,
                                     data::Partition parts,
                                     const data::Dataset* test,
                                     std::vector<fl::DeviceProfile> devices)
    : cfg_(std::move(cfg)),
      factory_(std::move(factory)),
      test_(test),
      clients_([&] {
        const int n = static_cast<int>(parts.size());
        const int n_unreliable = static_cast<int>(
            std::lround(n * cfg_.faults.unreliable_fraction));
        std::vector<fl::DeviceProfile> devs =
            devices.empty()
                ? std::vector<fl::DeviceProfile>(static_cast<std::size_t>(n),
                                                 fl::workstation())
                : devices;
        ADAFL_CHECK_MSG(static_cast<int>(devs.size()) == n,
                        "AdaFlAsyncTrainer: need 0 or " << n << " devices");
        if (cfg_.faults.straggler_slowdown > 1.0)
          for (int i = 0; i < n_unreliable; ++i)
            devs[static_cast<std::size_t>(i)] = fl::straggler(
                devs[static_cast<std::size_t>(i)],
                cfg_.faults.straggler_slowdown);
        return fl::make_clients(factory_, train, parts, cfg_.client, devs,
                                cfg_.seed ^ 0xADAFA51ULL);
      }()),
      controller_(cfg_.params.compression),
      eval_model_(factory_()),
      rng_(cfg_.seed) {
  ADAFL_CHECK_MSG(test_ != nullptr, "AdaFlAsyncTrainer: null test set");
  ADAFL_CHECK_MSG(cfg_.duration > 0,
                  "AdaFlAsyncTrainer: duration must be positive");
  ADAFL_CHECK_MSG(
      cfg_.links.empty() || cfg_.links.size() == clients_.size(),
      "AdaFlAsyncTrainer: need 0 or " << clients_.size() << " link configs");
  global_ = eval_model_.get_flat();
  global_gradient_.assign(global_.size(), 0.0f);
  tensor::Rng link_rng = rng_.fork(0xA11F);
  for (std::size_t i = 0; i < cfg_.links.size(); ++i)
    links_.emplace_back(cfg_.links[i], link_rng.fork(i + 1));
  compressors_.reserve(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i)
    compressors_.emplace_back(static_cast<std::int64_t>(global_.size()),
                              cfg_.params.dgc);
  stats_.min_ratio_used = cfg_.params.compression.ratio_max;
}

fl::TrainLog AdaFlAsyncTrainer::run() {
  fl::TrainLog log;
  log_ = &log;
  dense_bytes_ =
      kMsgHeaderBytes + 4 * static_cast<std::int64_t>(global_.size());
  log.dense_update_bytes = dense_bytes_;
  delivered_ = 0;
  delivered_since_eval_ = 0;
  loss_since_eval_ = 0.0;
  losses_since_eval_ = 0;
  consecutive_skips_.assign(clients_.size(), 0);

  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const double jitter = rng_.uniform(0.0, 0.01);
    queue_.schedule(jitter, [this, i] { start_cycle(static_cast<int>(i)); });
  }

  for (double t = cfg_.eval_interval; t <= cfg_.duration;
       t += cfg_.eval_interval) {
    queue_.schedule(t, [this, t] {
      eval_model_.set_flat(global_);
      fl::RoundRecord rec;
      rec.round = delivered_;
      rec.time = t;
      rec.test_accuracy = eval_model_.accuracy(test_->all());
      rec.mean_train_loss =
          losses_since_eval_ > 0
              ? loss_since_eval_ / static_cast<double>(losses_since_eval_)
              : 0.0;
      rec.participants = delivered_since_eval_;
      log_->records.push_back(rec);
      delivered_since_eval_ = 0;
      loss_since_eval_ = 0.0;
      losses_since_eval_ = 0;
      if (cfg_.tracer != nullptr && cfg_.tracer->enabled()) {
        cfg_.tracer->record(metrics::ev_round_end(
            rec.round, rec.participants, rec.mean_train_loss, true,
            rec.test_accuracy, t));
        cfg_.tracer->flush();
      }
    });
  }

  queue_.run_until(cfg_.duration);
  log.total_time = queue_.now();
  log.applied_updates = delivered_;
  log_ = nullptr;
  return log;
}

void AdaFlAsyncTrainer::start_cycle(int client_id) {
  if (cfg_.max_updates > 0 && delivered_ >= cfg_.max_updates) return;
  fl::FlClient& cl = clients_[static_cast<std::size_t>(client_id)];
  const std::int64_t version_at_start = version_;
  const bool unreliable =
      client_id < static_cast<int>(std::lround(
                      static_cast<double>(clients_.size()) *
                      cfg_.faults.unreliable_fraction));

  // Download the fresh global model.
  double down_t = 0.0;
  if (!links_.empty()) {
    auto tr = links_[static_cast<std::size_t>(client_id)].download(
        dense_bytes_, queue_.now());
    down_t = tr.duration;
  }
  if (unreliable && cfg_.faults.straggler_slowdown > 1.0)
    down_t *= cfg_.faults.straggler_slowdown;
  log_->ledger.record_download(client_id, dense_bytes_);

  auto res = cl.train_from(global_);

  // Client-side utility gating (the client knows g_hat from consecutive
  // downloaded models, so this costs no extra traffic).
  double up_bw = cfg_.params.utility.bw_ref;
  double down_bw = cfg_.params.utility.bw_ref;
  if (!links_.empty()) {
    up_bw =
        links_[static_cast<std::size_t>(client_id)].up_bandwidth(queue_.now());
    down_bw = links_[static_cast<std::size_t>(client_id)].down_bandwidth(
        queue_.now());
  }
  const double score = utility_score(cfg_.params.utility, res.delta,
                                     global_gradient_, up_bw, down_bw);
  // "Round" for warm-up purposes = accepted updates so far, scaled to the
  // fleet size so warm-up covers roughly warmup_rounds fleet-wide passes.
  const int pseudo_round =
      1 + delivered_ / std::max<int>(1, static_cast<int>(clients_.size()));
  const bool warmup = controller_.in_warmup(pseudo_round);

  // Freshness guard: never skip indefinitely.
  auto& skips = consecutive_skips_[static_cast<std::size_t>(client_id)];
  const bool force_upload = cfg_.params.max_consecutive_skips > 0 &&
                            skips >= cfg_.params.max_consecutive_skips;

  if (!warmup && score < cfg_.params.tau && !force_upload) {
    ++skips;
    // Low utility: halt — accumulate locally, transmit nothing, and wait
    // for the next global model before training again.
    ++stats_.skipped_clients;
    if (cfg_.params.accumulate_unselected)
      compressors_[static_cast<std::size_t>(client_id)].accumulate(res.delta);
    queue_.schedule_in(down_t + res.compute_seconds,
                       [this, client_id] { start_cycle(client_id); });
    return;
  }

  skips = 0;
  // Normalized score for the compression controller: distance above tau.
  // A forced (freshness-guard) upload scores 0 -> maximum compression.
  const double span = 1.0 - cfg_.params.tau;
  const double norm =
      span > 1e-12 ? std::clamp((score - cfg_.params.tau) / span, 0.0, 1.0)
                   : 1.0;
  const double ratio = controller_.ratio_for(norm, pseudo_round);
  stats_.min_ratio_used = std::min(stats_.min_ratio_used, ratio);
  stats_.max_ratio_used = std::max(stats_.max_ratio_used, ratio);

  compress::EncodedGradient msg =
      compressors_[static_cast<std::size_t>(client_id)].compress(res.delta,
                                                                 ratio);
  double up_t = 0.0;
  bool ok = true;
  if (!links_.empty()) {
    auto tr = links_[static_cast<std::size_t>(client_id)].upload(
        msg.wire_bytes, queue_.now());
    up_t = tr.duration;
    ok = tr.delivered;
  }
  if (unreliable && cfg_.faults.straggler_slowdown > 1.0)
    up_t *= cfg_.faults.straggler_slowdown;
  if (unreliable && cfg_.faults.dropout_prob > 0.0 &&
      rng_.bernoulli(cfg_.faults.dropout_prob))
    ok = false;
  log_->ledger.record_upload(client_id, msg.wire_bytes, ok);

  const double arrival = down_t + res.compute_seconds + up_t;
  const float loss = res.mean_loss;
  const double delta_norm = tensor::l2_norm(res.delta);
  if (ok) {
    queue_.schedule_in(arrival, [this, client_id, msg = std::move(msg),
                                 delta_norm, version_at_start,
                                 loss]() mutable {
      on_arrival(client_id, std::move(msg), delta_norm, version_at_start,
                 loss);
    });
  } else {
    queue_.schedule_in(arrival, [this, client_id] { start_cycle(client_id); });
  }
}

void AdaFlAsyncTrainer::on_arrival(int client_id,
                                   compress::EncodedGradient msg,
                                   double delta_norm,
                                   std::int64_t version_at_start, float loss) {
  // The update cap applies to *applied* updates: in-flight arrivals beyond
  // the cap are discarded.
  if (cfg_.max_updates > 0 && delivered_ >= cfg_.max_updates) return;
  const std::int64_t staleness = version_ - version_at_start;
  const float a =
      cfg_.alpha * std::pow(1.0f + static_cast<float>(staleness),
                            -cfg_.staleness_exponent);
  std::vector<float> decoded = msg.decode();
  if (cfg_.params.server_trust_clip) {
    // Trust region: a top-k message can carry accumulated residual mass far
    // larger than the round's raw delta; clip to the raw delta's norm.
    const double norm = tensor::l2_norm(decoded);
    if (norm > delta_norm && norm > 0.0) {
      const float s = static_cast<float>(delta_norm / norm);
      for (auto& v : decoded) v *= s;
    }
  }
  for (std::size_t i = 0; i < global_.size(); ++i)
    global_[i] -= a * decoded[i];
  // g_hat tracks the most recent applied global update (scaled).
  for (std::size_t i = 0; i < global_gradient_.size(); ++i)
    global_gradient_[i] = a * decoded[i];
  ++version_;
  ++delivered_;
  ++delivered_since_eval_;
  ++stats_.selected_updates;
  loss_since_eval_ += loss;
  ++losses_since_eval_;
  if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
    cfg_.tracer->record(metrics::ev_update_delivered(
        delivered_, client_id, msg.wire_bytes, 0,
        static_cast<double>(loss)));
  start_cycle(client_id);
}

}  // namespace adafl::core
