// AdaFL asynchronous trainer: fully-asynchronous operation (the server
// updates the global model on every accepted gradient arrival) with
// client-side utility gating and adaptive DGC compression (paper §V
// "Under asynchronous context, AdaFL adapts fully asynchronous FL").
#pragma once

#include "compress/dgc.h"
#include "core/adafl_sync.h"  // AdaFlStats
#include "core/config.h"
#include "fl/async_trainer.h"

namespace adafl::core {

/// Configuration of one AdaFL asynchronous run.
struct AdaFlAsyncConfig {
  AdaFlParams params;
  double duration = 2000.0;
  int max_updates = 0;             ///< stop after this many accepted updates (0 = off)
  float alpha = 0.6f;              ///< staleness-aware mixing base
  float staleness_exponent = 0.5f;
  fl::ClientTrainConfig client;
  std::vector<net::LinkConfig> links;
  double eval_interval = 50.0;
  std::uint64_t seed = 1;
  fl::AsyncFaults faults;
  /// Optional structured tracer: update_delivered per accepted upload
  /// (bytes = compressed wire size), round_end at each eval tick. Not owned.
  metrics::Tracer* tracer = nullptr;
};

/// Event-driven AdaFL in the fully-asynchronous setting. Clients gate their
/// own uploads on the utility score (low-utility clients halt and wait for
/// the next global model instead of transmitting), and compress accepted
/// uploads at a score-dependent DGC ratio.
class AdaFlAsyncTrainer {
 public:
  AdaFlAsyncTrainer(AdaFlAsyncConfig cfg, nn::ModelFactory factory,
                    const data::Dataset* train, data::Partition parts,
                    const data::Dataset* test,
                    std::vector<fl::DeviceProfile> devices = {});

  fl::TrainLog run();

  const AdaFlStats& stats() const { return stats_; }
  const std::vector<float>& global() const { return global_; }

 private:
  void start_cycle(int client_id);
  void on_arrival(int client_id, compress::EncodedGradient msg,
                  double delta_norm, std::int64_t version_at_start,
                  float loss);

  AdaFlAsyncConfig cfg_;
  nn::ModelFactory factory_;
  const data::Dataset* test_;
  std::vector<fl::FlClient> clients_;
  std::vector<net::Link> links_;
  std::vector<compress::DgcCompressor> compressors_;
  CompressionController controller_;
  std::vector<float> global_;
  std::vector<float> global_gradient_;
  std::int64_t version_ = 0;
  nn::Model eval_model_;
  tensor::Rng rng_;
  net::EventQueue queue_;
  AdaFlStats stats_;

  fl::TrainLog* log_ = nullptr;
  std::vector<int> consecutive_skips_;
  std::int64_t dense_bytes_ = 0;
  int delivered_ = 0;
  int delivered_since_eval_ = 0;
  double loss_since_eval_ = 0.0;
  int losses_since_eval_ = 0;
};

}  // namespace adafl::core
