#include "core/adafl_server.h"

#include <algorithm>

#include "core/parallel.h"
#include "metrics/trace.h"
#include "tensor/check.h"
#include "tensor/tensor.h"

namespace adafl::core {

AdaFlServerCore::AdaFlServerCore(AdaFlParams params,
                                 std::vector<float> initial_global)
    : params_(std::move(params)),
      controller_(params_.compression),
      global_(std::move(initial_global)),
      g_hat_(global_.size(), 0.0f) {
  ADAFL_CHECK_MSG(!global_.empty(), "AdaFlServerCore: empty global model");
  stats_.min_ratio_used = params_.compression.ratio_max;
}

void AdaFlServerCore::restore(State s) {
  ADAFL_CHECK_MSG(s.global.size() == global_.size(),
                  "AdaFlServerCore: restore global has "
                      << s.global.size() << " params, core has "
                      << global_.size());
  ADAFL_CHECK_MSG(s.g_hat.size() == g_hat_.size(),
                  "AdaFlServerCore: restore g_hat dimension mismatch");
  ADAFL_CHECK_MSG(s.rounds_planned >= 0 && s.selected_sum >= 0,
                  "AdaFlServerCore: restore counters negative");
  global_ = std::move(s.global);
  g_hat_ = std::move(s.g_hat);
  stats_ = s.stats;
  selected_sum_ = s.selected_sum;
  rounds_planned_ = s.rounds_planned;
}

AdaFlRoundPlan AdaFlServerCore::plan_round(const std::vector<double>& scores,
                                           const std::vector<bool>& present,
                                           int round) {
  ADAFL_CHECK_MSG(scores.size() == present.size(),
                  "plan_round: scores/present size mismatch");
  AdaFlRoundPlan plan;
  plan.round = round;
  plan.warmup = controller_.in_warmup(round);

  // Compact to the clients that actually reported a score this round; a
  // client lost to the network simply cannot be selected.
  std::vector<double> cscores;
  std::vector<int> cids;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (!present[i]) continue;
    cscores.push_back(scores[i]);
    cids.push_back(static_cast<int>(i));
  }

  SelectionResult csel;
  if (plan.warmup) {
    // Warm-up: equal participation — every reporting client is selected.
    for (std::size_t j = 0; j < cids.size(); ++j)
      csel.selected.push_back(static_cast<int>(j));
  } else {
    csel = select_clients(cscores, params_.max_selected, params_.tau);
  }

  // Ratios are assigned on the compact index space (normalize_selected only
  // reads the selected entries, so this matches the simulator's full-vector
  // call bit for bit), then ids are mapped back.
  const std::vector<double> norm = normalize_selected(cscores, csel.selected);
  plan.ratios.reserve(csel.selected.size());
  for (std::size_t j = 0; j < csel.selected.size(); ++j) {
    const double ratio = controller_.ratio_for(norm[j], round);
    stats_.min_ratio_used = std::min(stats_.min_ratio_used, ratio);
    stats_.max_ratio_used = std::max(stats_.max_ratio_used, ratio);
    plan.ratios.push_back(ratio);
    plan.sel.selected.push_back(cids[static_cast<std::size_t>(
        csel.selected[j])]);
  }
  for (int j : csel.below_threshold)
    plan.sel.below_threshold.push_back(
        cids[static_cast<std::size_t>(j)]);

  if (tracer_ != nullptr && tracer_->enabled()) {
    // Selected clients in selection order (aligned with plan.ratios), then
    // every present-but-unselected client in ascending id order — a fully
    // deterministic emission order shared by both paths.
    for (std::size_t j = 0; j < csel.selected.size(); ++j)
      tracer_->record(metrics::ev_client_selected(
          round, plan.sel.selected[j],
          cscores[static_cast<std::size_t>(csel.selected[j])],
          plan.ratios[j]));
    std::vector<bool> is_selected(cids.size(), false);
    for (int j : csel.selected) is_selected[static_cast<std::size_t>(j)] = true;
    for (std::size_t j = 0; j < cids.size(); ++j)
      if (!is_selected[j])
        tracer_->record(
            metrics::ev_client_skipped(round, cids[j], cscores[j]));
  }

  stats_.skipped_clients += static_cast<std::int64_t>(cids.size()) -
                            static_cast<std::int64_t>(plan.sel.selected.size());
  selected_sum_ += static_cast<std::int64_t>(plan.sel.selected.size());
  ++rounds_planned_;
  stats_.mean_selected_per_round =
      static_cast<double>(selected_sum_) /
      static_cast<double>(rounds_planned_);
  return plan;
}

AdaFlRoundOutcome AdaFlServerCore::apply_round(
    const AdaFlRoundPlan& plan,
    const std::map<int, AdaFlDelivery>& deliveries) {
  return apply_round(plan, [&deliveries](int id) -> const AdaFlDelivery* {
    auto it = deliveries.find(id);
    return it == deliveries.end() ? nullptr : &it->second;
  });
}

AdaFlRoundOutcome AdaFlServerCore::apply_round(
    const AdaFlRoundPlan& plan,
    const std::function<const AdaFlDelivery*(int)>& find) {
  return apply_round(plan, find, nullptr);
}

AdaFlRoundOutcome AdaFlServerCore::apply_round(
    const AdaFlRoundPlan& plan,
    const std::function<const AdaFlDelivery*(int)>& find,
    const std::function<const compress::EncodedGradient*(int)>&
        wire_partial) {
  const std::size_t d = global_.size();
  const int group = params_.agg_group;
  ADAFL_CHECK_MSG(group > 0 || wire_partial == nullptr,
                  "apply_round: wire partials require agg_group > 0");
  // Sparse error-feedback aggregation: sum the weighted sparse messages and
  // divide by the total delivered weight (the unbiased FedAvg estimate —
  // unsent mass stays in each client's DGC residual and is flushed in later
  // rounds).
  //
  // The aggregation is sharded over the ELEMENT dimension, not over
  // clients: each parallel chunk owns a contiguous slice [lo, hi) of the
  // sum buffer and walks the deliveries in selection order, accumulating
  // only the coordinates that fall in its slice (top-k indices are sorted
  // ascending, so the in-range run is found by binary search). Every
  // element's additions therefore happen in selection order — exactly the
  // sequential order — making the result bitwise identical at any thread
  // count, while the disjoint slices concatenated in chunk order are the
  // deterministic shard-order reduction. All buffers are members reused
  // across rounds (assign/clear keep capacity): zero allocations in steady
  // state.
  std::vector<float>& sum_delta = sum_delta_;
  sum_delta.assign(d, 0.0f);
  double weight_sum = 0.0;
  double delta_norm_wsum = 0.0;  // for the server trust region
  AdaFlRoundOutcome out;
  const bool traced = tracer_ != nullptr && tracer_->enabled();
  // Sequential pre-pass in selection order: validation (CheckError must
  // never escape a pool thread), trace events (the tracer is not
  // thread-safe), and the scalar accumulators.
  delivered_ptrs_.clear();
  delivered_by_id_.clear();
  for (int id : plan.sel.selected) {
    const AdaFlDelivery* found = find(id);
    if (found == nullptr) {  // lost in transit
      if (traced) tracer_->record(metrics::ev_update_lost(plan.round, id));
      continue;
    }
    const AdaFlDelivery& dl = *found;
    if (dl.meta_only) {
      // The coordinates live in a relay's wire partial; only the metadata
      // is validated here, the partial itself below.
      ADAFL_CHECK_MSG(group > 0,
                      "apply_round: meta-only delivery for client "
                          << id << " without grouped aggregation");
    } else {
      ADAFL_CHECK_MSG(
          dl.msg.kind == compress::CodecKind::kTopK,
          "apply_round: client " << id << " sent a non-top-k kind");
      ADAFL_CHECK_MSG(
          dl.msg.dense_size == static_cast<std::int64_t>(d),
          "apply_round: client " << id << " update dimension mismatch");
      for (std::size_t e = 0; e < dl.msg.indices.size(); ++e) {
        ADAFL_CHECK_MSG(dl.msg.indices[e] < d,
                        "apply_round: update index out of range");
        ADAFL_CHECK_MSG(e == 0 || dl.msg.indices[e - 1] <= dl.msg.indices[e],
                        "apply_round: update indices not sorted ascending");
      }
    }
    delivered_ptrs_.push_back(&dl);
    delivered_by_id_.emplace_back(id, &dl);
    const float w = static_cast<float>(dl.num_examples);
    weight_sum += w;
    delta_norm_wsum += static_cast<double>(w) * dl.raw_delta_norm;
    out.loss_sum += dl.mean_loss;
    ++out.delivered;
    ++stats_.selected_updates;
    if (traced)
      // wire_bytes is the codec-level serialized size, which both paths
      // compute identically (the simulator from serialize(), the deployed
      // server from the received payload).
      tracer_->record(metrics::ev_update_delivered(
          plan.round, id, dl.msg.wire_bytes, dl.num_examples,
          static_cast<double>(dl.mean_loss)));
  }

  const auto dn = static_cast<std::int64_t>(d);
  if (!delivered_ptrs_.empty() && group <= 0) {
    // Classic flat association: every element accumulates the deliveries in
    // selection order.
    parallel_for_blocked(0, dn, [&](std::int64_t lo, std::int64_t hi) {
      const auto ulo = static_cast<std::uint32_t>(lo);
      const auto uhi = static_cast<std::uint32_t>(hi);
      for (const AdaFlDelivery* dlp : delivered_ptrs_) {
        const auto& idx = dlp->msg.indices;
        const auto& val = dlp->msg.values;
        const float w = static_cast<float>(dlp->num_examples);
        auto it = std::lower_bound(idx.begin(), idx.end(), ulo);
        for (std::size_t e = static_cast<std::size_t>(it - idx.begin());
             e < idx.size() && idx[e] < uhi; ++e)
          sum_delta[idx[e]] += w * val[e];
      }
    });
  } else if (!delivered_by_id_.empty()) {
    // Grouped association (agg_group > 0): per-group partials in
    // ascending-id order, merged in ascending group order. A group covered
    // by a relay's wire partial uses it verbatim (the relay ran the same
    // PartialAggregator arithmetic on the same fp32 inputs, and the kTopK
    // wire codec is lossless, so the bytes match a local recomputation);
    // every other group is computed here — which is also the flat-run path,
    // making tiered and flat runs bitwise identical by construction.
    std::sort(delivered_by_id_.begin(), delivered_by_id_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (group_partials_.size() < delivered_by_id_.size())
      group_partials_.resize(delivered_by_id_.size());
    group_ptrs_.clear();
    std::size_t computed = 0;
    for (std::size_t e = 0; e < delivered_by_id_.size();) {
      const int base = (delivered_by_id_[e].first / group) * group;
      const std::size_t begin = e;
      while (e < delivered_by_id_.size() &&
             delivered_by_id_[e].first < base + group)
        ++e;
      const compress::EncodedGradient* wp =
          wire_partial == nullptr ? nullptr : wire_partial(base);
      if (wp != nullptr) {
        ADAFL_CHECK_MSG(wp->kind == compress::CodecKind::kTopK,
                        "apply_round: wire partial for group "
                            << base << " is not top-k");
        ADAFL_CHECK_MSG(
            wp->dense_size == static_cast<std::int64_t>(d) &&
                wp->indices.size() == wp->values.size(),
            "apply_round: wire partial for group " << base << " malformed");
        for (std::size_t j = 0; j < wp->indices.size(); ++j) {
          ADAFL_CHECK_MSG(wp->indices[j] < d,
                          "apply_round: wire partial index out of range");
          ADAFL_CHECK_MSG(j == 0 || wp->indices[j - 1] < wp->indices[j],
                          "apply_round: wire partial indices not strictly "
                          "ascending");
        }
        for (std::size_t j = begin; j < e; ++j)
          ADAFL_CHECK_MSG(delivered_by_id_[j].second->meta_only,
                          "apply_round: client "
                              << delivered_by_id_[j].first
                              << " delivered a full update inside a "
                                 "wire-partial group");
        group_ptrs_.push_back(wp);
      } else {
        partial_agg_.reset(d);
        for (std::size_t j = begin; j < e; ++j) {
          const AdaFlDelivery& dl = *delivered_by_id_[j].second;
          ADAFL_CHECK_MSG(!dl.meta_only,
                          "apply_round: meta-only delivery for client "
                              << delivered_by_id_[j].first
                              << " but no wire partial for its group");
          partial_agg_.add(dl.msg, static_cast<float>(dl.num_examples));
        }
        partial_agg_.finish(group_partials_[computed]);
        group_ptrs_.push_back(&group_partials_[computed]);
        ++computed;
      }
    }
    // Element-sharded merge of the group partials — same deterministic
    // shard-order reduction as the flat loop, with partials (already
    // weighted) in place of deliveries.
    parallel_for_blocked(0, dn, [&](std::int64_t lo, std::int64_t hi) {
      const auto ulo = static_cast<std::uint32_t>(lo);
      const auto uhi = static_cast<std::uint32_t>(hi);
      for (const compress::EncodedGradient* gp : group_ptrs_) {
        const auto& idx = gp->indices;
        const auto& val = gp->values;
        auto it = std::lower_bound(idx.begin(), idx.end(), ulo);
        for (std::size_t j = static_cast<std::size_t>(it - idx.begin());
             j < idx.size() && idx[j] < uhi; ++j)
          sum_delta[idx[j]] += val[j];
      }
    });
  }

  if (weight_sum > 0.0) {
    const float inv = static_cast<float>(1.0 / weight_sum);
    parallel_for_blocked(0, dn, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i)
        sum_delta[static_cast<std::size_t>(i)] *= inv;
    });
    if (params_.server_trust_clip) {
      const double cap = delta_norm_wsum / weight_sum;
      const double norm2 = tensor::l2_norm(sum_delta);
      if (norm2 > cap && norm2 > 0.0) {
        const float s = static_cast<float>(cap / norm2);
        parallel_for_blocked(0, dn, [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i)
            sum_delta[static_cast<std::size_t>(i)] *= s;
        });
      }
    }
    parallel_for_blocked(0, dn, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i)
        global_[static_cast<std::size_t>(i)] -=
            sum_delta[static_cast<std::size_t>(i)];
    });
    g_hat_ = sum_delta;  // similarity reference for the next round's scores
    out.applied = true;
  }
  return out;
}

}  // namespace adafl::core
