// Server-side AdaFL round state machine (paper Algorithm 1 + §IV server
// aggregation), factored out of the simulator so the simulated path
// (core/adafl_sync.cpp) and the deployed path (net/transport/session.h)
// execute the exact same selection, ratio assignment, aggregation order,
// and trust-region arithmetic — same seeds and inputs give bitwise
// identical global weights on both.
//
// A round is two calls:
//   plan  = core.plan_round(scores, present, round);  // selection + ratios
//   out   = core.apply_round(plan, deliveries);       // ordered aggregation
// `present` marks which clients reported a utility score this round; in the
// simulator that is everyone, in a deployment a crashed or partitioned
// client simply drops out of the mask and the round degrades gracefully.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "compress/codec.h"
#include "core/compression_ctrl.h"
#include "core/config.h"
#include "core/partial_agg.h"
#include "core/selection.h"

namespace adafl::metrics {
class Tracer;
}

namespace adafl::core {

/// Seed salt for AdaFL client construction: every path that instantiates
/// clients for an AdaFL run (simulator, flclient, tests) must derive client
/// seeds from `run_seed ^ kAdaFlClientSeedSalt` so deployed clients train
/// bitwise identically to their simulated twins.
constexpr std::uint64_t kAdaFlClientSeedSalt = 0xADAF1ULL;

/// Aggregate statistics specific to AdaFL (used by Tables I/II columns).
struct AdaFlStats {
  std::int64_t selected_updates = 0;  ///< compressed uploads applied
  std::int64_t skipped_clients = 0;   ///< train-but-no-upload occurrences
  double min_ratio_used = 0.0;        ///< smallest compression ratio applied
  double max_ratio_used = 0.0;        ///< largest compression ratio applied
  double mean_selected_per_round = 0.0;
};

/// Output of the selection phase for one round.
struct AdaFlRoundPlan {
  int round = 0;
  bool warmup = false;
  SelectionResult sel;         ///< selected client ids, aggregation order
  std::vector<double> ratios;  ///< compression ratio per selected client
};

/// One client's delivered update (already decoded from the wire).
struct AdaFlDelivery {
  compress::EncodedGradient msg;  ///< kTopK sparse message
  std::int64_t num_examples = 0;  ///< FedAvg weight
  float mean_loss = 0.0f;
  /// L2 norm of the client's RAW (uncompressed) delta — the trust-region
  /// input. Clients report it with their update; the simulator computes it
  /// directly.
  double raw_delta_norm = 0.0;
  /// Hierarchical deployments: the client's coordinates travelled inside a
  /// relay's pre-summed UPDATE-AGG partial, so only the per-client metadata
  /// above is populated (msg carries wire_bytes for the trace but no
  /// indices/values). Requires agg_group > 0 and a wire partial covering
  /// the client's group.
  bool meta_only = false;
};

/// Result of applying one round.
struct AdaFlRoundOutcome {
  int delivered = 0;       ///< updates aggregated
  double loss_sum = 0.0;   ///< sum of delivered clients' mean losses
  bool applied = false;    ///< false when nothing was delivered
};

class AdaFlServerCore {
 public:
  /// `initial_global` is the factory-initialized model (round 0 weights).
  AdaFlServerCore(AdaFlParams params, std::vector<float> initial_global);

  /// Runs Algorithm 1 over the clients with present[i] == true.
  /// `scores[i]` must be a valid utility score in [0,1] wherever present[i]
  /// is set (other entries are ignored). Updates the selection/ratio stats.
  AdaFlRoundPlan plan_round(const std::vector<double>& scores,
                            const std::vector<bool>& present, int round);

  /// Aggregates the deliveries of `plan`'s selected clients (keyed by
  /// client id; missing ids were lost in transit) in selection order, then
  /// applies the trust-clipped FedAvg step to the global model.
  AdaFlRoundOutcome apply_round(const AdaFlRoundPlan& plan,
                                const std::map<int, AdaFlDelivery>& deliveries);

  /// apply_round with the deliveries behind a lookup: `find(id)` returns the
  /// client's delivery or nullptr if it was lost in transit. Lets callers
  /// keep deliveries in reused per-client slots instead of building a map
  /// every round; aggregation order and arithmetic are identical.
  AdaFlRoundOutcome apply_round(
      const AdaFlRoundPlan& plan,
      const std::function<const AdaFlDelivery*(int)>& find);

  /// Hierarchical variant: `wire_partial(base)` returns the relay-computed
  /// partial covering client-id group [base, base+agg_group), or nullptr to
  /// have the group's partial computed locally from the full deliveries.
  /// Requires params().agg_group > 0 when any wire partial is supplied; a
  /// group served by a wire partial must contain only meta-only deliveries
  /// and vice versa (CheckError otherwise).
  AdaFlRoundOutcome apply_round(
      const AdaFlRoundPlan& plan,
      const std::function<const AdaFlDelivery*(int)>& find,
      const std::function<const compress::EncodedGradient*(int)>&
          wire_partial);

  /// Complete serializable server-side round state for crash recovery.
  /// params/controller are pure functions of the config and are rebuilt from
  /// it, so restoring a State resumes plan/apply bitwise.
  struct State {
    std::vector<float> global;
    std::vector<float> g_hat;
    AdaFlStats stats;
    std::int64_t selected_sum = 0;
    int rounds_planned = 0;
  };
  State state() const {
    return {global_, g_hat_, stats_, selected_sum_, rounds_planned_};
  }
  /// Restores a state() snapshot. The dimensions must match this core's.
  void restore(State s);

  /// Attaches a structured tracer. Both the simulated and the deployed
  /// caller hand their tracer to the core, which is what makes the
  /// selection/ratio/delivery events of the two paths identical by
  /// construction: they are emitted from the same code in the same order
  /// (selection order, not arrival order). nullptr detaches.
  void set_tracer(metrics::Tracer* tracer) { tracer_ = tracer; }

  const std::vector<float>& global() const { return global_; }
  /// g_hat: the last aggregated update, the similarity reference for
  /// utility scoring (zeros until the first applied round).
  const std::vector<float>& g_hat() const { return g_hat_; }
  const AdaFlParams& params() const { return params_; }
  const CompressionController& controller() const { return controller_; }
  const AdaFlStats& stats() const { return stats_; }

 private:
  AdaFlParams params_;
  CompressionController controller_;
  std::vector<float> global_;
  std::vector<float> g_hat_;
  AdaFlStats stats_;
  std::int64_t selected_sum_ = 0;
  int rounds_planned_ = 0;
  std::vector<float> sum_delta_;  ///< per-round aggregation buffer, reused
  /// Deliveries of the current round in selection order; reused across
  /// rounds so the sharded aggregation allocates nothing in steady state.
  std::vector<const AdaFlDelivery*> delivered_ptrs_;
  /// Grouped-association (agg_group > 0) working state, reused per round.
  std::vector<std::pair<int, const AdaFlDelivery*>> delivered_by_id_;
  PartialAggregator partial_agg_;
  std::vector<compress::EncodedGradient> group_partials_;
  std::vector<const compress::EncodedGradient*> group_ptrs_;
  metrics::Tracer* tracer_ = nullptr;
};

}  // namespace adafl::core
