#include "core/adafl_sync.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/selection.h"
#include "core/server_checkpoint.h"
#include "metrics/profile.h"
#include "metrics/trace.h"

namespace adafl::core {

namespace {
constexpr std::int64_t kMsgHeaderBytes = 8;
constexpr double kServerOverheadSeconds = 0.002;
}  // namespace

AdaFlSyncTrainer::AdaFlSyncTrainer(AdaFlSyncConfig cfg,
                                   nn::ModelFactory factory,
                                   const data::Dataset* train,
                                   data::Partition parts,
                                   const data::Dataset* test,
                                   std::vector<fl::DeviceProfile> devices)
    : cfg_(std::move(cfg)),
      factory_(std::move(factory)),
      test_(test),
      clients_(fl::make_clients(factory_, train, parts, cfg_.client, devices,
                                cfg_.seed ^ kAdaFlClientSeedSalt)),
      eval_model_(factory_()),
      rng_(cfg_.seed),
      core_(cfg_.params, eval_model_.get_flat()) {
  ADAFL_CHECK_MSG(test_ != nullptr, "AdaFlSyncTrainer: null test set");
  ADAFL_CHECK_MSG(cfg_.rounds > 0, "AdaFlSyncTrainer: rounds must be positive");
  ADAFL_CHECK_MSG(
      cfg_.links.empty() || cfg_.links.size() == clients_.size(),
      "AdaFlSyncTrainer: need 0 or " << clients_.size() << " link configs");
  tensor::Rng link_rng = rng_.fork(0x11F7);
  for (std::size_t i = 0; i < cfg_.links.size(); ++i)
    links_.emplace_back(cfg_.links[i], link_rng.fork(i + 1));
  compressors_.reserve(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i)
    compressors_.emplace_back(
        static_cast<std::int64_t>(core_.global().size()), cfg_.params.dgc);
}

fl::TrainLog AdaFlSyncTrainer::run() {
  const std::int64_t d = static_cast<std::int64_t>(core_.global().size());
  const std::int64_t dense_bytes = kMsgHeaderBytes + 4 * d;
  const int n = static_cast<int>(clients_.size());

  fl::TrainLog log;
  log.dense_update_bytes = dense_bytes;

  double clock = 0.0;

  metrics::Tracer* const tracer = cfg_.tracer;
  const bool traced = tracer != nullptr && tracer->enabled();
  core_.set_tracer(traced ? tracer : nullptr);

  // --- Crash recovery: durable checkpoint / resume / early stop.
  const bool ckpt = !cfg_.checkpoint_path.empty();
  if (ckpt) {
    ADAFL_CHECK_MSG(cfg_.checkpoint_every > 0,
                    "AdaFlSyncTrainer: checkpoint_every must be positive");
  }

  auto save = [&](int next_round) {
    const AdaFlServerCore::State st = core_.state();
    ServerCheckpoint ck;
    ck.producer = "adafl-sync";
    ck.next_round = static_cast<std::uint32_t>(next_round);
    ck.total_rounds = static_cast<std::uint32_t>(cfg_.rounds);
    ck.seed = cfg_.seed;
    ck.clock = clock;
    ck.global = st.global;
    ServerCheckpoint::AdaFlCoreState a;
    a.g_hat = st.g_hat;
    a.selected_updates = st.stats.selected_updates;
    a.skipped_clients = st.stats.skipped_clients;
    a.min_ratio_used = st.stats.min_ratio_used;
    a.max_ratio_used = st.stats.max_ratio_used;
    a.mean_selected_per_round = st.stats.mean_selected_per_round;
    a.selected_sum = st.selected_sum;
    a.rounds_planned = st.rounds_planned;
    ck.adafl = std::move(a);
    ck.server_rng = rng_.state();
    for (const auto& l : links_) ck.link_rngs.push_back(l.rng_state());
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      fl::FlClient::PersistentState ps = clients_[i].persistent_state();
      compress::DgcCompressor::State ds = compressors_[i].state();
      ServerCheckpoint::ClientState c;
      c.loader_rng = ps.loader.rng;
      c.loader_cursor = ps.loader.cursor;
      c.loader_indices = std::move(ps.loader.indices);
      c.dgc_u = std::move(ds.u);
      c.dgc_v = std::move(ds.v);
      c.c_local = std::move(ps.c_local);
      ck.clients.push_back(std::move(c));
    }
    save_server_checkpoint(cfg_.checkpoint_path, ck);
  };

  int start_round = 1;
  if (cfg_.resume) {
    ADAFL_CHECK_MSG(ckpt, "AdaFlSyncTrainer: resume requires checkpoint_path");
    ServerCheckpoint ck = load_server_checkpoint(cfg_.checkpoint_path);
    auto reject = [this](const std::string& why) {
      throw std::runtime_error("server checkpoint " + cfg_.checkpoint_path +
                               ": " + why +
                               "; delete the checkpoint or rerun without "
                               "resume");
    };
    if (ck.producer != "adafl-sync")
      reject("written by '" + ck.producer + "', expected 'adafl-sync'");
    if (ck.seed != cfg_.seed) reject("seed mismatch");
    if (ck.total_rounds != static_cast<std::uint32_t>(cfg_.rounds))
      reject("round count mismatch");
    if (ck.next_round > ck.total_rounds)
      reject("run already complete (all " + std::to_string(ck.total_rounds) +
             " rounds done); nothing to resume");
    if (ck.global.size() != core_.global().size())
      reject("model dimension mismatch");
    if (!ck.adafl) reject("missing AdaFL server state");
    if (ck.clients.size() != clients_.size()) reject("client count mismatch");
    if (ck.link_rngs.size() != links_.size()) reject("link count mismatch");
    if (!ck.server_rng) reject("missing server RNG state");
    try {
      AdaFlServerCore::State st;
      st.global = std::move(ck.global);
      st.g_hat = std::move(ck.adafl->g_hat);
      st.stats.selected_updates = ck.adafl->selected_updates;
      st.stats.skipped_clients = ck.adafl->skipped_clients;
      st.stats.min_ratio_used = ck.adafl->min_ratio_used;
      st.stats.max_ratio_used = ck.adafl->max_ratio_used;
      st.stats.mean_selected_per_round = ck.adafl->mean_selected_per_round;
      st.selected_sum = ck.adafl->selected_sum;
      st.rounds_planned = ck.adafl->rounds_planned;
      core_.restore(std::move(st));
      rng_.set_state(*ck.server_rng);
      for (std::size_t i = 0; i < links_.size(); ++i)
        links_[i].set_rng_state(ck.link_rngs[i]);
      for (std::size_t i = 0; i < clients_.size(); ++i) {
        fl::FlClient::PersistentState ps;
        ps.loader.rng = ck.clients[i].loader_rng;
        ps.loader.cursor = ck.clients[i].loader_cursor;
        ps.loader.indices = std::move(ck.clients[i].loader_indices);
        ps.c_local = std::move(ck.clients[i].c_local);
        clients_[i].set_persistent_state(std::move(ps));
        compressors_[i].set_state({std::move(ck.clients[i].dgc_u),
                                   std::move(ck.clients[i].dgc_v)});
      }
    } catch (const CheckError& e) {
      reject(e.what());
    }
    clock = ck.clock;
    start_round = static_cast<int>(ck.next_round);
    log.ledger.record_recovery();
    if (traced) {
      tracer->set_start_round(start_round);
      tracer->record(metrics::ev_resume(start_round, clock));
    }
  }

  for (int round = start_round; round <= cfg_.rounds; ++round) {
    if (cfg_.stop && cfg_.stop->load(std::memory_order_acquire)) {
      // Round boundaries are the commit points: the interrupted round has
      // not touched any state yet, so it simply replays after resume.
      if (traced) tracer->flush();  // durable before the checkpoint exists
      if (ckpt) save(round);
      log.interrupted = true;
      break;
    }
    if (traced) tracer->record(metrics::ev_round_start(round, clock));
    // --- Every client downloads the fresh global model and trains; it also
    // derives g_hat locally from consecutive global models, so scoring costs
    // no extra traffic. Results land in reused per-client slots.
    results_.resize(static_cast<std::size_t>(n));
    down_plus_compute_.assign(static_cast<std::size_t>(n), 0.0);
    {
      metrics::PhaseProfiler::Scope prof("client-train");
      for (int id = 0; id < n; ++id) {
        double down_t = 0.0;
        if (!links_.empty()) {
          auto tr =
              links_[static_cast<std::size_t>(id)].download(dense_bytes, clock);
          down_t = tr.duration;
        }
        log.ledger.record_download(id, dense_bytes);
        auto& res = results_[static_cast<std::size_t>(id)];
        clients_[static_cast<std::size_t>(id)].train_from_into(core_.global(),
                                                               res);
        down_plus_compute_[static_cast<std::size_t>(id)] =
            down_t + res.compute_seconds;
      }
    }

    // --- Utility Score Computation (Eq. 6).
    scores_.assign(static_cast<std::size_t>(n), 1.0);
    {
      metrics::PhaseProfiler::Scope prof("score");
      for (int id = 0; id < n; ++id) {
        double up_bw = cfg_.params.utility.bw_ref;
        double down_bw = cfg_.params.utility.bw_ref;
        if (!links_.empty()) {
          up_bw = links_[static_cast<std::size_t>(id)].up_bandwidth(clock);
          down_bw = links_[static_cast<std::size_t>(id)].down_bandwidth(clock);
        }
        scores_[static_cast<std::size_t>(id)] = utility_score(
            cfg_.params.utility, results_[static_cast<std::size_t>(id)].delta,
            core_.g_hat(), up_bw, down_bw);
      }
    }

    // --- Client Filtering / Ranking / Selection (Algorithm 1) + adaptive
    // ratio assignment, in the shared server core. In the simulator every
    // client reports its score.
    const std::vector<bool> present(static_cast<std::size_t>(n), true);
    const AdaFlRoundPlan plan = core_.plan_round(scores_, present, round);

    // --- Adaptive compression + upload for selected clients. Each client
    // has a persistent delivery slot; delivered_ marks which slots hold this
    // round's update.
    delivery_slots_.resize(static_cast<std::size_t>(n));
    delivered_.assign(static_cast<std::size_t>(n), 0);
    double round_time = 0.0;
    is_selected_.assign(static_cast<std::size_t>(n), 0);
    {
      metrics::PhaseProfiler::Scope prof("compress-upload");
      for (std::size_t j = 0; j < plan.sel.selected.size(); ++j) {
        const int id = plan.sel.selected[j];
        is_selected_[static_cast<std::size_t>(id)] = 1;

        auto& res = results_[static_cast<std::size_t>(id)];
        AdaFlDelivery& dl = delivery_slots_[static_cast<std::size_t>(id)];
        compressors_[static_cast<std::size_t>(id)].compress_into(
            res.delta, plan.ratios[j], dl.msg);
        double up_t = 0.0;
        bool ok = true;
        if (!links_.empty()) {
          auto tr = links_[static_cast<std::size_t>(id)].upload(
              dl.msg.wire_bytes, clock);
          up_t = tr.duration;
          ok = tr.delivered;
        }
        log.ledger.record_upload(id, dl.msg.wire_bytes, ok);
        if (ok) {
          dl.num_examples = res.num_examples;
          dl.mean_loss = res.mean_loss;
          dl.raw_delta_norm = tensor::l2_norm(res.delta);
          delivered_[static_cast<std::size_t>(id)] = 1;
        }
        round_time = std::max(
            round_time, down_plus_compute_[static_cast<std::size_t>(id)] + up_t);
      }

      // --- Skipped clients transmit nothing; their gradient mass accumulates
      // locally in DGC state (error feedback) if configured.
      for (int id = 0; id < n; ++id) {
        if (is_selected_[static_cast<std::size_t>(id)]) continue;
        if (cfg_.params.accumulate_unselected)
          compressors_[static_cast<std::size_t>(id)].accumulate(
              results_[static_cast<std::size_t>(id)].delta);
        round_time = std::max(round_time,
                              down_plus_compute_[static_cast<std::size_t>(id)]);
      }
    }

    // --- Server aggregation (FedAvg weighting + trust region).
    AdaFlRoundOutcome out;
    {
      metrics::PhaseProfiler::Scope prof("aggregate");
      out = core_.apply_round(plan, [this](int id) -> const AdaFlDelivery* {
        return delivered_[static_cast<std::size_t>(id)]
                   ? &delivery_slots_[static_cast<std::size_t>(id)]
                   : nullptr;
      });
    }

    clock += round_time + kServerOverheadSeconds;

    const double round_mean_loss =
        out.delivered > 0 ? out.loss_sum / static_cast<double>(out.delivered)
                          : 0.0;
    const bool evaled = round % cfg_.eval_every == 0 || round == cfg_.rounds;
    if (evaled) {
      metrics::PhaseProfiler::Scope prof("eval");
      eval_model_.set_flat(core_.global());
      fl::RoundRecord rec;
      rec.round = round;
      rec.time = clock;
      if (eval_batch_.size() == 0) eval_batch_ = test_->all();
      rec.test_accuracy = eval_model_.accuracy(eval_batch_);
      rec.mean_train_loss = round_mean_loss;
      rec.participants = out.delivered;
      log.records.push_back(rec);
    }

    if (traced) {
      tracer->record(metrics::ev_round_end(
          round, out.delivered, round_mean_loss, evaled,
          evaled ? log.records.back().test_accuracy : 0.0, clock));
      // Round boundary = flush point; also the durability point the crash
      // stitcher relies on (the trace always covers at least as many rounds
      // as the checkpoint written right after).
      tracer->flush();
    }

    if (ckpt && (round % cfg_.checkpoint_every == 0 || round == cfg_.rounds)) {
      save(round + 1);
      if (traced)
        tracer->record(
            metrics::ev_checkpoint(round, cfg_.checkpoint_path, clock));
    }
    if (cfg_.on_round_end) cfg_.on_round_end(round);
  }

  if (traced) tracer->flush();
  core_.set_tracer(nullptr);
  log.applied_updates = core_.stats().selected_updates;
  log.total_time = clock;
  return log;
}

}  // namespace adafl::core
