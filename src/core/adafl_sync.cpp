#include "core/adafl_sync.h"

#include <algorithm>
#include <cmath>

#include "core/selection.h"

namespace adafl::core {

namespace {
constexpr std::int64_t kMsgHeaderBytes = 8;
constexpr double kServerOverheadSeconds = 0.002;
}  // namespace

AdaFlSyncTrainer::AdaFlSyncTrainer(AdaFlSyncConfig cfg,
                                   nn::ModelFactory factory,
                                   const data::Dataset* train,
                                   data::Partition parts,
                                   const data::Dataset* test,
                                   std::vector<fl::DeviceProfile> devices)
    : cfg_(std::move(cfg)),
      factory_(std::move(factory)),
      test_(test),
      clients_(fl::make_clients(factory_, train, parts, cfg_.client, devices,
                                cfg_.seed ^ kAdaFlClientSeedSalt)),
      eval_model_(factory_()),
      rng_(cfg_.seed),
      core_(cfg_.params, eval_model_.get_flat()) {
  ADAFL_CHECK_MSG(test_ != nullptr, "AdaFlSyncTrainer: null test set");
  ADAFL_CHECK_MSG(cfg_.rounds > 0, "AdaFlSyncTrainer: rounds must be positive");
  ADAFL_CHECK_MSG(
      cfg_.links.empty() || cfg_.links.size() == clients_.size(),
      "AdaFlSyncTrainer: need 0 or " << clients_.size() << " link configs");
  tensor::Rng link_rng = rng_.fork(0x11F7);
  for (std::size_t i = 0; i < cfg_.links.size(); ++i)
    links_.emplace_back(cfg_.links[i], link_rng.fork(i + 1));
  compressors_.reserve(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i)
    compressors_.emplace_back(
        static_cast<std::int64_t>(core_.global().size()), cfg_.params.dgc);
}

fl::TrainLog AdaFlSyncTrainer::run() {
  const std::int64_t d = static_cast<std::int64_t>(core_.global().size());
  const std::int64_t dense_bytes = kMsgHeaderBytes + 4 * d;
  const int n = static_cast<int>(clients_.size());

  fl::TrainLog log;
  log.dense_update_bytes = dense_bytes;

  double clock = 0.0;

  for (int round = 1; round <= cfg_.rounds; ++round) {
    // --- Every client downloads the fresh global model and trains; it also
    // derives g_hat locally from consecutive global models, so scoring costs
    // no extra traffic.
    std::vector<fl::FlClient::LocalResult> results;
    results.reserve(static_cast<std::size_t>(n));
    std::vector<double> down_plus_compute(static_cast<std::size_t>(n), 0.0);
    for (int id = 0; id < n; ++id) {
      double down_t = 0.0;
      if (!links_.empty()) {
        auto tr =
            links_[static_cast<std::size_t>(id)].download(dense_bytes, clock);
        down_t = tr.duration;
      }
      log.ledger.record_download(id, dense_bytes);
      auto res =
          clients_[static_cast<std::size_t>(id)].train_from(core_.global());
      down_plus_compute[static_cast<std::size_t>(id)] =
          down_t + res.compute_seconds;
      results.push_back(std::move(res));
    }

    // --- Utility Score Computation (Eq. 6).
    std::vector<double> scores(static_cast<std::size_t>(n), 1.0);
    for (int id = 0; id < n; ++id) {
      double up_bw = cfg_.params.utility.bw_ref;
      double down_bw = cfg_.params.utility.bw_ref;
      if (!links_.empty()) {
        up_bw = links_[static_cast<std::size_t>(id)].up_bandwidth(clock);
        down_bw = links_[static_cast<std::size_t>(id)].down_bandwidth(clock);
      }
      scores[static_cast<std::size_t>(id)] = utility_score(
          cfg_.params.utility, results[static_cast<std::size_t>(id)].delta,
          core_.g_hat(), up_bw, down_bw);
    }

    // --- Client Filtering / Ranking / Selection (Algorithm 1) + adaptive
    // ratio assignment, in the shared server core. In the simulator every
    // client reports its score.
    const std::vector<bool> present(static_cast<std::size_t>(n), true);
    const AdaFlRoundPlan plan = core_.plan_round(scores, present, round);

    // --- Adaptive compression + upload for selected clients.
    std::map<int, AdaFlDelivery> deliveries;
    double round_time = 0.0;
    std::vector<bool> is_selected(static_cast<std::size_t>(n), false);
    for (std::size_t j = 0; j < plan.sel.selected.size(); ++j) {
      const int id = plan.sel.selected[j];
      is_selected[static_cast<std::size_t>(id)] = true;

      auto& res = results[static_cast<std::size_t>(id)];
      compress::EncodedGradient msg =
          compressors_[static_cast<std::size_t>(id)].compress(res.delta,
                                                              plan.ratios[j]);
      double up_t = 0.0;
      bool ok = true;
      if (!links_.empty()) {
        auto tr = links_[static_cast<std::size_t>(id)].upload(msg.wire_bytes,
                                                              clock);
        up_t = tr.duration;
        ok = tr.delivered;
      }
      log.ledger.record_upload(id, msg.wire_bytes, ok);
      if (ok) {
        AdaFlDelivery dl;
        dl.msg = std::move(msg);
        dl.num_examples = res.num_examples;
        dl.mean_loss = res.mean_loss;
        dl.raw_delta_norm = tensor::l2_norm(res.delta);
        deliveries.emplace(id, std::move(dl));
      }
      round_time = std::max(
          round_time, down_plus_compute[static_cast<std::size_t>(id)] + up_t);
    }

    // --- Skipped clients transmit nothing; their gradient mass accumulates
    // locally in DGC state (error feedback) if configured.
    for (int id = 0; id < n; ++id) {
      if (is_selected[static_cast<std::size_t>(id)]) continue;
      if (cfg_.params.accumulate_unselected)
        compressors_[static_cast<std::size_t>(id)].accumulate(
            results[static_cast<std::size_t>(id)].delta);
      round_time = std::max(round_time,
                            down_plus_compute[static_cast<std::size_t>(id)]);
    }

    // --- Server aggregation (FedAvg weighting + trust region).
    const AdaFlRoundOutcome out = core_.apply_round(plan, deliveries);

    clock += round_time + kServerOverheadSeconds;

    if (round % cfg_.eval_every == 0 || round == cfg_.rounds) {
      eval_model_.set_flat(core_.global());
      fl::RoundRecord rec;
      rec.round = round;
      rec.time = clock;
      rec.test_accuracy = eval_model_.accuracy(test_->all());
      rec.mean_train_loss =
          out.delivered > 0 ? out.loss_sum / static_cast<double>(out.delivered)
                            : 0.0;
      rec.participants = out.delivered;
      log.records.push_back(rec);
    }
  }

  log.applied_updates = core_.stats().selected_updates;
  log.total_time = clock;
  return log;
}

}  // namespace adafl::core
