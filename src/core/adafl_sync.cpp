#include "core/adafl_sync.h"

#include <algorithm>
#include <cmath>

#include "core/selection.h"

namespace adafl::core {

namespace {
constexpr std::int64_t kMsgHeaderBytes = 8;
constexpr double kServerOverheadSeconds = 0.002;
}  // namespace

AdaFlSyncTrainer::AdaFlSyncTrainer(AdaFlSyncConfig cfg,
                                   nn::ModelFactory factory,
                                   const data::Dataset* train,
                                   data::Partition parts,
                                   const data::Dataset* test,
                                   std::vector<fl::DeviceProfile> devices)
    : cfg_(std::move(cfg)),
      factory_(std::move(factory)),
      test_(test),
      clients_(fl::make_clients(factory_, train, parts, cfg_.client, devices,
                                cfg_.seed ^ 0xADAF1ULL)),
      controller_(cfg_.params.compression),
      eval_model_(factory_()),
      rng_(cfg_.seed) {
  ADAFL_CHECK_MSG(test_ != nullptr, "AdaFlSyncTrainer: null test set");
  ADAFL_CHECK_MSG(cfg_.rounds > 0, "AdaFlSyncTrainer: rounds must be positive");
  ADAFL_CHECK_MSG(
      cfg_.links.empty() || cfg_.links.size() == clients_.size(),
      "AdaFlSyncTrainer: need 0 or " << clients_.size() << " link configs");
  global_ = eval_model_.get_flat();
  global_gradient_.assign(global_.size(), 0.0f);
  tensor::Rng link_rng = rng_.fork(0x11F7);
  for (std::size_t i = 0; i < cfg_.links.size(); ++i)
    links_.emplace_back(cfg_.links[i], link_rng.fork(i + 1));
  compressors_.reserve(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i)
    compressors_.emplace_back(
        static_cast<std::int64_t>(global_.size()), cfg_.params.dgc);
  stats_.min_ratio_used = cfg_.params.compression.ratio_max;
}

fl::TrainLog AdaFlSyncTrainer::run() {
  const std::int64_t d = static_cast<std::int64_t>(global_.size());
  const std::int64_t dense_bytes = kMsgHeaderBytes + 4 * d;
  const int n = static_cast<int>(clients_.size());

  fl::TrainLog log;
  log.dense_update_bytes = dense_bytes;

  double clock = 0.0;
  std::int64_t selected_sum = 0;

  for (int round = 1; round <= cfg_.rounds; ++round) {
    const bool warmup = controller_.in_warmup(round);

    // --- Every client downloads the fresh global model and trains; it also
    // derives g_hat locally from consecutive global models, so scoring costs
    // no extra traffic.
    std::vector<fl::FlClient::LocalResult> results;
    results.reserve(static_cast<std::size_t>(n));
    std::vector<double> down_plus_compute(static_cast<std::size_t>(n), 0.0);
    for (int id = 0; id < n; ++id) {
      double down_t = 0.0;
      if (!links_.empty()) {
        auto tr =
            links_[static_cast<std::size_t>(id)].download(dense_bytes, clock);
        down_t = tr.duration;
      }
      log.ledger.record_download(id, dense_bytes);
      auto res = clients_[static_cast<std::size_t>(id)].train_from(global_);
      down_plus_compute[static_cast<std::size_t>(id)] =
          down_t + res.compute_seconds;
      results.push_back(std::move(res));
    }

    // --- Utility Score Computation (Eq. 6).
    std::vector<double> scores(static_cast<std::size_t>(n), 1.0);
    for (int id = 0; id < n; ++id) {
      double up_bw = cfg_.params.utility.bw_ref;
      double down_bw = cfg_.params.utility.bw_ref;
      if (!links_.empty()) {
        up_bw = links_[static_cast<std::size_t>(id)].up_bandwidth(clock);
        down_bw = links_[static_cast<std::size_t>(id)].down_bandwidth(clock);
      }
      scores[static_cast<std::size_t>(id)] = utility_score(
          cfg_.params.utility, results[static_cast<std::size_t>(id)].delta,
          global_gradient_, up_bw, down_bw);
    }

    // --- Client Filtering / Ranking / Selection (Algorithm 1). During
    // warm-up every client participates (paper: "equal participation").
    SelectionResult sel;
    if (warmup) {
      for (int id = 0; id < n; ++id) sel.selected.push_back(id);
    } else {
      sel = select_clients(scores, cfg_.params.max_selected, cfg_.params.tau);
    }
    selected_sum += static_cast<std::int64_t>(sel.selected.size());

    // --- Adaptive compression + upload for selected clients.
    const std::vector<double> norm = normalize_selected(scores, sel.selected);
    // Sparse error-feedback aggregation: sum the weighted sparse messages
    // and divide by the total delivered weight (the unbiased FedAvg
    // estimate — unsent mass stays in each client's DGC residual and is
    // flushed in later rounds).
    std::vector<float> sum_delta(static_cast<std::size_t>(d), 0.0f);
    double weight_sum = 0.0;
    double delta_norm_wsum = 0.0;  // for the server trust region
    double loss_sum = 0.0;
    int delivered = 0;
    double round_time = 0.0;

    std::vector<bool> is_selected(static_cast<std::size_t>(n), false);
    for (std::size_t j = 0; j < sel.selected.size(); ++j) {
      const int id = sel.selected[j];
      is_selected[static_cast<std::size_t>(id)] = true;
      const double ratio = controller_.ratio_for(norm[j], round);
      stats_.min_ratio_used = std::min(stats_.min_ratio_used, ratio);
      stats_.max_ratio_used = std::max(stats_.max_ratio_used, ratio);

      auto& res = results[static_cast<std::size_t>(id)];
      compress::EncodedGradient msg =
          compressors_[static_cast<std::size_t>(id)].compress(res.delta,
                                                              ratio);
      double up_t = 0.0;
      bool ok = true;
      if (!links_.empty()) {
        auto tr = links_[static_cast<std::size_t>(id)].upload(msg.wire_bytes,
                                                              clock);
        up_t = tr.duration;
        ok = tr.delivered;
      }
      log.ledger.record_upload(id, msg.wire_bytes, ok);
      if (ok) {
        const float w = static_cast<float>(res.num_examples);
        ADAFL_CHECK(msg.kind == compress::CodecKind::kTopK);
        for (std::size_t e = 0; e < msg.indices.size(); ++e)
          sum_delta[msg.indices[e]] += w * msg.values[e];
        weight_sum += w;
        delta_norm_wsum += static_cast<double>(w) *
                           tensor::l2_norm(res.delta);
        loss_sum += res.mean_loss;
        ++delivered;
        ++stats_.selected_updates;
      }
      round_time = std::max(
          round_time, down_plus_compute[static_cast<std::size_t>(id)] + up_t);
    }

    // --- Skipped clients transmit nothing; their gradient mass accumulates
    // locally in DGC state (error feedback) if configured.
    for (int id = 0; id < n; ++id) {
      if (is_selected[static_cast<std::size_t>(id)]) continue;
      ++stats_.skipped_clients;
      if (cfg_.params.accumulate_unselected)
        compressors_[static_cast<std::size_t>(id)].accumulate(
            results[static_cast<std::size_t>(id)].delta);
      round_time = std::max(round_time,
                            down_plus_compute[static_cast<std::size_t>(id)]);
    }

    // --- Server aggregation (FedAvg weighting).
    if (weight_sum > 0.0) {
      const float inv = static_cast<float>(1.0 / weight_sum);
      for (auto& v : sum_delta) v *= inv;
      if (cfg_.params.server_trust_clip) {
        const double cap = delta_norm_wsum / weight_sum;
        const double norm2 = tensor::l2_norm(sum_delta);
        if (norm2 > cap && norm2 > 0.0) {
          const float s = static_cast<float>(cap / norm2);
          for (auto& v : sum_delta) v *= s;
        }
      }
      for (std::size_t i = 0; i < global_.size(); ++i)
        global_[i] -= sum_delta[i];
      global_gradient_ = sum_delta;  // g_hat for the next round's scoring
    }

    clock += round_time + kServerOverheadSeconds;

    if (round % cfg_.eval_every == 0 || round == cfg_.rounds) {
      eval_model_.set_flat(global_);
      fl::RoundRecord rec;
      rec.round = round;
      rec.time = clock;
      rec.test_accuracy = eval_model_.accuracy(test_->all());
      rec.mean_train_loss =
          delivered > 0 ? loss_sum / static_cast<double>(delivered) : 0.0;
      rec.participants = delivered;
      log.records.push_back(rec);
    }
  }

  log.applied_updates = stats_.selected_updates;
  stats_.mean_selected_per_round =
      static_cast<double>(selected_sum) / static_cast<double>(cfg_.rounds);
  log.total_time = clock;
  return log;
}

}  // namespace adafl::core
