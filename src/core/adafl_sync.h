// AdaFL synchronous trainer (paper §IV, Fig. 2): utility-scored adaptive
// node selection (Algorithm 1) + per-client adaptive DGC compression, on top
// of FedAvg-style weighted aggregation.
//
// The server-side round logic (selection, ratio assignment, aggregation)
// lives in core::AdaFlServerCore, shared with the deployed TCP path
// (net/transport/session.h); this class adds the simulated network, local
// training, and evaluation around it.
#pragma once

#include <atomic>
#include <functional>
#include <string>

#include "compress/dgc.h"
#include "core/adafl_server.h"
#include "core/config.h"
#include "fl/sync_trainer.h"

namespace adafl::core {

/// Configuration of one AdaFL synchronous run.
struct AdaFlSyncConfig {
  AdaFlParams params;
  int rounds = 40;
  fl::ClientTrainConfig client;
  std::vector<net::LinkConfig> links;  ///< empty = ideal network
  int eval_every = 1;
  std::uint64_t seed = 1;

  // --- Crash recovery (core/server_checkpoint.h). -------------------------
  /// When non-empty, write a durable checkpoint here every
  /// `checkpoint_every` completed rounds (and when `stop` fires).
  std::string checkpoint_path;
  int checkpoint_every = 1;
  /// Resume from checkpoint_path instead of starting at round 1. A resumed
  /// run is bitwise identical to one that was never interrupted.
  bool resume = false;
  /// Optional early-stop flag, polled at round boundaries (signal-safe).
  const std::atomic<bool>* stop = nullptr;
  /// Test hook: runs after each round (and its cadence checkpoint, if any).
  std::function<void(int round)> on_round_end;

  /// Optional structured tracer (metrics/trace.h). The trainer forwards it
  /// to the shared server core and emits round_start/round_end/checkpoint/
  /// resume events; `t` fields carry the *simulated* clock, so same-seed
  /// traces are byte-identical. Not owned; must outlive run().
  metrics::Tracer* tracer = nullptr;
};

/// Runs AdaFL in the synchronous (top-k topology) setting.
class AdaFlSyncTrainer {
 public:
  AdaFlSyncTrainer(AdaFlSyncConfig cfg, nn::ModelFactory factory,
                   const data::Dataset* train, data::Partition parts,
                   const data::Dataset* test,
                   std::vector<fl::DeviceProfile> devices = {});

  fl::TrainLog run();

  const AdaFlStats& stats() const { return core_.stats(); }
  const std::vector<float>& global() const { return core_.global(); }

 private:
  AdaFlSyncConfig cfg_;
  nn::ModelFactory factory_;
  const data::Dataset* test_;
  std::vector<fl::FlClient> clients_;
  std::vector<net::Link> links_;
  std::vector<compress::DgcCompressor> compressors_;
  nn::Model eval_model_;
  tensor::Rng rng_;
  AdaFlServerCore core_;

  // Per-round buffers reused across rounds: local results, per-client
  // delivery slots (+ delivered flags, reset each round), and the small
  // per-round score/time vectors. Steady-state rounds reuse all of them.
  std::vector<fl::FlClient::LocalResult> results_;
  std::vector<AdaFlDelivery> delivery_slots_;
  std::vector<char> delivered_;
  std::vector<double> scores_;
  std::vector<double> down_plus_compute_;
  std::vector<char> is_selected_;
  /// Full test set, materialised once (Dataset::all() copies the images
  /// tensor; evaluating every round from this cache keeps eval allocation
  /// free after the first use).
  nn::Batch eval_batch_;
};

}  // namespace adafl::core
