// AdaFL synchronous trainer (paper §IV, Fig. 2): utility-scored adaptive
// node selection (Algorithm 1) + per-client adaptive DGC compression, on top
// of FedAvg-style weighted aggregation.
#pragma once

#include "compress/dgc.h"
#include "core/config.h"
#include "fl/sync_trainer.h"

namespace adafl::core {

/// Configuration of one AdaFL synchronous run.
struct AdaFlSyncConfig {
  AdaFlParams params;
  int rounds = 40;
  fl::ClientTrainConfig client;
  std::vector<net::LinkConfig> links;  ///< empty = ideal network
  int eval_every = 1;
  std::uint64_t seed = 1;
};

/// Aggregate statistics specific to AdaFL (used by Tables I/II columns).
struct AdaFlStats {
  std::int64_t selected_updates = 0;  ///< compressed uploads performed
  std::int64_t skipped_clients = 0;   ///< train-but-no-upload occurrences
  double min_ratio_used = 0.0;        ///< smallest compression ratio applied
  double max_ratio_used = 0.0;        ///< largest compression ratio applied
  double mean_selected_per_round = 0.0;
};

/// Runs AdaFL in the synchronous (top-k topology) setting.
class AdaFlSyncTrainer {
 public:
  AdaFlSyncTrainer(AdaFlSyncConfig cfg, nn::ModelFactory factory,
                   const data::Dataset* train, data::Partition parts,
                   const data::Dataset* test,
                   std::vector<fl::DeviceProfile> devices = {});

  fl::TrainLog run();

  const AdaFlStats& stats() const { return stats_; }
  const std::vector<float>& global() const { return global_; }

 private:
  AdaFlSyncConfig cfg_;
  nn::ModelFactory factory_;
  const data::Dataset* test_;
  std::vector<fl::FlClient> clients_;
  std::vector<net::Link> links_;
  std::vector<compress::DgcCompressor> compressors_;
  CompressionController controller_;
  std::vector<float> global_;
  std::vector<float> global_gradient_;  ///< g_hat: last aggregated update
  nn::Model eval_model_;
  tensor::Rng rng_;
  AdaFlStats stats_;
};

}  // namespace adafl::core
