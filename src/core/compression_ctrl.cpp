#include "core/compression_ctrl.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace adafl::core {

CompressionController::CompressionController(CompressionCtrlConfig cfg)
    : cfg_(cfg) {
  ADAFL_CHECK_MSG(cfg.ratio_min >= 1.0, "CompressionController: ratio_min >= 1");
  ADAFL_CHECK_MSG(cfg.ratio_max >= cfg.ratio_min,
                  "CompressionController: ratio_max >= ratio_min");
  ADAFL_CHECK_MSG(cfg.warmup_rounds >= 0,
                  "CompressionController: warmup_rounds >= 0");
  ADAFL_CHECK_MSG(cfg.shaping > 0.0, "CompressionController: shaping > 0");
}

double CompressionController::ratio_for(double normalized_score,
                                        int round) const {
  ADAFL_CHECK_MSG(normalized_score >= 0.0 && normalized_score <= 1.0,
                  "CompressionController: score " << normalized_score
                                                  << " outside [0,1]");
  ADAFL_CHECK_MSG(round >= 1, "CompressionController: rounds are 1-based");
  if (in_warmup(round)) return cfg_.ratio_min;
  const double lmin = std::log(cfg_.ratio_min);
  const double lmax = std::log(cfg_.ratio_max);
  // score 1 -> ratio_min, score 0 -> ratio_max; shaping bends mid scores
  // toward ratio_min.
  const double s = 1.0 - std::pow(1.0 - normalized_score, cfg_.shaping);
  // Clamp: exp/log round-trip can land a hair outside the bounds.
  return std::clamp(std::exp(lmax + s * (lmin - lmax)), cfg_.ratio_min,
                    cfg_.ratio_max);
}

}  // namespace adafl::core
