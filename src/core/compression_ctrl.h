// Adaptive gradient-compression controller (paper §IV): maps a client's
// utility score to a DGC compression ratio. Higher utility -> lower
// compression (more information preserved); lower utility -> aggressive
// compression. During warm-up every client gets the minimum ratio.
#pragma once

namespace adafl::core {

/// Ratio bounds; the paper reports 4x..210x (sync) and 4x..105x (async).
struct CompressionCtrlConfig {
  double ratio_min = 4.0;    ///< applied to the highest-utility client
  double ratio_max = 210.0;  ///< applied to the lowest-utility client
  int warmup_rounds = 5;     ///< rounds with ratio_min for everyone
  /// Curvature of the score->ratio mapping: effective score is
  /// 1-(1-s)^shaping, so with shaping > 1 mid-utility clients stay near
  /// ratio_min and only genuinely low-utility clients approach ratio_max
  /// (the paper's "up to 210x"). shaping = 1 is plain log-linear.
  double shaping = 3.0;
};

/// Stateless score->ratio mapping with warm-up handling.
class CompressionController {
 public:
  explicit CompressionController(CompressionCtrlConfig cfg);

  /// Compression ratio for a client whose min-max-normalized utility score
  /// is `normalized_score` in [0,1], at communication round `round`
  /// (1-based). Log-linear: ratio = exp(lerp(log rmax, log rmin, score)).
  double ratio_for(double normalized_score, int round) const;

  bool in_warmup(int round) const { return round <= cfg_.warmup_rounds; }
  const CompressionCtrlConfig& config() const { return cfg_; }

 private:
  CompressionCtrlConfig cfg_;
};

}  // namespace adafl::core
