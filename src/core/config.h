// Shared AdaFL parameters (utility scoring + selection + compression).
#pragma once

#include "compress/dgc.h"
#include "core/compression_ctrl.h"
#include "core/utility.h"

namespace adafl::core {

/// The knobs of the AdaFL framework itself, shared by the synchronous and
/// asynchronous trainers.
struct AdaFlParams {
  UtilityConfig utility;
  double tau = 0.5;         ///< Algorithm 1 utility threshold
  int max_selected = 5;     ///< Algorithm 1 K (sync top-k topology)
  CompressionCtrlConfig compression{4.0, 210.0, 5};
  /// Base DGC behaviour (ratio is overridden per client by the controller).
  /// NOTE: DGC's momentum correction was designed for per-iteration SGD
  /// gradients; AdaFL compresses whole-round weight deltas, where momentum
  /// across rounds amplifies updates by ~1/(1-m) and destabilizes the
  /// server. Default is therefore momentum 0 (pure error-feedback
  /// accumulation); the ablation bench sweeps this knob.
  compress::DgcConfig dgc{/*ratio=*/64.0, /*momentum=*/0.0f,
                          /*clip_norm=*/0.0, /*momentum_correction=*/false,
                          /*warm_up_dense=*/false};
  /// If true, clients skipped by selection keep accumulating their deltas in
  /// DGC state (error feedback); if false their updates are discarded.
  bool accumulate_unselected = true;
  /// Async freshness guard: a client skipped this many times in a row
  /// uploads anyway (at maximum compression). Prevents the degenerate case
  /// where every client gates itself below tau and the run livelocks.
  int max_consecutive_skips = 5;
  /// Server-side trust region: clip the applied aggregate's L2 norm to the
  /// (weighted mean) norm of the participants' raw deltas. Sparse top-k
  /// messages carry each client's largest accumulated coordinates with no
  /// cross-client cancellation, so the raw aggregate is biased large; the
  /// clip prevents the overshoot/oscillation this causes. Disable for the
  /// ablation bench.
  bool server_trust_clip = true;
  /// Hierarchical-aggregation group size. 0 keeps the classic flat
  /// association (deliveries summed per element in selection order). G > 0
  /// switches to grouped association: client ids are partitioned into
  /// contiguous blocks of G ([0,G), [G,2G), ...), each block's deliveries
  /// are summed into a partial in ascending-id order, and the partials are
  /// merged in ascending block order. Mid-tier relays compute exactly these
  /// per-block partials, so a tiered deployment is bitwise identical to a
  /// flat run *with the same agg_group* — but G > 0 is a different float
  /// association than G == 0, so the two are not bitwise comparable.
  int agg_group = 0;
};

}  // namespace adafl::core
