#include "core/parallel.h"

#include <atomic>
#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

namespace adafl::core {

namespace {

thread_local bool tl_in_pool = false;

int auto_threads() {
  if (const char* env = std::getenv("ADAFL_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// The process-wide pool: size_-1 worker threads draining one FIFO task
/// queue; the thread that forks a parallel region participates as the
/// size_-th lane.
class Pool {
 public:
  static Pool& instance() {
    static Pool p;
    return p;
  }

  int size() {
    std::lock_guard<std::mutex> lk(config_mu_);
    return size_;
  }

  void resize(int n) {
    std::lock_guard<std::mutex> lk(config_mu_);
    const int target = n > 0 ? n : auto_threads();
    if (target == size_) return;
    stop_workers();
    size_ = target;
    start_workers();
  }

  void enqueue(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  ~Pool() {
    std::lock_guard<std::mutex> lk(config_mu_);
    stop_workers();
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

 private:
  Pool() : size_(auto_threads()) { start_workers(); }

  void start_workers() {
    stop_ = false;
    workers_.reserve(static_cast<std::size_t>(std::max(0, size_ - 1)));
    for (int i = 0; i < size_ - 1; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
    workers_.clear();
  }

  void worker_loop() {
    tl_in_pool = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (stop_) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex config_mu_;  ///< guards size_ / worker lifetime
  int size_ = 1;

  std::mutex mu_;  ///< guards queue_ / stop_
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// One fork-join region: a fixed contiguous partition of [begin, begin+n)
/// into nchunks pieces. Threads claim chunks via an atomic cursor; the
/// partition itself never depends on which thread runs which chunk.
struct ForkJob {
  std::int64_t begin = 0;
  std::int64_t nchunks = 0;
  std::int64_t chunk = 0;  ///< base chunk length (n / nchunks)
  std::int64_t extra = 0;  ///< first `extra` chunks take one more index
  const std::function<void(std::int64_t, std::int64_t, std::int64_t)>* fn =
      nullptr;
  std::atomic<std::int64_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::int64_t done = 0;
  std::vector<std::exception_ptr> errors;

  void run_available_chunks() {
    for (;;) {
      const std::int64_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= nchunks) return;
      const std::int64_t b = begin + k * chunk + std::min(k, extra);
      const std::int64_t e = b + chunk + (k < extra ? 1 : 0);
      try {
        (*fn)(k, b, e);
      } catch (...) {
        errors[static_cast<std::size_t>(k)] = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(mu);
      if (++done == nchunks) done_cv.notify_all();
    }
  }
};

}  // namespace

int num_threads() { return Pool::instance().size(); }

void set_num_threads(int n) { Pool::instance().resize(n); }

bool in_parallel_region() { return tl_in_pool; }

void parallel_for_blocked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  parallel_for_blocked_indexed(
      begin, end,
      [&fn](std::int64_t, std::int64_t b, std::int64_t e) { fn(b, e); });
}

void parallel_for_blocked_indexed(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  const std::int64_t n = end - begin;
  Pool& pool = Pool::instance();
  const int threads = pool.size();
  // Serial paths: one lane configured, a single index, or we are already
  // inside a parallel region (nested parallelism runs flat).
  if (threads <= 1 || n <= 1 || tl_in_pool) {
    fn(0, begin, end);
    return;
  }

  auto job = std::make_shared<ForkJob>();
  job->begin = begin;
  job->nchunks = std::min<std::int64_t>(threads, n);
  job->chunk = n / job->nchunks;
  job->extra = n % job->nchunks;
  job->fn = &fn;
  job->errors.resize(static_cast<std::size_t>(job->nchunks));

  // One helper per additional lane; each drains chunks until none remain.
  // Helpers hold the job alive, so a late helper that finds no chunk left
  // exits harmlessly even after the caller returned.
  for (std::int64_t h = 0; h < job->nchunks - 1; ++h)
    pool.enqueue([job] { job->run_available_chunks(); });
  job->run_available_chunks();

  {
    std::unique_lock<std::mutex> lk(job->mu);
    job->done_cv.wait(lk, [&] { return job->done == job->nchunks; });
  }
  for (auto& err : job->errors)
    if (err) std::rethrow_exception(err);
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn) {
  parallel_for_blocked(begin, end, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) fn(i);
  });
}

std::future<void> submit_task(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> fut = task->get_future();
  Pool& pool = Pool::instance();
  // Serial pool (or a submit from inside a worker): run inline so the
  // semantics match the single-threaded schedule exactly.
  if (pool.size() <= 1 || tl_in_pool) {
    (*task)();
    return fut;
  }
  pool.enqueue([task] { (*task)(); });
  return fut;
}

}  // namespace adafl::core
