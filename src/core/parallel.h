// Deterministic parallelism substrate: a persistent thread pool with
// fork-join helpers whose results are bitwise-independent of the thread
// count.
//
// Determinism contract:
//  - parallel_for / parallel_for_blocked split [begin, end) into a fixed
//    set of contiguous chunks (static partitioning). Which thread executes
//    a chunk is scheduling-dependent, but chunk boundaries and the work
//    done per index are not, so any computation whose indices write
//    disjoint outputs produces bitwise-identical results at every thread
//    count (including 1).
//  - parallel_map collects per-index results into a pre-sized vector, so
//    there is no reduction-order nondeterminism; callers that need an
//    ordered reduction fold the vector serially afterwards.
//  - Nested calls from inside a pool worker run serially on that worker
//    (OpenMP-style), so layered parallelism (trainer -> layer -> kernel)
//    cannot deadlock and stays deterministic.
//
// Sizing: the pool is lazily constructed with ADAFL_THREADS threads (if
// set and > 0) or std::thread::hardware_concurrency() otherwise; tests and
// the CLI override it with set_num_threads(). A size of N means N-1 worker
// threads plus the calling thread, so N == 1 is the zero-overhead serial
// path.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <vector>

namespace adafl::core {

/// Configured parallelism (>= 1). First call reads ADAFL_THREADS.
int num_threads();

/// Resizes the pool. n == 0 selects the automatic size (ADAFL_THREADS or
/// hardware_concurrency). Must not be called while parallel work is in
/// flight; intended for startup configuration and tests.
void set_num_threads(int n);

/// True on a pool worker thread (nested parallel calls run serially).
bool in_parallel_region();

/// Calls fn(chunk_begin, chunk_end) over a static contiguous partition of
/// [begin, end). Blocks until every chunk completed. The first exception
/// (by chunk order) is rethrown on the caller.
void parallel_for_blocked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn);

/// Like parallel_for_blocked, but fn also receives the chunk index:
/// fn(chunk, chunk_begin, chunk_end). Chunk indices are 0-based, contiguous
/// and < min(num_threads(), end - begin); the serial path runs as chunk 0.
/// The partition depends only on (end - begin, num_threads()), never on
/// scheduling, so chunk indices are deterministic handles for per-chunk
/// scratch buffers (size the scratch table to num_threads() up front).
void parallel_for_blocked_indexed(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn);

/// Calls fn(i) for every i in [begin, end), chunked as above.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn);

/// Runs fn on the pool, returning a future for its completion. With a pool
/// size of 1 the task runs inline (the future is already ready). Used for
/// independent long-running tasks (e.g. one client's local training) whose
/// completion point the caller controls.
std::future<void> submit_task(std::function<void()> fn);

/// Maps [0, n) through fn into a pre-sized vector, index i holding fn(i).
template <typename T>
std::vector<T> parallel_map(std::int64_t n,
                            const std::function<T(std::int64_t)>& fn) {
  std::vector<T> out(static_cast<std::size_t>(n));
  parallel_for(0, n,
               [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = fn(i); });
  return out;
}

}  // namespace adafl::core
