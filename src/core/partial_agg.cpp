#include "core/partial_agg.h"

#include "tensor/check.h"

namespace adafl::core {

void PartialAggregator::reset(std::size_t dense_size) {
  acc_.assign(dense_size, 0.0f);
  mask_.assign(dense_size, 0);
}

void PartialAggregator::add(const compress::EncodedGradient& msg,
                            float weight) {
  ADAFL_CHECK_MSG(msg.kind == compress::CodecKind::kTopK,
                  "PartialAggregator: non-top-k message");
  ADAFL_CHECK_MSG(msg.dense_size == static_cast<std::int64_t>(acc_.size()),
                  "PartialAggregator: dense size " << msg.dense_size
                                                   << " != " << acc_.size());
  ADAFL_CHECK_MSG(msg.indices.size() == msg.values.size(),
                  "PartialAggregator: index/value count mismatch");
  for (std::size_t e = 0; e < msg.indices.size(); ++e) {
    const std::uint32_t i = msg.indices[e];
    ADAFL_CHECK_MSG(i < acc_.size(),
                    "PartialAggregator: index out of range");
    ADAFL_CHECK_MSG(e == 0 || msg.indices[e - 1] <= msg.indices[e],
                    "PartialAggregator: indices not sorted ascending");
    acc_[i] += weight * msg.values[e];
    mask_[i] = 1;
  }
}

void PartialAggregator::finish(compress::EncodedGradient& out) const {
  out.kind = compress::CodecKind::kTopK;
  out.dense_size = static_cast<std::int64_t>(acc_.size());
  out.wire_bytes = 0;
  out.indices.clear();
  out.values.clear();
  for (std::size_t i = 0; i < acc_.size(); ++i) {
    if (mask_[i] == 0) continue;
    out.indices.push_back(static_cast<std::uint32_t>(i));
    out.values.push_back(acc_[i]);
  }
}

}  // namespace adafl::core
