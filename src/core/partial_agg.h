// Deterministic partial aggregation of sparse top-k updates — the shared
// primitive behind hierarchical (relayed) aggregation.
//
// A mid-tier relay sums its children's weighted updates into one sparse
// partial and ships that upstream; the root merges relay partials instead of
// individual updates. Bitwise tier-transparency requires that a flat run
// with AdaFlParams::agg_group == G performs EXACTLY the same float
// operations: both paths therefore compute per-group partials with this
// class (children added in ascending client-id order) and merge the
// partials in ascending group order.
//
// The output support is mask-based, not value-filtered: an index whose
// weighted sum cancelled to +-0.0 stays in the partial, so the downstream
// `+=` sequence replays the flat aggregation exactly (adding -0.0 is not a
// no-op for sign bits).
#pragma once

#include <cstddef>
#include <vector>

#include "compress/codec.h"

namespace adafl::core {

class PartialAggregator {
 public:
  /// Clears the accumulator for a model of `dense_size` parameters. The
  /// dense buffers are members reused across rounds (assign keeps
  /// capacity): zero allocations in steady state.
  void reset(std::size_t dense_size);

  /// acc[idx] += weight * value for every coordinate of `msg`, in message
  /// order. `msg` must be kTopK with matching dense_size and in-range,
  /// ascending indices (CheckError otherwise — callers feed wire input).
  void add(const compress::EncodedGradient& msg, float weight);

  /// Writes the accumulated partial into `out` as a kTopK message over the
  /// union support in ascending index order. wire_bytes is left for the
  /// caller (serialize_into recomputes it on the wire path).
  void finish(compress::EncodedGradient& out) const;

  std::size_t dense_size() const { return acc_.size(); }

 private:
  std::vector<float> acc_;  ///< dense weighted sum
  std::vector<char> mask_;  ///< 1 where any child touched the coordinate
};

}  // namespace adafl::core
