#include "core/selection.h"

#include <algorithm>

#include "tensor/check.h"

namespace adafl::core {

SelectionResult select_clients(const std::vector<double>& scores, int k,
                               double tau) {
  ADAFL_CHECK_MSG(k >= 1, "select_clients: K must be >= 1");
  ADAFL_CHECK_MSG(tau >= 0.0 && tau <= 1.0, "select_clients: tau in [0,1]");
  SelectionResult r;
  // Client Filtering: C_filtered = { i : S_i >= tau }.
  std::vector<int> filtered;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    ADAFL_CHECK_MSG(scores[i] >= 0.0 && scores[i] <= 1.0,
                    "select_clients: score " << scores[i] << " outside [0,1]");
    if (scores[i] >= tau)
      filtered.push_back(static_cast<int>(i));
    else
      r.below_threshold.push_back(static_cast<int>(i));
  }
  // Client Ranking and Selection: sort by S_i descending, take first K'.
  std::stable_sort(filtered.begin(), filtered.end(), [&](int a, int b) {
    return scores[static_cast<std::size_t>(a)] >
           scores[static_cast<std::size_t>(b)];
  });
  const std::size_t k_prime =
      std::min<std::size_t>(static_cast<std::size_t>(k), filtered.size());
  r.selected.assign(filtered.begin(),
                    filtered.begin() + static_cast<std::ptrdiff_t>(k_prime));
  return r;
}

std::vector<double> normalize_selected(const std::vector<double>& scores,
                                       const std::vector<int>& ids) {
  std::vector<double> out(ids.size(), 1.0);
  if (ids.size() < 2) return out;
  double lo = scores[static_cast<std::size_t>(ids[0])];
  double hi = lo;
  for (int i : ids) {
    const double s = scores[static_cast<std::size_t>(i)];
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  if (hi - lo < 1e-12) return out;  // all equal
  for (std::size_t j = 0; j < ids.size(); ++j)
    out[j] = (scores[static_cast<std::size_t>(ids[j])] - lo) / (hi - lo);
  return out;
}

}  // namespace adafl::core
