// Adaptive node selection — paper Algorithm 1, verbatim semantics.
#pragma once

#include <vector>

namespace adafl::core {

/// Result of one selection pass.
struct SelectionResult {
  /// Selected client indices, sorted by utility score descending (ties keep
  /// lower index first). Satisfies Algorithm 1's constraints:
  ///   |selected| <= K;  all selected have S_i >= tau;
  ///   every selected score >= every non-selected score among the filtered.
  std::vector<int> selected;
  /// Indices filtered out by the tau threshold.
  std::vector<int> below_threshold;
};

/// Algorithm 1 (Adaptive Node Selection): filters clients by S_i >= tau,
/// ranks the survivors by score descending, and returns the top
/// K' = min(K, |filtered|). Preconditions: K >= 1, tau in [0,1], scores in
/// [0,1].
SelectionResult select_clients(const std::vector<double>& scores, int k,
                               double tau);

/// Min-max normalizes the scores of `ids` (a subset of indices into
/// `scores`) into [0,1]. A single client — or all-equal scores — maps to 1.
std::vector<double> normalize_selected(const std::vector<double>& scores,
                                       const std::vector<int>& ids);

}  // namespace adafl::core
