#include "core/server_checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "compress/bytes.h"
#include "net/transport/crc32.h"
#include "tensor/check.h"

namespace adafl::core {

namespace {

constexpr char kMagic[4] = {'A', 'D', 'F', 'L'};

using net::transport::crc32;

/// The canonical section set, in file order. A v2 checkpoint has exactly
/// these sections; anything else is rejected (wrong count, unknown or
/// duplicated names all fail decode).
constexpr const char* kSectionNames[] = {"meta",     "global", "adafl",
                                         "adam",     "scaffold", "rng",
                                         "clients"};
constexpr std::size_t kSectionCount =
    sizeof(kSectionNames) / sizeof(kSectionNames[0]);

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw std::runtime_error("server checkpoint " + path + ": " + why);
}

void put_f32_vec(std::vector<std::uint8_t>& out, const std::vector<float>& v) {
  bytes::put_u64(out, v.size());
  for (float x : v) bytes::put_f32(out, x);
}

std::vector<float> get_f32_vec(bytes::Reader& r, const char* what) {
  const std::uint64_t n = r.u64();
  // Divide instead of multiplying: a forged n near 2^62 would wrap n * 4.
  ADAFL_CHECK_MSG(n <= r.remaining() / 4,
                  "checkpoint: " << what << " length " << n
                                 << " exceeds section");
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = r.f32();
  return v;
}

void require_finite(const std::vector<float>& v, const char* what) {
  for (float x : v)
    ADAFL_CHECK_MSG(std::isfinite(x),
                    "checkpoint: non-finite value in " << what);
}

void put_rng(std::vector<std::uint8_t>& out, const tensor::RngState& s) {
  for (int i = 0; i < 4; ++i) bytes::put_u64(out, s.s[i]);
  bytes::put_f64(out, s.cached);
  bytes::put_u8(out, s.has_cached ? 1 : 0);
}

tensor::RngState get_rng(bytes::Reader& r) {
  tensor::RngState s;
  for (int i = 0; i < 4; ++i) s.s[i] = r.u64();
  s.cached = r.f64();
  const std::uint8_t flag = r.u8();
  ADAFL_CHECK_MSG(flag <= 1, "checkpoint: bad rng cache flag");
  s.has_cached = flag != 0;
  return s;
}

void expect_consumed(const bytes::Reader& r, const char* section) {
  ADAFL_CHECK_MSG(r.remaining() == 0,
                  "checkpoint: trailing bytes in section '" << section << "'");
}

}  // namespace

// --- Sectioned container. -------------------------------------------------

std::string checkpoint_path(const std::string& dir) {
  return dir + "/server.ckpt";
}

std::vector<std::uint8_t> encode_checkpoint_file_bytes(
    const std::vector<CheckpointSection>& sections) {
  std::vector<std::uint8_t> buf;
  buf.insert(buf.end(), kMagic, kMagic + 4);
  bytes::put_u32(buf, kServerCheckpointVersion);
  bytes::put_u32(buf, static_cast<std::uint32_t>(sections.size()));
  for (const auto& s : sections) {
    bytes::put_str(buf, s.name);
    bytes::put_u64(buf, s.data.size());
    bytes::put_u32(buf, crc32(s.data));
    buf.insert(buf.end(), s.data.begin(), s.data.end());
  }
  bytes::put_u32(buf, crc32(buf));
  return buf;
}

void write_checkpoint_bytes_atomic(const std::string& path,
                                   std::span<const std::uint8_t> buf) {
  // Atomic replace: write + fsync a sibling tmp file, then rename() over the
  // destination. A crash at any point leaves either the old checkpoint or
  // the complete new one — never a torn file under `path`.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail(path, std::string("cannot open ") + tmp + ": " +
                            std::strerror(errno));
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail(path, std::string("write failed: ") + std::strerror(err));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    fail(path, std::string("fsync failed: ") + std::strerror(err));
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail(path, std::string("rename failed: ") + std::strerror(err));
  }
}

void write_checkpoint_file(const std::string& path,
                           const std::vector<CheckpointSection>& sections) {
  write_checkpoint_bytes_atomic(path, encode_checkpoint_file_bytes(sections));
}

std::vector<CheckpointSection> decode_checkpoint_file_bytes(
    std::span<const std::uint8_t> buf, const std::string& origin) {
  if (buf.size() < 16)
    fail(origin, "truncated (too small to be a checkpoint)");

  // Whole-file CRC first: catches truncation / bit rot anywhere, including
  // inside section headers.
  const std::span<const std::uint8_t> body(buf.data(), buf.size() - 4);
  bytes::Reader tail(
      std::span<const std::uint8_t>(buf.data() + buf.size() - 4, 4));
  if (tail.u32() != crc32(body)) fail(origin, "file CRC mismatch (torn write?)");

  try {
    bytes::Reader r(body);
    const auto magic = r.raw(4);
    if (std::memcmp(magic.data(), kMagic, 4) != 0)
      fail(origin, "bad magic (not an ADFL file)");
    const std::uint32_t version = r.u32();
    if (version != kServerCheckpointVersion)
      fail(origin, "unsupported version " + std::to_string(version) +
                       " (expected " +
                       std::to_string(kServerCheckpointVersion) + ")");
    const std::uint32_t count = r.u32();
    std::vector<CheckpointSection> sections;
    sections.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      CheckpointSection s;
      s.name = r.str();
      const std::uint64_t len = r.u64();
      const std::uint32_t crc = r.u32();
      ADAFL_CHECK_MSG(len <= r.remaining(),
                      "section '" << s.name << "' length " << len
                                  << " exceeds file");
      const auto data = r.raw(static_cast<std::size_t>(len));
      s.data.assign(data.begin(), data.end());
      if (crc32(s.data) != crc)
        fail(origin, "section '" + s.name + "' CRC mismatch");
      sections.push_back(std::move(s));
    }
    ADAFL_CHECK_MSG(r.remaining() == 0, "trailing bytes after sections");
    return sections;
  } catch (const CheckError& e) {
    fail(origin, e.what());
  }
}

std::vector<CheckpointSection> read_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    fail(path, "cannot open (no checkpoint to resume from? pass a directory "
               "that holds server.ckpt)");
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(is)),
                                std::istreambuf_iterator<char>());
  return decode_checkpoint_file_bytes(buf, path);
}

// --- Typed encode / decode. ----------------------------------------------

std::vector<CheckpointSection> encode_server_checkpoint(
    const ServerCheckpoint& ck) {
  std::vector<CheckpointSection> out;

  CheckpointSection meta{"meta", {}};
  bytes::put_str(meta.data, ck.producer);
  bytes::put_u32(meta.data, ck.next_round);
  bytes::put_u32(meta.data, ck.total_rounds);
  bytes::put_u64(meta.data, ck.seed);
  bytes::put_u32(meta.data, ck.config_crc);
  bytes::put_f64(meta.data, ck.clock);
  out.push_back(std::move(meta));

  CheckpointSection global{"global", {}};
  put_f32_vec(global.data, ck.global);
  out.push_back(std::move(global));

  CheckpointSection adafl{"adafl", {}};
  bytes::put_u8(adafl.data, ck.adafl ? 1 : 0);
  if (ck.adafl) {
    const auto& a = *ck.adafl;
    put_f32_vec(adafl.data, a.g_hat);
    bytes::put_u64(adafl.data, static_cast<std::uint64_t>(a.selected_updates));
    bytes::put_u64(adafl.data, static_cast<std::uint64_t>(a.skipped_clients));
    bytes::put_f64(adafl.data, a.min_ratio_used);
    bytes::put_f64(adafl.data, a.max_ratio_used);
    bytes::put_f64(adafl.data, a.mean_selected_per_round);
    bytes::put_u64(adafl.data, static_cast<std::uint64_t>(a.selected_sum));
    bytes::put_u32(adafl.data, static_cast<std::uint32_t>(a.rounds_planned));
  }
  out.push_back(std::move(adafl));

  CheckpointSection adam{"adam", {}};
  bytes::put_u8(adam.data, ck.adam ? 1 : 0);
  if (ck.adam) {
    put_f32_vec(adam.data, ck.adam->m);
    put_f32_vec(adam.data, ck.adam->v);
    bytes::put_u64(adam.data, static_cast<std::uint64_t>(ck.adam->t));
  }
  out.push_back(std::move(adam));

  CheckpointSection scaffold{"scaffold", {}};
  bytes::put_u8(scaffold.data, ck.c_global ? 1 : 0);
  if (ck.c_global) put_f32_vec(scaffold.data, *ck.c_global);
  out.push_back(std::move(scaffold));

  CheckpointSection rng{"rng", {}};
  bytes::put_u8(rng.data, ck.server_rng ? 1 : 0);
  if (ck.server_rng) put_rng(rng.data, *ck.server_rng);
  bytes::put_u32(rng.data, static_cast<std::uint32_t>(ck.link_rngs.size()));
  for (const auto& s : ck.link_rngs) put_rng(rng.data, s);
  bytes::put_u32(rng.data, static_cast<std::uint32_t>(ck.schedule.size()));
  for (std::int32_t i : ck.schedule)
    bytes::put_u32(rng.data, static_cast<std::uint32_t>(i));
  out.push_back(std::move(rng));

  CheckpointSection clients{"clients", {}};
  bytes::put_u32(clients.data, static_cast<std::uint32_t>(ck.clients.size()));
  for (const auto& c : ck.clients) {
    put_rng(clients.data, c.loader_rng);
    bytes::put_u64(clients.data, c.loader_cursor);
    bytes::put_u64(clients.data, c.loader_indices.size());
    for (std::int32_t i : c.loader_indices)
      bytes::put_u32(clients.data, static_cast<std::uint32_t>(i));
    put_f32_vec(clients.data, c.dgc_u);
    put_f32_vec(clients.data, c.dgc_v);
    put_f32_vec(clients.data, c.c_local);
  }
  out.push_back(std::move(clients));

  return out;
}

ServerCheckpoint decode_server_checkpoint(
    const std::vector<CheckpointSection>& sections) {
  ADAFL_CHECK_MSG(sections.size() == kSectionCount,
                  "checkpoint: expected " << kSectionCount << " sections, got "
                                          << sections.size());
  for (std::size_t i = 0; i < kSectionCount; ++i)
    ADAFL_CHECK_MSG(sections[i].name == kSectionNames[i],
                    "checkpoint: section " << i << " is '" << sections[i].name
                                           << "', expected '"
                                           << kSectionNames[i] << "'");

  ServerCheckpoint ck;
  {
    bytes::Reader r(sections[0].data);
    ck.producer = r.str();
    ck.next_round = r.u32();
    ck.total_rounds = r.u32();
    ck.seed = r.u64();
    ck.config_crc = r.u32();
    ck.clock = r.f64();
    ADAFL_CHECK_MSG(std::isfinite(ck.clock) && ck.clock >= 0.0,
                    "checkpoint: bad clock value");
    ADAFL_CHECK_MSG(ck.next_round >= 1, "checkpoint: next_round must be >= 1");
    expect_consumed(r, "meta");
  }
  {
    bytes::Reader r(sections[1].data);
    ck.global = get_f32_vec(r, "global");
    ADAFL_CHECK_MSG(!ck.global.empty(), "checkpoint: empty global weights");
    require_finite(ck.global, "global weights");
    expect_consumed(r, "global");
  }
  {
    bytes::Reader r(sections[2].data);
    if (r.u8() != 0) {
      ServerCheckpoint::AdaFlCoreState a;
      a.g_hat = get_f32_vec(r, "g_hat");
      require_finite(a.g_hat, "g_hat");
      ADAFL_CHECK_MSG(a.g_hat.size() == ck.global.size(),
                      "checkpoint: g_hat/global dimension mismatch");
      a.selected_updates = static_cast<std::int64_t>(r.u64());
      a.skipped_clients = static_cast<std::int64_t>(r.u64());
      a.min_ratio_used = r.f64();
      a.max_ratio_used = r.f64();
      a.mean_selected_per_round = r.f64();
      a.selected_sum = static_cast<std::int64_t>(r.u64());
      a.rounds_planned = static_cast<std::int32_t>(r.u32());
      ADAFL_CHECK_MSG(a.selected_updates >= 0 && a.skipped_clients >= 0 &&
                          a.selected_sum >= 0 && a.rounds_planned >= 0,
                      "checkpoint: negative adafl counters");
      ck.adafl = std::move(a);
    }
    expect_consumed(r, "adafl");
  }
  {
    bytes::Reader r(sections[3].data);
    if (r.u8() != 0) {
      ServerCheckpoint::AdamState a;
      a.m = get_f32_vec(r, "adam m");
      a.v = get_f32_vec(r, "adam v");
      require_finite(a.m, "adam m");
      require_finite(a.v, "adam v");
      a.t = static_cast<std::int64_t>(r.u64());
      ADAFL_CHECK_MSG(a.m.size() == a.v.size(),
                      "checkpoint: adam m/v length mismatch");
      ADAFL_CHECK_MSG(a.t >= 0, "checkpoint: negative adam step count");
      ck.adam = std::move(a);
    }
    expect_consumed(r, "adam");
  }
  {
    bytes::Reader r(sections[4].data);
    if (r.u8() != 0) {
      auto c = get_f32_vec(r, "c_global");
      require_finite(c, "c_global");
      ck.c_global = std::move(c);
    }
    expect_consumed(r, "scaffold");
  }
  {
    bytes::Reader r(sections[5].data);
    if (r.u8() != 0) ck.server_rng = get_rng(r);
    const std::uint32_t n = r.u32();
    ck.link_rngs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) ck.link_rngs.push_back(get_rng(r));
    const std::uint32_t m = r.u32();
    ADAFL_CHECK_MSG(m <= r.remaining() / 4,
                    "checkpoint: schedule length exceeds section");
    ck.schedule.resize(m);
    for (auto& idx : ck.schedule) idx = static_cast<std::int32_t>(r.u32());
    expect_consumed(r, "rng");
  }
  {
    bytes::Reader r(sections[6].data);
    const std::uint32_t n = r.u32();
    ck.clients.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      ServerCheckpoint::ClientState c;
      c.loader_rng = get_rng(r);
      c.loader_cursor = r.u64();
      const std::uint64_t m = r.u64();
      ADAFL_CHECK_MSG(m <= r.remaining() / 4,
                      "checkpoint: client index list exceeds section");
      ADAFL_CHECK_MSG(c.loader_cursor <= m,
                      "checkpoint: client cursor out of range");
      c.loader_indices.resize(static_cast<std::size_t>(m));
      for (auto& idx : c.loader_indices)
        idx = static_cast<std::int32_t>(r.u32());
      c.dgc_u = get_f32_vec(r, "dgc u");
      c.dgc_v = get_f32_vec(r, "dgc v");
      c.c_local = get_f32_vec(r, "c_local");
      require_finite(c.dgc_u, "dgc u");
      require_finite(c.dgc_v, "dgc v");
      require_finite(c.c_local, "c_local");
      ck.clients.push_back(std::move(c));
    }
    expect_consumed(r, "clients");
  }
  return ck;
}

void save_server_checkpoint(const std::string& path,
                            const ServerCheckpoint& ck) {
  write_checkpoint_file(path, encode_server_checkpoint(ck));
}

ServerCheckpoint load_server_checkpoint(const std::string& path) {
  const auto sections = read_checkpoint_file(path);
  try {
    return decode_server_checkpoint(sections);
  } catch (const CheckError& e) {
    fail(path, e.what());
  }
}

}  // namespace adafl::core
