// Durable, versioned server checkpoint for crash-recoverable FL training.
//
// The file extends the nn/checkpoint.h "ADFL" header with named sections
// (version 2): each section carries its own CRC-32, and a whole-file CRC-32
// trailer catches truncation anywhere. Writes are atomic — the bytes go to
// `<path>.tmp` and are rename()d into place only after a successful flush —
// so a crash mid-write can never leave a torn checkpoint behind; the
// previous checkpoint (if any) stays intact and resumable.
//
//   "ADFL"            4-byte magic (shared with the v1 model checkpoint)
//   u32  version      2
//   u32  section_count
//   per section:
//     str  name       u32 length prefix + bytes
//     u64  data_len
//     u32  crc        CRC-32 of the data bytes
//     u8   data[data_len]
//   u32  file_crc     CRC-32 of every preceding byte
//
// ServerCheckpoint is the typed payload: everything a server-side run needs
// for bitwise-identical resume — round index, global weights, AdaFL
// selection/utility state, FedAdam moments, SCAFFOLD variates, RNG streams,
// and (simulator paths) per-client loader/compressor state. The loader
// validates CRCs, section structure, and float finiteness, and throws with
// an actionable message rather than resuming from garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "tensor/rng.h"

namespace adafl::core {

constexpr std::uint32_t kServerCheckpointVersion = 2;

// --- Sectioned container (exposed for format tests). ---------------------

struct CheckpointSection {
  std::string name;
  std::vector<std::uint8_t> data;
};

/// Encodes the sectioned container into the exact byte image a checkpoint
/// file holds (magic, version, per-section CRCs, whole-file CRC trailer).
/// These are also the bytes a REPLICATE frame ships to a hot standby, so
/// wire validation and disk validation share one code path.
std::vector<std::uint8_t> encode_checkpoint_file_bytes(
    const std::vector<CheckpointSection>& sections);

/// CRC-validates and decodes a checkpoint byte image (the whole-file CRC is
/// checked first, then magic/version/section structure). `origin` names the
/// source in error messages (a path, or e.g. "REPLICATE payload"). Throws
/// std::runtime_error on any corruption, truncation, or version skew.
std::vector<CheckpointSection> decode_checkpoint_file_bytes(
    std::span<const std::uint8_t> bytes, const std::string& origin);

/// Atomically writes a pre-encoded checkpoint image to `path` (tmp + rename,
/// fsync'd). Throws std::runtime_error on I/O failure.
void write_checkpoint_bytes_atomic(const std::string& path,
                                   std::span<const std::uint8_t> bytes);

/// Atomically writes the sectioned container to `path` (tmp + rename,
/// fsync'd). Throws std::runtime_error on I/O failure.
void write_checkpoint_file(const std::string& path,
                           const std::vector<CheckpointSection>& sections);

/// Reads and CRC-validates a sectioned container. Throws on missing file,
/// bad magic/version, truncation, trailing bytes, or any CRC mismatch.
std::vector<CheckpointSection> read_checkpoint_file(const std::string& path);

/// Canonical checkpoint file name inside a --checkpoint-dir.
std::string checkpoint_path(const std::string& dir);

// --- Typed server checkpoint. --------------------------------------------

struct ServerCheckpoint {
  // "meta"
  std::string producer;          ///< writing path, e.g. "adafl-sync"
  std::uint32_t next_round = 1;  ///< first round the resumed run executes
  std::uint32_t total_rounds = 0;
  std::uint64_t seed = 0;
  /// Producer-defined config fingerprint (e.g. CRC of the WELCOME payload);
  /// resume refuses a checkpoint written under a different configuration.
  std::uint32_t config_crc = 0;
  double clock = 0.0;  ///< simulated wall-clock (simulator paths)

  // "global"
  std::vector<float> global;

  // "adafl" — AdaFlServerCore state beyond the global weights.
  struct AdaFlCoreState {
    std::vector<float> g_hat;
    std::int64_t selected_updates = 0;
    std::int64_t skipped_clients = 0;
    double min_ratio_used = 0.0;
    double max_ratio_used = 0.0;
    double mean_selected_per_round = 0.0;
    std::int64_t selected_sum = 0;
    std::int32_t rounds_planned = 0;
  };
  std::optional<AdaFlCoreState> adafl;

  // "adam" — FedAdam server moments.
  struct AdamState {
    std::vector<float> m, v;
    std::int64_t t = 0;
  };
  std::optional<AdamState> adam;

  // "scaffold" — server control variate.
  std::optional<std::vector<float>> c_global;

  // "rng" — server RNG stream + one stream per simulated link, plus the
  // scheduler's client visit order: trainers shuffle it in place round
  // over round, which makes the current permutation part of the RNG state.
  std::optional<tensor::RngState> server_rng;
  std::vector<tensor::RngState> link_rngs;
  std::vector<std::int32_t> schedule;

  // "clients" — simulator-side per-client state (empty on the deployed
  // path, where clients own their state across the wire).
  struct ClientState {
    tensor::RngState loader_rng;
    std::uint64_t loader_cursor = 0;
    std::vector<std::int32_t> loader_indices;
    std::vector<float> dgc_u, dgc_v;  ///< empty when the path has no DGC
    std::vector<float> c_local;       ///< empty unless SCAFFOLD
  };
  std::vector<ClientState> clients;
};

/// Encodes the typed checkpoint into its canonical section list.
std::vector<CheckpointSection> encode_server_checkpoint(
    const ServerCheckpoint& ck);

/// Decodes + validates a section list (structure, finiteness). Throws
/// CheckError on malformed content.
ServerCheckpoint decode_server_checkpoint(
    const std::vector<CheckpointSection>& sections);

/// encode + atomic write.
void save_server_checkpoint(const std::string& path,
                            const ServerCheckpoint& ck);

/// read + decode; all errors carry `path` and a reason.
ServerCheckpoint load_server_checkpoint(const std::string& path);

}  // namespace adafl::core
