#include "core/utility.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"
#include "tensor/tensor.h"

namespace adafl::core {

const char* to_string(SimilarityMetric m) {
  switch (m) {
    case SimilarityMetric::kCosine:
      return "cosine";
    case SimilarityMetric::kL2Kernel:
      return "l2-kernel";
    case SimilarityMetric::kEuclideanKernel:
      return "euclidean-kernel";
  }
  return "?";
}

namespace {

double distance_ratio(std::span<const float> a, std::span<const float> b) {
  ADAFL_CHECK_MSG(a.size() == b.size(), "similarity01: length mismatch");
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    d2 += d * d;
  }
  const double na = tensor::l2_norm(a);
  const double nb = tensor::l2_norm(b);
  constexpr double kEps = 1e-12;
  return std::sqrt(d2) / (na + nb + kEps);
}

}  // namespace

double similarity01(SimilarityMetric metric, std::span<const float> a,
                    std::span<const float> b) {
  switch (metric) {
    case SimilarityMetric::kCosine:
      return 0.5 * (1.0 + tensor::cosine_similarity(a, b));
    case SimilarityMetric::kL2Kernel:
      return 1.0 / (1.0 + distance_ratio(a, b));
    case SimilarityMetric::kEuclideanKernel:
      return std::exp(-distance_ratio(a, b));
  }
  return 0.0;
}

double utility_score(const UtilityConfig& cfg, std::span<const float> g_local,
                     std::span<const float> g_global, double up_bw,
                     double down_bw) {
  ADAFL_CHECK_MSG(cfg.w_sim >= 0.0 && cfg.w_bw >= 0.0 &&
                      cfg.w_sim + cfg.w_bw > 0.0,
                  "utility_score: weights must be non-negative, not both 0");
  ADAFL_CHECK_MSG(cfg.bw_ref > 0.0, "utility_score: bw_ref must be positive");
  ADAFL_CHECK_MSG(up_bw >= 0.0 && down_bw >= 0.0,
                  "utility_score: bandwidths must be non-negative");
  const double sim = similarity01(cfg.metric, g_local, g_global);
  const double bw =
      std::clamp(std::min(up_bw, down_bw) / cfg.bw_ref, 0.0, 1.0);
  return (cfg.w_sim * sim + cfg.w_bw * bw) / (cfg.w_sim + cfg.w_bw);
}

}  // namespace adafl::core
