// Utility score (paper Eq. 6): S_i = f(B_down, B_up, U(g_i, g_hat)).
//
// The paper leaves f unspecified; DESIGN.md §4.1 documents our instantiation:
// a convex combination of a [0,1]-mapped gradient-similarity term and a
// normalized bandwidth term. Both the similarity metric and the weights are
// configurable (the paper mentions cosine, L2 and Euclidean alternatives).
#pragma once

#include <span>

#include "net/link.h"

namespace adafl::core {

/// Gradient similarity metrics from paper §IV.
enum class SimilarityMetric { kCosine, kL2Kernel, kEuclideanKernel };

const char* to_string(SimilarityMetric m);

/// Parameters of the utility function.
struct UtilityConfig {
  SimilarityMetric metric = SimilarityMetric::kCosine;
  double w_sim = 0.7;      ///< weight of the similarity term
  double w_bw = 0.3;       ///< weight of the bandwidth term
  /// Bandwidth (bytes/s) that maps the bw term to 1.0. CALIBRATE THIS TO
  /// THE DEPLOYMENT: on a fleet whose best uplink is far below bw_ref the
  /// bandwidth term drags every score down and tau can starve selection
  /// (see examples/wearable_har.cpp). A good default is the fleet's
  /// typical healthy uplink.
  double bw_ref = 2.5e6;
};

/// Maps a similarity metric to [0,1]:
///  - kCosine:          (1 + cos(a,b)) / 2   (0.5 when either vector ~ 0)
///  - kL2Kernel:        1 / (1 + ||a-b|| / (||a|| + ||b||))
///  - kEuclideanKernel: exp(-||a-b|| / (||a|| + ||b||))
/// Both kernel variants return 1 for identical non-zero vectors and decay
/// with distance; all are monotone in alignment.
double similarity01(SimilarityMetric metric, std::span<const float> a,
                    std::span<const float> b);

/// The utility score S_i in [0,1]. `up_bw`/`down_bw` are the client's
/// current effective bandwidths (bytes/s); pass bw_ref when no network is
/// simulated (bandwidth term = 1).
double utility_score(const UtilityConfig& cfg, std::span<const float> g_local,
                     std::span<const float> g_global, double up_bw,
                     double down_bw);

}  // namespace adafl::core
