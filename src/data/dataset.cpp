#include "data/dataset.h"

namespace adafl::data {

Dataset::Dataset(Tensor images, std::vector<std::int32_t> labels)
    : images_(std::move(images)), labels_(std::move(labels)) {
  ADAFL_CHECK_MSG(images_.shape().rank() == 4,
                  "Dataset: images must be [N,C,H,W], got "
                      << images_.shape().to_string());
  ADAFL_CHECK_MSG(
      images_.shape()[0] == static_cast<std::int64_t>(labels_.size()),
      "Dataset: " << images_.shape()[0] << " images vs " << labels_.size()
                  << " labels");
}

ImageSpec Dataset::spec() const {
  ADAFL_CHECK_MSG(size() > 0, "Dataset::spec on empty dataset");
  std::int64_t classes = 0;
  for (auto l : labels_)
    classes = std::max<std::int64_t>(classes, l + 1);
  return ImageSpec{images_.shape()[1], images_.shape()[2], images_.shape()[3],
                   classes};
}

Batch Dataset::gather(std::span<const std::int32_t> indices) const {
  Batch b;
  gather_into(indices, b);
  return b;
}

void Dataset::gather_into(std::span<const std::int32_t> indices,
                          Batch& out) const {
  ADAFL_CHECK_MSG(!indices.empty(), "Dataset::gather: empty index list");
  const std::int64_t c = images_.shape()[1], h = images_.shape()[2],
                     w = images_.shape()[3];
  const std::int64_t img = c * h * w;
  out.inputs.resize({static_cast<std::int64_t>(indices.size()), c, h, w});
  out.labels.clear();
  out.labels.reserve(indices.size());
  float* dst = out.inputs.data();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::int32_t i = indices[k];
    ADAFL_CHECK_MSG(i >= 0 && i < size(), "Dataset::gather: index " << i
                                                                    << " out of "
                                                                    << size());
    const float* src = images_.data() + static_cast<std::int64_t>(i) * img;
    std::copy(src, src + img, dst + static_cast<std::int64_t>(k) * img);
    out.labels.push_back(labels_[static_cast<std::size_t>(i)]);
  }
}

Batch Dataset::all() const {
  Batch b;
  b.inputs = images_;
  b.labels = labels_;
  return b;
}

BatchLoader::BatchLoader(const Dataset* dataset,
                         std::vector<std::int32_t> indices,
                         std::int64_t batch_size, Rng rng)
    : dataset_(dataset),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      rng_(rng) {
  ADAFL_CHECK_MSG(dataset_ != nullptr, "BatchLoader: null dataset");
  ADAFL_CHECK_MSG(!indices_.empty(), "BatchLoader: empty index list");
  ADAFL_CHECK_MSG(batch_size_ > 0, "BatchLoader: batch_size must be positive");
  rng_.shuffle(indices_);
}

Batch BatchLoader::next() {
  Batch b;
  next_into(b);
  return b;
}

void BatchLoader::next_into(Batch& out) {
  const std::size_t n = indices_.size();
  if (cursor_ >= n) {
    cursor_ = 0;
    rng_.shuffle(indices_);
  }
  const std::size_t take =
      std::min(static_cast<std::size_t>(batch_size_), n - cursor_);
  dataset_->gather_into({indices_.data() + cursor_, take}, out);
  cursor_ += take;
}

std::int64_t BatchLoader::peek_samples(int steps) const {
  const std::size_t n = indices_.size();
  std::size_t cursor = cursor_;
  std::int64_t total = 0;
  for (int s = 0; s < steps; ++s) {
    if (cursor >= n) cursor = 0;
    const std::size_t take =
        std::min(static_cast<std::size_t>(batch_size_), n - cursor);
    total += static_cast<std::int64_t>(take);
    cursor += take;
  }
  return total;
}

std::int64_t BatchLoader::batches_per_epoch() const {
  const std::int64_t n = num_examples();
  return (n + batch_size_ - 1) / batch_size_;
}

BatchLoader::State BatchLoader::state() const {
  State s;
  s.rng = rng_.state();
  s.cursor = static_cast<std::uint64_t>(cursor_);
  s.indices = indices_;
  return s;
}

void BatchLoader::set_state(State s) {
  ADAFL_CHECK_MSG(s.indices.size() == indices_.size(),
                  "BatchLoader: state has " << s.indices.size()
                                            << " indices, loader has "
                                            << indices_.size());
  ADAFL_CHECK_MSG(s.cursor <= s.indices.size(),
                  "BatchLoader: state cursor " << s.cursor << " out of range");
  for (const std::int32_t i : s.indices)
    ADAFL_CHECK_MSG(i >= 0 && i < dataset_->size(),
                    "BatchLoader: state index " << i << " out of dataset");
  rng_.set_state(s.rng);
  cursor_ = static_cast<std::size_t>(s.cursor);
  indices_ = std::move(s.indices);
}

}  // namespace adafl::data
