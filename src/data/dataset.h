// Dataset container and batching for supervised image classification.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.h"
#include "nn/models.h"

namespace adafl::data {

using nn::Batch;
using nn::ImageSpec;
using tensor::Rng;
using tensor::Tensor;

/// In-memory labelled image set: images [N, C, H, W] + N labels.
class Dataset {
 public:
  Dataset() = default;
  Dataset(Tensor images, std::vector<std::int32_t> labels);

  std::int64_t size() const { return static_cast<std::int64_t>(labels_.size()); }
  const Tensor& images() const { return images_; }
  const std::vector<std::int32_t>& labels() const { return labels_; }
  ImageSpec spec() const;

  /// Gathers the examples at `indices` into a contiguous batch.
  Batch gather(std::span<const std::int32_t> indices) const;

  /// gather into a caller-owned batch: `out.inputs` is resized (reusing its
  /// capacity) and `out.labels` is refilled, so steady-state calls with a
  /// stable batch size allocate nothing.
  void gather_into(std::span<const std::int32_t> indices, Batch& out) const;

  /// The whole dataset as one batch (for evaluation).
  Batch all() const;

 private:
  Tensor images_;
  std::vector<std::int32_t> labels_;
};

/// Cycling mini-batch iterator over a subset of a dataset, reshuffled every
/// epoch with its own RNG (deterministic under a fixed seed).
class BatchLoader {
 public:
  /// `indices` selects this loader's examples (e.g. one client's partition).
  BatchLoader(const Dataset* dataset, std::vector<std::int32_t> indices,
              std::int64_t batch_size, Rng rng);

  /// Next mini-batch; wraps to a fresh shuffled epoch at the end.
  Batch next();

  /// next() into a caller-owned batch (Dataset::gather_into semantics).
  void next_into(Batch& out);

  /// Total number of examples the next `steps` calls to next() will yield.
  /// Pure function of the cursor position (batch boundaries don't depend on
  /// the shuffle), so it consumes no RNG and leaves the loader untouched —
  /// used to predict simulated compute time before training actually runs.
  std::int64_t peek_samples(int steps) const;

  std::int64_t num_examples() const {
    return static_cast<std::int64_t>(indices_.size());
  }
  std::int64_t batches_per_epoch() const;

  /// Serializable iteration state: the current epoch's permutation, the
  /// cursor into it, and the shuffle RNG. Restoring it resumes the exact
  /// mini-batch sequence (crash-recovery checkpoints).
  struct State {
    tensor::RngState rng;
    std::uint64_t cursor = 0;
    std::vector<std::int32_t> indices;
  };
  State state() const;
  void set_state(State s);

 private:
  const Dataset* dataset_;
  std::vector<std::int32_t> indices_;
  std::int64_t batch_size_;
  std::size_t cursor_ = 0;
  Rng rng_;
};

}  // namespace adafl::data
