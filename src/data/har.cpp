#include "data/har.h"

#include <array>
#include <cmath>

#include "nn/activation.h"
#include "nn/conv1d.h"
#include "nn/linear.h"
#include "nn/sequential.h"

namespace adafl::data {

namespace {

/// Per-activity, per-axis oscillation parameters.
struct AxisPattern {
  double freq;    ///< cycles per window
  double amp;
  double phase;
  double drift;   ///< linear trend across the window
};

}  // namespace

Dataset make_har(const HarConfig& cfg) {
  ADAFL_CHECK_MSG(cfg.num_samples > 0 && cfg.length >= 8,
                  "make_har: need samples and length >= 8");
  ADAFL_CHECK_MSG(cfg.activities >= 2, "make_har: need >= 2 activities");
  constexpr int kAxes = 3;

  // Deterministic class prototypes.
  std::vector<std::array<AxisPattern, kAxes>> protos(
      static_cast<std::size_t>(cfg.activities));
  {
    Rng root(cfg.proto_seed);
    for (auto& proto : protos) {
      Rng rng = root.fork(static_cast<std::uint64_t>(&proto - &protos[0]) + 1);
      for (auto& ax : proto) {
        ax.freq = rng.uniform(0.8, 6.0);
        ax.amp = rng.uniform(0.4, 1.2);
        ax.phase = rng.uniform(0.0, 6.28318);
        ax.drift = rng.uniform(-0.4, 0.4);
      }
    }
  }

  Rng rng(cfg.seed);
  Tensor signals({cfg.num_samples, kAxes, 1, cfg.length});
  std::vector<std::int32_t> labels(static_cast<std::size_t>(cfg.num_samples));
  for (std::int64_t i = 0; i < cfg.num_samples; ++i) {
    const int cls = static_cast<int>(i % cfg.activities);
    labels[static_cast<std::size_t>(i)] = cls;
    const auto& proto = protos[static_cast<std::size_t>(cls)];
    const double phase_jitter = rng.uniform(0.0, 6.28318);
    for (int a = 0; a < kAxes; ++a) {
      const auto& ax = proto[static_cast<std::size_t>(a)];
      const double amp =
          ax.amp * (1.0 + rng.uniform(-cfg.amp_jitter, cfg.amp_jitter));
      float* out = signals.data() + (i * kAxes + a) * cfg.length;
      for (std::int64_t t = 0; t < cfg.length; ++t) {
        const double u = static_cast<double>(t) / cfg.length;
        const double v = amp * std::sin(6.28318 * ax.freq * u + ax.phase +
                                        phase_jitter) +
                         ax.drift * u +
                         rng.normal(0.0, cfg.noise_stddev);
        out[t] = static_cast<float>(v);
      }
    }
  }
  return Dataset(std::move(signals), std::move(labels));
}

nn::Model make_har_cnn(std::int64_t length, int activities,
                       std::uint64_t seed) {
  ADAFL_CHECK_MSG(length >= 8 && length % 4 == 0,
                  "make_har_cnn: length must be >= 8 and divisible by 4");
  nn::Rng rng(seed);
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv1d>(3, 16, 5, rng, 1, 2);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool1d>(2);
  net->emplace<nn::Conv1d>(16, 32, 5, rng, 1, 2);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool1d>(2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(32 * (length / 4), 64, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Linear>(64, activities, rng);
  nn::Model model(std::move(net));
  // Zero-init the classifier head (same rationale as the image models).
  auto params = model.params();
  params[params.size() - 2].value->fill(0.0f);
  params[params.size() - 1].value->fill(0.0f);
  return model;
}

nn::ModelFactory har_cnn_factory(std::int64_t length, int activities,
                                 std::uint64_t seed) {
  return [=] { return make_har_cnn(length, activities, seed); };
}

}  // namespace adafl::data
