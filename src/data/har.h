// Synthetic human-activity-recognition (HAR) dataset: 3-axis accelerometer
// windows for the paper's embedded-device setting.
//
// Each activity class is a characteristic mixture of per-axis oscillations
// (frequency, amplitude, axis coupling) drawn deterministically from
// `proto_seed`; samples add phase jitter, amplitude variation and sensor
// noise. Signals are emitted as [N, 3, 1, length] tensors so the standard
// Dataset/Batch machinery and the Conv1d model stack apply directly.
#pragma once

#include "data/dataset.h"

namespace adafl::data {

struct HarConfig {
  std::int64_t num_samples = 1000;
  std::int64_t length = 64;     ///< window length (timesteps)
  int activities = 6;           ///< number of classes
  double noise_stddev = 0.25;   ///< sensor noise
  double amp_jitter = 0.2;      ///< relative amplitude variation
  std::uint64_t proto_seed = 7;
  std::uint64_t seed = 1;
};

/// Generates a HAR dataset per `cfg`; labels are balanced round-robin.
Dataset make_har(const HarConfig& cfg);

/// A Conv1d classifier for HAR windows: two conv-pool stages + MLP head.
/// `length` must be a multiple of 4 (two 2x poolings).
nn::Model make_har_cnn(std::int64_t length, int activities,
                       std::uint64_t seed);

/// Factory form of make_har_cnn.
nn::ModelFactory har_cnn_factory(std::int64_t length, int activities,
                                 std::uint64_t seed);

}  // namespace adafl::data
