#include "data/partition.h"

#include <algorithm>
#include <numeric>

#include "tensor/check.h"

namespace adafl::data {

Partition partition_iid(std::int64_t n, int num_clients, tensor::Rng& rng) {
  ADAFL_CHECK_MSG(num_clients > 0, "partition_iid: num_clients <= 0");
  ADAFL_CHECK_MSG(n >= num_clients, "partition_iid: fewer examples than clients");
  std::vector<std::int32_t> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  Partition parts(static_cast<std::size_t>(num_clients));
  for (std::size_t i = 0; i < idx.size(); ++i)
    parts[i % static_cast<std::size_t>(num_clients)].push_back(idx[i]);
  return parts;
}

Partition partition_shards(const std::vector<std::int32_t>& labels,
                           int num_clients, int shards_per_client,
                           tensor::Rng& rng) {
  ADAFL_CHECK_MSG(num_clients > 0 && shards_per_client > 0,
                  "partition_shards: bad arguments");
  const std::int64_t n = static_cast<std::int64_t>(labels.size());
  const int num_shards = num_clients * shards_per_client;
  ADAFL_CHECK_MSG(n >= num_shards,
                  "partition_shards: " << n << " examples for " << num_shards
                                       << " shards");
  // Sort example indices by label (stable: ties keep original order).
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return labels[static_cast<std::size_t>(a)] <
                            labels[static_cast<std::size_t>(b)];
                   });
  // Deal shards randomly to clients.
  std::vector<int> shard_ids(static_cast<std::size_t>(num_shards));
  std::iota(shard_ids.begin(), shard_ids.end(), 0);
  rng.shuffle(shard_ids);
  Partition parts(static_cast<std::size_t>(num_clients));
  const std::int64_t shard_len = n / num_shards;
  for (int s = 0; s < num_shards; ++s) {
    const int client = s / shards_per_client;
    const int shard = shard_ids[static_cast<std::size_t>(s)];
    const std::int64_t lo = static_cast<std::int64_t>(shard) * shard_len;
    // Last shard absorbs the remainder.
    const std::int64_t hi =
        (shard == num_shards - 1) ? n : lo + shard_len;
    for (std::int64_t i = lo; i < hi; ++i)
      parts[static_cast<std::size_t>(client)].push_back(
          order[static_cast<std::size_t>(i)]);
  }
  return parts;
}

Partition partition_dirichlet(const std::vector<std::int32_t>& labels,
                              int num_clients, double alpha,
                              tensor::Rng& rng) {
  ADAFL_CHECK_MSG(num_clients > 0 && alpha > 0.0,
                  "partition_dirichlet: bad arguments");
  ADAFL_CHECK_MSG(static_cast<int>(labels.size()) >= num_clients,
                  "partition_dirichlet: fewer examples than clients");
  std::int32_t num_classes = 0;
  for (auto l : labels) num_classes = std::max(num_classes, l + 1);

  // Bucket indices per class, shuffled.
  std::vector<std::vector<std::int32_t>> by_class(
      static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < labels.size(); ++i)
    by_class[static_cast<std::size_t>(labels[i])].push_back(
        static_cast<std::int32_t>(i));
  for (auto& v : by_class) rng.shuffle(v);

  Partition parts(static_cast<std::size_t>(num_clients));
  for (auto& cls : by_class) {
    // Dirichlet(alpha) proportions over clients.
    std::vector<double> p(static_cast<std::size_t>(num_clients));
    double sum = 0.0;
    for (auto& v : p) {
      v = rng.gamma(alpha);
      sum += v;
    }
    std::size_t taken = 0;
    double cum = 0.0;
    for (int c = 0; c < num_clients; ++c) {
      cum += p[static_cast<std::size_t>(c)] / sum;
      const std::size_t until =
          (c == num_clients - 1)
              ? cls.size()
              : std::min(cls.size(),
                         static_cast<std::size_t>(cum * cls.size() + 0.5));
      for (; taken < until; ++taken)
        parts[static_cast<std::size_t>(c)].push_back(cls[taken]);
    }
  }

  // Guarantee no empty client: move one example from the largest part.
  for (auto& part : parts) {
    if (!part.empty()) continue;
    auto largest = std::max_element(
        parts.begin(), parts.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    ADAFL_CHECK_MSG(largest->size() > 1,
                    "partition_dirichlet: cannot rebalance empty client");
    part.push_back(largest->back());
    largest->pop_back();
  }
  return parts;
}

}  // namespace adafl::data
