// Client data partitioners: IID, shard-based non-IID (McMahan et al.), and
// Dirichlet non-IID.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.h"

namespace adafl::data {

/// One index list per client.
using Partition = std::vector<std::vector<std::int32_t>>;

/// Splits [0, n) uniformly at random into `num_clients` near-equal parts.
Partition partition_iid(std::int64_t n, int num_clients, tensor::Rng& rng);

/// McMahan-style non-IID: sorts examples by label, cuts the sorted order
/// into `num_clients * shards_per_client` shards, and deals
/// `shards_per_client` random shards to each client — so each client sees
/// only a few classes.
Partition partition_shards(const std::vector<std::int32_t>& labels,
                           int num_clients, int shards_per_client,
                           tensor::Rng& rng);

/// Dirichlet non-IID: for each class, splits its examples across clients by
/// a Dirichlet(alpha) draw. Smaller alpha = more skew. Guarantees every
/// client receives at least one example by rebalancing from the largest
/// clients afterwards.
Partition partition_dirichlet(const std::vector<std::int32_t>& labels,
                              int num_clients, double alpha,
                              tensor::Rng& rng);

}  // namespace adafl::data
