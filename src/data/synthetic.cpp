#include "data/synthetic.h"

#include <cmath>

namespace adafl::data {

namespace {

/// Smooth class prototype: a small random mixture of 2-D sinusoids per
/// channel, deterministic in (proto_seed, class, channel). Values ~[-1, 1].
class PrototypeBank {
 public:
  PrototypeBank(const ImageSpec& spec, std::uint64_t proto_seed)
      : spec_(spec) {
    protos_.reserve(static_cast<std::size_t>(spec.classes));
    Rng root(proto_seed);
    for (std::int64_t cls = 0; cls < spec.classes; ++cls) {
      Rng rng = root.fork(static_cast<std::uint64_t>(cls) + 1);
      Tensor p({spec.channels, spec.height, spec.width});
      for (std::int64_t c = 0; c < spec.channels; ++c) {
        // Four sinusoidal components with random frequency/phase/weight.
        struct Wave {
          double fy, fx, phase, weight;
        };
        Wave waves[4];
        for (auto& wv : waves) {
          wv.fy = rng.uniform(0.5, 2.5);
          wv.fx = rng.uniform(0.5, 2.5);
          wv.phase = rng.uniform(0.0, 6.28318);
          wv.weight = rng.uniform(0.4, 1.0) * (rng.bernoulli(0.5) ? 1 : -1);
        }
        for (std::int64_t y = 0; y < spec.height; ++y)
          for (std::int64_t x = 0; x < spec.width; ++x) {
            double v = 0.0;
            const double yn = static_cast<double>(y) / spec_.height;
            const double xn = static_cast<double>(x) / spec_.width;
            for (const auto& wv : waves)
              v += wv.weight *
                   std::sin(6.28318 * (wv.fy * yn + wv.fx * xn) + wv.phase);
            p.at({c, y, x}) = static_cast<float>(v / 2.5);
          }
      }
      protos_.push_back(std::move(p));
    }
  }

  const Tensor& of(std::int64_t cls) const {
    return protos_[static_cast<std::size_t>(cls)];
  }

 private:
  ImageSpec spec_;
  std::vector<Tensor> protos_;
};

}  // namespace

Dataset make_synthetic(const SyntheticConfig& cfg) {
  ADAFL_CHECK_MSG(cfg.num_samples > 0, "make_synthetic: num_samples <= 0");
  ADAFL_CHECK_MSG(cfg.spec.classes >= 2, "make_synthetic: need >= 2 classes");
  ADAFL_CHECK_MSG(cfg.noise_stddev >= 0.0 && cfg.label_noise >= 0.0 &&
                      cfg.label_noise <= 1.0,
                  "make_synthetic: bad noise parameters");
  const ImageSpec& s = cfg.spec;
  PrototypeBank bank(s, cfg.proto_seed);
  Rng rng(cfg.seed);

  Tensor images({cfg.num_samples, s.channels, s.height, s.width});
  std::vector<std::int32_t> labels(static_cast<std::size_t>(cfg.num_samples));
  const std::int64_t img = s.channels * s.height * s.width;

  for (std::int64_t i = 0; i < cfg.num_samples; ++i) {
    const std::int64_t cls = i % s.classes;  // balanced
    labels[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(cls);
    const Tensor& proto = bank.of(cls);
    const int dy = cfg.max_shift
                       ? static_cast<int>(rng.uniform_index(
                             static_cast<std::uint64_t>(2 * cfg.max_shift + 1))) -
                             cfg.max_shift
                       : 0;
    const int dx = cfg.max_shift
                       ? static_cast<int>(rng.uniform_index(
                             static_cast<std::uint64_t>(2 * cfg.max_shift + 1))) -
                             cfg.max_shift
                       : 0;
    float* dst = images.data() + i * img;
    for (std::int64_t c = 0; c < s.channels; ++c)
      for (std::int64_t y = 0; y < s.height; ++y)
        for (std::int64_t x = 0; x < s.width; ++x) {
          // Toroidal shift keeps energy constant across examples.
          const std::int64_t sy = (y + dy + s.height) % s.height;
          const std::int64_t sx = (x + dx + s.width) % s.width;
          const float base = proto.at({c, sy, sx});
          *dst++ = base + static_cast<float>(rng.normal(0.0, cfg.noise_stddev));
        }
  }

  if (cfg.label_noise > 0.0) {
    for (auto& l : labels)
      if (rng.bernoulli(cfg.label_noise))
        l = static_cast<std::int32_t>(
            rng.uniform_index(static_cast<std::uint64_t>(s.classes)));
  }

  return Dataset(std::move(images), std::move(labels));
}

SyntheticConfig mnist_like(std::int64_t num_samples, std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.spec = ImageSpec{1, 16, 16, 10};
  cfg.num_samples = num_samples;
  cfg.noise_stddev = 0.45;
  cfg.max_shift = 2;
  cfg.proto_seed = 42;
  cfg.seed = seed;
  return cfg;
}

SyntheticConfig cifar10_like(std::int64_t num_samples, std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.spec = ImageSpec{3, 16, 16, 10};
  cfg.num_samples = num_samples;
  cfg.noise_stddev = 0.5;
  cfg.max_shift = 3;
  cfg.proto_seed = 1042;
  cfg.seed = seed;
  return cfg;
}

SyntheticConfig cifar100_like(std::int64_t num_samples, std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.spec = ImageSpec{3, 16, 16, 20};
  cfg.num_samples = num_samples;
  cfg.noise_stddev = 0.6;
  cfg.max_shift = 3;
  cfg.proto_seed = 2042;
  cfg.seed = seed;
  return cfg;
}

}  // namespace adafl::data
