// Procedural synthetic image datasets (MNIST-like / CIFAR-like stand-ins).
//
// Per DESIGN.md §2, the paper's MNIST/CIFAR corpora are replaced by a
// class-prototype generator: each class has a smooth deterministic pattern
// (from `proto_seed`), and each example is a randomly shifted, noised copy.
// The resulting task has the same tensor shapes and tunable difficulty, and
// reproduces the optimization phenomena the paper studies (convergence
// curves, non-IID degradation, dropout tolerance) at laptop scale.
#pragma once

#include "data/dataset.h"

namespace adafl::data {

/// Parameters of the synthetic generator. Train and test splits should use
/// the same `proto_seed` (shared class patterns) and different `seed`s.
struct SyntheticConfig {
  ImageSpec spec{1, 16, 16, 10};
  std::int64_t num_samples = 1000;
  double noise_stddev = 0.45;   ///< i.i.d. pixel noise
  int max_shift = 2;            ///< uniform random translation in pixels
  double label_noise = 0.0;     ///< fraction of labels replaced uniformly
  std::uint64_t proto_seed = 42;  ///< class pattern identity
  std::uint64_t seed = 1;         ///< sampling randomness
};

/// Generates a dataset per `cfg`. Labels are balanced round-robin before
/// label noise is applied.
Dataset make_synthetic(const SyntheticConfig& cfg);

/// Convenience: MNIST-like 1x16x16, 10 classes.
SyntheticConfig mnist_like(std::int64_t num_samples, std::uint64_t seed);

/// Convenience: CIFAR10-like 3x16x16, 10 classes, noisier.
SyntheticConfig cifar10_like(std::int64_t num_samples, std::uint64_t seed);

/// Convenience: CIFAR100-like 3x16x16, 20 classes (tractable stand-in for
/// the paper's 100 classes; documented in EXPERIMENTS.md).
SyntheticConfig cifar100_like(std::int64_t num_samples, std::uint64_t seed);

}  // namespace adafl::data
