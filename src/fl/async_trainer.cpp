#include "fl/async_trainer.h"

#include <cmath>
#include <utility>

#include "core/parallel.h"
#include "metrics/trace.h"

namespace adafl::fl {

namespace {
constexpr std::int64_t kMsgHeaderBytes = 8;
}

AsyncTrainer::AsyncTrainer(AsyncConfig cfg, nn::ModelFactory factory,
                           const data::Dataset* train, data::Partition parts,
                           const data::Dataset* test,
                           std::vector<DeviceProfile> devices)
    : cfg_(std::move(cfg)),
      factory_(std::move(factory)),
      test_(test),
      clients_([&] {
        // Apply the straggler slowdown to the unreliable prefix before the
        // clients are constructed.
        const int n = static_cast<int>(parts.size());
        const int n_unreliable = static_cast<int>(
            std::lround(n * cfg_.faults.unreliable_fraction));
        std::vector<DeviceProfile> devs =
            devices.empty() ? std::vector<DeviceProfile>(
                                  static_cast<std::size_t>(n), workstation())
                            : devices;
        ADAFL_CHECK_MSG(static_cast<int>(devs.size()) == n,
                        "AsyncTrainer: need 0 or " << n << " devices");
        if (cfg_.faults.straggler_slowdown > 1.0)
          for (int i = 0; i < n_unreliable; ++i)
            devs[static_cast<std::size_t>(i)] = straggler(
                devs[static_cast<std::size_t>(i)],
                cfg_.faults.straggler_slowdown);
        return make_clients(factory_, train, parts, cfg_.client, devs,
                            cfg_.seed ^ 0xA51C57ULL);
      }()),
      eval_model_(factory_()),
      rng_(cfg_.seed) {
  ADAFL_CHECK_MSG(test_ != nullptr, "AsyncTrainer: null test set");
  ADAFL_CHECK_MSG(cfg_.duration > 0, "AsyncTrainer: duration must be positive");
  ADAFL_CHECK_MSG(
      cfg_.links.empty() || cfg_.links.size() == clients_.size(),
      "AsyncTrainer: need 0 or " << clients_.size() << " link configs");
  ADAFL_CHECK_MSG(cfg_.buffer_size > 0, "AsyncTrainer: buffer_size >= 1");
  global_ = eval_model_.get_flat();
  tensor::Rng link_rng = rng_.fork(0xFEED);
  for (std::size_t i = 0; i < cfg_.links.size(); ++i)
    links_.emplace_back(cfg_.links[i], link_rng.fork(i + 1));
}

TrainLog AsyncTrainer::run() {
  TrainLog log;
  log_ = &log;
  dense_bytes_ =
      kMsgHeaderBytes + 4 * static_cast<std::int64_t>(global_.size());
  log.dense_update_bytes = dense_bytes_;
  delivered_ = 0;
  delivered_since_eval_ = 0;
  loss_since_eval_ = 0.0;
  losses_since_eval_ = 0;
  buffer_sum_.assign(global_.size(), 0.0f);
  buffered_ = 0;
  training_.clear();
  training_.resize(clients_.size());

  // Kick off every client's first cycle, slightly staggered so version
  // counters differentiate.
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const double jitter = rng_.uniform(0.0, 0.01);
    queue_.schedule(jitter, [this, i] { start_cycle(static_cast<int>(i)); });
  }

  // Periodic evaluation.
  for (double t = cfg_.eval_interval; t <= cfg_.duration;
       t += cfg_.eval_interval) {
    queue_.schedule(t, [this, t] {
      eval_model_.set_flat(global_);
      RoundRecord rec;
      rec.round = delivered_;
      rec.time = t;
      rec.test_accuracy = eval_model_.accuracy(test_->all());
      rec.mean_train_loss =
          losses_since_eval_ > 0
              ? loss_since_eval_ / static_cast<double>(losses_since_eval_)
              : 0.0;
      rec.participants = delivered_since_eval_;
      log_->records.push_back(rec);
      delivered_since_eval_ = 0;
      loss_since_eval_ = 0.0;
      losses_since_eval_ = 0;
      if (cfg_.tracer != nullptr && cfg_.tracer->enabled()) {
        cfg_.tracer->record(metrics::ev_round_end(
            rec.round, rec.participants, rec.mean_train_loss, true,
            rec.test_accuracy, t));
        cfg_.tracer->flush();
      }
    });
  }

  queue_.run_until(cfg_.duration);
  // Join training tasks whose arrival events fell past the horizon: the
  // client state they mutate must settle before run() returns (the serial
  // schedule trained at cycle start, so these trainings "happened" too).
  for (auto& p : training_)
    if (p) {
      p->done.get();
      p.reset();
    }
  log.total_time = queue_.now();
  log.applied_updates = delivered_;
  log_ = nullptr;
  return log;
}

void AsyncTrainer::start_cycle(int client_id) {
  if (cfg_.max_updates > 0 && delivered_ >= cfg_.max_updates) return;
  FlClient& cl = clients_[static_cast<std::size_t>(client_id)];
  const std::int64_t version_at_start = version_;

  // A lost upload schedules a retry cycle without consuming the previous
  // training task; settle it first — the client's loader/model state must
  // be quiescent before we read it or train again.
  take_training(client_id);

  // Download leg.
  double down_t = 0.0;
  if (!links_.empty()) {
    auto tr = links_[static_cast<std::size_t>(client_id)].download(
        dense_bytes_, queue_.now());
    down_t = tr.duration;
  }
  const bool unreliable =
      client_id < static_cast<int>(std::lround(
                      static_cast<double>(clients_.size()) *
                      cfg_.faults.unreliable_fraction));
  if (unreliable && cfg_.faults.straggler_slowdown > 1.0)
    down_t *= cfg_.faults.straggler_slowdown;
  log_->ledger.record_download(client_id, dense_bytes_);

  // Local training happens "now" algorithmically but costs simulated time.
  // The actual number crunching is dispatched to the thread pool against a
  // snapshot of the current global model — the result is identical to the
  // serial schedule, it just overlaps in wall-clock time with other
  // clients' cycles. The simulated compute time is predicted up front (the
  // loader's batch boundaries don't depend on training), so the arrival
  // event can be scheduled before the task finishes.
  const double compute_t = cl.predicted_compute_seconds();
  auto task = std::make_unique<PendingTrain>();
  task->predicted_seconds = compute_t;
  auto snapshot = std::make_shared<std::vector<float>>(global_);
  PendingTrain* t = task.get();
  task->done = core::submit_task([t, &cl, snapshot] {
    t->res = cl.train_from(*snapshot);
    t->local.resize(snapshot->size());
    for (std::size_t i = 0; i < t->local.size(); ++i)
      t->local[i] = (*snapshot)[i] - t->res.delta[i];
  });
  training_[static_cast<std::size_t>(client_id)] = std::move(task);

  // Upload leg.
  double up_t = 0.0;
  bool ok = true;
  if (!links_.empty()) {
    auto tr = links_[static_cast<std::size_t>(client_id)].upload(dense_bytes_,
                                                                 queue_.now());
    up_t = tr.duration;
    ok = tr.delivered;
  }
  if (unreliable && cfg_.faults.straggler_slowdown > 1.0)
    up_t *= cfg_.faults.straggler_slowdown;
  if (unreliable && cfg_.faults.dropout_prob > 0.0 &&
      rng_.bernoulli(cfg_.faults.dropout_prob))
    ok = false;

  const double arrival = down_t + compute_t + up_t;
  if (ok) {
    queue_.schedule_in(arrival, [this, client_id, version_at_start] {
      auto done = take_training(client_id);
      on_arrival(client_id, std::move(done->local), std::move(done->res.delta),
                 version_at_start, done->res.mean_loss);
    });
  } else {
    // Lost upload: bytes were spent, nothing arrives; client retries with a
    // fresh cycle after the wasted round-trip.
    queue_.schedule_in(arrival, [this, client_id] { start_cycle(client_id); });
  }
  log_->ledger.record_upload(client_id, dense_bytes_, ok);
}

std::unique_ptr<AsyncTrainer::PendingTrain> AsyncTrainer::take_training(
    int client_id) {
  auto task = std::move(training_[static_cast<std::size_t>(client_id)]);
  if (!task) return nullptr;
  task->done.get();
  ADAFL_CHECK_MSG(task->res.compute_seconds == task->predicted_seconds,
                  "AsyncTrainer: predicted compute time diverged for client "
                      << client_id);
  return task;
}

void AsyncTrainer::on_arrival(int client_id, std::vector<float> local,
                              std::vector<float> delta,
                              std::int64_t version_at_start, float loss) {
  // The update cap applies to *applied* updates: in-flight arrivals beyond
  // the cap are discarded.
  if (cfg_.max_updates > 0 && delivered_ >= cfg_.max_updates) return;
  const std::int64_t staleness = version_ - version_at_start;
  switch (cfg_.algo) {
    case AsyncAlgorithm::kFedAsync:
      apply_fedasync(local, staleness);
      break;
    case AsyncAlgorithm::kFedBuff:
      apply_fedbuff(delta, staleness);
      break;
  }
  ++delivered_;
  ++delivered_since_eval_;
  loss_since_eval_ += loss;
  ++losses_since_eval_;
  if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
    cfg_.tracer->record(metrics::ev_update_delivered(
        delivered_, client_id, dense_bytes_, 0, static_cast<double>(loss)));
  // Client immediately begins its next cycle.
  start_cycle(client_id);
}

void AsyncTrainer::apply_fedasync(std::span<const float> local,
                                  std::int64_t staleness) {
  const float a =
      cfg_.alpha * std::pow(1.0f + static_cast<float>(staleness),
                            -cfg_.staleness_exponent);
  for (std::size_t i = 0; i < global_.size(); ++i)
    global_[i] = (1.0f - a) * global_[i] + a * local[i];
  ++version_;
}

void AsyncTrainer::apply_fedbuff(std::span<const float> delta,
                                 std::int64_t staleness) {
  const float s =
      1.0f / std::sqrt(1.0f + static_cast<float>(staleness));
  for (std::size_t i = 0; i < buffer_sum_.size(); ++i)
    buffer_sum_[i] += s * delta[i];
  if (++buffered_ < cfg_.buffer_size) return;
  const float step = cfg_.server_lr / static_cast<float>(buffered_);
  for (std::size_t i = 0; i < global_.size(); ++i)
    global_[i] -= step * buffer_sum_[i];
  std::fill(buffer_sum_.begin(), buffer_sum_.end(), 0.0f);
  buffered_ = 0;
  ++version_;
}

}  // namespace adafl::fl
