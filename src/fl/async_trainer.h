// Event-driven asynchronous FL: FedAsync (Xie et al.) and FedBuff (Nguyen
// et al.), with straggler (staleness) and dropout fault injection for the
// paper's §III async study.
#pragma once

#include <future>
#include <memory>

#include "fl/client.h"
#include "fl/types.h"
#include "net/event_queue.h"
#include "net/link.h"

namespace adafl::metrics {
class Tracer;
}

namespace adafl::fl {

/// Fault model for asynchronous runs.
struct AsyncFaults {
  double unreliable_fraction = 0.0;  ///< first round(N*f) clients affected
  /// > 1 slows unreliable clients' compute AND transfers by this factor —
  /// the paper's "3x slower" staleness condition.
  double straggler_slowdown = 1.0;
  /// Probability an unreliable client's upload is lost — the dropout
  /// condition.
  double dropout_prob = 0.0;
};

/// Configuration of one asynchronous run. The run stops at `duration`
/// simulated seconds, or earlier once `max_updates` deliveries were applied
/// (0 = no cap).
struct AsyncConfig {
  AsyncAlgorithm algo = AsyncAlgorithm::kFedAsync;
  double duration = 2000.0;
  int max_updates = 0;
  float alpha = 0.6f;              ///< FedAsync base mixing weight
  float staleness_exponent = 0.5f; ///< poly-staleness a: alpha*(1+s)^-a
  int buffer_size = 5;             ///< FedBuff K
  float server_lr = 1.0f;          ///< FedBuff aggregate step
  ClientTrainConfig client;
  std::vector<net::LinkConfig> links;  ///< empty = ideal network
  double eval_interval = 50.0;
  std::uint64_t seed = 1;
  AsyncFaults faults;
  /// Optional structured tracer: update_delivered per applied update,
  /// round_end at each eval tick (t = simulated seconds). Not owned.
  metrics::Tracer* tracer = nullptr;
};

/// Runs an asynchronous FL experiment on a discrete-event simulator.
class AsyncTrainer {
 public:
  AsyncTrainer(AsyncConfig cfg, nn::ModelFactory factory,
               const data::Dataset* train, data::Partition parts,
               const data::Dataset* test,
               std::vector<DeviceProfile> devices = {});

  TrainLog run();

  const std::vector<float>& global() const { return global_; }

 private:
  /// One client's local training running on the thread pool. The task
  /// trains against a snapshot of the global model taken when the cycle
  /// started (exactly what the serial schedule trains on), and fills res /
  /// local; the future's completion publishes them to the main thread.
  struct PendingTrain {
    std::future<void> done;
    FlClient::LocalResult res;
    std::vector<float> local;          ///< snapshot - delta
    double predicted_seconds = 0.0;    ///< must match res.compute_seconds
  };

  void start_cycle(int client_id);
  void on_arrival(int client_id, std::vector<float> local,
                  std::vector<float> delta, std::int64_t version_at_start,
                  float loss);
  void apply_fedasync(std::span<const float> local, std::int64_t staleness);
  void apply_fedbuff(std::span<const float> delta, std::int64_t staleness);
  /// Blocks until client_id's in-flight training (if any) finished and
  /// returns it; the slot is cleared.
  std::unique_ptr<PendingTrain> take_training(int client_id);

  AsyncConfig cfg_;
  nn::ModelFactory factory_;
  const data::Dataset* test_;
  std::vector<FlClient> clients_;
  std::vector<net::Link> links_;
  std::vector<float> global_;
  std::int64_t version_ = 0;
  nn::Model eval_model_;
  tensor::Rng rng_;
  net::EventQueue queue_;

  // Run-scoped accumulators (reset in run()).
  TrainLog* log_ = nullptr;
  std::int64_t dense_bytes_ = 0;
  int delivered_ = 0;
  int delivered_since_eval_ = 0;
  double loss_since_eval_ = 0.0;
  int losses_since_eval_ = 0;
  // FedBuff buffer.
  std::vector<float> buffer_sum_;
  int buffered_ = 0;
  // Per-client in-flight training tasks (at most one per client: a client's
  // next cycle starts only after its previous result was consumed).
  std::vector<std::unique_ptr<PendingTrain>> training_;
};

}  // namespace adafl::fl
