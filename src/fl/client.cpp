#include "fl/client.h"

namespace adafl::fl {

FlClient::FlClient(int id, const nn::ModelFactory& factory,
                   const data::Dataset* train_data,
                   std::vector<std::int32_t> indices, ClientTrainConfig cfg,
                   DeviceProfile device, std::uint64_t seed)
    : id_(id),
      cfg_(cfg),
      device_(std::move(device)),
      model_(factory()),
      loader_(train_data, std::move(indices), cfg.batch_size,
              tensor::Rng(seed)),
      opt_(cfg.lr, cfg.momentum) {
  ADAFL_CHECK_MSG(cfg.local_steps > 0, "FlClient: local_steps must be positive");
}

FlClient::LocalResult FlClient::train_from(std::span<const float> global) {
  LocalResult r;
  train_impl(global, {}, nullptr, r);
  return r;
}

void FlClient::train_from_into(std::span<const float> global,
                               LocalResult& out) {
  train_impl(global, {}, nullptr, out);
}

FlClient::LocalResult FlClient::train_scaffold(
    std::span<const float> global, std::span<const float> c_global,
    std::vector<float>* delta_c) {
  ADAFL_CHECK_MSG(delta_c != nullptr, "train_scaffold: delta_c required");
  ADAFL_CHECK_MSG(
      static_cast<std::int64_t>(c_global.size()) == model_.param_count(),
      "train_scaffold: control variate length mismatch");
  LocalResult r;
  train_impl(global, c_global, delta_c, r);
  return r;
}

void FlClient::train_impl(std::span<const float> global,
                          std::span<const float> c_global,
                          std::vector<float>* delta_c, LocalResult& out) {
  const std::int64_t d = model_.param_count();
  ADAFL_CHECK_MSG(static_cast<std::int64_t>(global.size()) == d,
                  "FlClient: global model length " << global.size() << " vs "
                                                   << d);
  const bool scaffold = !c_global.empty();
  if (scaffold && c_local_.empty())
    c_local_.assign(static_cast<std::size_t>(d), 0.0f);

  model_.set_flat(global);
  // Local SGD momentum is round-local: a fresh round starts from new global
  // weights, so stale velocity from a previous round does not apply.
  opt_.reset();

  double loss_sum = 0.0;
  std::int64_t samples_seen = 0;
  const auto params = model_.params();
  for (int step = 0; step < cfg_.local_steps; ++step) {
    loader_.next_into(batch_);
    samples_seen += batch_.size();
    model_.zero_grad();
    loss_sum += model_.compute_gradients(batch_);
    std::size_t off = 0;
    for (const auto& p : params) {
      auto g = p.grad->flat();
      const auto w = p.value->flat();
      if (cfg_.prox_mu > 0.0f) {
        // FedProx: grad += mu * (w - w_global)
        for (std::size_t i = 0; i < g.size(); ++i)
          g[i] += cfg_.prox_mu * (w[i] - global[off + i]);
      }
      if (scaffold) {
        // SCAFFOLD: grad += c - c_i
        for (std::size_t i = 0; i < g.size(); ++i)
          g[i] += c_global[off + i] - c_local_[off + i];
      }
      off += g.size();
    }
    opt_.step(params);
  }

  out.mean_loss = static_cast<float>(loss_sum / cfg_.local_steps);
  out.num_examples = num_examples();
  out.compute_seconds = device_.seconds_for(samples_seen);
  model_.get_flat_into(local_);
  out.delta.resize(static_cast<std::size_t>(d));
  for (std::size_t i = 0; i < out.delta.size(); ++i)
    out.delta[i] = global[i] - local_[i];

  if (scaffold) {
    // c_i^+ = c_i - c + (w_g - w_local) / (K * lr)  (SCAFFOLD option II)
    const float inv = 1.0f / (static_cast<float>(cfg_.local_steps) * cfg_.lr);
    delta_c->assign(static_cast<std::size_t>(d), 0.0f);
    for (std::size_t i = 0; i < c_local_.size(); ++i) {
      const float c_new = c_local_[i] - c_global[i] + out.delta[i] * inv;
      (*delta_c)[i] = c_new - c_local_[i];
      c_local_[i] = c_new;
    }
  }
}

std::vector<FlClient> make_clients(const nn::ModelFactory& factory,
                                   const data::Dataset* train_data,
                                   const data::Partition& parts,
                                   const ClientTrainConfig& cfg,
                                   const std::vector<DeviceProfile>& devices,
                                   std::uint64_t seed) {
  ADAFL_CHECK_MSG(!parts.empty(), "make_clients: empty partition");
  ADAFL_CHECK_MSG(devices.empty() || devices.size() == parts.size(),
                  "make_clients: need 0 or " << parts.size() << " devices");
  std::vector<FlClient> clients;
  clients.reserve(parts.size());
  tensor::Rng root(seed);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const DeviceProfile dev = devices.empty() ? workstation() : devices[i];
    clients.emplace_back(static_cast<int>(i), factory, train_data, parts[i],
                         cfg, dev, root.fork(i + 1).next_u64());
  }
  return clients;
}

std::uint64_t client_seed_at(std::uint64_t seed, int id) {
  ADAFL_CHECK_MSG(id >= 0, "client_seed_at: negative id");
  tensor::Rng root(seed);
  std::uint64_t s = 0;
  // Each fork() draws once from the parent stream, so client id's seed
  // depends on replaying forks 0..id in make_clients order.
  for (int j = 0; j <= id; ++j)
    s = root.fork(static_cast<std::uint64_t>(j) + 1).next_u64();
  return s;
}

FlClient make_client(const nn::ModelFactory& factory,
                     const data::Dataset* train_data,
                     const data::Partition& parts,
                     const ClientTrainConfig& cfg,
                     const std::vector<DeviceProfile>& devices,
                     std::uint64_t seed, int id) {
  ADAFL_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < parts.size(),
                  "make_client: id " << id << " out of range");
  ADAFL_CHECK_MSG(devices.empty() || devices.size() == parts.size(),
                  "make_client: need 0 or " << parts.size() << " devices");
  const DeviceProfile dev =
      devices.empty() ? workstation() : devices[static_cast<std::size_t>(id)];
  return FlClient(id, factory, train_data, parts[static_cast<std::size_t>(id)],
                  cfg, dev, client_seed_at(seed, id));
}

}  // namespace adafl::fl
