// FlClient: one federated client — local data, local model, local training.
#pragma once

#include <optional>

#include "data/dataset.h"
#include "data/partition.h"
#include "fl/device.h"
#include "nn/models.h"

namespace adafl::fl {

/// Local-training hyperparameters, shared by every protocol.
struct ClientTrainConfig {
  std::int64_t batch_size = 32;
  int local_steps = 10;   ///< SGD mini-batch steps per round
  float lr = 0.05f;
  float momentum = 0.0f;
  float prox_mu = 0.0f;   ///< > 0 adds the FedProx proximal term mu/2*||w-w_g||^2
};

/// One client. Owns an independently-constructed model of the global
/// architecture, its data partition, and its simulated device profile.
class FlClient {
 public:
  FlClient(int id, const nn::ModelFactory& factory,
           const data::Dataset* train_data, std::vector<std::int32_t> indices,
           ClientTrainConfig cfg, DeviceProfile device, std::uint64_t seed);

  /// Result of one local-training round.
  struct LocalResult {
    std::vector<float> delta;   ///< w_global - w_local (pseudo-gradient)
    float mean_loss = 0.0f;
    std::int64_t num_examples = 0;   ///< |D_i|, the FedAvg weighting
    double compute_seconds = 0.0;    ///< simulated device time spent
  };

  /// Loads `global`, runs cfg.local_steps SGD steps (with the FedProx
  /// proximal term if cfg.prox_mu > 0), and returns the weight delta.
  LocalResult train_from(std::span<const float> global);

  /// train_from writing into a caller-owned result. `out.delta` is resized
  /// in place; together with the client's internal batch/weight buffers this
  /// makes steady-state rounds allocation-free on the tensor hot path.
  void train_from_into(std::span<const float> global, LocalResult& out);

  /// SCAFFOLD local step: corrects each gradient with (c - c_i), then
  /// updates the client control variate. `delta_c` receives c_i^+ - c_i
  /// (to be averaged into the server's c).
  LocalResult train_scaffold(std::span<const float> global,
                             std::span<const float> c_global,
                             std::vector<float>* delta_c);

  /// Simulated compute time the *next* train_from / train_scaffold call
  /// will report, without running it (pure read of the loader cursor).
  /// Lets the async trainer schedule an arrival event before the training
  /// task has actually finished on the thread pool.
  double predicted_compute_seconds() const {
    return device_.seconds_for(loader_.peek_samples(cfg_.local_steps));
  }

  /// Cross-round client state for crash recovery: the batch-loader cursor
  /// and the SCAFFOLD control variate. Model weights and SGD velocity are
  /// deliberately absent — train_from reloads the global model and resets
  /// the optimizer every round, so they carry no state across rounds.
  struct PersistentState {
    data::BatchLoader::State loader;
    std::vector<float> c_local;  ///< empty unless SCAFFOLD has run
  };
  PersistentState persistent_state() const {
    return {loader_.state(), c_local_};
  }
  void set_persistent_state(PersistentState s) {
    ADAFL_CHECK_MSG(
        s.c_local.empty() ||
            s.c_local.size() == static_cast<std::size_t>(param_count()),
        "FlClient: c_local state dimension mismatch");
    loader_.set_state(std::move(s.loader));
    c_local_ = std::move(s.c_local);
  }

  int id() const { return id_; }
  std::int64_t num_examples() const { return loader_.num_examples(); }
  std::int64_t param_count() const { return model_.param_count(); }
  const DeviceProfile& device() const { return device_; }
  const ClientTrainConfig& config() const { return cfg_; }

 private:
  void train_impl(std::span<const float> global,
                  std::span<const float> c_global,
                  std::vector<float>* delta_c, LocalResult& out);

  int id_;
  ClientTrainConfig cfg_;
  DeviceProfile device_;
  nn::Model model_;
  data::BatchLoader loader_;
  nn::Sgd opt_;
  std::vector<float> c_local_;  ///< SCAFFOLD control variate (lazy-init)
  nn::Batch batch_;             ///< reused mini-batch storage
  std::vector<float> local_;    ///< reused post-training weight snapshot
};

/// Builds one FlClient per partition entry. `devices` may be empty (all
/// workstation()) or have one entry per client.
std::vector<FlClient> make_clients(const nn::ModelFactory& factory,
                                   const data::Dataset* train_data,
                                   const data::Partition& parts,
                                   const ClientTrainConfig& cfg,
                                   const std::vector<DeviceProfile>& devices,
                                   std::uint64_t seed);

/// The per-client seed make_clients(seed) derives for client `id`. Rng::fork
/// advances the parent stream, so the derivation replays the fork sequence —
/// a deployed client constructed with this seed trains bitwise identically
/// to its simulated twin at the same index.
std::uint64_t client_seed_at(std::uint64_t seed, int id);

/// Builds the single client `id` exactly as make_clients would have — same
/// partition slice, device, and derived seed. This is what a deployed
/// flclient process uses: it holds one client out of the fleet.
FlClient make_client(const nn::ModelFactory& factory,
                     const data::Dataset* train_data,
                     const data::Partition& parts,
                     const ClientTrainConfig& cfg,
                     const std::vector<DeviceProfile>& devices,
                     std::uint64_t seed, int id);

}  // namespace adafl::fl
