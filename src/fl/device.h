// Simulated compute profiles for heterogeneous devices (DESIGN.md §2: the
// paper's workstation + Raspberry-Pi cluster become speed-factor models).
#pragma once

#include <cstdint>
#include <string>

namespace adafl::fl {

/// Compute-time model of one device. Simulated training time is
///   seconds_for(samples) = base_sec_per_sample * slowdown * samples.
struct DeviceProfile {
  std::string name = "workstation";
  double base_sec_per_sample = 1.0e-3;
  double slowdown = 1.0;  ///< straggler multiplier (3.0 = paper's 3x-slower)

  double seconds_for(std::int64_t samples) const {
    return base_sec_per_sample * slowdown * static_cast<double>(samples);
  }
};

/// GPU-class trainer (the paper's i9 + RTX 3090 host).
inline DeviceProfile workstation() { return {"workstation", 2.0e-4, 1.0}; }

/// Embedded-class trainer (the paper's Raspberry Pi cluster nodes).
inline DeviceProfile raspberry_pi() { return {"raspberry-pi", 6.0e-3, 1.0}; }

/// Any profile slowed down by `factor` (used for staleness experiments).
inline DeviceProfile straggler(DeviceProfile base, double factor) {
  base.name += "-straggler";
  base.slowdown *= factor;
  return base;
}

}  // namespace adafl::fl
