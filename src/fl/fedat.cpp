#include "fl/fedat.h"

#include <algorithm>
#include <numeric>

#include "metrics/trace.h"

namespace adafl::fl {

namespace {
constexpr std::int64_t kMsgHeaderBytes = 8;
}

FedAtTrainer::FedAtTrainer(FedAtConfig cfg, nn::ModelFactory factory,
                           const data::Dataset* train, data::Partition parts,
                           const data::Dataset* test,
                           std::vector<DeviceProfile> devices)
    : cfg_(std::move(cfg)),
      factory_(std::move(factory)),
      test_(test),
      clients_(make_clients(factory_, train, parts, cfg_.client, devices,
                            cfg_.seed ^ 0xFEDA7ULL)),
      eval_model_(factory_()),
      rng_(cfg_.seed) {
  ADAFL_CHECK_MSG(test_ != nullptr, "FedAtTrainer: null test set");
  ADAFL_CHECK_MSG(cfg_.num_tiers >= 1, "FedAtTrainer: num_tiers >= 1");
  ADAFL_CHECK_MSG(cfg_.num_tiers <= static_cast<int>(clients_.size()),
                  "FedAtTrainer: more tiers than clients");
  ADAFL_CHECK_MSG(cfg_.duration > 0, "FedAtTrainer: duration must be positive");
  ADAFL_CHECK_MSG(
      cfg_.links.empty() || cfg_.links.size() == clients_.size(),
      "FedAtTrainer: need 0 or " << clients_.size() << " link configs");
  global_ = eval_model_.get_flat();
  tensor::Rng link_rng = rng_.fork(0x7157);
  for (std::size_t i = 0; i < cfg_.links.size(); ++i)
    links_.emplace_back(cfg_.links[i], link_rng.fork(i + 1));

  // --- Tiering: sort clients by estimated response time (one local round
  // on their device + a dense round trip on their link), then cut into
  // near-equal contiguous tiers — FedAT's profiling step.
  const std::int64_t d =
      static_cast<std::int64_t>(global_.size()) * 4 + kMsgHeaderBytes;
  std::vector<double> response(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const auto& cl = clients_[i];
    double t = cl.device().seconds_for(cfg_.client.local_steps *
                                       cfg_.client.batch_size);
    if (!links_.empty()) {
      const auto& lc = cfg_.links[i];
      t += 2.0 * lc.latency + static_cast<double>(d) / lc.up_bw +
           static_cast<double>(d) / lc.down_bw;
    }
    response[i] = t;
  }
  std::vector<int> order(clients_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return response[static_cast<std::size_t>(a)] <
           response[static_cast<std::size_t>(b)];
  });
  tier_of_.assign(clients_.size(), 0);
  tiers_.assign(static_cast<std::size_t>(cfg_.num_tiers), {});
  for (std::size_t r = 0; r < order.size(); ++r) {
    const int tier = static_cast<int>(r * static_cast<std::size_t>(
                                              cfg_.num_tiers) /
                                      order.size());
    tier_of_[static_cast<std::size_t>(order[r])] = tier;
    tiers_[static_cast<std::size_t>(tier)].push_back(order[r]);
  }
  tier_model_.assign(static_cast<std::size_t>(cfg_.num_tiers), global_);
  tier_rounds_.assign(static_cast<std::size_t>(cfg_.num_tiers), 0);
}

TrainLog FedAtTrainer::run() {
  TrainLog log;
  log_ = &log;
  dense_bytes_ =
      kMsgHeaderBytes + 4 * static_cast<std::int64_t>(global_.size());
  log.dense_update_bytes = dense_bytes_;
  applied_ = 0;
  delivered_since_eval_ = 0;
  loss_since_eval_ = 0.0;
  losses_since_eval_ = 0;

  for (int t = 0; t < cfg_.num_tiers; ++t) {
    queue_.schedule(rng_.uniform(0.0, 0.01),
                    [this, t] { start_tier_round(t); });
  }
  for (double t = cfg_.eval_interval; t <= cfg_.duration;
       t += cfg_.eval_interval) {
    queue_.schedule(t, [this, t] {
      eval_model_.set_flat(global_);
      RoundRecord rec;
      rec.round = static_cast<int>(applied_);
      rec.time = t;
      rec.test_accuracy = eval_model_.accuracy(test_->all());
      rec.mean_train_loss =
          losses_since_eval_ > 0
              ? loss_since_eval_ / static_cast<double>(losses_since_eval_)
              : 0.0;
      rec.participants = delivered_since_eval_;
      log_->records.push_back(rec);
      delivered_since_eval_ = 0;
      loss_since_eval_ = 0.0;
      losses_since_eval_ = 0;
      if (cfg_.tracer != nullptr && cfg_.tracer->enabled()) {
        cfg_.tracer->record(metrics::ev_round_end(
            rec.round, rec.participants, rec.mean_train_loss, true,
            rec.test_accuracy, t));
        cfg_.tracer->flush();
      }
    });
  }

  queue_.run_until(cfg_.duration);
  log.total_time = queue_.now();
  log.applied_updates = applied_;
  log_ = nullptr;
  return log;
}

void FedAtTrainer::start_tier_round(int tier) {
  auto& members = tiers_[static_cast<std::size_t>(tier)];
  // Intra-tier synchronous round against the tier's view of the global
  // model: all members train, the tier waits for its slowest member.
  std::vector<float> sum_delta(global_.size(), 0.0f);
  double weight_sum = 0.0;
  double loss_sum = 0.0;
  double round_time = 0.0;
  for (int id : members) {
    FlClient& cl = clients_[static_cast<std::size_t>(id)];
    double down_t = 0.0, up_t = 0.0;
    if (!links_.empty()) {
      auto tr = links_[static_cast<std::size_t>(id)].download(dense_bytes_,
                                                              queue_.now());
      down_t = tr.duration;
    }
    log_->ledger.record_download(id, dense_bytes_);
    auto res = cl.train_from(global_);
    if (!links_.empty()) {
      auto tr = links_[static_cast<std::size_t>(id)].upload(dense_bytes_,
                                                            queue_.now());
      up_t = tr.duration;
    }
    log_->ledger.record_upload(id, dense_bytes_, true);
    const float w = static_cast<float>(res.num_examples);
    for (std::size_t i = 0; i < sum_delta.size(); ++i)
      sum_delta[i] += w * res.delta[i];
    weight_sum += w;
    loss_sum += res.mean_loss;
    round_time = std::max(round_time, down_t + res.compute_seconds + up_t);
  }
  ADAFL_CHECK(weight_sum > 0.0);
  const float inv = static_cast<float>(1.0 / weight_sum);
  for (auto& v : sum_delta) v *= inv;
  const float mean_loss =
      static_cast<float>(loss_sum / static_cast<double>(members.size()));
  queue_.schedule_in(round_time,
                     [this, tier, delta = std::move(sum_delta), mean_loss]() mutable {
                       on_tier_arrival(tier, std::move(delta), mean_loss);
                     });
}

void FedAtTrainer::on_tier_arrival(int tier, std::vector<float> tier_delta,
                                   float loss) {
  // The tier's model advances from the global it trained against.
  auto& model = tier_model_[static_cast<std::size_t>(tier)];
  model = global_;
  for (std::size_t i = 0; i < model.size(); ++i) model[i] -= tier_delta[i];
  ++tier_rounds_[static_cast<std::size_t>(tier)];
  ++applied_;
  ++delivered_since_eval_;
  loss_since_eval_ += loss;
  ++losses_since_eval_;
  if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
    cfg_.tracer->record(metrics::ev_update_delivered(
        static_cast<int>(applied_), tier, dense_bytes_, 0,
        static_cast<double>(loss)));
  rebuild_global();
  start_tier_round(tier);
}

void FedAtTrainer::rebuild_global() {
  // Inverse-frequency tier weighting (FedAT's T-weighting, normalized):
  // tiers that have updated more often get proportionally less weight, so
  // slow tiers' data is not drowned out.
  std::vector<double> w(tier_model_.size());
  double sum = 0.0;
  for (std::size_t k = 0; k < w.size(); ++k) {
    w[k] = 1.0 / (1.0 + static_cast<double>(tier_rounds_[k]));
    sum += w[k];
  }
  std::fill(global_.begin(), global_.end(), 0.0f);
  for (std::size_t k = 0; k < tier_model_.size(); ++k) {
    const float p = static_cast<float>(w[k] / sum);
    const auto& m = tier_model_[k];
    for (std::size_t i = 0; i < global_.size(); ++i) global_[i] += p * m[i];
  }
}

}  // namespace adafl::fl
