// FedAT (Chai et al., SC'21) — tier-based semi-asynchronous FL, implemented
// as the protocol-level comparison point the paper cites in Related Work.
//
// Clients are grouped into tiers by response time (compute + link). Each
// tier runs its own synchronous FedAvg loop at its natural pace; the server
// combines tier models asynchronously, down-weighting tiers that update
// more often (inverse-frequency weighting) so fast tiers do not dominate.
#pragma once

#include "fl/client.h"
#include "fl/types.h"
#include "net/event_queue.h"
#include "net/link.h"

namespace adafl::metrics {
class Tracer;
}

namespace adafl::fl {

/// Configuration of one FedAT run.
struct FedAtConfig {
  int num_tiers = 3;
  double duration = 100.0;       ///< simulated seconds
  double eval_interval = 10.0;
  ClientTrainConfig client;
  std::vector<net::LinkConfig> links;  ///< empty = ideal network
  std::uint64_t seed = 1;
  /// Optional structured tracer: update_delivered per applied tier round
  /// (client field = tier id), round_end at each eval tick. Not owned.
  metrics::Tracer* tracer = nullptr;
};

/// Event-driven FedAT trainer.
class FedAtTrainer {
 public:
  FedAtTrainer(FedAtConfig cfg, nn::ModelFactory factory,
               const data::Dataset* train, data::Partition parts,
               const data::Dataset* test,
               std::vector<DeviceProfile> devices = {});

  TrainLog run();

  /// Tier id of each client (valid after construction).
  const std::vector<int>& tier_of() const { return tier_of_; }
  /// Per-tier completed rounds (valid after run()).
  const std::vector<std::int64_t>& tier_rounds() const { return tier_rounds_; }

 private:
  void start_tier_round(int tier);
  void on_tier_arrival(int tier, std::vector<float> tier_delta, float loss);
  void rebuild_global();

  FedAtConfig cfg_;
  nn::ModelFactory factory_;
  const data::Dataset* test_;
  std::vector<FlClient> clients_;
  std::vector<net::Link> links_;
  std::vector<int> tier_of_;
  std::vector<std::vector<int>> tiers_;   ///< client ids per tier
  std::vector<std::vector<float>> tier_model_;  ///< latest model per tier
  std::vector<std::int64_t> tier_rounds_;
  std::vector<float> global_;
  nn::Model eval_model_;
  tensor::Rng rng_;
  net::EventQueue queue_;

  TrainLog* log_ = nullptr;
  std::int64_t dense_bytes_ = 0;
  int delivered_since_eval_ = 0;
  double loss_since_eval_ = 0.0;
  int losses_since_eval_ = 0;
  std::int64_t applied_ = 0;
};

}  // namespace adafl::fl
