#include "fl/sync_trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "core/parallel.h"
#include "core/server_checkpoint.h"

namespace adafl::fl {

namespace {

constexpr std::int64_t kMsgHeaderBytes = 8;

/// Simulated server-side aggregation overhead per round.
constexpr double kServerOverheadSeconds = 0.002;

}  // namespace

SyncTrainer::SyncTrainer(SyncConfig cfg, nn::ModelFactory factory,
                         const data::Dataset* train, data::Partition parts,
                         const data::Dataset* test,
                         std::vector<DeviceProfile> devices)
    : cfg_(std::move(cfg)),
      factory_(std::move(factory)),
      test_(test),
      clients_(make_clients(factory_, train, parts, cfg_.client, devices,
                            cfg_.seed ^ 0xC11E57ULL)),
      eval_model_(factory_()),
      rng_(cfg_.seed) {
  ADAFL_CHECK_MSG(test_ != nullptr, "SyncTrainer: null test set");
  ADAFL_CHECK_MSG(cfg_.rounds > 0, "SyncTrainer: rounds must be positive");
  ADAFL_CHECK_MSG(cfg_.participation > 0.0 && cfg_.participation <= 1.0,
                  "SyncTrainer: participation in (0,1]");
  ADAFL_CHECK_MSG(
      cfg_.links.empty() || cfg_.links.size() == clients_.size(),
      "SyncTrainer: need 0 or " << clients_.size() << " link configs");
  global_ = eval_model_.get_flat();
  tensor::Rng link_rng = rng_.fork(0xBEEF);
  for (std::size_t i = 0; i < cfg_.links.size(); ++i)
    links_.emplace_back(cfg_.links[i], link_rng.fork(i + 1));
}

std::vector<float> SyncTrainer::robust_aggregate(
    const std::vector<std::vector<float>>& deltas) const {
  ADAFL_CHECK_MSG(!deltas.empty(), "robust_aggregate: no deltas");
  const std::size_t d = deltas.front().size();
  const std::size_t n = deltas.size();
  std::vector<float> out(d, 0.0f);
  std::vector<float> column(n);
  std::size_t lo = 0, hi = n;  // [lo, hi) kept after trimming
  if (cfg_.aggregation == Aggregation::kTrimmedMean) {
    const auto cut = static_cast<std::size_t>(
        static_cast<double>(n) * cfg_.trim_fraction);
    lo = cut;
    hi = n - cut;
    if (lo >= hi) {  // over-trimmed: fall back to the median element
      lo = n / 2;
      hi = lo + 1;
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t k = 0; k < n; ++k) column[k] = deltas[k][i];
    std::sort(column.begin(), column.end());
    if (cfg_.aggregation == Aggregation::kCoordinateMedian) {
      out[i] = (n % 2 == 1) ? column[n / 2]
                            : 0.5f * (column[n / 2 - 1] + column[n / 2]);
    } else {
      double acc = 0.0;
      for (std::size_t k = lo; k < hi; ++k) acc += column[k];
      out[i] = static_cast<float>(acc / static_cast<double>(hi - lo));
    }
  }
  return out;
}

TrainLog SyncTrainer::run() {
  const std::int64_t d = static_cast<std::int64_t>(global_.size());
  const std::int64_t dense_bytes = kMsgHeaderBytes + 4 * d;
  const int n = static_cast<int>(clients_.size());
  const int per_round =
      std::max(1, static_cast<int>(std::ceil(n * cfg_.participation)));
  const int n_unreliable = static_cast<int>(
      std::lround(n * cfg_.faults.unreliable_fraction));

  TrainLog log;
  log.dense_update_bytes = dense_bytes;
  std::int64_t applied_total = 0;

  // FedAdam server optimizer / SCAFFOLD server control variate. The
  // optimizer is only constructed when the algorithm actually uses it, so
  // server_lr is free to stay unset for the other algorithms.
  // FedAdam uses the adaptive-FL server defaults from Reddi et al.:
  // beta2 = 0.99 and a LARGE epsilon (1e-3). With the conventional 1e-8 the
  // first rounds take ~lr-sized sign steps on every coordinate, which can
  // throw the model into a region it never recovers from.
  std::optional<nn::FlatAdam> server_adam;
  if (cfg_.algo == Algorithm::kFedAdam)
    server_adam.emplace(cfg_.server_lr, cfg_.server_beta1, cfg_.server_beta2,
                        cfg_.server_eps);
  std::vector<float> c_global;
  if (cfg_.algo == Algorithm::kScaffold)
    c_global.assign(static_cast<std::size_t>(d), 0.0f);

  // Pending (stale) updates for the data-loss fault.
  struct Pending {
    std::vector<float> delta;
    std::int64_t weight = 0;
    float loss = 0.0f;
  };
  std::vector<std::optional<Pending>> pending(clients_.size());

  double clock = 0.0;
  std::vector<int> ids(clients_.size());
  std::iota(ids.begin(), ids.end(), 0);

  // --- Crash recovery: durable checkpoint / resume / early stop.
  const bool ckpt = !cfg_.checkpoint_path.empty();
  if (ckpt) {
    ADAFL_CHECK_MSG(cfg_.checkpoint_every > 0,
                    "SyncTrainer: checkpoint_every must be positive");
    ADAFL_CHECK_MSG(cfg_.faults.kind != FaultKind::kDataLoss,
                    "SyncTrainer: checkpointing is incompatible with the "
                    "data-loss fault (pending stale updates are not "
                    "serialized)");
  }
  const std::string producer = std::string("sync-") + to_string(cfg_.algo);

  auto save = [&](int next_round) {
    core::ServerCheckpoint ck;
    ck.producer = producer;
    ck.next_round = static_cast<std::uint32_t>(next_round);
    ck.total_rounds = static_cast<std::uint32_t>(cfg_.rounds);
    ck.seed = cfg_.seed;
    ck.clock = clock;
    ck.global = global_;
    if (server_adam) {
      nn::FlatAdam::State st = server_adam->state();
      ck.adam = core::ServerCheckpoint::AdamState{std::move(st.m),
                                                  std::move(st.v), st.t};
    }
    if (cfg_.algo == Algorithm::kScaffold) ck.c_global = c_global;
    ck.server_rng = rng_.state();
    for (const auto& l : links_) ck.link_rngs.push_back(l.rng_state());
    ck.schedule.assign(ids.begin(), ids.end());
    for (const auto& cl : clients_) {
      FlClient::PersistentState ps = cl.persistent_state();
      core::ServerCheckpoint::ClientState c;
      c.loader_rng = ps.loader.rng;
      c.loader_cursor = ps.loader.cursor;
      c.loader_indices = std::move(ps.loader.indices);
      c.c_local = std::move(ps.c_local);
      ck.clients.push_back(std::move(c));
    }
    core::save_server_checkpoint(cfg_.checkpoint_path, ck);
  };

  int start_round = 1;
  if (cfg_.resume) {
    ADAFL_CHECK_MSG(ckpt, "SyncTrainer: resume requires checkpoint_path");
    core::ServerCheckpoint ck =
        core::load_server_checkpoint(cfg_.checkpoint_path);
    auto reject = [this](const std::string& why) {
      throw std::runtime_error("server checkpoint " + cfg_.checkpoint_path +
                               ": " + why +
                               "; delete the checkpoint or rerun without "
                               "resume");
    };
    if (ck.producer != producer)
      reject("written by '" + ck.producer + "', expected '" + producer + "'");
    if (ck.seed != cfg_.seed) reject("seed mismatch");
    if (ck.total_rounds != static_cast<std::uint32_t>(cfg_.rounds))
      reject("round count mismatch");
    if (ck.next_round > ck.total_rounds)
      reject("run already complete (all " + std::to_string(ck.total_rounds) +
             " rounds done); nothing to resume");
    if (ck.global.size() != global_.size())
      reject("model dimension mismatch");
    if (ck.clients.size() != clients_.size()) reject("client count mismatch");
    if (ck.link_rngs.size() != links_.size()) reject("link count mismatch");
    if (!ck.server_rng) reject("missing server RNG state");
    if (server_adam.has_value() != ck.adam.has_value())
      reject("server optimizer state mismatch");
    if ((cfg_.algo == Algorithm::kScaffold) != ck.c_global.has_value())
      reject("SCAFFOLD state mismatch");
    if (ck.c_global && ck.c_global->size() != global_.size())
      reject("c_global dimension mismatch");
    if (ck.schedule.size() != ids.size())
      reject("schedule length mismatch");
    std::vector<bool> seen(ids.size(), false);
    for (std::int32_t id : ck.schedule) {
      if (id < 0 || id >= n || seen[static_cast<std::size_t>(id)])
        reject("schedule is not a permutation of the clients");
      seen[static_cast<std::size_t>(id)] = true;
    }
    try {
      global_ = std::move(ck.global);
      if (ck.adam)
        server_adam->set_state(
            {std::move(ck.adam->m), std::move(ck.adam->v), ck.adam->t});
      if (ck.c_global) c_global = std::move(*ck.c_global);
      rng_.set_state(*ck.server_rng);
      for (std::size_t i = 0; i < links_.size(); ++i)
        links_[i].set_rng_state(ck.link_rngs[i]);
      ids.assign(ck.schedule.begin(), ck.schedule.end());
      for (std::size_t i = 0; i < clients_.size(); ++i) {
        FlClient::PersistentState ps;
        ps.loader.rng = ck.clients[i].loader_rng;
        ps.loader.cursor = ck.clients[i].loader_cursor;
        ps.loader.indices = std::move(ck.clients[i].loader_indices);
        ps.c_local = std::move(ck.clients[i].c_local);
        clients_[i].set_persistent_state(std::move(ps));
      }
    } catch (const CheckError& e) {
      reject(e.what());
    }
    clock = ck.clock;
    start_round = static_cast<int>(ck.next_round);
    log.ledger.record_recovery();
  }

  for (int round = start_round; round <= cfg_.rounds; ++round) {
    if (cfg_.stop && cfg_.stop->load(std::memory_order_acquire)) {
      // Round boundaries are the commit points: the interrupted round has
      // not touched any state yet, so it simply replays after resume.
      if (ckpt) save(round);
      log.interrupted = true;
      break;
    }
    rng_.shuffle(ids);
    std::vector<float> sum_delta(static_cast<std::size_t>(d), 0.0f);
    // Robust rules need every delivered delta, not just the running sum.
    const bool robust = cfg_.aggregation != Aggregation::kWeightedMean;
    std::vector<std::vector<float>> delivered_deltas;
    std::vector<float> sum_dc;  // SCAFFOLD
    if (cfg_.algo == Algorithm::kScaffold)
      sum_dc.assign(static_cast<std::size_t>(d), 0.0f);
    double weight_sum = 0.0;
    double loss_sum = 0.0;
    int delivered = 0;
    int scaffold_deliveries = 0;
    double round_time = 0.0;

    // The round runs in three phases so the selected clients can train in
    // parallel while every RNG stays on the main thread in the serial
    // schedule's draw order:
    //   A (serial, schedule order): decide each client's path and draw its
    //     download transfer — each link has its own RNG, and a client
    //     appears at most once per round, so the per-link draw sequence
    //     (download, then upload in phase C) matches the serial trainer.
    //   B (parallel): the independent local_train calls. Each task touches
    //     only its own client plus the read-only global (and SCAFFOLD c)
    //     vectors.
    //   C (serial, schedule order): fault draws on the main RNG, upload
    //     draws, and delta aggregation — identical order to the serial
    //     trainer, so the round is bitwise reproducible at any thread count.
    struct ClientSlot {
      int id = 0;
      bool unreliable = false;
      bool trains = false;
      double down_t = 0.0;
      FlClient::LocalResult res;
      std::vector<float> dc;  // SCAFFOLD control-variate delta
    };
    std::vector<ClientSlot> slots(static_cast<std::size_t>(per_round));

    // --- Phase A: schedule decisions + download legs.
    for (int k = 0; k < per_round; ++k) {
      ClientSlot& s = slots[static_cast<std::size_t>(k)];
      s.id = ids[static_cast<std::size_t>(k)];
      s.unreliable = s.id < n_unreliable;
      const bool dataloss_client =
          cfg_.faults.kind == FaultKind::kDataLoss && s.unreliable;
      // A data-loss client with a pending update only delivers this round;
      // everyone else downloads the global model and trains.
      s.trains = !(dataloss_client &&
                   pending[static_cast<std::size_t>(s.id)].has_value());
      if (!s.trains) continue;
      if (!links_.empty())
        s.down_t = links_[static_cast<std::size_t>(s.id)]
                       .download(dense_bytes, clock)
                       .duration;
      log.ledger.record_download(s.id, dense_bytes);
    }

    // --- Phase B: parallel local training.
    std::vector<std::size_t> training;
    for (std::size_t k = 0; k < slots.size(); ++k)
      if (slots[k].trains) training.push_back(k);
    core::parallel_for(
        0, static_cast<std::int64_t>(training.size()), [&](std::int64_t t) {
          ClientSlot& s = slots[training[static_cast<std::size_t>(t)]];
          FlClient& cl = clients_[static_cast<std::size_t>(s.id)];
          if (cfg_.algo == Algorithm::kScaffold)
            s.res = cl.train_scaffold(global_, c_global, &s.dc);
          else
            s.res = cl.train_from(global_);
        });

    // --- Phase C: faults, uploads, aggregation (schedule order).
    for (int k = 0; k < per_round; ++k) {
      ClientSlot& s = slots[static_cast<std::size_t>(k)];
      double t_client = 0.0;

      // Data-loss fault: alternate train-only / deliver-stale rounds.
      if (cfg_.faults.kind == FaultKind::kDataLoss && s.unreliable) {
        auto& slot = pending[static_cast<std::size_t>(s.id)];
        if (s.trains) {
          // Trained against the current global model; delivery happens on
          // the client's next participation, by which time it is stale.
          slot = Pending{std::move(s.res.delta), s.res.num_examples,
                         s.res.mean_loss};
          t_client = s.down_t + s.res.compute_seconds;
        } else {
          // Deliver the stale pending update.
          double up_t = 0.0;
          bool ok = true;
          if (!links_.empty()) {
            auto tr = links_[static_cast<std::size_t>(s.id)].upload(
                dense_bytes, clock);
            up_t = tr.duration;
            ok = tr.delivered;
          }
          log.ledger.record_upload(s.id, dense_bytes, ok);
          if (ok) {
            const double w = static_cast<double>(slot->weight);
            for (std::size_t i = 0; i < sum_delta.size(); ++i)
              sum_delta[i] += static_cast<float>(w) * slot->delta[i];
            if (robust) delivered_deltas.push_back(slot->delta);
            weight_sum += w;
            loss_sum += slot->loss;
            ++delivered;
          }
          slot.reset();
          t_client = up_t;
        }
        round_time = std::max(round_time, t_client);
        continue;
      }

      // Normal path (with optional dropout fault).
      bool deliver = true;
      if (cfg_.faults.kind == FaultKind::kDropout && s.unreliable)
        deliver = rng_.bernoulli(0.5);
      if (cfg_.faults.kind == FaultKind::kByzantine && s.unreliable) {
        // Sign-flip attack with amplification.
        for (auto& v : s.res.delta) v *= -3.0f;
      }

      double up_t = 0.0;
      if (deliver) {
        bool ok = true;
        if (!links_.empty()) {
          auto tr = links_[static_cast<std::size_t>(s.id)].upload(dense_bytes,
                                                                  clock);
          up_t = tr.duration;
          ok = tr.delivered;
        }
        log.ledger.record_upload(s.id, dense_bytes, ok);
        if (ok) {
          const double w = static_cast<double>(s.res.num_examples);
          for (std::size_t i = 0; i < sum_delta.size(); ++i)
            sum_delta[i] += static_cast<float>(w) * s.res.delta[i];
          if (robust) delivered_deltas.push_back(s.res.delta);
          weight_sum += w;
          loss_sum += s.res.mean_loss;
          ++delivered;
          if (cfg_.algo == Algorithm::kScaffold) {
            for (std::size_t i = 0; i < sum_dc.size(); ++i)
              sum_dc[i] += s.dc[i];
            ++scaffold_deliveries;
          }
        }
      }
      round_time =
          std::max(round_time, s.down_t + s.res.compute_seconds + up_t);
    }

    // --- Server aggregation.
    if (weight_sum > 0.0) {
      const float inv = static_cast<float>(1.0 / weight_sum);
      for (auto& v : sum_delta) v *= inv;
      if (robust) sum_delta = robust_aggregate(delivered_deltas);
      switch (cfg_.algo) {
        case Algorithm::kFedAvg:
        case Algorithm::kFedProx:
        case Algorithm::kScaffold:
          for (std::size_t i = 0; i < global_.size(); ++i)
            global_[i] -= sum_delta[i];
          break;
        case Algorithm::kFedAdam:
          server_adam->step(global_, sum_delta);
          break;
      }
      if (cfg_.algo == Algorithm::kScaffold && scaffold_deliveries > 0) {
        // c += (1/N) * sum(delta_c) — SCAFFOLD server update.
        const float s = 1.0f / static_cast<float>(n);
        for (std::size_t i = 0; i < c_global.size(); ++i)
          c_global[i] += s * sum_dc[i];
      }
    }

    applied_total += delivered;
    clock += round_time + kServerOverheadSeconds;

    if (round % cfg_.eval_every == 0 || round == cfg_.rounds) {
      eval_model_.set_flat(global_);
      RoundRecord rec;
      rec.round = round;
      rec.time = clock;
      rec.test_accuracy = eval_model_.accuracy(test_->all());
      rec.mean_train_loss =
          delivered > 0 ? loss_sum / static_cast<double>(delivered) : 0.0;
      rec.participants = delivered;
      log.records.push_back(rec);
    }

    if (ckpt && (round % cfg_.checkpoint_every == 0 || round == cfg_.rounds))
      save(round + 1);
    if (cfg_.on_round_end) cfg_.on_round_end(round);
  }
  log.total_time = clock;
  log.applied_updates = applied_total;
  return log;
}

}  // namespace adafl::fl
