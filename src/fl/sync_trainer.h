// Synchronous FL driver: FedAvg, FedAdam, FedProx, SCAFFOLD, with client
// sampling, network simulation, and dropout / data-loss fault injection
// (paper §III empirical study and §V baselines).
#pragma once

#include <atomic>
#include <functional>
#include <string>

#include "fl/client.h"
#include "fl/types.h"
#include "net/link.h"

namespace adafl::fl {

/// Fault model for the §III empirical study.
enum class FaultKind {
  kNone,
  /// Unreliable clients fail to deliver their update with probability 0.5
  /// per round (their contribution is simply missing).
  kDropout,
  /// Unreliable clients deliver only every other round, and what arrives
  /// was computed against the *previous* global model (stale straggler
  /// noise — the paper's harsher "data loss" condition).
  kDataLoss,
  /// Unreliable clients are adversarial: they deliver sign-flipped, 3x
  /// amplified deltas (a classic model-poisoning attack; pairs with the
  /// robust Aggregation options below).
  kByzantine,
};

/// Server-side aggregation rule over the delivered deltas.
enum class Aggregation {
  kWeightedMean,      ///< FedAvg: example-count weighted mean
  kTrimmedMean,       ///< per coordinate, drop the trim fraction at each end
  kCoordinateMedian,  ///< per coordinate median (unweighted)
};

struct SyncFaults {
  FaultKind kind = FaultKind::kNone;
  double unreliable_fraction = 0.0;  ///< first round(N*f) clients are unreliable
};

/// Configuration of one synchronous run.
struct SyncConfig {
  Algorithm algo = Algorithm::kFedAvg;
  int rounds = 40;
  double participation = 1.0;  ///< r_p: fraction of clients sampled per round
  /// FedAdam server optimizer (Reddi et al. adaptive-FL defaults, except
  /// beta1: server momentum mixes deltas from different client subsets and
  /// destabilized training at this scale, so it defaults off).
  float server_lr = 0.01f;
  float server_beta1 = 0.0f;
  float server_beta2 = 0.99f;
  float server_eps = 1e-3f;
  /// Aggregation rule; the robust rules defend against FaultKind::kByzantine.
  Aggregation aggregation = Aggregation::kWeightedMean;
  /// Fraction trimmed at EACH end for kTrimmedMean (0.2 = drop lowest 20%
  /// and highest 20% of each coordinate).
  double trim_fraction = 0.2;
  ClientTrainConfig client;
  SyncFaults faults;
  /// One link per client; empty = ideal network (zero transfer time).
  std::vector<net::LinkConfig> links;
  int eval_every = 1;
  std::uint64_t seed = 1;

  // --- Crash recovery (core/server_checkpoint.h). -------------------------
  /// When non-empty, write a durable checkpoint here every
  /// `checkpoint_every` completed rounds (and when `stop` fires), and allow
  /// `resume`. Not supported together with FaultKind::kDataLoss (its
  /// pending stale updates are not serialized).
  std::string checkpoint_path;
  int checkpoint_every = 1;
  /// Resume from checkpoint_path instead of starting at round 1.
  bool resume = false;
  /// Optional early-stop flag, polled at round boundaries (signal-safe).
  /// When it flips, the trainer checkpoints (if configured) and returns
  /// with TrainLog::interrupted set.
  const std::atomic<bool>* stop = nullptr;
  /// Test hook: runs after each round (and its cadence checkpoint, if any).
  std::function<void(int round)> on_round_end;
};

/// Runs a synchronous FL experiment and returns its TrainLog.
class SyncTrainer {
 public:
  /// `devices` is empty (all workstation()) or one per client.
  SyncTrainer(SyncConfig cfg, nn::ModelFactory factory,
              const data::Dataset* train, data::Partition parts,
              const data::Dataset* test,
              std::vector<DeviceProfile> devices = {});

  TrainLog run();

  /// Global model parameters (valid after run()).
  const std::vector<float>& global() const { return global_; }

 private:
  /// Applies cfg_.aggregation to the delivered per-client deltas
  /// (unweighted, as is standard for the robust estimators).
  std::vector<float> robust_aggregate(
      const std::vector<std::vector<float>>& deltas) const;

  SyncConfig cfg_;
  nn::ModelFactory factory_;
  const data::Dataset* test_;
  std::vector<FlClient> clients_;
  std::vector<net::Link> links_;
  std::vector<float> global_;
  nn::Model eval_model_;
  tensor::Rng rng_;
};

}  // namespace adafl::fl
