#include "fl/types.h"

#include <algorithm>

#include "tensor/check.h"

namespace adafl::fl {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kFedAvg:
      return "FedAvg";
    case Algorithm::kFedAdam:
      return "FedAdam";
    case Algorithm::kFedProx:
      return "FedProx";
    case Algorithm::kScaffold:
      return "SCAFFOLD";
  }
  return "?";
}

const char* to_string(AsyncAlgorithm a) {
  switch (a) {
    case AsyncAlgorithm::kFedAsync:
      return "FedAsync";
    case AsyncAlgorithm::kFedBuff:
      return "FedBuff";
  }
  return "?";
}

double TrainLog::final_accuracy() const {
  ADAFL_CHECK_MSG(!records.empty(), "TrainLog::final_accuracy: no records");
  return records.back().test_accuracy;
}

double TrainLog::best_accuracy() const {
  ADAFL_CHECK_MSG(!records.empty(), "TrainLog::best_accuracy: no records");
  return std::max_element(records.begin(), records.end(),
                          [](const RoundRecord& a, const RoundRecord& b) {
                            return a.test_accuracy < b.test_accuracy;
                          })
      ->test_accuracy;
}

metrics::Series TrainLog::accuracy_vs_round() const {
  metrics::Series s;
  for (const auto& r : records)
    s.add(static_cast<double>(r.round), r.test_accuracy);
  return s;
}

metrics::Series TrainLog::accuracy_vs_time() const {
  metrics::Series s;
  for (const auto& r : records) s.add(r.time, r.test_accuracy);
  return s;
}

}  // namespace adafl::fl
