// Shared types for the federated-learning protocols.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/ledger.h"
#include "metrics/stats.h"

namespace adafl::fl {

/// Synchronous aggregation algorithms implemented in SyncTrainer.
enum class Algorithm { kFedAvg, kFedAdam, kFedProx, kScaffold };

/// Asynchronous algorithms implemented in AsyncTrainer.
enum class AsyncAlgorithm { kFedAsync, kFedBuff };

const char* to_string(Algorithm a);
const char* to_string(AsyncAlgorithm a);

/// One evaluation point in a training run.
struct RoundRecord {
  int round = 0;              ///< communication round (sync) / update count (async)
  double time = 0.0;          ///< simulated seconds since training start
  double test_accuracy = 0.0;
  double mean_train_loss = 0.0;
  int participants = 0;       ///< delivered updates contributing since last record
};

/// Full record of one FL run: evaluation trace + communication ledger.
struct TrainLog {
  std::vector<RoundRecord> records;
  metrics::CommLedger ledger;
  std::int64_t dense_update_bytes = 0;  ///< wire size of one uncompressed update
  double total_time = 0.0;              ///< simulated wall-clock of the run
  /// Updates actually applied to the global model. Can be lower than
  /// ledger.delivered_updates(): an async run's `max_updates` cap discards
  /// deliveries that were already in flight when the cap was reached.
  std::int64_t applied_updates = 0;
  /// True when the run was stopped early (request_stop / stop flag) and a
  /// later --resume is expected to finish the remaining rounds.
  bool interrupted = false;

  double final_accuracy() const;
  /// Best test accuracy seen at any evaluation point.
  double best_accuracy() const;
  metrics::Series accuracy_vs_round() const;
  metrics::Series accuracy_vs_time() const;
};

}  // namespace adafl::fl
