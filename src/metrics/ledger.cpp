#include "metrics/ledger.h"

#include <algorithm>

#include "tensor/check.h"

namespace adafl::metrics {

void CommLedger::record_upload(int client_id, std::int64_t bytes,
                               bool delivered) {
  ADAFL_CHECK_MSG(bytes >= 0, "CommLedger: negative upload size");
  up_bytes_ += bytes;
  ++attempted_updates_;
  per_client_bytes_[client_id] += bytes;
  if (delivered) {
    ++delivered_updates_;
    ++per_client_updates_[client_id];
    if (min_update_bytes_ == 0 || bytes < min_update_bytes_)
      min_update_bytes_ = bytes;
    max_update_bytes_ = std::max(max_update_bytes_, bytes);
  }
}

void CommLedger::record_download(int client_id, std::int64_t bytes) {
  ADAFL_CHECK_MSG(bytes >= 0, "CommLedger: negative download size");
  (void)client_id;
  down_bytes_ += bytes;
}

void CommLedger::record_retransmit(int client_id, std::int64_t bytes) {
  ADAFL_CHECK_MSG(bytes >= 0, "CommLedger: negative retransmit size");
  (void)client_id;
  retrans_bytes_ += bytes;
}

void CommLedger::record_reconnect(int client_id) {
  ++reconnects_;
  ++per_client_reconnects_[client_id];
}

void CommLedger::record_recovery() { ++recoveries_; }

void CommLedger::record_fault() { ++faults_; }

void CommLedger::record_parity_overhead(std::int64_t bytes) {
  ADAFL_CHECK_MSG(bytes >= 0, "CommLedger: negative parity overhead");
  parity_bytes_ += bytes;
}

void CommLedger::record_datagrams(std::int64_t sent, std::int64_t lost,
                                  std::int64_t repaired) {
  ADAFL_CHECK_MSG(sent >= 0 && lost >= 0 && repaired >= 0,
                  "CommLedger: negative datagram count");
  datagrams_sent_ += sent;
  datagrams_lost_ += lost;
  datagrams_repaired_ += repaired;
}

void CommLedger::record_unrecoverable_generations(std::int64_t n) {
  ADAFL_CHECK_MSG(n >= 0, "CommLedger: negative generation count");
  unrecoverable_gens_ += n;
}

std::int64_t CommLedger::reconnects_of(int client_id) const {
  auto it = per_client_reconnects_.find(client_id);
  return it == per_client_reconnects_.end() ? 0 : it->second;
}

std::int64_t CommLedger::upload_bytes_of(int client_id) const {
  auto it = per_client_bytes_.find(client_id);
  return it == per_client_bytes_.end() ? 0 : it->second;
}

std::int64_t CommLedger::updates_of(int client_id) const {
  auto it = per_client_updates_.find(client_id);
  return it == per_client_updates_.end() ? 0 : it->second;
}

double CommLedger::upload_cost_reduction(std::int64_t ideal_updates,
                                         std::int64_t dense_bytes) const {
  ADAFL_CHECK_MSG(ideal_updates > 0 && dense_bytes > 0,
                  "upload_cost_reduction: ideal schedule must be positive");
  const double ideal =
      static_cast<double>(ideal_updates) * static_cast<double>(dense_bytes);
  return 1.0 - static_cast<double>(up_bytes_) / ideal;
}

void CommLedger::reset() { *this = CommLedger(); }

}  // namespace adafl::metrics
