// Communication-cost ledger: every byte a protocol puts on the wire is
// recorded here, so Tables I/II cost columns come from actual accounting
// rather than analytical estimates.
#pragma once

#include <cstdint>
#include <map>

namespace adafl::metrics {

/// Per-direction traffic counters for one FL run.
class CommLedger {
 public:
  /// Records a client->server update transmission. `delivered` = false means
  /// the bytes were sent but lost (they still consumed client bandwidth).
  void record_upload(int client_id, std::int64_t bytes, bool delivered);

  /// Records a server->client model broadcast leg.
  void record_download(int client_id, std::int64_t bytes);

  std::int64_t total_upload_bytes() const { return up_bytes_; }
  std::int64_t total_download_bytes() const { return down_bytes_; }
  std::int64_t total_bytes() const { return up_bytes_ + down_bytes_; }

  /// Number of *delivered* client->server updates (the paper's
  /// "update frequency" column).
  std::int64_t delivered_updates() const { return delivered_updates_; }
  std::int64_t attempted_updates() const { return attempted_updates_; }

  std::int64_t upload_bytes_of(int client_id) const;
  std::int64_t updates_of(int client_id) const;

  /// Paper-style cost reduction versus an ideal schedule of
  /// `ideal_updates` dense uploads of `dense_bytes` each:
  ///   1 - total_upload_bytes / (ideal_updates * dense_bytes).
  double upload_cost_reduction(std::int64_t ideal_updates,
                               std::int64_t dense_bytes) const;

  /// Smallest / largest delivered update payloads (Tables' "gradient size").
  std::int64_t min_update_bytes() const { return min_update_bytes_; }
  std::int64_t max_update_bytes() const { return max_update_bytes_; }

  void reset();

 private:
  std::int64_t up_bytes_ = 0;
  std::int64_t down_bytes_ = 0;
  std::int64_t delivered_updates_ = 0;
  std::int64_t attempted_updates_ = 0;
  std::int64_t min_update_bytes_ = 0;
  std::int64_t max_update_bytes_ = 0;
  std::map<int, std::int64_t> per_client_bytes_;
  std::map<int, std::int64_t> per_client_updates_;
};

}  // namespace adafl::metrics
