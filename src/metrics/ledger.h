// Communication-cost ledger: every byte a protocol puts on the wire is
// recorded here, so Tables I/II cost columns come from actual accounting
// rather than analytical estimates.
#pragma once

#include <cstdint>
#include <map>

namespace adafl::metrics {

/// Per-direction traffic counters for one FL run.
class CommLedger {
 public:
  /// Records a client->server update transmission. `delivered` = false means
  /// the bytes were sent but lost (they still consumed client bandwidth).
  void record_upload(int client_id, std::int64_t bytes, bool delivered);

  /// Records a server->client model broadcast leg.
  void record_download(int client_id, std::int64_t bytes);

  /// Records bytes that had to be RE-sent because a connection dropped and
  /// was re-established mid-round (deployed transport only; the simulators
  /// never retransmit). Retransmitted bytes also count toward the
  /// directional totals via record_upload/record_download at the re-send
  /// site; this counter isolates the resilience overhead.
  void record_retransmit(int client_id, std::int64_t bytes);

  /// Records one successful reconnect of a previously-joined client.
  void record_reconnect(int client_id);

  /// Records one crash recovery: the run resumed from a durable checkpoint
  /// instead of restarting at round 1.
  void record_recovery();

  /// Records one injected transport fault (chaos runs; FaultyTransport).
  void record_fault();

  // --- Datagram/FEC accounting (UDP transport only). ----------------------

  /// Records parity bytes shipped alongside data datagrams: the explicit
  /// price of zero-round-trip loss tolerance. Parity bytes are NOT part of
  /// the directional upload/download totals (those stay comparable with the
  /// simulators and TCP); this isolates the FEC overhead.
  void record_parity_overhead(std::int64_t bytes);

  /// Bulk datagram counters, typically folded in once at end of run from
  /// the transport's FecStats.
  void record_datagrams(std::int64_t sent, std::int64_t lost,
                        std::int64_t repaired);

  /// Generations that lost more datagrams than parity could repair (each
  /// one forced a frame retransmit via the session nudge).
  void record_unrecoverable_generations(std::int64_t n);

  std::int64_t total_upload_bytes() const { return up_bytes_; }
  std::int64_t total_download_bytes() const { return down_bytes_; }
  std::int64_t total_bytes() const { return up_bytes_ + down_bytes_; }
  std::int64_t total_retransmitted_bytes() const { return retrans_bytes_; }
  std::int64_t total_reconnects() const { return reconnects_; }
  std::int64_t total_recoveries() const { return recoveries_; }
  std::int64_t total_faults() const { return faults_; }
  std::int64_t total_parity_overhead_bytes() const { return parity_bytes_; }
  std::int64_t total_datagrams_sent() const { return datagrams_sent_; }
  std::int64_t total_datagrams_lost() const { return datagrams_lost_; }
  std::int64_t total_datagrams_repaired() const { return datagrams_repaired_; }
  std::int64_t total_unrecoverable_generations() const {
    return unrecoverable_gens_;
  }
  std::int64_t reconnects_of(int client_id) const;

  /// Number of *delivered* client->server updates (the paper's
  /// "update frequency" column).
  std::int64_t delivered_updates() const { return delivered_updates_; }
  std::int64_t attempted_updates() const { return attempted_updates_; }

  std::int64_t upload_bytes_of(int client_id) const;
  std::int64_t updates_of(int client_id) const;

  /// Paper-style cost reduction versus an ideal schedule of
  /// `ideal_updates` dense uploads of `dense_bytes` each:
  ///   1 - total_upload_bytes / (ideal_updates * dense_bytes).
  double upload_cost_reduction(std::int64_t ideal_updates,
                               std::int64_t dense_bytes) const;

  /// Smallest / largest delivered update payloads (Tables' "gradient size").
  std::int64_t min_update_bytes() const { return min_update_bytes_; }
  std::int64_t max_update_bytes() const { return max_update_bytes_; }

  void reset();

 private:
  std::int64_t up_bytes_ = 0;
  std::int64_t down_bytes_ = 0;
  std::int64_t retrans_bytes_ = 0;
  std::int64_t reconnects_ = 0;
  std::int64_t recoveries_ = 0;
  std::int64_t faults_ = 0;
  std::int64_t parity_bytes_ = 0;
  std::int64_t datagrams_sent_ = 0;
  std::int64_t datagrams_lost_ = 0;
  std::int64_t datagrams_repaired_ = 0;
  std::int64_t unrecoverable_gens_ = 0;
  std::int64_t delivered_updates_ = 0;
  std::int64_t attempted_updates_ = 0;
  std::int64_t min_update_bytes_ = 0;
  std::int64_t max_update_bytes_ = 0;
  std::map<int, std::int64_t> per_client_bytes_;
  std::map<int, std::int64_t> per_client_updates_;
  std::map<int, std::int64_t> per_client_reconnects_;
};

}  // namespace adafl::metrics
