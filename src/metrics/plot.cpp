#include "metrics/plot.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "tensor/check.h"

namespace adafl::metrics {

namespace {
constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
}

AsciiChart::AsciiChart(int width, int height)
    : width_(width), height_(height) {
  ADAFL_CHECK_MSG(width >= 8 && height >= 4, "AsciiChart: too small");
}

AsciiChart& AsciiChart::add(std::string label, Series series) {
  ADAFL_CHECK_MSG(curves_.size() < sizeof(kGlyphs),
                  "AsciiChart: too many curves");
  ADAFL_CHECK_MSG(!series.empty(), "AsciiChart: empty series");
  curves_.push_back({std::move(label), std::move(series)});
  return *this;
}

AsciiChart& AsciiChart::y_range(double lo, double hi) {
  ADAFL_CHECK_MSG(hi > lo, "AsciiChart: invalid y range");
  fixed_range_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
  return *this;
}

void AsciiChart::print(std::ostream& os) const {
  ADAFL_CHECK_MSG(!curves_.empty(), "AsciiChart: nothing to plot");
  double x_lo = curves_.front().series.x.front();
  double x_hi = x_lo;
  double y_lo = y_lo_, y_hi = y_hi_;
  if (!fixed_range_) {
    y_lo = 1e300;
    y_hi = -1e300;
  }
  for (const auto& c : curves_) {
    x_lo = std::min(x_lo, c.series.x.front());
    x_hi = std::max(x_hi, c.series.x.back());
    if (!fixed_range_)
      for (double y : c.series.y) {
        y_lo = std::min(y_lo, y);
        y_hi = std::max(y_hi, y);
      }
  }
  if (!fixed_range_) {
    const double pad = std::max(1e-9, 0.05 * (y_hi - y_lo));
    y_lo -= pad;
    y_hi += pad;
  }
  if (x_hi <= x_lo) x_hi = x_lo + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_),
                                            ' '));
  auto col_of = [&](double x) {
    return std::clamp(static_cast<int>((x - x_lo) / (x_hi - x_lo) *
                                       (width_ - 1) + 0.5),
                      0, width_ - 1);
  };
  auto row_of = [&](double y) {
    const double t = (y - y_lo) / (y_hi - y_lo);
    return std::clamp(height_ - 1 -
                          static_cast<int>(t * (height_ - 1) + 0.5),
                      0, height_ - 1);
  };
  for (std::size_t k = 0; k < curves_.size(); ++k) {
    const char glyph = kGlyphs[k];
    const auto& s = curves_[k].series;
    // Step-interpolate between samples so curves are continuous.
    for (int col = 0; col < width_; ++col) {
      const double x =
          x_lo + (x_hi - x_lo) * static_cast<double>(col) / (width_ - 1);
      if (x < s.x.front() - 1e-12) continue;
      grid[static_cast<std::size_t>(row_of(s.y_at(x)))]
          [static_cast<std::size_t>(col)] = glyph;
    }
  }

  os << std::fixed;
  for (int r = 0; r < height_; ++r) {
    const double y =
        y_hi - (y_hi - y_lo) * static_cast<double>(r) / (height_ - 1);
    os << std::setw(7) << std::setprecision(2) << y << " |"
       << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(8, ' ') << '+' << std::string(static_cast<std::size_t>(width_), '-')
     << '\n';
  os << std::string(9, ' ') << std::setprecision(1) << x_lo
     << std::string(static_cast<std::size_t>(std::max(1, width_ - 12)), ' ')
     << x_hi << '\n';
  for (std::size_t k = 0; k < curves_.size(); ++k)
    os << "        " << kGlyphs[k] << " = " << curves_[k].label << '\n';
}

}  // namespace adafl::metrics
