// ASCII chart rendering for Series — the bench binaries' "figures".
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/stats.h"

namespace adafl::metrics {

/// One named curve of an AsciiChart.
struct NamedSeries {
  std::string label;
  Series series;
};

/// Renders one or more series into a character grid with y-axis labels and
/// per-curve glyphs. Intended for terminal output of accuracy curves.
class AsciiChart {
 public:
  /// `width`/`height` are the plot area in characters (axes excluded).
  AsciiChart(int width = 64, int height = 16);

  /// Adds a curve; at most 8 curves (distinct glyphs).
  AsciiChart& add(std::string label, Series series);

  /// Fixes the y range (default: min/max over all curves, padded).
  AsciiChart& y_range(double lo, double hi);

  /// Renders the chart plus a legend line per curve.
  void print(std::ostream& os) const;

 private:
  int width_, height_;
  bool fixed_range_ = false;
  double y_lo_ = 0.0, y_hi_ = 1.0;
  std::vector<NamedSeries> curves_;
};

}  // namespace adafl::metrics
