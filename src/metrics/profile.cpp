#include "metrics/profile.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <ostream>

#include "tensor/tensor.h"

namespace adafl::metrics {

namespace {

std::atomic<bool> g_enabled{false};

std::mutex g_mutex;
std::vector<PhaseProfiler::Entry>& entries_locked() {
  static std::vector<PhaseProfiler::Entry> entries;
  return entries;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PhaseProfiler& PhaseProfiler::instance() {
  static PhaseProfiler p;
  return p;
}

void PhaseProfiler::set_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool PhaseProfiler::enabled() const {
  return g_enabled.load(std::memory_order_relaxed);
}

void PhaseProfiler::record(const char* name, double seconds,
                           std::uint64_t tensor_allocs) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& entries = entries_locked();
  for (auto& e : entries) {
    if (e.name == name) {
      e.seconds += seconds;
      e.tensor_allocs += tensor_allocs;
      ++e.calls;
      return;
    }
  }
  Entry e;
  e.name = name;
  e.seconds = seconds;
  e.tensor_allocs = tensor_allocs;
  e.calls = 1;
  entries.push_back(std::move(e));
}

std::vector<PhaseProfiler::Entry> PhaseProfiler::entries() const {
  std::lock_guard<std::mutex> lock(g_mutex);
  return entries_locked();
}

void PhaseProfiler::reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  entries_locked().clear();
}

PhaseProfiler::Scope::Scope(const char* name)
    : name_(name), armed_(PhaseProfiler::instance().enabled()) {
  if (!armed_) return;
  start_allocs_ = tensor::tensor_allocations();
  start_seconds_ = now_seconds();
}

PhaseProfiler::Scope::~Scope() {
  if (!armed_) return;
  const double dt = now_seconds() - start_seconds_;
  const std::uint64_t da = tensor::tensor_allocations() - start_allocs_;
  PhaseProfiler::instance().record(name_, dt, da);
}

Table profile_table(const std::vector<PhaseProfiler::Entry>& entries) {
  Table t({"phase", "calls", "seconds", "tensor-allocs"});
  for (const auto& e : entries)
    t.add_row({e.name, std::to_string(e.calls), fmt_f(e.seconds, 4),
               std::to_string(e.tensor_allocs)});
  return t;
}

void print_profile(std::ostream& os) {
  auto& p = PhaseProfiler::instance();
  if (!p.enabled()) return;
  const auto entries = p.entries();
  if (entries.empty()) return;
  os << "\n--- profile (wall seconds + tensor heap allocations) ---\n";
  profile_table(entries).print(os);
}

}  // namespace adafl::metrics
