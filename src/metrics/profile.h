// Opt-in phase profiler for the FL hot path (`--profile` on flsim/flserver).
//
// Phases are named code regions (client training, compression, aggregation,
// evaluation, ...). Each Scope records wall time plus the number of tensor
// heap allocations (tensor::tensor_allocations()) performed inside it, so a
// profile shows both where time goes and whether the arena/workspace layer
// is actually keeping the steady state allocation-free.
//
// Disabled (the default), a Scope is two relaxed atomic loads and no locks;
// the profiler adds nothing to an unprofiled run's output or timing ledger.
// Recording takes a mutex — profile phases are coarse (per round phase, not
// per kernel), so contention is irrelevant. Phase order in the report is
// first-recorded order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/table.h"

namespace adafl::metrics {

class PhaseProfiler {
 public:
  /// Per-phase accumulated totals.
  struct Entry {
    std::string name;
    double seconds = 0.0;
    std::uint64_t tensor_allocs = 0;
    std::uint64_t calls = 0;
  };

  /// The process-wide profiler instance.
  static PhaseProfiler& instance();

  void set_enabled(bool enabled);
  bool enabled() const;

  /// Adds one measurement to `name`'s totals. No-op while disabled.
  void record(const char* name, double seconds, std::uint64_t tensor_allocs);

  /// Snapshot of all phases, in first-recorded order.
  std::vector<Entry> entries() const;

  /// Drops all recorded phases (keeps the enabled flag).
  void reset();

  /// RAII measurement of one phase execution. `name` must outlive the scope
  /// (string literals only).
  class Scope {
   public:
    explicit Scope(const char* name);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    const char* name_;
    bool armed_;
    double start_seconds_ = 0.0;
    std::uint64_t start_allocs_ = 0;
  };

 private:
  PhaseProfiler() = default;
};

/// Renders the profile as a phase/calls/seconds/allocations table.
Table profile_table(const std::vector<PhaseProfiler::Entry>& entries);

/// Convenience: prints the current profile to `os` if the profiler is
/// enabled and has recorded anything; otherwise does nothing.
void print_profile(std::ostream& os);

}  // namespace adafl::metrics
