#include "metrics/registry.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "metrics/ledger.h"
#include "metrics/profile.h"
#include "tensor/check.h"

namespace adafl::metrics {

namespace {

void append_f64(std::string& out, double v) {
  char buf[32];
  auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

void append_key(std::string& out, const std::string& name, bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += name;  // instrument names are code-controlled: no escaping needed
  out += "\":";
}

/// Phase names come from code too, but sanitize to keep the JSON keys flat.
std::string metric_safe(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s)
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
            c == '-')
               ? c
               : '_';
  return out;
}

}  // namespace

void Histogram::observe(double v) {
  ADAFL_CHECK_MSG(std::isfinite(v) && v >= 0.0,
                  "histogram: observation must be finite and >= 0, got "
                      << v);
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  int b = 0;
  if (v >= 1.0) {
    b = std::ilogb(v) + 1;
    if (b >= kBuckets) b = kBuckets - 1;
  }
  ++buckets_[b];
}

double Histogram::percentile(double p) const {
  ADAFL_CHECK_MSG(std::isfinite(p) && p >= 0.0 && p <= 1.0,
                  "histogram: percentile p must be in [0,1], got " << p);
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 1.0) return max();
  // Rank of the target observation (1-based), then walk the buckets.
  const double rank = p * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const std::uint64_t next = seen + buckets_[b];
    if (static_cast<double>(next) >= rank) {
      // Log-interpolate within [lo, hi) = [2^(b-1), 2^b), clamped to the
      // exact observed range so the estimate never leaves [min, max].
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
      const double hi = std::ldexp(1.0, b);
      const double frac =
          (rank - static_cast<double>(seen)) /
          static_cast<double>(buckets_[b]);
      double est = lo + (hi - lo) * frac;
      if (est < min_) est = min_;
      if (est > max_) est = max_;
      return est;
    }
    seen = next;
  }
  return max();
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::export_ledger(const CommLedger& ledger) {
  struct Item {
    const char* name;
    std::int64_t value;
  };
  const Item items[] = {
      {"comm.upload_bytes", ledger.total_upload_bytes()},
      {"comm.download_bytes", ledger.total_download_bytes()},
      {"comm.retransmitted_bytes", ledger.total_retransmitted_bytes()},
      {"comm.reconnects", ledger.total_reconnects()},
      {"comm.recoveries", ledger.total_recoveries()},
      {"comm.injected_faults", ledger.total_faults()},
      {"comm.delivered_updates", ledger.delivered_updates()},
      {"comm.attempted_updates", ledger.attempted_updates()},
      {"comm.parity_overhead_bytes", ledger.total_parity_overhead_bytes()},
      {"comm.datagrams_sent", ledger.total_datagrams_sent()},
      {"comm.datagrams_lost", ledger.total_datagrams_lost()},
      {"comm.datagrams_repaired", ledger.total_datagrams_repaired()},
      {"comm.unrecoverable_generations",
       ledger.total_unrecoverable_generations()},
  };
  for (const Item& it : items) {
    Counter& c = counter(it.name);
    c.add(it.value - c.value());  // idempotent re-export
  }
  gauge("comm.min_update_bytes")
      .set(static_cast<double>(ledger.min_update_bytes()));
  gauge("comm.max_update_bytes")
      .set(static_cast<double>(ledger.max_update_bytes()));
}

void Registry::export_profiler(const PhaseProfiler& profiler) {
  for (const PhaseProfiler::Entry& e : profiler.entries()) {
    const std::string base = "profile." + metric_safe(e.name);
    gauge(base + ".seconds").set(e.seconds);
    Counter& calls = counter(base + ".calls");
    calls.add(static_cast<std::int64_t>(e.calls) - calls.value());
    Counter& allocs = counter(base + ".tensor_allocs");
    allocs.add(static_cast<std::int64_t>(e.tensor_allocs) - allocs.value());
  }
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    append_key(out, name, first);
    append_i64(out, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    append_key(out, name, first);
    append_f64(out, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    append_key(out, name, first);
    out += "{\"count\":";
    append_u64(out, h->count());
    out += ",\"sum\":";
    append_f64(out, h->sum());
    out += ",\"min\":";
    append_f64(out, h->min());
    out += ",\"max\":";
    append_f64(out, h->max());
    out += ",\"buckets\":[";
    int last = Histogram::kBuckets - 1;
    while (last > 0 && h->buckets()[last] == 0) --last;
    for (int i = 0; i <= last; ++i) {
      if (i != 0) out += ',';
      append_u64(out, h->buckets()[i]);
    }
    out += "]}";
  }
  out += '}';
  return out;
}

void Registry::write_json(const std::string& path) const {
  const std::string doc = to_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error("metrics: cannot open '" + path +
                             "' for writing");
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace adafl::metrics
