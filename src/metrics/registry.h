// Metrics registry: one named export surface for every counter the system
// keeps. The existing accounting objects (CommLedger byte/retransmit
// totals, PhaseProfiler phase timings) stay the source of truth for their
// domains; export_ledger()/export_profiler() project them into the registry
// so a run can dump *all* of its numbers — transport, compute, tracing —
// as one flat, sorted, machine-readable JSON document (`--metrics=<path>`).
//
// Three instrument kinds:
//   Counter   — monotonically increasing int64 (events, bytes)
//   Gauge     — last-set double (current round, config values)
//   Histogram — log2-bucketed distribution + count/sum/min/max
//
// Instruments are created on first use and live for the registry's
// lifetime; the handles returned by counter()/gauge()/histogram() stay
// valid and are cheap to update (no lookup after creation). Registration
// is mutex-guarded; updates through a handle are plain stores/adds — the
// callers are coarse-grained (per round / per frame), not per-kernel.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace adafl::metrics {

class CommLedger;
class PhaseProfiler;

/// Monotonic int64 counter.
class Counter {
 public:
  void add(std::int64_t delta) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-written double value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Log2-bucketed histogram of non-negative observations. Bucket i counts
/// observations in [2^(i-1), 2^i) with bucket 0 holding [0, 1); exact
/// count/sum/min/max ride along so no information is lost to bucketing
/// for the summary statistics that matter.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void observe(double v);

  /// Estimated p-quantile (p in [0,1]) from the log2 buckets: finds the
  /// bucket holding the p-th observation and log-interpolates within it.
  /// Exact min/max anchor the tails (percentile(0) == min(),
  /// percentile(1) == max()); returns 0 when empty. Estimation error is
  /// bounded by the bucket's 2x width — plenty for latency reporting
  /// (p50/p99 dashboards), not for arithmetic.
  double percentile(double p) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  const std::uint64_t* buckets() const { return buckets_; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t buckets_[kBuckets] = {};
};

/// Named instrument store. Lookup creates on miss; names are unique per
/// kind and may not be reused across kinds.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Projects a CommLedger's totals into "comm.*" counters (overwriting
  /// any previous export). Call once at end of run.
  void export_ledger(const CommLedger& ledger);

  /// Projects PhaseProfiler entries into "profile.<phase>.*" counters.
  void export_profiler(const PhaseProfiler& profiler);

  /// All instruments as one flat JSON object, keys sorted (deterministic).
  /// Histograms render as {"count":..,"sum":..,"min":..,"max":..,
  /// "buckets":[..]} with trailing zero buckets trimmed.
  std::string to_json() const;

  /// Writes to_json() + newline to `path`. Throws std::runtime_error if
  /// the file cannot be written.
  void write_json(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  // node-stable maps: handles returned above must survive future inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace adafl::metrics
