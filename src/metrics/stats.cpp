#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace adafl::metrics {

void RunningStat::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

Summary summarize(std::span<const double> xs) {
  RunningStat rs;
  for (double x : xs) rs.add(x);
  return Summary{rs.mean(), rs.stddev(), rs.min(), rs.max(), rs.count()};
}

double Series::final_y() const {
  ADAFL_CHECK_MSG(!y.empty(), "Series::final_y on empty series");
  return y.back();
}

double Series::y_at(double query) const {
  ADAFL_CHECK_MSG(!x.empty(), "Series::y_at on empty series");
  auto it = std::upper_bound(x.begin(), x.end(), query);
  if (it == x.begin()) return y.front();
  const std::size_t i = static_cast<std::size_t>(it - x.begin()) - 1;
  return y[i];
}

Series mean_series(std::span<const Series> runs) {
  ADAFL_CHECK_MSG(!runs.empty(), "mean_series: no runs");
  const std::size_t n = runs.front().size();
  for (const auto& r : runs)
    ADAFL_CHECK_MSG(r.size() == n, "mean_series: ragged series");
  Series out;
  out.x = runs.front().x;
  out.y.assign(n, 0.0);
  for (const auto& r : runs)
    for (std::size_t i = 0; i < n; ++i) out.y[i] += r.y[i];
  for (auto& v : out.y) v /= static_cast<double>(runs.size());
  return out;
}

}  // namespace adafl::metrics
