// Running statistics and series helpers for experiment reporting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace adafl::metrics {

/// Welford running mean/variance accumulator.
class RunningStat {
 public:
  void add(double x);

  std::int64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a sample vector.
struct Summary {
  double mean = 0.0, stddev = 0.0, min = 0.0, max = 0.0;
  std::int64_t count = 0;
};

Summary summarize(std::span<const double> xs);

/// An (x, y) series, e.g. accuracy vs round or vs simulated seconds.
struct Series {
  std::vector<double> x;
  std::vector<double> y;

  void add(double xi, double yi) {
    x.push_back(xi);
    y.push_back(yi);
  }
  std::size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }

  /// Last y value; series must be non-empty.
  double final_y() const;

  /// y at the largest x <= query (step interpolation); series must be
  /// non-empty and x ascending. Returns the first y if query < x.front().
  double y_at(double query) const;
};

/// Pointwise mean of equal-length series (e.g. across repeat seeds).
Series mean_series(std::span<const Series> runs);

}  // namespace adafl::metrics
