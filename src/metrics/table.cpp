#include "metrics/table.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "tensor/check.h"

namespace adafl::metrics {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ADAFL_CHECK_MSG(!header_.empty(), "Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  ADAFL_CHECK_MSG(row.size() == header_.size(),
                  "Table: row has " << row.size() << " cells, header has "
                                    << header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string fmt_pct(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0 << '%';
  return os.str();
}

std::string fmt_bytes(std::int64_t bytes) {
  std::ostringstream os;
  const double b = static_cast<double>(bytes);
  if (bytes >= 1000000)
    os << std::fixed << std::setprecision(2) << b / 1e6 << "MB";
  else if (bytes >= 1000)
    os << std::fixed << std::setprecision(0) << b / 1e3 << "KB";
  else
    os << bytes << "B";
  return os.str();
}

std::string fmt_f(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

Table ledger_table(const CommLedger& ledger) {
  Table t({"metric", "value"});
  t.add_row({"upload", fmt_bytes(ledger.total_upload_bytes())});
  t.add_row({"download", fmt_bytes(ledger.total_download_bytes())});
  t.add_row({"retransmitted", fmt_bytes(ledger.total_retransmitted_bytes())});
  t.add_row({"delivered updates",
             std::to_string(ledger.delivered_updates())});
  t.add_row({"attempted updates",
             std::to_string(ledger.attempted_updates())});
  t.add_row({"reconnects", std::to_string(ledger.total_reconnects())});
  t.add_row({"recoveries", std::to_string(ledger.total_recoveries())});
  t.add_row({"injected faults", std::to_string(ledger.total_faults())});
  // Datagram rows appear only when the run actually used the UDP transport,
  // keeping TCP/sim output byte-stable.
  if (ledger.total_datagrams_sent() > 0 ||
      ledger.total_parity_overhead_bytes() > 0) {
    t.add_row({"parity overhead",
               fmt_bytes(ledger.total_parity_overhead_bytes())});
    t.add_row({"datagrams sent",
               std::to_string(ledger.total_datagrams_sent())});
    t.add_row({"datagrams lost",
               std::to_string(ledger.total_datagrams_lost())});
    t.add_row({"datagrams repaired",
               std::to_string(ledger.total_datagrams_repaired())});
    t.add_row({"unrecoverable generations",
               std::to_string(ledger.total_unrecoverable_generations())});
  }
  return t;
}

void write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_csv: cannot open " + path);
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) f << ',';
      f << cells[c];
    }
    f << '\n';
  };
  emit(header);
  for (const auto& r : rows) {
    ADAFL_CHECK_MSG(r.size() == header.size(), "write_csv: ragged row");
    emit(r);
  }
}

}  // namespace adafl::metrics
