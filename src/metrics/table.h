// Console table and CSV writers used by the bench harnesses.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/ledger.h"

namespace adafl::metrics {

/// Column-aligned console table. Cells are strings; the caller formats
/// numbers (fmt_pct / fmt_bytes helpers below).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with a header rule and 2-space column gaps.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "93.42%" with the given decimals.
std::string fmt_pct(double fraction, int decimals = 2);

/// "1.64MB" / "420KB" / "96B" (powers of 1000, paper-style).
std::string fmt_bytes(std::int64_t bytes);

/// Fixed-decimal float.
std::string fmt_f(double v, int decimals = 2);

/// Writes a CSV file; each row must have header.size() cells. Throws
/// std::runtime_error if the file cannot be opened.
void write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

/// Renders a CommLedger as a metric/value table: directional byte totals,
/// update counts, and the deployed-transport resilience columns
/// (retransmitted bytes, reconnects).
Table ledger_table(const CommLedger& ledger);

}  // namespace adafl::metrics
