#include "metrics/trace.h"

#include <charconv>
#include <cstring>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "metrics/registry.h"
#include "tensor/check.h"

namespace adafl::metrics {

namespace {

// One mutex guards every Tracer's buffer; tracing is coarse (a handful of
// events per round phase), so contention is irrelevant and a shared lock
// keeps the object trivially small.
std::mutex& trace_mutex() {
  static std::mutex mu;
  return mu;
}

constexpr std::size_t kInitialEventCapacity = 1024;

const char* const kEventNames[] = {
    "round_start",      "client_selected", "client_skipped",
    "update_delivered", "update_lost",     "round_end",
    "checkpoint",       "resume",          "frame_tx",
    "frame_rx",         "retransmit",      "reconnect",
    "datagram_lost",    "fec_repair",      "replicate",
    "promote",
};
constexpr std::size_t kNumEventTypes =
    sizeof(kEventNames) / sizeof(kEventNames[0]);

// --- Minimal JSON emission. ----------------------------------------------

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

template <typename Int>
void append_int_field(std::string& out, const char* key, Int v) {
  char buf[24];
  auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out += ",\"";
  out += key;
  out += "\":";
  out.append(buf, r.ptr);
}

// Doubles use to_chars' shortest round-trip form: deterministic, compact,
// and bit-exact through from_chars — the JSONL round-trip property test
// pins this.
void append_f64_field(std::string& out, const char* key, double v) {
  char buf[32];
  auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out += ",\"";
  out += key;
  out += "\":";
  out.append(buf, r.ptr);
}

void append_str_field(std::string& out, const char* key, std::string_view v) {
  out += ",\"";
  out += key;
  out += "\":";
  append_escaped(out, v);
}

// --- Minimal JSON scanning (flat objects of the shapes we emit). ---------

class JsonScanner {
 public:
  explicit JsonScanner(std::string_view s) : s_(s) {}

  void expect(char c) {
    skip_ws();
    ADAFL_CHECK_MSG(pos_ < s_.size() && s_[pos_] == c,
                    "trace json: expected '" << c << "' at offset " << pos_);
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      ADAFL_CHECK_MSG(pos_ < s_.size(), "trace json: unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      ADAFL_CHECK_MSG(pos_ < s_.size(), "trace json: bad escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          ADAFL_CHECK_MSG(pos_ + 4 <= s_.size(), "trace json: bad \\u escape");
          unsigned code = 0;
          auto r = std::from_chars(s_.data() + pos_, s_.data() + pos_ + 4,
                                   code, 16);
          ADAFL_CHECK_MSG(r.ptr == s_.data() + pos_ + 4 && code < 0x80,
                          "trace json: unsupported \\u escape");
          pos_ += 4;
          out += static_cast<char>(code);
          break;
        }
        default:
          ADAFL_CHECK_MSG(false, "trace json: unknown escape '\\" << e << "'");
      }
    }
  }

  /// A JSON number token, returned as the raw character span.
  std::string_view number_token() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+'))
      ++pos_;
    ADAFL_CHECK_MSG(pos_ > start, "trace json: expected a number at offset "
                                      << start);
    return s_.substr(start, pos_ - start);
  }

  double f64() {
    const std::string_view tok = number_token();
    double v = 0.0;
    auto r = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    ADAFL_CHECK_MSG(r.ec == std::errc() && r.ptr == tok.data() + tok.size(),
                    "trace json: malformed number '" << std::string(tok)
                                                     << "'");
    return v;
  }

  std::int64_t i64() {
    const std::string_view tok = number_token();
    std::int64_t v = 0;
    auto r = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    ADAFL_CHECK_MSG(r.ec == std::errc() && r.ptr == tok.data() + tok.size(),
                    "trace json: malformed integer '" << std::string(tok)
                                                      << "'");
    return v;
  }

  std::uint64_t u64() {
    const std::string_view tok = number_token();
    std::uint64_t v = 0;
    auto r = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    ADAFL_CHECK_MSG(r.ec == std::errc() && r.ptr == tok.data() + tok.size(),
                    "trace json: malformed unsigned '" << std::string(tok)
                                                       << "'");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* to_string(TraceEventType t) {
  const auto i = static_cast<std::size_t>(t);
  return i < kNumEventTypes ? kEventNames[i] : "unknown";
}

bool trace_event_type_from_string(std::string_view name,
                                  TraceEventType* out) {
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    if (name == kEventNames[i]) {
      *out = static_cast<TraceEventType>(i);
      return true;
    }
  }
  return false;
}

const char* build_git_describe() {
#ifdef ADAFL_GIT_DESCRIBE
  return ADAFL_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

// --- Event factories. ----------------------------------------------------

TraceEvent ev_round_start(int round, double t) {
  TraceEvent e;
  e.type = TraceEventType::kRoundStart;
  e.round = round;
  e.t = t;
  return e;
}

TraceEvent ev_client_selected(int round, int client, double score,
                              double ratio) {
  TraceEvent e;
  e.type = TraceEventType::kClientSelected;
  e.round = round;
  e.client = client;
  e.score = score;
  e.ratio = ratio;
  return e;
}

TraceEvent ev_client_skipped(int round, int client, double score) {
  TraceEvent e;
  e.type = TraceEventType::kClientSkipped;
  e.round = round;
  e.client = client;
  e.score = score;
  return e;
}

TraceEvent ev_update_delivered(int round, int client, std::int64_t bytes,
                               std::int64_t num_examples, double mean_loss) {
  TraceEvent e;
  e.type = TraceEventType::kUpdateDelivered;
  e.round = round;
  e.client = client;
  e.bytes = bytes;
  e.num_examples = num_examples;
  e.mean_loss = mean_loss;
  return e;
}

TraceEvent ev_update_lost(int round, int client) {
  TraceEvent e;
  e.type = TraceEventType::kUpdateLost;
  e.round = round;
  e.client = client;
  return e;
}

TraceEvent ev_round_end(int round, int participants, double mean_loss,
                        bool has_accuracy, double accuracy, double t) {
  TraceEvent e;
  e.type = TraceEventType::kRoundEnd;
  e.round = round;
  e.participants = participants;
  e.mean_loss = mean_loss;
  e.has_accuracy = has_accuracy;
  e.accuracy = has_accuracy ? accuracy : 0.0;
  e.t = t;
  return e;
}

TraceEvent ev_checkpoint(int round, std::string_view path, double t) {
  TraceEvent e;
  e.type = TraceEventType::kCheckpoint;
  e.round = round;
  e.detail = path;
  e.t = t;
  return e;
}

TraceEvent ev_resume(int round, double t) {
  TraceEvent e;
  e.type = TraceEventType::kResume;
  e.round = round;
  e.t = t;
  return e;
}

TraceEvent ev_frame(TraceEventType tx_or_rx, int round, int client,
                    std::string_view msg_type, std::int64_t bytes, double t) {
  ADAFL_CHECK_MSG(tx_or_rx == TraceEventType::kFrameTx ||
                      tx_or_rx == TraceEventType::kFrameRx,
                  "ev_frame: not a frame event type");
  TraceEvent e;
  e.type = tx_or_rx;
  e.round = round;
  e.client = client;
  e.detail = msg_type;
  e.bytes = bytes;
  e.t = t;
  return e;
}

TraceEvent ev_retransmit(int round, int client, std::int64_t bytes,
                         double t) {
  TraceEvent e;
  e.type = TraceEventType::kRetransmit;
  e.round = round;
  e.client = client;
  e.bytes = bytes;
  e.t = t;
  return e;
}

TraceEvent ev_reconnect(int round, int client, double t) {
  TraceEvent e;
  e.type = TraceEventType::kReconnect;
  e.round = round;
  e.client = client;
  e.t = t;
  return e;
}

TraceEvent ev_datagram_lost(int round, int client, std::int64_t bytes,
                            double t) {
  TraceEvent e;
  e.type = TraceEventType::kDatagramLost;
  e.round = round;
  e.client = client;
  e.bytes = bytes;
  e.t = t;
  return e;
}

TraceEvent ev_fec_repair(int round, int client, std::int64_t bytes, double t) {
  TraceEvent e;
  e.type = TraceEventType::kFecRepair;
  e.round = round;
  e.client = client;
  e.bytes = bytes;
  e.t = t;
  return e;
}

TraceEvent ev_replicate(int round, int client, std::int64_t bytes, double t) {
  TraceEvent e;
  e.type = TraceEventType::kReplicate;
  e.round = round;
  e.client = client;
  e.bytes = bytes;
  e.t = t;
  return e;
}

TraceEvent ev_promote(int round, double t) {
  TraceEvent e;
  e.type = TraceEventType::kPromote;
  e.round = round;
  e.t = t;
  return e;
}

// --- Serialization. ------------------------------------------------------

std::string Tracer::format_line(const TraceEvent& e) {
  std::string out;
  out.reserve(96);
  out += "{\"ev\":";
  append_escaped(out, to_string(e.type));
  append_int_field(out, "round", e.round);
  switch (e.type) {
    case TraceEventType::kRoundStart:
      append_f64_field(out, "t", e.t);
      break;
    case TraceEventType::kClientSelected:
      append_int_field(out, "client", e.client);
      append_f64_field(out, "score", e.score);
      append_f64_field(out, "ratio", e.ratio);
      break;
    case TraceEventType::kClientSkipped:
      append_int_field(out, "client", e.client);
      append_f64_field(out, "score", e.score);
      break;
    case TraceEventType::kUpdateDelivered:
      append_int_field(out, "client", e.client);
      append_int_field(out, "bytes", e.bytes);
      append_int_field(out, "examples", e.num_examples);
      append_f64_field(out, "loss", e.mean_loss);
      break;
    case TraceEventType::kUpdateLost:
      append_int_field(out, "client", e.client);
      break;
    case TraceEventType::kRoundEnd:
      append_int_field(out, "participants", e.participants);
      append_f64_field(out, "loss", e.mean_loss);
      if (e.has_accuracy) append_f64_field(out, "accuracy", e.accuracy);
      append_f64_field(out, "t", e.t);
      break;
    case TraceEventType::kCheckpoint:
      append_str_field(out, "path", e.detail);
      append_f64_field(out, "t", e.t);
      break;
    case TraceEventType::kResume:
      append_f64_field(out, "t", e.t);
      break;
    case TraceEventType::kFrameTx:
    case TraceEventType::kFrameRx:
      append_int_field(out, "client", e.client);
      append_str_field(out, "msg", e.detail);
      append_int_field(out, "bytes", e.bytes);
      append_f64_field(out, "t", e.t);
      break;
    case TraceEventType::kRetransmit:
    case TraceEventType::kDatagramLost:
    case TraceEventType::kFecRepair:
    case TraceEventType::kReplicate:
      append_int_field(out, "client", e.client);
      append_int_field(out, "bytes", e.bytes);
      append_f64_field(out, "t", e.t);
      break;
    case TraceEventType::kReconnect:
      append_int_field(out, "client", e.client);
      append_f64_field(out, "t", e.t);
      break;
    case TraceEventType::kPromote:
      append_f64_field(out, "t", e.t);
      break;
  }
  out += '}';
  return out;
}

TraceEvent Tracer::parse_line(std::string_view line) {
  JsonScanner js(line);
  TraceEvent e;
  bool saw_type = false;
  js.expect('{');
  if (!js.try_consume('}')) {
    do {
      const std::string key = js.string();
      js.expect(':');
      if (key == "ev") {
        const std::string name = js.string();
        ADAFL_CHECK_MSG(trace_event_type_from_string(name, &e.type),
                        "trace: unknown event type '" << name << "'");
        saw_type = true;
      } else if (key == "round") {
        e.round = static_cast<std::int32_t>(js.i64());
      } else if (key == "client") {
        e.client = static_cast<std::int32_t>(js.i64());
      } else if (key == "score") {
        e.score = js.f64();
      } else if (key == "ratio") {
        e.ratio = js.f64();
      } else if (key == "bytes") {
        e.bytes = js.i64();
      } else if (key == "examples") {
        e.num_examples = js.i64();
      } else if (key == "loss") {
        e.mean_loss = js.f64();
      } else if (key == "accuracy") {
        e.accuracy = js.f64();
        e.has_accuracy = true;
      } else if (key == "participants") {
        e.participants = static_cast<std::int32_t>(js.i64());
      } else if (key == "t") {
        e.t = js.f64();
      } else if (key == "path" || key == "msg") {
        e.detail = js.string();
      } else {
        ADAFL_CHECK_MSG(false, "trace: unknown event field '" << key << "'");
      }
    } while (js.try_consume(','));
    js.expect('}');
  }
  ADAFL_CHECK_MSG(saw_type, "trace: event line without \"ev\" field");
  ADAFL_CHECK_MSG(js.at_end(), "trace: trailing bytes after event object");
  return e;
}

std::string Tracer::format_manifest(const RunManifest& m) {
  std::string out;
  out.reserve(192);
  out += "{\"ev\":\"manifest\",\"version\":1";
  append_str_field(out, "producer", m.producer);
  append_str_field(out, "algo", m.algo);
  append_int_field(out, "seed", m.seed);
  append_int_field(out, "rounds", m.rounds);
  append_int_field(out, "clients", m.clients);
  append_int_field(out, "start_round", m.start_round);
  append_str_field(out, "git", m.git);
  out += ",\"config\":{";
  bool first = true;
  for (const auto& [k, v] : m.config) {  // std::map: sorted, deterministic
    if (!first) out += ',';
    first = false;
    append_escaped(out, k);
    out += ':';
    append_escaped(out, v);
  }
  out += "}}";
  return out;
}

RunManifest Tracer::parse_manifest(std::string_view line) {
  JsonScanner js(line);
  RunManifest m;
  bool is_manifest = false;
  js.expect('{');
  do {
    const std::string key = js.string();
    js.expect(':');
    if (key == "ev") {
      const std::string name = js.string();
      ADAFL_CHECK_MSG(name == "manifest",
                      "trace: first line is '" << name << "', not a manifest");
      is_manifest = true;
    } else if (key == "version") {
      const std::int64_t v = js.i64();
      ADAFL_CHECK_MSG(v == 1, "trace: unsupported manifest version " << v);
    } else if (key == "producer") {
      m.producer = js.string();
    } else if (key == "algo") {
      m.algo = js.string();
    } else if (key == "seed") {
      m.seed = js.u64();
    } else if (key == "rounds") {
      m.rounds = static_cast<std::int32_t>(js.i64());
    } else if (key == "clients") {
      m.clients = static_cast<std::int32_t>(js.i64());
    } else if (key == "start_round") {
      m.start_round = static_cast<std::int32_t>(js.i64());
    } else if (key == "git") {
      m.git = js.string();
    } else if (key == "config") {
      js.expect('{');
      if (!js.try_consume('}')) {
        do {
          std::string k = js.string();
          js.expect(':');
          m.config[std::move(k)] = js.string();
        } while (js.try_consume(','));
        js.expect('}');
      }
    } else {
      ADAFL_CHECK_MSG(false, "trace: unknown manifest field '" << key << "'");
    }
  } while (js.try_consume(','));
  js.expect('}');
  ADAFL_CHECK_MSG(is_manifest, "trace: line without \"ev\":\"manifest\"");
  ADAFL_CHECK_MSG(js.at_end(), "trace: trailing bytes after manifest");
  return m;
}

// --- Tracer lifecycle. ---------------------------------------------------

Tracer::~Tracer() { close(); }

void Tracer::open(const std::string& path, RunManifest manifest) {
  close();
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr)
    throw std::runtime_error("trace: cannot open '" + path +
                             "' for writing");
  manifest_ = std::move(manifest);
  if (manifest_.git.empty()) manifest_.git = build_git_describe();
  manifest_written_ = false;
  buf_.clear();
  buf_.reserve(kInitialEventCapacity);
  recorded_ = 0;
  enabled_ = true;
}

void Tracer::set_start_round(int round) {
  if (!enabled_) return;
  ADAFL_CHECK_MSG(!manifest_written_,
                  "trace: set_start_round after the manifest was written");
  manifest_.start_round = round;
}

void Tracer::record(const TraceEvent& e) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(trace_mutex());
  buf_.push_back(e);
  ++recorded_;
  if (registry_ != nullptr) {
    registry_->counter(std::string("trace.events.") + to_string(e.type))
        .add(1);
    if (e.type == TraceEventType::kUpdateDelivered)
      registry_->histogram("trace.update_bytes")
          .observe(static_cast<double>(e.bytes));
  }
}

void Tracer::flush() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(trace_mutex());
  if (!manifest_written_) {
    const std::string m = format_manifest(manifest_);
    std::fwrite(m.data(), 1, m.size(), file_);
    std::fputc('\n', file_);
    manifest_written_ = true;
  }
  for (const TraceEvent& e : buf_) {
    line_ = format_line(e);
    std::fwrite(line_.data(), 1, line_.size(), file_);
    std::fputc('\n', file_);
  }
  buf_.clear();
  std::fflush(file_);
}

void Tracer::close() {
  if (!enabled_) return;
  flush();
  std::fclose(file_);
  file_ = nullptr;
  enabled_ = false;
}

ParsedTrace read_trace_file(const std::string& path,
                            bool tolerate_partial_tail) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot read '" + path + "'");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  ParsedTrace out;
  std::size_t pos = 0;
  bool first = true;
  while (pos < content.size()) {
    std::size_t nl = content.find('\n', pos);
    const bool complete = nl != std::string::npos;
    if (!complete) nl = content.size();
    std::string_view line(content.data() + pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    try {
      if (first) {
        out.manifest = Tracer::parse_manifest(line);
        first = false;
      } else {
        out.events.push_back(Tracer::parse_line(line));
      }
    } catch (const CheckError&) {
      // A line cut short mid-write can only be the last one.
      if (tolerate_partial_tail && !complete && pos >= content.size() &&
          !first)
        break;
      throw;
    }
  }
  ADAFL_CHECK_MSG(!first, "trace: '" << path << "' has no manifest line");
  return out;
}

}  // namespace adafl::metrics
