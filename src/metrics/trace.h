// Structured run tracing: an append-only JSONL event stream that makes
// AdaFL's per-round, per-client decisions — utility scores, selections,
// adaptive DGC ratios, delivered/lost updates, bytes on the wire —
// machine-readable and therefore testable.
//
// A trace file is:
//   line 1    a run manifest (producer, algorithm, seed, config, git id)
//   line 2+   one event per line, each a flat JSON object
//
// Two kinds of events exist:
//   * semantic events  — round_start, client_selected, client_skipped,
//     update_delivered, update_lost, round_end, checkpoint, resume. These
//     describe the *algorithm's* decisions and are emitted identically by
//     the simulator and the deployed server (selection and aggregation
//     events come from the shared core::AdaFlServerCore), so a deployed run
//     must produce the same semantic stream as its simulated twin
//     (scripts/trace_diff.py + tests/test_trace_equivalence.cpp).
//   * transport events — frame_tx, frame_rx, retransmit, reconnect, the
//     datagram-path events datagram_lost / fec_repair, and the replication
//     events replicate / promote. These only exist on the deployed path and
//     must be *explicitly* ignored when diffing against a simulator trace.
//
// Determinism contract: every field except `t` (seconds; simulated clock in
// the simulator, wall clock in a deployment) is deterministic, so two
// same-seed simulator runs produce byte-identical trace files. Doubles are
// formatted with std::to_chars shortest round-trip form and parse back
// bit-exactly.
//
// Cost contract: a disabled Tracer is one branch per record() call. An
// enabled one buffers events in a pre-sized vector and only formats/writes
// at flush() (round boundaries), touching no tensor storage — the PR-4
// steady-state zero-tensor-allocation guarantee holds with tracing on
// (tests/test_zero_alloc.cpp pins this).
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace adafl::metrics {

class Registry;

/// Event vocabulary. Semantic events first, transport events after
/// kFrameTx; to_string names are the JSON "ev" values.
enum class TraceEventType : std::uint8_t {
  kRoundStart = 0,
  kClientSelected,
  kClientSkipped,
  kUpdateDelivered,
  kUpdateLost,
  kRoundEnd,
  kCheckpoint,
  kResume,
  kFrameTx,
  kFrameRx,
  kRetransmit,
  kReconnect,
  kDatagramLost,  ///< UDP transport: a datagram never arrived
  kFecRepair,     ///< UDP transport: lost datagrams rebuilt from parity
  kReplicate,     ///< replication: a checkpoint image shipped to a standby
  kPromote,       ///< replication: standby promoted itself to primary
};

const char* to_string(TraceEventType t);
/// Inverse of to_string. Returns false for unknown names.
bool trace_event_type_from_string(std::string_view name, TraceEventType* out);

/// One trace event. Only the fields meaningful for `type` are serialized
/// (see the ev_* factories); everything else round-trips as its default.
struct TraceEvent {
  TraceEventType type = TraceEventType::kRoundStart;
  std::int32_t round = 0;
  std::int32_t client = -1;      ///< -1 = not client-scoped
  double score = 0.0;            ///< client_selected / client_skipped
  double ratio = 0.0;            ///< client_selected: assigned DGC ratio
  std::int64_t bytes = 0;        ///< update/frame/retransmit payload bytes
  std::int64_t num_examples = 0; ///< update_delivered: FedAvg weight
  double mean_loss = 0.0;        ///< update_delivered / round_end
  double accuracy = 0.0;         ///< round_end (eval rounds only)
  bool has_accuracy = false;     ///< round_end: eval ran this round
  std::int32_t participants = 0; ///< round_end: updates aggregated
  double t = 0.0;                ///< seconds; the one wall-clock-ish field
  std::string detail;            ///< frame_*: message type; checkpoint: path

  bool operator==(const TraceEvent& other) const = default;
};

// --- Event factories (the only supported way to build events). -----------

TraceEvent ev_round_start(int round, double t);
TraceEvent ev_client_selected(int round, int client, double score,
                              double ratio);
TraceEvent ev_client_skipped(int round, int client, double score);
TraceEvent ev_update_delivered(int round, int client, std::int64_t bytes,
                               std::int64_t num_examples, double mean_loss);
TraceEvent ev_update_lost(int round, int client);
TraceEvent ev_round_end(int round, int participants, double mean_loss,
                        bool has_accuracy, double accuracy, double t);
TraceEvent ev_checkpoint(int round, std::string_view path, double t);
TraceEvent ev_resume(int round, double t);
TraceEvent ev_frame(TraceEventType tx_or_rx, int round, int client,
                    std::string_view msg_type, std::int64_t bytes, double t);
TraceEvent ev_retransmit(int round, int client, std::int64_t bytes, double t);
TraceEvent ev_reconnect(int round, int client, double t);
TraceEvent ev_datagram_lost(int round, int client, std::int64_t bytes,
                            double t);
/// `bytes` = payload bytes reconstructed from parity for one generation.
TraceEvent ev_fec_repair(int round, int client, std::int64_t bytes, double t);
/// `round` = checkpoint next_round; `client` = standby slot; `bytes` = image.
TraceEvent ev_replicate(int round, int client, std::int64_t bytes, double t);
/// `round` = first round the promoted standby will run.
TraceEvent ev_promote(int round, double t);

/// The trace header: everything needed to interpret (and re-run) the trace.
struct RunManifest {
  std::string producer;  ///< "flsim" | "flserver" | "flclient" | test name
  std::string algo;      ///< e.g. "adafl-sync"
  std::uint64_t seed = 0;
  std::int32_t rounds = 0;   ///< 0 = duration-bounded (async) run
  std::int32_t clients = 0;
  std::int32_t start_round = 1;  ///< first round this trace covers (resume)
  std::string git;           ///< build git describe (ADAFL_GIT_DESCRIBE)
  std::map<std::string, std::string> config;  ///< opaque task kv config

  bool operator==(const RunManifest& other) const = default;
};

/// The git id baked into this build ("unknown" outside a git checkout).
const char* build_git_describe();

/// Append-only JSONL trace writer. Disabled by default; open() enables.
/// record() is safe from multiple threads; flush()/close() are not.
class Tracer {
 public:
  Tracer() = default;
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens `path` for writing and arms the tracer. The manifest line is
  /// written lazily on the first flush, so set_start_round() may still be
  /// called after open (a resumed server learns its start round late).
  /// Throws std::runtime_error if the file cannot be created.
  void open(const std::string& path, RunManifest manifest);

  bool enabled() const { return enabled_; }

  /// Resume support: records the first round this trace covers.
  void set_start_round(int round);

  /// Optional: count events and histogram update sizes into `reg`
  /// (counters "trace.events.<ev>", histogram "trace.update_bytes").
  void attach_registry(Registry* reg) { registry_ = reg; }

  /// Buffers one event. No-op (single branch) while disabled.
  void record(const TraceEvent& e);

  /// Formats and writes all buffered events. Call at round boundaries.
  void flush();

  /// flush() + close the file; the tracer returns to disabled.
  void close();

  /// Number of events recorded since open() (enabled tracers only).
  std::uint64_t events_recorded() const { return recorded_; }

  // --- Serialization (exposed for tests and offline tooling). ------------

  /// One event as its JSONL line (no trailing newline).
  static std::string format_line(const TraceEvent& e);
  /// Parses a line produced by format_line. Throws CheckError on anything
  /// malformed or unknown.
  static TraceEvent parse_line(std::string_view line);

  static std::string format_manifest(const RunManifest& m);
  static RunManifest parse_manifest(std::string_view line);

 private:
  bool enabled_ = false;
  bool manifest_written_ = false;
  std::FILE* file_ = nullptr;
  RunManifest manifest_;
  std::vector<TraceEvent> buf_;  ///< pre-sized at open(); reused after flush
  std::string line_;             ///< reused formatting buffer
  Registry* registry_ = nullptr;
  std::uint64_t recorded_ = 0;
};

/// Reads a whole trace file: manifest + events. Throws CheckError /
/// std::runtime_error on malformed input. With `tolerate_partial_tail`, a
/// final line cut short mid-write (SIGKILL during flush) is dropped instead
/// of rejected — the crash-recovery stitching case.
struct ParsedTrace {
  RunManifest manifest;
  std::vector<TraceEvent> events;
};
ParsedTrace read_trace_file(const std::string& path,
                            bool tolerate_partial_tail = false);

}  // namespace adafl::metrics
