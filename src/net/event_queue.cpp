#include "net/event_queue.h"

namespace adafl::net {

void EventQueue::schedule(double time, Callback fn) {
  ADAFL_CHECK_MSG(time >= now_, "EventQueue::schedule: time "
                                    << time << " is before now " << now_);
  ADAFL_CHECK_MSG(fn != nullptr, "EventQueue::schedule: null callback");
  heap_.push(Entry{time, seq_++, std::move(fn)});
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; move the callback out via a copy of
  // the entry (callbacks are cheap to move, and top is popped immediately).
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = e.time;
  e.fn();
  return true;
}

void EventQueue::run_until(double t_end) {
  ADAFL_CHECK_MSG(t_end >= now_, "EventQueue::run_until: t_end in the past");
  while (!heap_.empty() && heap_.top().time <= t_end) run_next();
  now_ = std::max(now_, t_end);
}

void EventQueue::run_all() {
  while (run_next()) {
  }
}

}  // namespace adafl::net
