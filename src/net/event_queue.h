// Discrete-event scheduler driving the asynchronous FL simulations.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "tensor/check.h"

namespace adafl::net {

/// Minimal discrete-event queue. Events fire in (time, insertion-order); a
/// fired event may schedule further events. Time never moves backwards.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute simulated time `time` (>= now()).
  void schedule(double time, Callback fn);

  /// Schedules `fn` `delay` seconds from now.
  void schedule_in(double delay, Callback fn) {
    ADAFL_CHECK_MSG(delay >= 0.0, "EventQueue: negative delay");
    schedule(now_ + delay, std::move(fn));
  }

  /// Pops and runs the earliest event. Returns false if the queue is empty.
  bool run_next();

  /// Runs events until the queue empties or the next event is after `t_end`
  /// (that event stays queued). Sets now() to min(t_end, last event time).
  void run_until(double t_end);

  /// Runs everything (queue must not self-sustain forever).
  void run_all();

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among equal times
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace adafl::net
