#include "net/fec/gf256.h"

namespace adafl::net::fec {

namespace {

constexpr GfTables build_tables() {
  GfTables t{};
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kGfPoly;
  }
  // Double the antilog table so gf_mul's index log(a) + log(b) (< 510)
  // never needs `% 255`; the two spare slots stay zero and are never read.
  for (int i = 255; i < 510; ++i) t.exp[i] = t.exp[i - 255];
  t.log[0] = 0;  // log(0) is undefined; callers guard, this is belt
  return t;
}

}  // namespace

constinit const GfTables kGf = build_tables();

std::uint8_t gf_mul_slow(std::uint8_t a, std::uint8_t b) {
  std::uint16_t acc = 0;
  std::uint16_t aa = a;
  for (int bit = 0; bit < 8; ++bit) {
    if (b & (1u << bit)) acc ^= aa << bit;
  }
  // Reduce the 15-bit carryless product modulo the field polynomial.
  for (int bit = 14; bit >= 8; --bit) {
    if (acc & (1u << bit)) acc ^= kGfPoly << (bit - 8);
  }
  return static_cast<std::uint8_t>(acc);
}

}  // namespace adafl::net::fec
