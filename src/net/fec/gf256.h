// GF(256) arithmetic for the Reed-Solomon FEC layer.
//
// The field is GF(2^8) with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D) and generator alpha = 2 — the classic
// CCSDS/DVB construction. Multiplication and division go through log/antilog
// tables built once at compile time; the exp table is doubled so
// exp[log a + log b] never needs a modular reduction.
//
// gf_mul_slow is the table-free shift-and-add reference: tests cross-check
// every (a, b) pair against it, so a corrupted table can never hide.
#pragma once

#include <cstdint>

#include "tensor/check.h"

namespace adafl::net::fec {

/// The field's primitive polynomial (with the x^8 term), used by the slow
/// reference and the table builder alike.
constexpr std::uint16_t kGfPoly = 0x11D;

struct GfTables {
  std::uint8_t exp[512];  ///< exp[i] = alpha^i; doubled so i < 510 is valid
  std::uint8_t log[256];  ///< log[a] for a != 0; log[0] is unused (0)
};

/// Compile-time-built log/antilog tables.
extern const GfTables kGf;

inline std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return kGf.exp[kGf.log[a] + kGf.log[b]];
}

/// Division a / b. Throws CheckError on b == 0.
inline std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  ADAFL_CHECK_MSG(b != 0, "gf256: division by zero");
  if (a == 0) return 0;
  return kGf.exp[kGf.log[a] + 255 - kGf.log[b]];
}

/// Multiplicative inverse. Throws CheckError on a == 0.
inline std::uint8_t gf_inv(std::uint8_t a) {
  ADAFL_CHECK_MSG(a != 0, "gf256: inverse of zero");
  return kGf.exp[255 - kGf.log[a]];
}

/// alpha^i for i in [0, 510).
inline std::uint8_t gf_exp(int i) { return kGf.exp[i]; }

/// log_alpha(a) in [0, 255) for a != 0. Throws CheckError on a == 0.
inline int gf_log(std::uint8_t a) {
  ADAFL_CHECK_MSG(a != 0, "gf256: log of zero");
  return kGf.log[a];
}

/// a^e for any non-negative exponent (e is reduced mod 255).
inline std::uint8_t gf_pow(std::uint8_t a, int e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  return kGf.exp[(kGf.log[a] * (e % 255)) % 255];
}

/// Table-free reference multiply (Russian-peasant with 0x11D reduction).
/// Slow by design; exists so tests can validate the tables exhaustively.
std::uint8_t gf_mul_slow(std::uint8_t a, std::uint8_t b);

}  // namespace adafl::net::fec
