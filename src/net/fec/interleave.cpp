#include "net/fec/interleave.h"

#include <cstring>

#include "tensor/check.h"

namespace adafl::net::fec {

void interleave(std::span<const std::uint8_t> src, int k,
                std::size_t shard_len, std::uint8_t* const* shards) {
  ADAFL_CHECK_MSG(k >= 1, "interleave: k < 1");
  ADAFL_CHECK_MSG(static_cast<std::size_t>(k) * shard_len >= src.size(),
                  "interleave: " << src.size() << " bytes exceed " << k
                                 << " shards of " << shard_len);
  for (int s = 0; s < k; ++s)
    std::memset(shards[s], 0, shard_len);
  for (std::size_t b = 0; b < src.size(); ++b)
    shards[b % static_cast<std::size_t>(k)][b / static_cast<std::size_t>(k)] =
        src[b];
}

void deinterleave(const std::uint8_t* const* shards, int k,
                  std::size_t shard_len, std::span<std::uint8_t> dst) {
  ADAFL_CHECK_MSG(k >= 1, "deinterleave: k < 1");
  ADAFL_CHECK_MSG(static_cast<std::size_t>(k) * shard_len >= dst.size(),
                  "deinterleave: " << dst.size() << " bytes exceed " << k
                                   << " shards of " << shard_len);
  for (std::size_t b = 0; b < dst.size(); ++b)
    dst[b] =
        shards[b % static_cast<std::size_t>(k)][b / static_cast<std::size_t>(k)];
}

}  // namespace adafl::net::fec
