// Block interleaver for FEC generations.
//
// A generation's frame bytes are written across its k data shards
// column-major: byte b lands in shard (b mod k) at offset (b / k). A
// contiguous region of the frame is therefore spread evenly over all k
// datagrams of the generation instead of filling one datagram at a time —
// the classic rectangular block interleave that turns a burst of adjacent
// byte damage into isolated per-codeword symbols. (Whole-datagram loss is
// already one erasure per RS column either way; the interleave is what
// keeps *partial* generations and the unrecoverable-discard path from ever
// concentrating a frame region in a single datagram.)
//
// Shard tails past the last frame byte are zero-filled; deinterleave() is
// the exact inverse over the first `len` bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace adafl::net::fec {

/// Scatters src (len bytes) into k shards of shard_len bytes each
/// (k * shard_len >= len required; checked). Pads shard tails with zeros.
void interleave(std::span<const std::uint8_t> src, int k,
                std::size_t shard_len, std::uint8_t* const* shards);

/// Gathers the first dst.size() bytes back out of the shards; exact
/// inverse of interleave() for dst.size() == original len.
void deinterleave(const std::uint8_t* const* shards, int k,
                  std::size_t shard_len, std::span<std::uint8_t> dst);

}  // namespace adafl::net::fec
