#include "net/fec/rs.h"

#include <algorithm>

#include "net/fec/gf256.h"
#include "tensor/check.h"

namespace adafl::net::fec {

namespace {

// Decoder polynomials are ascending: p[d] is the coefficient of x^d.
using Poly = std::vector<std::uint8_t>;

Poly poly_mul(const Poly& a, const Poly& b) {
  Poly out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < b.size(); ++j)
      out[i + j] ^= gf_mul(a[i], b[j]);
  }
  return out;
}

std::uint8_t poly_eval(const Poly& p, std::uint8_t x) {
  // Horner from the top coefficient down.
  std::uint8_t acc = 0;
  for (std::size_t i = p.size(); i-- > 0;) acc = gf_mul(acc, x) ^ p[i];
  return acc;
}

/// Formal derivative in characteristic 2: even-degree terms vanish.
Poly poly_derivative(const Poly& p) {
  Poly out(p.size() > 1 ? p.size() - 1 : 1, 0);
  for (std::size_t d = 1; d < p.size(); d += 2) out[d - 1] = p[d];
  return out;
}

int poly_degree(const Poly& p) {
  for (std::size_t i = p.size(); i-- > 0;)
    if (p[i] != 0) return static_cast<int>(i);
  return 0;
}

}  // namespace

RsCode::RsCode(int n, int k) : n_(n), k_(k) {
  ADAFL_CHECK_MSG(k >= 1 && k <= n && n <= kRsMaxSymbols,
                  "RsCode: invalid (n=" << n << ", k=" << k << ")");
  // g(x) = prod_{j=0}^{r-1} (x - alpha^j), built descending (gen_[0] = 1).
  gen_ = {1};
  for (int j = 0; j < n_ - k_; ++j) {
    std::vector<std::uint8_t> next(gen_.size() + 1, 0);
    const std::uint8_t root = gf_exp(j);
    for (std::size_t i = 0; i < gen_.size(); ++i) {
      next[i] ^= gen_[i];                     // x * gen
      next[i + 1] ^= gf_mul(gen_[i], root);   // alpha^j * gen
    }
    gen_ = std::move(next);
  }
}

void RsCode::encode(std::span<const std::uint8_t> data,
                    std::span<std::uint8_t> parity) const {
  const int r = n_ - k_;
  ADAFL_CHECK_MSG(static_cast<int>(data.size()) == k_ &&
                      static_cast<int>(parity.size()) == r,
                  "RsCode::encode: span sizes disagree with (n, k)");
  // Synthetic division of m(x) * x^r by g(x); the remainder is the parity.
  std::fill(parity.begin(), parity.end(), std::uint8_t{0});
  if (r == 0) return;
  for (int i = 0; i < k_; ++i) {
    const std::uint8_t coef = data[static_cast<std::size_t>(i)] ^ parity[0];
    // Shift the remainder register left one symbol...
    for (int j = 0; j + 1 < r; ++j) parity[j] = parity[j + 1];
    parity[r - 1] = 0;
    // ...and fold coef * (g - x^r) back in.
    if (coef != 0)
      for (int j = 0; j < r; ++j)
        parity[j] ^= gf_mul(gen_[static_cast<std::size_t>(j + 1)], coef);
  }
}

bool RsCode::decode(std::span<std::uint8_t> codeword,
                    std::span<const int> erasures) const {
  const int r = parity();
  ADAFL_CHECK_MSG(static_cast<int>(codeword.size()) == n_,
                  "RsCode::decode: codeword size != n");
  const int e = static_cast<int>(erasures.size());
  if (e > r) return false;
  for (int pos : erasures)
    ADAFL_CHECK_MSG(pos >= 0 && pos < n_,
                    "RsCode::decode: erasure position out of range");
  if (r == 0) return true;

  // Syndromes S_j = C(alpha^j). All zero (and nothing erased) => intact.
  Poly synd(static_cast<std::size_t>(r), 0);
  bool any = false;
  for (int j = 0; j < r; ++j) {
    const std::uint8_t a = gf_exp(j);
    std::uint8_t acc = 0;
    for (int i = 0; i < n_; ++i)
      acc = gf_mul(acc, a) ^ codeword[static_cast<std::size_t>(i)];
    synd[static_cast<std::size_t>(j)] = acc;
    any = any || acc != 0;
  }
  if (!any && e == 0) return true;

  // Erasure locator Gamma(x) = prod (1 - X_i x), X_i = alpha^{n-1-pos}.
  Poly gamma = {1};
  for (int pos : erasures) {
    const std::uint8_t x = gf_exp(n_ - 1 - pos);
    gamma = poly_mul(gamma, Poly{1, x});
  }

  // Forney syndromes T = S * Gamma mod x^r: for j >= e the erased symbols'
  // contribution cancels, leaving a pure error sequence for Berlekamp-
  // Massey to model.
  Poly t = poly_mul(synd, gamma);
  t.resize(static_cast<std::size_t>(r), 0);

  // Berlekamp-Massey over t[e..r-1] finds the error locator Lambda.
  Poly lambda = {1};
  Poly prev = {1};
  int L = 0;
  int m = 1;
  std::uint8_t b = 1;
  for (int idx = 0; idx < r - e; ++idx) {
    const int j = e + idx;
    std::uint8_t delta = t[static_cast<std::size_t>(j)];
    for (int i = 1; i <= L && i < static_cast<int>(lambda.size()); ++i)
      delta ^= gf_mul(lambda[static_cast<std::size_t>(i)],
                      t[static_cast<std::size_t>(j - i)]);
    if (delta == 0) {
      ++m;
      continue;
    }
    if (2 * L <= idx) {
      Poly tmp = lambda;
      const std::uint8_t scale = gf_div(delta, b);
      lambda.resize(std::max(lambda.size(), prev.size() + m), 0);
      for (std::size_t i = 0; i < prev.size(); ++i)
        lambda[i + static_cast<std::size_t>(m)] ^= gf_mul(scale, prev[i]);
      L = idx + 1 - L;
      prev = std::move(tmp);
      b = delta;
      m = 1;
    } else {
      const std::uint8_t scale = gf_div(delta, b);
      lambda.resize(std::max(lambda.size(), prev.size() + m), 0);
      for (std::size_t i = 0; i < prev.size(); ++i)
        lambda[i + static_cast<std::size_t>(m)] ^= gf_mul(scale, prev[i]);
      ++m;
    }
  }
  if (2 * L > r - e) return false;  // more errors than the budget covers

  // Errata locator Psi = Lambda * Gamma; Chien search for its roots over
  // the shortened positions. Every root X_i^{-1} marks errata position i.
  Poly psi = poly_mul(lambda, gamma);
  const int psi_deg = poly_degree(psi);
  std::vector<int> errata;
  errata.reserve(static_cast<std::size_t>(psi_deg));
  for (int i = 0; i < n_; ++i) {
    const std::uint8_t x_inv = gf_inv(gf_exp(n_ - 1 - i));
    if (poly_eval(psi, x_inv) == 0) errata.push_back(i);
  }
  if (static_cast<int>(errata.size()) != psi_deg) return false;

  // Forney: e_i = X_i * Omega(X_i^{-1}) / Psi'(X_i^{-1}),
  // Omega = S * Psi mod x^r.
  Poly omega = poly_mul(synd, psi);
  omega.resize(static_cast<std::size_t>(r), 0);
  const Poly psi_prime = poly_derivative(psi);
  std::vector<std::pair<int, std::uint8_t>> fixes;
  fixes.reserve(errata.size());
  for (int i : errata) {
    const std::uint8_t x = gf_exp(n_ - 1 - i);
    const std::uint8_t x_inv = gf_inv(x);
    const std::uint8_t denom = poly_eval(psi_prime, x_inv);
    if (denom == 0) return false;  // inconsistent locator; refuse to guess
    const std::uint8_t mag = gf_mul(x, gf_div(poly_eval(omega, x_inv), denom));
    fixes.emplace_back(i, mag);
  }

  for (const auto& [pos, mag] : fixes)
    codeword[static_cast<std::size_t>(pos)] ^= mag;

  // Verify: a successful repair must leave every syndrome zero. If not,
  // undo — the caller gets its original bytes back, not a plausible fake.
  for (int j = 0; j < r; ++j) {
    const std::uint8_t a = gf_exp(j);
    std::uint8_t acc = 0;
    for (int i = 0; i < n_; ++i)
      acc = gf_mul(acc, a) ^ codeword[static_cast<std::size_t>(i)];
    if (acc != 0) {
      for (const auto& [pos, mag] : fixes)
        codeword[static_cast<std::size_t>(pos)] ^= mag;
      return false;
    }
  }
  return true;
}

void RsCode::encode_shards(const std::uint8_t* const* data,
                           std::uint8_t* const* parity,
                           std::size_t shard_len) const {
  const int r = n_ - k_;
  std::uint8_t cw_data[kRsMaxSymbols];
  std::uint8_t cw_par[kRsMaxSymbols];
  for (std::size_t t = 0; t < shard_len; ++t) {
    for (int i = 0; i < k_; ++i) cw_data[i] = data[i][t];
    encode({cw_data, static_cast<std::size_t>(k_)},
           {cw_par, static_cast<std::size_t>(r)});
    for (int j = 0; j < r; ++j) parity[j][t] = cw_par[j];
  }
}

bool RsCode::reconstruct_shards(std::uint8_t* const* shards,
                                const std::vector<bool>& present,
                                std::size_t shard_len) const {
  ADAFL_CHECK_MSG(static_cast<int>(present.size()) == n_,
                  "reconstruct_shards: present bitmap size != n");
  std::vector<int> erasures;
  for (int i = 0; i < n_; ++i)
    if (!present[static_cast<std::size_t>(i)]) erasures.push_back(i);
  if (static_cast<int>(erasures.size()) > parity()) return false;
  if (erasures.empty()) return true;

  // Decode column-by-column into scratch; only commit if every column
  // repairs, so a failed generation never leaks half-written shards.
  std::vector<std::uint8_t> repaired(erasures.size() * shard_len);
  std::uint8_t cw[kRsMaxSymbols];
  for (std::size_t t = 0; t < shard_len; ++t) {
    for (int i = 0; i < n_; ++i)
      cw[i] = present[static_cast<std::size_t>(i)] ? shards[i][t] : 0;
    if (!decode({cw, static_cast<std::size_t>(n_)}, erasures)) return false;
    for (std::size_t j = 0; j < erasures.size(); ++j)
      repaired[j * shard_len + t] = cw[erasures[j]];
  }
  for (std::size_t j = 0; j < erasures.size(); ++j)
    std::copy_n(repaired.data() + j * shard_len, shard_len,
                shards[erasures[j]]);
  return true;
}

}  // namespace adafl::net::fec
