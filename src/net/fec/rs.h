// Systematic Reed-Solomon RS(n, k) over GF(256), n = k + r <= 255.
//
// A codeword is [d_0 .. d_{k-1}, p_0 .. p_{r-1}]: the data symbols pass
// through untouched (systematic) and r parity symbols follow. Position i
// holds the coefficient of x^{n-1-i}, so the generator polynomial
// g(x) = prod_{j=0}^{r-1} (x - alpha^j) divides every valid codeword and the
// syndromes S_j = C(alpha^j) of an intact codeword are all zero.
//
// The decoder is the full errata pipeline: syndrome computation, erasure
// locator, Berlekamp-Massey over the Forney syndromes for unknown error
// positions, Chien search for the errata locator's roots, and the Forney
// algorithm for magnitudes. It corrects e erasures plus v errors whenever
// e + 2v <= r; the datagram transport uses the pure-erasure case (lost
// datagrams have known positions), where the full budget of r losses per
// generation is repairable.
//
// Failure is loud and safe: decode() returns false (and leaves the codeword
// bytes untouched) when the errata exceed the budget or the corrected word
// still has nonzero syndromes — a failed repair can never hand corrupted
// bytes onward.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace adafl::net::fec {

/// Largest codeword the field supports.
constexpr int kRsMaxSymbols = 255;

class RsCode {
 public:
  /// n total symbols, k of them data. Throws CheckError unless
  /// 1 <= k <= n <= 255.
  RsCode(int n, int k);

  int n() const { return n_; }
  int k() const { return k_; }
  int parity() const { return n_ - k_; }

  /// Systematic encode: data.size() == k, parity.size() == n - k.
  void encode(std::span<const std::uint8_t> data,
              std::span<std::uint8_t> parity) const;

  /// Corrects `codeword` (size n) in place given the known-bad positions
  /// `erasures` (codeword indices, each in [0, n)); unknown errors beyond
  /// the erasure list are located via Berlekamp-Massey. Returns true on
  /// success. On failure the codeword is left exactly as passed in.
  bool decode(std::span<std::uint8_t> codeword,
              std::span<const int> erasures) const;

  // --- Shard-level convenience (the FEC-generation shape). ---------------
  // A generation is k equal-length data shards plus r parity shards; byte
  // column t across the shards forms one RS codeword, so losing a shard is
  // one erasure in every column's codeword.

  /// data[i] / parity[j] each point at shard_len bytes.
  void encode_shards(const std::uint8_t* const* data,
                     std::uint8_t* const* parity, std::size_t shard_len) const;

  /// shards[0..n): data then parity; present[i] says shard i arrived.
  /// Reconstructs every missing shard in place (missing entries must point
  /// at writable shard_len-byte buffers). Returns false — touching nothing —
  /// when more than r shards are missing or any column fails to decode.
  bool reconstruct_shards(std::uint8_t* const* shards,
                          const std::vector<bool>& present,
                          std::size_t shard_len) const;

 private:
  int n_;
  int k_;
  std::vector<std::uint8_t> gen_;  ///< generator poly, descending, gen_[0]=1
};

}  // namespace adafl::net::fec
