#include "net/link.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace adafl::net {

BandwidthTrace BandwidthTrace::constant() { return BandwidthTrace(); }

BandwidthTrace BandwidthTrace::periodic(double period_good, double period_bad,
                                        double degraded, double offset) {
  ADAFL_CHECK_MSG(period_good > 0 && period_bad > 0,
                  "BandwidthTrace::periodic: periods must be positive");
  ADAFL_CHECK_MSG(degraded > 0 && degraded <= 1.0,
                  "BandwidthTrace::periodic: degraded must be in (0,1]");
  BandwidthTrace t;
  t.kind_ = Kind::kPeriodic;
  t.period_good_ = period_good;
  t.period_bad_ = period_bad;
  t.degraded_ = degraded;
  t.offset_ = offset;
  return t;
}

BandwidthTrace BandwidthTrace::random_walk(std::uint64_t seed, double step_s,
                                           double volatility, double floor,
                                           double horizon_s) {
  ADAFL_CHECK_MSG(step_s > 0 && horizon_s > 0,
                  "BandwidthTrace::random_walk: bad time parameters");
  ADAFL_CHECK_MSG(floor > 0 && floor <= 1.0,
                  "BandwidthTrace::random_walk: floor must be in (0,1]");
  BandwidthTrace t;
  t.kind_ = Kind::kSteps;
  t.step_s_ = step_s;
  Rng rng(seed);
  double v = 1.0;
  const std::size_t n = static_cast<std::size_t>(horizon_s / step_s) + 1;
  t.steps_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.steps_.push_back(v);
    v *= std::exp(rng.normal(0.0, volatility));
    v = std::clamp(v, floor, 1.0);
  }
  return t;
}

BandwidthTrace BandwidthTrace::from_steps(double step_s,
                                          std::vector<double> steps) {
  ADAFL_CHECK_MSG(step_s > 0.0, "BandwidthTrace::from_steps: step_s > 0");
  ADAFL_CHECK_MSG(!steps.empty(), "BandwidthTrace::from_steps: empty steps");
  for (double v : steps)
    ADAFL_CHECK_MSG(v > 0.0 && v <= 1.0,
                    "BandwidthTrace::from_steps: multiplier " << v
                                                              << " not in (0,1]");
  BandwidthTrace t;
  t.kind_ = Kind::kSteps;
  t.step_s_ = step_s;
  t.steps_ = std::move(steps);
  return t;
}

double BandwidthTrace::multiplier(double t) const {
  ADAFL_CHECK_MSG(t >= 0.0, "BandwidthTrace::multiplier: negative time");
  switch (kind_) {
    case Kind::kConstant:
      return 1.0;
    case Kind::kPeriodic: {
      const double cycle = period_good_ + period_bad_;
      const double phase = std::fmod(t + offset_, cycle);
      return phase < period_good_ ? 1.0 : degraded_;
    }
    case Kind::kSteps: {
      const std::size_t i =
          std::min(static_cast<std::size_t>(t / step_s_), steps_.size() - 1);
      return steps_[i];
    }
  }
  return 1.0;
}

Link::Link(LinkConfig cfg, BandwidthTrace up_trace, BandwidthTrace down_trace,
           Rng rng)
    : cfg_(cfg),
      up_trace_(std::move(up_trace)),
      down_trace_(std::move(down_trace)),
      rng_(rng) {
  ADAFL_CHECK_MSG(cfg.up_bw > 0 && cfg.down_bw > 0,
                  "Link: bandwidths must be positive");
  ADAFL_CHECK_MSG(cfg.latency >= 0 && cfg.jitter >= 0,
                  "Link: latency/jitter must be non-negative");
  ADAFL_CHECK_MSG(cfg.drop_prob >= 0 && cfg.drop_prob < 1.0,
                  "Link: drop_prob must be in [0,1)");
}

TransferResult Link::upload(std::int64_t bytes, double now) {
  return transfer(bytes, up_bandwidth(now));
}

TransferResult Link::download(std::int64_t bytes, double now) {
  return transfer(bytes, down_bandwidth(now));
}

double Link::up_bandwidth(double now) const {
  return cfg_.up_bw * up_trace_.multiplier(now);
}

double Link::down_bandwidth(double now) const {
  return cfg_.down_bw * down_trace_.multiplier(now);
}

TransferResult Link::transfer(std::int64_t bytes, double bw) {
  ADAFL_CHECK_MSG(bytes >= 0, "Link::transfer: negative byte count");
  TransferResult r;
  if (cfg_.drop_prob > 0.0 && rng_.bernoulli(cfg_.drop_prob)) {
    r.delivered = false;
    // The sender still spends a timeout's worth of time discovering the
    // loss; modelled as latency + serialization of what was sent.
    r.duration = cfg_.latency + static_cast<double>(bytes) / bw;
    return r;
  }
  double jitter = 0.0;
  if (cfg_.jitter > 0.0) jitter = rng_.uniform(-cfg_.jitter, cfg_.jitter);
  r.delivered = true;
  r.duration = std::max(
      0.0, cfg_.latency + jitter + static_cast<double>(bytes) / bw);
  return r;
}

LinkConfig preset(LinkQuality q) {
  switch (q) {
    case LinkQuality::kExcellent:
      return {.up_bw = 12.5e6, .down_bw = 25.0e6, .latency = 0.005,
              .jitter = 0.001, .drop_prob = 0.0};
    case LinkQuality::kGood:
      return {.up_bw = 2.5e6, .down_bw = 5.0e6, .latency = 0.02,
              .jitter = 0.005, .drop_prob = 0.0};
    case LinkQuality::kCongested:
      return {.up_bw = 0.25e6, .down_bw = 0.5e6, .latency = 0.12,
              .jitter = 0.03, .drop_prob = 0.0};
    case LinkQuality::kLossy:
      return {.up_bw = 1.0e6, .down_bw = 2.0e6, .latency = 0.08,
              .jitter = 0.02, .drop_prob = 0.25};
    case LinkQuality::kCellular:
      return {.up_bw = 0.6e6, .down_bw = 1.5e6, .latency = 0.06,
              .jitter = 0.015, .drop_prob = 0.05};
  }
  return {};
}

std::vector<LinkConfig> make_fleet(int n, double unreliable_fraction,
                                   LinkQuality good, LinkQuality bad) {
  ADAFL_CHECK_MSG(n > 0, "make_fleet: n must be positive");
  ADAFL_CHECK_MSG(unreliable_fraction >= 0.0 && unreliable_fraction <= 1.0,
                  "make_fleet: fraction must be in [0,1]");
  const int n_bad = static_cast<int>(std::lround(n * unreliable_fraction));
  std::vector<LinkConfig> fleet;
  fleet.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    fleet.push_back(preset(i < n_bad ? bad : good));
  return fleet;
}

}  // namespace adafl::net
