// Link model: per-client uplink/downlink bandwidth, latency, jitter and
// loss, with optional time-varying bandwidth traces (ns-3 stand-in per
// DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.h"

namespace adafl::net {

using tensor::Rng;

/// Static link parameters. Bandwidths are bytes/second; times are seconds.
struct LinkConfig {
  double up_bw = 1.0e6;       ///< uplink bandwidth (bytes/s)
  double down_bw = 2.0e6;     ///< downlink bandwidth (bytes/s)
  double latency = 0.05;      ///< one-way propagation delay (s)
  double jitter = 0.0;        ///< uniform ±jitter added per transfer (s)
  double drop_prob = 0.0;     ///< probability a transfer is lost entirely
};

/// Piecewise-constant multiplier on a link's nominal bandwidth, modelling
/// congestion episodes over simulated time.
class BandwidthTrace {
 public:
  /// Always 1.0 (no variation).
  static BandwidthTrace constant();

  /// Alternates 1.0 for `period_good` seconds then `degraded` for
  /// `period_bad` seconds, starting at phase `offset`.
  static BandwidthTrace periodic(double period_good, double period_bad,
                                 double degraded, double offset = 0.0);

  /// Multiplicative random walk sampled every `step_s` seconds, clamped to
  /// [floor, 1.0]; deterministic in `seed`.
  static BandwidthTrace random_walk(std::uint64_t seed, double step_s,
                                    double volatility, double floor,
                                    double horizon_s);

  /// Piecewise-constant trace from explicit per-step multipliers (one value
  /// per `step_s` interval; the last value holds forever). Used by the
  /// trace-file loader (net/trace_io.h). All values must be in (0, 1].
  static BandwidthTrace from_steps(double step_s, std::vector<double> steps);

  /// Bandwidth multiplier at simulated time `t` (>= 0).
  double multiplier(double t) const;

 private:
  enum class Kind { kConstant, kPeriodic, kSteps };
  Kind kind_ = Kind::kConstant;
  // periodic
  double period_good_ = 0, period_bad_ = 0, degraded_ = 1, offset_ = 0;
  // steps
  double step_s_ = 1.0;
  std::vector<double> steps_;
};

/// Outcome of one simulated transfer.
struct TransferResult {
  bool delivered = true;
  double duration = 0.0;  ///< seconds from send start to full receipt
};

/// One client's link. Owns its RNG so transfer outcomes are deterministic
/// per (seed, call sequence).
class Link {
 public:
  Link(LinkConfig cfg, Rng rng)
      : Link(cfg, BandwidthTrace::constant(), BandwidthTrace::constant(),
             rng) {}
  Link(LinkConfig cfg, BandwidthTrace up_trace, BandwidthTrace down_trace,
       Rng rng);

  /// Simulates sending `bytes` client->server starting at time `now`.
  TransferResult upload(std::int64_t bytes, double now);

  /// Simulates sending `bytes` server->client starting at time `now`.
  TransferResult download(std::int64_t bytes, double now);

  /// Effective bandwidths at time `now` (trace applied).
  double up_bandwidth(double now) const;
  double down_bandwidth(double now) const;

  const LinkConfig& config() const { return cfg_; }

  /// RNG stream snapshot/restore for crash-recovery checkpoints: a resumed
  /// run replays the remaining transfers with the identical draw sequence.
  tensor::RngState rng_state() const { return rng_.state(); }
  void set_rng_state(const tensor::RngState& s) { rng_.set_state(s); }

 private:
  TransferResult transfer(std::int64_t bytes, double bw);

  LinkConfig cfg_;
  BandwidthTrace up_trace_, down_trace_;
  Rng rng_;
};

/// Named link quality presets used across benches and examples.
enum class LinkQuality { kExcellent, kGood, kCongested, kLossy, kCellular };

/// Preset parameters for a quality class.
LinkConfig preset(LinkQuality q);

/// Builds a fleet of `n` link configs where the first
/// round(n*unreliable_fraction) clients get `bad` and the rest get `good`.
std::vector<LinkConfig> make_fleet(int n, double unreliable_fraction,
                                   LinkQuality good, LinkQuality bad);

}  // namespace adafl::net
