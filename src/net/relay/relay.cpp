#include "net/relay/relay.h"

#include <algorithm>
#include <thread>

#include "metrics/trace.h"
#include "tensor/check.h"

namespace adafl::net::relay {

namespace {

using Clock = std::chrono::steady_clock;
using transport::Frame;
using transport::MsgType;
using transport::kProtocolVersion;
using transport::kServerId;

Frame make_frame(MsgType type, std::uint32_t round, std::uint32_t client_id,
                 std::vector<std::uint8_t> payload = {}) {
  Frame f;
  f.type = type;
  f.round = round;
  f.client_id = client_id;
  f.payload = std::move(payload);
  return f;
}

/// Rotation budget per endpoint when backoff retries forever (mirrors
/// ClientSession): a relay must fail over to its parent's standby instead
/// of pinning a dead primary indefinitely.
constexpr int kUnboundedRotateAttempts = 4;

}  // namespace

RelaySession::RelaySession(RelayConfig cfg, IndexedDialFn dial,
                           std::size_t endpoint_count)
    : cfg_(std::move(cfg)),
      dial_(std::move(dial)),
      endpoint_count_(endpoint_count) {
  ADAFL_CHECK_MSG(cfg_.base >= 0 && cfg_.count > 0,
                  "RelaySession: invalid leaf range");
  ADAFL_CHECK_MSG(dial_ != nullptr, "RelaySession: null dial callback");
  ADAFL_CHECK_MSG(endpoint_count_ >= 1, "RelaySession: empty endpoint list");
}

void RelaySession::add_child_transport(
    std::unique_ptr<transport::Transport> t) {
  if (!t) return;
  std::lock_guard<std::mutex> lock(pending_mu_);
  pending_.push_back(std::move(t));
}

bool RelaySession::parent_send(const Frame& f) {
  if (!parent_) return false;
  if (!parent_->send(f)) {
    parent_->close();  // dead link: the redial path picks it up
    return false;
  }
  if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
    cfg_.tracer->record(metrics::ev_frame(
        metrics::TraceEventType::kFrameTx, static_cast<int>(f.round),
        f.client_id == kServerId ? -1 : static_cast<int>(f.client_id),
        to_string(f.type), static_cast<std::int64_t>(f.wire_size()), 0.0));
  return true;
}

void RelaySession::child_send(Child& c, const Frame& f) {
  if (!c.conn) return;
  if (!c.conn->send(f)) {
    c.conn->close();  // the poll pass reaps it
    return;
  }
  if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
    cfg_.tracer->record(metrics::ev_frame(
        metrics::TraceEventType::kFrameTx, static_cast<int>(f.round),
        f.client_id == kServerId ? -1 : static_cast<int>(f.client_id),
        to_string(f.type), static_cast<std::int64_t>(f.wire_size()), 0.0));
}

bool RelaySession::leaf_live(int id) const {
  const auto it = leaf_child_.find(id);
  if (it == leaf_child_.end()) return false;
  const Child& c = children_[it->second];
  return c.conn != nullptr && !c.conn->closed();
}

void RelaySession::catch_up_child(Child& c) {
  child_send(c, make_frame(MsgType::kWelcome, 0, kServerId,
                           welcome_payload_));
  if (!have_model_) return;
  if (c.is_relay) {
    // The sub-relay filters duplicates against its own round state.
    child_send(c, model_frame_);
    c.model_round = round_;
    for (int id = c.sub_base; id < c.sub_base + c.sub_count; ++id) {
      const auto rit = ratio_of_.find(id);
      if (rit == ratio_of_.end()) continue;
      if (agg_frames_.count((id / agg_group_) * agg_group_) != 0) continue;
      child_send(c, make_frame(MsgType::kSelect,
                               static_cast<std::uint32_t>(round_),
                               static_cast<std::uint32_t>(id),
                               transport::encode_f64(rit->second)));
    }
    return;
  }
  const int id = c.leaf_id;
  if (scored_.count(id) == 0) {
    child_send(c, model_frame_);
    c.model_round = round_;
  } else if (ratio_of_.count(id) != 0 && delivered_.count(id) == 0) {
    // Selected but undelivered — even when its group already shipped: a
    // rejoined straggler's update rebuilds the group as a superset AGG
    // that supersedes the committed one at the root.
    child_send(c, make_frame(MsgType::kSelect,
                             static_cast<std::uint32_t>(round_),
                             static_cast<std::uint32_t>(id),
                             transport::encode_f64(ratio_of_.at(id))));
  }
}

void RelaySession::bind_child(Child& c, const Frame& f) {
  if (f.type == MsgType::kHello) {
    ADAFL_CHECK_MSG(transport::parse_hello(f.payload) == kProtocolVersion,
                    "relay: child protocol version mismatch");
    ADAFL_CHECK_MSG(
        f.client_id >= static_cast<std::uint32_t>(cfg_.base) &&
            f.client_id < static_cast<std::uint32_t>(cfg_.base) +
                              static_cast<std::uint32_t>(cfg_.count),
        "relay: leaf id " << f.client_id << " outside range");
    const int id = static_cast<int>(f.client_id);
    // A redialing leaf supersedes its stale connection.
    const auto old = leaf_child_.find(id);
    if (old != leaf_child_.end() && &children_[old->second] != &c)
      children_[old->second].conn->close();
    c.bound = true;
    c.is_relay = false;
    c.leaf_id = id;
    live_.insert(id);
    // Announce the leaf up so the root counts it live; the root replies
    // with in-round catch-up through this route if needed.
    parent_send(f);
    catch_up_child(c);
    return;
  }
  if (f.type == MsgType::kRelayHello) {
    const transport::RelayHelloPayload h =
        transport::parse_relay_hello(f.payload);
    ADAFL_CHECK_MSG(h.version == kProtocolVersion,
                    "relay: sub-relay protocol version mismatch");
    const auto lo = static_cast<std::int64_t>(h.base);
    const auto hi = lo + h.count;
    ADAFL_CHECK_MSG(lo >= cfg_.base &&
                        hi <= static_cast<std::int64_t>(cfg_.base) +
                                  cfg_.count,
                    "relay: sub-relay range outside this relay's range");
    ADAFL_CHECK_MSG(agg_group_ > 0 && lo % agg_group_ == 0 &&
                        h.count % static_cast<std::uint32_t>(agg_group_) == 0,
                    "relay: sub-relay range not group-aligned");
    // A rebinding sub-relay (redial or promoted standby) supersedes any
    // overlapping predecessor.
    for (Child& other : children_) {
      if (&other == &c || !other.bound || !other.is_relay) continue;
      if (lo < other.sub_base + other.sub_count && other.sub_base < hi)
        other.conn->close();
    }
    c.bound = true;
    c.is_relay = true;
    c.sub_base = static_cast<int>(lo);
    c.sub_count = static_cast<int>(h.count);
    catch_up_child(c);
    return;
  }
  ADAFL_CHECK_MSG(false, "relay: expected HELLO or RELAY_HELLO, got "
                             << to_string(f.type));
}

void RelaySession::handle_child_frame(Child& c, const Frame& f) {
  if (c.is_relay) {
    const auto in_sub = [&c](std::uint32_t cid) {
      return cid >= static_cast<std::uint32_t>(c.sub_base) &&
             cid < static_cast<std::uint32_t>(c.sub_base) +
                       static_cast<std::uint32_t>(c.sub_count);
    };
    switch (f.type) {
      case MsgType::kScore: {
        ADAFL_CHECK_MSG(in_sub(f.client_id),
                        "relay: sub-relay SCORE out of range");
        const double s = transport::parse_f64(f.payload);
        ADAFL_CHECK_MSG(s >= 0.0 && s <= 1.0,
                        "relay: utility score out of [0,1]");
        if (f.round == static_cast<std::uint32_t>(round_)) {
          scored_.insert(static_cast<int>(f.client_id));
          score_frames_[static_cast<int>(f.client_id)] = f;
        }
        live_.insert(static_cast<int>(f.client_id));
        parent_send(f);
        return;
      }
      case MsgType::kHello:
        ADAFL_CHECK_MSG(in_sub(f.client_id),
                        "relay: sub-relay HELLO out of range");
        live_.insert(static_cast<int>(f.client_id));
        parent_send(f);
        return;
      case MsgType::kChildGone:
        ADAFL_CHECK_MSG(in_sub(f.client_id),
                        "relay: CHILD_GONE out of range");
        live_.erase(static_cast<int>(f.client_id));
        parent_send(f);
        return;
      case MsgType::kUpdateAgg: {
        // Validate the claim, then forward the original frame verbatim so
        // the root sees byte-identical partials regardless of tree depth.
        const transport::UpdateAggPayload a =
            transport::parse_update_agg(f.payload);
        transport::validate_update_agg(a, param_count_, agg_group_,
                                       c.sub_base, c.sub_count);
        if (f.round != static_cast<std::uint32_t>(round_)) return;  // stale
        agg_frames_[static_cast<int>(a.base)] = f;  // for nudge re-sends
        parent_send(f);
        ++stats_.aggs_forwarded;
        return;
      }
      case MsgType::kPing:
        child_send(c, make_frame(MsgType::kPong, f.round, kServerId));
        return;
      default:
        return;  // PONG, unexpected types: ignore
    }
  }
  const int id = c.leaf_id;
  switch (f.type) {
    case MsgType::kScore: {
      ADAFL_CHECK_MSG(f.client_id == static_cast<std::uint32_t>(id),
                      "relay: SCORE with a foreign client id");
      const double s = transport::parse_f64(f.payload);
      ADAFL_CHECK_MSG(s >= 0.0 && s <= 1.0,
                      "relay: utility score out of [0,1]");
      if (f.round == static_cast<std::uint32_t>(round_)) {
        scored_.insert(id);
        score_frames_[id] = f;
      }
      parent_send(f);
      return;
    }
    case MsgType::kUpdate: {
      if (f.round != static_cast<std::uint32_t>(round_) ||
          ratio_of_.count(id) == 0 || delivered_.count(id) != 0)
        return;  // stale or duplicate
      transport::UpdatePayload u = transport::parse_update(f.payload);
      ADAFL_CHECK_MSG(u.msg.kind == compress::CodecKind::kTopK,
                      "relay: UPDATE from leaf " << id
                                                 << " is not top-k");
      ADAFL_CHECK_MSG(u.msg.dense_size == param_count_,
                      "relay: UPDATE from leaf " << id
                                                 << " dimension mismatch");
      delivered_.emplace(id, std::move(u));
      // A straggler that rejoined after its group shipped (crashed leaf,
      // group flushed without it): rebuild and re-ship the superset AGG —
      // the root replaces the committed partial with it.
      agg_frames_.erase((id / agg_group_) * agg_group_);
      flush_groups();
      return;
    }
    case MsgType::kHello:
      // Duplicate HELLO on a live connection: serve catch-up again.
      catch_up_child(c);
      return;
    case MsgType::kPing:
      child_send(c, make_frame(MsgType::kPong, f.round, kServerId));
      return;
    default:
      return;
  }
}

Frame RelaySession::build_agg(int gbase) const {
  transport::UpdateAggPayload a;
  a.base = static_cast<std::uint32_t>(gbase);
  a.count = static_cast<std::uint32_t>(agg_group_);
  // Mutable only for the reused accumulator; build order is the fixed
  // ascending-id order the root uses for locally-computed groups, so the
  // partial is the root's bitwise recomputation.
  auto& agg = const_cast<core::PartialAggregator&>(partial_agg_);
  agg.reset(static_cast<std::size_t>(param_count_));
  for (int id = gbase; id < gbase + agg_group_; ++id) {
    const auto it = delivered_.find(id);
    if (it == delivered_.end()) continue;
    const transport::UpdatePayload& u = it->second;
    transport::UpdateAggChild ch;
    ch.id = static_cast<std::uint32_t>(id);
    ch.num_examples = u.num_examples;
    ch.mean_loss = u.mean_loss;
    ch.raw_delta_norm = u.raw_delta_norm;
    ch.wire_bytes = u.msg.wire_bytes;
    a.children.push_back(ch);
    agg.add(u.msg, static_cast<float>(u.num_examples));
  }
  agg.finish(a.partial);
  return make_frame(MsgType::kUpdateAgg, static_cast<std::uint32_t>(round_),
                    kServerId, transport::encode_update_agg(a));
}

void RelaySession::flush_groups() {
  if (!welcomed_ || agg_group_ <= 0 || delivered_.empty()) return;
  std::set<int> bases;
  for (const auto& [id, u] : delivered_)
    bases.insert((id / agg_group_) * agg_group_);
  for (const int b : bases) {
    if (agg_frames_.count(b) != 0) continue;  // already shipped
    bool blocked = false;
    for (int id = b; id < b + agg_group_ && !blocked; ++id)
      // A selected leaf that is still alive and owes its update blocks the
      // group; a crashed one must not — the survivors' updates ship and
      // the root's round deadline accounts for the loss, as in a flat run.
      blocked = ratio_of_.count(id) != 0 && delivered_.count(id) == 0 &&
                leaf_live(id);
    if (blocked) continue;
    const Frame af = build_agg(b);
    agg_frames_.emplace(b, af);  // cached for duplicate-SELECT re-sends
    parent_send(af);
    ++stats_.aggs_sent;
  }
}

void RelaySession::drop_child(std::size_t idx) {
  Child c = std::move(children_[idx]);
  children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(idx));
  for (auto& [leaf, ci] : leaf_child_)
    if (ci > idx) --ci;
  if (c.conn) c.conn->close();
  if (!c.bound) return;
  if (c.is_relay) {
    for (int id = c.sub_base; id < c.sub_base + c.sub_count; ++id) {
      if (live_.count(id) == 0) continue;
      // Superseded predecessor: a newer sub-relay has re-bound (part of)
      // the range and re-announced its leaves — those routes stay live.
      bool covered = false;
      for (const Child& other : children_) {
        if (!other.bound || !other.is_relay || !other.conn ||
            other.conn->closed())
          continue;
        if (id >= other.sub_base && id < other.sub_base + other.sub_count) {
          covered = true;
          break;
        }
      }
      if (covered) continue;
      live_.erase(id);
      parent_send(make_frame(MsgType::kChildGone,
                             static_cast<std::uint32_t>(round_),
                             static_cast<std::uint32_t>(id)));
    }
    return;
  }
  const auto it = leaf_child_.find(c.leaf_id);
  if (it != leaf_child_.end()) {
    const Child& cur = children_[it->second];
    // A redialing leaf superseded this connection before it was reaped:
    // the route in leaf_child_ already points at the fresh connection, so
    // the leaf is still live — do not tear the route down.
    if (cur.bound && !cur.is_relay && cur.leaf_id == c.leaf_id &&
        cur.conn != nullptr && !cur.conn->closed())
      return;
    leaf_child_.erase(it);
  }
  live_.erase(c.leaf_id);
  parent_send(make_frame(MsgType::kChildGone,
                         static_cast<std::uint32_t>(round_),
                         static_cast<std::uint32_t>(c.leaf_id)));
  // The dead leaf no longer blocks its group.
  flush_groups();
}

void RelaySession::nudge_children() {
  if (!have_model_) return;
  for (Child& c : children_) {
    if (!c.bound || !c.conn || c.conn->closed()) continue;
    if (c.is_relay) {
      bool unscored = false, undelivered = false;
      for (int id = c.sub_base; id < c.sub_base + c.sub_count; ++id) {
        if (live_.count(id) != 0 && scored_.count(id) == 0) unscored = true;
        if (ratio_of_.count(id) != 0 &&
            agg_frames_.count((id / agg_group_) * agg_group_) == 0)
          undelivered = true;
      }
      if (unscored) child_send(c, model_frame_);
      if (undelivered)
        for (int id = c.sub_base; id < c.sub_base + c.sub_count; ++id) {
          const auto rit = ratio_of_.find(id);
          if (rit == ratio_of_.end() ||
              agg_frames_.count((id / agg_group_) * agg_group_) != 0)
            continue;
          child_send(c, make_frame(MsgType::kSelect,
                                   static_cast<std::uint32_t>(round_),
                                   static_cast<std::uint32_t>(id),
                                   transport::encode_f64(rit->second)));
        }
      continue;
    }
    const int id = c.leaf_id;
    if (scored_.count(id) == 0) {
      child_send(c, model_frame_);
    } else if (ratio_of_.count(id) != 0 && delivered_.count(id) == 0) {
      child_send(c, make_frame(MsgType::kSelect,
                               static_cast<std::uint32_t>(round_),
                               static_cast<std::uint32_t>(id),
                               transport::encode_f64(ratio_of_.at(id))));
    }
  }
}

void RelaySession::handle_parent_frame(const Frame& f) {
  switch (f.type) {
    case MsgType::kWelcome: {
      const transport::WelcomeInfo w = transport::parse_welcome(f.payload);
      ADAFL_CHECK_MSG(w.params.agg_group > 0,
                      "relay: the run has agg_group == 0; a tiered "
                      "deployment needs --agg-group > 0 everywhere");
      ADAFL_CHECK_MSG(cfg_.base % w.params.agg_group == 0 &&
                          cfg_.count % w.params.agg_group == 0,
                      "relay: range [" << cfg_.base << ", "
                                       << cfg_.base + cfg_.count
                                       << ") not aligned to agg_group "
                                       << w.params.agg_group);
      agg_group_ = w.params.agg_group;
      param_count_ = static_cast<std::int64_t>(w.param_count);
      welcome_payload_ = f.payload;  // served to children verbatim
      welcomed_ = true;
      return;
    }
    case MsgType::kModel: {
      const int r = static_cast<int>(f.round);
      if (r != round_) {
        // New round: reset, cache, broadcast.
        round_ = r;
        ++stats_.rounds_seen;
        scored_.clear();
        score_frames_.clear();
        ratio_of_.clear();
        skipped_.clear();
        delivered_.clear();
        agg_frames_.clear();
        have_model_ = true;
        model_frame_ = f;
        for (Child& c : children_) {
          if (!c.bound) continue;
          child_send(c, model_frame_);
          c.model_round = round_;
        }
        return;
      }
      // Duplicate MODEL = parent nudge: someone up there still misses a
      // score. Re-serve children that owe one, and re-send every cached
      // SCORE — a score forwarded while the parent link was down is lost,
      // and the leaf (already scored locally) will never repeat it.
      for (Child& c : children_) {
        if (!c.bound) continue;
        if (c.is_relay) {
          child_send(c, model_frame_);
          continue;
        }
        if (scored_.count(c.leaf_id) == 0) child_send(c, model_frame_);
      }
      for (const auto& [id, sf] : score_frames_) parent_send(sf);
      return;
    }
    case MsgType::kSelect: {
      if (f.round != static_cast<std::uint32_t>(round_)) return;  // stale
      const int id = static_cast<int>(f.client_id);
      const double ratio = transport::parse_f64(f.payload);
      const int gbase = agg_group_ > 0 ? (id / agg_group_) * agg_group_ : 0;
      ratio_of_[id] = ratio;
      if (delivered_.count(id) != 0) {
        // Duplicate SELECT for a delivered leaf: the parent is nudging
        // because the shipped AGG was lost in flight — re-send it (or
        // flush, if the group never shipped).
        const auto cached = agg_frames_.find(gbase);
        if (cached != agg_frames_.end())
          parent_send(cached->second);
        else
          flush_groups();
        return;
      }
      const auto lc = leaf_child_.find(id);
      if (lc != leaf_child_.end()) {
        child_send(children_[lc->second], f);
        return;
      }
      for (Child& c : children_)
        if (c.bound && c.is_relay && id >= c.sub_base &&
            id < c.sub_base + c.sub_count) {
          child_send(c, f);
          return;
        }
      return;  // leaf offline: catch-up serves it on rejoin
    }
    case MsgType::kSkip: {
      if (f.round != static_cast<std::uint32_t>(round_)) return;
      const int id = static_cast<int>(f.client_id);
      skipped_.insert(id);
      const auto lc = leaf_child_.find(id);
      if (lc != leaf_child_.end()) {
        child_send(children_[lc->second], f);
        return;
      }
      for (Child& c : children_)
        if (c.bound && c.is_relay && id >= c.sub_base &&
            id < c.sub_base + c.sub_count) {
          child_send(c, f);
          return;
        }
      return;
    }
    case MsgType::kPing:
      parent_send(make_frame(MsgType::kPong, f.round, kServerId));
      return;
    case MsgType::kShutdown: {
      for (Child& c : children_) {
        if (!c.conn) continue;
        c.conn->send(make_frame(MsgType::kShutdown, 0, kServerId));
        c.conn->close();
      }
      children_.clear();
      leaf_child_.clear();
      stats_.completed = true;
      return;
    }
    default:
      return;  // WELCOME dupes handled above; PONG etc: ignore
  }
}

RelayRunStats RelaySession::run() {
  std::size_t endpoint = 0;
  int ep_attempts = 0;
  std::size_t dead_endpoints = 0;
  bool ever_connected = false;
  auto next_dial = Clock::now();
  auto last_parent_rx = Clock::now();
  auto last_ping = last_parent_rx;
  auto nudge_gap = cfg_.retransmit_nudge;
  auto next_nudge = Clock::now() + nudge_gap;
  const bool nudge_on = cfg_.retransmit_nudge.count() > 0;
  int nudge_round = 0;

  for (;;) {
    if (stats_.completed || stop_.load(std::memory_order_acquire)) break;
    bool progress = false;
    const auto now = Clock::now();

    // --- Parent link: dial (with backoff + endpoint rotation) without ever
    // blocking child service; a standby stays dormant until a child shows
    // up — the signal that the primary relay died.
    if (!parent_ || parent_->closed()) {
      if (parent_) {
        parent_.reset();
        next_dial = Clock::now();  // redial immediately after a drop
      }
      bool wanted = !cfg_.standby || !children_.empty() || ever_connected;
      if (!wanted) {
        std::lock_guard<std::mutex> lock(pending_mu_);
        wanted = !pending_.empty();
      }
      if (wanted && now >= next_dial) {
        const int budget = cfg_.backoff.max_attempts > 0
                               ? cfg_.backoff.max_attempts
                               : kUnboundedRotateAttempts;
        parent_ = dial_(endpoint);
        if (!parent_) {
          ++ep_attempts;
          if (ep_attempts >= budget) {
            if (cfg_.backoff.max_attempts > 0 &&
                ++dead_endpoints >= endpoint_count_)
              break;  // every endpoint exhausted: give up
            endpoint = (endpoint + 1) % endpoint_count_;
            ep_attempts = 0;
            if (endpoint_count_ > 1) ++stats_.endpoint_rotations;
          }
          next_dial = Clock::now() + cfg_.backoff.delay(ep_attempts);
        } else {
          dead_endpoints = 0;
          ep_attempts = 0;
          if (ever_connected) {
            ++stats_.parent_reconnects;
            if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
              cfg_.tracer->record(
                  metrics::ev_reconnect(round_, cfg_.base, 0.0));
          }
          ever_connected = true;
          transport::RelayHelloPayload h;
          h.version = kProtocolVersion;
          h.base = static_cast<std::uint32_t>(cfg_.base);
          h.count = static_cast<std::uint32_t>(cfg_.count);
          parent_send(make_frame(MsgType::kRelayHello, 0, kServerId,
                                 transport::encode_relay_hello(h)));
          // Re-announce every live leaf: the parent rebuilds its liveness
          // view of this range from scratch on a re-binding.
          for (const int id : live_)
            parent_send(make_frame(MsgType::kHello, 0,
                                   static_cast<std::uint32_t>(id),
                                   transport::encode_hello(
                                       kProtocolVersion)));
          last_parent_rx = Clock::now();
          progress = true;
        }
      }
    }

    // --- Parent frames.
    while (parent_ && !parent_->closed()) {
      std::optional<Frame> f;
      try {
        f = parent_->recv(std::chrono::milliseconds(0));
      } catch (const CheckError&) {
        parent_->close();  // malformed stream: redial
        break;
      }
      if (!f) break;
      progress = true;
      last_parent_rx = Clock::now();
      if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
        cfg_.tracer->record(metrics::ev_frame(
            metrics::TraceEventType::kFrameRx, static_cast<int>(f->round),
            f->client_id == kServerId ? -1 : static_cast<int>(f->client_id),
            to_string(f->type), static_cast<std::int64_t>(f->wire_size()),
            0.0));
      try {
        handle_parent_frame(*f);
      } catch (const CheckError&) {
        parent_->close();  // hostile/misconfigured parent: redial
        break;
      }
      if (stats_.completed) break;
    }
    if (stats_.completed) break;

    // Parent heartbeat / liveness.
    if (parent_ && !parent_->closed()) {
      const auto pnow = Clock::now();
      if (pnow - last_parent_rx > cfg_.liveness_timeout) {
        parent_->close();  // unresponsive: redial
      } else if (pnow - last_parent_rx > cfg_.heartbeat_interval &&
                 pnow - last_ping > cfg_.heartbeat_interval) {
        parent_send(make_frame(MsgType::kPing, 0, kServerId));
        last_ping = pnow;
      }
    }

    // --- Adopt pending child connections. Their first frame stays in the
    // socket until the parent's WELCOME is cached: a child bound earlier
    // could not be served the run configuration.
    if (welcomed_) {
      std::vector<std::unique_ptr<transport::Transport>> fresh;
      {
        std::lock_guard<std::mutex> lock(pending_mu_);
        fresh.swap(pending_);
      }
      for (auto& t : fresh) {
        Child c;
        c.conn = std::move(t);
        children_.push_back(std::move(c));
      }
    }

    // --- Child frames (bind on first frame, then dispatch).
    for (std::size_t i = 0; i < children_.size();) {
      Child& c = children_[i];
      bool dropped = false;
      while (c.conn && !c.conn->closed()) {
        std::optional<Frame> f;
        try {
          f = c.conn->recv(std::chrono::milliseconds(0));
        } catch (const CheckError&) {
          c.conn->close();
          break;
        }
        if (!f) break;
        progress = true;
        if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
          cfg_.tracer->record(metrics::ev_frame(
              metrics::TraceEventType::kFrameRx,
              static_cast<int>(f->round),
              f->client_id == kServerId ? -1
                                        : static_cast<int>(f->client_id),
              to_string(f->type), static_cast<std::int64_t>(f->wire_size()),
              0.0));
        try {
          if (!c.bound) {
            bind_child(c, *f);
            if (c.bound && !c.is_relay)
              leaf_child_[c.leaf_id] = i;
          } else {
            handle_child_frame(c, *f);
          }
        } catch (const CheckError&) {
          c.conn->close();
          break;
        }
      }
      if (c.conn && c.conn->closed()) {
        if (c.bound) {
          drop_child(i);  // reports CHILD_GONE and re-checks flushes
          dropped = true;
        } else {
          children_.erase(children_.begin() +
                          static_cast<std::ptrdiff_t>(i));
          dropped = true;
        }
      }
      if (!dropped) ++i;
    }

    // --- Relay-side retransmit nudge (exponential within a round).
    if (nudge_on) {
      if (round_ != nudge_round) {
        nudge_round = round_;
        nudge_gap = cfg_.retransmit_nudge;
        next_nudge = Clock::now() + nudge_gap;
      } else if (Clock::now() >= next_nudge) {
        nudge_children();
        nudge_gap *= 2;
        next_nudge = Clock::now() + nudge_gap;
      }
    }

    if (!progress) std::this_thread::sleep_for(cfg_.idle_poll);
  }

  // Stop path (request_stop or dial give-up): drop everything abruptly.
  if (!stats_.completed) {
    for (Child& c : children_)
      if (c.conn) c.conn->close();
    children_.clear();
    leaf_child_.clear();
  }
  if (parent_) parent_->close();
  if (cfg_.tracer != nullptr) cfg_.tracer->flush();
  return stats_;
}

}  // namespace adafl::net::relay
