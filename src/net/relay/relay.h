// Mid-tier aggregation relay for hierarchical FL deployments.
//
// A RelaySession sits between the root server (or another relay) and a
// contiguous range of leaf clients [base, base + count), speaking the
// existing wire format both ways:
//
//   parent side  — one outbound connection (ClientSession-style dial list
//                  with bounded backoff and endpoint rotation): announces
//                  itself with RELAY_HELLO, re-broadcasts the parent's
//                  MODEL, forwards leaf HELLO/SCORE traffic up, and ships
//                  each aggregation group's updates as one UPDATE-AGG.
//   child side   — accepts leaf ClientSessions (and sub-relays, for deeper
//                  trees) via add_child_transport(); serves them the cached
//                  WELCOME/MODEL so a leaf never needs to reach the root.
//
// Aggregation is *lossless* and association-preserving: the relay sums each
// group's decoded top-k updates in ascending-id order with the exact
// PartialAggregator the root uses for local groups, and the kTopK wire
// codec carries raw fp32 bits. A tiered run is therefore bitwise identical
// to a flat run with the same AdaFlParams::agg_group (pinned by
// tests/test_tier.cpp).
//
// Resilience: a relay whose parent link drops redials (rotating through its
// endpoint list), re-announces its live leaves, and the round recovers via
// the server's retransmit nudges. A crashed leaf is reported up as
// CHILD_GONE and stops blocking its group's flush, so the surviving
// members' updates still commit. A standby relay (RelayConfig::standby)
// stays dormant until the first orphaned child dials it — the signal that
// the primary died — then claims the range from the parent, which drops the
// dead binding and catches the promoted relay up mid-round.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "core/adafl_server.h"
#include "core/partial_agg.h"
#include "net/transport/session.h"
#include "net/transport/tcp.h"
#include "net/transport/transport.h"

namespace adafl::net::relay {

struct RelayConfig {
  /// Leaf client-id range [base, base + count) this relay covers. Must be
  /// aligned to the run's agg_group (validated against WELCOME).
  int base = 0;
  int count = 0;
  /// Standby mode: do not dial the parent until a child connects (children
  /// only rotate here after their primary relay died).
  bool standby = false;
  /// Parent-link heartbeat / liveness (ClientSession semantics).
  std::chrono::milliseconds heartbeat_interval{1000};
  std::chrono::milliseconds liveness_timeout{8000};
  /// Child/parent poll granularity when idle.
  std::chrono::milliseconds idle_poll{20};
  /// Re-send cadence toward stalled children (MODEL to unscored, SELECT to
  /// selected-but-undelivered); doubles after each firing within a round,
  /// like the server's retransmit nudge. <= 0 disables.
  std::chrono::milliseconds retransmit_nudge{2000};
  transport::BackoffPolicy backoff;
  /// Optional tracer: relay-side frame_tx/frame_rx/reconnect transport
  /// events. Not owned; must outlive run().
  metrics::Tracer* tracer = nullptr;
};

/// Outcome of one RelaySession::run().
struct RelayRunStats {
  int parent_reconnects = 0;
  int endpoint_rotations = 0;
  int rounds_seen = 0;      ///< distinct MODEL rounds observed
  int aggs_sent = 0;        ///< UPDATE-AGG frames built from direct leaves
  int aggs_forwarded = 0;   ///< sub-relay UPDATE-AGG frames passed through
  /// True when the parent said SHUTDOWN; false when redialing was abandoned.
  bool completed = false;
};

/// One mid-tier aggregator process. Construct, hand it child connections
/// (thread-safe, e.g. from a TCP accept loop), then run() until SHUTDOWN.
class RelaySession {
 public:
  using IndexedDialFn = std::function<std::unique_ptr<transport::Transport>(
      std::size_t endpoint)>;

  /// `dial` is only called with indices in [0, endpoint_count).
  RelaySession(RelayConfig cfg, IndexedDialFn dial,
               std::size_t endpoint_count);

  /// Hands a freshly-accepted (not yet handshaken) child transport to the
  /// session. Thread-safe; callable before and during run().
  void add_child_transport(std::unique_ptr<transport::Transport> t);

  /// Runs until the parent sends SHUTDOWN or redialing is abandoned.
  RelayRunStats run();

  /// Asks run() to stop at the next poll (signal-safe).
  void request_stop() { stop_.store(true, std::memory_order_release); }

 private:
  using Frame = transport::Frame;

  /// One child connection: a leaf client or a sub-relay (deeper tier).
  struct Child {
    std::unique_ptr<transport::Transport> conn;
    bool bound = false;
    bool is_relay = false;
    int leaf_id = -1;    ///< bound leaf
    int sub_base = 0;    ///< bound sub-relay range
    int sub_count = 0;
    /// Round the child last got the cached MODEL for (0 = never).
    int model_round = 0;
  };

  bool parent_send(const Frame& f);
  void child_send(Child& c, const Frame& f);
  /// Serves WELCOME + in-round catch-up to a just-bound child.
  void catch_up_child(Child& c);
  /// Binds a child's first frame (HELLO -> leaf, RELAY_HELLO -> sub-relay).
  /// Throws CheckError on an invalid claim; the caller drops the child.
  void bind_child(Child& c, const Frame& f);
  /// Handles a frame from a bound child. Throws CheckError on hostile
  /// input; the caller drops the child.
  void handle_child_frame(Child& c, const Frame& f);
  /// Handles a frame from the parent.
  void handle_parent_frame(const Frame& f);
  /// Marks child `idx` dead: reports its leaves up (CHILD_GONE) and erases
  /// it, then re-checks group flushes (a dead leaf stops blocking).
  void drop_child(std::size_t idx);
  /// Sends every complete (or no-longer-blocked) group's UPDATE-AGG up.
  void flush_groups();
  /// Builds one group's UPDATE-AGG frame from the delivered direct leaves.
  Frame build_agg(int gbase) const;
  /// Re-sends stalled state to children (relay-side retransmit nudge).
  void nudge_children();
  /// True while a live direct child route for leaf `id` exists.
  bool leaf_live(int id) const;

  RelayConfig cfg_;
  IndexedDialFn dial_;
  std::size_t endpoint_count_ = 1;

  std::mutex pending_mu_;
  std::vector<std::unique_ptr<transport::Transport>> pending_;
  std::vector<Child> children_;
  std::map<int, std::size_t> leaf_child_;  ///< leaf id -> children_ index

  std::unique_ptr<transport::Transport> parent_;
  bool welcomed_ = false;
  std::vector<std::uint8_t> welcome_payload_;  ///< cached verbatim
  int agg_group_ = 0;
  std::int64_t param_count_ = 0;

  // --- Per-round state (reset when a new MODEL round arrives). ------------
  int round_ = 0;
  bool have_model_ = false;
  Frame model_frame_;
  std::set<int> scored_;            ///< leaves that scored this round
  /// Cached SCORE frames: a score forwarded while the parent link was down
  /// is lost, and the leaf (already scored locally) never repeats it — the
  /// relay re-sends the cache when the parent nudges with a dup MODEL.
  std::map<int, Frame> score_frames_;
  std::map<int, double> ratio_of_;  ///< SELECTed leaf -> ratio
  std::set<int> skipped_;           ///< leaves the parent SKIPped
  /// Direct leaves' decoded updates this round (the AGG inputs).
  std::map<int, transport::UpdatePayload> delivered_;
  std::map<int, Frame> agg_frames_;  ///< flushed groups, by base
  std::set<int> live_;  ///< leaves announced alive (direct + sub-relay)

  core::PartialAggregator partial_agg_;
  RelayRunStats stats_;
  std::atomic<bool> stop_{false};
};

}  // namespace adafl::net::relay
