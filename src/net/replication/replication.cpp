#include "net/replication/replication.h"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "compress/bytes.h"
#include "core/server_checkpoint.h"
#include "metrics/trace.h"
#include "net/transport/frame.h"
#include "net/transport/session.h"
#include "tensor/check.h"

namespace adafl::net::replication {

using transport::Frame;
using transport::MsgType;
using Clock = std::chrono::steady_clock;

namespace {

Frame make_frame(MsgType type, std::uint32_t round,
                 std::vector<std::uint8_t> payload = {}) {
  Frame f;
  f.type = type;
  f.round = round;
  f.client_id = transport::kServerId;
  f.payload = std::move(payload);
  return f;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

// --- REPLICATE payload codec. --------------------------------------------

std::vector<std::uint8_t> encode_replicate(const ReplicatePayload& p) {
  std::vector<std::uint8_t> out;
  out.reserve(12 + p.image.size());
  bytes::put_u32(out, p.next_round);
  bytes::put_u64(out, p.image.size());
  out.insert(out.end(), p.image.begin(), p.image.end());
  return out;
}

ReplicatePayload parse_replicate(std::span<const std::uint8_t> payload) {
  bytes::Reader r(payload);
  ReplicatePayload p;
  p.next_round = r.u32();
  const std::uint64_t n = r.u64();
  auto img = r.raw(n);
  ADAFL_CHECK_MSG(r.remaining() == 0,
                  "replicate: " << r.remaining() << " trailing bytes");
  p.image.assign(img.begin(), img.end());
  return p;
}

// --- CheckpointPublisher. ------------------------------------------------

void CheckpointPublisher::adopt(
    std::unique_ptr<transport::Transport> standby) {
  Slot s;
  s.conn = std::move(standby);
  s.id = next_slot_id_++;
  if (!last_payload_.empty()) {
    // Late attach: seed with the newest checkpoint right away.
    if (s.conn->send(make_frame(MsgType::kReplicate, last_next_round_,
                                last_payload_))) {
      ++replicated_;
    } else {
      return;  // dead on arrival
    }
  }
  standbys_.push_back(std::move(s));
}

void CheckpointPublisher::publish(std::uint32_t next_round,
                                  const std::vector<std::uint8_t>& image,
                                  double t) {
  ReplicatePayload p;
  p.next_round = next_round;
  p.image = image;
  last_payload_ = encode_replicate(p);
  last_next_round_ = next_round;
  for (auto& s : standbys_) {
    if (s.conn == nullptr || s.conn->closed()) continue;
    if (s.conn->send(make_frame(MsgType::kReplicate, next_round,
                                last_payload_))) {
      ++replicated_;
      if (tracer_ != nullptr)
        tracer_->record(metrics::ev_replicate(
            static_cast<int>(next_round), s.id,
            static_cast<std::int64_t>(last_payload_.size()), t));
    } else {
      s.conn->close();
    }
  }
  service();  // reap anything the failed sends closed
}

void CheckpointPublisher::service() {
  for (auto& s : standbys_) {
    if (s.conn == nullptr || s.conn->closed()) continue;
    try {
      while (auto f = s.conn->recv(std::chrono::milliseconds(0))) {
        if (f->type == MsgType::kPing)
          s.conn->send(make_frame(MsgType::kPong, 0));
        // Anything else from a standby is ignored; replication is one-way.
      }
    } catch (const CheckError&) {
      s.conn->close();  // poisoned stream
    }
  }
  standbys_.erase(
      std::remove_if(standbys_.begin(), standbys_.end(),
                     [](const Slot& s) {
                       return s.conn == nullptr || s.conn->closed();
                     }),
      standbys_.end());
}

void CheckpointPublisher::shutdown_standbys() {
  for (auto& s : standbys_) {
    if (s.conn == nullptr || s.conn->closed()) continue;
    s.conn->send(make_frame(MsgType::kShutdown, 0));
    s.conn->close();
  }
  standbys_.clear();
}

// --- StandbyReplica. -----------------------------------------------------

StandbyReplica::StandbyReplica(StandbyConfig cfg, DialFn dial)
    : cfg_(std::move(cfg)), dial_(std::move(dial)) {}

bool StandbyReplica::install(const Frame& f, double t) {
  try {
    ReplicatePayload p = parse_replicate(f.payload);
    // Wire validation == disk validation: the image must decode exactly as
    // a checkpoint file would (whole-file CRC first, then structure).
    const auto sections =
        core::decode_checkpoint_file_bytes(p.image, "REPLICATE payload");
    const core::ServerCheckpoint ck = core::decode_server_checkpoint(sections);
    ADAFL_CHECK_MSG(ck.next_round == p.next_round,
                    "replicate: envelope round " << p.next_round
                                                 << " != checkpoint round "
                                                 << ck.next_round);
    ADAFL_CHECK_MSG(cfg_.expected_config_crc == 0 ||
                        ck.config_crc == cfg_.expected_config_crc,
                    "replicate: config crc mismatch (primary and standby "
                    "run different configurations)");
    // Only now — a fully validated, complete image — touch the disk, and
    // atomically: a crash mid-install leaves the previous checkpoint.
    core::write_checkpoint_bytes_atomic(
        core::checkpoint_path(cfg_.checkpoint_dir), p.image);
    ++received_;
    last_next_round_ = p.next_round;
    if (cfg_.tracer != nullptr) {
      cfg_.tracer->record(metrics::ev_replicate(
          static_cast<int>(p.next_round), -1,
          static_cast<std::int64_t>(p.image.size()), t));
      cfg_.tracer->flush();
    }
    return true;
  } catch (const std::exception&) {
    // Truncated, bit-flipped, version-skewed, config-skewed: count it and
    // keep the previous complete checkpoint.
    ++rejected_;
    return false;
  }
}

StandbyOutcome StandbyReplica::run() {
  const auto t0 = Clock::now();
  auto lease_deadline = Clock::now() + cfg_.lease;
  const auto ping_interval = cfg_.ping_interval.count() > 0
                                 ? cfg_.ping_interval
                                 : cfg_.lease / 3;
  std::unique_ptr<transport::Transport> conn;
  int attempt = 0;
  auto last_tx = Clock::now();

  for (;;) {
    if (stop_.load()) return StandbyOutcome::kStopped;
    const auto now = Clock::now();
    if (now >= lease_deadline) return StandbyOutcome::kPromote;

    if (conn == nullptr || conn->closed()) {
      conn.reset();
      if (attempt > 0) {
        // Backoff, but never sleep past the lease — promotion latency is
        // the product this loop sells.
        const auto d = std::min<Clock::duration>(cfg_.backoff.delay(attempt),
                                                 lease_deadline - now);
        if (d > Clock::duration::zero()) std::this_thread::sleep_for(d);
      }
      ++attempt;
      conn = dial_();
      if (conn == nullptr) continue;
      attempt = 0;
      conn->send(make_frame(MsgType::kStandbyHello, 0,
                            transport::encode_hello(
                                transport::kProtocolVersion)));
      last_tx = Clock::now();
      continue;
    }

    const auto poll = std::min<Clock::duration>(
        cfg_.recv_poll, lease_deadline - Clock::now());
    std::optional<Frame> f;
    try {
      f = conn->recv(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::max<Clock::duration>(poll, Clock::duration::zero())));
    } catch (const CheckError&) {
      conn->close();  // poisoned stream; redial inside the lease
      continue;
    }
    if (f.has_value()) {
      lease_deadline = Clock::now() + cfg_.lease;  // any frame renews
      switch (f->type) {
        case MsgType::kReplicate:
          install(*f, seconds_since(t0));
          break;
        case MsgType::kShutdown:
          conn->close();
          return StandbyOutcome::kStandDown;
        case MsgType::kPing:
          conn->send(make_frame(MsgType::kPong, 0));
          last_tx = Clock::now();
          break;
        default:
          break;  // kPong and anything else: lease renewal is the point
      }
    } else if (!conn->closed() &&
               Clock::now() - last_tx >= ping_interval) {
      conn->send(make_frame(MsgType::kPing, 0));
      last_tx = Clock::now();
    }
  }
}

}  // namespace adafl::net::replication
