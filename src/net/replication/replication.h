// Hot-standby server replication over the framed transport.
//
// Topology: one primary `flserver` trains; a standby `flserver` dials it as
// a *replication peer* (kStandbyHello instead of kHello) and receives every
// durable checkpoint the primary writes as a kReplicate frame. The frame
// carries the exact byte image the primary rename()d into place, so the
// standby validates it through the same code path as a disk read
// (core::decode_checkpoint_file_bytes) before atomically installing it in
// its own --checkpoint-dir. A standby therefore only ever holds *complete*
// checkpoints: a torn or corrupt image is rejected wholesale and the
// previous one stays resumable.
//
// Liveness: the standby holds a heartbeat lease. Any frame from the primary
// (REPLICATE, PONG, PING) renews it; while the link is quiet the standby
// PINGs at ~lease/3. If the lease expires — the primary died, or the
// network to it is gone — StandbyReplica::run() returns kPromote and the
// caller resumes a ServerSession from the newest installed checkpoint and
// starts accepting client HELLOs. A graceful primary shutdown sends
// kShutdown, which stands the standby down *without* promotion (operator
// intent: the run is over, not the primary).
//
// Split-brain note: a partition that isolates the primary from the standby
// but not from clients can yield two live servers. Clients dial endpoints
// in priority order and only rotate when the current endpoint is exhausted,
// so they stay with the primary while it is reachable; the PR 3 dedup
// machinery makes a client that does bounce between the two never
// double-count a round. See docs/deployment.md, "Hot standby & failover".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/transport/tcp.h"
#include "net/transport/transport.h"

namespace adafl::metrics {
class Tracer;
}

namespace adafl::net::replication {

// --- REPLICATE payload codec (exposed for tests). ------------------------

struct ReplicatePayload {
  /// First round the checkpoint resumes at (mirrors the "meta" section;
  /// the standby cross-checks the two).
  std::uint32_t next_round = 0;
  /// Exact checkpoint file byte image (core::encode_checkpoint_file_bytes).
  std::vector<std::uint8_t> image;
};

std::vector<std::uint8_t> encode_replicate(const ReplicatePayload& p);
/// Throws CheckError on truncated or malformed payloads.
ReplicatePayload parse_replicate(std::span<const std::uint8_t> payload);

// --- Primary side. -------------------------------------------------------

/// Fans freshly-written checkpoint images out to attached standbys.
///
/// Not thread-safe: every method is driven from the server session's run
/// thread (ServerSession routes kStandbyHello handshakes into adopt() and
/// calls service()/publish() from its poll loop).
class CheckpointPublisher {
 public:
  explicit CheckpointPublisher(metrics::Tracer* tracer = nullptr)
      : tracer_(tracer) {}

  /// Takes ownership of a handshaken replication peer. If a checkpoint was
  /// already published this run, the newcomer is seeded with it
  /// immediately so a late-attaching standby is not blind until the next
  /// round boundary.
  void adopt(std::unique_ptr<transport::Transport> standby);

  /// Ships one checkpoint image to every attached standby. `t` is the
  /// trace timestamp (seconds since the server run started). A standby
  /// whose send fails is dropped.
  void publish(std::uint32_t next_round,
               const std::vector<std::uint8_t>& image, double t);

  /// One poll pass: answers standby PINGs (lease renewal — without this a
  /// standby would promote under a live but idle primary) and reaps dead
  /// connections.
  void service();

  /// Graceful end of run: SHUTDOWN to every standby so it stands down
  /// instead of promoting. A SIGKILLed primary never reaches this — that
  /// is exactly the case where promotion is wanted.
  void shutdown_standbys();

  std::size_t standby_count() const { return standbys_.size(); }
  /// Total successful per-standby checkpoint sends.
  std::uint64_t checkpoints_replicated() const { return replicated_; }

 private:
  struct Slot {
    std::unique_ptr<transport::Transport> conn;
    int id = 0;  ///< stable slot id for trace events
  };

  metrics::Tracer* tracer_ = nullptr;
  std::vector<Slot> standbys_;
  std::vector<std::uint8_t> last_payload_;  ///< encoded REPLICATE payload
  std::uint32_t last_next_round_ = 0;
  std::uint64_t replicated_ = 0;
  int next_slot_id_ = 0;
};

// --- Standby side. -------------------------------------------------------

struct StandbyConfig {
  /// Directory replicated checkpoints are installed into (and the
  /// ServerSession resumes from after promotion).
  std::string checkpoint_dir;
  /// Heartbeat lease: promote after this long without hearing anything
  /// from the primary. Must comfortably exceed one round's checkpoint
  /// cadence only if REPLICATE is the sole traffic — PING/PONG keeps the
  /// lease alive between rounds regardless of round length.
  std::chrono::milliseconds lease{5000};
  /// recv() poll granularity.
  std::chrono::milliseconds recv_poll{100};
  /// PING the primary after this long without any traffic; 0 = lease / 3.
  std::chrono::milliseconds ping_interval{0};
  /// Redial schedule while the primary is unreachable. max_attempts is
  /// ignored: the lease, not an attempt budget, decides when to give up
  /// (and promote).
  transport::BackoffPolicy backoff{std::chrono::milliseconds(100),
                                   std::chrono::milliseconds(1000), 2.0, 0};
  /// When nonzero, reject replicated checkpoints whose config_crc differs
  /// (configuration skew between primary and standby would make the
  /// promoted run refuse to resume anyway — fail at replication time).
  std::uint32_t expected_config_crc = 0;
  /// Optional tracer for replicate events. Not owned; may be unopened
  /// (events are then dropped, but counters still advance).
  metrics::Tracer* tracer = nullptr;
};

enum class StandbyOutcome {
  kPromote,    ///< lease expired — resume from the newest checkpoint
  kStandDown,  ///< primary finished gracefully (SHUTDOWN)
  kStopped,    ///< request_stop() was called
};

/// Tails a primary's checkpoints and decides when to take over.
class StandbyReplica {
 public:
  /// Returns a connected transport to the primary or nullptr.
  using DialFn = std::function<std::unique_ptr<transport::Transport>()>;

  StandbyReplica(StandbyConfig cfg, DialFn dial);

  /// Runs until promotion, stand-down, or request_stop(). Never throws on
  /// network or payload corruption — bad input is counted and dropped.
  StandbyOutcome run();

  /// Signal-safe stop (atomic store only).
  void request_stop() { stop_.store(true); }

  /// Complete checkpoints installed this run.
  std::uint64_t checkpoints_received() const { return received_; }
  /// REPLICATE payloads rejected (truncated / corrupt / version- or
  /// config-skewed). The previously installed checkpoint survives each.
  std::uint64_t rejected_payloads() const { return rejected_; }
  /// next_round of the newest installed checkpoint (0 = none yet).
  std::uint32_t last_next_round() const { return last_next_round_; }

 private:
  /// Validates one REPLICATE frame end-to-end and atomically installs the
  /// image. Returns false (and counts) on any defect.
  bool install(const transport::Frame& f, double t);

  StandbyConfig cfg_;
  DialFn dial_;
  std::atomic<bool> stop_{false};
  std::uint64_t received_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint32_t last_next_round_ = 0;
};

}  // namespace adafl::net::replication
