#include "net/trace_io.h"

#include <fstream>
#include <sstream>

#include "tensor/check.h"

namespace adafl::net {

std::vector<TracePoint> parse_trace(std::istream& in) {
  std::vector<TracePoint> points;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    if (auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream ls(line);
    std::string t_str, m_str;
    if (!std::getline(ls, t_str, ',') || !std::getline(ls, m_str))
      throw std::runtime_error("trace: line " + std::to_string(lineno) +
                               ": expected `time,multiplier`");
    char* end = nullptr;
    const double t = std::strtod(t_str.c_str(), &end);
    if (end == t_str.c_str()) {
      if (lineno == 1) continue;  // header row
      throw std::runtime_error("trace: line " + std::to_string(lineno) +
                               ": bad time `" + t_str + "`");
    }
    const double m = std::strtod(m_str.c_str(), &end);
    if (end == m_str.c_str())
      throw std::runtime_error("trace: line " + std::to_string(lineno) +
                               ": bad multiplier `" + m_str + "`");
    if (m <= 0.0 || m > 1.0)
      throw std::runtime_error("trace: line " + std::to_string(lineno) +
                               ": multiplier must be in (0, 1]");
    if (!points.empty() && t <= points.back().time)
      throw std::runtime_error("trace: line " + std::to_string(lineno) +
                               ": times must be strictly ascending");
    points.push_back({t, m});
  }
  if (points.empty()) throw std::runtime_error("trace: no data points");
  return points;
}

std::vector<TracePoint> load_trace_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  return parse_trace(f);
}

void save_trace_file(const std::string& path,
                     const std::vector<TracePoint>& points) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  f << "time_s,multiplier\n";
  for (const auto& p : points) f << p.time << ',' << p.multiplier << '\n';
}

BandwidthTrace trace_from_points(const std::vector<TracePoint>& points,
                                 double step_s) {
  ADAFL_CHECK_MSG(!points.empty(), "trace_from_points: empty trace");
  ADAFL_CHECK_MSG(step_s > 0.0, "trace_from_points: step must be positive");
  // Resample piecewise-constant points onto the fixed grid BandwidthTrace
  // uses internally, via the random_walk representation's sibling: build a
  // steps trace by sampling multiplier at each grid time.
  const double horizon = points.back().time + step_s;
  const std::size_t n = static_cast<std::size_t>(horizon / step_s) + 1;
  std::vector<TracePoint> grid;
  grid.reserve(n);
  std::size_t cursor = 0;
  double current = points.front().multiplier;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * step_s;
    while (cursor < points.size() && points[cursor].time <= t)
      current = points[cursor++].multiplier;
    grid.push_back({t, current});
  }
  // Encode through the public steps-based factory by replaying the grid as
  // a zero-volatility walk is not possible; BandwidthTrace exposes no step
  // setter, so we construct via from_steps below.
  return BandwidthTrace::from_steps(step_s, [&] {
    std::vector<double> steps;
    steps.reserve(grid.size());
    for (const auto& g : grid) steps.push_back(g.multiplier);
    return steps;
  }());
}

std::vector<TracePoint> sample_trace(const BandwidthTrace& trace,
                                     double step_s, double horizon_s) {
  ADAFL_CHECK_MSG(step_s > 0.0 && horizon_s > 0.0,
                  "sample_trace: step/horizon must be positive");
  std::vector<TracePoint> points;
  for (double t = 0.0; t <= horizon_s; t += step_s)
    points.push_back({t, trace.multiplier(t)});
  return points;
}

}  // namespace adafl::net
