// Loading and saving bandwidth traces (the ns-3 stand-in's file interface).
//
// Trace files are two-column CSV: `time_s,multiplier` with ascending times;
// the multiplier holds until the next row (piecewise-constant), exactly the
// semantics of BandwidthTrace. An optional header row is skipped.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "net/link.h"

namespace adafl::net {

/// One (time, multiplier) step of a stored trace.
struct TracePoint {
  double time = 0.0;
  double multiplier = 1.0;
};

/// Parses a trace from a stream. Throws std::runtime_error on syntax
/// errors, non-ascending times, or multipliers outside (0, 1].
std::vector<TracePoint> parse_trace(std::istream& in);

/// Reads a trace file (see parse_trace).
std::vector<TracePoint> load_trace_file(const std::string& path);

/// Writes a trace file in the canonical format.
void save_trace_file(const std::string& path,
                     const std::vector<TracePoint>& points);

/// Converts loaded points into a BandwidthTrace by resampling onto a fixed
/// grid of `step_s` (the trace holds its last multiplier beyond the final
/// point).
BandwidthTrace trace_from_points(const std::vector<TracePoint>& points,
                                 double step_s);

/// Samples an existing BandwidthTrace into points (for round-tripping and
/// for exporting generated traces).
std::vector<TracePoint> sample_trace(const BandwidthTrace& trace,
                                     double step_s, double horizon_s);

}  // namespace adafl::net
