#include "net/transport/crc32.h"

#include <array>

namespace adafl::net::transport {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc,
                           std::span<const std::uint8_t> data) {
  const auto& t = table();
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = t[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_update(0, data);
}

}  // namespace adafl::net::transport
