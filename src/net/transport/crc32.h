// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used by the frame
// envelope to detect payload corruption, and by the CLIs to fingerprint
// final model weights for deployment-vs-simulation equivalence checks.
#pragma once

#include <cstdint>
#include <span>

namespace adafl::net::transport {

/// CRC-32 of `data` (init 0xFFFFFFFF, final xor 0xFFFFFFFF — the common
/// zlib/PNG convention; crc32 of "123456789" is 0xCBF43926).
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental form: `crc` is the running value (start with 0) so large
/// payloads can be checksummed in chunks: crc = crc32_update(crc, chunk).
std::uint32_t crc32_update(std::uint32_t crc,
                           std::span<const std::uint8_t> data);

}  // namespace adafl::net::transport
