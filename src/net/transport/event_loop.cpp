#include "net/transport/event_loop.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "tensor/check.h"

namespace adafl::net::transport {

namespace {

// epoll_event.data.u64 tags for non-connection fds. Connection ids are
// allocated from 0 upward and can never collide with these.
constexpr std::uint64_t kTagBase = 0xFFFFFFFF00000000ull;
constexpr std::uint64_t kTagWake = kTagBase + 0;
constexpr std::uint64_t kTagListener = kTagBase + 1;
constexpr std::uint64_t kTagWatched = kTagBase + 2;  // + watch index

}  // namespace

struct EventLoop::Conn {
  ConnId id = 0;
  int fd = -1;
  int shard = 0;
  FrameParser parser;
  std::deque<std::pair<std::shared_ptr<const std::vector<std::uint8_t>>,
                       std::size_t>>
      outbuf;
  std::size_t outbuf_bytes = 0;
  std::uint32_t events = 0;  // currently registered epoll event mask
};

struct EventLoop::Shard {
  std::mutex mu;
  std::deque<InFrame> q;
  /// Mirrors `paused` for the session thread (poll_shard decides whether a
  /// resume wake is worth sending).
  std::atomic<bool> loop_paused{false};
  /// Session thread -> loop thread: queue drained below the low watermark.
  std::atomic<bool> resume_requested{false};
  /// Loop-thread state: reads of this shard's connections are unregistered.
  bool paused = false;
};

EventLoop::EventLoop(EventLoopConfig cfg) : cfg_(cfg) {
  ADAFL_CHECK_MSG(cfg_.shards >= 1, "event_loop: shards must be >= 1");
  ADAFL_CHECK_MSG(cfg_.queue_depth >= 1,
                  "event_loop: queue_depth must be >= 1");
  shards_ = std::make_unique<Shard[]>(static_cast<std::size_t>(cfg_.shards));
  read_chunk_.resize(std::min<std::size_t>(cfg_.read_budget, 64 * 1024));
  if (read_chunk_.empty()) read_chunk_.resize(4096);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  ADAFL_CHECK_MSG(epoll_fd_ >= 0,
                  "event_loop: epoll_create1: " << std::strerror(errno));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  ADAFL_CHECK_MSG(wake_fd_ >= 0,
                  "event_loop: eventfd: " << std::strerror(errno));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kTagWake;
  ADAFL_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
                  "event_loop: epoll_ctl(wake): " << std::strerror(errno));
}

EventLoop::~EventLoop() {
  stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::adopt_listener(int listen_fd) {
  ADAFL_CHECK_MSG(!running_.load(), "event_loop: adopt_listener after start");
  listen_fd_ = listen_fd;
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kTagListener;
  ADAFL_CHECK_MSG(
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
      "event_loop: epoll_ctl(listener): " << std::strerror(errno));
}

void EventLoop::watch_fd(int fd, std::function<void()> cb) {
  ADAFL_CHECK_MSG(!running_.load(), "event_loop: watch_fd after start");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kTagWatched + watched_.size();
  ADAFL_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                  "event_loop: epoll_ctl(watch): " << std::strerror(errno));
  watched_.emplace_back(fd, std::move(cb));
}

void EventLoop::start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { run(); });
}

void EventLoop::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  wake();
  if (thread_.joinable()) thread_.join();
  for (auto& [id, c] : conns_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
    ::close(c->fd);
  }
  conns_.clear();
  open_conns_.store(0);
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::notify_activity() {
  {
    std::lock_guard<std::mutex> lk(event_mu_);
    ++activity_epoch_;
  }
  event_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Loop thread
// ---------------------------------------------------------------------------

void EventLoop::run() {
  std::vector<epoll_event> events(512);
  while (running_.load(std::memory_order_relaxed)) {
    apply_commands();
    for (int s = 0; s < cfg_.shards; ++s) {
      Shard& sh = shards_[static_cast<std::size_t>(s)];
      if (sh.resume_requested.exchange(false)) {
        std::size_t depth;
        {
          std::lock_guard<std::mutex> lk(sh.mu);
          depth = sh.q.size();
        }
        if (depth <= cfg_.queue_depth / 2) resume_shard_reads(s);
      }
    }
    if (cycle_activity_) {
      notify_activity();
      cycle_activity_ = false;
    }

    int timeout_ms = -1;
    const auto now = std::chrono::steady_clock::now();
    if (accept_paused_ && !accept_at_cap_) {
      const auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
          accept_resume_at_ - now);
      timeout_ms = static_cast<int>(std::max<std::int64_t>(0, remain.count()));
    }
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    resume_accept_if_due(std::chrono::steady_clock::now());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable epoll failure: exit the loop
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[static_cast<std::size_t>(i)].data.u64;
      const std::uint32_t ev = events[static_cast<std::size_t>(i)].events;
      if (tag == kTagWake) {
        std::uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (tag == kTagListener) {
        handle_accept();
        continue;
      }
      if (tag >= kTagWatched) {
        const std::size_t idx = static_cast<std::size_t>(tag - kTagWatched);
        if (idx < watched_.size()) watched_[idx].second();
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // dropped earlier in this batch
      Conn* c = it->second.get();
      if (ev & EPOLLOUT) {
        handle_writable(c);
        if (conns_.find(tag) == conns_.end()) continue;
      }
      if (ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        // handle_readable() observes EOF/reset via recv() itself, so hangup
        // events funnel through the same path and drain any final bytes.
        handle_readable(c);
      }
    }
  }
}

void EventLoop::handle_accept() {
  for (;;) {
    if (cfg_.max_clients > 0 &&
        open_conns_.load() >= static_cast<std::size_t>(cfg_.max_clients)) {
      if (!accept_paused_) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        accept_paused_ = true;
        accept_at_cap_ = true;
      }
      return;
    }
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // fd exhaustion: pause accepting with exponential backoff instead
        // of spinning (level-triggered epoll would hand the same event
        // straight back) or dying.
        accept_delay_ = accept_delay_.count() == 0
                            ? cfg_.accept_backoff
                            : std::min(accept_delay_ * 2,
                                       cfg_.accept_backoff_max);
        accept_pauses_.fetch_add(1);
        pause_accept(accept_delay_);
        return;
      }
      return;  // other transient accept failures: retry on next event
    }
    accept_delay_ = std::chrono::milliseconds(0);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto c = std::make_unique<Conn>();
    c->id = next_id_++;
    c->fd = fd;
    c->shard = static_cast<int>(c->id % static_cast<ConnId>(cfg_.shards));
    c->events = EPOLLIN | EPOLLRDHUP;
    if (shards_[static_cast<std::size_t>(c->shard)].paused)
      c->events &= ~EPOLLIN;
    epoll_event ev{};
    ev.events = c->events;
    ev.data.u64 = c->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    const ConnId id = c->id;
    conns_.emplace(id, std::move(c));
    open_conns_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lk(event_mu_);
      accepted_.push_back(id);
    }
    cycle_activity_ = true;
  }
}

void EventLoop::pause_accept(std::chrono::milliseconds delay) {
  if (listen_fd_ < 0) return;
  if (!accept_paused_)
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  accept_paused_ = true;
  accept_at_cap_ = false;
  accept_resume_at_ = std::chrono::steady_clock::now() + delay;
}

void EventLoop::resume_accept_if_due(
    std::chrono::steady_clock::time_point now) {
  if (!accept_paused_ || listen_fd_ < 0) return;
  if (accept_at_cap_) {
    if (cfg_.max_clients > 0 &&
        open_conns_.load() >= static_cast<std::size_t>(cfg_.max_clients))
      return;
  } else if (now < accept_resume_at_) {
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kTagListener;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0) {
    accept_paused_ = false;
    accept_at_cap_ = false;
  }
}

void EventLoop::handle_readable(Conn* c) {
  std::size_t budget = cfg_.read_budget;
  while (budget > 0) {
    {
      Shard& sh = shards_[static_cast<std::size_t>(c->shard)];
      std::lock_guard<std::mutex> lk(sh.mu);
      if (sh.q.size() >= cfg_.queue_depth) {
        // Shard saturated: stop reading before pulling more bytes off the
        // socket; backpressure propagates to the sender via TCP.
        break;
      }
    }
    const std::size_t want = std::min(budget, read_chunk_.size());
    const ssize_t n = ::recv(c->fd, read_chunk_.data(), want, 0);
    if (n == 0) {
      drop_conn(c);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      drop_conn(c);
      return;
    }
    budget -= static_cast<std::size_t>(n);
    std::size_t got = 0;
    try {
      got = c->parser.consume(std::span<const std::uint8_t>(
          read_chunk_.data(), static_cast<std::size_t>(n)));
    } catch (const adafl::CheckError&) {
      drop_conn(c);  // malformed stream: drop the peer, not the server
      return;
    }
    for (std::size_t i = 0; i < got; ++i) {
      auto f = c->parser.next();
      if (!f) break;
      enqueue_frame(c, std::move(*f));
    }
    if (static_cast<std::size_t>(n) < want) return;  // socket drained
  }
  // Budget exhausted or shard saturated. Level-triggered epoll re-arms the
  // fd next cycle unless the shard pause below unregistered it.
  Shard& sh = shards_[static_cast<std::size_t>(c->shard)];
  bool saturated;
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    saturated = sh.q.size() >= cfg_.queue_depth;
  }
  if (saturated) pause_shard_reads(c->shard);
}

void EventLoop::enqueue_frame(Conn* c, Frame&& f) {
  Shard& sh = shards_[static_cast<std::size_t>(c->shard)];
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.q.push_back(InFrame{c->id, std::move(f),
                           std::chrono::steady_clock::now()});
    depth = sh.q.size();
  }
  cycle_activity_ = true;
  std::size_t peak = peak_depth_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !peak_depth_.compare_exchange_weak(peak, depth,
                                            std::memory_order_relaxed)) {
  }
}

void EventLoop::pause_shard_reads(int shard) {
  Shard& sh = shards_[static_cast<std::size_t>(shard)];
  if (sh.paused) return;
  sh.paused = true;
  sh.loop_paused.store(true);
  read_pauses_.fetch_add(1);
  for (auto& [id, c] : conns_) {
    if (c->shard != shard) continue;
    c->events &= ~static_cast<std::uint32_t>(EPOLLIN);
    update_events(c.get());
  }
}

void EventLoop::resume_shard_reads(int shard) {
  Shard& sh = shards_[static_cast<std::size_t>(shard)];
  if (!sh.paused) return;
  sh.paused = false;
  sh.loop_paused.store(false);
  for (auto& [id, c] : conns_) {
    if (c->shard != shard) continue;
    c->events |= EPOLLIN;
    update_events(c.get());
  }
}

void EventLoop::update_events(Conn* c) {
  epoll_event ev{};
  ev.events = c->events | (c->outbuf.empty() ? 0u : EPOLLOUT) | EPOLLRDHUP;
  ev.data.u64 = c->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
}

void EventLoop::handle_writable(Conn* c) {
  while (!c->outbuf.empty()) {
    auto& [buf, off] = c->outbuf.front();
    const ssize_t n = ::send(c->fd, buf->data() + off, buf->size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      drop_conn(c);
      return;
    }
    off += static_cast<std::size_t>(n);
    c->outbuf_bytes -= static_cast<std::size_t>(n);
    total_outbuf_.fetch_sub(static_cast<std::size_t>(n));
    if (off == buf->size()) c->outbuf.pop_front();
  }
  update_events(c);
}

void EventLoop::drop_conn(Conn* c) {
  const ConnId id = c->id;
  total_outbuf_.fetch_sub(c->outbuf_bytes);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
  ::close(c->fd);
  conns_.erase(id);
  open_conns_.fetch_sub(1);
  {
    std::lock_guard<std::mutex> lk(event_mu_);
    closed_.push_back(id);
  }
  cycle_activity_ = true;
  if (accept_paused_ && accept_at_cap_)
    resume_accept_if_due(std::chrono::steady_clock::now());
}

void EventLoop::apply_commands() {
  std::vector<Command> cmds;
  {
    std::lock_guard<std::mutex> lk(cmd_mu_);
    cmds.swap(commands_);
  }
  for (auto& cmd : cmds) {
    auto it = conns_.find(cmd.conn);
    if (it == conns_.end()) continue;
    Conn* c = it->second.get();
    switch (cmd.kind) {
      case Command::Kind::kSend: {
        c->outbuf_bytes += cmd.bytes->size();
        total_outbuf_.fetch_add(cmd.bytes->size());
        c->outbuf.emplace_back(std::move(cmd.bytes), 0);
        if (c->outbuf_bytes > cfg_.max_outbuf_bytes) {
          drop_conn(c);  // dead consumer: unbounded backlog otherwise
          break;
        }
        handle_writable(c);  // opportunistic flush; EPOLLOUT if it blocks
        break;
      }
      case Command::Kind::kClose:
        drop_conn(c);
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Session thread
// ---------------------------------------------------------------------------

std::size_t EventLoop::poll_shard(int shard, std::vector<InFrame>& out,
                                  std::size_t max) {
  Shard& sh = shards_[static_cast<std::size_t>(shard)];
  std::size_t moved = 0;
  bool drained_low = false;
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    while (moved < max && !sh.q.empty()) {
      out.push_back(std::move(sh.q.front()));
      sh.q.pop_front();
      ++moved;
    }
    drained_low = sh.q.size() <= cfg_.queue_depth / 2;
  }
  if (moved > 0 && drained_low && sh.loop_paused.load()) {
    sh.resume_requested.store(true);
    wake();
  }
  return moved;
}

std::size_t EventLoop::poll_all(std::vector<InFrame>& out) {
  std::size_t total = 0;
  for (int s = 0; s < cfg_.shards; ++s)
    total += poll_shard(s, out, static_cast<std::size_t>(-1));
  return total;
}

bool EventLoop::wait_activity(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(event_mu_);
  if (observed_epoch_ != activity_epoch_) {
    observed_epoch_ = activity_epoch_;
    return true;
  }
  const bool woke = event_cv_.wait_for(
      lk, timeout, [&] { return observed_epoch_ != activity_epoch_; });
  if (woke) observed_epoch_ = activity_epoch_;
  return woke;
}

void EventLoop::send(ConnId conn,
                     std::shared_ptr<const std::vector<std::uint8_t>> bytes) {
  {
    std::lock_guard<std::mutex> lk(cmd_mu_);
    commands_.push_back(
        Command{Command::Kind::kSend, conn, std::move(bytes)});
  }
  wake();
}

void EventLoop::close_conn(ConnId conn) {
  {
    std::lock_guard<std::mutex> lk(cmd_mu_);
    commands_.push_back(Command{Command::Kind::kClose, conn, nullptr});
  }
  wake();
}

bool EventLoop::flush(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool cmds_pending;
    {
      std::lock_guard<std::mutex> lk(cmd_mu_);
      cmds_pending = !commands_.empty();
    }
    if (!cmds_pending && total_outbuf_.load() == 0) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    wake();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::vector<ConnId> EventLoop::take_accepted() {
  std::lock_guard<std::mutex> lk(event_mu_);
  std::vector<ConnId> out;
  out.swap(accepted_);
  return out;
}

std::vector<ConnId> EventLoop::take_closed() {
  std::lock_guard<std::mutex> lk(event_mu_);
  std::vector<ConnId> out;
  out.swap(closed_);
  return out;
}

std::size_t EventLoop::peak_queue_depth() const { return peak_depth_.load(); }

std::size_t EventLoop::open_connections() const { return open_conns_.load(); }

std::uint64_t EventLoop::accept_pauses() const {
  return accept_pauses_.load();
}

std::uint64_t EventLoop::read_pauses() const { return read_pauses_.load(); }

}  // namespace adafl::net::transport
