// Non-blocking epoll event loop for the deployed server.
//
// One loop thread owns every socket: the listening TCP fd (accept is part
// of the loop — EMFILE/ENFILE pauses accepting with exponential backoff
// instead of killing the server), any auxiliary fds registered via
// watch_fd() (the UDP mux fd), and every accepted connection. Reads are
// non-blocking with a per-connection byte budget per cycle so one firehose
// client cannot starve 9,999 idle ones, and completed frames are decoded
// incrementally with FrameParser::consume (no stream-buffer copy for frames
// that arrive whole).
//
// Completed frames land in bounded per-shard queues (shard = conn id mod
// shards). When a shard's queue reaches the configured depth the loop stops
// reading from — unregisters EPOLLIN for — every connection feeding that
// shard, which pushes backpressure into the kernel socket buffers and from
// there to the sender, instead of growing server memory. The session thread
// drains shards with poll_shard()/poll_all() and the loop resumes paused
// connections once the queue falls below half depth.
//
// Sends go through the loop thread too: send() enqueues an immutable,
// shared byte buffer (a round's MODEL broadcast is encoded once and the
// same buffer is queued to all 10,000 connections — zero copies) and the
// loop flushes it opportunistically, falling back to EPOLLOUT when the
// socket would block. A connection whose unsent backlog exceeds
// max_outbuf_bytes is dropped as a dead consumer.
//
// Thread model: exactly one loop thread (start()/stop()) and one session
// thread calling the public API. InFrame timestamps let the session record
// the frame-dispatch latency histogram (enqueue -> drain).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport/frame.h"

namespace adafl::net::transport {

/// Identifies one accepted connection for the lifetime of the loop.
/// Ids are never reused; shard(conn) == conn % shards.
using ConnId = std::uint64_t;

struct EventLoopConfig {
  /// Number of frame queues / decode shards (>= 1).
  int shards = 1;
  /// Frames buffered per shard before its connections' reads are paused.
  std::size_t queue_depth = 1024;
  /// Max bytes read from one connection per loop cycle (fairness budget).
  std::size_t read_budget = 256 * 1024;
  /// Max concurrent accepted connections; 0 = unlimited. When at the cap
  /// accepting pauses (clients queue in the kernel backlog) and resumes as
  /// connections close.
  int max_clients = 0;
  /// Unsent backlog (logical bytes) per connection before it is declared a
  /// dead consumer and dropped.
  std::size_t max_outbuf_bytes = 256u * 1024u * 1024u;
  /// First EMFILE/ENFILE accept-pause; doubles per consecutive failure up
  /// to accept_backoff_max.
  std::chrono::milliseconds accept_backoff = std::chrono::milliseconds(10);
  std::chrono::milliseconds accept_backoff_max =
      std::chrono::milliseconds(1000);
};

/// One frame handed from the loop to the session, stamped at enqueue time
/// so the session can observe dispatch latency.
struct InFrame {
  ConnId conn = 0;
  Frame frame;
  std::chrono::steady_clock::time_point enqueued;
};

class EventLoop {
 public:
  explicit EventLoop(EventLoopConfig cfg);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Adopts a listening TCP socket (already bound + listening). The loop
  /// accepts from it; the caller must not use the fd afterwards except to
  /// close it after stop(). Call before start().
  void adopt_listener(int listen_fd);

  /// Registers an auxiliary readable fd (e.g. the UDP mux socket); `cb`
  /// runs on the loop thread whenever it is readable. Call before start().
  void watch_fd(int fd, std::function<void()> cb);

  void start();
  /// Stops the loop thread and closes every accepted connection.
  void stop();

  // --- Session-thread API -------------------------------------------------

  /// Moves up to `max` queued frames from one shard into `out` (appended).
  std::size_t poll_shard(int shard, std::vector<InFrame>& out,
                         std::size_t max);
  /// Drains every shard (in shard order) into `out`.
  std::size_t poll_all(std::vector<InFrame>& out);
  /// Blocks until any activity (frame, accept, close) since the last poll,
  /// or timeout. Returns true if there was activity.
  bool wait_activity(std::chrono::milliseconds timeout);

  /// Queues `bytes` for transmission on `conn`. The buffer is shared, not
  /// copied — encode a broadcast once and send the same pointer to every
  /// connection. No-op on unknown/closed ids.
  void send(ConnId conn, std::shared_ptr<const std::vector<std::uint8_t>> bytes);
  /// Closes a connection (flushes nothing; immediate). No-op on unknown ids.
  void close_conn(ConnId conn);

  /// Waits (polling) until every connection's send backlog has been handed
  /// to the kernel, or `timeout`. Returns true when fully flushed. Used
  /// before stop() so the final SHUTDOWN broadcast actually leaves the box.
  bool flush(std::chrono::milliseconds timeout);

  /// Connections accepted since the last call.
  std::vector<ConnId> take_accepted();
  /// Connections closed (peer hangup, malformed stream, outbuf overflow)
  /// since the last call. close_conn() requests are included.
  std::vector<ConnId> take_closed();

  // --- Introspection ------------------------------------------------------

  int shards() const { return cfg_.shards; }
  /// High-water mark across all shard queues since start().
  std::size_t peak_queue_depth() const;
  std::size_t open_connections() const;
  /// Times accept was paused for fd exhaustion (EMFILE/ENFILE).
  std::uint64_t accept_pauses() const;
  /// Times a connection's reads were paused for shard backpressure.
  std::uint64_t read_pauses() const;

 private:
  struct Conn;
  struct Shard;

  void run();
  void wake();
  void notify_activity();
  void handle_accept();
  void pause_accept(std::chrono::milliseconds delay);
  void resume_accept_if_due(std::chrono::steady_clock::time_point now);
  void handle_readable(Conn* c);
  void handle_writable(Conn* c);
  void drop_conn(Conn* c);
  void enqueue_frame(Conn* c, Frame&& f);
  void pause_shard_reads(int shard);
  void resume_shard_reads(int shard);
  void apply_commands();
  void update_events(Conn* c);

  EventLoopConfig cfg_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: session thread -> loop thread
  int listen_fd_ = -1;
  bool accept_paused_ = false;
  bool accept_at_cap_ = false;
  std::chrono::steady_clock::time_point accept_resume_at_{};
  std::chrono::milliseconds accept_delay_{0};

  std::vector<std::pair<int, std::function<void()>>> watched_;

  // Owned by the loop thread exclusively.
  std::unordered_map<ConnId, std::unique_ptr<Conn>> conns_;
  ConnId next_id_ = 0;
  std::vector<std::uint8_t> read_chunk_;
  bool cycle_activity_ = false;

  // Shared with the session thread.
  std::unique_ptr<Shard[]> shards_;
  std::mutex cmd_mu_;
  struct Command {
    enum class Kind { kSend, kClose } kind;
    ConnId conn;
    std::shared_ptr<const std::vector<std::uint8_t>> bytes;
  };
  std::vector<Command> commands_;
  std::mutex event_mu_;
  std::condition_variable event_cv_;
  std::uint64_t activity_epoch_ = 0;
  std::uint64_t observed_epoch_ = 0;
  std::vector<ConnId> accepted_;
  std::vector<ConnId> closed_;

  std::atomic<std::size_t> peak_depth_{0};
  std::atomic<std::size_t> total_outbuf_{0};
  std::atomic<std::size_t> open_conns_{0};
  std::atomic<std::uint64_t> accept_pauses_{0};
  std::atomic<std::uint64_t> read_pauses_{0};

  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace adafl::net::transport
