#include "net/transport/faulty.h"

#include <thread>

#include "tensor/check.h"

namespace adafl::net::transport {

const char* to_string(FaultDir d) {
  return d == FaultDir::kSend ? "send" : "recv";
}

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kSever: return "sever";
  }
  return "?";
}

// --- FaultPlan builders. --------------------------------------------------

namespace {

FaultRule base_rule(FaultDir dir, FaultKind kind) {
  FaultRule r;
  r.dir = dir;
  r.kind = kind;
  return r;
}

/// splitmix64: tiny, seedable, and independent of tensor::Rng so a plan's
/// shape can never drift with unrelated RNG changes.
std::uint64_t mix64(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FaultPlan& FaultPlan::drop(FaultDir dir, MsgType t, std::int64_t round) {
  FaultRule r = base_rule(dir, FaultKind::kDrop);
  r.msg_type = static_cast<int>(t);
  r.round = round;
  rules.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::drop_frame(FaultDir dir, std::uint64_t index) {
  FaultRule r = base_rule(dir, FaultKind::kDrop);
  r.frame_index = index;
  rules.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::corrupt_recv(MsgType t, std::int64_t round,
                                   std::size_t offset) {
  FaultRule r = base_rule(FaultDir::kRecv, FaultKind::kCorrupt);
  r.msg_type = static_cast<int>(t);
  r.round = round;
  r.corrupt_offset = offset;
  rules.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::duplicate(FaultDir dir, MsgType t, std::int64_t round) {
  FaultRule r = base_rule(dir, FaultKind::kDuplicate);
  r.msg_type = static_cast<int>(t);
  r.round = round;
  rules.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::delay_frame(FaultDir dir, MsgType t, std::int64_t round,
                                  std::chrono::milliseconds d) {
  FaultRule r = base_rule(dir, FaultKind::kDelay);
  r.msg_type = static_cast<int>(t);
  r.round = round;
  r.delay = d;
  rules.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::sever_on_recv(MsgType t, std::int64_t round) {
  FaultRule r = base_rule(FaultDir::kRecv, FaultKind::kSever);
  r.msg_type = static_cast<int>(t);
  r.round = round;
  rules.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::sever_on_send_frame(std::uint64_t index) {
  FaultRule r = base_rule(FaultDir::kSend, FaultKind::kSever);
  r.frame_index = index;
  rules.push_back(r);
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, int n_faults,
                            std::uint64_t horizon, bool include_sever) {
  ADAFL_CHECK_MSG(n_faults >= 0, "FaultPlan::random: negative fault count");
  ADAFL_CHECK_MSG(horizon > 0, "FaultPlan::random: zero horizon");
  std::uint64_t s = seed;
  FaultPlan plan;
  for (int i = 0; i < n_faults; ++i) {
    // Only fully recoverable faults, and only on round-data frames: the
    // server's retransmit nudge retries through a lost MODEL/SCORE/SELECT/
    // UPDATE, the receivers absorb duplicates, and delays are waited out —
    // so a random plan can never wedge a run or change its result. Blind
    // frame-index faults would not keep that promise (a dropped WELCOME or
    // SKIP is neither retransmitted nor harmless).
    static constexpr FaultKind kKinds[] = {FaultKind::kDrop,
                                           FaultKind::kDuplicate,
                                           FaultKind::kDelay};
    struct Target {
      FaultDir dir;
      MsgType type;
    };
    static constexpr Target kTargets[] = {{FaultDir::kSend, MsgType::kScore},
                                          {FaultDir::kSend, MsgType::kUpdate},
                                          {FaultDir::kRecv, MsgType::kModel},
                                          {FaultDir::kRecv, MsgType::kSelect}};
    const Target t = kTargets[mix64(s) % 4];
    FaultRule r = base_rule(t.dir, kKinds[mix64(s) % 3]);
    r.msg_type = static_cast<int>(t.type);
    // `horizon` is the round span the faults land in (rounds 1..horizon).
    r.round = static_cast<std::int64_t>(1 + mix64(s) % horizon);
    r.delay = std::chrono::milliseconds(1 + mix64(s) % 20);
    plan.rules.push_back(r);
  }
  if (include_sever) {
    FaultRule r = base_rule(FaultDir::kRecv, FaultKind::kSever);
    r.msg_type = static_cast<int>(MsgType::kModel);
    r.round = static_cast<std::int64_t>(1 + mix64(s) % horizon);
    plan.rules.push_back(r);
  }
  return plan;
}

FaultPlan& FaultPlan::iid_frame_loss(double prob, std::uint64_t seed) {
  ADAFL_CHECK_MSG(prob >= 0.0 && prob < 1.0,
                  "iid_frame_loss: probability " << prob << " out of [0, 1)");
  struct Target {
    FaultDir dir;
    MsgType type;
  };
  static constexpr Target kTargets[] = {{FaultDir::kSend, MsgType::kScore},
                                        {FaultDir::kSend, MsgType::kUpdate},
                                        {FaultDir::kRecv, MsgType::kModel},
                                        {FaultDir::kRecv, MsgType::kSelect}};
  std::uint64_t s = seed;
  for (const Target& t : kTargets) {
    FaultRule r = base_rule(t.dir, FaultKind::kDrop);
    r.msg_type = static_cast<int>(t.type);
    r.probability = prob;
    r.rng = mix64(s);  // independent stream per rule
    rules.push_back(r);
  }
  return *this;
}

// --- FaultyTransport. -----------------------------------------------------

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {
  ADAFL_CHECK_MSG(inner_ != nullptr, "FaultyTransport: null inner transport");
}

void FaultyTransport::set_on_fault(OnFault cb) {
  std::lock_guard<std::mutex> lock(mu_);
  on_fault_ = std::move(cb);
}

std::uint64_t FaultyTransport::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

std::optional<FaultRule> FaultyTransport::take_match(FaultDir dir,
                                                     const Frame& f) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t idx = dir == FaultDir::kSend ? sent_++ : recvd_++;
  for (FaultRule& r : plan_.rules) {
    if (r.fired || r.dir != dir) continue;
    if (r.frame_index != kAnyFrame && r.frame_index != idx) continue;
    if (r.msg_type >= 0 && r.msg_type != static_cast<int>(f.type)) continue;
    if (r.round >= 0 &&
        static_cast<std::uint32_t>(r.round) != f.round)
      continue;
    if (r.probability >= 0.0) {
      // Persistent rule: roll its private stream and never retire it.
      const double u =
          static_cast<double>(mix64(r.rng) >> 11) * 0x1.0p-53;
      if (u >= r.probability) continue;
      ++fired_;
      return r;
    }
    r.fired = true;
    ++fired_;
    return r;
  }
  return std::nullopt;
}

bool FaultyTransport::send(const Frame& f) {
  const std::optional<FaultRule> rule = take_match(FaultDir::kSend, f);
  if (!rule) return inner_->send(f);
  OnFault cb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cb = on_fault_;
  }
  if (cb) cb(*rule, f);
  switch (rule->kind) {
    case FaultKind::kDrop:
      return true;  // vanished in flight; the sender cannot tell
    case FaultKind::kDuplicate:
      return inner_->send(f) && inner_->send(f);
    case FaultKind::kDelay:
      std::this_thread::sleep_for(rule->delay);
      return inner_->send(f);
    case FaultKind::kSever:
      inner_->close();
      return false;
    case FaultKind::kCorrupt: {
      std::vector<std::uint8_t> bytes = encode_frame(f);
      bytes[rule->corrupt_offset % bytes.size()] ^= 0xFF;
      try {
        return inner_->send(decode_frame(bytes));
      } catch (const CheckError&) {
        // Detectable damage: the peer's parser would poison the stream and
        // drop the connection — model that as an abrupt loss.
        inner_->close();
        return false;
      }
    }
  }
  return false;
}

std::optional<Frame> FaultyTransport::recv(std::chrono::milliseconds timeout) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dup_pending_) {
      Frame f = std::move(*dup_pending_);
      dup_pending_.reset();
      return f;
    }
  }
  std::optional<Frame> f = inner_->recv(timeout);
  if (!f) return std::nullopt;
  const std::optional<FaultRule> rule = take_match(FaultDir::kRecv, *f);
  if (!rule) return f;
  OnFault cb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cb = on_fault_;
  }
  if (cb) cb(*rule, *f);
  switch (rule->kind) {
    case FaultKind::kDrop:
      return std::nullopt;  // consumed and discarded
    case FaultKind::kDuplicate: {
      std::lock_guard<std::mutex> lock(mu_);
      dup_pending_ = *f;
      return f;
    }
    case FaultKind::kDelay:
      std::this_thread::sleep_for(rule->delay);
      return f;
    case FaultKind::kSever:
      inner_->close();  // the frame dies with the connection
      return std::nullopt;
    case FaultKind::kCorrupt: {
      std::vector<std::uint8_t> bytes = encode_frame(*f);
      bytes[rule->corrupt_offset % bytes.size()] ^= 0xFF;
      // CheckError from decode_frame propagates: per the Transport contract
      // that is exactly what a malformed inbound stream looks like.
      return decode_frame(bytes);
    }
  }
  return std::nullopt;
}

bool FaultyTransport::closed() const { return inner_->closed(); }

void FaultyTransport::close() { inner_->close(); }

std::string FaultyTransport::peer() const {
  return "faulty(" + inner_->peer() + ")";
}

// --- FaultyDatagramLink. --------------------------------------------------

DatagramFaultPlan DatagramFaultPlan::iid(double prob, std::uint64_t seed) {
  ADAFL_CHECK_MSG(prob >= 0.0 && prob < 1.0,
                  "DatagramFaultPlan::iid: loss " << prob << " out of [0, 1)");
  DatagramFaultPlan p;
  p.drop_prob = prob;
  p.seed = seed;
  return p;
}

DatagramFaultPlan DatagramFaultPlan::burst(double rate, double mean_burst,
                                           std::uint64_t seed) {
  ADAFL_CHECK_MSG(rate >= 0.0 && rate < 1.0,
                  "DatagramFaultPlan::burst: loss " << rate
                                                    << " out of [0, 1)");
  ADAFL_CHECK_MSG(mean_burst >= 1.0,
                  "DatagramFaultPlan::burst: mean burst < 1 datagram");
  DatagramFaultPlan p;
  p.ge_q = 1.0 / mean_burst;
  p.ge_p = rate > 0.0 ? rate * p.ge_q / (1.0 - rate) : 0.0;
  p.seed = seed;
  return p;
}

FaultyDatagramLink::FaultyDatagramLink(std::unique_ptr<DatagramLink> inner,
                                       DatagramFaultPlan plan)
    : inner_(std::move(inner)), plan_(plan), rng_(plan.seed) {
  ADAFL_CHECK_MSG(inner_ != nullptr, "FaultyDatagramLink: null inner link");
}

std::uint64_t FaultyDatagramLink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t FaultyDatagramLink::reordered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reordered_;
}

std::uint64_t FaultyDatagramLink::delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

bool FaultyDatagramLink::roll(double p) {
  if (p <= 0.0) return false;
  return static_cast<double>(mix64(rng_) >> 11) * 0x1.0p-53 < p;
}

bool FaultyDatagramLink::send(std::span<const std::uint8_t> datagram) {
  std::optional<std::vector<std::uint8_t>> flush;
  bool drop = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Gilbert-Elliott: the current state decides this datagram's fate,
    // then the chain steps. A fresh link starts in the good state.
    if (bad_state_) {
      drop = true;
      if (roll(plan_.ge_q)) bad_state_ = false;
    } else {
      if (roll(plan_.ge_p)) bad_state_ = true;
    }
    if (!drop && roll(plan_.drop_prob)) drop = true;
    if (drop) {
      ++dropped_;
    } else if (held_) {
      // Release the held-back datagram after this one: pairwise swap.
      flush = std::move(held_);
      held_.reset();
      delivered_ += 2;
    } else if (roll(plan_.reorder_prob)) {
      held_.emplace(datagram.begin(), datagram.end());
      ++reordered_;
      return true;  // will be sent behind its successor (or lost at close)
    } else {
      ++delivered_;
    }
  }
  if (drop) return true;  // vanished in flight; the sender cannot tell
  if (!inner_->send(datagram)) return false;
  if (flush && !inner_->send(*flush)) return false;
  return true;
}

std::optional<std::vector<std::uint8_t>> FaultyDatagramLink::recv(
    std::chrono::milliseconds timeout) {
  return inner_->recv(timeout);
}

bool FaultyDatagramLink::closed() const { return inner_->closed(); }

void FaultyDatagramLink::close() { inner_->close(); }

std::string FaultyDatagramLink::peer() const {
  return "faulty(" + inner_->peer() + ")";
}

}  // namespace adafl::net::transport
