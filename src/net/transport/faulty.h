// Deterministic chaos injection for the deployed FL transport.
//
// FaultyTransport wraps any Transport (loopback or TCP) and applies a
// scripted FaultPlan: drop a frame, corrupt a byte of its encoding,
// duplicate it, delay it, or sever the connection — each rule one-shot and
// matched by direction, frame index, message type, and/or round. Because the
// plan is data (and the random builder is seeded), every chaos run is
// reproducible bit-for-bit at any thread count.
//
// Fault semantics mirror what the real network would do:
//   * drop       — the frame silently vanishes (send still reports success,
//                  exactly like a TCP send whose segments die in flight).
//   * corrupt    — the frame is re-encoded, one byte is XOR-flipped, and the
//                  result is re-parsed. A flip the wire format *detects*
//                  (payload/CRC/magic damage) behaves like a malformed
//                  stream: recv throws CheckError, send severs. A flip it
//                  cannot detect (header round/client_id, which the CRC does
//                  not cover) delivers a valid-but-wrong frame — the case
//                  the session layer's staleness checks must absorb.
//   * duplicate  — the frame is delivered twice.
//   * delay      — delivery is postponed by a fixed interval.
//   * sever      — the connection drops abruptly (SIGKILL-grade: no
//                  shutdown handshake), before the matched frame arrives.
//
// The optional on_fault callback fires as a rule triggers; tests use it to
// stop a server at an exact protocol moment (kill-and-resume proofs).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/transport/transport.h"
#include "net/transport/udp.h"

namespace adafl::net::transport {

enum class FaultDir : std::uint8_t { kSend, kRecv };
enum class FaultKind : std::uint8_t {
  kDrop,
  kCorrupt,
  kDuplicate,
  kDelay,
  kSever,
};

const char* to_string(FaultDir d);
const char* to_string(FaultKind k);

/// Matches any frame index.
constexpr std::uint64_t kAnyFrame = ~std::uint64_t{0};

/// One scripted fault. All set matchers must hold for the rule to fire;
/// every rule fires at most once.
struct FaultRule {
  FaultDir dir = FaultDir::kRecv;
  FaultKind kind = FaultKind::kDrop;

  // Matchers (wildcards: kAnyFrame / -1).
  std::uint64_t frame_index = kAnyFrame;  ///< Nth frame in `dir`, 0-based
  int msg_type = -1;                      ///< raw MsgType value
  std::int64_t round = -1;                ///< frame round field

  // Parameters.
  std::size_t corrupt_offset = 0;  ///< byte offset into the encoded frame
  std::chrono::milliseconds delay{0};

  /// < 0: scripted one-shot rule (fires once, then `fired`). >= 0:
  /// persistent probabilistic rule — every matching frame rolls this
  /// probability on the rule's own splitmix64 stream (`rng`), and the rule
  /// never retires. Used to model sustained loss rates for loss sweeps.
  double probability = -1.0;
  std::uint64_t rng = 0;  ///< per-rule RNG state for probabilistic rules

  bool fired = false;
};

/// A scripted sequence of faults. Builders return *this for chaining.
struct FaultPlan {
  std::vector<FaultRule> rules;

  FaultPlan& drop(FaultDir dir, MsgType t, std::int64_t round = -1);
  FaultPlan& drop_frame(FaultDir dir, std::uint64_t index);
  /// Corruption is modelled on the receive path (where the parser sits).
  FaultPlan& corrupt_recv(MsgType t, std::int64_t round, std::size_t offset);
  FaultPlan& duplicate(FaultDir dir, MsgType t, std::int64_t round = -1);
  FaultPlan& delay_frame(FaultDir dir, MsgType t, std::int64_t round,
                         std::chrono::milliseconds d);
  /// Abrupt connection loss just before the matched frame is delivered.
  FaultPlan& sever_on_recv(MsgType t, std::int64_t round = -1);
  /// Abrupt connection loss when the Nth outbound frame is attempted.
  FaultPlan& sever_on_send_frame(std::uint64_t index);

  /// Seed-deterministic plan: `n_faults` fully recoverable faults (drop /
  /// duplicate / delay of round-data frames) spread over rounds
  /// 1..`horizon`, plus one MODEL-recv sever when `include_sever`. Every
  /// generated fault is survived by nudge retransmission or deduplication,
  /// so a random plan never wedges a run or changes its final weights.
  static FaultPlan random(std::uint64_t seed, int n_faults,
                          std::uint64_t horizon, bool include_sever);

  /// Persistent i.i.d. loss of round-data frames: every SCORE/UPDATE send
  /// and MODEL/SELECT recv is independently dropped with probability
  /// `prob`. Control frames (HELLO/WELCOME/SHUTDOWN) are never touched, so
  /// — like random() — every loss is survivable via the retransmit nudge.
  /// This is the TCP-side counterpart of DatagramFaultPlan loss rates, used
  /// to compare transports at matched loss in scripts/loss_sweep.sh.
  FaultPlan& iid_frame_loss(double prob, std::uint64_t seed);
};

/// Transport decorator applying a FaultPlan to the frames passing through.
/// Thread-safe to the same degree as the wrapped transport.
class FaultyTransport : public Transport {
 public:
  /// (rule that fired, frame it matched)
  using OnFault = std::function<void(const FaultRule&, const Frame&)>;

  FaultyTransport(std::unique_ptr<Transport> inner, FaultPlan plan);

  void set_on_fault(OnFault cb);

  /// Rules fired so far.
  std::uint64_t faults_fired() const;

  bool send(const Frame& f) override;
  std::optional<Frame> recv(std::chrono::milliseconds timeout) override;
  bool closed() const override;
  void close() override;
  std::string peer() const override;

 private:
  /// Returns (a copy of) the first unfired matching rule, marking it fired.
  std::optional<FaultRule> take_match(FaultDir dir, const Frame& f);

  std::unique_ptr<Transport> inner_;
  OnFault on_fault_;

  mutable std::mutex mu_;
  FaultPlan plan_;
  std::uint64_t sent_ = 0;
  std::uint64_t recvd_ = 0;
  std::uint64_t fired_ = 0;
  std::optional<Frame> dup_pending_;  ///< recv-side duplicate to replay
};

// --- Datagram-level chaos (UDP transport). --------------------------------

/// Seed-deterministic datagram fault model, applied on the SEND path of a
/// FaultyDatagramLink (so outcomes never depend on receiver poll timing):
///   * i.i.d. loss     — each datagram independently dropped with drop_prob.
///   * reorder         — with reorder_prob a datagram is held back and
///                       released after the next one (pairwise swap).
///   * Gilbert-Elliott — two-state burst loss: in the bad state every
///                       datagram is lost; good->bad with ge_p, bad->good
///                       with ge_q per datagram.
struct DatagramFaultPlan {
  double drop_prob = 0.0;
  double reorder_prob = 0.0;
  double ge_p = 0.0;
  double ge_q = 1.0;
  std::uint64_t seed = 0;

  /// Pure i.i.d. loss at `prob`.
  static DatagramFaultPlan iid(double prob, std::uint64_t seed);
  /// Gilbert-Elliott with long-run loss `rate` and mean burst length
  /// `mean_burst` datagrams: ge_q = 1/mean_burst, ge_p = rate*ge_q/(1-rate).
  static DatagramFaultPlan burst(double rate, double mean_burst,
                                 std::uint64_t seed);
};

/// DatagramLink decorator applying a DatagramFaultPlan. Deterministic for a
/// fixed seed and send sequence at any thread count or poll cadence.
class FaultyDatagramLink final : public DatagramLink {
 public:
  FaultyDatagramLink(std::unique_ptr<DatagramLink> inner,
                     DatagramFaultPlan plan);

  std::uint64_t dropped() const;
  std::uint64_t reordered() const;
  std::uint64_t delivered() const;

  bool send(std::span<const std::uint8_t> datagram) override;
  std::optional<std::vector<std::uint8_t>> recv(
      std::chrono::milliseconds timeout) override;
  bool closed() const override;
  void close() override;
  std::string peer() const override;

 private:
  bool roll(double p);  ///< mu_ held

  std::unique_ptr<DatagramLink> inner_;
  DatagramFaultPlan plan_;
  mutable std::mutex mu_;
  std::uint64_t rng_;
  bool bad_state_ = false;
  std::uint64_t dropped_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t delivered_ = 0;
  std::optional<std::vector<std::uint8_t>> held_;  ///< reorder hold-back
};

}  // namespace adafl::net::transport
