#include "net/transport/frame.h"

#include "compress/bytes.h"
#include "net/transport/crc32.h"
#include "tensor/check.h"

namespace adafl::net::transport {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kWelcome: return "welcome";
    case MsgType::kModel: return "model";
    case MsgType::kScore: return "score";
    case MsgType::kSelect: return "select";
    case MsgType::kSkip: return "skip";
    case MsgType::kUpdate: return "update";
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kStandbyHello: return "standby_hello";
    case MsgType::kReplicate: return "replicate";
    case MsgType::kUpdateAgg: return "update_agg";
    case MsgType::kRelayHello: return "relay_hello";
    case MsgType::kChildGone: return "child_gone";
  }
  return "?";
}

bool is_valid_msg_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(MsgType::kHello) &&
         raw <= static_cast<std::uint8_t>(MsgType::kChildGone);
}

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  ADAFL_CHECK_MSG(f.payload.size() <= kMaxFramePayload,
                  "frame: payload of " << f.payload.size()
                                       << " bytes exceeds the cap");
  std::vector<std::uint8_t> out;
  out.reserve(f.wire_size());
  bytes::put_u32(out, kFrameMagic);
  bytes::put_u8(out, static_cast<std::uint8_t>(f.type));
  bytes::put_u8(out, 0);
  bytes::put_u8(out, 0);
  bytes::put_u8(out, 0);
  bytes::put_u32(out, f.round);
  bytes::put_u32(out, f.client_id);
  bytes::put_u32(out, static_cast<std::uint32_t>(f.payload.size()));
  bytes::put_u32(out, crc32(f.payload));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  return out;
}

namespace {

/// Parses and validates the fixed header; returns the declared payload
/// length via `payload_len`.
Frame parse_header(std::span<const std::uint8_t> hdr,
                   std::uint32_t* payload_len, std::uint32_t* crc) {
  bytes::Reader r(hdr);
  const std::uint32_t magic = r.u32();
  ADAFL_CHECK_MSG(magic == kFrameMagic, "frame: bad magic 0x" << std::hex
                                                              << magic);
  const std::uint8_t type_raw = r.u8();
  ADAFL_CHECK_MSG(is_valid_msg_type(type_raw),
                  "frame: unknown message type " << int(type_raw));
  const std::uint8_t r0 = r.u8(), r1 = r.u8(), r2 = r.u8();
  ADAFL_CHECK_MSG(r0 == 0 && r1 == 0 && r2 == 0,
                  "frame: nonzero reserved header bytes");
  Frame f;
  f.type = static_cast<MsgType>(type_raw);
  f.round = r.u32();
  f.client_id = r.u32();
  *payload_len = r.u32();
  ADAFL_CHECK_MSG(*payload_len <= kMaxFramePayload,
                  "frame: oversized length prefix " << *payload_len);
  *crc = r.u32();
  return f;
}

}  // namespace

Frame decode_frame(std::span<const std::uint8_t> bytes_in) {
  ADAFL_CHECK_MSG(bytes_in.size() >= kFrameHeaderBytes,
                  "frame: buffer shorter than header");
  std::uint32_t payload_len = 0, crc = 0;
  Frame f = parse_header(bytes_in.first(kFrameHeaderBytes), &payload_len,
                         &crc);
  ADAFL_CHECK_MSG(bytes_in.size() == kFrameHeaderBytes + payload_len,
                  "frame: buffer size does not match length prefix");
  auto payload = bytes_in.subspan(kFrameHeaderBytes);
  ADAFL_CHECK_MSG(crc32(payload) == crc, "frame: payload CRC mismatch");
  f.payload.assign(payload.begin(), payload.end());
  return f;
}

void FrameParser::feed(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  std::size_t off = 0;
  while (buf_.size() - off >= kFrameHeaderBytes) {
    std::uint32_t payload_len = 0, crc = 0;
    Frame f = parse_header(
        std::span<const std::uint8_t>(buf_).subspan(off, kFrameHeaderBytes),
        &payload_len, &crc);
    if (buf_.size() - off < kFrameHeaderBytes + payload_len) break;
    auto payload = std::span<const std::uint8_t>(buf_).subspan(
        off + kFrameHeaderBytes, payload_len);
    ADAFL_CHECK_MSG(crc32(payload) == crc, "frame: payload CRC mismatch");
    f.payload.assign(payload.begin(), payload.end());
    ready_.push_back(std::move(f));
    off += kFrameHeaderBytes + payload_len;
  }
  if (off > 0)
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(off));
}

bool FrameParser::try_complete_buffered() {
  if (buf_.size() < kFrameHeaderBytes) return false;
  std::uint32_t payload_len = 0, crc = 0;
  Frame f = parse_header(
      std::span<const std::uint8_t>(buf_).first(kFrameHeaderBytes),
      &payload_len, &crc);
  if (buf_.size() < kFrameHeaderBytes + payload_len) return false;
  // Both feed() and consume() keep at most one partial frame buffered, so a
  // complete frame here consumes the whole buffer.
  auto payload =
      std::span<const std::uint8_t>(buf_).subspan(kFrameHeaderBytes,
                                                  payload_len);
  ADAFL_CHECK_MSG(crc32(payload) == crc, "frame: payload CRC mismatch");
  f.payload.assign(payload.begin(), payload.end());
  ready_.push_back(std::move(f));
  buf_.clear();
  return true;
}

std::size_t FrameParser::consume(std::span<const std::uint8_t> data) {
  std::size_t completed = 0;
  // Finish the carried-over partial frame first, copying in only the bytes
  // it still needs (header remainder, then payload remainder).
  while (!buf_.empty() && !data.empty()) {
    std::size_t need;
    if (buf_.size() < kFrameHeaderBytes) {
      need = kFrameHeaderBytes - buf_.size();
    } else {
      std::uint32_t payload_len = 0, crc = 0;
      parse_header(
          std::span<const std::uint8_t>(buf_).first(kFrameHeaderBytes),
          &payload_len, &crc);
      need = kFrameHeaderBytes + payload_len - buf_.size();
    }
    const std::size_t take = std::min(need, data.size());
    buf_.insert(buf_.end(), data.begin(),
                data.begin() + static_cast<std::ptrdiff_t>(take));
    data = data.subspan(take);
    if (try_complete_buffered()) ++completed;
  }
  // Decode frames wholly contained in the caller's buffer in place.
  std::size_t off = 0;
  while (data.size() - off >= kFrameHeaderBytes) {
    std::uint32_t payload_len = 0, crc = 0;
    Frame f = parse_header(data.subspan(off, kFrameHeaderBytes),
                           &payload_len, &crc);
    if (data.size() - off < kFrameHeaderBytes + payload_len) break;
    auto payload = data.subspan(off + kFrameHeaderBytes, payload_len);
    ADAFL_CHECK_MSG(crc32(payload) == crc, "frame: payload CRC mismatch");
    f.payload.assign(payload.begin(), payload.end());
    ready_.push_back(std::move(f));
    ++completed;
    off += kFrameHeaderBytes + payload_len;
  }
  // Retain only the trailing partial frame.
  if (off < data.size())
    buf_.insert(buf_.end(),
                data.begin() + static_cast<std::ptrdiff_t>(off), data.end());
  return completed;
}

std::optional<Frame> FrameParser::next() {
  if (ready_.empty()) return std::nullopt;
  Frame f = std::move(ready_.front());
  ready_.pop_front();
  return f;
}

}  // namespace adafl::net::transport
