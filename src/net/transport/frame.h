// Framed message envelope for the deployed FL transport.
//
// Every message on a byte-stream connection is one frame (little-endian):
//
//   u32 magic        "AFL1" (0x31'4C'46'41 on the wire)
//   u8  type         MsgType
//   u8  reserved[3]  must be 0
//   u32 round        communication round the message belongs to (0 = none)
//   u32 client_id    sender/addressee client id (0xFFFFFFFF = server)
//   u32 payload_len  bytes following the header (<= kMaxFramePayload)
//   u32 crc          CRC-32 of the payload bytes
//   u8  payload[payload_len]
//
// The payload of FL messages wraps the byte-exact compress::wire encoding,
// so the bytes the simulators charge are exactly the bytes that cross the
// socket (plus this fixed 24-byte envelope).
//
// FrameParser consumes an arbitrary byte stream incrementally (partial
// frames, multiple frames per read) and throws CheckError on any malformed
// input — bad magic, unknown type, nonzero reserved bytes, oversized length
// prefix, CRC mismatch — without ever over-reading.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

namespace adafl::net::transport {

/// FL session protocol message types (see docs/deployment.md).
enum class MsgType : std::uint8_t {
  kHello = 1,     ///< client -> server: join / rejoin request
  kWelcome = 2,   ///< server -> client: accepted + run configuration
  kModel = 3,     ///< server -> client: global model broadcast for a round
  kScore = 4,     ///< client -> server: utility score after local training
  kSelect = 5,    ///< server -> client: selected; carries compression ratio
  kSkip = 6,      ///< server -> client: not selected this round
  kUpdate = 7,    ///< client -> server: compressed model update
  kPing = 8,      ///< liveness probe (either direction)
  kPong = 9,      ///< liveness reply
  kShutdown = 10, ///< server -> client: training complete, disconnect
  kStandbyHello = 11,  ///< standby -> primary: subscribe as replication peer
  kReplicate = 12,     ///< primary -> standby: full checkpoint snapshot
  kUpdateAgg = 13,     ///< relay -> parent: pre-summed partial + child stats
  kRelayHello = 14,    ///< relay -> parent: join as mid-tier aggregator
  kChildGone = 15,     ///< relay -> parent: a leaf client disconnected
};

const char* to_string(MsgType t);

/// True for byte values that encode a known MsgType.
bool is_valid_msg_type(std::uint8_t raw);

constexpr std::uint32_t kFrameMagic = 0x314C4641u;  // "AFL1"
constexpr std::size_t kFrameHeaderBytes = 24;
/// Upper bound on a payload; anything larger is a malformed/hostile stream.
constexpr std::uint32_t kMaxFramePayload = 64u * 1024u * 1024u;
/// client_id value used in server-originated frames.
constexpr std::uint32_t kServerId = 0xFFFFFFFFu;

/// One protocol message.
struct Frame {
  MsgType type = MsgType::kPing;
  std::uint32_t round = 0;
  std::uint32_t client_id = kServerId;
  std::vector<std::uint8_t> payload;

  /// Total encoded size (header + payload).
  std::size_t wire_size() const { return kFrameHeaderBytes + payload.size(); }
};

/// Encodes a frame (header incl. payload CRC + payload bytes).
std::vector<std::uint8_t> encode_frame(const Frame& f);

/// Decodes exactly one frame from a complete buffer; throws CheckError if
/// the buffer is not exactly one well-formed frame.
Frame decode_frame(std::span<const std::uint8_t> bytes);

/// Incremental stream parser: feed() raw bytes as they arrive, next() pops
/// completed frames. Throws CheckError on malformed input; after a throw the
/// stream is poisoned and the connection should be dropped.
class FrameParser {
 public:
  /// Appends stream bytes and extracts any completed frames.
  void feed(std::span<const std::uint8_t> data);

  /// Non-copying incremental feed for non-blocking readers (the event
  /// loop): frames wholly contained in `data` are decoded straight out of
  /// the caller's buffer without ever passing through the internal stream
  /// buffer; only a trailing partial frame (or the continuation of one) is
  /// copied and retained. Byte-for-byte equivalent to feed() — any split of
  /// a stream across consume() calls yields the identical frame sequence
  /// (tests/test_frame.cpp pins this). Returns the number of frames
  /// completed by this call.
  std::size_t consume(std::span<const std::uint8_t> data);

  /// Pops the oldest completed frame, if any.
  std::optional<Frame> next();

  /// Bytes buffered but not yet forming a complete frame.
  std::size_t pending_bytes() const { return buf_.size(); }

 private:
  /// Decodes one frame at buf_[0..] if complete; used by the consume() path
  /// to finish a partial frame carried over from an earlier call.
  bool try_complete_buffered();

  std::vector<std::uint8_t> buf_;
  std::deque<Frame> ready_;
};

}  // namespace adafl::net::transport
