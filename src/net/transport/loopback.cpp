#include "net/transport/loopback.h"

namespace adafl::net::transport {

std::pair<std::unique_ptr<LoopbackTransport>,
          std::unique_ptr<LoopbackTransport>>
make_loopback_pair() {
  auto a_to_b = std::make_shared<LoopbackTransport::Channel>();
  auto b_to_a = std::make_shared<LoopbackTransport::Channel>();
  std::unique_ptr<LoopbackTransport> a(
      new LoopbackTransport(a_to_b, b_to_a));
  std::unique_ptr<LoopbackTransport> b(
      new LoopbackTransport(b_to_a, a_to_b));
  return {std::move(a), std::move(b)};
}

bool LoopbackTransport::send(const Frame& f) {
  auto encoded = encode_frame(f);
  std::lock_guard<std::mutex> lock(tx_->mu);
  if (tx_->closed) return false;
  tx_->queue.push_back(std::move(encoded));
  tx_->cv.notify_all();
  return true;
}

std::optional<Frame> LoopbackTransport::recv(
    std::chrono::milliseconds timeout) {
  // Drain anything already parsed first.
  if (auto f = parser_.next()) return f;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    std::vector<std::uint8_t> encoded;
    {
      std::unique_lock<std::mutex> lock(rx_->mu);
      rx_->cv.wait_until(lock, deadline, [&] {
        return !rx_->queue.empty() || rx_->closed;
      });
      if (rx_->queue.empty()) return std::nullopt;  // timeout or closed
      encoded = std::move(rx_->queue.front());
      rx_->queue.pop_front();
    }
    parser_.feed(encoded);
    if (auto f = parser_.next()) return f;
  }
}

bool LoopbackTransport::closed() const {
  std::lock_guard<std::mutex> lock(rx_->mu);
  return rx_->closed && rx_->queue.empty();
}

void LoopbackTransport::close() {
  for (auto* ch : {tx_.get(), rx_.get()}) {
    std::lock_guard<std::mutex> lock(ch->mu);
    ch->closed = true;
    ch->cv.notify_all();
  }
}

}  // namespace adafl::net::transport
