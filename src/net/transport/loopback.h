// In-process Transport: a pair of endpoints joined by two byte queues.
//
// Frames are run through encode_frame()/FrameParser on every hop — the
// loopback path exercises the exact bytes a socket would carry, so a
// deployed run over loopback is the simulator-grade reference for the TCP
// path (and is what the equivalence tests drive).
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

#include "net/transport/transport.h"

namespace adafl::net::transport {

class LoopbackTransport;

/// Creates a connected endpoint pair. Each endpoint is thread-safe against
/// its peer (one thread per endpoint, the usual client/server shape).
std::pair<std::unique_ptr<LoopbackTransport>,
          std::unique_ptr<LoopbackTransport>>
make_loopback_pair();

class LoopbackTransport final : public Transport {
 public:
  /// Destruction closes both channels, like a socket: a peer dropped by the
  /// server (conn.reset()) observes the disconnect instead of blocking on
  /// recv() forever.
  ~LoopbackTransport() override { close(); }

  bool send(const Frame& f) override;
  std::optional<Frame> recv(std::chrono::milliseconds timeout) override;
  bool closed() const override;
  void close() override;
  std::string peer() const override { return "loopback"; }

 private:
  friend std::pair<std::unique_ptr<LoopbackTransport>,
                   std::unique_ptr<LoopbackTransport>>
  make_loopback_pair();

  /// One direction of the pipe: encoded frame buffers in flight.
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<std::uint8_t>> queue;
    bool closed = false;
  };

  LoopbackTransport(std::shared_ptr<Channel> tx, std::shared_ptr<Channel> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  std::shared_ptr<Channel> tx_;  ///< frames this endpoint sends
  std::shared_ptr<Channel> rx_;  ///< frames this endpoint receives
  FrameParser parser_;
};

}  // namespace adafl::net::transport
