#include "net/transport/session.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <set>
#include <stdexcept>
#include <thread>

#include "compress/bytes.h"
#include "compress/wire.h"
#include "core/parallel.h"
#include "core/server_checkpoint.h"
#include "core/utility.h"
#include "metrics/profile.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "net/replication/replication.h"
#include "net/transport/crc32.h"
#include "tensor/check.h"
#include "tensor/tensor.h"

namespace adafl::net::transport {

namespace {

using Clock = std::chrono::steady_clock;

Frame make_frame(MsgType type, std::uint32_t round, std::uint32_t client_id,
                 std::vector<std::uint8_t> payload = {}) {
  Frame f;
  f.type = type;
  f.round = round;
  f.client_id = client_id;
  f.payload = std::move(payload);
  return f;
}

}  // namespace

/// Shared inbox between the session thread (which drains the event loop
/// and routes a standby connection's frames here) and the replication
/// publisher's Transport view of that connection.
struct LoopPeerState {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Frame> inbox;
  std::atomic<bool> closed{false};
};

namespace {

/// Transport adapter over one event-loop connection, handed to the
/// replication publisher when a standby subscribes in event-loop mode.
/// recv() pops from the shared inbox the session fills; send() queues
/// encoded bytes on the loop.
class LoopPeerTransport final : public Transport {
 public:
  LoopPeerTransport(EventLoop* loop, ConnId conn,
                    std::shared_ptr<LoopPeerState> state)
      : loop_(loop), conn_(conn), state_(std::move(state)) {}

  bool send(const Frame& f) override {
    if (state_->closed.load()) return false;
    loop_->send(conn_, std::make_shared<const std::vector<std::uint8_t>>(
                           encode_frame(f)));
    return true;
  }

  std::optional<Frame> recv(std::chrono::milliseconds timeout) override {
    std::unique_lock<std::mutex> lk(state_->mu);
    if (state_->inbox.empty() && timeout.count() > 0)
      state_->cv.wait_for(lk, timeout, [&] {
        return !state_->inbox.empty() || state_->closed.load();
      });
    if (state_->inbox.empty()) return std::nullopt;
    Frame f = std::move(state_->inbox.front());
    state_->inbox.pop_front();
    return f;
  }

  bool closed() const override { return state_->closed.load(); }

  void close() override {
    state_->closed.store(true);
    state_->cv.notify_all();
    loop_->close_conn(conn_);
  }

  std::string peer() const override { return "event-loop"; }

 private:
  EventLoop* loop_;
  ConnId conn_;
  std::shared_ptr<LoopPeerState> state_;
};

}  // namespace

// --- Payload codecs. -----------------------------------------------------

std::vector<std::uint8_t> encode_hello(std::uint32_t protocol_version) {
  std::vector<std::uint8_t> out;
  bytes::put_u32(out, protocol_version);
  return out;
}

std::uint32_t parse_hello(std::span<const std::uint8_t> payload) {
  bytes::Reader r(payload);
  const std::uint32_t version = r.u32();
  ADAFL_CHECK_MSG(r.remaining() == 0, "hello: trailing bytes");
  return version;
}

std::vector<std::uint8_t> encode_welcome(const WelcomeInfo& w) {
  std::vector<std::uint8_t> out;
  bytes::put_u32(out, w.rounds);
  bytes::put_u64(out, w.param_count);
  const core::AdaFlParams& p = w.params;
  bytes::put_u8(out, static_cast<std::uint8_t>(p.utility.metric));
  bytes::put_f64(out, p.utility.w_sim);
  bytes::put_f64(out, p.utility.w_bw);
  bytes::put_f64(out, p.utility.bw_ref);
  bytes::put_f64(out, p.tau);
  bytes::put_u32(out, static_cast<std::uint32_t>(p.max_selected));
  bytes::put_f64(out, p.compression.ratio_min);
  bytes::put_f64(out, p.compression.ratio_max);
  bytes::put_u32(out, static_cast<std::uint32_t>(p.compression.warmup_rounds));
  bytes::put_f64(out, p.compression.shaping);
  bytes::put_f64(out, p.dgc.ratio);
  bytes::put_f32(out, p.dgc.momentum);
  bytes::put_f64(out, p.dgc.clip_norm);
  bytes::put_u8(out, p.dgc.momentum_correction ? 1 : 0);
  bytes::put_u8(out, p.dgc.warm_up_dense ? 1 : 0);
  bytes::put_u8(out, p.accumulate_unselected ? 1 : 0);
  bytes::put_u32(out, static_cast<std::uint32_t>(p.max_consecutive_skips));
  bytes::put_u8(out, p.server_trust_clip ? 1 : 0);
  bytes::put_u32(out, static_cast<std::uint32_t>(p.agg_group));
  bytes::put_u32(out, static_cast<std::uint32_t>(w.config.size()));
  for (const auto& [k, v] : w.config) {
    bytes::put_str(out, k);
    bytes::put_str(out, v);
  }
  return out;
}

WelcomeInfo parse_welcome(std::span<const std::uint8_t> payload) {
  bytes::Reader r(payload);
  WelcomeInfo w;
  w.rounds = r.u32();
  w.param_count = r.u64();
  const std::uint8_t metric = r.u8();
  ADAFL_CHECK_MSG(
      metric <= static_cast<std::uint8_t>(core::SimilarityMetric::kEuclideanKernel),
      "welcome: unknown similarity metric " << int(metric));
  core::AdaFlParams& p = w.params;
  p.utility.metric = static_cast<core::SimilarityMetric>(metric);
  p.utility.w_sim = r.f64();
  p.utility.w_bw = r.f64();
  p.utility.bw_ref = r.f64();
  p.tau = r.f64();
  p.max_selected = static_cast<int>(r.u32());
  p.compression.ratio_min = r.f64();
  p.compression.ratio_max = r.f64();
  p.compression.warmup_rounds = static_cast<int>(r.u32());
  p.compression.shaping = r.f64();
  p.dgc.ratio = r.f64();
  p.dgc.momentum = r.f32();
  p.dgc.clip_norm = r.f64();
  p.dgc.momentum_correction = r.u8() != 0;
  p.dgc.warm_up_dense = r.u8() != 0;
  p.accumulate_unselected = r.u8() != 0;
  p.max_consecutive_skips = static_cast<int>(r.u32());
  p.server_trust_clip = r.u8() != 0;
  p.agg_group = static_cast<int>(r.u32());
  ADAFL_CHECK_MSG(p.agg_group >= 0, "welcome: negative agg_group");
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string k = r.str();
    w.config[std::move(k)] = r.str();
  }
  ADAFL_CHECK_MSG(r.remaining() == 0, "welcome: trailing bytes");
  return w;
}

std::vector<std::uint8_t> encode_model(const ModelPayload& m) {
  ADAFL_CHECK_MSG(m.global.size() == m.g_hat.size(),
                  "model: global/g_hat size mismatch");
  std::vector<std::uint8_t> out;
  out.reserve(8 + m.global.size() * 8);
  bytes::put_u64(out, m.global.size());
  for (float v : m.global) bytes::put_f32(out, v);
  for (float v : m.g_hat) bytes::put_f32(out, v);
  return out;
}

ModelPayload parse_model(std::span<const std::uint8_t> payload) {
  bytes::Reader r(payload);
  const std::uint64_t d = r.u64();
  // Bound d before the multiply: a forged d ~ 2^61 would wrap d * 8 modulo
  // 2^64 and sneak a tiny payload past the size check into resize(d).
  ADAFL_CHECK_MSG(d <= kMaxFramePayload / 8,
                  "model: dimension " << d << " exceeds frame bound");
  ADAFL_CHECK_MSG(r.remaining() == d * 8, "model: payload size mismatch");
  ModelPayload m;
  m.global.resize(d);
  m.g_hat.resize(d);
  for (auto& v : m.global) v = r.f32();
  for (auto& v : m.g_hat) v = r.f32();
  return m;
}

std::vector<std::uint8_t> encode_f64(double v) {
  std::vector<std::uint8_t> out;
  bytes::put_f64(out, v);
  return out;
}

double parse_f64(std::span<const std::uint8_t> payload) {
  bytes::Reader r(payload);
  const double v = r.f64();
  ADAFL_CHECK_MSG(r.remaining() == 0, "f64 payload: trailing bytes");
  return v;
}

std::vector<std::uint8_t> encode_update(const UpdatePayload& u) {
  std::vector<std::uint8_t> out, wire_scratch;
  encode_update_into(u, out, wire_scratch);
  return out;
}

void encode_update_into(const UpdatePayload& u, std::vector<std::uint8_t>& out,
                        std::vector<std::uint8_t>& wire_scratch) {
  out.clear();
  bytes::put_u64(out, static_cast<std::uint64_t>(u.num_examples));
  bytes::put_f32(out, u.mean_loss);
  bytes::put_f64(out, u.raw_delta_norm);
  compress::serialize_into(u.msg, wire_scratch);
  bytes::put_u32(out, static_cast<std::uint32_t>(wire_scratch.size()));
  out.insert(out.end(), wire_scratch.begin(), wire_scratch.end());
}

namespace {

/// Shared parse body: UpdatePayload and core::AdaFlDelivery carry the same
/// fields, and the server decodes straight into its per-client delivery slot.
template <typename UpdateLike>
void parse_update_fields(std::span<const std::uint8_t> payload,
                         UpdateLike& u) {
  bytes::Reader r(payload);
  u.num_examples = static_cast<std::int64_t>(r.u64());
  ADAFL_CHECK_MSG(u.num_examples > 0, "update: non-positive example count");
  u.mean_loss = r.f32();
  u.raw_delta_norm = r.f64();
  const std::uint32_t len = r.u32();
  ADAFL_CHECK_MSG(r.remaining() == len, "update: payload size mismatch");
  compress::deserialize_into(r.raw(len), u.msg);
}

}  // namespace

UpdatePayload parse_update(std::span<const std::uint8_t> payload) {
  UpdatePayload u;
  parse_update_into(payload, u);
  return u;
}

void parse_update_into(std::span<const std::uint8_t> payload,
                       UpdatePayload& u) {
  parse_update_fields(payload, u);
}

// --- Hierarchical aggregation codecs. ------------------------------------

std::vector<std::uint8_t> encode_relay_hello(const RelayHelloPayload& h) {
  std::vector<std::uint8_t> out;
  bytes::put_u32(out, h.version);
  bytes::put_u32(out, h.base);
  bytes::put_u32(out, h.count);
  return out;
}

RelayHelloPayload parse_relay_hello(std::span<const std::uint8_t> payload) {
  bytes::Reader r(payload);
  RelayHelloPayload h;
  h.version = r.u32();
  h.base = r.u32();
  h.count = r.u32();
  ADAFL_CHECK_MSG(r.remaining() == 0, "relay_hello: trailing bytes");
  ADAFL_CHECK_MSG(h.count > 0, "relay_hello: empty leaf range");
  return h;
}

std::vector<std::uint8_t> encode_update_agg(const UpdateAggPayload& a) {
  std::vector<std::uint8_t> out;
  bytes::put_u32(out, a.base);
  bytes::put_u32(out, a.count);
  bytes::put_u32(out, static_cast<std::uint32_t>(a.children.size()));
  for (const UpdateAggChild& c : a.children) {
    bytes::put_u32(out, c.id);
    bytes::put_u64(out, static_cast<std::uint64_t>(c.num_examples));
    bytes::put_f32(out, c.mean_loss);
    bytes::put_f64(out, c.raw_delta_norm);
    bytes::put_u64(out, static_cast<std::uint64_t>(c.wire_bytes));
  }
  std::vector<std::uint8_t> wire;
  compress::serialize_into(a.partial, wire);
  bytes::put_u32(out, static_cast<std::uint32_t>(wire.size()));
  out.insert(out.end(), wire.begin(), wire.end());
  return out;
}

UpdateAggPayload parse_update_agg(std::span<const std::uint8_t> payload) {
  bytes::Reader r(payload);
  UpdateAggPayload a;
  a.base = r.u32();
  a.count = r.u32();
  ADAFL_CHECK_MSG(a.count > 0, "update_agg: empty group");
  const std::uint32_t nc = r.u32();
  ADAFL_CHECK_MSG(nc >= 1 && nc <= a.count,
                  "update_agg: child count " << nc << " outside [1, "
                                             << a.count << "]");
  const std::uint64_t end =
      static_cast<std::uint64_t>(a.base) + a.count;
  a.children.resize(nc);
  for (std::uint32_t i = 0; i < nc; ++i) {
    UpdateAggChild& c = a.children[i];
    c.id = r.u32();
    ADAFL_CHECK_MSG(c.id >= a.base && c.id < end,
                    "update_agg: child id " << c.id << " outside group");
    ADAFL_CHECK_MSG(i == 0 || a.children[i - 1].id < c.id,
                    "update_agg: child ids not strictly ascending");
    c.num_examples = static_cast<std::int64_t>(r.u64());
    ADAFL_CHECK_MSG(c.num_examples > 0,
                    "update_agg: non-positive example count");
    c.mean_loss = r.f32();
    ADAFL_CHECK_MSG(std::isfinite(c.mean_loss),
                    "update_agg: non-finite mean loss");
    c.raw_delta_norm = r.f64();
    ADAFL_CHECK_MSG(std::isfinite(c.raw_delta_norm) && c.raw_delta_norm >= 0,
                    "update_agg: invalid raw delta norm");
    c.wire_bytes = static_cast<std::int64_t>(r.u64());
    ADAFL_CHECK_MSG(
        c.wire_bytes >= 0 &&
            c.wire_bytes <= static_cast<std::int64_t>(kMaxFramePayload),
        "update_agg: child wire size out of range");
  }
  const std::uint32_t plen = r.u32();
  ADAFL_CHECK_MSG(r.remaining() == plen, "update_agg: payload size mismatch");
  compress::deserialize_into(r.raw(plen), a.partial);
  ADAFL_CHECK_MSG(a.partial.kind == compress::CodecKind::kTopK,
                  "update_agg: partial is not top-k");
  ADAFL_CHECK_MSG(a.partial.indices.size() == a.partial.values.size(),
                  "update_agg: partial index/value count mismatch");
  for (std::size_t j = 0; j < a.partial.indices.size(); ++j) {
    ADAFL_CHECK_MSG(
        static_cast<std::int64_t>(a.partial.indices[j]) <
            a.partial.dense_size,
        "update_agg: partial index out of range");
    ADAFL_CHECK_MSG(
        j == 0 || a.partial.indices[j - 1] < a.partial.indices[j],
        "update_agg: partial indices not strictly ascending");
    ADAFL_CHECK_MSG(std::isfinite(a.partial.values[j]),
                    "update_agg: non-finite partial value");
  }
  return a;
}

void validate_update_agg(const UpdateAggPayload& a, std::int64_t dense_size,
                         int agg_group, int relay_base, int relay_count) {
  ADAFL_CHECK_MSG(agg_group > 0,
                  "update_agg: server has no aggregation grouping");
  ADAFL_CHECK_MSG(a.count == static_cast<std::uint32_t>(agg_group),
                  "update_agg: group size " << a.count << " != agg_group "
                                            << agg_group);
  ADAFL_CHECK_MSG(a.base % static_cast<std::uint32_t>(agg_group) == 0,
                  "update_agg: group base " << a.base << " not aligned");
  const auto lo = static_cast<std::int64_t>(a.base);
  const auto hi = lo + a.count;
  ADAFL_CHECK_MSG(lo >= relay_base &&
                      hi <= static_cast<std::int64_t>(relay_base) +
                                relay_count,
                  "update_agg: group outside the relay's claimed range");
  ADAFL_CHECK_MSG(a.partial.dense_size == dense_size,
                  "update_agg: partial dimension " << a.partial.dense_size
                                                   << " != " << dense_size);
}

// --- ServerSession. ------------------------------------------------------

ServerSession::ServerSession(ServerSessionConfig cfg, nn::ModelFactory factory,
                             const data::Dataset* test)
    : cfg_(std::move(cfg)),
      factory_(std::move(factory)),
      test_(test),
      eval_model_(factory_()),
      core_(cfg_.params, eval_model_.get_flat()) {
  ADAFL_CHECK_MSG(cfg_.expected_clients > 0,
                  "ServerSession: expected_clients must be positive");
  ADAFL_CHECK_MSG(cfg_.rounds > 0, "ServerSession: rounds must be positive");
  ADAFL_CHECK_MSG(cfg_.quorum >= 0 && cfg_.quorum <= cfg_.expected_clients,
                  "ServerSession: quorum out of range");
  ADAFL_CHECK_MSG(cfg_.params.agg_group >= 0,
                  "ServerSession: negative agg_group");
  conns_.resize(static_cast<std::size_t>(cfg_.expected_clients));
  ever_joined_.assign(static_cast<std::size_t>(cfg_.expected_clients), false);
  leaf_relay_.assign(static_cast<std::size_t>(cfg_.expected_clients), -1);
  child_live_.assign(static_cast<std::size_t>(cfg_.expected_clients), 0);
  WelcomeInfo w;
  w.rounds = static_cast<std::uint32_t>(cfg_.rounds);
  w.param_count = core_.global().size();
  w.params = cfg_.params;
  w.config = cfg_.client_config;
  welcome_payload_ = encode_welcome(w);
}

void ServerSession::add_transport(std::unique_ptr<Transport> t) {
  if (!t) return;
  std::lock_guard<std::mutex> lock(pending_mu_);
  pending_.push_back(std::move(t));
}

void ServerSession::attach_event_loop(EventLoop* loop) {
  loop_ = loop;
  client_conn_.assign(static_cast<std::size_t>(cfg_.expected_clients),
                      kNoConn);
  pending_decode_.assign(static_cast<std::size_t>(cfg_.expected_clients), 0);
  welcome_frame_bytes_ = std::make_shared<const std::vector<std::uint8_t>>(
      encode_frame(make_frame(MsgType::kWelcome, 0, kServerId,
                              welcome_payload_)));
}

bool ServerSession::direct_connected(int id) const {
  if (loop_ != nullptr &&
      client_conn_[static_cast<std::size_t>(id)] != kNoConn)
    return true;
  return static_cast<bool>(conns_[static_cast<std::size_t>(id)]);
}

bool ServerSession::connected(int id) const {
  if (direct_connected(id)) return true;
  // A live relay route counts a leaf as reachable only while the relay has
  // announced it alive: the relay connection covers N leaves, not 1, so the
  // quorum/deadline math never mistakes one healthy relay for one client.
  return leaf_relay_[static_cast<std::size_t>(id)] >= 0 &&
         child_live_[static_cast<std::size_t>(id)] != 0;
}

void ServerSession::drop_loop_conn(ConnId conn) {
  auto it = conn_client_.find(conn);
  if (it != conn_client_.end()) {
    const int id = it->second;
    if (client_conn_[static_cast<std::size_t>(id)] == conn)
      client_conn_[static_cast<std::size_t>(id)] = kNoConn;
    conn_client_.erase(it);
  }
  auto st = standby_links_.find(conn);
  if (st != standby_links_.end()) {
    st->second->closed.store(true);
    st->second->cv.notify_all();
    standby_links_.erase(st);
  }
  loop_->close_conn(conn);
}

void ServerSession::request_stop(bool write_checkpoint) {
  // Only atomic stores: safe to call from a POSIX signal handler.
  if (write_checkpoint) stop_save_.store(true, std::memory_order_relaxed);
  stop_.store(true, std::memory_order_release);
}

void ServerSession::write_checkpoint(
    int next_round, const core::AdaFlServerCore::State& snap) const {
  core::ServerCheckpoint ck;
  ck.producer = "deployed";
  ck.next_round = static_cast<std::uint32_t>(next_round);
  ck.total_rounds = static_cast<std::uint32_t>(cfg_.rounds);
  ck.config_crc = crc32(welcome_payload_);
  ck.global = snap.global;
  core::ServerCheckpoint::AdaFlCoreState a;
  a.g_hat = snap.g_hat;
  a.selected_updates = snap.stats.selected_updates;
  a.skipped_clients = snap.stats.skipped_clients;
  a.min_ratio_used = snap.stats.min_ratio_used;
  a.max_ratio_used = snap.stats.max_ratio_used;
  a.mean_selected_per_round = snap.stats.mean_selected_per_round;
  a.selected_sum = snap.selected_sum;
  a.rounds_planned = snap.rounds_planned;
  ck.adafl = std::move(a);
  // Encode once: the byte image written to disk is the byte image every
  // standby receives, so wire and disk validation are the same code path.
  const std::vector<std::uint8_t> image =
      core::encode_checkpoint_file_bytes(core::encode_server_checkpoint(ck));
  core::write_checkpoint_bytes_atomic(
      core::checkpoint_path(cfg_.checkpoint_dir), image);
  if (cfg_.publisher != nullptr)
    cfg_.publisher->publish(ck.next_round, image, trace_now());
}

int ServerSession::resume_from_checkpoint() {
  const std::string path = core::checkpoint_path(cfg_.checkpoint_dir);
  core::ServerCheckpoint ck = core::load_server_checkpoint(path);
  auto reject = [&path](const std::string& why) {
    throw std::runtime_error("server checkpoint " + path + ": " + why +
                             "; delete the checkpoint or rerun without "
                             "--resume");
  };
  if (ck.producer != "deployed")
    reject("written by '" + ck.producer + "', not the deployed server");
  if (ck.config_crc != crc32(welcome_payload_))
    reject("run configuration changed since the checkpoint was written");
  if (ck.total_rounds != static_cast<std::uint32_t>(cfg_.rounds))
    reject("round count mismatch (checkpoint has " +
           std::to_string(ck.total_rounds) + ", config has " +
           std::to_string(cfg_.rounds) + ")");
  if (ck.next_round > ck.total_rounds)
    reject("run already complete (all " + std::to_string(ck.total_rounds) +
           " rounds done); nothing to resume");
  if (ck.global.size() != core_.global().size())
    reject("model dimension mismatch (checkpoint has " +
           std::to_string(ck.global.size()) + " params, model has " +
           std::to_string(core_.global().size()) + ")");
  if (!ck.adafl) reject("missing AdaFL server state");
  core::AdaFlServerCore::State st;
  st.global = std::move(ck.global);
  st.g_hat = std::move(ck.adafl->g_hat);
  st.stats.selected_updates = ck.adafl->selected_updates;
  st.stats.skipped_clients = ck.adafl->skipped_clients;
  st.stats.min_ratio_used = ck.adafl->min_ratio_used;
  st.stats.max_ratio_used = ck.adafl->max_ratio_used;
  st.stats.mean_selected_per_round = ck.adafl->mean_selected_per_round;
  st.selected_sum = ck.adafl->selected_sum;
  st.rounds_planned = ck.adafl->rounds_planned;
  core_.restore(std::move(st));
  return static_cast<int>(ck.next_round);
}

void ServerSession::drop_all_connections() {
  for (auto& conn : conns_) {
    if (!conn) continue;
    conn->close();  // abrupt: no SHUTDOWN, clients redial or back off
    conn.reset();
  }
  for (auto& rb : relays_)
    if (rb.conn) rb.conn->close();
  relays_.clear();
  relay_conn_.clear();
  std::fill(leaf_relay_.begin(), leaf_relay_.end(), -1);
  std::fill(child_live_.begin(), child_live_.end(), 0);
  if (loop_ != nullptr) {
    for (auto& [conn, state] : standby_links_) {
      state->closed.store(true);
      state->cv.notify_all();
    }
    standby_links_.clear();
    conn_client_.clear();
    std::fill(client_conn_.begin(), client_conn_.end(), kNoConn);
    loop_->stop();  // closes every loop-owned socket
  }
  std::lock_guard<std::mutex> lock(pending_mu_);
  for (auto& t : pending_) t->close();
  pending_.clear();
}

double ServerSession::trace_now() const {
  return std::chrono::duration<double>(Clock::now() - trace_t0_).count();
}

std::size_t ServerSession::send_to(
    int id, const Frame& f,
    const std::shared_ptr<const std::vector<std::uint8_t>>* pre) {
  if (!direct_connected(id)) {
    // Relay-covered leaf: route via its relay with the frame addressed to
    // the leaf (client_id rewritten); the relay forwards it down.
    const int ridx = leaf_relay_[static_cast<std::size_t>(id)];
    if (ridx >= 0) {
      Frame rf = f;
      rf.client_id = static_cast<std::uint32_t>(id);
      return send_to_relay(static_cast<std::size_t>(ridx), rf);
    }
  }
  if (loop_ != nullptr &&
      client_conn_[static_cast<std::size_t>(id)] != kNoConn) {
    // Queued on the loop thread; a dead peer surfaces via take_closed() on
    // a later pass, exactly like a lost datagram would.
    loop_->send(client_conn_[static_cast<std::size_t>(id)],
                pre != nullptr
                    ? *pre
                    : std::make_shared<const std::vector<std::uint8_t>>(
                          encode_frame(f)));
    if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
      cfg_.tracer->record(metrics::ev_frame(
          metrics::TraceEventType::kFrameTx, static_cast<int>(f.round), id,
          to_string(f.type), static_cast<std::int64_t>(f.wire_size()),
          trace_now()));
    return f.wire_size();
  }
  auto& conn = conns_[static_cast<std::size_t>(id)];
  if (!conn) return 0;
  if (!conn->send(f)) {
    conn.reset();  // peer gone; it may redial later
    return 0;
  }
  if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
    cfg_.tracer->record(metrics::ev_frame(
        metrics::TraceEventType::kFrameTx, static_cast<int>(f.round), id,
        to_string(f.type), static_cast<std::int64_t>(f.wire_size()),
        trace_now()));
  return f.wire_size();
}

void ServerSession::ensure_model_frame(RoundCtx& rc) {
  if (rc.model_ready) return;
  ModelPayload m;
  m.global = core_.global();
  m.g_hat = core_.g_hat();
  rc.model_frame = make_frame(MsgType::kModel,
                              static_cast<std::uint32_t>(rc.round),
                              kServerId, encode_model(m));
  if (loop_ != nullptr)
    // Encode the full wire frame once per round; every connection gets
    // the same immutable buffer (10k-client broadcast = one encode).
    rc.model_bytes = std::make_shared<const std::vector<std::uint8_t>>(
        encode_frame(rc.model_frame));
  rc.model_ready = true;
}

void ServerSession::send_model(RoundCtx& rc, int id) {
  ensure_model_frame(rc);
  const Frame& f = rc.model_frame;
  const bool retransmit = rc.sent_model[static_cast<std::size_t>(id)];
  const std::size_t sent =
      send_to(id, f, rc.model_bytes ? &rc.model_bytes : nullptr);
  if (sent == 0) return;
  rc.sent_model[static_cast<std::size_t>(id)] = true;
  rc.ledger->record_download(id, static_cast<std::int64_t>(sent));
  if (retransmit) {
    rc.ledger->record_retransmit(id, static_cast<std::int64_t>(sent));
    if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
      cfg_.tracer->record(metrics::ev_retransmit(
          rc.round, id, static_cast<std::int64_t>(sent), trace_now()));
  }
}

std::size_t ServerSession::send_to_relay(std::size_t ridx, const Frame& f) {
  RelayBinding& rb = relays_[ridx];
  if (rb.loop_conn != kNoConn) {
    loop_->send(rb.loop_conn,
                std::make_shared<const std::vector<std::uint8_t>>(
                    encode_frame(f)));
  } else if (rb.conn) {
    if (!rb.conn->send(f)) {
      // Dead relay link: close and let the poll pass reap the binding (a
      // drop_relay here would invalidate indices mid-iteration in callers).
      rb.conn->close();
      return 0;
    }
  } else {
    return 0;
  }
  if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
    cfg_.tracer->record(metrics::ev_frame(
        metrics::TraceEventType::kFrameTx, static_cast<int>(f.round),
        f.client_id == kServerId ? -1 : static_cast<int>(f.client_id),
        to_string(f.type), static_cast<std::int64_t>(f.wire_size()),
        trace_now()));
  return f.wire_size();
}

void ServerSession::send_model_to_relay(RoundCtx& rc, std::size_t ridx) {
  ensure_model_frame(rc);
  const bool retransmit = relays_[ridx].sent_model;
  const std::size_t sent = send_to_relay(ridx, rc.model_frame);
  if (sent == 0) return;
  RelayBinding& rb = relays_[ridx];
  rb.sent_model = true;
  // One MODEL feeds the whole subtree; book it against the range base.
  rc.ledger->record_download(rb.base, static_cast<std::int64_t>(sent));
  if (retransmit) {
    rc.ledger->record_retransmit(rb.base, static_cast<std::int64_t>(sent));
    if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
      cfg_.tracer->record(metrics::ev_retransmit(
          rc.round, rb.base, static_cast<std::int64_t>(sent), trace_now()));
  }
}

void ServerSession::drop_relay(std::size_t ridx) {
  RelayBinding& rb = relays_[ridx];
  // Clear the leaves' routes and liveness but keep their round state
  // (scores, awaiting): a promoted standby re-binding the range can still
  // recover the round; unrecovered loss falls to the round deadline exactly
  // as a flat client crash does.
  for (int id = rb.base; id < rb.base + rb.count; ++id) {
    if (leaf_relay_[static_cast<std::size_t>(id)] ==
        static_cast<int>(ridx)) {
      leaf_relay_[static_cast<std::size_t>(id)] = -1;
      child_live_[static_cast<std::size_t>(id)] = 0;
    }
  }
  if (rb.loop_conn != kNoConn) {
    relay_conn_.erase(rb.loop_conn);
    loop_->close_conn(rb.loop_conn);
  }
  if (rb.conn) rb.conn->close();
  relays_.erase(relays_.begin() + static_cast<std::ptrdiff_t>(ridx));
  // Compact: bindings above ridx shifted down by one.
  for (auto& r : leaf_relay_)
    if (r > static_cast<int>(ridx)) --r;
  for (auto& [conn, idx] : relay_conn_)
    if (idx > ridx) --idx;
}

void ServerSession::handle_relay_hello(RoundCtx& rc,
                                       const RelayHelloPayload& h,
                                       std::unique_ptr<Transport> conn,
                                       ConnId loop_conn) {
  const int g = cfg_.params.agg_group;
  ADAFL_CHECK_MSG(h.version == kProtocolVersion,
                  "session: relay protocol version mismatch");
  ADAFL_CHECK_MSG(g > 0,
                  "session: relay joined but the run has agg_group == 0");
  const auto base = static_cast<std::int64_t>(h.base);
  const auto count = static_cast<std::int64_t>(h.count);
  ADAFL_CHECK_MSG(base % g == 0 && count % g == 0 &&
                      base + count <= cfg_.expected_clients,
                  "session: relay range [" << base << ", " << base + count
                                           << ") invalid for this run");
  // A rebinding (redialed relay or promoted standby) supersedes any
  // existing binding its range overlaps.
  for (std::size_t i = relays_.size(); i-- > 0;) {
    const RelayBinding& rb = relays_[i];
    if (base < rb.base + rb.count && rb.base < base + count) drop_relay(i);
  }
  RelayBinding rb;
  rb.base = static_cast<int>(base);
  rb.count = static_cast<int>(count);
  rb.conn = std::move(conn);
  rb.loop_conn = loop_conn;
  const std::size_t ridx = relays_.size();
  relays_.push_back(std::move(rb));
  if (loop_conn != kNoConn) relay_conn_[loop_conn] = ridx;
  for (std::int64_t id = base; id < base + count; ++id) {
    leaf_relay_[static_cast<std::size_t>(id)] = static_cast<int>(ridx);
    child_live_[static_cast<std::size_t>(id)] = 0;  // until announced
  }
  // WELCOME: the relay caches the payload verbatim and serves its children.
  send_to_relay(ridx,
                make_frame(MsgType::kWelcome, 0, kServerId, welcome_payload_));
  // In-round catch-up: the current MODEL (the relay re-broadcasts it), and
  // pending SELECTs for its leaves when the update phase is in flight.
  if (rc.model_ready) send_model_to_relay(rc, ridx);
  if (rc.phase == Phase::kUpdate) {
    for (std::int64_t id = base; id < base + count; ++id) {
      const int lid = static_cast<int>(id);
      if (rc.awaiting.count(lid) == 0 ||
          delivered_[static_cast<std::size_t>(lid)])
        continue;
      const Frame sf = make_frame(MsgType::kSelect,
                                  static_cast<std::uint32_t>(rc.round),
                                  static_cast<std::uint32_t>(lid),
                                  encode_f64(rc.ratio_of.at(lid)));
      const std::size_t sent = send_to_relay(ridx, sf);
      if (sent != 0) {
        rc.ledger->record_retransmit(lid, static_cast<std::int64_t>(sent));
        if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
          cfg_.tracer->record(metrics::ev_retransmit(
              rc.round, lid, static_cast<std::int64_t>(sent), trace_now()));
      }
    }
  }
}

void ServerSession::handle_relay_frame(RoundCtx& rc, std::size_t ridx,
                                       const Frame& f) {
  const RelayBinding& rb = relays_[ridx];
  const auto in_range = [&rb](std::uint32_t cid) {
    return cid >= static_cast<std::uint32_t>(rb.base) &&
           cid < static_cast<std::uint32_t>(rb.base) +
                     static_cast<std::uint32_t>(rb.count);
  };
  switch (f.type) {
    case MsgType::kUpdateAgg:
      handle_update_agg(rc, ridx, f);
      return;
    case MsgType::kScore: {
      ADAFL_CHECK_MSG(in_range(f.client_id),
                      "session: relayed SCORE for leaf " << f.client_id
                                                         << " out of range");
      const int id = static_cast<int>(f.client_id);
      child_live_[static_cast<std::size_t>(id)] = 1;  // proof of life
      handle_frame(rc, id, f);
      return;
    }
    case MsgType::kHello: {
      // A leaf joined (or rejoined) behind the relay. The relay serves
      // WELCOME/MODEL locally; the root only tracks liveness and re-sends
      // in-flight SELECT state through the route.
      ADAFL_CHECK_MSG(in_range(f.client_id),
                      "session: relayed HELLO for leaf " << f.client_id
                                                         << " out of range");
      const int id = static_cast<int>(f.client_id);
      const bool rejoin = ever_joined_[static_cast<std::size_t>(id)];
      ever_joined_[static_cast<std::size_t>(id)] = true;
      child_live_[static_cast<std::size_t>(id)] = 1;
      if (rejoin) {
        rc.ledger->record_reconnect(id);
        if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
          cfg_.tracer->record(
              metrics::ev_reconnect(rc.round, id, trace_now()));
      }
      if (rc.phase == Phase::kUpdate && rc.awaiting.count(id) != 0 &&
          !delivered_[static_cast<std::size_t>(id)]) {
        const Frame sf = make_frame(MsgType::kSelect,
                                    static_cast<std::uint32_t>(rc.round),
                                    static_cast<std::uint32_t>(id),
                                    encode_f64(rc.ratio_of.at(id)));
        const std::size_t sent = send_to_relay(ridx, sf);
        if (sent != 0) {
          rc.ledger->record_retransmit(id, static_cast<std::int64_t>(sent));
          if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
            cfg_.tracer->record(metrics::ev_retransmit(
                rc.round, id, static_cast<std::int64_t>(sent), trace_now()));
        }
      }
      return;
    }
    case MsgType::kChildGone: {
      ADAFL_CHECK_MSG(in_range(f.client_id),
                      "session: CHILD_GONE for leaf " << f.client_id
                                                      << " out of range");
      child_live_[static_cast<std::size_t>(f.client_id)] = 0;
      return;
    }
    case MsgType::kPing:
      send_to_relay(ridx, make_frame(MsgType::kPong, f.round, kServerId));
      return;
    default:
      return;  // PONG, duplicates, unexpected types: ignore
  }
}

void ServerSession::handle_update_agg(RoundCtx& rc, std::size_t ridx,
                                      const Frame& f) {
  if (rc.phase != Phase::kUpdate ||
      f.round != static_cast<std::uint32_t>(rc.round))
    return;  // stale
  const RelayBinding& rb = relays_[ridx];
  UpdateAggPayload a = parse_update_agg(f.payload);
  validate_update_agg(a, static_cast<std::int64_t>(core_.global().size()),
                      cfg_.params.agg_group, rb.base, rb.count);
  const int base = static_cast<int>(a.base);
  const bool upgrade = rc.wire_partials.count(base) != 0;
  if (upgrade) {
    // A group can be legitimately re-shipped with MORE children: the relay
    // flushed without a crashed leaf, the leaf rejoined in-round, and the
    // rebuilt AGG supersedes the committed one. The replacement must cover
    // every previously-committed child (the partial is the whole group's
    // sum) and strictly extend it; anything else is a nudge duplicate —
    // first one won.
    std::set<int> listed;
    for (const UpdateAggChild& c : a.children)
      listed.insert(static_cast<int>(c.id));
    int prev_children = 0;
    bool covers_prev = true;
    for (int id = base; id < base + cfg_.params.agg_group; ++id)
      if (delivered_[static_cast<std::size_t>(id)]) {
        ++prev_children;
        covers_prev = covers_prev && listed.count(id) != 0;
      }
    if (!covers_prev ||
        static_cast<int>(a.children.size()) <= prev_children)
      return;
  }
  for (const UpdateAggChild& c : a.children) {
    const int id = static_cast<int>(c.id);
    ADAFL_CHECK_MSG(rc.awaiting.count(id) != 0,
                    "session: UPDATE-AGG lists unselected leaf " << id);
    if (upgrade && delivered_[static_cast<std::size_t>(id)]) {
      // Re-listed child of the superseded AGG: only valid over a
      // metadata-only slot (a relay cannot claim a direct delivery).
      ADAFL_CHECK_MSG(
          delivery_slots_[static_cast<std::size_t>(id)].meta_only,
          "session: UPDATE-AGG re-lists directly-delivered leaf " << id);
      continue;
    }
    ADAFL_CHECK_MSG(!delivered_[static_cast<std::size_t>(id)],
                    "session: UPDATE-AGG lists already-delivered leaf "
                        << id);
  }
  // Commit: a metadata-only delivery per listed leaf — the coordinates
  // travel pre-summed in the group partial, which apply_round merges in the
  // identical ascending-group order a flat run with the same agg_group uses.
  for (const UpdateAggChild& c : a.children) {
    const int id = static_cast<int>(c.id);
    const bool fresh = !delivered_[static_cast<std::size_t>(id)];
    core::AdaFlDelivery& dl = delivery_slots_[static_cast<std::size_t>(id)];
    dl.msg.kind = compress::CodecKind::kTopK;
    dl.msg.dense_size = static_cast<std::int64_t>(core_.global().size());
    dl.msg.wire_bytes = c.wire_bytes;
    dl.msg.indices.clear();
    dl.msg.values.clear();
    dl.msg.levels.clear();
    dl.num_examples = c.num_examples;
    dl.mean_loss = c.mean_loss;
    dl.raw_delta_norm = c.raw_delta_norm;
    dl.meta_only = true;
    if (fresh) {
      delivered_[static_cast<std::size_t>(id)] = 1;
      ++delivered_count_;
      rc.ledger->record_upload(id, c.wire_bytes, true);
    }
    child_live_[static_cast<std::size_t>(id)] = 1;
  }
  rc.wire_partials[base] = std::move(a.partial);
}

void ServerSession::nudge(RoundCtx& rc) {
  if (rc.phase == Phase::kScore) {
    // Re-broadcast MODEL to connected clients that still owe a score: a
    // MODEL or SCORE lost in flight otherwise stalls the phase until the
    // deadline (or forever, with quorum == n). Clients never retrain a
    // round they already trained, so a redundant MODEL costs bytes only.
    for (int id = 0; id < cfg_.expected_clients; ++id) {
      if (!direct_connected(id) || rc.scored[static_cast<std::size_t>(id)])
        continue;
      send_model(rc, id);
    }
    // One MODEL per relay with any live unscored leaf; the relay re-serves
    // it locally to exactly the children that still owe a score.
    for (std::size_t ridx = 0; ridx < relays_.size(); ++ridx) {
      const RelayBinding& rb = relays_[ridx];
      bool owed = false;
      for (int id = rb.base; id < rb.base + rb.count && !owed; ++id)
        owed = child_live_[static_cast<std::size_t>(id)] != 0 &&
               !rc.scored[static_cast<std::size_t>(id)];
      if (owed) send_model_to_relay(rc, ridx);
    }
    return;
  }
  // Update phase: re-send SELECT to selected clients that have not
  // delivered. A duplicate SELECT makes the client re-send its cached
  // update bytes (it never compresses twice).
  for (int id : rc.awaiting) {
    if (!connected(id) || delivered_[static_cast<std::size_t>(id)]) continue;
    const Frame sf =
        make_frame(MsgType::kSelect, static_cast<std::uint32_t>(rc.round),
                   kServerId, encode_f64(rc.ratio_of.at(id)));
    const std::size_t sent = send_to(id, sf);
    if (sent != 0) {
      rc.ledger->record_retransmit(id, static_cast<std::int64_t>(sent));
      if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
        cfg_.tracer->record(metrics::ev_retransmit(
            rc.round, id, static_cast<std::int64_t>(sent), trace_now()));
    }
  }
}

void ServerSession::handle_frame(RoundCtx& rc, int id, const Frame& f) {
  switch (f.type) {
    case MsgType::kScore: {
      if (rc.phase != Phase::kScore ||
          f.round != static_cast<std::uint32_t>(rc.round) ||
          rc.scored[static_cast<std::size_t>(id)])
        return;  // stale or duplicate
      const double s = parse_f64(f.payload);
      ADAFL_CHECK_MSG(s >= 0.0 && s <= 1.0,
                      "session: utility score out of [0,1]");
      rc.scores[static_cast<std::size_t>(id)] = s;
      rc.scored[static_cast<std::size_t>(id)] = true;
      return;
    }
    case MsgType::kUpdate: {
      if (rc.phase != Phase::kUpdate ||
          f.round != static_cast<std::uint32_t>(rc.round) ||
          rc.awaiting.count(id) == 0 ||
          delivered_[static_cast<std::size_t>(id)])
        return;
      // Decode straight into the client's reused delivery slot. The slot is
      // only marked delivered after validation: a throw below leaves it
      // unmarked (and droppable), so a partial decode cannot be aggregated.
      core::AdaFlDelivery& dl = delivery_slots_[static_cast<std::size_t>(id)];
      parse_update_fields(f.payload, dl);
      // Slots are reused across rounds; a slot that once held a relay
      // partial's metadata must not poison a later direct delivery.
      dl.meta_only = false;
      // Reject protocol-valid-but-wrong updates here, inside the service
      // loop's CheckError net: the offending peer is dropped and the round
      // degrades. deserialize() already bounds top-k indices by dense_size,
      // so past these two checks apply_round cannot throw on this delivery.
      ADAFL_CHECK_MSG(dl.msg.kind == compress::CodecKind::kTopK,
                      "session: UPDATE from client "
                          << id << " carries a non-top-k message");
      ADAFL_CHECK_MSG(
          dl.msg.dense_size ==
              static_cast<std::int64_t>(core_.global().size()),
          "session: UPDATE from client " << id << " dimension mismatch");
      delivered_[static_cast<std::size_t>(id)] = 1;
      ++delivered_count_;
      rc.ledger->record_upload(id, static_cast<std::int64_t>(f.wire_size()),
                               true);
      return;
    }
    case MsgType::kPing:
      send_to(id, make_frame(MsgType::kPong, f.round, kServerId));
      return;
    default:
      return;  // PONG, duplicate HELLO, unexpected types: ignore
  }
}

bool ServerSession::service(RoundCtx& rc) {
  bool progress = false;

  // 0) Keep standby leases alive (answer their PINGs) and reap dead ones.
  if (cfg_.publisher != nullptr) cfg_.publisher->service();

  // Event-loop frames first; the classic Transport path below still runs so
  // add_transport() connections (the UDP mux) work alongside the loop.
  if (loop_ != nullptr && service_event_loop(rc)) progress = true;

  // 1) Handshake pending transports (HELLO -> WELCOME -> in-round catchup).
  std::vector<std::unique_ptr<Transport>> pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending.swap(pending_);
  }
  for (auto& t : pending) {
    std::optional<Frame> f;
    try {
      f = t->recv(std::chrono::milliseconds(0));
    } catch (const CheckError&) {
      continue;  // malformed stream before HELLO: drop
    }
    if (!f) {
      if (!t->closed()) {  // still waiting for its HELLO
        std::lock_guard<std::mutex> lock(pending_mu_);
        pending_.push_back(std::move(t));
      }
      continue;
    }
    progress = true;
    if (f->type == MsgType::kStandbyHello) {
      // A replication peer, not a client: hand the connection to the
      // publisher (or drop it when replication is not configured).
      try {
        ADAFL_CHECK_MSG(parse_hello(f->payload) == kProtocolVersion,
                        "session: standby protocol version mismatch");
      } catch (const CheckError&) {
        continue;
      }
      if (cfg_.publisher != nullptr) cfg_.publisher->adopt(std::move(t));
      continue;
    }
    if (f->type == MsgType::kRelayHello) {
      // A mid-tier aggregator announcing its leaf range.
      if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
        cfg_.tracer->record(metrics::ev_frame(
            metrics::TraceEventType::kFrameRx, static_cast<int>(f->round),
            -1, to_string(f->type),
            static_cast<std::int64_t>(f->wire_size()), trace_now()));
      try {
        const RelayHelloPayload h = parse_relay_hello(f->payload);
        handle_relay_hello(rc, h, std::move(t), kNoConn);
      } catch (const CheckError&) {
        // invalid claim: drop the connection (t closes on destruction)
      }
      continue;
    }
    int id = -1;
    try {
      ADAFL_CHECK_MSG(f->type == MsgType::kHello,
                      "session: expected HELLO, got " << to_string(f->type));
      ADAFL_CHECK_MSG(parse_hello(f->payload) == kProtocolVersion,
                      "session: protocol version mismatch");
      ADAFL_CHECK_MSG(f->client_id < static_cast<std::uint32_t>(
                                         cfg_.expected_clients),
                      "session: client id " << f->client_id
                                            << " out of range");
      id = static_cast<int>(f->client_id);
    } catch (const CheckError&) {
      continue;  // bad handshake: drop
    }
    const bool rejoin = ever_joined_[static_cast<std::size_t>(id)];
    conns_[static_cast<std::size_t>(id)] = std::move(t);  // replaces any stale conn
    ever_joined_[static_cast<std::size_t>(id)] = true;
    const bool traced = cfg_.tracer != nullptr && cfg_.tracer->enabled();
    if (traced)
      cfg_.tracer->record(metrics::ev_frame(
          metrics::TraceEventType::kFrameRx, static_cast<int>(f->round), id,
          to_string(f->type), static_cast<std::int64_t>(f->wire_size()),
          trace_now()));
    if (rejoin) {
      rc.ledger->record_reconnect(id);
      if (traced)
        cfg_.tracer->record(metrics::ev_reconnect(rc.round, id, trace_now()));
    }
    send_to(id, make_frame(MsgType::kWelcome, 0, kServerId,
                           welcome_payload_));
    // Catch the rejoiner up with the in-flight round state.
    if (rc.phase == Phase::kScore &&
        !rc.scored[static_cast<std::size_t>(id)]) {
      send_model(rc, id);
    } else if (rc.phase == Phase::kUpdate && rc.awaiting.count(id) != 0 &&
               !delivered_[static_cast<std::size_t>(id)]) {
      const Frame sf = make_frame(MsgType::kSelect,
                                  static_cast<std::uint32_t>(rc.round),
                                  kServerId, encode_f64(rc.ratio_of.at(id)));
      const std::size_t sent = send_to(id, sf);
      if (sent != 0) {
        rc.ledger->record_retransmit(id, static_cast<std::int64_t>(sent));
        if (traced)
          cfg_.tracer->record(metrics::ev_retransmit(
              rc.round, id, static_cast<std::int64_t>(sent), trace_now()));
      }
    }
  }

  // 2) One non-blocking poll pass over every attached connection.
  for (int id = 0; id < cfg_.expected_clients; ++id) {
    auto& conn = conns_[static_cast<std::size_t>(id)];
    while (conn) {
      std::optional<Frame> f;
      try {
        f = conn->recv(std::chrono::milliseconds(0));
      } catch (const CheckError&) {
        conn.reset();  // malformed stream: drop the connection
        break;
      }
      if (!f) {
        if (conn->closed()) conn.reset();  // EOF noticed
        break;
      }
      progress = true;
      if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
        cfg_.tracer->record(metrics::ev_frame(
            metrics::TraceEventType::kFrameRx, static_cast<int>(f->round),
            id, to_string(f->type),
            static_cast<std::int64_t>(f->wire_size()), trace_now()));
      try {
        handle_frame(rc, id, *f);
      } catch (const CheckError&) {
        conn.reset();  // bad payload: drop, round degrades
      }
    }
  }

  // 3) Poll classic-mode relay connections. A malformed or dead stream
  // drops the whole binding; its leaves fall back to unreachable until a
  // redial or standby promotion re-binds the range.
  for (std::size_t ridx = 0; ridx < relays_.size();) {
    bool dropped = false;
    while (relays_[ridx].conn) {
      std::optional<Frame> f;
      try {
        f = relays_[ridx].conn->recv(std::chrono::milliseconds(0));
      } catch (const CheckError&) {
        drop_relay(ridx);
        dropped = true;
        break;
      }
      if (!f) {
        if (relays_[ridx].conn->closed()) {
          drop_relay(ridx);
          dropped = true;
        }
        break;
      }
      progress = true;
      if (cfg_.tracer != nullptr && cfg_.tracer->enabled())
        cfg_.tracer->record(metrics::ev_frame(
            metrics::TraceEventType::kFrameRx, static_cast<int>(f->round),
            f->client_id == kServerId ? -1 : static_cast<int>(f->client_id),
            to_string(f->type), static_cast<std::int64_t>(f->wire_size()),
            trace_now()));
      try {
        handle_relay_frame(rc, ridx, *f);
      } catch (const CheckError&) {
        drop_relay(ridx);
        dropped = true;
        break;
      }
    }
    if (!dropped) ++ridx;
  }
  return progress;
}

bool ServerSession::service_event_loop(RoundCtx& rc) {
  // Accepted connections stay unbound (and unserviced) until their first
  // frame — the HELLO — arrives; nothing to do for them here.
  loop_->take_accepted();
  for (const ConnId conn : loop_->take_closed()) {
    auto rit = relay_conn_.find(conn);
    if (rit != relay_conn_.end()) {
      drop_relay(rit->second);
      continue;
    }
    auto it = conn_client_.find(conn);
    if (it != conn_client_.end()) {
      if (client_conn_[static_cast<std::size_t>(it->second)] == conn)
        client_conn_[static_cast<std::size_t>(it->second)] = kNoConn;
      conn_client_.erase(it);
    }
    auto st = standby_links_.find(conn);
    if (st != standby_links_.end()) {
      st->second->closed.store(true);
      st->second->cv.notify_all();
      standby_links_.erase(st);
    }
  }

  frame_batch_.clear();
  loop_->poll_all(frame_batch_);
  if (frame_batch_.empty()) return false;

  const bool traced = cfg_.tracer != nullptr && cfg_.tracer->enabled();

  // Pass 1 (sequential, arrival order): dispatch-latency metric, standby
  // routing, handshakes, and every non-UPDATE frame. Aggregatable UPDATE
  // frames only get collected as decode jobs — one per client at most
  // (pending_decode_), so every job owns a disjoint delivery slot.
  decode_jobs_.clear();
  const auto drained_at = Clock::now();
  for (std::size_t i = 0; i < frame_batch_.size(); ++i) {
    const InFrame& inf = frame_batch_[i];
    if (dispatch_hist_ != nullptr)
      dispatch_hist_->observe(
          std::chrono::duration<double, std::milli>(drained_at - inf.enqueued)
              .count());
    auto st = standby_links_.find(inf.conn);
    if (st != standby_links_.end()) {
      // Replication peer: its frames belong to the publisher, delivered via
      // the shared inbox its LoopPeerTransport recv()s from.
      {
        std::lock_guard<std::mutex> lk(st->second->mu);
        st->second->inbox.push_back(inf.frame);
      }
      st->second->cv.notify_all();
      continue;
    }
    auto rit = relay_conn_.find(inf.conn);
    if (rit != relay_conn_.end()) {
      if (traced)
        cfg_.tracer->record(metrics::ev_frame(
            metrics::TraceEventType::kFrameRx,
            static_cast<int>(inf.frame.round),
            inf.frame.client_id == kServerId
                ? -1
                : static_cast<int>(inf.frame.client_id),
            to_string(inf.frame.type),
            static_cast<std::int64_t>(inf.frame.wire_size()), trace_now()));
      try {
        handle_relay_frame(rc, rit->second, inf.frame);
      } catch (const CheckError&) {
        drop_relay(rit->second);  // hostile relay: drop the whole binding
      }
      continue;
    }
    auto bound = conn_client_.find(inf.conn);
    if (bound == conn_client_.end()) {
      handle_loop_handshake(rc, inf);
      continue;
    }
    const int id = bound->second;
    if (traced)
      cfg_.tracer->record(metrics::ev_frame(
          metrics::TraceEventType::kFrameRx,
          static_cast<int>(inf.frame.round), id, to_string(inf.frame.type),
          static_cast<std::int64_t>(inf.frame.wire_size()), trace_now()));
    if (inf.frame.type == MsgType::kUpdate) {
      if (rc.phase == Phase::kUpdate &&
          inf.frame.round == static_cast<std::uint32_t>(rc.round) &&
          rc.awaiting.count(id) != 0 &&
          !delivered_[static_cast<std::size_t>(id)] &&
          !pending_decode_[static_cast<std::size_t>(id)]) {
        pending_decode_[static_cast<std::size_t>(id)] = 1;
        decode_jobs_.push_back(DecodeJob{i, id});
      }
      continue;  // stale/duplicate UPDATE: ignored, as in handle_frame
    }
    try {
      handle_frame(rc, id, inf.frame);
    } catch (const CheckError&) {
      drop_loop_conn(inf.conn);  // bad payload: drop, round degrades
    }
  }

  // Pass 2 (parallel): decode every collected UPDATE into its client's
  // private delivery slot. Jobs touch disjoint slots and no shared state;
  // CheckError is captured per job — never thrown across the worker pool.
  if (!decode_jobs_.empty()) {
    decode_ok_.assign(decode_jobs_.size(), 0);
    const auto jn = static_cast<std::int64_t>(decode_jobs_.size());
    core::parallel_for_blocked(0, jn, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t j = lo; j < hi; ++j) {
        const DecodeJob& job = decode_jobs_[static_cast<std::size_t>(j)];
        core::AdaFlDelivery& dl =
            delivery_slots_[static_cast<std::size_t>(job.client)];
        try {
          parse_update_fields(frame_batch_[job.batch_index].frame.payload,
                              dl);
          dl.meta_only = false;  // reused slot may hold stale relay metadata
          ADAFL_CHECK_MSG(dl.msg.kind == compress::CodecKind::kTopK,
                          "session: UPDATE from client "
                              << job.client
                              << " carries a non-top-k message");
          ADAFL_CHECK_MSG(
              dl.msg.dense_size ==
                  static_cast<std::int64_t>(core_.global().size()),
              "session: UPDATE from client " << job.client
                                             << " dimension mismatch");
          decode_ok_[static_cast<std::size_t>(j)] = 1;
        } catch (const CheckError&) {
          // leave decode_ok_ 0; the offender is dropped below
        }
      }
    });

    // Pass 3 (sequential, batch order): commit decode results.
    for (std::size_t j = 0; j < decode_jobs_.size(); ++j) {
      const DecodeJob& job = decode_jobs_[j];
      pending_decode_[static_cast<std::size_t>(job.client)] = 0;
      if (!decode_ok_[j]) {
        drop_loop_conn(frame_batch_[job.batch_index].conn);
        continue;
      }
      delivered_[static_cast<std::size_t>(job.client)] = 1;
      ++delivered_count_;
      rc.ledger->record_upload(
          job.client,
          static_cast<std::int64_t>(
              frame_batch_[job.batch_index].frame.wire_size()),
          true);
    }
  }
  return true;
}

void ServerSession::handle_loop_handshake(RoundCtx& rc, const InFrame& inf) {
  const Frame& f = inf.frame;
  const bool traced = cfg_.tracer != nullptr && cfg_.tracer->enabled();
  if (f.type == MsgType::kStandbyHello) {
    // A replication peer, not a client: hand the connection to the
    // publisher (or drop it when replication is not configured).
    try {
      ADAFL_CHECK_MSG(parse_hello(f.payload) == kProtocolVersion,
                      "session: standby protocol version mismatch");
    } catch (const CheckError&) {
      loop_->close_conn(inf.conn);
      return;
    }
    if (cfg_.publisher == nullptr) {
      loop_->close_conn(inf.conn);
      return;
    }
    auto state = std::make_shared<LoopPeerState>();
    standby_links_[inf.conn] = state;
    cfg_.publisher->adopt(std::make_unique<LoopPeerTransport>(
        loop_, inf.conn, std::move(state)));
    return;
  }
  if (f.type == MsgType::kRelayHello) {
    if (traced)
      cfg_.tracer->record(metrics::ev_frame(
          metrics::TraceEventType::kFrameRx, static_cast<int>(f.round), -1,
          to_string(f.type), static_cast<std::int64_t>(f.wire_size()),
          trace_now()));
    try {
      const RelayHelloPayload h = parse_relay_hello(f.payload);
      handle_relay_hello(rc, h, nullptr, inf.conn);
    } catch (const CheckError&) {
      loop_->close_conn(inf.conn);  // invalid claim: drop
    }
    return;
  }
  int id = -1;
  try {
    ADAFL_CHECK_MSG(f.type == MsgType::kHello,
                    "session: expected HELLO, got " << to_string(f.type));
    ADAFL_CHECK_MSG(parse_hello(f.payload) == kProtocolVersion,
                    "session: protocol version mismatch");
    ADAFL_CHECK_MSG(
        f.client_id < static_cast<std::uint32_t>(cfg_.expected_clients),
        "session: client id " << f.client_id << " out of range");
    id = static_cast<int>(f.client_id);
  } catch (const CheckError&) {
    loop_->close_conn(inf.conn);  // bad handshake: drop
    return;
  }
  const bool rejoin = ever_joined_[static_cast<std::size_t>(id)];
  const ConnId old = client_conn_[static_cast<std::size_t>(id)];
  if (old != kNoConn && old != inf.conn) {
    conn_client_.erase(old);  // redial replaces any stale binding
    loop_->close_conn(old);
  }
  client_conn_[static_cast<std::size_t>(id)] = inf.conn;
  conn_client_[inf.conn] = id;
  ever_joined_[static_cast<std::size_t>(id)] = true;
  if (traced)
    cfg_.tracer->record(metrics::ev_frame(
        metrics::TraceEventType::kFrameRx, static_cast<int>(f.round), id,
        to_string(f.type), static_cast<std::int64_t>(f.wire_size()),
        trace_now()));
  if (rejoin) {
    rc.ledger->record_reconnect(id);
    if (traced)
      cfg_.tracer->record(metrics::ev_reconnect(rc.round, id, trace_now()));
  }
  send_to(id, make_frame(MsgType::kWelcome, 0, kServerId, welcome_payload_),
          &welcome_frame_bytes_);
  // Catch the joiner up with the in-flight round state.
  if (rc.phase == Phase::kScore && !rc.scored[static_cast<std::size_t>(id)]) {
    send_model(rc, id);
  } else if (rc.phase == Phase::kUpdate && rc.awaiting.count(id) != 0 &&
             !delivered_[static_cast<std::size_t>(id)]) {
    const Frame sf = make_frame(MsgType::kSelect,
                                static_cast<std::uint32_t>(rc.round),
                                kServerId, encode_f64(rc.ratio_of.at(id)));
    const std::size_t sent = send_to(id, sf);
    if (sent != 0) {
      rc.ledger->record_retransmit(id, static_cast<std::int64_t>(sent));
      if (traced)
        cfg_.tracer->record(metrics::ev_retransmit(
            rc.round, id, static_cast<std::int64_t>(sent), trace_now()));
    }
  }
}

fl::TrainLog ServerSession::run() {
  const int n = cfg_.expected_clients;
  const int quorum = cfg_.quorum > 0 ? cfg_.quorum : n;
  const std::size_t d = core_.global().size();
  const bool ckpt = !cfg_.checkpoint_dir.empty();
  const bool nudge_on = cfg_.retransmit_nudge.count() > 0;

  fl::TrainLog log;
  log.dense_update_bytes = 8 + 4 * static_cast<std::int64_t>(d);
  const auto t0 = Clock::now();
  trace_t0_ = t0;

  metrics::Tracer* const tracer = cfg_.tracer;
  const bool traced = tracer != nullptr && tracer->enabled();
  core_.set_tracer(traced ? tracer : nullptr);

  metrics::Histogram* const round_hist =
      cfg_.registry != nullptr
          ? &cfg_.registry->histogram("server.round_latency_ms")
          : nullptr;
  dispatch_hist_ = (cfg_.registry != nullptr && loop_ != nullptr)
                       ? &cfg_.registry->histogram("server.frame_dispatch_ms")
                       : nullptr;
  if (loop_ != nullptr) loop_->start();

  int start_round = 1;
  if (cfg_.resume) {
    ADAFL_CHECK_MSG(ckpt, "ServerSession: resume requires a checkpoint dir");
    start_round = resume_from_checkpoint();
    resumed_from_ = start_round;
    log.ledger.record_recovery();
    if (traced) {
      tracer->set_start_round(start_round);
      tracer->record(metrics::ev_resume(start_round, trace_now()));
    }
  }

  // Early-stop path (request_stop): persist the round boundary we stopped
  // at — the interrupted round replays on --resume — and drop every peer
  // abruptly, exactly as a crash would.
  auto stop_now = [&](int next_round,
                      const core::AdaFlServerCore::State& snap) {
    if (traced) tracer->flush();  // durable before the checkpoint exists
    if (ckpt && stop_save_.load(std::memory_order_relaxed))
      write_checkpoint(next_round, snap);
    log.interrupted = true;
    drop_all_connections();
    log.applied_updates = core_.stats().selected_updates;
    log.total_time = std::chrono::duration<double>(Clock::now() - t0).count();
  };

  for (int round = start_round; round <= cfg_.rounds; ++round) {
    if (stop_.load(std::memory_order_acquire)) {
      stop_now(round, core_.state());
      return log;
    }
    // Boundary snapshot: plan_round mutates selection stats before
    // apply_round commits the round, so a stop mid-round must persist the
    // state as of the round START, never a half-planned hybrid.
    const core::AdaFlServerCore::State round_start = core_.state();
    const auto round_t0 = Clock::now();

    if (traced) tracer->record(metrics::ev_round_start(round, trace_now()));

    RoundCtx rc;
    rc.round = round;
    rc.phase = Phase::kScore;
    rc.sent_model.assign(static_cast<std::size_t>(n), false);
    rc.scored.assign(static_cast<std::size_t>(n), false);
    rc.scores.assign(static_cast<std::size_t>(n), 0.0);
    rc.ledger = &log.ledger;
    delivery_slots_.resize(static_cast<std::size_t>(n));
    delivered_.assign(static_cast<std::size_t>(n), 0);
    delivered_count_ = 0;
    for (auto& rb : relays_) rb.sent_model = false;

    // Whole-round cap (both phases share it); disabled when 0. A client
    // that scores and then dies can otherwise pin the round to the full
    // per-phase deadline twice over.
    const auto round_deadline_at =
        cfg_.round_total_deadline.count() > 0
            ? Clock::now() + cfg_.round_total_deadline
            : Clock::time_point::max();

    // --- Broadcast the round's model to everyone attached: each direct
    // client gets its own MODEL; each relay gets one, which it re-serves to
    // its whole subtree.
    for (int id = 0; id < n; ++id)
      if (direct_connected(id)) send_model(rc, id);
    for (std::size_t ridx = 0; ridx < relays_.size(); ++ridx)
      send_model_to_relay(rc, ridx);

    // --- Score phase: wait until every live client scored, or the deadline
    // passed with at least a quorum. Late joiners are serviced throughout.
    auto deadline = Clock::now() + cfg_.round_deadline;
    auto nudge_gap = cfg_.retransmit_nudge;
    auto next_nudge = Clock::now() + nudge_gap;
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) break;
      const bool progress = service(rc);
      const int scored = static_cast<int>(
          std::count(rc.scored.begin(), rc.scored.end(), true));
      int live = 0;
      for (int id = 0; id < n; ++id)
        if (connected(id)) ++live;
      if (scored >= quorum &&
          (scored >= live || Clock::now() >= deadline ||
           Clock::now() >= round_deadline_at))
        break;
      // The nudge interval deliberately does NOT reset on progress: a
      // steady trickle of PINGs would otherwise starve the retransmission
      // forever. It DOES back off exponentially within the phase: each
      // firing doubles the gap until the phase ends. A client that is
      // slow because it is busy (a 10k-client fleet training on few
      // cores) must not be spammed with retransmissions every interval —
      // that feedback loop melts the server — while a genuinely lost
      // frame is still recovered after at most the time already waited.
      if (nudge_on && Clock::now() >= next_nudge) {
        nudge(rc);
        nudge_gap *= 2;
        next_nudge = Clock::now() + nudge_gap;
      }
      if (!progress) {
        // Loop mode blocks on the loop's activity signal instead of a dumb
        // sleep: a frame landing mid-sleep wakes the service pass at once.
        if (loop_ != nullptr)
          loop_->wait_activity(cfg_.idle_poll);
        else
          std::this_thread::sleep_for(cfg_.idle_poll);
      }
    }
    if (stop_.load(std::memory_order_acquire)) {
      stop_now(round, round_start);
      return log;
    }

    // --- Selection + ratio assignment (shared AdaFL server core).
    const core::AdaFlRoundPlan plan =
        core_.plan_round(rc.scores, rc.scored, round);

    rc.phase = Phase::kUpdate;
    for (std::size_t j = 0; j < plan.sel.selected.size(); ++j) {
      const int id = plan.sel.selected[j];
      rc.ratio_of[id] = plan.ratios[j];
      rc.awaiting.insert(id);
      send_to(id, make_frame(MsgType::kSelect,
                             static_cast<std::uint32_t>(round), kServerId,
                             encode_f64(plan.ratios[j])));
    }
    for (int id = 0; id < n; ++id) {
      if (!rc.scored[static_cast<std::size_t>(id)] ||
          rc.awaiting.count(id) != 0)
        continue;
      send_to(id, make_frame(MsgType::kSkip,
                             static_cast<std::uint32_t>(round), kServerId));
    }

    // --- Update phase: aggregate what arrives by the deadline.
    deadline = Clock::now() + cfg_.round_deadline;
    nudge_gap = cfg_.retransmit_nudge;  // backoff restarts with the phase
    next_nudge = Clock::now() + nudge_gap;
    while (delivered_count_ < rc.awaiting.size() &&
           Clock::now() < deadline && Clock::now() < round_deadline_at) {
      if (stop_.load(std::memory_order_acquire)) break;
      const bool progress = service(rc);
      if (nudge_on && Clock::now() >= next_nudge) {
        nudge(rc);
        nudge_gap *= 2;
        next_nudge = Clock::now() + nudge_gap;
      }
      if (!progress) {
        if (loop_ != nullptr)
          loop_->wait_activity(cfg_.idle_poll);
        else
          std::this_thread::sleep_for(cfg_.idle_poll);
      }
    }
    if (stop_.load(std::memory_order_acquire)) {
      stop_now(round, round_start);  // the interrupted round replays
      return log;
    }

    core::AdaFlRoundOutcome out;
    {
      metrics::PhaseProfiler::Scope prof("aggregate");
      const auto find = [this](int id) -> const core::AdaFlDelivery* {
        return delivered_[static_cast<std::size_t>(id)]
                   ? &delivery_slots_[static_cast<std::size_t>(id)]
                   : nullptr;
      };
      if (cfg_.params.agg_group > 0) {
        out = core_.apply_round(
            plan, find,
            [&rc](int gbase) -> const compress::EncodedGradient* {
              const auto it = rc.wire_partials.find(gbase);
              return it == rc.wire_partials.end() ? nullptr : &it->second;
            });
      } else {
        out = core_.apply_round(plan, find);
      }
    }

    const double round_mean_loss =
        out.delivered > 0 ? out.loss_sum / static_cast<double>(out.delivered)
                          : 0.0;
    const bool evaled = round % cfg_.eval_every == 0 || round == cfg_.rounds;
    double round_accuracy = 0.0;
    if (evaled) {
      metrics::PhaseProfiler::Scope prof("eval");
      fl::RoundRecord rec;
      rec.round = round;
      rec.time = std::chrono::duration<double>(Clock::now() - t0).count();
      if (test_ != nullptr) {
        eval_model_.set_flat(core_.global());
        if (eval_batch_.size() == 0) eval_batch_ = test_->all();
        rec.test_accuracy = eval_model_.accuracy(eval_batch_);
      }
      rec.mean_train_loss = round_mean_loss;
      rec.participants = out.delivered;
      round_accuracy = rec.test_accuracy;
      log.records.push_back(rec);
    }

    if (traced) {
      tracer->record(metrics::ev_round_end(round, out.delivered,
                                           round_mean_loss, evaled,
                                           round_accuracy, trace_now()));
      // Flush BEFORE the checkpoint below: the stitched crash-recovery
      // trace relies on the file always covering at least the rounds the
      // checkpoint says are done.
      tracer->flush();
    }

    if (round_hist != nullptr)
      round_hist->observe(
          std::chrono::duration<double, std::milli>(Clock::now() - round_t0)
              .count());

    // --- Durable progress: the round is committed, persist it.
    if (ckpt &&
        (round % cfg_.checkpoint_every == 0 || round == cfg_.rounds)) {
      write_checkpoint(round + 1, core_.state());
      if (traced)
        tracer->record(metrics::ev_checkpoint(
            round, core::checkpoint_path(cfg_.checkpoint_dir), trace_now()));
    }
  }

  // --- Orderly shutdown: tell everyone training is over.
  for (int id = 0; id < n; ++id) {
    auto& conn = conns_[static_cast<std::size_t>(id)];
    if (!conn) continue;
    conn->send(make_frame(MsgType::kShutdown, 0, kServerId));
    conn->close();
    conn.reset();
  }
  // One SHUTDOWN per relay; it broadcasts to its subtree and exits.
  for (std::size_t ridx = 0; ridx < relays_.size(); ++ridx)
    send_to_relay(ridx, make_frame(MsgType::kShutdown, 0, kServerId));
  for (auto& rb : relays_)
    if (rb.conn) {
      rb.conn->close();
      rb.conn.reset();
    }
  if (loop_ != nullptr) {
    const Frame sd = make_frame(MsgType::kShutdown, 0, kServerId);
    const auto sd_bytes = std::make_shared<const std::vector<std::uint8_t>>(
        encode_frame(sd));
    for (int id = 0; id < n; ++id)
      if (client_conn_[static_cast<std::size_t>(id)] != kNoConn)
        send_to(id, sd, &sd_bytes);
  }
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (auto& t : pending_) t->close();
    pending_.clear();
  }
  // Standbys stand down on a completed run — SIGKILL never reaches this,
  // which is exactly when promotion is wanted.
  if (cfg_.publisher != nullptr) cfg_.publisher->shutdown_standbys();
  if (loop_ != nullptr) {
    // The SHUTDOWN broadcast (and the publisher's stand-down frames, which
    // ride LoopPeerTransport) are async loop commands: drain them before
    // stopping so the final frames actually leave the box.
    loop_->flush(std::chrono::milliseconds(2000));
    for (auto& [conn, state] : standby_links_) {
      state->closed.store(true);
      state->cv.notify_all();
    }
    standby_links_.clear();
    conn_client_.clear();
    std::fill(client_conn_.begin(), client_conn_.end(), kNoConn);
    loop_->stop();
  }

  if (traced) tracer->flush();
  core_.set_tracer(nullptr);
  log.applied_updates = core_.stats().selected_updates;
  log.total_time = std::chrono::duration<double>(Clock::now() - t0).count();
  return log;
}

// --- ClientSession. ------------------------------------------------------

namespace {

/// Rotation budget per endpoint when backoff retries forever
/// (max_attempts == 0): a multi-endpoint client must still fail over to
/// its standby instead of pinning a dead primary indefinitely.
constexpr int kUnboundedRotateAttempts = 4;

}  // namespace

ClientSession::ClientSession(ClientSessionConfig cfg, DialFn dial,
                             BootstrapFn bootstrap)
    : cfg_(std::move(cfg)),
      endpoint_count_(1),
      bootstrap_(std::move(bootstrap)) {
  ADAFL_CHECK_MSG(cfg_.client_id >= 0, "ClientSession: negative client id");
  ADAFL_CHECK_MSG(dial != nullptr && bootstrap_ != nullptr,
                  "ClientSession: null callback");
  dial_ = [d = std::move(dial)](std::size_t) { return d(); };
}

ClientSession::ClientSession(ClientSessionConfig cfg, IndexedDialFn dial,
                             std::size_t endpoint_count,
                             BootstrapFn bootstrap)
    : cfg_(std::move(cfg)),
      dial_(std::move(dial)),
      endpoint_count_(endpoint_count),
      bootstrap_(std::move(bootstrap)) {
  ADAFL_CHECK_MSG(cfg_.client_id >= 0, "ClientSession: negative client id");
  ADAFL_CHECK_MSG(dial_ != nullptr && bootstrap_ != nullptr,
                  "ClientSession: null callback");
  ADAFL_CHECK_MSG(endpoint_count_ >= 1,
                  "ClientSession: empty endpoint list");
}

ClientRunStats ClientSession::run() {
  ClientRunStats st;
  const auto cid = static_cast<std::uint32_t>(cfg_.client_id);

  std::unique_ptr<Transport> conn;
  bool ever_connected = false;

  std::optional<fl::FlClient> client;
  core::AdaFlParams params;
  std::optional<compress::DgcCompressor> comp;

  // Round-local training state; survives reconnects by design so a TCP drop
  // never resets DGC error feedback or retrains a round.
  fl::FlClient::LocalResult res;
  int trained_round = 0;
  int uploaded_round = 0;
  int skipped_round = 0;
  UpdatePayload update;                     ///< reused compression output
  std::vector<std::uint8_t> wire_scratch;   ///< reused wire staging buffer
  std::vector<std::uint8_t> cached_update;  ///< UPDATE payload, uploaded_round

  auto last_rx = Clock::now();
  auto last_ping = last_rx;

  // Endpoint rotation + the redial budget. `ep_attempts` counts failed
  // dials against the current endpoint and deliberately persists across
  // disconnect episodes — a connection that comes up and dies again without
  // the client finishing a round keeps draining the same budget, so a
  // flapping endpoint is eventually abandoned. Completing a round (UPDATE
  // sent or SKIP processed) resets it: periodic blips over a long healthy
  // run can never cumulatively exhaust the schedule.
  std::size_t endpoint = 0;
  int ep_attempts = 0;
  std::size_t dead_endpoints = 0;  ///< consecutive endpoints exhausted

  const auto run_t0 = Clock::now();
  metrics::Tracer* const tracer = cfg_.tracer;
  const bool traced = tracer != nullptr && tracer->enabled();
  auto tnow = [&] {
    return std::chrono::duration<double>(Clock::now() - run_t0).count();
  };
  auto send = [&](const Frame& fr) {
    if (conn->send(fr) && traced)
      tracer->record(metrics::ev_frame(
          metrics::TraceEventType::kFrameTx, static_cast<int>(fr.round),
          cfg_.client_id, to_string(fr.type),
          static_cast<std::int64_t>(fr.wire_size()), tnow()));
  };

  for (;;) {
    if (!conn || conn->closed()) {
      conn.reset();
      const int budget = cfg_.backoff.max_attempts > 0
                             ? cfg_.backoff.max_attempts
                             : kUnboundedRotateAttempts;
      for (;;) {
        if (ep_attempts >= budget) {
          // Endpoint exhausted: rotate to the next one with a fresh (fast)
          // schedule. Give up only when a bounded budget has burned through
          // the whole list with no endpoint answering in between.
          if (cfg_.backoff.max_attempts > 0 &&
              ++dead_endpoints >= endpoint_count_) {
            if (traced) tracer->flush();
            return st;  // gave up; completed stays false
          }
          endpoint = (endpoint + 1) % endpoint_count_;
          ep_attempts = 0;
          if (endpoint_count_ > 1) ++st.endpoint_rotations;
          continue;
        }
        if (ep_attempts > 0 || ever_connected)
          std::this_thread::sleep_for(cfg_.backoff.delay(ep_attempts));
        conn = dial_(endpoint);
        if (conn) {
          dead_endpoints = 0;
          break;
        }
        ++ep_attempts;
      }
      if (ever_connected) {
        ++st.reconnects;
        if (traced)
          tracer->record(
              metrics::ev_reconnect(trained_round, cfg_.client_id, tnow()));
      }
      ever_connected = true;
      send(make_frame(MsgType::kHello, 0, cid,
                      encode_hello(kProtocolVersion)));
      last_rx = Clock::now();
      continue;
    }

    std::optional<Frame> f;
    try {
      f = conn->recv(cfg_.recv_poll);
    } catch (const CheckError&) {
      conn->close();  // malformed server stream: reconnect
      continue;
    }
    const auto now = Clock::now();
    if (!f) {
      if (conn->closed()) continue;
      if (now - last_rx > cfg_.liveness_timeout) {
        conn->close();  // server unresponsive: redial
        continue;
      }
      if (now - last_rx > cfg_.heartbeat_interval &&
          now - last_ping > cfg_.heartbeat_interval) {
        send(make_frame(MsgType::kPing, 0, cid));
        last_ping = now;
      }
      continue;
    }
    last_rx = now;
    if (traced)
      tracer->record(metrics::ev_frame(
          metrics::TraceEventType::kFrameRx, static_cast<int>(f->round),
          cfg_.client_id, to_string(f->type),
          static_cast<std::int64_t>(f->wire_size()), tnow()));

    // Handler parse failures get the same treatment as framing errors:
    // close and redial. Training state is round-local and survives, so a
    // one-off corrupt payload costs a reconnect, not the session.
    try {
      switch (f->type) {
        case MsgType::kWelcome: {
          const WelcomeInfo w = parse_welcome(f->payload);
          params = w.params;
          if (!client)
            client.emplace(bootstrap_(w.config, cfg_.client_id, params));
          ADAFL_CHECK_MSG(
              static_cast<std::uint64_t>(client->param_count()) ==
                  w.param_count,
              "session: bootstrap model has " << client->param_count()
                                              << " params, server expects "
                                              << w.param_count);
          if (!comp)
            comp.emplace(static_cast<std::int64_t>(w.param_count),
                         params.dgc);
          break;
        }
        case MsgType::kModel: {
          if (!client) break;  // WELCOME must precede MODEL
          const ModelPayload m = parse_model(f->payload);
          ADAFL_CHECK_MSG(
              m.global.size() ==
                  static_cast<std::size_t>(client->param_count()),
              "session: MODEL dimension mismatch");
          const int round = static_cast<int>(f->round);
          if (trained_round != round) {  // a re-sent MODEL never retrains
            metrics::PhaseProfiler::Scope prof("client-train");
            client->train_from_into(m.global, res);
            trained_round = round;
            ++st.rounds_trained;
          }
          const double score = core::utility_score(
              params.utility, res.delta, m.g_hat, params.utility.bw_ref,
              params.utility.bw_ref);
          send(make_frame(MsgType::kScore, f->round, cid,
                          encode_f64(score)));
          break;
        }
        case MsgType::kSelect: {
          const int round = static_cast<int>(f->round);
          if (round != trained_round || !comp) break;  // stale selection
          if (uploaded_round != round) {
            metrics::PhaseProfiler::Scope prof("compress");
            const double ratio = parse_f64(f->payload);
            comp->compress_into(res.delta, ratio, update.msg);
            update.num_examples = res.num_examples;
            update.mean_loss = res.mean_loss;
            update.raw_delta_norm = tensor::l2_norm(res.delta);
            encode_update_into(update, cached_update, wire_scratch);
            uploaded_round = round;
          }
          // A duplicate SELECT (reconnect race) re-sends the cached bytes —
          // compressing twice would corrupt the DGC residual.
          send(make_frame(MsgType::kUpdate, f->round, cid, cached_update));
          ++st.updates_sent;
          ep_attempts = 0;  // round completed: refill the redial budget
          dead_endpoints = 0;
          break;
        }
        case MsgType::kSkip: {
          const int round = static_cast<int>(f->round);
          if (round != trained_round || !comp || skipped_round == round)
            break;
          skipped_round = round;
          if (params.accumulate_unselected) comp->accumulate(res.delta);
          ++st.skips;
          ep_attempts = 0;  // round completed: refill the redial budget
          dead_endpoints = 0;
          break;
        }
        case MsgType::kPing:
          send(make_frame(MsgType::kPong, f->round, cid));
          break;
        case MsgType::kShutdown:
          st.completed = true;
          conn->close();
          if (traced) tracer->flush();
          return st;
        default:
          break;  // PONG and anything unexpected: ignore
      }
    } catch (const CheckError&) {
      conn->close();  // malformed server payload: reconnect and resync
    }
  }
}

}  // namespace adafl::net::transport
