// Deployed FL session protocol: the AdaFL round loop over a real transport.
//
// One server (ServerSession) drives AdaFL rounds against N remote clients
// (ClientSession), speaking framed messages (frame.h) whose payloads wrap
// the byte-exact compress::wire encoding. The server-side round logic is
// core::AdaFlServerCore — the same state machine the in-process simulator
// uses — so a deployed run with the same seed/config produces bitwise
// identical global weights to AdaFlSyncTrainer (asserted by
// tests/test_session.cpp and the CI loopback smoke job).
//
// Round protocol (round r):
//   server -> client  MODEL(r)    global weights + g_hat
//   client -> server  SCORE(r)    utility score (trained locally)
//   server -> client  SELECT(r)   compression ratio   (chosen clients)
//                     SKIP(r)                         (everyone else)
//   client -> server  UPDATE(r)   compressed sparse update
//
// Resilience: the server never blocks on a single peer — it polls all
// connections, finishes the score phase once a quorum has reported (waiting
// for stragglers only until the round deadline), and aggregates whatever
// updates arrive by the deadline. A client that vanishes mid-round degrades
// the round; when it redials (HELLO again) the server re-sends the in-round
// state (MODEL or SELECT) and books the overhead as retransmitted bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/adafl_server.h"
#include "fl/client.h"
#include "fl/types.h"
#include "net/transport/event_loop.h"
#include "net/transport/tcp.h"
#include "net/transport/transport.h"

namespace adafl::net::replication {
class CheckpointPublisher;
}

namespace adafl::metrics {
class Registry;
class Histogram;
}

namespace adafl::net::transport {

/// Protocol version carried in HELLO; bumped on incompatible changes.
constexpr std::uint32_t kProtocolVersion = 1;

/// Shared inbox between an event-loop standby connection and the Transport
/// adapter handed to the replication publisher (defined in session.cpp).
struct LoopPeerState;

// --- Message payload codecs (exposed for tests and scripted peers). ------

/// WELCOME: run configuration a joining client needs.
struct WelcomeInfo {
  std::uint32_t rounds = 0;
  std::uint64_t param_count = 0;
  core::AdaFlParams params;  ///< must match the server's exactly
  /// Opaque key/value config (task spec, hyperparameters) interpreted by the
  /// client's bootstrap callback.
  std::map<std::string, std::string> config;
};

std::vector<std::uint8_t> encode_hello(std::uint32_t protocol_version);
std::uint32_t parse_hello(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_welcome(const WelcomeInfo& w);
WelcomeInfo parse_welcome(std::span<const std::uint8_t> payload);

/// MODEL: the global weights and the similarity reference g_hat.
struct ModelPayload {
  std::vector<float> global;
  std::vector<float> g_hat;
};

std::vector<std::uint8_t> encode_model(const ModelPayload& m);
ModelPayload parse_model(std::span<const std::uint8_t> payload);

/// SCORE and SELECT carry one f64 (utility score / compression ratio).
std::vector<std::uint8_t> encode_f64(double v);
double parse_f64(std::span<const std::uint8_t> payload);

/// UPDATE: the compressed model update plus its aggregation metadata.
struct UpdatePayload {
  compress::EncodedGradient msg;
  std::int64_t num_examples = 0;
  float mean_loss = 0.0f;
  double raw_delta_norm = 0.0;  ///< trust-region input (L2 of the raw delta)
};

std::vector<std::uint8_t> encode_update(const UpdatePayload& u);
/// encode_update into a caller-owned buffer, staging the wire encoding in
/// `wire_scratch`; both reuse their capacity across rounds.
void encode_update_into(const UpdatePayload& u, std::vector<std::uint8_t>& out,
                        std::vector<std::uint8_t>& wire_scratch);
UpdatePayload parse_update(std::span<const std::uint8_t> payload);
/// parse_update into a reused payload (compress::deserialize_into
/// semantics: every field reset, vector capacity kept).
void parse_update_into(std::span<const std::uint8_t> payload, UpdatePayload& u);

// --- Hierarchical aggregation (mid-tier relays; src/net/relay/). ---------

/// RELAY_HELLO: a mid-tier aggregator joins its parent, claiming the leaf
/// client-id range [base, base + count). The range must be aligned to the
/// run's AdaFlParams::agg_group.
struct RelayHelloPayload {
  std::uint32_t version = 0;
  std::uint32_t base = 0;
  std::uint32_t count = 0;
};

std::vector<std::uint8_t> encode_relay_hello(const RelayHelloPayload& h);
RelayHelloPayload parse_relay_hello(std::span<const std::uint8_t> payload);

/// One leaf client's metadata inside an UPDATE-AGG (everything the root
/// needs to score, trust-clip, and trace the leaf as if it had uploaded
/// directly — the coordinates travel pre-summed in the group partial).
struct UpdateAggChild {
  std::uint32_t id = 0;
  std::int64_t num_examples = 0;
  float mean_loss = 0.0f;
  double raw_delta_norm = 0.0;
  /// Codec-level serialized size of the leaf's original update, so the
  /// root's update_delivered trace row matches a flat run byte for byte.
  std::int64_t wire_bytes = 0;
};

/// UPDATE-AGG: one aggregation group's pre-summed partial. `children` lists
/// the leaves whose updates are inside `partial`, strictly ascending, all
/// within [base, base + count).
struct UpdateAggPayload {
  std::uint32_t base = 0;
  std::uint32_t count = 0;
  std::vector<UpdateAggChild> children;
  compress::EncodedGradient partial;  ///< kTopK, lossless fp32 on the wire
};

std::vector<std::uint8_t> encode_update_agg(const UpdateAggPayload& a);
/// Structural parse + hostile-input validation (counts, ranges, ordering,
/// finiteness). Throws CheckError on anything malformed; the caller must
/// drop the sending connection.
UpdateAggPayload parse_update_agg(std::span<const std::uint8_t> payload);
/// Root-side semantic validation of a parsed UPDATE-AGG against the run
/// configuration and the sending relay's claimed range. Throws CheckError.
void validate_update_agg(const UpdateAggPayload& a, std::int64_t dense_size,
                         int agg_group, int relay_base, int relay_count);

// --- Server side. --------------------------------------------------------

struct ServerSessionConfig {
  core::AdaFlParams params;
  int rounds = 3;
  int eval_every = 1;
  /// Fleet size; client ids must be in [0, expected_clients).
  int expected_clients = 0;
  /// Scores needed before a round may proceed past its deadline
  /// (0 = expected_clients). Liveness bound: with fewer than `quorum`
  /// clients reachable the server waits for rejoins instead of training on
  /// too little data.
  int quorum = 0;
  /// Per-phase deadline: after it expires the score phase proceeds with a
  /// quorum and the update phase aggregates what has arrived.
  std::chrono::milliseconds round_deadline{60000};
  /// Whole-round cap (score + update phases combined); 0 disables. In the
  /// score phase it takes effect only once a quorum has scored (cutting
  /// below quorum would change selection semantics, not just timing). Guards
  /// against a quorum-selected client dying between the score and update
  /// phases pinning a round to the full per-phase deadline twice over: on
  /// expiry the server aggregates what arrived, emits update_lost for the
  /// rest, and moves on.
  std::chrono::milliseconds round_total_deadline{0};
  /// Poll sleep while waiting for network activity.
  std::chrono::milliseconds idle_poll{20};
  /// Anti-wedge retransmission: while a phase is stalled (no frame
  /// processed), periodically re-send the pending frame — MODEL to
  /// connected clients that have not scored, SELECT to selected clients
  /// that have not uploaded. Recovers from frames lost in flight without
  /// waiting for the round deadline. This is the FIRST gap only: each
  /// firing doubles the gap until the phase ends (reset at the next
  /// phase), so retransmission traffic grows logarithmically with phase
  /// length instead of linearly — a fleet that is merely slow is not
  /// spammed into a resend storm. <= 0 disables; pointless over TCP
  /// (reliable stream + rejoin catch-up), essential over lossy UDP.
  std::chrono::milliseconds retransmit_nudge{2000};
  /// Opaque config forwarded to every client in WELCOME.
  std::map<std::string, std::string> client_config;

  // --- Crash recovery (see docs/deployment.md, "Crash recovery"). ---------
  /// When non-empty, write a durable checkpoint (core::ServerCheckpoint)
  /// into this directory every `checkpoint_every` completed rounds and on a
  /// graceful request_stop().
  std::string checkpoint_dir;
  /// Checkpoint cadence in rounds. 1 (every round) makes a kill + --resume
  /// bitwise identical to an uninterrupted run; larger values trade
  /// checkpoint I/O for re-executing up to N-1 rounds after a crash.
  int checkpoint_every = 1;
  /// Resume from checkpoint_dir instead of starting at round 1. Throws if
  /// no checkpoint exists or it was written under a different config.
  bool resume = false;

  /// Optional structured tracer (metrics/trace.h). The session forwards it
  /// to the shared core::AdaFlServerCore (semantic selection/delivery
  /// events, identical to the simulator's) and additionally emits
  /// deployed-only transport events: frame_tx/frame_rx per frame,
  /// retransmit for re-sent MODEL/SELECT frames, reconnect on rejoin.
  /// `t` fields carry wall-clock seconds since run() started. Not owned;
  /// must outlive run().
  metrics::Tracer* tracer = nullptr;

  /// Optional hot-standby replication (net/replication/). When set, the
  /// session routes kStandbyHello handshakes into it, ships every
  /// checkpoint image it writes via publish(), keeps standby leases alive
  /// from the poll loop, and stands standbys down on orderly completion.
  /// Not owned; must outlive run().
  replication::CheckpointPublisher* publisher = nullptr;

  /// Optional metrics registry. When set, the session records the
  /// "server.round_latency_ms" histogram (wall time per committed round)
  /// and — in event-loop mode — "server.frame_dispatch_ms" (enqueue on the
  /// loop thread to drain on the session thread, the p99 of which is the
  /// scaling health metric). Not owned; must outlive run().
  metrics::Registry* registry = nullptr;
};

/// Runs the AdaFL server over any Transport mix (TCP and/or loopback).
/// add_transport() may be called from another thread (e.g. an accept loop)
/// at any time before or during run().
class ServerSession {
 public:
  /// `test` may be null (no evaluation; records carry accuracy 0).
  ServerSession(ServerSessionConfig cfg, nn::ModelFactory factory,
                const data::Dataset* test);

  /// Hands a freshly-connected (not yet handshaken) transport to the
  /// session. Thread-safe.
  void add_transport(std::unique_ptr<Transport> t);

  /// Switches the session onto an event-loop transport backend: the loop
  /// (configured with its listener adopted, not yet started) owns every
  /// TCP socket, run() starts/stops it, and the round loop drains the
  /// loop's per-shard frame queues instead of polling Transports — UPDATE
  /// payloads of one service pass decode in parallel on the worker pool
  /// (one disjoint delivery slot per client), everything else is handled
  /// on the session thread in arrival order. add_transport() connections
  /// keep working alongside (the UDP path). Call before run().
  void attach_event_loop(EventLoop* loop);

  /// Runs all configured rounds; returns the training log. Call once.
  fl::TrainLog run();

  /// Asks run() to stop at the next safe point (signal-safe: only atomic
  /// stores). With `write_checkpoint` (the SIGINT/SIGTERM path) a final
  /// checkpoint is written before returning, so --resume continues from the
  /// interrupted round; without it (SIGKILL-equivalent, used by crash
  /// tests) recovery relies on the last cadence checkpoint alone.
  void request_stop(bool write_checkpoint = true);

  /// Round the session resumed from (0 = fresh start).
  int resumed_from() const { return resumed_from_; }

  const std::vector<float>& global() const { return core_.global(); }
  const core::AdaFlStats& stats() const { return core_.stats(); }

 private:
  enum class Phase { kScore, kUpdate };

  /// Per-round mutable state shared by the service loop.
  struct RoundCtx {
    int round = 0;
    Phase phase = Phase::kScore;
    std::vector<bool> sent_model;
    std::vector<bool> scored;
    std::vector<double> scores;
    std::map<int, double> ratio_of;  ///< selected id -> compression ratio
    std::set<int> awaiting;          ///< selected ids still owing an UPDATE
    metrics::CommLedger* ledger = nullptr;
    /// The round's MODEL frame, built lazily on first send and reused for
    /// every broadcast/nudge/rejoin (the global does not change within a
    /// round). In event-loop mode `model_bytes` additionally caches the
    /// encoded frame ONCE — the same immutable buffer is queued to every
    /// connection, so a 10k-client broadcast encodes the model one time.
    Frame model_frame;
    std::shared_ptr<const std::vector<std::uint8_t>> model_bytes;
    bool model_ready = false;
    /// Relay-delivered group partials of this round, keyed by group base
    /// (first accepted UPDATE-AGG per group wins; duplicates are ignored).
    std::map<int, compress::EncodedGradient> wire_partials;
  };

  /// Sends `f` on client `id`'s connection; on failure the connection is
  /// dropped. Returns delivered frame size (0 on failure). When `pre` is
  /// non-null in event-loop mode, the pre-encoded bytes are queued instead
  /// of re-encoding `f` (broadcast fast path).
  std::size_t send_to(
      int id, const Frame& f,
      const std::shared_ptr<const std::vector<std::uint8_t>>* pre = nullptr);
  void send_model(RoundCtx& rc, int id);
  /// Builds rc.model_frame (and, in event-loop mode, rc.model_bytes) once
  /// per round; later calls are no-ops.
  void ensure_model_frame(RoundCtx& rc);
  /// True when client `id` is reachable: a direct live connection, or a
  /// live relay route with the leaf announced alive behind it. This is the
  /// definition quorum/deadline math uses, so a relay connection counts as
  /// its N live leaves, never as 1.
  bool connected(int id) const;
  /// True only for a direct (non-relayed) live connection to `id`.
  bool direct_connected(int id) const;
  /// Services pending handshakes and one poll pass over all connections.
  /// Returns true if any frame was processed (progress).
  bool service(RoundCtx& rc);
  /// service() for event-loop mode: drain shard queues, parallel-decode
  /// UPDATE frames, handle the rest sequentially in arrival order.
  bool service_event_loop(RoundCtx& rc);
  /// Handles the first frame of an unbound event-loop connection
  /// (HELLO -> client binding + WELCOME + catchup; STANDBY_HELLO -> hand
  /// to the replication publisher; anything else -> close).
  void handle_loop_handshake(RoundCtx& rc, const InFrame& inf);
  /// Closes an event-loop connection and forgets its client binding.
  void drop_loop_conn(ConnId conn);
  void handle_frame(RoundCtx& rc, int id, const Frame& f);
  /// Binds a freshly-handshaken mid-tier relay (classic `conn` XOR
  /// event-loop `loop_conn`), replacing any binding overlapping its range,
  /// and catches it up with the in-flight round (WELCOME + MODEL + pending
  /// SELECTs for its leaves). Throws CheckError on an invalid claim.
  void handle_relay_hello(RoundCtx& rc, const RelayHelloPayload& h,
                          std::unique_ptr<Transport> conn, ConnId loop_conn);
  /// Dispatches one frame arriving on relay `ridx`'s connection. Frames
  /// carry the leaf id in frame.client_id; CheckError propagates to the
  /// caller, which must drop the relay.
  void handle_relay_frame(RoundCtx& rc, std::size_t ridx, const Frame& f);
  void handle_update_agg(RoundCtx& rc, std::size_t ridx, const Frame& f);
  /// Sends on relay `ridx`'s connection (either mode); returns bytes sent.
  std::size_t send_to_relay(std::size_t ridx, const Frame& f);
  /// Pushes the round's MODEL to relay `ridx` (once per round; re-sends
  /// book as retransmissions). The relay re-broadcasts to its children.
  void send_model_to_relay(RoundCtx& rc, std::size_t ridx);
  /// Drops relay `ridx`: closes its connection, clears its leaves' routes
  /// and liveness, and compacts the relay table.
  void drop_relay(std::size_t ridx);
  /// Re-sends the stalled phase's pending frame (MODEL / SELECT); books the
  /// bytes as retransmitted.
  void nudge(RoundCtx& rc);
  /// Builds the durable checkpoint for a run whose next round is
  /// `next_round`, from an AdaFl core snapshot taken at a round boundary.
  void write_checkpoint(int next_round,
                        const core::AdaFlServerCore::State& snap) const;
  /// Loads + validates the checkpoint and restores the core. Returns the
  /// round to resume at.
  int resume_from_checkpoint();
  /// Abruptly closes every connection (no SHUTDOWN): the stop path.
  void drop_all_connections();
  /// Wall-clock seconds since run() started (trace event timestamps).
  double trace_now() const;

  ServerSessionConfig cfg_;
  nn::ModelFactory factory_;
  const data::Dataset* test_;
  nn::Model eval_model_;
  /// Full test set, materialised on first eval and reused every round.
  nn::Batch eval_batch_;
  core::AdaFlServerCore core_;
  std::vector<std::uint8_t> welcome_payload_;

  std::mutex pending_mu_;
  std::vector<std::unique_ptr<Transport>> pending_;  ///< awaiting HELLO
  std::vector<std::unique_ptr<Transport>> conns_;    ///< by client id
  std::vector<bool> ever_joined_;

  // --- Mid-tier relay state (hierarchical aggregation). -------------------
  /// One relay connection covering leaves [base, base + count).
  struct RelayBinding {
    int base = 0;
    int count = 0;
    std::unique_ptr<Transport> conn;       ///< classic mode (else null)
    std::uint64_t loop_conn = ~0ull;       ///< event-loop mode (else ~0)
    bool sent_model = false;               ///< MODEL pushed this round
  };
  std::vector<RelayBinding> relays_;
  std::vector<int> leaf_relay_;   ///< leaf id -> relays_ index, -1 = none
  std::vector<char> child_live_;  ///< per-leaf liveness behind a relay
  std::map<ConnId, std::size_t> relay_conn_;  ///< loop conn -> relays_ idx

  // --- Event-loop mode state (loop_ != nullptr). --------------------------
  static constexpr ConnId kNoConn = ~ConnId{0};
  EventLoop* loop_ = nullptr;
  std::vector<ConnId> client_conn_;        ///< client id -> conn (kNoConn)
  std::map<ConnId, int> conn_client_;      ///< conn -> bound client id
  /// Standby connections adopted by the replication publisher: the session
  /// forwards their frames into this shared inbox (see LoopPeerTransport
  /// in session.cpp).
  std::map<ConnId, std::shared_ptr<LoopPeerState>> standby_links_;
  std::vector<InFrame> frame_batch_;       ///< reused per service pass
  struct DecodeJob {
    std::size_t batch_index = 0;
    int client = 0;
  };
  std::vector<DecodeJob> decode_jobs_;     ///< reused per service pass
  std::vector<char> decode_ok_;
  std::vector<char> pending_decode_;       ///< per-client in-batch dedupe
  std::shared_ptr<const std::vector<std::uint8_t>> welcome_frame_bytes_;
  metrics::Histogram* dispatch_hist_ = nullptr;

  /// Per-client delivery slots reused across rounds (frame decoding lands
  /// straight in the slot, so steady-state rounds reuse the same storage);
  /// delivered_ marks which slots hold the current round's update.
  std::vector<core::AdaFlDelivery> delivery_slots_;
  std::vector<char> delivered_;
  std::size_t delivered_count_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<bool> stop_save_{false};
  int resumed_from_ = 0;
  std::chrono::steady_clock::time_point trace_t0_{};
};

// --- Client side. --------------------------------------------------------

struct ClientSessionConfig {
  int client_id = 0;
  /// Send a PING after this long without traffic in either direction.
  std::chrono::milliseconds heartbeat_interval{1000};
  /// Declare the connection dead and redial after this long without
  /// hearing from the server.
  std::chrono::milliseconds liveness_timeout{8000};
  /// recv() poll granularity.
  std::chrono::milliseconds recv_poll{100};
  BackoffPolicy backoff;
  /// Optional structured tracer: client-side frame_tx/frame_rx/reconnect
  /// transport events (wall-clock `t`). Not owned; must outlive run().
  metrics::Tracer* tracer = nullptr;
};

/// Outcome of one ClientSession::run().
struct ClientRunStats {
  int reconnects = 0;
  int rounds_trained = 0;
  int updates_sent = 0;
  int skips = 0;
  /// Times the session rotated to the next endpoint in its dial list
  /// (failover to a standby shows up here).
  int endpoint_rotations = 0;
  /// True if the server said SHUTDOWN; false if the session gave up
  /// redialing (backoff exhausted).
  bool completed = false;
};

/// Runs one deployed FL client: dials the server, trains on MODEL, scores,
/// uploads when selected, and transparently reconnects (bounded exponential
/// backoff) when the connection drops. DGC residual state survives
/// reconnects, so a flaky network does not reset error feedback.
class ClientSession {
 public:
  /// Returns a connected transport or nullptr (attempt failed).
  using DialFn = std::function<std::unique_ptr<Transport>()>;
  /// Multi-endpoint dial: connects to endpoint `i` of a prioritized list
  /// (`--server=host:port,host:port`). The session dials endpoint 0 until
  /// its backoff budget is exhausted, then rotates to the next — the
  /// client-side half of hot-standby failover.
  using IndexedDialFn =
      std::function<std::unique_ptr<Transport>(std::size_t endpoint)>;
  /// Builds this client's FlClient from the server-sent config. Must derive
  /// the client seed with fl::client_seed_at(run_seed ^
  /// core::kAdaFlClientSeedSalt, id) — via fl::make_client — so the deployed
  /// client is the simulator's bitwise twin.
  using BootstrapFn = std::function<fl::FlClient(
      const std::map<std::string, std::string>& config, int client_id,
      const core::AdaFlParams& params)>;

  /// Single-endpoint session (a one-entry dial list).
  ClientSession(ClientSessionConfig cfg, DialFn dial, BootstrapFn bootstrap);

  /// Prioritized multi-endpoint session. `endpoint_count` must be >= 1;
  /// `dial` is only called with indices in [0, endpoint_count).
  ClientSession(ClientSessionConfig cfg, IndexedDialFn dial,
                std::size_t endpoint_count, BootstrapFn bootstrap);

  /// Runs until SHUTDOWN or until reconnecting is abandoned.
  ClientRunStats run();

 private:
  ClientSessionConfig cfg_;
  IndexedDialFn dial_;
  std::size_t endpoint_count_ = 1;
  BootstrapFn bootstrap_;
};

}  // namespace adafl::net::transport
