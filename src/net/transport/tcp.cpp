#include "net/transport/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "tensor/check.h"

namespace adafl::net::transport {

namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ADAFL_CHECK_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                  "tcp: fcntl(O_NONBLOCK) failed: " << std::strerror(errno));
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Remaining milliseconds until `deadline`, clamped to >= 0.
int ms_until(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/// Polls `fd` for `events` until the deadline; returns revents (0 on
/// timeout).
short poll_fd(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    struct pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, ms_until(deadline));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return 0;
    return p.revents;
  }
}

}  // namespace

std::chrono::milliseconds BackoffPolicy::delay(int attempt) const {
  const double cap = static_cast<double>(max.count());
  double d = static_cast<double>(initial.count()) *
             std::pow(multiplier, static_cast<double>(attempt));
  // pow overflows to +inf for large attempts, and initial=0 with +inf yields
  // NaN; casting either to int64 is UB. Clamp in double space: any
  // non-finite or negative product saturates at the cap.
  if (!(d >= 0.0)) d = cap;
  d = std::min(d, cap);
  return std::chrono::milliseconds(static_cast<std::int64_t>(d));
}

TcpTransport::TcpTransport(int fd, std::string peer_desc)
    : fd_(fd), peer_(std::move(peer_desc)) {
  ADAFL_CHECK_MSG(fd_ >= 0, "TcpTransport: invalid fd");
  set_nonblocking(fd_);
  set_nodelay(fd_);
}

TcpTransport::~TcpTransport() { close(); }

void TcpTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  closed_ = true;
}

std::unique_ptr<TcpTransport> TcpTransport::connect(
    const std::string& host, std::uint16_t port,
    std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  struct addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr)
    return nullptr;

  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    set_nonblocking(fd);
    const int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc == 0) break;  // immediate (loopback)
    if (errno == EINPROGRESS) {
      const short ev = poll_fd(fd, POLLOUT, deadline);
      int err = 0;
      socklen_t len = sizeof(err);
      if ((ev & POLLOUT) &&
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
          err == 0)
        break;  // connected
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return nullptr;
  return std::make_unique<TcpTransport>(fd,
                                        host + ":" + std::to_string(port));
}

bool TcpTransport::send(const Frame& f) {
  if (closed_) return false;
  const auto encoded = encode_frame(f);
  const auto deadline = Clock::now() + send_timeout_;
  std::size_t off = 0;
  while (off < encoded.size()) {
    const ssize_t n = ::send(fd_, encoded.data() + off, encoded.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!(poll_fd(fd_, POLLOUT, deadline) & POLLOUT)) {
        close();  // send deadline expired: treat the peer as gone
        return false;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    close();  // EPIPE / ECONNRESET / anything else fatal
    return false;
  }
  return true;
}

std::optional<Frame> TcpTransport::recv(std::chrono::milliseconds timeout) {
  if (auto f = parser_.next()) return f;
  if (closed_) return std::nullopt;
  const auto deadline = Clock::now() + timeout;
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      // feed() throws CheckError on a malformed stream; the caller drops
      // the connection.
      parser_.feed(std::span<const std::uint8_t>(
          chunk, static_cast<std::size_t>(n)));
      if (auto f = parser_.next()) return f;
      continue;
    }
    if (n == 0) {  // orderly peer shutdown
      close();
      return std::nullopt;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const short ev = poll_fd(fd_, POLLIN, deadline);
      if (ev & (POLLIN | POLLHUP | POLLERR)) continue;
      return std::nullopt;  // timeout
    }
    close();  // hard error
    return std::nullopt;
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ADAFL_CHECK_MSG(fd >= 0, "tcp: socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ADAFL_CHECK_MSG(false, "tcp: bind/listen on port " << port
                                                       << " failed: " << err);
  }
  set_nonblocking(fd);
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    ::close(fd);
    ADAFL_CHECK_MSG(false, "tcp: getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  fd_.store(fd);
}

TcpListener::~TcpListener() {
  close();
  // Only here is the descriptor actually released: by the time the listener
  // is destroyed no accept() can be running, so the number cannot be
  // recycled under a concurrent poll.
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

void TcpListener::close() {
  if (closed_.exchange(true)) return;
  // shutdown() wakes any accept() blocked in poll (accept then fails with
  // EINVAL) without invalidating the fd number a concurrent accept() holds.
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

std::unique_ptr<TcpTransport> TcpListener::accept(
    std::chrono::milliseconds timeout) {
  const int fd = fd_.load();
  if (fd < 0 || closed_.load()) return nullptr;
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    if (closed_.load()) return nullptr;
    struct sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    const int cfd =
        ::accept(fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
    if (cfd >= 0) {
      char ip[INET_ADDRSTRLEN] = "?";
      ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
      return std::make_unique<TcpTransport>(
          cfd, std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port)));
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const short ev = poll_fd(fd, POLLIN, deadline);
      if (closed_.load()) return nullptr;  // closed concurrently
      if (ev & POLLIN) continue;
      return nullptr;  // timeout
    }
    return nullptr;  // listener shut down or fatal error
  }
}

}  // namespace adafl::net::transport
