// From-scratch POSIX TCP transport for deployed FL.
//
// All sockets are non-blocking; every operation takes an explicit deadline
// enforced with poll(), so a dead peer can stall a caller for at most its
// timeout — never forever. Writes use MSG_NOSIGNAL (a vanished peer yields
// an error, not SIGPIPE). TCP_NODELAY is set: protocol messages are
// latency-sensitive and already batched into frames.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "net/transport/transport.h"

namespace adafl::net::transport {

/// Bounded exponential backoff schedule for reconnect attempts.
struct BackoffPolicy {
  std::chrono::milliseconds initial{200};
  std::chrono::milliseconds max{5000};
  double multiplier = 2.0;
  /// Attempts before giving up; 0 = retry forever.
  int max_attempts = 10;

  /// Delay before attempt `attempt` (0-based): initial * multiplier^attempt,
  /// clamped to max.
  std::chrono::milliseconds delay(int attempt) const;
};

/// Frame transport over one connected TCP socket. Construct via connect()
/// or TcpListener::accept().
class TcpTransport final : public Transport {
 public:
  /// Takes ownership of a connected socket fd.
  TcpTransport(int fd, std::string peer_desc);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Connects to host:port (numeric IP or resolvable name) within
  /// `timeout`. Returns nullptr on failure.
  static std::unique_ptr<TcpTransport> connect(
      const std::string& host, std::uint16_t port,
      std::chrono::milliseconds timeout);

  bool send(const Frame& f) override;
  std::optional<Frame> recv(std::chrono::milliseconds timeout) override;
  bool closed() const override { return closed_; }
  void close() override;
  std::string peer() const override { return peer_; }

  /// Deadline applied to each send() call (a peer that stops draining its
  /// receive buffer fails the send instead of blocking the round loop).
  void set_send_timeout(std::chrono::milliseconds t) { send_timeout_ = t; }

 private:
  int fd_ = -1;
  bool closed_ = false;
  std::string peer_;
  FrameParser parser_;
  std::chrono::milliseconds send_timeout_{10000};
};

/// Listening socket accepting TcpTransport connections.
class TcpListener {
 public:
  /// Binds 0.0.0.0:`port` (0 = ephemeral; see port()) and listens. Throws
  /// CheckError if the address is unavailable.
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (resolves ephemeral binds).
  std::uint16_t port() const { return port_; }

  /// Waits up to `timeout` for one connection; nullptr on timeout or after
  /// close().
  std::unique_ptr<TcpTransport> accept(std::chrono::milliseconds timeout);

  /// Stops accepting; pending and future accept() calls return nullptr.
  /// Safe to call from a different thread than accept() (the usual shape:
  /// main thread closes, accept loop unblocks). The fd itself is released
  /// by the destructor, never while an accept() may still be polling it.
  void close();
  bool closed() const { return closed_.load(); }

  /// The listening socket, for EventLoop::adopt_listener. The listener
  /// still owns the fd (close()/dtor semantics unchanged); do not accept()
  /// on this object while an event loop drives the fd.
  int fd() const { return fd_.load(); }

 private:
  std::atomic<int> fd_{-1};
  std::atomic<bool> closed_{false};
  std::uint16_t port_ = 0;
};

}  // namespace adafl::net::transport
