// Abstract frame transport: the seam between the FL session protocol and
// the medium carrying it. TcpTransport (tcp.h) runs the protocol over real
// POSIX sockets; LoopbackTransport (loopback.h) runs the *same encoded
// bytes* through in-process queues, so the protocol state machine is
// identical on the simulated and deployed paths and the two can be asserted
// bitwise-equivalent.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>

#include "net/transport/frame.h"

namespace adafl::net::transport {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one frame. Returns false if the connection is down (the frame
  /// was not delivered); the transport is then closed().
  virtual bool send(const Frame& f) = 0;

  /// Waits up to `timeout` for the next frame. Returns nullopt on timeout
  /// or when the connection closed — distinguish via closed(). Throws
  /// CheckError if the peer sent a malformed byte stream; callers should
  /// drop the connection on that.
  virtual std::optional<Frame> recv(std::chrono::milliseconds timeout) = 0;

  virtual bool closed() const = 0;

  /// Shuts the connection down; subsequent send/recv fail fast. Idempotent.
  virtual void close() = 0;

  /// Human-readable peer description for logs ("127.0.0.1:4242",
  /// "loopback").
  virtual std::string peer() const = 0;
};

}  // namespace adafl::net::transport
