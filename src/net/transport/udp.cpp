#include "net/transport/udp.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>

#include "compress/bytes.h"
#include "net/fec/interleave.h"
#include "net/fec/rs.h"
#include "net/transport/crc32.h"
#include "tensor/check.h"

namespace adafl::net::transport {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kRecvBufBytes = kDatagramHeaderBytes + kMaxShardBytes;
/// Per-peer datagram queue bound: beyond this the oldest wait, new arrivals
/// are dropped — datagram semantics, and FEC absorbs the loss.
constexpr std::size_t kMaxQueuedDatagrams = 65536;
/// A mux poll never blocks longer than this so close() is noticed promptly.
constexpr std::chrono::milliseconds kMuxSlice{50};

void bump(FecStats* s, std::atomic<std::int64_t> FecStats::*field,
          std::int64_t by = 1) {
  if (s != nullptr) (s->*field).fetch_add(by, std::memory_order_relaxed);
}

std::uint16_t rd_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t rd_u32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

std::uint64_t rd_u64(const std::uint8_t* p) {
  return std::uint64_t{rd_u32(p)} | (std::uint64_t{rd_u32(p + 4)} << 32);
}

void validate_fec_config(const UdpFecConfig& cfg) {
  ADAFL_CHECK_MSG(cfg.data_shards >= 1 && cfg.parity_shards >= 0 &&
                      cfg.data_shards + cfg.parity_shards <= fec::kRsMaxSymbols,
                  "udp: invalid FEC geometry k=" << cfg.data_shards
                                                 << " r=" << cfg.parity_shards);
  ADAFL_CHECK_MSG(cfg.max_shard_bytes >= 1 &&
                      cfg.max_shard_bytes <= kMaxShardBytes,
                  "udp: max_shard_bytes " << cfg.max_shard_bytes
                                          << " out of range");
  ADAFL_CHECK_MSG(cfg.max_assemblies >= 1, "udp: max_assemblies < 1");
}

}  // namespace

// --------------------------------------------------------------------------
// Datagram codec
// --------------------------------------------------------------------------

std::vector<std::uint8_t> encode_datagram(
    const DatagramHeader& h, std::span<const std::uint8_t> payload) {
  ADAFL_CHECK_MSG(payload.size() == h.shard_len,
                  "datagram: payload size " << payload.size()
                                            << " != shard_len " << h.shard_len);
  std::vector<std::uint8_t> out;
  out.reserve(kDatagramHeaderBytes + payload.size());
  bytes::put_u32(out, kDatagramMagic);
  bytes::put_u8(out, kDatagramVersion);
  bytes::put_u8(out, h.shard);
  bytes::put_u8(out, h.k);
  bytes::put_u8(out, h.r);
  bytes::put_u64(out, h.frame_seq);
  bytes::put_u32(out, h.gen_index);
  bytes::put_u32(out, h.gen_count);
  bytes::put_u32(out, h.frame_len);
  bytes::put_u32(out, h.gen_off);
  bytes::put_u16(out, h.shard_len);
  bytes::put_u16(out, 0);  // reserved
  std::uint32_t crc = crc32_update(0, {out.data(), out.size()});
  crc = crc32_update(crc, payload);
  bytes::put_u32(out, crc);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<DatagramHeader> parse_datagram(
    std::span<const std::uint8_t> d) {
  if (d.size() < kDatagramHeaderBytes) return std::nullopt;
  const std::uint8_t* p = d.data();
  if (rd_u32(p) != kDatagramMagic) return std::nullopt;
  if (p[4] != kDatagramVersion) return std::nullopt;
  DatagramHeader h;
  h.shard = p[5];
  h.k = p[6];
  h.r = p[7];
  h.frame_seq = rd_u64(p + 8);
  h.gen_index = rd_u32(p + 16);
  h.gen_count = rd_u32(p + 20);
  h.frame_len = rd_u32(p + 24);
  h.gen_off = rd_u32(p + 28);
  h.shard_len = rd_u16(p + 32);
  const std::uint16_t reserved = rd_u16(p + 34);
  const std::uint32_t want_crc = rd_u32(p + 36);

  if (reserved != 0) return std::nullopt;
  if (d.size() != kDatagramHeaderBytes + h.shard_len) return std::nullopt;
  std::uint32_t crc = crc32_update(0, d.first(kDatagramHeaderBytes - 4));
  crc = crc32_update(crc, d.subspan(kDatagramHeaderBytes));
  if (crc != want_crc) return std::nullopt;

  // Structural bounds: every later consumer may assume these hold.
  const int n = static_cast<int>(h.k) + static_cast<int>(h.r);
  if (h.k < 1 || n > fec::kRsMaxSymbols) return std::nullopt;
  if (h.shard >= n) return std::nullopt;
  if (h.shard_len < 1) return std::nullopt;
  if (h.gen_count < 1 || h.gen_count > kMaxGenerationsPerFrame)
    return std::nullopt;
  if (h.gen_index >= h.gen_count) return std::nullopt;
  if (h.frame_len < kFrameHeaderBytes ||
      h.frame_len > kFrameHeaderBytes + kMaxFramePayload)
    return std::nullopt;
  if (h.gen_off >= h.frame_len) return std::nullopt;
  // Every data shard must cover at least one real frame byte.
  const std::uint64_t tail = std::uint64_t{h.frame_len} - h.gen_off;
  if (std::uint64_t(h.k - 1) * h.shard_len >= tail) return std::nullopt;
  return h;
}

// --------------------------------------------------------------------------
// Fragmenter
// --------------------------------------------------------------------------

FrameFragmenter::FrameFragmenter(const UdpFecConfig& cfg) : cfg_(cfg) {
  validate_fec_config(cfg_);
}

std::vector<std::vector<std::uint8_t>> FrameFragmenter::fragment(
    const Frame& f) {
  const std::vector<std::uint8_t> enc = encode_frame(f);
  const std::uint64_t seq = next_seq_++;
  const int K = cfg_.data_shards;
  const int R = cfg_.parity_shards;
  const std::size_t frame_len = enc.size();
  const std::size_t max_s = std::min(cfg_.max_shard_bytes, frame_len);
  const std::size_t per_gen = static_cast<std::size_t>(K) * max_s;
  const std::uint32_t gen_count =
      static_cast<std::uint32_t>((frame_len + per_gen - 1) / per_gen);
  ADAFL_CHECK_MSG(gen_count <= kMaxGenerationsPerFrame,
                  "udp: frame of " << frame_len
                                   << " bytes exceeds the generation cap; "
                                      "raise max_shard_bytes or data_shards");

  std::vector<std::vector<std::uint8_t>> out;
  for (std::uint32_t g = 0; g < gen_count; ++g) {
    const std::size_t off = static_cast<std::size_t>(g) * per_gen;
    const std::size_t gen_len = std::min(per_gen, frame_len - off);
    // Shrink the final generation: s = ceil(gen_len / K) bytes per shard,
    // then kg = ceil(gen_len / s) shards actually needed (kg <= K, and
    // (kg - 1) * s < gen_len so every data shard carries real bytes).
    const std::size_t s =
        (gen_len + static_cast<std::size_t>(K) - 1) / static_cast<std::size_t>(K);
    const int kg = static_cast<int>((gen_len + s - 1) / s);
    const int n = kg + R;

    std::vector<std::vector<std::uint8_t>> shards(
        static_cast<std::size_t>(n), std::vector<std::uint8_t>(s));
    std::vector<std::uint8_t*> ptr(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) ptr[static_cast<std::size_t>(i)] =
        shards[static_cast<std::size_t>(i)].data();
    fec::interleave({enc.data() + off, gen_len}, kg, s, ptr.data());
    if (R > 0) {
      const fec::RsCode rs(n, kg);
      rs.encode_shards(ptr.data(), ptr.data() + kg, s);
    }

    DatagramHeader h;
    h.k = static_cast<std::uint8_t>(kg);
    h.r = static_cast<std::uint8_t>(R);
    h.frame_seq = seq;
    h.gen_index = g;
    h.gen_count = gen_count;
    h.frame_len = static_cast<std::uint32_t>(frame_len);
    h.gen_off = static_cast<std::uint32_t>(off);
    h.shard_len = static_cast<std::uint16_t>(s);
    for (int i = 0; i < n; ++i) {
      h.shard = static_cast<std::uint8_t>(i);
      out.push_back(encode_datagram(h, shards[static_cast<std::size_t>(i)]));
      if (i >= kg)
        bump(cfg_.stats, &FecStats::parity_bytes,
             static_cast<std::int64_t>(out.back().size()));
    }
  }
  bump(cfg_.stats, &FecStats::frames_sent);
  bump(cfg_.stats, &FecStats::datagrams_sent,
       static_cast<std::int64_t>(out.size()));
  return out;
}

// --------------------------------------------------------------------------
// Reassembler
// --------------------------------------------------------------------------

FrameReassembler::FrameReassembler(const UdpFecConfig& cfg) : cfg_(cfg) {
  validate_fec_config(cfg_);
}

void FrameReassembler::drop_malformed() {
  bump(cfg_.stats, &FecStats::datagrams_malformed);
}

void FrameReassembler::offer(std::span<const std::uint8_t> datagram) {
  bump(cfg_.stats, &FecStats::datagrams_received);
  const auto hopt = parse_datagram(datagram);
  if (!hopt) return drop_malformed();
  const DatagramHeader& h = *hopt;
  const auto payload = datagram.subspan(kDatagramHeaderBytes);

  if (done_.count(h.frame_seq) != 0) return;  // late: frame already delivered

  auto it = assemblies_.find(h.frame_seq);
  if (it == assemblies_.end()) {
    if (assemblies_.size() >= cfg_.max_assemblies) {
      // Older than everything in flight: a stray straggler, not a new frame.
      if (h.frame_seq < assemblies_.begin()->first) return;
      evict_oldest();
    }
    Assembly a;
    a.frame_len = h.frame_len;
    a.gen_count = h.gen_count;
    a.gens.resize(h.gen_count);  // frame bytes allocate lazily on first gen
    it = assemblies_.emplace(h.frame_seq, std::move(a)).first;
  }
  Assembly& a = it->second;
  if (h.frame_len != a.frame_len || h.gen_count != a.gen_count ||
      h.gen_index >= a.gen_count)
    return drop_malformed();

  Gen& g = a.gens[h.gen_index];
  if (g.complete) return;  // late shard for an already-repaired generation
  if (!g.seen) {
    g.seen = true;
    g.k = h.k;
    g.r = h.r;
    g.shard_len = h.shard_len;
    g.gen_off = h.gen_off;
    g.shards.resize(static_cast<std::size_t>(h.k) + h.r);
  } else if (h.k != g.k || h.r != g.r || h.shard_len != g.shard_len ||
             h.gen_off != g.gen_off) {
    return drop_malformed();
  }
  if (h.shard >= g.shards.size()) return drop_malformed();
  auto& slot = g.shards[h.shard];
  if (!slot.empty()) return;  // duplicate
  slot.assign(payload.begin(), payload.end());
  ++g.received;
  if (g.received >= g.k) try_complete_gen(it->first, a, g);

  if (a.gens_complete == a.gen_count) {
    // decode_frame throws on any inconsistency (the frame-level CRC is the
    // final integrity gate); a bad frame is dropped, never propagated.
    try {
      ready_.push_back(decode_frame(a.bytes));
      bump(cfg_.stats, &FecStats::frames_delivered);
    } catch (const CheckError&) {
      bump(cfg_.stats, &FecStats::frames_dropped);
    }
    done_.emplace(it->first, true);
    done_order_.push_back(it->first);
    while (done_order_.size() > 4 * cfg_.max_assemblies + 16) {
      done_.erase(done_order_.front());
      done_order_.pop_front();
    }
    assemblies_.erase(it);
  }
}

void FrameReassembler::try_complete_gen(std::uint64_t /*seq*/, Assembly& a,
                                        Gen& g) {
  const int n = static_cast<int>(g.k) + static_cast<int>(g.r);
  std::vector<bool> present(static_cast<std::size_t>(n), false);
  int present_count = 0;
  for (int i = 0; i < n; ++i) {
    present[static_cast<std::size_t>(i)] =
        !g.shards[static_cast<std::size_t>(i)].empty();
    present_count += present[static_cast<std::size_t>(i)] ? 1 : 0;
  }
  if (present_count < g.k) return;

  const std::size_t s = g.shard_len;
  // Only missing DATA shards count as observed losses: the generation
  // completes as soon as k shards arrive, so parity that is merely still in
  // flight must not register as lost (it is silently ignored when it lands).
  // Parity genuinely dropped on a clean generation is thus never counted —
  // the price of zero-round-trip completion.
  int missing_data = 0;
  for (int i = 0; i < g.k; ++i)
    if (!present[static_cast<std::size_t>(i)]) ++missing_data;
  if (missing_data > 0) {
    for (int i = 0; i < n; ++i)
      if (!present[static_cast<std::size_t>(i)])
        g.shards[static_cast<std::size_t>(i)].assign(s, 0);
    std::vector<std::uint8_t*> ptr(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) ptr[static_cast<std::size_t>(i)] =
        g.shards[static_cast<std::size_t>(i)].data();
    const fec::RsCode rs(n, g.k);
    if (!rs.reconstruct_shards(ptr.data(), present, s)) {
      // Cannot happen for pure erasures with >= k shards present, but if a
      // column ever refuses, leave the generation incomplete rather than
      // guess.
      for (int i = 0; i < n; ++i)
        if (!present[static_cast<std::size_t>(i)])
          g.shards[static_cast<std::size_t>(i)].clear();
      return;
    }
    bump(cfg_.stats, &FecStats::datagrams_repaired, missing_data);
    if (cfg_.hooks.on_fec_repair)
      cfg_.hooks.on_fec_repair(missing_data,
                               static_cast<std::int64_t>(missing_data) *
                                   static_cast<std::int64_t>(s));
  }
  if (missing_data > 0) {
    bump(cfg_.stats, &FecStats::datagrams_lost, missing_data);
    if (cfg_.hooks.on_datagram_lost)
      for (int i = 0; i < missing_data; ++i)
        cfg_.hooks.on_datagram_lost(
            static_cast<std::int64_t>(kDatagramHeaderBytes + s));
  }

  if (a.bytes.empty()) a.bytes.resize(a.frame_len);
  const std::size_t gen_len =
      std::min(static_cast<std::size_t>(g.k) * s,
               static_cast<std::size_t>(a.frame_len) - g.gen_off);
  std::vector<const std::uint8_t*> dptr(static_cast<std::size_t>(g.k));
  for (int i = 0; i < g.k; ++i) dptr[static_cast<std::size_t>(i)] =
      g.shards[static_cast<std::size_t>(i)].data();
  fec::deinterleave(dptr.data(), g.k, s, {a.bytes.data() + g.gen_off, gen_len});
  g.complete = true;
  g.shards.clear();
  g.shards.shrink_to_fit();
  ++a.gens_complete;
}

void FrameReassembler::evict_oldest() {
  const auto it = assemblies_.begin();
  Assembly& a = it->second;
  for (Gen& g : a.gens) {
    if (!g.seen || g.complete) continue;
    bump(cfg_.stats, &FecStats::unrecoverable_generations);
    const int n = static_cast<int>(g.k) + static_cast<int>(g.r);
    bump(cfg_.stats, &FecStats::datagrams_lost, n - g.received);
  }
  bump(cfg_.stats, &FecStats::frames_dropped);
  assemblies_.erase(it);
}

std::optional<Frame> FrameReassembler::next() {
  if (ready_.empty()) return std::nullopt;
  Frame f = std::move(ready_.front());
  ready_.pop_front();
  return f;
}

// --------------------------------------------------------------------------
// Loopback datagram pair
// --------------------------------------------------------------------------

struct LoopbackDatagramLink::Channel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::vector<std::uint8_t>> q;
  bool closed = false;
};

LoopbackDatagramLink::LoopbackDatagramLink(std::shared_ptr<Channel> tx,
                                           std::shared_ptr<Channel> rx)
    : tx_(std::move(tx)), rx_(std::move(rx)) {}

std::pair<std::unique_ptr<LoopbackDatagramLink>,
          std::unique_ptr<LoopbackDatagramLink>>
make_datagram_loopback_pair() {
  auto a = std::make_shared<LoopbackDatagramLink::Channel>();
  auto b = std::make_shared<LoopbackDatagramLink::Channel>();
  return {std::unique_ptr<LoopbackDatagramLink>(new LoopbackDatagramLink(a, b)),
          std::unique_ptr<LoopbackDatagramLink>(new LoopbackDatagramLink(b, a))};
}

bool LoopbackDatagramLink::send(std::span<const std::uint8_t> datagram) {
  std::lock_guard<std::mutex> lk(tx_->mu);
  if (tx_->closed) return false;
  if (tx_->q.size() < kMaxQueuedDatagrams)
    tx_->q.emplace_back(datagram.begin(), datagram.end());
  tx_->cv.notify_all();
  return true;
}

std::optional<std::vector<std::uint8_t>> LoopbackDatagramLink::recv(
    std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(rx_->mu);
  rx_->cv.wait_for(lk, timeout,
                   [&] { return !rx_->q.empty() || rx_->closed; });
  if (rx_->q.empty()) return std::nullopt;
  std::vector<std::uint8_t> d = std::move(rx_->q.front());
  rx_->q.pop_front();
  return d;
}

bool LoopbackDatagramLink::closed() const {
  // Own close is visible immediately; a PEER's close only once every
  // queued datagram has been drained — so a final frame (e.g. SHUTDOWN)
  // queued right before the peer closed is never lost to a racing closed()
  // poll between recvs. A real UDP socket has no peer-close signal at all,
  // so erring toward late detection is the faithful direction. (The rx
  // queue may retain already-redundant parity datagrams of a delivered
  // frame; one nullopt recv() drains them before closed() flips.)
  {
    std::lock_guard<std::mutex> lk(tx_->mu);
    if (tx_->closed) return true;
  }
  std::lock_guard<std::mutex> lk(rx_->mu);
  return rx_->closed && rx_->q.empty();
}

void LoopbackDatagramLink::close() {
  // Closes only the OUTBOUND channel (a socket close's FIN analogue): the
  // peer keeps draining what was already sent, and this end's closed()
  // reports via the tx flag. Waking the rx waiter lets a blocked recv on
  // this end re-check and time out instead of sleeping its full budget.
  {
    std::lock_guard<std::mutex> lk(tx_->mu);
    tx_->closed = true;
    tx_->cv.notify_all();
  }
  std::lock_guard<std::mutex> lk(rx_->mu);
  rx_->cv.notify_all();
}

// --------------------------------------------------------------------------
// UdpTransport
// --------------------------------------------------------------------------

UdpTransport::UdpTransport(std::unique_ptr<DatagramLink> link,
                           UdpFecConfig cfg)
    : link_(std::move(link)), cfg_(cfg), frag_(cfg), reasm_(cfg) {
  ADAFL_CHECK_MSG(link_ != nullptr, "UdpTransport: null datagram link");
}

bool UdpTransport::send(const Frame& f) {
  std::lock_guard<std::mutex> lk(send_mu_);
  if (link_->closed()) return false;
  for (const auto& d : frag_.fragment(f))
    if (!link_->send(d)) return false;
  return true;
}

std::optional<Frame> UdpTransport::recv(std::chrono::milliseconds timeout) {
  std::lock_guard<std::mutex> lk(recv_mu_);
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    if (auto f = reasm_.next()) return f;
    std::chrono::milliseconds wait{0};
    if (timeout.count() > 0) {
      const auto now = Clock::now();
      if (now < deadline)
        wait = std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                     now);
    }
    auto d = link_->recv(wait);
    if (!d) return std::nullopt;  // timed out / closed with nothing queued
    reasm_.offer(*d);
    // Past the deadline the loop keeps draining with zero-wait recvs until
    // the link has nothing buffered, so a ready frame is never left behind.
  }
}

bool UdpTransport::closed() const { return link_->closed(); }
void UdpTransport::close() { link_->close(); }
std::string UdpTransport::peer() const { return link_->peer(); }

// --------------------------------------------------------------------------
// Client socket link
// --------------------------------------------------------------------------

UdpSocketLink::UdpSocketLink(int fd, std::string peer)
    : fd_(fd), peer_(std::move(peer)) {}

UdpSocketLink::~UdpSocketLink() { close(); }

std::unique_ptr<UdpSocketLink> UdpSocketLink::connect(const std::string& host,
                                                      std::uint16_t port) {
  struct addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_DGRAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr)
    return nullptr;
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, SOCK_DGRAM, 0);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return nullptr;
  // Generations land in bursts; deep socket buffers keep the kernel from
  // shedding what FEC could have repaired for free.
  int sz = 1 << 21;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &sz, sizeof(sz));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz));
  return std::unique_ptr<UdpSocketLink>(
      new UdpSocketLink(fd, host + ":" + port_str));
}

bool UdpSocketLink::send(std::span<const std::uint8_t> datagram) {
  if (closed_.load()) return false;
  const ssize_t n = ::send(fd_, datagram.data(), datagram.size(), MSG_NOSIGNAL);
  if (n == static_cast<ssize_t>(datagram.size())) return true;
  // A shed datagram (full buffers, ICMP-refused peer not up yet) is exactly
  // the loss FEC and the session's timeouts already absorb; only a broken
  // socket kills the link.
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS ||
                errno == ECONNREFUSED || errno == EINTR || errno == EMSGSIZE))
    return true;
  close();
  return false;
}

std::optional<std::vector<std::uint8_t>> UdpSocketLink::recv(
    std::chrono::milliseconds timeout) {
  if (closed_.load()) return std::nullopt;
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    struct pollfd p{};
    p.fd = fd_;
    p.events = POLLIN;
    const int rc =
        ::poll(&p, 1, left.count() > 0 ? static_cast<int>(left.count()) : 0);
    if (closed_.load()) return std::nullopt;
    if (rc > 0 && (p.revents & (POLLIN | POLLERR)) != 0) {
      std::vector<std::uint8_t> buf(kRecvBufBytes);
      const ssize_t n = ::recv(fd_, buf.data(), buf.size(), MSG_DONTWAIT);
      if (n >= 0) {
        buf.resize(static_cast<std::size_t>(n));
        return buf;
      }
      // ECONNREFUSED: queued ICMP error from a peer that was not up yet —
      // consume it and keep waiting; the session's own timeout decides.
      if (errno != ECONNREFUSED && errno != EINTR && errno != EAGAIN &&
          errno != EWOULDBLOCK) {
        close();
        return std::nullopt;
      }
    }
    if (Clock::now() >= deadline) return std::nullopt;
  }
}

void UdpSocketLink::close() {
  if (closed_.exchange(true)) return;
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

// --------------------------------------------------------------------------
// Server-side mux
// --------------------------------------------------------------------------

namespace detail {

struct UdpMux {
  int fd = -1;
  std::uint16_t port = 0;
  std::atomic<bool> closed{false};

  struct Peer {
    std::mutex mu;  ///< guards q only; never held with reg_mu or another peer
    std::condition_variable cv;
    std::deque<std::vector<std::uint8_t>> q;
    std::atomic<bool> dead{false};
    std::string desc;
    std::string key;  ///< raw-sockaddr map key (for tombstone eviction)
    sockaddr_storage addr{};
    socklen_t alen = 0;
  };

  /// Dead peers linger in the map this many retirements as tombstones
  /// before their entries are reclaimed.
  static constexpr std::size_t kTombstoneGrace = 64;
  /// Route-cache bound: past this the cache is simply cleared (it is a pure
  /// cache over `peers`; a clear costs one reg_mu lookup per peer).
  static constexpr std::size_t kRouteCacheMax = 4096;

  /// Registration state, cold path only: taken when a datagram arrives from
  /// an unknown address, on accept(), and on retire — never per datagram
  /// from a known peer.
  std::mutex reg_mu;
  std::condition_variable reg_cv;  ///< new pending peer / shutdown
  std::map<std::string, std::shared_ptr<Peer>> peers;
  std::deque<std::shared_ptr<Peer>> pending;
  std::deque<std::string> tombstones;  ///< retirement order (FIFO window)

  /// At most one thread drains the socket at a time; the holder owns
  /// route_cache and pump_buf, so the hot receive path resolves known
  /// senders without touching any shared lock at all.
  std::mutex pump_mu;
  std::map<std::string, std::shared_ptr<Peer>> route_cache;
  std::vector<std::uint8_t> pump_buf;

  ~UdpMux() {
    // The fd is released only here: every transport and the listener hold a
    // shared_ptr, so nothing can poll a recycled descriptor.
    if (fd >= 0) ::close(fd);
  }

  void shut() {
    closed.store(true);
    std::lock_guard<std::mutex> lk(reg_mu);
    for (auto& [key, p] : peers) {
      p->dead.store(true);
      std::lock_guard<std::mutex> plk(p->mu);
      p->cv.notify_all();
    }
    reg_cv.notify_all();
  }

  /// Drains the socket into per-peer queues, waiting up to `timeout` for
  /// readability. Returns false without doing anything when another thread
  /// already holds the pump (the caller then waits on its own peer's cv —
  /// the drainer routes and notifies for everyone).
  bool pump(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> plk(pump_mu, std::try_to_lock);
    if (!plk.owns_lock()) return false;
    if (closed.load()) return true;
    struct pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, static_cast<int>(timeout.count()));
    if (rc <= 0 || closed.load()) return true;
    if (pump_buf.size() < kRecvBufBytes) pump_buf.resize(kRecvBufBytes);
    for (;;) {
      sockaddr_storage ss{};
      socklen_t sl = sizeof(ss);
      const ssize_t n =
          ::recvfrom(fd, pump_buf.data(), pump_buf.size(), MSG_DONTWAIT,
                     reinterpret_cast<sockaddr*>(&ss), &sl);
      if (n < 0) break;
      route({pump_buf.data(), static_cast<std::size_t>(n)}, ss, sl);
    }
    return true;
  }

  /// Routes one datagram to its peer. Caller holds pump_mu. The cache hit
  /// path — every datagram after a peer's first — takes only that peer's
  /// own lock; reg_mu is touched solely for unknown senders (registration)
  /// and stale cache entries.
  void route(std::span<const std::uint8_t> d, const sockaddr_storage& ss,
             socklen_t sl) {
    const std::string key(reinterpret_cast<const char*>(&ss),
                          static_cast<std::size_t>(sl));
    std::shared_ptr<Peer> p;
    auto cit = route_cache.find(key);
    if (cit != route_cache.end()) {
      if (cit->second->dead.load()) {
        // Stale cache entry: the address may have been reclaimed past its
        // tombstone window and re-registered — re-resolve from the map.
        route_cache.erase(cit);
      } else {
        p = cit->second;
      }
    }
    if (!p) {
      std::lock_guard<std::mutex> lk(reg_mu);
      auto it = peers.find(key);
      if (it == peers.end()) {
        p = std::make_shared<Peer>();
        p->addr = ss;
        p->alen = sl;
        p->desc = describe(ss);
        p->key = key;
        peers.emplace(key, p);
        pending.push_back(p);
        reg_cv.notify_all();
      } else {
        p = it->second;
      }
      if (route_cache.size() >= kRouteCacheMax) route_cache.clear();
      route_cache.emplace(key, p);
    }
    // Dead peers stay in the map as tombstones so stragglers from a closed
    // connection don't masquerade as a new client — but only for a bounded
    // grace window (see retire()), so churn can't grow the map forever.
    if (!p->dead.load()) {
      std::lock_guard<std::mutex> plk(p->mu);
      if (p->q.size() < kMaxQueuedDatagrams)
        p->q.emplace_back(d.begin(), d.end());
      p->cv.notify_all();
    }
  }

  /// Marks a peer dead and schedules its address-map entry for eviction.
  /// The entry survives as a tombstone while the FIFO window slides over
  /// it; once kTombstoneGrace newer retirements have happened, the entry
  /// is reclaimed and the address may join as a fresh peer again.
  void retire(const std::shared_ptr<Peer>& p) {
    const bool was_dead = p->dead.exchange(true);
    {
      std::lock_guard<std::mutex> plk(p->mu);
      p->q.clear();
      p->cv.notify_all();
    }
    if (was_dead) return;
    std::lock_guard<std::mutex> lk(reg_mu);
    tombstones.push_back(p->key);
    while (tombstones.size() > kTombstoneGrace) {
      auto it = peers.find(tombstones.front());
      if (it != peers.end() && it->second->dead.load()) peers.erase(it);
      tombstones.pop_front();
    }
    reg_cv.notify_all();
  }

  bool send_to(const Peer& p, std::span<const std::uint8_t> d) {
    if (closed.load()) return false;
    const ssize_t n =
        ::sendto(fd, d.data(), d.size(), MSG_NOSIGNAL,
                 reinterpret_cast<const sockaddr*>(&p.addr), p.alen);
    if (n == static_cast<ssize_t>(d.size())) return true;
    return n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                     errno == ENOBUFS || errno == ECONNREFUSED ||
                     errno == EINTR || errno == EMSGSIZE);
  }

  static std::string describe(const sockaddr_storage& ss) {
    char ip[INET6_ADDRSTRLEN] = "?";
    std::uint16_t port = 0;
    if (ss.ss_family == AF_INET) {
      const auto* a = reinterpret_cast<const sockaddr_in*>(&ss);
      ::inet_ntop(AF_INET, &a->sin_addr, ip, sizeof(ip));
      port = ntohs(a->sin_port);
    } else if (ss.ss_family == AF_INET6) {
      const auto* a = reinterpret_cast<const sockaddr_in6*>(&ss);
      ::inet_ntop(AF_INET6, &a->sin6_addr, ip, sizeof(ip));
      port = ntohs(a->sin6_port);
    }
    return std::string(ip) + ":" + std::to_string(port) + "/udp";
  }
};

}  // namespace detail

namespace {

/// DatagramLink view of one mux peer.
class MuxPeerLink final : public DatagramLink {
 public:
  MuxPeerLink(std::shared_ptr<detail::UdpMux> mux,
              std::shared_ptr<detail::UdpMux::Peer> peer)
      : mux_(std::move(mux)), peer_(std::move(peer)) {}

  ~MuxPeerLink() override { close(); }

  bool send(std::span<const std::uint8_t> datagram) override {
    if (peer_->dead.load()) return false;
    return mux_->send_to(*peer_, datagram);
  }

  std::optional<std::vector<std::uint8_t>> recv(
      std::chrono::milliseconds timeout) override {
    const auto deadline = Clock::now() + timeout;
    for (;;) {
      {
        std::lock_guard<std::mutex> lk(peer_->mu);
        if (!peer_->q.empty()) {
          std::vector<std::uint8_t> d = std::move(peer_->q.front());
          peer_->q.pop_front();
          return d;
        }
      }
      if (peer_->dead.load() || mux_->closed.load()) return std::nullopt;
      const auto now = Clock::now();
      if (now >= deadline && timeout.count() != 0) return std::nullopt;
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - now);
      if (left.count() < 0) left = std::chrono::milliseconds{0};
      left = std::min(left, kMuxSlice);
      if (!mux_->pump(left)) {
        // Another thread holds the pump: sleep on our own queue's cv — the
        // drainer routes into it and notifies (no global lock involved).
        std::unique_lock<std::mutex> lk(peer_->mu);
        if (peer_->q.empty() && !peer_->dead.load() && left.count() > 0)
          peer_->cv.wait_for(lk, left);
      }
      if (timeout.count() == 0) {
        // One nonblocking drain, then report whatever arrived.
        std::lock_guard<std::mutex> lk(peer_->mu);
        if (peer_->q.empty()) return std::nullopt;
        std::vector<std::uint8_t> d = std::move(peer_->q.front());
        peer_->q.pop_front();
        return d;
      }
    }
  }

  bool closed() const override {
    return peer_->dead.load() || mux_->closed.load();
  }

  void close() override { mux_->retire(peer_); }

  std::string peer() const override { return peer_->desc; }

 private:
  std::shared_ptr<detail::UdpMux> mux_;
  std::shared_ptr<detail::UdpMux::Peer> peer_;
};

}  // namespace

// --------------------------------------------------------------------------
// UdpListener
// --------------------------------------------------------------------------

UdpListener::UdpListener(std::uint16_t port, UdpFecConfig cfg)
    : mux_(std::make_shared<detail::UdpMux>()), cfg_(cfg) {
  validate_fec_config(cfg_);
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ADAFL_CHECK_MSG(fd >= 0, "udp: socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  int sz = 1 << 22;  // many peers burst into one socket
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &sz, sizeof(sz));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz));
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ADAFL_CHECK_MSG(false,
                    "udp: bind on port " << port << " failed: " << err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    ::close(fd);
    ADAFL_CHECK_MSG(false, "udp: getsockname failed");
  }
  mux_->fd = fd;
  mux_->port = ntohs(addr.sin_port);
}

UdpListener::~UdpListener() { close(); }

std::uint16_t UdpListener::port() const { return mux_->port; }

void UdpListener::close() { mux_->shut(); }

bool UdpListener::closed() const { return mux_->closed.load(); }

std::size_t UdpListener::peer_count() const {
  std::lock_guard<std::mutex> lk(mux_->reg_mu);
  return mux_->peers.size();
}

int UdpListener::fd() const { return mux_->fd; }

std::unique_ptr<Transport> UdpListener::accept(
    std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  // accept(0ms) — the event-loop readable callback — still drains once:
  // whatever the kernel has buffered registers its senders before the
  // pending check below, without ever blocking.
  if (timeout.count() == 0) mux_->pump(std::chrono::milliseconds(0));
  for (;;) {
    if (mux_->closed.load()) return nullptr;
    std::shared_ptr<detail::UdpMux::Peer> p;
    {
      std::lock_guard<std::mutex> lk(mux_->reg_mu);
      while (!mux_->pending.empty()) {
        auto cand = mux_->pending.front();
        mux_->pending.pop_front();
        if (!cand->dead.load()) {
          p = std::move(cand);
          break;
        }
      }
    }
    if (p)
      return std::make_unique<UdpTransport>(
          std::make_unique<MuxPeerLink>(mux_, std::move(p)), cfg_);
    const auto now = Clock::now();
    if (now >= deadline) return nullptr;
    auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    left = std::min(left, kMuxSlice);
    if (!mux_->pump(left)) {
      // A transport thread is draining; wait for it to register someone.
      std::unique_lock<std::mutex> lk(mux_->reg_mu);
      if (mux_->pending.empty() && !mux_->closed.load())
        mux_->reg_cv.wait_for(lk, left);
    }
  }
}

}  // namespace adafl::net::transport
