// FEC-coded datagram transport: Reed-Solomon-protected UDP frame delivery.
//
// The session protocol speaks Frames (frame.h). Over TCP a frame is a byte
// stream; here each encoded frame is FRAGMENTED into datagrams, the
// datagrams are grouped into FEC GENERATIONS of k data shards, and every
// generation ships r extra parity shards (RS(k+r, k) over GF(256), one
// codeword per byte column, frame bytes block-interleaved across the data
// shards). The receiver repairs up to r lost datagrams per generation with
// zero round trips; only a generation that loses more than r datagrams
// leaves the frame incomplete, and then the session layer's existing
// retransmit nudge re-sends the whole frame — exactly the fallback it
// already uses against TCP frame loss.
//
// Datagram wire format (little-endian, version 1):
//
//   u32 magic        "AFD1" (0x31'44'46'41 on the wire)
//   u8  version      1
//   u8  shard        index within the generation: data 0..k-1, parity k..n-1
//   u8  k            data shards in THIS generation (the final one may
//                    carry fewer than the configured k)
//   u8  r            parity shards (k + r <= 255)
//   u64 frame_seq    sender-monotonic frame number (reassembly key)
//   u32 gen_index    generation index within the frame
//   u32 gen_count    generations in the frame
//   u32 frame_len    total encoded-frame bytes
//   u32 gen_off      frame byte offset of this generation's first data byte
//   u16 shard_len    payload bytes per shard in this generation
//   u16 reserved     0
//   u32 crc          CRC-32 of the 36 header bytes above + the payload
//   u8  payload[shard_len]
//
// The reassembler NEVER throws: a malformed, duplicate, stale, or
// inconsistent datagram is counted and dropped (loss tolerance is the whole
// point — one bad datagram must not cost the peer). The inner frame's own
// CRC (validated by decode_frame on reassembly) remains the last line of
// defense against any reconstruction the datagram CRCs failed to catch.
//
// Layering: everything here sits on DatagramLink — a UDP socket, a mux'd
// server-side peer, or an in-process loopback pair — so deterministic
// datagram-level chaos (FaultyDatagramLink, faulty.h) and the loopback
// sim-equivalence oracle wrap the exact bytes a real socket would carry.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/transport/transport.h"

namespace adafl::net::transport {

constexpr std::uint32_t kDatagramMagic = 0x31444641u;  // "AFD1"
constexpr std::uint8_t kDatagramVersion = 1;
constexpr std::size_t kDatagramHeaderBytes = 40;
/// Hard ceiling on a shard payload (u16 field; real configs stay near MTU).
constexpr std::size_t kMaxShardBytes = 65495;
/// Ceiling on generations per frame a reassembler will track (a forged
/// header cannot make it allocate unboundedly).
constexpr std::uint32_t kMaxGenerationsPerFrame = 16384;

/// Parsed datagram header (see the wire layout above).
struct DatagramHeader {
  std::uint8_t shard = 0;
  std::uint8_t k = 1;
  std::uint8_t r = 0;
  std::uint64_t frame_seq = 0;
  std::uint32_t gen_index = 0;
  std::uint32_t gen_count = 1;
  std::uint32_t frame_len = 0;
  std::uint32_t gen_off = 0;
  std::uint16_t shard_len = 0;
};

/// Encodes header + payload (payload.size() must equal h.shard_len).
std::vector<std::uint8_t> encode_datagram(const DatagramHeader& h,
                                          std::span<const std::uint8_t> payload);

/// Validates magic/version/CRC and structural field bounds. Returns the
/// header (payload = datagram.subspan(kDatagramHeaderBytes)) or nullopt —
/// never throws.
std::optional<DatagramHeader> parse_datagram(
    std::span<const std::uint8_t> datagram);

/// Shared FEC/datagram counters. One instance may back many transports
/// (e.g. every server-side connection), so everything is atomic.
struct FecStats {
  std::atomic<std::int64_t> datagrams_sent{0};
  std::atomic<std::int64_t> datagrams_received{0};
  std::atomic<std::int64_t> datagrams_malformed{0};
  std::atomic<std::int64_t> datagrams_lost{0};      ///< detected missing
  std::atomic<std::int64_t> datagrams_repaired{0};  ///< rebuilt from parity
  std::atomic<std::int64_t> parity_bytes{0};        ///< parity datagram bytes
  std::atomic<std::int64_t> unrecoverable_generations{0};
  std::atomic<std::int64_t> frames_sent{0};
  std::atomic<std::int64_t> frames_delivered{0};
  std::atomic<std::int64_t> frames_dropped{0};
};

/// Observability callbacks (optional). The transport layer stays
/// metrics-free (adafl_net's dependencies are tensor-only); the CLIs bind
/// these to tracer datagram_lost / fec_repair events.
struct FecHooks {
  std::function<void(std::int64_t bytes)> on_datagram_lost;
  std::function<void(int shards, std::int64_t bytes)> on_fec_repair;
};

struct UdpFecConfig {
  int data_shards = 16;             ///< k: data datagrams per generation
  int parity_shards = 4;            ///< r: parity datagrams per generation
  std::size_t max_shard_bytes = 1200;  ///< datagram payload target (~MTU)
  std::size_t max_assemblies = 8;   ///< concurrent frames under reassembly
  FecStats* stats = nullptr;        ///< optional shared counters
  FecHooks hooks;                   ///< optional loss/repair callbacks
};

/// One-datagram medium: the seam under UdpTransport. send() is
/// fire-and-forget (false only when the link itself is down); recv()
/// returns one whole datagram or nullopt on timeout/close.
class DatagramLink {
 public:
  virtual ~DatagramLink() = default;
  virtual bool send(std::span<const std::uint8_t> datagram) = 0;
  virtual std::optional<std::vector<std::uint8_t>> recv(
      std::chrono::milliseconds timeout) = 0;
  virtual bool closed() const = 0;
  virtual void close() = 0;
  virtual std::string peer() const = 0;
};

class LoopbackDatagramLink;

/// In-process datagram pair (lossless, ordered — faults are injected by
/// wrapping an end in FaultyDatagramLink). The UDP analogue of
/// make_loopback_pair(): the sim-equivalence oracle for the datagram path.
std::pair<std::unique_ptr<LoopbackDatagramLink>,
          std::unique_ptr<LoopbackDatagramLink>>
make_datagram_loopback_pair();

class LoopbackDatagramLink final : public DatagramLink {
 public:
  ~LoopbackDatagramLink() override { close(); }

  bool send(std::span<const std::uint8_t> datagram) override;
  std::optional<std::vector<std::uint8_t>> recv(
      std::chrono::milliseconds timeout) override;
  bool closed() const override;
  void close() override;
  std::string peer() const override { return "dgram-loopback"; }

 private:
  friend std::pair<std::unique_ptr<LoopbackDatagramLink>,
                   std::unique_ptr<LoopbackDatagramLink>>
  make_datagram_loopback_pair();

  struct Channel;
  LoopbackDatagramLink(std::shared_ptr<Channel> tx,
                       std::shared_ptr<Channel> rx);

  std::shared_ptr<Channel> tx_;
  std::shared_ptr<Channel> rx_;
};

/// Splits encoded frames into FEC generations of sequenced datagrams.
class FrameFragmenter {
 public:
  explicit FrameFragmenter(const UdpFecConfig& cfg);

  /// All datagrams for `f`, in send order (per generation: data then
  /// parity). Each call consumes one frame_seq.
  std::vector<std::vector<std::uint8_t>> fragment(const Frame& f);

 private:
  UdpFecConfig cfg_;
  std::uint64_t next_seq_ = 0;
};

/// Rebuilds frames from datagrams, repairing up to r erasures per
/// generation. offer() never throws; hostile input is counted and dropped.
class FrameReassembler {
 public:
  explicit FrameReassembler(const UdpFecConfig& cfg);

  /// Feeds one received datagram.
  void offer(std::span<const std::uint8_t> datagram);

  /// Pops the oldest fully reassembled frame, if any.
  std::optional<Frame> next();

 private:
  struct Gen {
    std::uint8_t k = 0;
    std::uint8_t r = 0;
    std::uint16_t shard_len = 0;
    std::uint32_t gen_off = 0;
    std::uint16_t received = 0;
    bool seen = false;
    bool complete = false;
    std::vector<std::vector<std::uint8_t>> shards;  ///< empty = missing
  };
  struct Assembly {
    std::uint32_t frame_len = 0;
    std::uint32_t gen_count = 0;
    std::uint32_t gens_complete = 0;
    std::vector<std::uint8_t> bytes;
    std::vector<Gen> gens;
  };

  void drop_malformed();
  void try_complete_gen(std::uint64_t seq, Assembly& a, Gen& g);
  void evict_oldest();

  UdpFecConfig cfg_;
  std::map<std::uint64_t, Assembly> assemblies_;
  std::deque<Frame> ready_;
  std::deque<std::uint64_t> done_order_;  ///< recently delivered frame_seqs
  std::map<std::uint64_t, bool> done_;    ///< late-datagram suppression
};

/// Frame Transport over any DatagramLink: fragments + FEC on send,
/// reassembles + repairs on recv. Thread-safe like the session expects
/// (send and recv may race from different threads).
class UdpTransport final : public Transport {
 public:
  UdpTransport(std::unique_ptr<DatagramLink> link, UdpFecConfig cfg);

  bool send(const Frame& f) override;
  std::optional<Frame> recv(std::chrono::milliseconds timeout) override;
  bool closed() const override;
  void close() override;
  std::string peer() const override;

 private:
  std::unique_ptr<DatagramLink> link_;
  UdpFecConfig cfg_;
  std::mutex send_mu_;
  FrameFragmenter frag_;
  std::mutex recv_mu_;
  FrameReassembler reasm_;
};

/// Client-side connected UDP socket link.
class UdpSocketLink final : public DatagramLink {
 public:
  /// Resolves host:port and connect()s a nonblocking UDP socket. Returns
  /// nullptr on resolution/socket failure (mirrors TcpTransport::connect).
  static std::unique_ptr<UdpSocketLink> connect(const std::string& host,
                                                std::uint16_t port);
  ~UdpSocketLink() override;

  bool send(std::span<const std::uint8_t> datagram) override;
  std::optional<std::vector<std::uint8_t>> recv(
      std::chrono::milliseconds timeout) override;
  bool closed() const override { return closed_.load(); }
  void close() override;
  std::string peer() const override { return peer_; }

 private:
  UdpSocketLink(int fd, std::string peer);

  int fd_ = -1;
  std::atomic<bool> closed_{false};
  std::string peer_;
};

namespace detail {
struct UdpMux;
}

/// Server-side UDP endpoint: one bound socket, peers demultiplexed by
/// source address. accept() returns a ready UdpTransport for each
/// previously-unseen source; datagrams for known peers are routed to their
/// transport as a side effect of any accept()/recv() poll.
class UdpListener {
 public:
  /// Binds 0.0.0.0:port (0 = ephemeral). Accepted transports use `cfg`
  /// (typically sharing one FecStats across all peers). Throws CheckError
  /// if the address is unavailable.
  UdpListener(std::uint16_t port, UdpFecConfig cfg);
  ~UdpListener();

  UdpListener(const UdpListener&) = delete;
  UdpListener& operator=(const UdpListener&) = delete;

  std::uint16_t port() const;

  /// Waits up to `timeout` for a datagram from a new source address;
  /// nullptr on timeout or after close().
  std::unique_ptr<Transport> accept(std::chrono::milliseconds timeout);

  /// Stops the mux; pending and future accept()/recv() calls drain out.
  /// Safe to call from another thread than accept().
  void close();
  bool closed() const;

  /// Address-map entries currently held (live peers + dead entries inside
  /// the tombstone grace window). Dropped peers are evicted once the
  /// window slides past them, so this stays bounded under churn.
  std::size_t peer_count() const;

  /// The mux's UDP socket, for EventLoop::watch_fd: the loop thread calls
  /// accept(0ms) when it turns readable instead of a thread blocking here.
  /// The mux still owns the fd.
  int fd() const;

 private:
  std::shared_ptr<detail::UdpMux> mux_;
  UdpFecConfig cfg_;
};

}  // namespace adafl::net::transport
