#include "nn/activation.h"

#include <cmath>

namespace adafl::nn {

Tensor ReLU::forward(const Tensor& x, bool /*training*/) {
  mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  const auto in = x.flat();
  auto m = mask_.flat();
  auto out = y.flat();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const bool pos = in[i] > 0.0f;
    m[i] = pos ? 1.0f : 0.0f;
    out[i] = pos ? in[i] : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  ADAFL_CHECK_MSG(!mask_.empty(), "ReLU::backward before forward");
  ADAFL_CHECK(grad_out.shape() == mask_.shape());
  Tensor dx(grad_out.shape());
  const auto g = grad_out.flat();
  const auto m = mask_.flat();
  auto d = dx.flat();
  for (std::size_t i = 0; i < g.size(); ++i) d[i] = g[i] * m[i];
  return dx;
}

Tensor Tanh::forward(const Tensor& x, bool /*training*/) {
  output_ = Tensor(x.shape());
  const auto in = x.flat();
  auto out = output_.flat();
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = std::tanh(in[i]);
  return output_;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  ADAFL_CHECK_MSG(!output_.empty(), "Tanh::backward before forward");
  ADAFL_CHECK(grad_out.shape() == output_.shape());
  Tensor dx(grad_out.shape());
  const auto g = grad_out.flat();
  const auto y = output_.flat();
  auto d = dx.flat();
  for (std::size_t i = 0; i < g.size(); ++i)
    d[i] = g[i] * (1.0f - y[i] * y[i]);
  return dx;
}

Tensor Flatten::forward(const Tensor& x, bool /*training*/) {
  ADAFL_CHECK_MSG(x.shape().rank() >= 2,
                  "Flatten: input " << x.shape().to_string());
  in_shape_ = x.shape();
  const std::int64_t n = x.shape()[0];
  return x.reshaped({n, x.size() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  ADAFL_CHECK_MSG(in_shape_.rank() >= 2, "Flatten::backward before forward");
  return grad_out.reshaped(in_shape_);
}

Dropout::Dropout(double p, Rng rng) : p_(p), rng_(rng) {
  ADAFL_CHECK_MSG(p >= 0.0 && p < 1.0, "Dropout: p must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& x, bool training) {
  if (!training || p_ == 0.0) {
    mask_ = Tensor();
    return x;
  }
  mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  const float keep = 1.0f - static_cast<float>(p_);
  const auto in = x.flat();
  auto m = mask_.flat();
  auto out = y.flat();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float keep_i = rng_.bernoulli(1.0 - p_) ? (1.0f / keep) : 0.0f;
    m[i] = keep_i;
    out[i] = in[i] * keep_i;
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;  // eval-mode forward
  ADAFL_CHECK(grad_out.shape() == mask_.shape());
  Tensor dx(grad_out.shape());
  const auto g = grad_out.flat();
  const auto m = mask_.flat();
  auto d = dx.flat();
  for (std::size_t i = 0; i < g.size(); ++i) d[i] = g[i] * m[i];
  return dx;
}

std::string Dropout::name() const {
  return "Dropout(" + std::to_string(p_) + ")";
}

}  // namespace adafl::nn
