#include "nn/activation.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace adafl::nn {

const Tensor& ReLU::forward(const Tensor& x, bool /*training*/,
                            Workspace& ws) {
  mask_.resize(x.shape());
  Tensor& y = ws.get(x.shape());
  tensor::relu_into(x, y, mask_);
  return y;
}

const Tensor& ReLU::backward(const Tensor& grad_out, Workspace& ws) {
  ADAFL_CHECK_MSG(!mask_.empty(), "ReLU::backward before forward");
  ADAFL_CHECK(grad_out.shape() == mask_.shape());
  Tensor& dx = ws.get(grad_out.shape());
  tensor::mul_into(grad_out, mask_, dx);
  return dx;
}

const Tensor& Tanh::forward(const Tensor& x, bool /*training*/,
                            Workspace& /*ws*/) {
  output_.resize(x.shape());
  const auto in = x.flat();
  auto out = output_.flat();
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = std::tanh(in[i]);
  return output_;
}

const Tensor& Tanh::backward(const Tensor& grad_out, Workspace& ws) {
  ADAFL_CHECK_MSG(!output_.empty(), "Tanh::backward before forward");
  ADAFL_CHECK(grad_out.shape() == output_.shape());
  Tensor& dx = ws.get(grad_out.shape());
  const auto g = grad_out.flat();
  const auto y = output_.flat();
  auto d = dx.flat();
  for (std::size_t i = 0; i < g.size(); ++i)
    d[i] = g[i] * (1.0f - y[i] * y[i]);
  return dx;
}

const Tensor& Flatten::forward(const Tensor& x, bool /*training*/,
                               Workspace& ws) {
  ADAFL_CHECK_MSG(x.shape().rank() >= 2,
                  "Flatten: input " << x.shape().to_string());
  in_shape_ = x.shape();
  const std::int64_t n = x.shape()[0];
  Tensor& y = ws.get({n, x.size() / n});
  std::copy(x.data(), x.data() + x.size(), y.data());
  return y;
}

const Tensor& Flatten::backward(const Tensor& grad_out, Workspace& ws) {
  ADAFL_CHECK_MSG(in_shape_.rank() >= 2, "Flatten::backward before forward");
  Tensor& dx = ws.get(in_shape_);
  ADAFL_CHECK(grad_out.size() == dx.size());
  std::copy(grad_out.data(), grad_out.data() + grad_out.size(), dx.data());
  return dx;
}

Dropout::Dropout(double p, Rng rng) : p_(p), rng_(rng) {
  ADAFL_CHECK_MSG(p >= 0.0 && p < 1.0, "Dropout: p must be in [0,1)");
}

const Tensor& Dropout::forward(const Tensor& x, bool training, Workspace& ws) {
  if (!training || p_ == 0.0) {
    active_ = false;
    return x;
  }
  active_ = true;
  mask_.resize(x.shape());
  Tensor& y = ws.get(x.shape());
  const float keep = 1.0f - static_cast<float>(p_);
  const auto in = x.flat();
  auto m = mask_.flat();
  auto out = y.flat();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float keep_i = rng_.bernoulli(1.0 - p_) ? (1.0f / keep) : 0.0f;
    m[i] = keep_i;
    out[i] = in[i] * keep_i;
  }
  return y;
}

const Tensor& Dropout::backward(const Tensor& grad_out, Workspace& ws) {
  if (!active_) return grad_out;  // eval-mode forward
  ADAFL_CHECK(grad_out.shape() == mask_.shape());
  Tensor& dx = ws.get(grad_out.shape());
  tensor::mul_into(grad_out, mask_, dx);
  return dx;
}

std::string Dropout::name() const {
  return "Dropout(" + std::to_string(p_) + ")";
}

}  // namespace adafl::nn
