// Elementwise activations and shape adapters.
#pragma once

#include "nn/layer.h"

namespace adafl::nn {

/// Rectified linear unit, elementwise.
class ReLU final : public Layer {
 public:
  using Layer::forward;
  using Layer::backward;
  const Tensor& forward(const Tensor& x, bool training,
                        Workspace& ws) override;
  const Tensor& backward(const Tensor& grad_out, Workspace& ws) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;  ///< 1 where input > 0
};

/// Hyperbolic tangent, elementwise.
class Tanh final : public Layer {
 public:
  using Layer::forward;
  using Layer::backward;
  const Tensor& forward(const Tensor& x, bool training,
                        Workspace& ws) override;
  const Tensor& backward(const Tensor& grad_out, Workspace& ws) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor output_;
};

/// Reshapes [N, ...] to [N, features]. Inverse applied on backward.
class Flatten final : public Layer {
 public:
  using Layer::forward;
  using Layer::backward;
  const Tensor& forward(const Tensor& x, bool training,
                        Workspace& ws) override;
  const Tensor& backward(const Tensor& grad_out, Workspace& ws) override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape in_shape_;
};

/// Inverted dropout; identity during evaluation. The RNG is owned by the
/// layer so that training remains deterministic under a fixed seed.
class Dropout final : public Layer {
 public:
  Dropout(double p, Rng rng);

  using Layer::forward;
  using Layer::backward;
  const Tensor& forward(const Tensor& x, bool training,
                        Workspace& ws) override;
  const Tensor& backward(const Tensor& grad_out, Workspace& ws) override;
  std::string name() const override;

 private:
  double p_;
  Rng rng_;
  Tensor mask_;
  bool active_ = false;  ///< last forward was a training pass
};

}  // namespace adafl::nn
