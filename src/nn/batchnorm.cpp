#include "nn/batchnorm.h"

#include <cmath>

namespace adafl::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_({channels}, 1.0f),
      beta_({channels}),
      gamma_grad_({channels}),
      beta_grad_({channels}),
      running_mean_({channels}),
      running_var_({channels}, 1.0f) {
  ADAFL_CHECK_MSG(channels > 0, "BatchNorm2d: channels must be positive");
  ADAFL_CHECK_MSG(momentum > 0.0f && momentum <= 1.0f,
                  "BatchNorm2d: momentum in (0,1]");
  ADAFL_CHECK_MSG(eps > 0.0f, "BatchNorm2d: eps must be positive");
}

const Tensor& BatchNorm2d::forward(const Tensor& x, bool training,
                                   Workspace& ws) {
  ADAFL_CHECK_MSG(x.shape().rank() == 4 && x.shape()[1] == channels_,
                  "BatchNorm2d: input " << x.shape().to_string());
  const std::int64_t n = x.shape()[0], h = x.shape()[2], w = x.shape()[3];
  const std::int64_t plane = h * w;
  const std::int64_t per_channel = n * plane;
  Tensor& y = ws.get(x.shape());
  x_hat_.resize(x.shape());
  inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
  trained_forward_ = training;

  for (std::int64_t c = 0; c < channels_; ++c) {
    double mean, var;
    if (training) {
      double sum = 0.0, sq = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * channels_ + c) * plane;
        for (std::int64_t k = 0; k < plane; ++k) {
          sum += p[k];
          sq += static_cast<double>(p[k]) * p[k];
        }
      }
      mean = sum / static_cast<double>(per_channel);
      var = sq / static_cast<double>(per_channel) - mean * mean;
      var = std::max(var, 0.0);
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean);
      running_var_[c] = (1.0f - momentum_) * running_var_[c] +
                        momentum_ * static_cast<float>(var);
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float is = static_cast<float>(1.0 / std::sqrt(var + eps_));
    inv_std_[static_cast<std::size_t>(c)] = is;
    const float g = gamma_[c], b = beta_[c], m = static_cast<float>(mean);
    for (std::int64_t i = 0; i < n; ++i) {
      const float* p = x.data() + (i * channels_ + c) * plane;
      float* xh = x_hat_.data() + (i * channels_ + c) * plane;
      float* py = y.data() + (i * channels_ + c) * plane;
      for (std::int64_t k = 0; k < plane; ++k) {
        xh[k] = (p[k] - m) * is;
        py[k] = g * xh[k] + b;
      }
    }
  }
  return y;
}

const Tensor& BatchNorm2d::backward(const Tensor& grad_out, Workspace& ws) {
  ADAFL_CHECK_MSG(!x_hat_.empty(), "BatchNorm2d::backward before forward");
  ADAFL_CHECK(grad_out.shape() == x_hat_.shape());
  const std::int64_t n = grad_out.shape()[0], h = grad_out.shape()[2],
                     w = grad_out.shape()[3];
  const std::int64_t plane = h * w;
  const double m = static_cast<double>(n * plane);
  Tensor& dx = ws.get(grad_out.shape());

  for (std::int64_t c = 0; c < channels_; ++c) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* dy = grad_out.data() + (i * channels_ + c) * plane;
      const float* xh = x_hat_.data() + (i * channels_ + c) * plane;
      for (std::int64_t k = 0; k < plane; ++k) {
        sum_dy += dy[k];
        sum_dy_xhat += static_cast<double>(dy[k]) * xh[k];
      }
    }
    gamma_grad_[c] += static_cast<float>(sum_dy_xhat);
    beta_grad_[c] += static_cast<float>(sum_dy);
    const float g = gamma_[c];
    const float is = inv_std_[static_cast<std::size_t>(c)];
    for (std::int64_t i = 0; i < n; ++i) {
      const float* dy = grad_out.data() + (i * channels_ + c) * plane;
      const float* xh = x_hat_.data() + (i * channels_ + c) * plane;
      float* pdx = dx.data() + (i * channels_ + c) * plane;
      if (trained_forward_) {
        // Full batch-statistics backward.
        for (std::int64_t k = 0; k < plane; ++k)
          pdx[k] = static_cast<float>(
              g * is *
              (dy[k] - sum_dy / m - xh[k] * sum_dy_xhat / m));
      } else {
        // Eval mode: statistics are constants.
        for (std::int64_t k = 0; k < plane; ++k) pdx[k] = g * is * dy[k];
      }
    }
  }
  return dx;
}

void BatchNorm2d::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&gamma_, &gamma_grad_});
  out.push_back({&beta_, &beta_grad_});
}

std::string BatchNorm2d::name() const {
  return "BatchNorm2d(" + std::to_string(channels_) + ")";
}

}  // namespace adafl::nn
