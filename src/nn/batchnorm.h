// 2-D batch normalization with running statistics.
#pragma once

#include "nn/layer.h"

namespace adafl::nn {

/// BatchNorm over NCHW inputs: per-channel standardization with learnable
/// scale/shift. Training mode normalizes by batch statistics and updates
/// running estimates; evaluation mode uses the running estimates.
///
/// Note for FL use: the learnable gamma/beta are exchanged like any other
/// parameters, while the running statistics stay device-local (the FedBN
/// convention) — they are not part of ParamRef and therefore not part of
/// Model::get_flat().
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  using Layer::forward;
  using Layer::backward;
  const Tensor& forward(const Tensor& x, bool training,
                        Workspace& ws) override;
  const Tensor& backward(const Tensor& grad_out, Workspace& ws) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  std::int64_t channels_;
  float momentum_, eps_;
  Tensor gamma_, beta_, gamma_grad_, beta_grad_;
  Tensor running_mean_, running_var_;
  // Cached forward state for backward.
  Tensor x_hat_;          ///< normalized input
  std::vector<float> inv_std_;
  bool trained_forward_ = false;
};

}  // namespace adafl::nn
