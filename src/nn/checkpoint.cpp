#include "nn/checkpoint.h"

#include <cmath>
#include <cstring>
#include <fstream>

namespace adafl::nn {

namespace {

constexpr char kMagic[4] = {'A', 'D', 'F', 'L'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  os.write(buf, 4);
}

void write_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  os.write(buf, 8);
}

std::uint32_t read_u32(std::istream& is) {
  char buf[4];
  is.read(buf, 4);
  if (!is) throw std::runtime_error("checkpoint: truncated header");
  std::uint32_t v = 0;
  std::memcpy(&v, buf, 4);
  return v;
}

std::uint64_t read_u64(std::istream& is) {
  char buf[8];
  is.read(buf, 8);
  if (!is) throw std::runtime_error("checkpoint: truncated header");
  std::uint64_t v = 0;
  std::memcpy(&v, buf, 8);
  return v;
}

void check_header(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("checkpoint: bad magic (not an ADFL file)");
  const std::uint32_t version = read_u32(is);
  if (version != kVersion)
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version));
}

}  // namespace

void save_checkpoint(const Model& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("checkpoint: cannot open " + path);
  os.write(kMagic, 4);
  write_u32(os, kVersion);
  const auto flat = model.get_flat();
  write_u64(os, flat.size());
  os.write(reinterpret_cast<const char*>(flat.data()),
           static_cast<std::streamsize>(flat.size() * sizeof(float)));
  if (!os) throw std::runtime_error("checkpoint: write failed for " + path);
}

void load_checkpoint(Model& model, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  check_header(is);
  const std::uint64_t count = read_u64(is);
  if (static_cast<std::int64_t>(count) != model.param_count())
    throw std::runtime_error(
        "checkpoint: parameter count mismatch (file has " +
        std::to_string(count) + ", model has " +
        std::to_string(model.param_count()) + ")");
  std::vector<float> flat(count);
  is.read(reinterpret_cast<char*>(flat.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!is) throw std::runtime_error("checkpoint: truncated payload");
  // A file with extra bytes after the payload was not written by
  // save_checkpoint; refuse it rather than silently ignore the tail.
  is.peek();
  if (!is.eof())
    throw std::runtime_error("checkpoint: trailing bytes after payload");
  for (const float v : flat)
    if (!std::isfinite(v))
      throw std::runtime_error("checkpoint: non-finite parameter value");
  model.set_flat(flat);
}

std::int64_t checkpoint_param_count(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  check_header(is);
  return static_cast<std::int64_t>(read_u64(is));
}

}  // namespace adafl::nn
