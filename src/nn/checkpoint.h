// Model checkpointing: save/load flat parameter vectors to a small binary
// format with an integrity header.
//
// Format: magic "ADFL" (4 bytes), u32 version, u64 param_count, then
// param_count little-endian f32 values.
#pragma once

#include <string>

#include "nn/model.h"

namespace adafl::nn {

/// Writes the model's parameters to `path`. Throws std::runtime_error on
/// I/O failure.
void save_checkpoint(const Model& model, const std::string& path);

/// Loads parameters from `path` into `model`. Throws std::runtime_error on
/// I/O failure, bad magic/version, or a parameter-count mismatch.
void load_checkpoint(Model& model, const std::string& path);

/// Reads just the parameter count from a checkpoint header (for tooling).
std::int64_t checkpoint_param_count(const std::string& path);

}  // namespace adafl::nn
