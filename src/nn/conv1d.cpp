#include "nn/conv1d.h"

#include "nn/init.h"

namespace adafl::nn {

namespace {

void require_signal(const Tensor& x, std::int64_t channels, const char* who) {
  ADAFL_CHECK_MSG(x.shape().rank() == 4 && x.shape()[2] == 1 &&
                      (channels < 0 || x.shape()[1] == channels),
                  who << ": expected [N, C, 1, L] signal, got "
                      << x.shape().to_string());
}

}  // namespace

Conv1d::Conv1d(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
               Rng& rng, std::int64_t stride, std::int64_t pad)
    : in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      w_({out_c, in_c * kernel}),
      b_({out_c}),
      w_grad_({out_c, in_c * kernel}),
      b_grad_({out_c}) {
  ADAFL_CHECK_MSG(in_c > 0 && out_c > 0 && kernel > 0 && stride > 0 &&
                      pad >= 0,
                  "Conv1d: invalid geometry");
  kaiming_uniform(w_, in_c * kernel, rng);
}

const Tensor& Conv1d::forward(const Tensor& x, bool /*training*/,
                              Workspace& ws) {
  require_signal(x, in_c_, "Conv1d::forward");
  input_ = x;
  const std::int64_t n = x.shape()[0], len = x.shape()[3];
  const std::int64_t out_len = (len + 2 * pad_ - kernel_) / stride_ + 1;
  ADAFL_CHECK_MSG(len + 2 * pad_ >= kernel_ && out_len > 0,
                  "Conv1d: kernel longer than padded input");
  Tensor& y = ws.get({n, out_c_, 1, out_len});
  for (std::int64_t i = 0; i < n; ++i) {
    const float* xi = x.data() + i * in_c_ * len;
    float* yi = y.data() + i * out_c_ * out_len;
    for (std::int64_t oc = 0; oc < out_c_; ++oc) {
      const float* wk = w_.data() + oc * in_c_ * kernel_;
      for (std::int64_t t = 0; t < out_len; ++t) {
        double acc = b_[oc];
        const std::int64_t t0 = t * stride_ - pad_;
        for (std::int64_t c = 0; c < in_c_; ++c)
          for (std::int64_t k = 0; k < kernel_; ++k) {
            const std::int64_t pos = t0 + k;
            if (pos >= 0 && pos < len)
              acc += static_cast<double>(wk[c * kernel_ + k]) *
                     xi[c * len + pos];
          }
        yi[oc * out_len + t] = static_cast<float>(acc);
      }
    }
  }
  return y;
}

const Tensor& Conv1d::backward(const Tensor& grad_out, Workspace& ws) {
  ADAFL_CHECK_MSG(!input_.empty(), "Conv1d::backward before forward");
  const std::int64_t n = input_.shape()[0], len = input_.shape()[3];
  const std::int64_t out_len = (len + 2 * pad_ - kernel_) / stride_ + 1;
  ADAFL_CHECK(grad_out.shape() == Shape({n, out_c_, 1, out_len}));
  // dx accumulates via scatter, so it relies on ws.get()'s zero-fill.
  Tensor& dx = ws.get(input_.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const float* xi = input_.data() + i * in_c_ * len;
    const float* dyi = grad_out.data() + i * out_c_ * out_len;
    float* dxi = dx.data() + i * in_c_ * len;
    for (std::int64_t oc = 0; oc < out_c_; ++oc) {
      const float* wk = w_.data() + oc * in_c_ * kernel_;
      float* dwk = w_grad_.data() + oc * in_c_ * kernel_;
      for (std::int64_t t = 0; t < out_len; ++t) {
        const float dy = dyi[oc * out_len + t];
        if (dy == 0.0f) continue;
        b_grad_[oc] += dy;
        const std::int64_t t0 = t * stride_ - pad_;
        for (std::int64_t c = 0; c < in_c_; ++c)
          for (std::int64_t k = 0; k < kernel_; ++k) {
            const std::int64_t pos = t0 + k;
            if (pos >= 0 && pos < len) {
              dwk[c * kernel_ + k] += dy * xi[c * len + pos];
              dxi[c * len + pos] += dy * wk[c * kernel_ + k];
            }
          }
      }
    }
  }
  return dx;
}

void Conv1d::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&w_, &w_grad_});
  out.push_back({&b_, &b_grad_});
}

std::string Conv1d::name() const {
  return "Conv1d(" + std::to_string(in_c_) + "->" + std::to_string(out_c_) +
         ",k" + std::to_string(kernel_) + ")";
}

MaxPool1d::MaxPool1d(std::int64_t window, std::int64_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {
  ADAFL_CHECK_MSG(window_ > 0 && stride_ > 0, "MaxPool1d: invalid geometry");
}

const Tensor& MaxPool1d::forward(const Tensor& x, bool /*training*/,
                                 Workspace& ws) {
  require_signal(x, -1, "MaxPool1d::forward");
  in_shape_ = x.shape();
  const std::int64_t n = x.shape()[0], c = x.shape()[1], len = x.shape()[3];
  ADAFL_CHECK_MSG(len >= window_, "MaxPool1d: window longer than signal");
  const std::int64_t out_len = (len - window_) / stride_ + 1;
  Tensor& y = ws.get({n, c, 1, out_len});
  argmax_.assign(static_cast<std::size_t>(n * c * out_len), 0);
  std::int64_t oidx = 0;
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* row = x.data() + (i * c + ch) * len;
      for (std::int64_t t = 0; t < out_len; ++t) {
        const std::int64_t t0 = t * stride_;
        std::int64_t best = t0;
        for (std::int64_t k = 1; k < window_; ++k)
          if (row[t0 + k] > row[best]) best = t0 + k;
        y[oidx] = row[best];
        argmax_[static_cast<std::size_t>(oidx)] = (i * c + ch) * len + best;
        ++oidx;
      }
    }
  return y;
}

const Tensor& MaxPool1d::backward(const Tensor& grad_out, Workspace& ws) {
  ADAFL_CHECK_MSG(in_shape_.rank() == 4, "MaxPool1d::backward before forward");
  ADAFL_CHECK(grad_out.size() == static_cast<std::int64_t>(argmax_.size()));
  Tensor& dx = ws.get(in_shape_);
  for (std::size_t k = 0; k < argmax_.size(); ++k)
    dx[argmax_[k]] += grad_out[static_cast<std::int64_t>(k)];
  return dx;
}

std::string MaxPool1d::name() const {
  return "MaxPool1d(" + std::to_string(window_) + ")";
}

}  // namespace adafl::nn
