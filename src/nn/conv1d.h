// 1-D convolution and pooling for time-series (e.g. wearable sensor)
// models. Signals are carried in the library's standard NCHW tensors with
// H = 1: [N, channels, 1, length].
#pragma once

#include "nn/layer.h"

namespace adafl::nn {

/// Temporal convolution over [N, in_c, 1, L] producing [N, out_c, 1, L'].
class Conv1d final : public Layer {
 public:
  Conv1d(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
         Rng& rng, std::int64_t stride = 1, std::int64_t pad = 0);

  using Layer::forward;
  using Layer::backward;
  const Tensor& forward(const Tensor& x, bool training,
                        Workspace& ws) override;
  const Tensor& backward(const Tensor& grad_out, Workspace& ws) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override;

 private:
  std::int64_t in_c_, out_c_, kernel_, stride_, pad_;
  Tensor w_;       ///< [out_c, in_c * kernel]
  Tensor b_;       ///< [out_c]
  Tensor w_grad_, b_grad_;
  Tensor input_;
};

/// Temporal max pooling over [N, C, 1, L]; stride defaults to the window.
class MaxPool1d final : public Layer {
 public:
  explicit MaxPool1d(std::int64_t window, std::int64_t stride = 0);

  using Layer::forward;
  using Layer::backward;
  const Tensor& forward(const Tensor& x, bool training,
                        Workspace& ws) override;
  const Tensor& backward(const Tensor& grad_out, Workspace& ws) override;
  std::string name() const override;

 private:
  std::int64_t window_, stride_;
  Shape in_shape_;
  std::vector<std::int64_t> argmax_;
};

}  // namespace adafl::nn
