#include "nn/conv2d.h"

#include "nn/init.h"

namespace adafl::nn {

using tensor::Conv2dGeom;

Conv2d::Conv2d(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
               Rng& rng, std::int64_t stride, std::int64_t pad)
    : in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      w_({out_c, in_c * kernel * kernel}),
      b_({out_c}),
      w_grad_({out_c, in_c * kernel * kernel}),
      b_grad_({out_c}) {
  ADAFL_CHECK_MSG(in_c > 0 && out_c > 0 && kernel > 0 && stride > 0 && pad >= 0,
                  "Conv2d: invalid geometry");
  kaiming_uniform(w_, in_c * kernel * kernel, rng);
}

Tensor Conv2d::forward(const Tensor& x, bool /*training*/) {
  ADAFL_CHECK_MSG(x.shape().rank() == 4 && x.shape()[1] == in_c_,
                  "Conv2d::forward: input " << x.shape().to_string());
  input_ = x;
  const std::int64_t n = x.shape()[0], h = x.shape()[2], w = x.shape()[3];
  geom_ = Conv2dGeom{in_c_, h, w, kernel_, stride_, pad_};
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  ADAFL_CHECK_MSG(oh > 0 && ow > 0, "Conv2d: output would be empty for input "
                                        << x.shape().to_string());
  Tensor out({n, out_c_, oh, ow});
  Tensor cols({in_c_ * kernel_ * kernel_, oh * ow});
  const std::int64_t img = in_c_ * h * w;
  const std::int64_t oimg = out_c_ * oh * ow;
  for (std::int64_t i = 0; i < n; ++i) {
    tensor::im2col({x.data() + i * img, static_cast<std::size_t>(img)}, geom_,
                   cols);
    Tensor y = tensor::matmul(w_, cols);  // [out_c, oh*ow]
    float* dst = out.data() + i * oimg;
    const float* src = y.data();
    for (std::int64_t c = 0; c < out_c_; ++c) {
      const float bias = b_[c];
      for (std::int64_t p = 0; p < oh * ow; ++p)
        dst[c * oh * ow + p] = src[c * oh * ow + p] + bias;
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  ADAFL_CHECK_MSG(!input_.empty(), "Conv2d::backward before forward");
  const std::int64_t n = input_.shape()[0];
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  ADAFL_CHECK(grad_out.shape() ==
              tensor::Shape({n, out_c_, oh, ow}));
  Tensor dx(input_.shape());
  Tensor cols({in_c_ * kernel_ * kernel_, oh * ow});
  const std::int64_t img = geom_.in_c * geom_.in_h * geom_.in_w;
  const std::int64_t oimg = out_c_ * oh * ow;
  for (std::int64_t i = 0; i < n; ++i) {
    // Recompute the column matrix (cheaper than caching N of them).
    tensor::im2col({input_.data() + i * img, static_cast<std::size_t>(img)},
                   geom_, cols);
    Tensor dy({out_c_, oh * ow});
    std::copy(grad_out.data() + i * oimg, grad_out.data() + (i + 1) * oimg,
              dy.data());
    // dW += dY * cols^T ; dcols = W^T * dY
    w_grad_ += tensor::matmul_nt(dy, cols);
    for (std::int64_t c = 0; c < out_c_; ++c) {
      double acc = 0.0;
      const float* row = dy.data() + c * oh * ow;
      for (std::int64_t p = 0; p < oh * ow; ++p) acc += row[p];
      b_grad_[c] += static_cast<float>(acc);
    }
    Tensor dcols = tensor::matmul_tn(w_, dy);
    tensor::col2im(dcols, geom_,
                   {dx.data() + i * img, static_cast<std::size_t>(img)});
  }
  return dx;
}

void Conv2d::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&w_, &w_grad_});
  out.push_back({&b_, &b_grad_});
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_c_) + "->" + std::to_string(out_c_) +
         ",k" + std::to_string(kernel_) + ",s" + std::to_string(stride_) +
         ",p" + std::to_string(pad_) + ")";
}

}  // namespace adafl::nn
