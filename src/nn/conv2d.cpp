#include "nn/conv2d.h"

#include "core/parallel.h"
#include "nn/init.h"

namespace adafl::nn {

using tensor::Conv2dGeom;

Conv2d::Conv2d(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
               Rng& rng, std::int64_t stride, std::int64_t pad)
    : in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      w_({out_c, in_c * kernel * kernel}),
      b_({out_c}),
      w_grad_({out_c, in_c * kernel * kernel}),
      b_grad_({out_c}) {
  ADAFL_CHECK_MSG(in_c > 0 && out_c > 0 && kernel > 0 && stride > 0 && pad >= 0,
                  "Conv2d: invalid geometry");
  kaiming_uniform(w_, in_c * kernel * kernel, rng);
}

Tensor Conv2d::forward(const Tensor& x, bool training) {
  ADAFL_CHECK_MSG(x.shape().rank() == 4 && x.shape()[1] == in_c_,
                  "Conv2d::forward: input " << x.shape().to_string());
  input_ = x;
  const std::int64_t n = x.shape()[0], h = x.shape()[2], w = x.shape()[3];
  geom_ = Conv2dGeom{in_c_, h, w, kernel_, stride_, pad_};
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  ADAFL_CHECK_MSG(oh > 0 && ow > 0, "Conv2d: output would be empty for input "
                                        << x.shape().to_string());
  Tensor out({n, out_c_, oh, ow});
  const tensor::Shape cols_shape({in_c_ * kernel_ * kernel_, oh * ow});
  if (training) {
    // Keep each sample's column matrix for backward() (see header note).
    if (static_cast<std::int64_t>(cols_cache_.size()) != n ||
        cols_cache_.front().shape() != cols_shape)
      cols_cache_.assign(static_cast<std::size_t>(n), Tensor(cols_shape));
  } else {
    cols_cache_.clear();
  }
  const std::int64_t img = in_c_ * h * w;
  const std::int64_t oimg = out_c_ * oh * ow;
  // Samples are independent: each writes its own output image (and cache
  // slot), so the batch splits across the pool with no ordering effects.
  core::parallel_for_blocked(0, n, [&](std::int64_t sb, std::int64_t se) {
    Tensor scratch;
    if (!training) scratch = Tensor(cols_shape);
    for (std::int64_t i = sb; i < se; ++i) {
      Tensor& cols =
          training ? cols_cache_[static_cast<std::size_t>(i)] : scratch;
      tensor::im2col({x.data() + i * img, static_cast<std::size_t>(img)},
                     geom_, cols);
      Tensor y = tensor::matmul(w_, cols);  // [out_c, oh*ow]
      float* dst = out.data() + i * oimg;
      const float* src = y.data();
      for (std::int64_t c = 0; c < out_c_; ++c) {
        const float bias = b_[c];
        for (std::int64_t p = 0; p < oh * ow; ++p)
          dst[c * oh * ow + p] = src[c * oh * ow + p] + bias;
      }
    }
  });
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  ADAFL_CHECK_MSG(!input_.empty(), "Conv2d::backward before forward");
  const std::int64_t n = input_.shape()[0];
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  ADAFL_CHECK(grad_out.shape() ==
              tensor::Shape({n, out_c_, oh, ow}));
  Tensor dx(input_.shape());
  const std::int64_t img = geom_.in_c * geom_.in_h * geom_.in_w;
  const std::int64_t oimg = out_c_ * oh * ow;
  const bool cached = static_cast<std::int64_t>(cols_cache_.size()) == n;
  // Phase 1 (parallel): every sample's input gradient and its *own* weight /
  // bias gradient contribution — all writes disjoint per sample.
  std::vector<Tensor> wg(static_cast<std::size_t>(n));
  std::vector<std::vector<float>> bg(
      static_cast<std::size_t>(n),
      std::vector<float>(static_cast<std::size_t>(out_c_)));
  core::parallel_for_blocked(0, n, [&](std::int64_t sb, std::int64_t se) {
    Tensor scratch;
    if (!cached) scratch = Tensor({in_c_ * kernel_ * kernel_, oh * ow});
    for (std::int64_t i = sb; i < se; ++i) {
      const Tensor* cols;
      if (cached) {
        cols = &cols_cache_[static_cast<std::size_t>(i)];
      } else {
        // forward() ran with training == false: rebuild the columns.
        tensor::im2col(
            {input_.data() + i * img, static_cast<std::size_t>(img)}, geom_,
            scratch);
        cols = &scratch;
      }
      Tensor dy({out_c_, oh * ow});
      std::copy(grad_out.data() + i * oimg, grad_out.data() + (i + 1) * oimg,
                dy.data());
      // dW_i = dY * cols^T ; dcols = W^T * dY
      wg[static_cast<std::size_t>(i)] = tensor::matmul_nt(dy, *cols);
      for (std::int64_t c = 0; c < out_c_; ++c) {
        double acc = 0.0;
        const float* row = dy.data() + c * oh * ow;
        for (std::int64_t p = 0; p < oh * ow; ++p) acc += row[p];
        bg[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)] =
            static_cast<float>(acc);
      }
      Tensor dcols = tensor::matmul_tn(w_, dy);
      tensor::col2im(dcols, geom_,
                     {dx.data() + i * img, static_cast<std::size_t>(img)});
    }
  });
  // Phase 2 (serial): fold the per-sample contributions in sample order, so
  // the accumulated gradients are bitwise identical at every thread count.
  for (std::int64_t i = 0; i < n; ++i) {
    w_grad_ += wg[static_cast<std::size_t>(i)];
    for (std::int64_t c = 0; c < out_c_; ++c)
      b_grad_[c] += bg[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)];
  }
  return dx;
}

void Conv2d::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&w_, &w_grad_});
  out.push_back({&b_, &b_grad_});
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_c_) + "->" + std::to_string(out_c_) +
         ",k" + std::to_string(kernel_) + ",s" + std::to_string(stride_) +
         ",p" + std::to_string(pad_) + ")";
}

}  // namespace adafl::nn
