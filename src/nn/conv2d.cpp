#include "nn/conv2d.h"

#include <algorithm>

#include "core/parallel.h"
#include "nn/init.h"

namespace adafl::nn {

using tensor::Conv2dGeom;

Conv2d::Conv2d(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
               Rng& rng, std::int64_t stride, std::int64_t pad)
    : in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      w_({out_c, in_c * kernel * kernel}),
      b_({out_c}),
      w_grad_({out_c, in_c * kernel * kernel}),
      b_grad_({out_c}) {
  ADAFL_CHECK_MSG(in_c > 0 && out_c > 0 && kernel > 0 && stride > 0 && pad >= 0,
                  "Conv2d: invalid geometry");
  kaiming_uniform(w_, in_c * kernel * kernel, rng);
}

const Tensor& Conv2d::forward(const Tensor& x, bool training, Workspace& ws) {
  ADAFL_CHECK_MSG(x.shape().rank() == 4 && x.shape()[1] == in_c_,
                  "Conv2d::forward: input " << x.shape().to_string());
  input_ = x;
  const std::int64_t n = x.shape()[0], h = x.shape()[2], w = x.shape()[3];
  geom_ = Conv2dGeom{in_c_, h, w, kernel_, stride_, pad_};
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  ADAFL_CHECK_MSG(oh > 0 && ow > 0, "Conv2d: output would be empty for input "
                                        << x.shape().to_string());
  Tensor& out = ws.get({n, out_c_, oh, ow});
  const tensor::Shape cols_shape({in_c_ * kernel_ * kernel_, oh * ow});
  cols_valid_ = training;
  if (training) {
    // Keep each sample's column matrix for backward() (see header note).
    if (static_cast<std::int64_t>(cols_cache_.size()) < n)
      cols_cache_.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
      if (cols_cache_[static_cast<std::size_t>(i)].shape() != cols_shape)
        cols_cache_[static_cast<std::size_t>(i)].resize(cols_shape);
  } else if (static_cast<std::size_t>(core::num_threads()) >
             chunk_cols_.size()) {
    chunk_cols_.resize(static_cast<std::size_t>(core::num_threads()));
  }
  const std::int64_t img = in_c_ * h * w;
  const std::int64_t oimg = out_c_ * oh * ow;
  // Samples are independent: each writes its own output image (and cache
  // slot), so the batch splits across the pool with no ordering effects.
  // Eval passes draw their im2col scratch from the per-chunk table instead
  // of allocating per block.
  core::parallel_for_blocked_indexed(
      0, n, [&](std::int64_t chunk, std::int64_t sb, std::int64_t se) {
        if (!training &&
            chunk_cols_[static_cast<std::size_t>(chunk)].shape() != cols_shape)
          chunk_cols_[static_cast<std::size_t>(chunk)].resize(cols_shape);
        for (std::int64_t i = sb; i < se; ++i) {
          Tensor& cols = training
                             ? cols_cache_[static_cast<std::size_t>(i)]
                             : chunk_cols_[static_cast<std::size_t>(chunk)];
          tensor::im2col({x.data() + i * img, static_cast<std::size_t>(img)},
                         geom_, cols);
          // out arrives zero-filled from the workspace, so accumulating the
          // product then adding the bias in place matches the historical
          // "fresh product + bias" copy bit for bit.
          float* dst = out.data() + i * oimg;
          tensor::matmul_into(w_, cols,
                              {dst, static_cast<std::size_t>(oimg)});
          for (std::int64_t c = 0; c < out_c_; ++c) {
            const float bias = b_[c];
            for (std::int64_t p = 0; p < oh * ow; ++p)
              dst[c * oh * ow + p] += bias;
          }
        }
      });
  return out;
}

const Tensor& Conv2d::backward(const Tensor& grad_out, Workspace& ws) {
  ADAFL_CHECK_MSG(!input_.empty(), "Conv2d::backward before forward");
  const std::int64_t n = input_.shape()[0];
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  ADAFL_CHECK(grad_out.shape() ==
              tensor::Shape({n, out_c_, oh, ow}));
  Tensor& dx = ws.get(input_.shape());
  const std::int64_t img = geom_.in_c * geom_.in_h * geom_.in_w;
  const std::int64_t oimg = out_c_ * oh * ow;
  const bool cached = cols_valid_;
  const tensor::Shape cols_shape({in_c_ * kernel_ * kernel_, oh * ow});
  const tensor::Shape dy_shape({out_c_, oh * ow});
  // Phase 1 (parallel): every sample's input gradient and its *own* weight /
  // bias gradient contribution — all writes disjoint per sample. Scratch is
  // persistent: per-sample weight-grad slots, a flat bias-grad buffer, and
  // per-chunk dY / dcols (plus rebuilt columns when forward ran in eval
  // mode), all grow-only.
  if (static_cast<std::int64_t>(wg_cache_.size()) < n)
    wg_cache_.resize(static_cast<std::size_t>(n));
  bg_cache_.assign(static_cast<std::size_t>(n * out_c_), 0.0f);
  const auto nchunks = static_cast<std::size_t>(core::num_threads());
  if (chunk_dy_.size() < nchunks) chunk_dy_.resize(nchunks);
  if (chunk_dcols_.size() < nchunks) chunk_dcols_.resize(nchunks);
  if (!cached && chunk_cols_.size() < nchunks) chunk_cols_.resize(nchunks);
  core::parallel_for_blocked_indexed(
      0, n, [&](std::int64_t chunk, std::int64_t sb, std::int64_t se) {
        const auto ci = static_cast<std::size_t>(chunk);
        if (!cached && chunk_cols_[ci].shape() != cols_shape)
          chunk_cols_[ci].resize(cols_shape);
        if (chunk_dy_[ci].shape() != dy_shape) chunk_dy_[ci].resize(dy_shape);
        Tensor& dy = chunk_dy_[ci];
        for (std::int64_t i = sb; i < se; ++i) {
          const Tensor* cols;
          if (cached) {
            cols = &cols_cache_[static_cast<std::size_t>(i)];
          } else {
            // forward() ran with training == false: rebuild the columns.
            tensor::im2col(
                {input_.data() + i * img, static_cast<std::size_t>(img)},
                geom_, chunk_cols_[ci]);
            cols = &chunk_cols_[ci];
          }
          std::copy(grad_out.data() + i * oimg,
                    grad_out.data() + (i + 1) * oimg, dy.data());
          // dW_i = dY * cols^T ; dcols = W^T * dY
          Tensor& wg = wg_cache_[static_cast<std::size_t>(i)];
          if (wg.shape() != w_.shape()) wg.resize(w_.shape());
          tensor::matmul_nt_into(dy, *cols, wg);
          for (std::int64_t c = 0; c < out_c_; ++c) {
            double acc = 0.0;
            const float* row = dy.data() + c * oh * ow;
            for (std::int64_t p = 0; p < oh * ow; ++p) acc += row[p];
            bg_cache_[static_cast<std::size_t>(i * out_c_ + c)] =
                static_cast<float>(acc);
          }
          // matmul_tn accumulates, so dcols is re-zeroed per sample (a
          // capacity-reusing fill, not an allocation).
          chunk_dcols_[ci].resize(cols_shape);
          tensor::matmul_tn_into(w_, dy, chunk_dcols_[ci]);
          tensor::col2im(chunk_dcols_[ci], geom_,
                         {dx.data() + i * img, static_cast<std::size_t>(img)});
        }
      });
  // Phase 2 (serial): fold the per-sample contributions in sample order, so
  // the accumulated gradients are bitwise identical at every thread count.
  for (std::int64_t i = 0; i < n; ++i) {
    w_grad_ += wg_cache_[static_cast<std::size_t>(i)];
    for (std::int64_t c = 0; c < out_c_; ++c)
      b_grad_[c] += bg_cache_[static_cast<std::size_t>(i * out_c_ + c)];
  }
  return dx;
}

void Conv2d::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&w_, &w_grad_});
  out.push_back({&b_, &b_grad_});
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_c_) + "->" + std::to_string(out_c_) +
         ",k" + std::to_string(kernel_) + ",s" + std::to_string(stride_) +
         ",p" + std::to_string(pad_) + ")";
}

}  // namespace adafl::nn
