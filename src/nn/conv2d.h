// 2-D convolution over NCHW tensors via im2col + matmul.
#pragma once

#include "nn/layer.h"
#include "tensor/ops.h"

namespace adafl::nn {

/// Square-kernel 2-D convolution. Input [N, in_c, H, W], output
/// [N, out_c, out_h, out_w]. Weight layout is [out_c, in_c*k*k].
class Conv2d final : public Layer {
 public:
  Conv2d(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
         Rng& rng, std::int64_t stride = 1, std::int64_t pad = 0);

  using Layer::forward;
  using Layer::backward;
  const Tensor& forward(const Tensor& x, bool training,
                        Workspace& ws) override;
  const Tensor& backward(const Tensor& grad_out, Workspace& ws) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override;

 private:
  std::int64_t in_c_ = 0, out_c_ = 0, kernel_ = 0, stride_ = 1, pad_ = 0;
  Tensor w_;       ///< [out_c, in_c*k*k]
  Tensor b_;       ///< [out_c]
  Tensor w_grad_;
  Tensor b_grad_;
  Tensor input_;   ///< cached [N, in_c, H, W]
  /// Forward column matrices, valid only when forward() ran with
  /// training == true so backward() skips the per-sample im2col recompute.
  /// Memory cost: N * (in_c*k*k) * (out_h*out_w) floats — for this
  /// library's shapes (batch <= ~32, 16x16 images) a few MB at most.
  /// Grow-only: slots are reused across batches, never shrunk, so
  /// steady-state training touches no allocator.
  std::vector<Tensor> cols_cache_;
  bool cols_valid_ = false;  ///< cols_cache_[0..N) match the last forward
  /// Per-chunk scratch for the parallel regions, indexed by the chunk id of
  /// parallel_for_blocked_indexed (sized to num_threads() up front, grown
  /// lazily per chunk): eval-mode im2col columns, backward dY and dcols.
  std::vector<Tensor> chunk_cols_;
  std::vector<Tensor> chunk_dy_;
  std::vector<Tensor> chunk_dcols_;
  std::vector<Tensor> wg_cache_;  ///< per-sample weight-grad contributions
  std::vector<float> bg_cache_;   ///< per-sample bias-grad, [N * out_c]
  tensor::Conv2dGeom geom_;
};

}  // namespace adafl::nn
