#include "nn/init.h"

#include <cmath>

namespace adafl::nn {

void kaiming_uniform(tensor::Tensor& w, std::int64_t fan_in,
                     tensor::Rng& rng) {
  ADAFL_CHECK_MSG(fan_in > 0, "kaiming_uniform: fan_in must be positive");
  const float b = std::sqrt(6.0f / static_cast<float>(fan_in));
  for (auto& v : w.flat()) v = static_cast<float>(rng.uniform(-b, b));
}

void xavier_uniform(tensor::Tensor& w, std::int64_t fan_in,
                    std::int64_t fan_out, tensor::Rng& rng) {
  ADAFL_CHECK_MSG(fan_in > 0 && fan_out > 0,
                  "xavier_uniform: fans must be positive");
  const float b = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (auto& v : w.flat()) v = static_cast<float>(rng.uniform(-b, b));
}

}  // namespace adafl::nn
