// Weight initializers (Kaiming / Xavier uniform).
#pragma once

#include "tensor/tensor.h"

namespace adafl::nn {

/// Kaiming-uniform fill: U[-b, b] with b = sqrt(6 / fan_in). Suitable for
/// ReLU networks; `fan_in` must be > 0.
void kaiming_uniform(tensor::Tensor& w, std::int64_t fan_in,
                     tensor::Rng& rng);

/// Xavier-uniform fill: U[-b, b] with b = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(tensor::Tensor& w, std::int64_t fan_in,
                    std::int64_t fan_out, tensor::Rng& rng);

}  // namespace adafl::nn
