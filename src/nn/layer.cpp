#include "nn/layer.h"

namespace adafl::nn {

Tensor Layer::forward(const Tensor& x, bool training) {
  if (!compat_ws_) compat_ws_ = std::make_unique<Workspace>();
  const Workspace::Mark m = compat_ws_->mark();
  Tensor out = forward(x, training, *compat_ws_);
  compat_ws_->rewind(m);
  return out;
}

Tensor Layer::backward(const Tensor& grad_out) {
  if (!compat_ws_) compat_ws_ = std::make_unique<Workspace>();
  const Workspace::Mark m = compat_ws_->mark();
  Tensor dx = backward(grad_out, *compat_ws_);
  compat_ws_->rewind(m);
  return dx;
}

}  // namespace adafl::nn
