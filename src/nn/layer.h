// Layer abstraction: explicit forward/backward with cached activations.
//
// adafl deliberately uses layer-local backprop instead of a tape-based
// autograd: the FL algorithms in this repo only ever need whole-model
// gradients of feed-forward networks, and explicit backward passes keep the
// numerical semantics exact and testable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace adafl::nn {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

/// Non-owning reference to one trainable parameter and its gradient buffer.
/// Both tensors are owned by the layer and share a shape.
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Base class for all layers. A layer owns its parameters and the
/// activations cached between forward() and backward().
///
/// Contract: backward(grad_out) may only be called after forward() on the
/// same input batch, and accumulates into the parameter gradients (callers
/// zero them via zero_grad()).
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output; `training` toggles train-only behaviour
  /// (e.g. dropout).
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Appends references to this layer's parameters (default: none).
  virtual void collect_params(std::vector<ParamRef>& out) { (void)out; }

  /// Short diagnostic name, e.g. "Conv2d(1->20,k5)".
  virtual std::string name() const = 0;
};

}  // namespace adafl::nn
