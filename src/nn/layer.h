// Layer abstraction: explicit forward/backward with cached activations.
//
// adafl deliberately uses layer-local backprop instead of a tape-based
// autograd: the FL algorithms in this repo only ever need whole-model
// gradients of feed-forward networks, and explicit backward passes keep the
// numerical semantics exact and testable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace adafl::nn {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;
using tensor::Workspace;

/// Non-owning reference to one trainable parameter and its gradient buffer.
/// Both tensors are owned by the layer and share a shape.
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Base class for all layers. A layer owns its parameters and the
/// activations cached between forward() and backward(); outputs and input
/// gradients live in the caller's Workspace, so steady-state training
/// allocates nothing.
///
/// Contract: backward(grad_out) may only be called after forward() on the
/// same input batch, and accumulates into the parameter gradients (callers
/// zero them via zero_grad()). The returned references stay valid until the
/// workspace is rewound past them; a layer may also return a reference to
/// its input or to an internal cache.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output; `training` toggles train-only behaviour
  /// (e.g. dropout). Output storage is drawn from `ws`.
  virtual const Tensor& forward(const Tensor& x, bool training,
                                Workspace& ws) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput (storage drawn from `ws`).
  virtual const Tensor& backward(const Tensor& grad_out, Workspace& ws) = 0;

  /// Allocating convenience wrappers over the workspace virtuals: run the
  /// layer against a lazily-created private workspace and return a copy of
  /// the result. Bitwise identical to the workspace path (same loops, same
  /// zero-filled output). Derived classes re-expose these with
  /// `using Layer::forward; using Layer::backward;`.
  Tensor forward(const Tensor& x, bool training = false);
  Tensor backward(const Tensor& grad_out);

  /// Appends references to this layer's parameters (default: none).
  virtual void collect_params(std::vector<ParamRef>& out) { (void)out; }

  /// Short diagnostic name, e.g. "Conv2d(1->20,k5)".
  virtual std::string name() const = 0;

 private:
  std::unique_ptr<Workspace> compat_ws_;  ///< backs the allocating wrappers
};

}  // namespace adafl::nn
