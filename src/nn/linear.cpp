#include "nn/linear.h"

#include "nn/init.h"
#include "tensor/ops.h"

namespace adafl::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      w_({out_features, in_features}),
      b_({out_features}),
      w_grad_({out_features, in_features}),
      b_grad_({out_features}) {
  ADAFL_CHECK_MSG(in_features > 0 && out_features > 0,
                  "Linear: features must be positive");
  kaiming_uniform(w_, in_features, rng);
}

const Tensor& Linear::forward(const Tensor& x, bool /*training*/,
                              Workspace& ws) {
  ADAFL_CHECK_MSG(x.shape().rank() == 2 && x.shape()[1] == in_,
                  "Linear::forward: input " << x.shape().to_string()
                                            << " expected [N, " << in_ << "]");
  input_ = x;
  // y = x * W^T + b
  const std::int64_t n = x.shape()[0];
  Tensor& y = ws.get({n, out_});
  tensor::matmul_nt_into(x, w_, y);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < out_; ++j) y[i * out_ + j] += b_[j];
  return y;
}

const Tensor& Linear::backward(const Tensor& grad_out, Workspace& ws) {
  ADAFL_CHECK_MSG(!input_.empty(), "Linear::backward before forward");
  ADAFL_CHECK(grad_out.shape().rank() == 2 && grad_out.shape()[1] == out_);
  // dW = dY^T * X, accumulated.
  Tensor& dw = ws.get(w_.shape());
  tensor::matmul_tn_into(grad_out, input_, dw);
  w_grad_ += dw;
  const std::int64_t n = grad_out.shape()[0];
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < out_; ++j)
      b_grad_[j] += grad_out[i * out_ + j];
  // dX = dY * W
  Tensor& dx = ws.get({n, in_});
  tensor::matmul_into(grad_out, w_, dx);
  return dx;
}

void Linear::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&w_, &w_grad_});
  out.push_back({&b_, &b_grad_});
}

std::string Linear::name() const {
  return "Linear(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

}  // namespace adafl::nn
