// Fully-connected layer: y = x W^T + b.
#pragma once

#include "nn/layer.h"

namespace adafl::nn {

/// Linear layer over [N, in_features] inputs producing [N, out_features].
class Linear final : public Layer {
 public:
  /// Weights are Kaiming-uniform initialized from `rng`; bias is zero.
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  using Layer::forward;
  using Layer::backward;
  const Tensor& forward(const Tensor& x, bool training,
                        Workspace& ws) override;
  const Tensor& backward(const Tensor& grad_out, Workspace& ws) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_ = 0, out_ = 0;
  Tensor w_;        ///< [out, in]
  Tensor b_;        ///< [out]
  Tensor w_grad_;   ///< [out, in]
  Tensor b_grad_;   ///< [out]
  Tensor input_;    ///< cached forward input [N, in]
};

}  // namespace adafl::nn
