#include "nn/loss.h"

#include <cmath>

#include "tensor/ops.h"

namespace adafl::nn {

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  LossResult r;
  r.grad = tensor::Tensor(logits.shape());
  tensor::Workspace ws;  // local scratch for the log-softmax
  r.loss = softmax_cross_entropy_into(logits, labels, r.grad, ws);
  return r;
}

float softmax_cross_entropy_into(const tensor::Tensor& logits,
                                 std::span<const std::int32_t> labels,
                                 tensor::Tensor& grad, tensor::Workspace& ws) {
  ADAFL_CHECK_MSG(logits.shape().rank() == 2,
                  "softmax_cross_entropy: logits "
                      << logits.shape().to_string());
  const std::int64_t n = logits.shape()[0], c = logits.shape()[1];
  ADAFL_CHECK_MSG(static_cast<std::int64_t>(labels.size()) == n,
                  "softmax_cross_entropy: " << labels.size() << " labels for "
                                            << n << " rows");
  ADAFL_CHECK_MSG(grad.shape() == logits.shape(),
                  "softmax_cross_entropy_into: grad "
                      << grad.shape().to_string());
  const tensor::Workspace::Mark mark = ws.mark();
  tensor::Tensor& logp = ws.get(logits.shape());
  tensor::log_softmax_rows_into(logits, logp);
  double loss = 0.0;
  const float invn = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t y = labels[static_cast<std::size_t>(i)];
    ADAFL_CHECK_MSG(y >= 0 && y < c, "label " << y << " out of range [0, " << c
                                              << ")");
    loss -= logp[i * c + y];
    // dL/dlogits = (softmax - onehot) / N
    for (std::int64_t j = 0; j < c; ++j)
      grad[i * c + j] = std::exp(logp[i * c + j]) * invn;
    grad[i * c + y] -= invn;
  }
  ws.rewind(mark);
  return static_cast<float>(loss / static_cast<double>(n));
}

}  // namespace adafl::nn
