// Classification loss: softmax cross-entropy with integer labels.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace adafl::nn {

/// Result of a loss evaluation: mean loss over the batch and the gradient of
/// the mean loss with respect to the logits.
struct LossResult {
  float loss = 0.0f;
  tensor::Tensor grad;  ///< same shape as the logits
};

/// Mean softmax cross-entropy over a [N, C] logits batch. `labels` holds N
/// class indices in [0, C).
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 std::span<const std::int32_t> labels);

/// Workspace variant: writes the loss gradient into `grad` (shape must equal
/// the logits') and draws the log-softmax scratch from `ws`. Bitwise
/// identical to the allocating form; returns the mean loss.
float softmax_cross_entropy_into(const tensor::Tensor& logits,
                                 std::span<const std::int32_t> labels,
                                 tensor::Tensor& grad, tensor::Workspace& ws);

}  // namespace adafl::nn
