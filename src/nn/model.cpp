#include "nn/model.h"

namespace adafl::nn {

Model::Model(std::unique_ptr<Layer> net) : net_(std::move(net)) {
  ADAFL_CHECK_MSG(net_ != nullptr, "Model: null network");
  net_->collect_params(params_);
  for (const auto& p : params_) {
    ADAFL_CHECK(p.value != nullptr && p.grad != nullptr);
    ADAFL_CHECK(p.value->shape() == p.grad->shape());
    param_count_ += p.value->size();
  }
}

Tensor Model::forward(const Tensor& x, bool training) {
  const tensor::Workspace::Mark m = ws_.mark();
  Tensor out = net_->forward(x, training, ws_);
  ws_.rewind(m);
  return out;
}

float Model::compute_gradients(const Batch& batch) {
  ADAFL_CHECK_MSG(batch.size() > 0, "compute_gradients: empty batch");
  // Per-batch mark/rewind: all activations, the loss gradient and every
  // layer's input gradient live in ws_ and are recycled next batch.
  const tensor::Workspace::Mark m = ws_.mark();
  const Tensor& logits = net_->forward(batch.inputs, /*training=*/true, ws_);
  Tensor& grad = ws_.get(logits.shape());
  const float loss =
      softmax_cross_entropy_into(logits, batch.labels, grad, ws_);
  net_->backward(grad, ws_);
  ws_.rewind(m);
  return loss;
}

float Model::train_batch(const Batch& batch, Optimizer& opt) {
  zero_grad();
  const float loss = compute_gradients(batch);
  opt.step(params_);
  return loss;
}

double Model::accuracy(const Batch& batch) {
  ADAFL_CHECK_MSG(batch.size() > 0, "accuracy: empty batch");
  const tensor::Workspace::Mark m = ws_.mark();
  const Tensor& logits = net_->forward(batch.inputs, /*training=*/false, ws_);
  const std::int64_t n = logits.shape()[0], c = logits.shape()[1];
  ADAFL_CHECK(n == batch.size());
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j)
      if (row[j] > row[best]) best = j;
    if (best == batch.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  ws_.rewind(m);
  return static_cast<double>(correct) / static_cast<double>(n);
}

void Model::zero_grad() {
  for (const auto& p : params_) p.grad->fill(0.0f);
}

std::vector<float> Model::get_flat() const {
  std::vector<float> out;
  get_flat_into(out);
  return out;
}

void Model::get_flat_into(std::vector<float>& out) const {
  out.resize(static_cast<std::size_t>(param_count_));
  std::size_t off = 0;
  for (const auto& p : params_) {
    const auto v = p.value->flat();
    std::copy(v.begin(), v.end(), out.begin() + static_cast<std::ptrdiff_t>(off));
    off += v.size();
  }
}

void Model::set_flat(std::span<const float> flat) {
  ADAFL_CHECK_MSG(static_cast<std::int64_t>(flat.size()) == param_count_,
                  "set_flat: length " << flat.size() << " vs param_count "
                                      << param_count_);
  std::size_t off = 0;
  for (const auto& p : params_) {
    auto v = p.value->flat();
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
              flat.begin() + static_cast<std::ptrdiff_t>(off + v.size()),
              v.begin());
    off += v.size();
  }
}

std::vector<float> Model::get_flat_grad() const {
  std::vector<float> out(static_cast<std::size_t>(param_count_));
  std::size_t off = 0;
  for (const auto& p : params_) {
    const auto g = p.grad->flat();
    std::copy(g.begin(), g.end(), out.begin() + static_cast<std::ptrdiff_t>(off));
    off += g.size();
  }
  return out;
}

void Model::add_flat(std::span<const float> delta, float alpha) {
  ADAFL_CHECK_MSG(static_cast<std::int64_t>(delta.size()) == param_count_,
                  "add_flat: length " << delta.size() << " vs param_count "
                                      << param_count_);
  std::size_t off = 0;
  for (const auto& p : params_) {
    auto v = p.value->flat();
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] += alpha * delta[off + i];
    off += v.size();
  }
}

}  // namespace adafl::nn
