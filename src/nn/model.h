// Model: a network + loss with flat parameter/gradient access.
//
// FL protocols exchange whole-model parameter vectors; Model provides the
// flat view (get_flat/set_flat/flat_grad) that src/fl and src/core operate
// on, plus batch-level train/eval helpers.
#pragma once

#include <functional>
#include <memory>

#include "nn/layer.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace adafl::nn {

/// Batch of supervised examples: images [N, C, H, W] (or any rank-2+ input)
/// paired with N integer labels.
struct Batch {
  Tensor inputs;
  std::vector<std::int32_t> labels;

  std::int64_t size() const { return static_cast<std::int64_t>(labels.size()); }
};

/// Owns a network and exposes training primitives over it. Move-only.
class Model {
 public:
  explicit Model(std::unique_ptr<Layer> net);

  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  /// Runs the network; `training` enables dropout etc.
  Tensor forward(const Tensor& x, bool training = false);

  /// Forward + loss + backward, leaving gradients in the parameters
  /// (accumulated on top of whatever is there). Returns the mean batch loss.
  float compute_gradients(const Batch& batch);

  /// zero_grad + compute_gradients + optimizer step. Returns the batch loss.
  float train_batch(const Batch& batch, Optimizer& opt);

  /// Fraction of `batch` classified correctly (argmax of logits).
  double accuracy(const Batch& batch);

  void zero_grad();

  std::span<const ParamRef> params() const { return params_; }

  /// Total number of scalar parameters.
  std::int64_t param_count() const { return param_count_; }

  /// Copies all parameters into a fresh flat vector (layer declaration order).
  std::vector<float> get_flat() const;

  /// get_flat into a caller-owned vector (resized to param_count(); reuses
  /// its capacity, so steady-state calls allocate nothing).
  void get_flat_into(std::vector<float>& out) const;

  /// Overwrites all parameters from `flat`; length must equal param_count().
  void set_flat(std::span<const float> flat);

  /// Copies all gradients into a fresh flat vector.
  std::vector<float> get_flat_grad() const;

  /// Adds `delta` (flat, length param_count()) scaled by `alpha` to the
  /// parameters: w += alpha * delta.
  void add_flat(std::span<const float> delta, float alpha);

  /// The model's workspace: activation/gradient storage reused across
  /// batches (compute_gradients marks and rewinds it per batch).
  tensor::Workspace& workspace() { return ws_; }

 private:
  std::unique_ptr<Layer> net_;
  std::vector<ParamRef> params_;
  std::int64_t param_count_ = 0;
  tensor::Workspace ws_;
};

/// Factory producing independent, identically-architected models. Clients in
/// an FL run each build one and then load the global weights.
using ModelFactory = std::function<Model()>;

}  // namespace adafl::nn
