#include "nn/models.h"

#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pool.h"
#include "nn/sequential.h"

namespace adafl::nn {

namespace {

/// Spatial size after an unpadded conv-k then 2x2 pool.
std::int64_t conv_pool(std::int64_t s, std::int64_t k) {
  return (s - k + 1) / 2;
}

/// Zeroes the classifier head (the last Linear's weight and bias). Initial
/// logits are then exactly uniform, which removes a class of bad
/// initializations where early ReLU saturation creates a long plateau that
/// round-averaged federated optimization cannot escape (centralized SGD
/// can; FedAvg keeps resetting onto it).
Model with_zero_head(Model m) {
  auto params = m.params();
  ADAFL_CHECK(params.size() >= 2);
  params[params.size() - 2].value->fill(0.0f);
  params[params.size() - 1].value->fill(0.0f);
  return m;
}

}  // namespace

Model make_paper_cnn(const ImageSpec& spec, std::uint64_t seed,
                     std::int64_t fc_units) {
  ADAFL_CHECK_MSG(spec.height >= 14 && spec.width >= 14,
                  "make_paper_cnn: needs >=14x14 input, got "
                      << spec.height << "x" << spec.width);
  Rng rng(seed);
  const std::int64_t h1 = conv_pool(spec.height, 5);
  const std::int64_t w1 = conv_pool(spec.width, 5);
  const std::int64_t h2 = conv_pool(h1, 5);
  const std::int64_t w2 = conv_pool(w1, 5);
  ADAFL_CHECK(h2 >= 1 && w2 >= 1);
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(spec.channels, 20, 5, rng);
  net->emplace<MaxPool2d>(2);
  net->emplace<ReLU>();
  net->emplace<Conv2d>(20, 50, 5, rng);
  net->emplace<MaxPool2d>(2);
  net->emplace<ReLU>();
  net->emplace<Flatten>();
  net->emplace<Linear>(50 * h2 * w2, fc_units, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(fc_units, spec.classes, rng);
  return with_zero_head(Model(std::move(net)));
}

Model make_mlp(const ImageSpec& spec, std::int64_t hidden,
               std::uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<Sequential>();
  net->emplace<Flatten>();
  net->emplace<Linear>(spec.channels * spec.height * spec.width, hidden, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(hidden, spec.classes, rng);
  return Model(std::move(net));
}

namespace {

/// Body of a residual block: conv3(s) -> ReLU -> conv3(1), padded.
std::unique_ptr<Layer> residual_body(std::int64_t in_c, std::int64_t out_c,
                                     std::int64_t stride, Rng& rng) {
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(in_c, out_c, 3, rng, stride, 1);
  body->emplace<ReLU>();
  body->emplace<Conv2d>(out_c, out_c, 3, rng, 1, 1);
  return body;
}

}  // namespace

Model make_resnet_lite(const ImageSpec& spec, std::uint64_t seed) {
  ADAFL_CHECK_MSG(spec.height >= 8 && spec.width >= 8,
                  "make_resnet_lite: needs >=8x8 input");
  Rng rng(seed);
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(spec.channels, 16, 3, rng, 1, 1);
  net->emplace<ReLU>();
  net->add(std::make_unique<ResidualBlock>(residual_body(16, 32, 2, rng), 16,
                                           32, 2, rng));
  net->add(std::make_unique<ResidualBlock>(residual_body(32, 64, 2, rng), 32,
                                           64, 2, rng));
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(64, spec.classes, rng);
  return with_zero_head(Model(std::move(net)));
}

Model make_vgg_lite(const ImageSpec& spec, std::uint64_t seed) {
  ADAFL_CHECK_MSG(spec.height >= 8 && spec.width >= 8,
                  "make_vgg_lite: needs >=8x8 input");
  Rng rng(seed);
  const std::int64_t h3 = spec.height / 8;  // three 2x2 pools
  const std::int64_t w3 = spec.width / 8;
  ADAFL_CHECK(h3 >= 1 && w3 >= 1);
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(spec.channels, 16, 3, rng, 1, 1);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  net->emplace<Conv2d>(16, 32, 3, rng, 1, 1);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  net->emplace<Conv2d>(32, 64, 3, rng, 1, 1);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  net->emplace<Flatten>();
  net->emplace<Linear>(64 * h3 * w3, 128, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(128, spec.classes, rng);
  return with_zero_head(Model(std::move(net)));
}

ModelFactory paper_cnn_factory(const ImageSpec& spec, std::uint64_t seed,
                               std::int64_t fc_units) {
  return [=] { return make_paper_cnn(spec, seed, fc_units); };
}

ModelFactory mlp_factory(const ImageSpec& spec, std::int64_t hidden,
                         std::uint64_t seed) {
  return [=] { return make_mlp(spec, hidden, seed); };
}

ModelFactory resnet_lite_factory(const ImageSpec& spec, std::uint64_t seed) {
  return [=] { return make_resnet_lite(spec, seed); };
}

ModelFactory vgg_lite_factory(const ImageSpec& spec, std::uint64_t seed) {
  return [=] { return make_vgg_lite(spec, seed); };
}

}  // namespace adafl::nn
