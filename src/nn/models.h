// Model factories for the architectures used in the paper's evaluation.
//
// The paper trains (a) a two-conv-layer CNN on MNIST, (b) ResNet-50 on
// CIFAR-10, and (c) VGG-Net on CIFAR-100. Per DESIGN.md §2, (b) and (c) are
// replaced by scaled-down networks that keep the architectural features the
// experiments rely on (residual connections / deep conv stacks) while
// remaining CPU-trainable.
#pragma once

#include "nn/model.h"

namespace adafl::nn {

/// Geometry of the image classification task a model is built for.
struct ImageSpec {
  std::int64_t channels = 1;
  std::int64_t height = 28;
  std::int64_t width = 28;
  std::int64_t classes = 10;
};

/// The paper's MNIST CNN: two 5x5 convolutions (20 and 50 output channels),
/// each followed by 2x2 max pooling, then a 500-unit ReLU layer and the
/// classifier head. Requires height/width >= 14 so both conv/pool stages fit.
Model make_paper_cnn(const ImageSpec& spec, std::uint64_t seed,
                     std::int64_t fc_units = 500);

/// Small multilayer perceptron (flatten -> hidden -> ReLU -> classes); used
/// by fast tests and micro-examples.
Model make_mlp(const ImageSpec& spec, std::int64_t hidden, std::uint64_t seed);

/// Residual CNN standing in for ResNet-50: 3x3 stem, two strided residual
/// blocks (16->32->64 channels), global average pooling, linear head.
Model make_resnet_lite(const ImageSpec& spec, std::uint64_t seed);

/// VGG-style CNN standing in for VGG-Net: three conv3-ReLU-pool stages
/// (16/32/64 channels) and a 128-unit fully-connected stage.
Model make_vgg_lite(const ImageSpec& spec, std::uint64_t seed);

/// Factory helpers: each call yields an independently-initialized model of
/// the same architecture (clients then overwrite weights from the server).
ModelFactory paper_cnn_factory(const ImageSpec& spec, std::uint64_t seed,
                               std::int64_t fc_units = 500);
ModelFactory mlp_factory(const ImageSpec& spec, std::int64_t hidden,
                         std::uint64_t seed);
ModelFactory resnet_lite_factory(const ImageSpec& spec, std::uint64_t seed);
ModelFactory vgg_lite_factory(const ImageSpec& spec, std::uint64_t seed);

}  // namespace adafl::nn
