#include "nn/optimizer.h"

#include <cmath>

namespace adafl::nn {

namespace {

void sync_state(std::vector<Tensor>& state,
                std::span<const ParamRef> params) {
  if (state.size() == params.size()) {
    for (std::size_t k = 0; k < state.size(); ++k)
      ADAFL_CHECK_MSG(state[k].shape() == params[k].value->shape(),
                      "optimizer reused with a different parameter list");
    return;
  }
  ADAFL_CHECK_MSG(state.empty(),
                  "optimizer reused with a different parameter list");
  state.reserve(params.size());
  for (const auto& p : params) state.emplace_back(p.value->shape());
}

// reset() semantics: zero the state without releasing it. FL clients call
// reset() at the start of every local round; clearing the buffers would
// force sync_state to reallocate them each round.
void zero_state(std::vector<Tensor>& state) {
  for (auto& t : state) t.fill(0.0f);
}

}  // namespace

Sgd::Sgd(float lr, float momentum, float weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  ADAFL_CHECK_MSG(lr > 0.0f, "Sgd: lr must be positive");
  ADAFL_CHECK_MSG(momentum >= 0.0f && momentum < 1.0f, "Sgd: bad momentum");
}

void Sgd::step(std::span<const ParamRef> params) {
  if (momentum_ > 0.0f) sync_state(velocity_, params);
  for (std::size_t k = 0; k < params.size(); ++k) {
    auto w = params[k].value->flat();
    const auto g = params[k].grad->flat();
    ADAFL_CHECK(w.size() == g.size());
    if (momentum_ > 0.0f) {
      auto v = velocity_[k].flat();
      for (std::size_t i = 0; i < w.size(); ++i) {
        const float grad = g[i] + weight_decay_ * w[i];
        v[i] = momentum_ * v[i] + grad;
        w[i] -= lr_ * v[i];
      }
    } else {
      for (std::size_t i = 0; i < w.size(); ++i)
        w[i] -= lr_ * (g[i] + weight_decay_ * w[i]);
    }
  }
}

void Sgd::reset() { zero_state(velocity_); }

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  ADAFL_CHECK_MSG(lr > 0.0f, "Adam: lr must be positive");
}

void Adam::step(std::span<const ParamRef> params) {
  sync_state(m_, params);
  sync_state(v_, params);
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params.size(); ++k) {
    auto w = params[k].value->flat();
    const auto g = params[k].grad->flat();
    auto m = m_[k].flat();
    auto v = v_[k].flat();
    for (std::size_t i = 0; i < w.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::reset() {
  zero_state(m_);
  zero_state(v_);
  t_ = 0;
}

FlatAdam::FlatAdam(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  ADAFL_CHECK_MSG(lr > 0.0f, "FlatAdam: lr must be positive");
}

void FlatAdam::step(std::span<float> w, std::span<const float> g) {
  ADAFL_CHECK_MSG(w.size() == g.size(), "FlatAdam: w/g length mismatch");
  if (m_.empty()) {
    m_.assign(w.size(), 0.0f);
    v_.assign(w.size(), 0.0f);
  }
  ADAFL_CHECK_MSG(m_.size() == w.size(),
                  "FlatAdam reused with a different vector length");
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < w.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0f - beta1_) * g[i];
    v_[i] = beta2_ * v_[i] + (1.0f - beta2_) * g[i] * g[i];
    w[i] -= lr_ * (m_[i] / bc1) / (std::sqrt(v_[i] / bc2) + eps_);
  }
}

void FlatAdam::reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

void FlatAdam::set_state(State s) {
  ADAFL_CHECK_MSG(s.m.size() == s.v.size(),
                  "FlatAdam: state m/v length mismatch");
  ADAFL_CHECK_MSG(s.t >= 0, "FlatAdam: negative step count");
  ADAFL_CHECK_MSG((s.t == 0) == s.m.empty(),
                  "FlatAdam: step count inconsistent with moment buffers");
  m_ = std::move(s.m);
  v_ = std::move(s.v);
  t_ = s.t;
}

}  // namespace adafl::nn
