// First-order optimizers over Layer parameters and over flat vectors.
//
// Layer-based optimizers (Sgd, Adam) drive local client training; the flat
// variants (FlatSgd, FlatAdam) implement *server-side* optimizers that treat
// the aggregated client delta as a pseudo-gradient (FedAdam, Reddi et al.).
#pragma once

#include <span>
#include <vector>

#include "nn/layer.h"

namespace adafl::nn {

/// Interface for optimizers stepping Layer parameters in place.
/// State buffers are keyed by position in `params`, so the same optimizer
/// instance must always be used with the same parameter list.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored in `params`.
  virtual void step(std::span<const ParamRef> params) = 0;

  /// Clears internal state (momentum/moment buffers).
  virtual void reset() = 0;

  /// Current learning rate.
  virtual float lr() const = 0;
  virtual void set_lr(float lr) = 0;
};

/// SGD with optional Nesterov-free momentum and decoupled weight decay.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f, float weight_decay = 0.0f);

  void step(std::span<const ParamRef> params) override;
  /// Zero-fills the momentum buffers in place (keeps their storage, so a
  /// per-round reset in FL training allocates nothing).
  void reset() override;
  float lr() const override { return lr_; }
  void set_lr(float lr) override { lr_ = lr; }

 private:
  float lr_, momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f);

  void step(std::span<const ParamRef> params) override;
  /// Zero-fills the moment buffers in place (keeps their storage).
  void reset() override;
  float lr() const override { return lr_; }
  void set_lr(float lr) override { lr_ = lr; }

 private:
  float lr_, beta1_, beta2_, eps_;
  std::vector<Tensor> m_, v_;
  std::int64_t t_ = 0;
};

/// Adam over a single flat parameter vector: w -= update(g). Used by the
/// FedAdam server, where g is the aggregated client delta.
class FlatAdam {
 public:
  explicit FlatAdam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                    float eps = 1e-8f);

  /// w and g must have the same, call-invariant length.
  void step(std::span<float> w, std::span<const float> g);

  void reset();
  float lr() const { return lr_; }

  /// Serializable moment state — crash-recovery checkpoints persist the
  /// FedAdam server moments so a resumed run steps bitwise identically.
  struct State {
    std::vector<float> m, v;
    std::int64_t t = 0;
  };
  State state() const { return {m_, v_, t_}; }
  void set_state(State s);

 private:
  float lr_, beta1_, beta2_, eps_;
  std::vector<float> m_, v_;
  std::int64_t t_ = 0;
};

}  // namespace adafl::nn
