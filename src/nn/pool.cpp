#include "nn/pool.h"

namespace adafl::nn {

MaxPool2d::MaxPool2d(std::int64_t window, std::int64_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {
  ADAFL_CHECK_MSG(window_ > 0 && stride_ > 0, "MaxPool2d: invalid geometry");
}

const Tensor& MaxPool2d::forward(const Tensor& x, bool /*training*/,
                                 Workspace& ws) {
  ADAFL_CHECK_MSG(x.shape().rank() == 4,
                  "MaxPool2d::forward: input " << x.shape().to_string());
  in_shape_ = x.shape();
  const std::int64_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2],
                     w = x.shape()[3];
  ADAFL_CHECK_MSG(h >= window_ && w >= window_,
                  "MaxPool2d: window " << window_ << " larger than input "
                                       << h << "x" << w);
  const std::int64_t oh = (h - window_) / stride_ + 1;
  const std::int64_t ow = (w - window_) / stride_ + 1;
  Tensor& out = ws.get({n, c, oh, ow});
  argmax_.assign(static_cast<std::size_t>(n * c * oh * ow), 0);
  const float* px = x.data();
  float* po = out.data();
  std::int64_t oidx = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = px + (i * c + ch) * h * w;
      for (std::int64_t oi = 0; oi < oh; ++oi) {
        for (std::int64_t oj = 0; oj < ow; ++oj) {
          const std::int64_t i0 = oi * stride_, j0 = oj * stride_;
          float best = plane[i0 * w + j0];
          std::int64_t best_at = i0 * w + j0;
          for (std::int64_t ki = 0; ki < window_; ++ki)
            for (std::int64_t kj = 0; kj < window_; ++kj) {
              const std::int64_t at = (i0 + ki) * w + (j0 + kj);
              if (plane[at] > best) {
                best = plane[at];
                best_at = at;
              }
            }
          po[oidx] = best;
          argmax_[static_cast<std::size_t>(oidx)] =
              (i * c + ch) * h * w + best_at;
          ++oidx;
        }
      }
    }
  }
  return out;
}

const Tensor& MaxPool2d::backward(const Tensor& grad_out, Workspace& ws) {
  ADAFL_CHECK_MSG(in_shape_.rank() == 4, "MaxPool2d::backward before forward");
  ADAFL_CHECK(grad_out.size() == static_cast<std::int64_t>(argmax_.size()));
  // dx accumulates through argmax scatter, so it relies on ws.get()'s
  // zero-fill.
  Tensor& dx = ws.get(in_shape_);
  float* pdx = dx.data();
  const float* pg = grad_out.data();
  for (std::size_t k = 0; k < argmax_.size(); ++k)
    pdx[argmax_[k]] += pg[k];
  return dx;
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(" + std::to_string(window_) + ")";
}

const Tensor& GlobalAvgPool::forward(const Tensor& x, bool /*training*/,
                                     Workspace& ws) {
  ADAFL_CHECK_MSG(x.shape().rank() == 4,
                  "GlobalAvgPool: input " << x.shape().to_string());
  in_shape_ = x.shape();
  const std::int64_t n = x.shape()[0], c = x.shape()[1],
                     hw = x.shape()[2] * x.shape()[3];
  Tensor& out = ws.get({n, c});
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * hw;
      double acc = 0.0;
      for (std::int64_t p = 0; p < hw; ++p) acc += plane[p];
      out[i * c + ch] = static_cast<float>(acc / static_cast<double>(hw));
    }
  return out;
}

const Tensor& GlobalAvgPool::backward(const Tensor& grad_out,
                                      Workspace& ws) {
  ADAFL_CHECK_MSG(in_shape_.rank() == 4,
                  "GlobalAvgPool::backward before forward");
  const std::int64_t n = in_shape_[0], c = in_shape_[1],
                     hw = in_shape_[2] * in_shape_[3];
  ADAFL_CHECK(grad_out.shape() == Shape({n, c}));
  Tensor& dx = ws.get(in_shape_);
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_out[i * c + ch] * inv;
      float* plane = dx.data() + (i * c + ch) * hw;
      for (std::int64_t p = 0; p < hw; ++p) plane[p] = g;
    }
  return dx;
}

}  // namespace adafl::nn
