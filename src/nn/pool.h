// Max pooling over NCHW tensors.
#pragma once

#include "nn/layer.h"

namespace adafl::nn {

/// 2-D max pooling with a square window; stride defaults to the window size
/// (non-overlapping, as in the paper's CNN).
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::int64_t window, std::int64_t stride = 0);

  using Layer::forward;
  using Layer::backward;
  const Tensor& forward(const Tensor& x, bool training,
                        Workspace& ws) override;
  const Tensor& backward(const Tensor& grad_out, Workspace& ws) override;
  std::string name() const override;

 private:
  std::int64_t window_ = 2, stride_ = 2;
  Shape in_shape_;
  std::vector<std::int64_t> argmax_;  ///< winning input index per output cell
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool final : public Layer {
 public:
  using Layer::forward;
  using Layer::backward;
  const Tensor& forward(const Tensor& x, bool training,
                        Workspace& ws) override;
  const Tensor& backward(const Tensor& grad_out, Workspace& ws) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape in_shape_;
};

}  // namespace adafl::nn
