#include "nn/sequential.h"

#include "nn/conv2d.h"

namespace adafl::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  ADAFL_CHECK_MSG(layer != nullptr, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x, bool training) {
  Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, training);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    cur = (*it)->backward(cur);
  return cur;
}

void Sequential::collect_params(std::vector<ParamRef>& out) {
  for (auto& l : layers_) l->collect_params(out);
}

std::string Sequential::name() const {
  std::string s = "Sequential[";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i) s += ", ";
    s += layers_[i]->name();
  }
  return s + "]";
}

ResidualBlock::ResidualBlock(std::unique_ptr<Layer> body, std::int64_t in_c,
                             std::int64_t out_c, std::int64_t stride,
                             Rng& rng)
    : body_(std::move(body)) {
  ADAFL_CHECK_MSG(body_ != nullptr, "ResidualBlock: null body");
  if (in_c != out_c || stride != 1)
    projection_ = std::make_unique<Conv2d>(in_c, out_c, /*kernel=*/1, rng,
                                           stride, /*pad=*/0);
}

Tensor ResidualBlock::forward(const Tensor& x, bool training) {
  Tensor f = body_->forward(x, training);
  Tensor skip = projection_ ? projection_->forward(x, training) : x;
  ADAFL_CHECK_MSG(f.shape() == skip.shape(),
                  "ResidualBlock: body output " << f.shape().to_string()
                                                << " vs skip "
                                                << skip.shape().to_string());
  f += skip;
  relu_mask_ = Tensor(f.shape());
  auto m = relu_mask_.flat();
  auto v = f.flat();
  for (std::size_t i = 0; i < v.size(); ++i) {
    const bool pos = v[i] > 0.0f;
    m[i] = pos ? 1.0f : 0.0f;
    if (!pos) v[i] = 0.0f;
  }
  return f;
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  ADAFL_CHECK_MSG(!relu_mask_.empty(), "ResidualBlock::backward before forward");
  ADAFL_CHECK(grad_out.shape() == relu_mask_.shape());
  Tensor g(grad_out.shape());
  {
    const auto go = grad_out.flat();
    const auto m = relu_mask_.flat();
    auto gv = g.flat();
    for (std::size_t i = 0; i < gv.size(); ++i) gv[i] = go[i] * m[i];
  }
  Tensor dx_body = body_->backward(g);
  Tensor dx_skip = projection_ ? projection_->backward(g) : g;
  dx_body += dx_skip;
  return dx_body;
}

void ResidualBlock::collect_params(std::vector<ParamRef>& out) {
  body_->collect_params(out);
  if (projection_) projection_->collect_params(out);
}

}  // namespace adafl::nn
