#include "nn/sequential.h"

#include "nn/conv2d.h"
#include "tensor/ops.h"

namespace adafl::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  ADAFL_CHECK_MSG(layer != nullptr, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

const Tensor& Sequential::forward(const Tensor& x, bool training,
                                  Workspace& ws) {
  const Tensor* cur = &x;
  for (auto& l : layers_) cur = &l->forward(*cur, training, ws);
  return *cur;
}

const Tensor& Sequential::backward(const Tensor& grad_out, Workspace& ws) {
  const Tensor* cur = &grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    cur = &(*it)->backward(*cur, ws);
  return *cur;
}

void Sequential::collect_params(std::vector<ParamRef>& out) {
  for (auto& l : layers_) l->collect_params(out);
}

std::string Sequential::name() const {
  std::string s = "Sequential[";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i) s += ", ";
    s += layers_[i]->name();
  }
  return s + "]";
}

ResidualBlock::ResidualBlock(std::unique_ptr<Layer> body, std::int64_t in_c,
                             std::int64_t out_c, std::int64_t stride,
                             Rng& rng)
    : body_(std::move(body)) {
  ADAFL_CHECK_MSG(body_ != nullptr, "ResidualBlock: null body");
  if (in_c != out_c || stride != 1)
    projection_ = std::make_unique<Conv2d>(in_c, out_c, /*kernel=*/1, rng,
                                           stride, /*pad=*/0);
}

const Tensor& ResidualBlock::forward(const Tensor& x, bool training,
                                     Workspace& ws) {
  const Tensor& f = body_->forward(x, training, ws);
  const Tensor& skip = projection_ ? projection_->forward(x, training, ws) : x;
  ADAFL_CHECK_MSG(f.shape() == skip.shape(),
                  "ResidualBlock: body output " << f.shape().to_string()
                                                << " vs skip "
                                                << skip.shape().to_string());
  Tensor& out = ws.get(f.shape());
  tensor::add_into(f, skip, out);
  relu_mask_.resize(out.shape());
  // In-place relu over the sum (relu_into tolerates out aliasing its input).
  tensor::relu_into(out, out, relu_mask_);
  return out;
}

const Tensor& ResidualBlock::backward(const Tensor& grad_out, Workspace& ws) {
  ADAFL_CHECK_MSG(!relu_mask_.empty(), "ResidualBlock::backward before forward");
  ADAFL_CHECK(grad_out.shape() == relu_mask_.shape());
  Tensor& g = ws.get(grad_out.shape());
  tensor::mul_into(grad_out, relu_mask_, g);
  const Tensor& dx_body = body_->backward(g, ws);
  const Tensor& dx_skip = projection_ ? projection_->backward(g, ws) : g;
  Tensor& dx = ws.get(dx_body.shape());
  tensor::add_into(dx_body, dx_skip, dx);
  return dx;
}

void ResidualBlock::collect_params(std::vector<ParamRef>& out) {
  body_->collect_params(out);
  if (projection_) projection_->collect_params(out);
}

}  // namespace adafl::nn
