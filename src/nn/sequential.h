// Sequential container and residual block.
#pragma once

#include <memory>

#include "nn/layer.h"

namespace adafl::nn {

/// Owns an ordered list of layers; forward applies them in order, backward
/// in reverse.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Constructs a layer in place: seq.emplace<Linear>(8, 4, rng).
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  using Layer::forward;
  using Layer::backward;
  const Tensor& forward(const Tensor& x, bool training,
                        Workspace& ws) override;
  const Tensor& backward(const Tensor& grad_out, Workspace& ws) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override;

  std::size_t size() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Residual block: y = ReLU(F(x) + P(x)) where F is the owned body and P is
/// either identity (when shapes match) or a 1x1 projection conv. This is the
/// structural element that makes `make_resnet_lite` a faithful stand-in for
/// the paper's ResNet-50.
class ResidualBlock final : public Layer {
 public:
  /// `body` maps [N,in_c,H,W] -> [N,out_c,H/stride,W/stride]. If in_c !=
  /// out_c or stride != 1 a projection conv is added on the skip path.
  ResidualBlock(std::unique_ptr<Layer> body, std::int64_t in_c,
                std::int64_t out_c, std::int64_t stride, Rng& rng);

  using Layer::forward;
  using Layer::backward;
  const Tensor& forward(const Tensor& x, bool training,
                        Workspace& ws) override;
  const Tensor& backward(const Tensor& grad_out, Workspace& ws) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override { return "ResidualBlock"; }

 private:
  std::unique_ptr<Layer> body_;
  std::unique_ptr<Layer> projection_;  ///< null for identity skip
  Tensor relu_mask_;
};

}  // namespace adafl::nn
