#include "tensor/arena.h"

#include "tensor/check.h"

namespace adafl::tensor {

Tensor& Workspace::get(const Shape& shape) {
  ++stats_.requests;
  if (cursor_ == slots_.size()) {
    slots_.push_back(std::make_unique<Tensor>());
  }
  Tensor& t = *slots_[cursor_];
  const auto need = static_cast<std::size_t>(shape.numel());
  if (need > t.capacity()) ++stats_.allocations;
  t.resize(shape);
  ADAFL_DCHECK_ALIGNED32(t.data());
  ++cursor_;
  if (cursor_ > stats_.high_water_slots) stats_.high_water_slots = cursor_;
  return t;
}

void Workspace::rewind(Mark m) {
  ADAFL_CHECK_MSG(m <= cursor_,
                  "Workspace::rewind past cursor: " << m << " > " << cursor_);
  cursor_ = m;
}

void Workspace::clear() {
  slots_.clear();
  cursor_ = 0;
}

std::size_t Workspace::floats_reserved() const {
  std::size_t total = 0;
  for (const auto& s : slots_) total += s->capacity();
  return total;
}

}  // namespace adafl::tensor
