// Workspace: an arena of reusable Tensor slots with bump-style allocation
// and per-batch mark/rewind. The zero-allocation substrate for the nn/ hot
// path: a training step marks, draws its activations/gradients via get(),
// and rewinds — after the first (warmup) pass every get() is a capacity
// reuse, so steady-state training performs no tensor heap allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace adafl::tensor {

/// Bump allocator over Tensor slots. get(shape) hands out the next slot,
/// resized (and zero-filled, matching Tensor(shape) semantics) to `shape`;
/// mark()/rewind() recycle slots stack-style between batches. Slots are
/// heap-boxed so returned Tensor& stay valid as the slot table grows.
///
/// Determinism contract: a fixed call sequence touches slots in a fixed
/// order, so reuse never changes values — every get() result is zero-filled
/// exactly like a freshly constructed Tensor.
///
/// Not thread-safe: one Workspace per model/thread; never call get() from
/// inside a parallel region.
class Workspace {
 public:
  struct Stats {
    std::uint64_t requests = 0;     ///< total get() calls
    std::uint64_t allocations = 0;  ///< get() calls that grew a slot's buffer
    std::size_t high_water_slots = 0;  ///< max slots live at once
  };

  /// Opaque cursor position; treat as a token for rewind().
  using Mark = std::size_t;

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// Next slot, shaped and zero-filled. The reference stays valid until
  /// clear(); rewinding merely makes the slot eligible for reuse.
  Tensor& get(const Shape& shape);

  /// Current cursor; pass to rewind() to release every slot taken since.
  Mark mark() const { return cursor_; }

  /// Releases all slots taken after `m` (their storage stays reserved).
  void rewind(Mark m);

  /// Equivalent to rewind(mark-of-empty): all slots reusable, storage kept.
  void reset() { cursor_ = 0; }

  /// Drops all slots and their storage.
  void clear();

  const Stats& stats() const { return stats_; }
  std::size_t slot_count() const { return slots_.size(); }

  /// Total floats of storage reserved across all slots.
  std::size_t floats_reserved() const;

 private:
  std::vector<std::unique_ptr<Tensor>> slots_;
  std::size_t cursor_ = 0;
  Stats stats_;
};

}  // namespace adafl::tensor
